// Benchmarks: one testing.B benchmark per reproduced table/figure of the
// TAC paper (run the exhibit end to end at a reduced scale), plus
// micro-benchmarks for the kernels the exhibits are built from (the SZ
// stages, the three pre-process strategies, and the post-analysis tools).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The paper-style tables themselves are printed by cmd/benchall.
package tac_test

import (
	"bytes"
	"io"
	"sync"
	"testing"

	tac "repro"
	"repro/internal/amr"
	"repro/internal/analysis"
	"repro/internal/archive"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/preprocess"
	"repro/internal/sim"
	"repro/internal/sz"
)

// benchScale keeps the full exhibit set fast enough for -bench=. runs;
// cmd/benchall defaults to the larger scale 4.
const benchScale = 8

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
)

func env() *experiments.Env {
	envOnce.Do(func() { benchEnv = experiments.NewEnv(benchScale) })
	return benchEnv
}

func dataset(b *testing.B, name string) *amr.Dataset {
	b.Helper()
	ds, err := env().Dataset(name, sim.BaryonDensity)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func level(b *testing.B, ref experiments.LevelRef) *amr.Level {
	b.Helper()
	l, err := env().Level(ref, sim.BaryonDensity)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// benchExhibit runs one full table/figure reproduction per iteration.
func benchExhibit(b *testing.B, id string) {
	b.Helper()
	e := env()
	// Warm the dataset cache outside the timed region.
	if err := experiments.RunByID(io.Discard, e, id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunByID(io.Discard, e, id); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper exhibit.

func BenchmarkTable1Datasets(b *testing.B)      { benchExhibit(b, "table1") }
func BenchmarkFig7NaSTvsOpST(b *testing.B)      { benchExhibit(b, "fig7") }
func BenchmarkFig11Strategies(b *testing.B)     { benchExhibit(b, "fig11") }
func BenchmarkFig12ZFvsGSP(b *testing.B)        { benchExhibit(b, "fig12") }
func BenchmarkFig13PreprocessTime(b *testing.B) { benchExhibit(b, "fig13") }
func BenchmarkFig14Run1RateDist(b *testing.B)   { benchExhibit(b, "fig14") }
func BenchmarkFig15Run2RateDist(b *testing.B)   { benchExhibit(b, "fig15") }
func BenchmarkFig18EBSweep(b *testing.B)        { benchExhibit(b, "fig18") }
func BenchmarkFig19PowerSpectrum(b *testing.B)  { benchExhibit(b, "fig19") }
func BenchmarkTable2Throughput(b *testing.B)    { benchExhibit(b, "table2") }
func BenchmarkTable3HaloFinder(b *testing.B)    { benchExhibit(b, "table3") }

// Codec-level benchmarks (Table 2's throughput building blocks).

func benchCompress(b *testing.B, c codec.Codec, name string) {
	ds := dataset(b, name)
	cfg := codec.Config{ErrorBound: 1e9}
	b.SetBytes(int64(ds.OriginalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecompress(b *testing.B, c codec.Codec, name string) {
	ds := dataset(b, name)
	blob, err := c.Compress(ds, codec.Config{ErrorBound: 1e9})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(ds.OriginalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTACCompressZ10(b *testing.B)   { benchCompress(b, core.TAC{}, "Run1_Z10") }
func BenchmarkTACDecompressZ10(b *testing.B) { benchDecompress(b, core.TAC{}, "Run1_Z10") }
func BenchmarkTACCompressT2(b *testing.B)    { benchCompress(b, core.TAC{}, "Run2_T2") }
func Benchmark1DCompressZ10(b *testing.B)    { benchCompress(b, baseline.Naive1D{}, "Run1_Z10") }
func BenchmarkZMeshCompressZ10(b *testing.B) { benchCompress(b, baseline.ZMesh{}, "Run1_Z10") }
func Benchmark3DCompressZ10(b *testing.B)    { benchCompress(b, baseline.Uniform3D{}, "Run1_Z10") }
func Benchmark3DCompressT2(b *testing.B)     { benchCompress(b, baseline.Uniform3D{}, "Run2_T2") }

// Pre-process strategy kernels (Fig. 13's building blocks, plus the
// ClassicKD ablation for AKDTree's adaptive split choice).

func BenchmarkOpSTExtractSparse(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preprocess.OpST(l.Mask)
	}
}

func BenchmarkOpSTExtractDense(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "T2 coarse", Dataset: "Run2_T2", Level: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preprocess.OpST(l.Mask)
	}
}

func BenchmarkAKDTreeExtractSparse(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.Adaptive(l.Mask)
	}
}

func BenchmarkAKDTreeExtractDense(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "T2 coarse", Dataset: "Run2_T2", Level: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.Adaptive(l.Mask)
	}
}

func BenchmarkClassicKDExtract(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.Classic(l.Mask)
	}
}

func BenchmarkGSPPad(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "z10 coarse", Dataset: "Run1_Z10", Level: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := l.Grid.Clone()
		preprocess.GSP(g, l.Mask, l.UnitBlock, preprocess.GSPOptions{})
	}
}

// SZ kernel benchmarks.

func BenchmarkSZCompress3D(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	uni := ds.FlattenToUniform()
	b.SetBytes(int64(4 * uni.Dim.Count()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sz.Compress3D(uni, sz.Options{ErrorBound: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZDecompress3D(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	uni := ds.FlattenToUniform()
	blob, _, err := sz.Compress3D(uni, sz.Options{ErrorBound: 1e9})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * uni.Dim.Count()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz.Decompress3D[float32](blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZCompress1D(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	vals := ds.Levels[0].MaskedValues(nil)
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sz.Compress1D(vals, sz.Options{ErrorBound: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
}

// Post-analysis benchmarks (metrics 5 and 6).

func BenchmarkPowerSpectrum(b *testing.B) {
	ds := dataset(b, "Run1_Z2")
	uni := ds.FlattenToUniform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.ComputePowerSpectrum(uni); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHaloFinder(b *testing.B) {
	ds := dataset(b, "Run1_Z2")
	uni := ds.FlattenToUniform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.FindHalos(uni, analysis.HaloFinderOptions{MinCells: 4})
	}
}

// Data generation benchmark (the substrate itself).

func BenchmarkGenerateDataset(b *testing.B) {
	spec, err := sim.SpecByName("Run1_Z10", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Generate(spec, sim.BaryonDensity); err != nil {
			b.Fatal(err)
		}
	}
}

// Facade round trip, as a user would call it.

func BenchmarkFacadeRoundTrip(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := tac.Compress(ds, tac.Config{ErrorBound: 1e9})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tac.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTACCompressZ10Parallel(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}
	b.SetBytes(int64(ds.OriginalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.TAC{}).Compress(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTACDecompressZ10Parallel measures the decompress-side fan-out
// (levels × block batches) with all CPUs.
func BenchmarkTACDecompressZ10Parallel(b *testing.B) {
	benchDecompress(b, core.TAC{Workers: -1}, "Run1_Z10")
}

// BenchmarkEncoderReuseZ10 measures the pooled engine on a
// repeated-snapshot campaign: same codec work as BenchmarkTACCompressZ10,
// but all sz scratch pinned across iterations.
func BenchmarkEncoderReuseZ10(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	enc := tac.NewEncoder()
	cfg := codec.Config{ErrorBound: 1e9}
	b.SetBytes(int64(ds.OriginalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Compress(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecoderReuseZ10 is the decompress twin of
// BenchmarkEncoderReuseZ10.
func BenchmarkDecoderReuseZ10(b *testing.B) {
	ds := dataset(b, "Run1_Z10")
	blob, err := tac.Compress(ds, tac.Config{ErrorBound: 1e9})
	if err != nil {
		b.Fatal(err)
	}
	dec := tac.NewDecoder(0)
	b.SetBytes(int64(ds.OriginalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// Archive (TACA container) benchmarks: streaming write throughput and the
// random-access read paths a serving layer exercises.

func archiveSnapshots(b *testing.B) []*amr.Dataset {
	b.Helper()
	var out []*amr.Dataset
	for _, name := range []string{"Run1_Z10", "Run1_Z5", "Run1_Z2"} {
		out = append(out, dataset(b, name))
	}
	return out
}

func buildBenchArchive(b *testing.B, snaps []*amr.Dataset, workers int) []byte {
	b.Helper()
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: 1e9, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchArchiveWrite(b *testing.B, workers int) {
	snaps := archiveSnapshots(b)
	var orig int64
	for _, ds := range snaps {
		orig += int64(ds.OriginalBytes())
	}
	b.SetBytes(orig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildBenchArchive(b, snaps, workers)
	}
}

func BenchmarkArchiveWrite(b *testing.B)         { benchArchiveWrite(b, 1) }
func BenchmarkArchiveWriteParallel(b *testing.B) { benchArchiveWrite(b, -1) }

func BenchmarkArchiveExtractMember(b *testing.B) {
	snaps := archiveSnapshots(b)
	blob := buildBenchArchive(b, snaps, -1)
	r, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(snaps[0].OriginalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Extract(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveExtractLevel(b *testing.B) {
	snaps := archiveSnapshots(b)
	blob := buildBenchArchive(b, snaps, -1)
	r, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * snaps[0].Levels[1].StoredCells()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ExtractLevel(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveExtractRegion(b *testing.B) {
	snaps := archiveSnapshots(b)
	blob := buildBenchArchive(b, snaps, -1)
	r, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		b.Fatal(err)
	}
	fd := snaps[0].FinestDims()
	roi := grid.Region{X1: fd.X / 2, Y1: fd.Y / 2, Z1: fd.Z / 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ExtractRegion(0, roi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveOpen(b *testing.B) {
	snaps := archiveSnapshots(b)
	blob := buildBenchArchive(b, snaps, -1)
	rd := bytes.NewReader(blob)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := archive.Open(rd, int64(len(blob))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZCompressBlocksParallel(b *testing.B) {
	l := level(b, experiments.LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0})
	boxes := preprocess.OpST(l.Mask)
	groups := preprocess.GroupBoxes(boxes)
	grids := preprocess.Gather(l.Grid, groups[len(groups)-1].Boxes, l.UnitBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sz.CompressBlocksParallel(grids, sz.Options{ErrorBound: 1e9}, -1); err != nil {
			b.Fatal(err)
		}
	}
}
