package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

func TestPowerSpectrumOfSineMode(t *testing.T) {
	// A density field with a single Fourier mode at |k|=4 concentrates all
	// power in that bin.
	n := 32
	g := grid.NewCube[float64](n)
	for x := 0; x < n; x++ {
		v := 1 + 0.5*math.Cos(2*math.Pi*4*float64(x)/float64(n))
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				g.Set(x, y, z, v)
			}
		}
	}
	ps, err := ComputePowerSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	var peakK float64
	var peakP float64
	for i := range ps.K {
		if ps.Pk[i] > peakP {
			peakP, peakK = ps.Pk[i], ps.K[i]
		}
	}
	if peakK != 4 {
		t.Fatalf("power peak at k=%v, want 4", peakK)
	}
	// Power away from the peak should be tiny.
	for i := range ps.K {
		if ps.K[i] != 4 && ps.Pk[i] > peakP*1e-9 {
			t.Fatalf("leakage at k=%v: %v", ps.K[i], ps.Pk[i])
		}
	}
}

func TestPowerSpectrumSelfError(t *testing.T) {
	g := grid.NewCube[float64](16)
	for i := range g.Data {
		g.Data[i] = 1 + 0.1*math.Sin(float64(i))
	}
	ps, err := ComputePowerSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	_, maxErr, err := ps.RelativeError(ps, 8)
	if err != nil || maxErr != 0 {
		t.Fatalf("self relative error %v, %v", maxErr, err)
	}
}

func TestPowerSpectrumErrGrowsWithDistortion(t *testing.T) {
	spec := sim.Spec{
		Name: "ps", FinestN: 32, Levels: 1, UnitBlock: 4, Seed: 21,
		LeafFractions: []float64{1},
	}
	ds, err := sim.Generate(spec, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	orig := ds.FlattenToUniform()
	ps0, err := ComputePowerSpectrum(orig)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, noise := range []float64{1e8, 1e9, 1e10} {
		rng := rand.New(rand.NewSource(99))
		pert := orig.Clone()
		for i := range pert.Data {
			pert.Data[i] += float32(noise * rng.NormFloat64())
		}
		ps1, err := ComputePowerSpectrum(pert)
		if err != nil {
			t.Fatal(err)
		}
		_, maxErr, err := ps1.RelativeError(ps0, 10)
		if err != nil {
			t.Fatal(err)
		}
		_ = maxErr
		// Compare against the original's binning orientation too.
		_, e, err := ps0.RelativeError(ps1, 10)
		if err != nil {
			t.Fatal(err)
		}
		if e <= prev {
			t.Fatalf("noise %v: power-spectrum error %v did not grow (prev %v)", noise, e, prev)
		}
		prev = e
	}
}

func TestPowerSpectrumRejectsBadInput(t *testing.T) {
	if _, err := ComputePowerSpectrum(grid.New[float64](grid.Dims{X: 8, Y: 8, Z: 4})); err == nil {
		t.Fatal("non-cube should be rejected")
	}
	if _, err := ComputePowerSpectrum(grid.New[float64](grid.Dims{X: 12, Y: 12, Z: 12})); err == nil {
		t.Fatal("non-pow2 should be rejected")
	}
	zero := grid.NewCube[float64](8)
	if _, err := ComputePowerSpectrum(zero); err == nil {
		t.Fatal("zero-mean field should be rejected")
	}
}

// blobField places a dense spherical over-density in a flat background.
func blobField(n int, cx, cy, cz, r int, amp float64) *grid.Grid3[float32] {
	g := grid.NewCube[float32](n)
	g.Fill(1)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				dx, dy, dz := x-cx, y-cy, z-cz
				if dx*dx+dy*dy+dz*dz <= r*r {
					g.Set(x, y, z, float32(amp))
				}
			}
		}
	}
	return g
}

func TestHaloFinderFindsBlob(t *testing.T) {
	g := blobField(32, 16, 16, 16, 4, 1e5)
	halos := FindHalos(g, HaloFinderOptions{})
	if len(halos) != 1 {
		t.Fatalf("found %d halos, want 1", len(halos))
	}
	h := halos[0]
	if math.Abs(h.X-16) > 0.5 || math.Abs(h.Y-16) > 0.5 || math.Abs(h.Z-16) > 0.5 {
		t.Fatalf("halo center (%v,%v,%v), want ≈(16,16,16)", h.X, h.Y, h.Z)
	}
	if h.Cells < 200 || h.Cells > 400 {
		t.Fatalf("halo has %d cells, expected ≈257 (r=4 sphere)", h.Cells)
	}
}

func TestHaloFinderSeparatesTwoBlobs(t *testing.T) {
	g := blobField(64, 8, 8, 8, 3, 1e5)
	// Second, bigger blob.
	for x := 40; x < 48; x++ {
		for y := 40; y < 48; y++ {
			for z := 40; z < 48; z++ {
				g.Set(x, y, z, 2e5)
			}
		}
	}
	halos := FindHalos(g, HaloFinderOptions{})
	if len(halos) != 2 {
		t.Fatalf("found %d halos, want 2", len(halos))
	}
	if halos[0].Mass < halos[1].Mass {
		t.Fatal("halos not sorted by mass")
	}
	if halos[0].Cells != 512 {
		t.Fatalf("biggest halo %d cells, want 512", halos[0].Cells)
	}
}

func TestHaloFinderMinCells(t *testing.T) {
	g := blobField(16, 8, 8, 8, 1, 1e6) // tiny blob, 7 cells at r=1
	if halos := FindHalos(g, HaloFinderOptions{MinCells: 100}); len(halos) != 0 {
		t.Fatalf("MinCells=100 still found %d halos", len(halos))
	}
	if halos := FindHalos(g, HaloFinderOptions{MinCells: 1}); len(halos) != 1 {
		t.Fatalf("MinCells=1 found %d halos, want 1", len(halos))
	}
}

func TestCompareHalosIdentical(t *testing.T) {
	g := blobField(32, 16, 16, 16, 4, 1e5)
	d, err := CompareHalos(g, g, HaloFinderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.RelMassDiff != 0 || d.CellNumDiff != 0 {
		t.Fatalf("self-compare diff: %+v", d)
	}
}

func TestCompareHalosDetectsDistortion(t *testing.T) {
	g := blobField(64, 16, 16, 16, 5, 1e5)
	pert := g.Clone()
	// Erode the halo: pull boundary cells below threshold.
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			for z := 0; z < 64; z++ {
				dx, dy, dz := x-16, y-16, z-16
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > 16 && r2 <= 25 {
					pert.Set(x, y, z, 1)
				}
			}
		}
	}
	d, err := CompareHalos(g, pert, HaloFinderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.RelMassDiff <= 0 || d.CellNumDiff <= 0 {
		t.Fatalf("distortion not detected: %+v", d)
	}
}

func TestCompareHalosNoOriginal(t *testing.T) {
	g := grid.NewCube[float32](8)
	g.Fill(1)
	if _, err := CompareHalos(g, g, HaloFinderOptions{}); err == nil {
		t.Fatal("flat field has no halos; CompareHalos should error")
	}
}

func TestHaloFinderOnSimulatedField(t *testing.T) {
	// The synthetic baryon density must contain halos (heavy lognormal
	// tail) — this is what makes the Table 3 experiment meaningful.
	ds, err := sim.Generate(sim.Spec{
		Name: "h", FinestN: 64, Levels: 1, UnitBlock: 4, Seed: 31,
		LeafFractions: []float64{1},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	halos := FindHalos(ds.FlattenToUniform(), HaloFinderOptions{MinCells: 4})
	if len(halos) == 0 {
		t.Fatal("no halos in simulated baryon density field")
	}
}
