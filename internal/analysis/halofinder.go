package analysis

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// Halo is one over-density found by the halo finder: its total mass (sum
// of cell values), cell count, and center of mass.
type Halo struct {
	Mass    float64
	Cells   int
	X, Y, Z float64 // center of mass in cell coordinates
}

// HaloFinderOptions mirrors the two criteria of Sec. 4.2 metric 6: a cell
// is a halo candidate when its value exceeds ThresholdFactor × mean, and a
// connected component of candidates is a halo when it has at least
// MinCells cells.
type HaloFinderOptions struct {
	// ThresholdFactor defaults to 81.66, the paper's value.
	ThresholdFactor float64
	// MinCells defaults to 8.
	MinCells int
}

func (o HaloFinderOptions) withDefaults() HaloFinderOptions {
	if o.ThresholdFactor == 0 {
		o.ThresholdFactor = 81.66
	}
	if o.MinCells == 0 {
		o.MinCells = 8
	}
	return o
}

// FindHalos labels 6-connected components of cells above the threshold and
// returns the halos sorted by descending mass.
func FindHalos[T grid.Float](rho *grid.Grid3[T], opts HaloFinderOptions) []Halo {
	opts = opts.withDefaults()
	mean := rho.Mean()
	thr := opts.ThresholdFactor * mean
	d := rho.Dim

	// Flood fill with an explicit stack (fields can have large halos).
	visited := make([]bool, d.Count())
	var halos []Halo
	var stack []int
	for start := range rho.Data {
		if visited[start] || float64(rho.Data[start]) <= thr {
			continue
		}
		var h Halo
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			v := float64(rho.Data[i])
			x, y, z := d.Coords(i)
			h.Mass += v
			h.Cells++
			h.X += v * float64(x)
			h.Y += v * float64(y)
			h.Z += v * float64(z)
			for _, nb := range [6][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
				nx, ny, nz := x+nb[0], y+nb[1], z+nb[2]
				if !d.Contains(nx, ny, nz) {
					continue
				}
				j := d.Index(nx, ny, nz)
				if !visited[j] && float64(rho.Data[j]) > thr {
					visited[j] = true
					stack = append(stack, j)
				}
			}
		}
		if h.Cells >= opts.MinCells {
			if h.Mass > 0 {
				h.X /= h.Mass
				h.Y /= h.Mass
				h.Z /= h.Mass
			}
			halos = append(halos, h)
		}
	}
	sort.Slice(halos, func(i, j int) bool {
		if halos[i].Mass != halos[j].Mass {
			return halos[i].Mass > halos[j].Mass
		}
		return halos[i].Cells > halos[j].Cells
	})
	return halos
}

// HaloDiff compares the biggest halo of the original and reconstructed
// fields — the quantities the paper's Table 3 reports.
type HaloDiff struct {
	Count, CountRecon int
	RelMassDiff       float64
	CellNumDiff       int
}

// CompareHalos runs the finder on both fields and diffs the biggest halo.
func CompareHalos[T grid.Float](orig, recon *grid.Grid3[T], opts HaloFinderOptions) (HaloDiff, error) {
	ho := FindHalos(orig, opts)
	hr := FindHalos(recon, opts)
	if len(ho) == 0 {
		return HaloDiff{}, fmt.Errorf("analysis: no halos in original field")
	}
	d := HaloDiff{Count: len(ho), CountRecon: len(hr)}
	if len(hr) == 0 {
		d.RelMassDiff = 1
		d.CellNumDiff = ho[0].Cells
		return d, nil
	}
	big, bigR := ho[0], hr[0]
	d.RelMassDiff = abs(big.Mass-bigR.Mass) / big.Mass
	d.CellNumDiff = absInt(big.Cells - bigR.Cells)
	return d, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
