// Package analysis implements the two cosmology-specific post-analysis
// metrics of the TAC paper's Sec. 4.2: the matter power spectrum P(k)
// (metric 5, the paper runs Gimlet) and the halo finder (metric 6, the
// Davis et al. friends-of-friends-style over-density finder Nyx uses).
// Both consume uniform-resolution grids, i.e. flattened AMR datasets.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
)

// PowerSpectrum holds radially binned P(k): Pk[i] is the mean power of
// modes with ⌊|k|⌋ == K[i], k in grid frequency units.
type PowerSpectrum struct {
	K  []float64
	Pk []float64
}

// ComputePowerSpectrum computes the matter power spectrum of a density
// field: the squared magnitude of the Fourier transform of the density
// contrast δ = ρ/ρ̄ − 1, binned in spherical shells of |k|. The field edge
// must be a power of two.
func ComputePowerSpectrum[T grid.Float](rho *grid.Grid3[T]) (PowerSpectrum, error) {
	n := rho.Dim.X
	if !rho.Dim.IsCube() || !fft.IsPow2(n) {
		return PowerSpectrum{}, fmt.Errorf("analysis: power spectrum needs a power-of-two cube, got %v", rho.Dim)
	}
	mean := rho.Mean()
	if mean == 0 {
		return PowerSpectrum{}, fmt.Errorf("analysis: zero-mean density field")
	}
	c := fft.NewGrid3C(n)
	inv := 1 / mean
	for i, v := range rho.Data {
		c.Data[i] = complex(float64(v)*inv-1, 0)
	}
	fft.Forward3(c)

	nbins := n / 2
	sum := make([]float64, nbins)
	cnt := make([]int, nbins)
	norm := 1 / float64(len(c.Data))
	for x := 0; x < n; x++ {
		fx := float64(fft.FreqIndex(x, n))
		for y := 0; y < n; y++ {
			fy := float64(fft.FreqIndex(y, n))
			base := (x*n + y) * n
			for z := 0; z < n; z++ {
				fz := float64(fft.FreqIndex(z, n))
				k := math.Sqrt(fx*fx + fy*fy + fz*fz)
				bin := int(k)
				if bin < 1 || bin >= nbins {
					continue
				}
				v := c.Data[base+z]
				p := (real(v)*real(v) + imag(v)*imag(v)) * norm
				sum[bin] += p
				cnt[bin]++
			}
		}
	}
	var ps PowerSpectrum
	for b := 1; b < nbins; b++ {
		if cnt[b] == 0 {
			continue
		}
		ps.K = append(ps.K, float64(b))
		ps.Pk = append(ps.Pk, sum[b]/float64(cnt[b]))
	}
	return ps, nil
}

// RelativeError returns per-bin |P′(k)−P(k)|/P(k) for two spectra with
// identical binning, and the maximum over bins with k < kMax — the paper's
// acceptance criterion is a maximum relative error within 1% for all
// k < 10 (scaled to our grid: k below half the Nyquist bin).
func (ps PowerSpectrum) RelativeError(other PowerSpectrum, kMax float64) ([]float64, float64, error) {
	if len(ps.K) != len(other.K) {
		return nil, 0, fmt.Errorf("analysis: spectra have %d vs %d bins", len(ps.K), len(other.K))
	}
	errs := make([]float64, len(ps.K))
	var maxErr float64
	for i := range ps.K {
		if ps.Pk[i] == 0 {
			continue
		}
		errs[i] = math.Abs(other.Pk[i]-ps.Pk[i]) / ps.Pk[i]
		if ps.K[i] < kMax && errs[i] > maxErr {
			maxErr = errs[i]
		}
	}
	return errs, maxErr, nil
}
