package server

import (
	"errors"
	"sync"
)

// errFillPanicked is what waiters of a collapsed call observe when the
// executing fill panicked: the panic propagates on the executing
// goroutine (net/http turns it into a 500 for that one request), and
// everyone who piggybacked gets a real error instead of a zero value.
var errFillPanicked = errors.New("server: singleflight fill panicked")

// group collapses concurrent calls with the same key into one execution:
// the first caller runs fn, everyone else arriving before it finishes
// blocks and shares the result. The cache uses it so that N simultaneous
// requests for the same uncached frame decode it exactly once instead of
// N times — under a thundering herd the decode cost per frame is O(1),
// not O(requests).
type group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do executes fn once per key at a time, returning the shared result and
// whether this caller piggybacked on another's execution.
func (g *group[K, V]) Do(key K, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*flightCall[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall[V]{err: errFillPanicked}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
