// Package server implements tacd's concurrent TAC serving layer: a
// long-lived HTTP service that opens one or more TACA archives once and
// serves snapshot / level / region extraction out of them under
// contention. Three mechanisms keep N concurrent requests from costing N
// full decodes:
//
//   - per-archive reader reuse: each archive is opened (index parsed)
//     exactly once, and every request reads frames through the shared
//     io.ReaderAt, which archive.Reader supports from any number of
//     goroutines;
//   - a sharded, byte-budgeted LRU cache over decoded block batches,
//     keyed at exactly the container's frame granularity
//     (archive/member/level/batch), so the popular frames of a campaign
//     stay decoded;
//   - singleflight collapse of concurrent misses, so a thundering herd
//     on one frame decodes it once while everyone else waits for the
//     shared result.
//
// Decoding borrows pooled sz engines (archive.Reader.DecodeBatch), so
// steady-state serving allocates only response buffers.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/url"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/remote"
	"repro/internal/replica"
)

// Defaults for Config zero values.
const (
	DefaultCacheBytes  = 256 << 20 // 256 MiB of decoded batches
	DefaultCacheShards = 16
	DefaultIngestQueue = 4
	// DefaultRetryAttempts is how many times a transient frame-read
	// failure is retried before the request fails.
	DefaultRetryAttempts = 3
	// DefaultRetryBackoff is the first retry's backoff; each subsequent
	// retry doubles it, and every sleep is jittered over [0.5d, 1.5d).
	DefaultRetryBackoff = 5 * time.Millisecond
	// DefaultQuarantineAfter is how many deterministic corruption
	// detections against one member take it out of service.
	DefaultQuarantineAfter = 2
)

// Sentinels the HTTP layer maps to status codes (errors.Is); every
// client-attributable failure in this package wraps one of them.
var (
	// ErrNotFound tags lookups of archives, snapshots, levels or batches
	// that do not exist.
	ErrNotFound = errors.New("not found")
	// ErrBadRequest tags malformed or out-of-range request parameters.
	ErrBadRequest = errors.New("bad request")
	// ErrReadOnly tags ingest attempts on archives not opened for append.
	ErrReadOnly = errors.New("archive is read-only")
	// ErrBusy tags ingest attempts rejected by a full queue (backpressure;
	// the HTTP layer answers 429 with Retry-After).
	ErrBusy = errors.New("ingest queue full")
	// ErrDraining tags requests refused because the server is shutting
	// down.
	ErrDraining = errors.New("server is draining")
)

// Config parameterizes a Server.
type Config struct {
	// CacheBytes budgets the decoded-batch LRU cache; 0 means
	// DefaultCacheBytes. The budget is split evenly across shards.
	CacheBytes int64
	// CacheShards splits the cache into independently locked shards;
	// 0 means DefaultCacheShards.
	CacheShards int
	// Workers bounds the per-request batch fan-out during level and
	// region assembly; 0 means GOMAXPROCS, 1 assembles serially.
	Workers int
	// IngestQueue bounds the snapshots queued (per writable archive)
	// behind the one being compressed; an arriving ingest finding the
	// queue full is rejected with ErrBusy. 0 means DefaultIngestQueue.
	IngestQueue int
	// IngestKeyframe, when ≥ 2, makes ingested members delta-code against
	// the archive's committed tail (archive.Writer.Keyframe): every K-th
	// member per field is a keyframe bounding the reference chain. 0 or 1
	// keeps ingest in intra mode, byte-identical to previous releases.
	IngestKeyframe int
	// RetryAttempts bounds retries of transient frame-read failures
	// (archive.ErrIO) before a request fails; 0 means
	// DefaultRetryAttempts, negative disables retrying. Deterministic
	// corruption (checksum mismatches) is never retried.
	RetryAttempts int
	// RetryBackoff is the first retry's backoff, doubled per attempt and
	// jittered; 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// QuarantineAfter is how many deterministic corruption detections
	// against one member quarantine it (requests for it answer
	// ErrQuarantined while every other member keeps serving); 0 means
	// DefaultQuarantineAfter, negative disables quarantining.
	QuarantineAfter int
	// ScrubInterval, when > 0, runs a background scrubber that verifies
	// every frame of every registered archive on this period,
	// quarantining damaged members (and their dependents) before a
	// client ever hits them. 0 disables the scrubber; ScrubOnce remains
	// callable.
	ScrubInterval time.Duration
	// RequestTimeout, when > 0, bounds each HTTP extraction request;
	// requests over budget answer 504. 0 leaves requests unbounded.
	RequestTimeout time.Duration
	// Logf receives server-side detail of sanitized 5xx responses (raw
	// I/O errors may carry file paths, URLs and offsets that must not
	// reach clients). nil means log.Printf.
	Logf func(format string, args ...any)
}

// archiveState is the immutable per-generation view of one archive: the
// Reader over a committed footer plus the precomputed per-level ordinal
// tables (OccupiedIndices is O(mask) per call, so it is paid once per
// commit, not per request). Ingest swaps in a fresh state atomically;
// requests that already loaded the old one keep serving from it, which
// stays correct because committed bytes are never overwritten and member
// indices are append-only.
type archiveState struct {
	r    *archive.Reader
	ords [][][]int // [member][level] -> occupied block indices
}

// newArchiveState builds the view for r, reusing prev's ordinal tables
// for the members both generations share.
func newArchiveState(r *archive.Reader, prev *archiveState) *archiveState {
	members := r.Members()
	st := &archiveState{r: r, ords: make([][][]int, len(members))}
	start := 0
	if prev != nil {
		start = copy(st.ords, prev.ords)
	}
	for mi := start; mi < len(members); mi++ {
		levels := members[mi].Levels
		st.ords[mi] = make([][]int, len(levels))
		for li := range levels {
			st.ords[mi][li] = levels[li].Mask.OccupiedIndices()
		}
	}
	return st
}

// servedArchive is one registered archive: an atomically swappable view
// plus, for archives opened for append, the ingester that grows it.
type servedArchive struct {
	name   string
	closer io.Closer
	state  atomic.Pointer[archiveState]
	ing    *ingester     // non-nil iff the archive accepts POST ingest
	health archiveHealth // per-member quarantine state machine

	// Self-healing hooks, set by AddFileReplicas: the local file path
	// (splice target for in-place member repair) and the replicas-only
	// failover reader repairs fetch healthy frames from. Both nil/empty
	// for archives registered without replicas — repair then answers
	// ErrNoReplica.
	path     string
	replicas *replica.Multi
	repairMu sync.Mutex // serializes repair attempts on this archive
}

// view pins the current generation for the duration of one operation.
func (sa *servedArchive) view() *archiveState { return sa.state.Load() }

// reader returns the current generation's Reader (listing handlers).
func (sa *servedArchive) reader() *archive.Reader { return sa.view().r }

// Server routes extraction requests across its registered archives. Add
// archives before serving; the registry itself is guarded, so late
// registration is safe too.
type Server struct {
	cfg   Config
	cache *Cache

	draining atomic.Bool

	health healthCounters
	// sleep and jitter are the backoff seams; tests inject a recording
	// clock and a fixed jitter to assert retry cadence deterministically.
	sleep  func(time.Duration)
	jitter func() float64

	scrubStop chan struct{}
	scrubDone chan struct{}
	scrubOnce sync.Once

	mu       sync.RWMutex
	archives map[string]*servedArchive
	names    []string
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = DefaultCacheShards
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.IngestQueue <= 0 {
		cfg.IngestQueue = DefaultIngestQueue
	}
	if cfg.RetryAttempts == 0 {
		cfg.RetryAttempts = DefaultRetryAttempts
	} else if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheBytes, cfg.CacheShards),
		sleep:    time.Sleep,
		jitter:   defaultJitter,
		archives: make(map[string]*servedArchive),
	}
	if cfg.ScrubInterval > 0 {
		s.scrubStop = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go s.scrubLoop()
	}
	return s
}

// Cache exposes the block cache (stats endpoints, benchmarks, tests).
func (s *Server) Cache() *Cache { return s.cache }

// SetDraining flips the drain flag: while set, /healthz answers 503 and
// new ingests are refused, while read traffic keeps being served. tacd
// sets it on SIGTERM before http.Server.Shutdown so load balancers stop
// routing here during the drain window.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is refusing new ingests.
func (s *Server) Draining() bool { return s.draining.Load() }

// ArchiveSpec describes one archive to register: where its bytes live
// (a local path or an http(s):// URL), which replica copies back it, and
// whether it accepts live ingest. Server.Add is the single registration
// entry point; AddFile / AddFileReplicas / AddAppendFile are deprecated
// wrappers over it.
type ArchiveSpec struct {
	// Primary is the archive's byte source: a local file path, or an
	// http(s):// URL of any range-capable server (another tacd's
	// /a/{name}/raw endpoint, nginx, an S3-style store).
	Primary string
	// Replicas are additional byte-identical copies (paths or URLs):
	// reads fail over to them when the primary errors, and they are the
	// fetch source for member repair. A replica lagging generations is
	// tolerated — reads past its end fail over.
	Replicas []string
	// Append opens the archive read-write for POST ingest. The primary
	// must be a local path and Replicas must be empty (the repair splice
	// and the append tail would race over the same region).
	Append bool
	// Ingest sets compression parameters for ingested members (Append
	// only). A zero ErrorBound inherits from the archive's newest member.
	Ingest codec.Config
	// Keyframe, when ≥ 2, delta-codes ingested members with this
	// keyframe interval; 0 falls back to Config.IngestKeyframe.
	Keyframe int
	// Checksums and FooterSum set the integrity policy for ingested
	// frames (archive.Writer.Checksums / FooterSum). Appending to an
	// archive that already carries digests keeps them regardless.
	Checksums bool
	FooterSum bool
	// Remote tunes URL sources. A zero SegmentBytes is auto-sized to the
	// archive's typical frame span once the footer is parsed.
	Remote remote.Config
}

// Add opens every source named by spec and registers the archive under
// name (empty name derives one from the primary, mirroring SpecName).
// It returns the registered name. This is the one registration entry
// point; every layer — local files, URL primaries, replicated sets,
// append mode — is a field on the spec, not a separate method.
func (s *Server) Add(name string, spec ArchiveSpec) (string, error) {
	if spec.Primary == "" {
		return "", fmt.Errorf("server: spec has no primary source")
	}
	if name == "" {
		name = deriveName(spec.Primary)
	}
	if spec.Append {
		return s.addAppend(name, spec)
	}
	if len(spec.Replicas) == 0 {
		src, size, err := s.openSource(spec.Primary, spec.Remote)
		if err != nil {
			return "", err
		}
		r, err := archive.Open(src, size)
		if err != nil {
			src.Close()
			return "", fmt.Errorf("%s: %w", spec.Primary, err)
		}
		tuneRemote(r, src, spec.Remote)
		if err := s.AddReader(name, r, src); err != nil {
			src.Close()
			return "", err
		}
		return name, nil
	}
	srcs := make([]replica.Source, 0, 1+len(spec.Replicas))
	closeAll := func() {
		for _, src := range srcs {
			if c, ok := src.(io.Closer); ok {
				c.Close()
			}
		}
	}
	primary, size, err := s.openSource(spec.Primary, spec.Remote)
	if err != nil {
		return "", err
	}
	srcs = append(srcs, primary)
	for _, rp := range spec.Replicas {
		src, _, err := s.openSource(rp, spec.Remote)
		if err != nil {
			closeAll()
			return "", err
		}
		srcs = append(srcs, src)
	}
	serve, err := replica.New(replica.Config{}, srcs...)
	if err != nil {
		closeAll()
		return "", err
	}
	// The repair fetch path reads from the replicas only — re-fetching a
	// damaged frame from the file being repaired would splice the damage
	// back. Sources are shared with the serve Multi; only serve owns
	// closing them.
	fetch, err := replica.New(replica.Config{}, srcs[1:]...)
	if err != nil {
		serve.Close()
		return "", err
	}
	r, err := archive.Open(serve, size)
	if err != nil {
		serve.Close()
		return "", fmt.Errorf("%s: %w", spec.Primary, err)
	}
	tuneRemote(r, primary, spec.Remote)
	// In-place member repair splices into the primary file; a URL
	// primary has no splice target, so repair stays ErrNoReplica there
	// while per-read failover still works.
	path := spec.Primary
	if remote.IsURL(path) {
		path = ""
	}
	sa := &servedArchive{name: name, closer: serve, path: path, replicas: fetch}
	if err := s.addArchive(sa, r); err != nil {
		serve.Close()
		return "", err
	}
	return name, nil
}

// sourceCloser is a replica.Source that can release its resources.
type sourceCloser interface {
	replica.Source
	io.Closer
}

// openSource opens one byte source named by a path or URL.
func (s *Server) openSource(spec string, rcfg remote.Config) (sourceCloser, int64, error) {
	if remote.IsURL(spec) {
		rr, err := remote.Open(spec, rcfg)
		if err != nil {
			return nil, 0, err
		}
		return rr, rr.Size(), nil
	}
	fs, err := replica.OpenFile(spec)
	if err != nil {
		return nil, 0, err
	}
	return fs, fs.Size(), nil
}

// tuneRemote sizes a remote source's read-ahead segments to the parsed
// archive's typical frame span, unless the spec pinned an explicit
// size. A frame is the archive's unit of read, so one-frame segments
// get each frame fetched over the wire exactly once (singleflight +
// cache) while keeping scattered ROI reads from dragging in neighbors
// they never touch — larger segments were measured to double or triple
// the bytes fetched for region queries for a marginal request-count
// saving on sequential scans.
func tuneRemote(r *archive.Reader, src replica.Source, rcfg remote.Config) {
	rr, ok := src.(*remote.Reader)
	if !ok || rcfg.SegmentBytes != 0 {
		return
	}
	if fb := r.TypicalFrameBytes(); fb > 0 {
		seg := int64(1)
		for seg < fb {
			seg <<= 1
		}
		rr.Retune(seg)
	}
}

// deriveName is the serving name derived from a primary source: the
// base name minus extension for paths; for URLs, the last path element
// (with a trailing /raw resolving to its parent, so mounting another
// tacd's /a/{name}/raw endpoint inherits that name).
func deriveName(primary string) string {
	if remote.IsURL(primary) {
		p := primary
		if u, err := url.Parse(primary); err == nil && u.Path != "" {
			p = u.Path
		}
		p = strings.TrimSuffix(p, "/")
		if rest, ok := strings.CutSuffix(p, "/raw"); ok && path.Base(rest) != "/" {
			p = rest
		}
		base := path.Base(p)
		return strings.TrimSuffix(base, path.Ext(base))
	}
	return strings.TrimSuffix(filepath.Base(primary), filepath.Ext(primary))
}

// SpecName resolves the serving name of a CLI archive spec: the
// explicit name of name=path-or-URL, else the derived name (see
// deriveName). cmd/tacd uses it to bind -replica flags by name before
// anything is opened.
func SpecName(spec string) string {
	name, _ := splitSpec(spec)
	return name
}

// SplitSpec splits a CLI archive spec into its serving name and primary
// source (path or URL), per the SpecName rules.
func SplitSpec(spec string) (name, primary string) {
	return splitSpec(spec)
}

// splitSpec splits a CLI spec into (name, primary). The name=primary
// form only applies when the part before '=' looks like a name (no '/'
// or ':'), so bare URLs with query strings are not mis-split.
func splitSpec(spec string) (name, primary string) {
	if n, p, ok := strings.Cut(spec, "="); ok && !strings.ContainsAny(n, "/:") {
		return n, p
	}
	return deriveName(spec), spec
}

// AddReader registers an already-opened archive under name. closer, if
// non-nil, is closed by Server.Close. Names must be unique and
// non-empty.
func (s *Server) AddReader(name string, r *archive.Reader, closer io.Closer) error {
	return s.add(name, r, closer, nil)
}

func (s *Server) add(name string, r *archive.Reader, closer io.Closer, ing *ingester) error {
	return s.addArchive(&servedArchive{name: name, closer: closer, ing: ing}, r)
}

func (s *Server) addArchive(sa *servedArchive, r *archive.Reader) error {
	name, ing := sa.name, sa.ing
	if name == "" {
		return fmt.Errorf("server: empty archive name")
	}
	sa.state.Store(newArchiveState(r, nil))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.archives[name]; dup {
		return fmt.Errorf("server: archive %q already registered", name)
	}
	s.archives[name] = sa
	s.names = append(s.names, name)
	sort.Strings(s.names)
	if ing != nil {
		ing.sa = sa
		go ing.run()
	}
	return nil
}

// AddFile opens a .taca file (or URL) and registers it under its
// derived name (override by passing spec as "name=path").
//
// Deprecated: use Add with an ArchiveSpec.
func (s *Server) AddFile(spec string) (string, error) {
	name, primary := splitSpec(spec)
	return s.Add(name, ArchiveSpec{Primary: primary})
}

// AddFileReplicas is AddFile with replica copies attached: reads fail
// over to them when the primary errors, and a quarantined member is
// automatically re-fetched, digest-verified, and spliced back into the
// primary.
//
// Deprecated: use Add with an ArchiveSpec.
func (s *Server) AddFileReplicas(spec string, replicaPaths []string) (string, error) {
	name, primary := splitSpec(spec)
	return s.Add(name, ArchiveSpec{Primary: primary, Replicas: replicaPaths})
}

// Close drains every ingester (queued snapshots finish compressing and
// commit before the archive file is sealed and closed) and then closes
// every registered archive that was added with a closer.
func (s *Server) Close() error {
	s.stopScrubber()
	s.mu.Lock()
	archives := s.archives
	s.archives = make(map[string]*servedArchive)
	s.names = nil
	s.mu.Unlock()
	var first error
	for _, sa := range archives {
		if sa.ing != nil {
			if err := sa.ing.stop(); err != nil && first == nil {
				first = err
			}
		}
		if sa.closer != nil {
			if err := sa.closer.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	// Drop every cached batch: entries are keyed by archive name, so a
	// later Add under a reused name must never serve blocks decoded from
	// the old file.
	s.cache.Purge()
	return first
}

// Names returns the registered archive names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.names...)
}

// lookup resolves an archive name.
func (s *Server) lookup(name string) (*servedArchive, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sa, ok := s.archives[name]
	if !ok {
		return nil, fmt.Errorf("server: %w: no archive %q", ErrNotFound, name)
	}
	return sa, nil
}

// member bounds-checks and resolves a member of one pinned generation.
func (sa *servedArchive) member(st *archiveState, mi int) (*archive.Member, error) {
	members := st.r.Members()
	if mi < 0 || mi >= len(members) {
		return nil, fmt.Errorf("server: %w: archive %q has no snapshot %d (have %d)", ErrNotFound, sa.name, mi, len(members))
	}
	return &members[mi], nil
}

// batch returns the decoded blocks of one frame, from the cache or
// decoded once via the pooled engines (concurrent misses collapse). The
// cache key carries no generation: members are append-only and committed
// frames immutable, so (member, level, batch) decodes identically under
// every generation that contains it.
//
// Delta frames (campaign archives) resolve their reference chain through
// this same path: the reference batch is fetched under its own canonical
// key — so extracting member t warms the cache for every member on its
// chain, each reconstruction stored exactly once — and only the final
// residual decode runs here. Recursing inside the fill closure is safe:
// singleflight runs fills with no locks held, and chain references are
// strictly backward, so the keys strictly decrease and never collide
// with a fill already in flight on this goroutine.
// Quarantined members — and, transitively, members whose reference chain
// passes through one — answer ErrQuarantined up front, before the cache:
// blocks decoded from a member later found damaged must not keep serving.
// Transient read failures are retried inside the fill (decodeRetry), so
// the decodes ≤ misses cache invariant holds across retries; failures
// that survive retry are inspected by the health state machine, where a
// deterministic corruption counts a strike toward quarantine against the
// member it was detected in.
func (s *Server) batch(sa *servedArchive, st *archiveState, mi, li, b int) (blocks, error) {
	if reason, q := sa.quarantinedMember(mi); q {
		return nil, &memberError{mi: mi, err: fmt.Errorf("server: %w: archive %q snapshot %d: %s", ErrQuarantined, sa.name, mi, reason)}
	}
	v, err := s.cache.GetOrFill(Key{Archive: sa.name, Member: mi, Level: li, Batch: b}, func() (blocks, int64, error) {
		ref, delta, err := st.r.BatchDep(mi, li, b)
		if err != nil {
			return nil, 0, err
		}
		var refs blocks
		if delta {
			refs, err = s.batch(sa, st, ref, li, b)
			if err != nil {
				return nil, 0, err
			}
		}
		v, err := s.decodeRetry(st, mi, li, b, refs)
		if err != nil {
			return nil, 0, err
		}
		return v, batchCost(v), nil
	})
	if err != nil {
		s.noteError(sa, mi, err)
		// Tag the failure with its member so the HTTP envelope can carry
		// machine-readable coordinates (nested tags from a reference
		// chain are fine: errors.As finds the outermost, which is the
		// member the client actually asked for).
		return v, &memberError{mi: mi, err: err}
	}
	return v, nil
}

// forEachBatch runs fn(b) for every batch index in jobs, fanning out
// across the server's worker budget. fn must only touch disjoint state
// per batch (the assembly paths write disjoint cell ranges). The context
// is checked between batches, not inside a decode: a frame decode is
// short and its result is shared through the cache, so abandoning one
// mid-flight would poison the singleflight result other requests wait on.
func (s *Server) forEachBatch(ctx context.Context, jobs []int, fn func(b int) error) error {
	workers := s.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, b := range jobs {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("server: request aborted: %w", err)
			}
			if err := fn(b); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(jobs))
	var failed atomic.Bool
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var ctxErr error
	for ji, b := range jobs {
		// Once any batch fails the request is lost; don't burn decode
		// time on the rest (undispatched jobs stay nil in errs).
		if failed.Load() {
			break
		}
		if err := ctx.Err(); err != nil {
			ctxErr = fmt.Errorf("server: request aborted: %w", err)
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(ji, b int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(b); err != nil {
				errs[ji] = err
				failed.Store(true)
			}
		}(ji, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctxErr
}

// Level assembles the full grid of one refinement level from cached
// batches: byte-identical to archive.Reader.ExtractLevel(mi, li).Grid.
func (s *Server) Level(name string, mi, li int) (*grid.Grid3[amr.Value], *archive.LevelIndex, error) {
	return s.LevelContext(context.Background(), name, mi, li)
}

// LevelContext is Level under a context: assembly stops between batches
// once ctx is done (deadline overruns surface as context.DeadlineExceeded,
// which the HTTP layer maps to 504).
func (s *Server) LevelContext(ctx context.Context, name string, mi, li int) (*grid.Grid3[amr.Value], *archive.LevelIndex, error) {
	sa, err := s.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	st := sa.view()
	m, err := sa.member(st, mi)
	if err != nil {
		return nil, nil, err
	}
	if li < 0 || li >= len(m.Levels) {
		return nil, nil, fmt.Errorf("server: %w: archive %q snapshot %d has no level %d", ErrNotFound, name, mi, li)
	}
	idx := &m.Levels[li]
	g := grid.New[amr.Value](idx.Dims)
	ords := st.ords[mi][li]
	jobs := make([]int, len(idx.Batches))
	for b := range jobs {
		jobs[b] = b
	}
	err = s.forEachBatch(ctx, jobs, func(b int) error {
		bl, err := s.batch(sa, st, mi, li, b)
		if err != nil {
			return err
		}
		lo, hi := idx.BatchSpan(b)
		for k, ord := range ords[lo:hi] {
			bx, by, bz := idx.Mask.Dim.Coords(ord)
			g.SetRegion(blockRegion(bx, by, bz, idx.UnitBlock), bl[k].Data)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return g, idx, nil
}

// Region assembles the dense window of one level covering roi (in that
// level's cell coordinates, clipped to its extent): the returned grid has
// roi.Dims() cells, with cells outside the level's stored blocks zero —
// byte-identical to the same window of the fully extracted level. Only
// frames whose blocks intersect roi are fetched or decoded.
func (s *Server) Region(name string, mi, li int, roi grid.Region) (*grid.Grid3[amr.Value], grid.Region, error) {
	return s.RegionContext(context.Background(), name, mi, li, roi)
}

// RegionContext is Region under a context (see LevelContext).
func (s *Server) RegionContext(ctx context.Context, name string, mi, li int, roi grid.Region) (*grid.Grid3[amr.Value], grid.Region, error) {
	sa, err := s.lookup(name)
	if err != nil {
		return nil, grid.Region{}, err
	}
	st := sa.view()
	m, err := sa.member(st, mi)
	if err != nil {
		return nil, grid.Region{}, err
	}
	if li < 0 || li >= len(m.Levels) {
		return nil, grid.Region{}, fmt.Errorf("server: %w: archive %q snapshot %d has no level %d", ErrNotFound, name, mi, li)
	}
	idx := &m.Levels[li]
	clipped := roi.Intersect(idx.Dims)
	if clipped.Empty() {
		return nil, grid.Region{}, fmt.Errorf("server: %w: region %v does not intersect level %d extent %v", ErrBadRequest, roi, li, idx.Dims)
	}
	roi = clipped
	ub := idx.UnitBlock
	// Block-space window of the ROI: frames with no block inside it are
	// skipped without touching the ReaderAt or the cache.
	br := grid.Region{
		X0: roi.X0 / ub, Y0: roi.Y0 / ub, Z0: roi.Z0 / ub,
		X1: (roi.X1 + ub - 1) / ub, Y1: (roi.Y1 + ub - 1) / ub, Z1: (roi.Z1 + ub - 1) / ub,
	}
	ords := st.ords[mi][li]
	var jobs []int
	for b := range idx.Batches {
		lo, hi := idx.BatchSpan(b)
		for _, ord := range ords[lo:hi] {
			bx, by, bz := idx.Mask.Dim.Coords(ord)
			if bx >= br.X0 && bx < br.X1 && by >= br.Y0 && by < br.Y1 && bz >= br.Z0 && bz < br.Z1 {
				jobs = append(jobs, b)
				break
			}
		}
	}
	out := grid.New[amr.Value](roi.Dims())
	err = s.forEachBatch(ctx, jobs, func(b int) error {
		bl, err := s.batch(sa, st, mi, li, b)
		if err != nil {
			return err
		}
		lo, hi := idx.BatchSpan(b)
		for k, ord := range ords[lo:hi] {
			bx, by, bz := idx.Mask.Dim.Coords(ord)
			reg := blockRegion(bx, by, bz, ub)
			if reg.Clip(roi).Empty() {
				continue
			}
			grid.CopyRegionOverlap(out.Data, roi, bl[k].Data, reg)
		}
		return nil
	})
	if err != nil {
		return nil, grid.Region{}, err
	}
	return out, roi, nil
}

// Dataset assembles a whole member from cached batches: structurally
// equal to archive.Reader.Extract(mi), with every level grid
// byte-identical. The levels share the reader's occupancy masks, which
// must not be mutated.
func (s *Server) Dataset(name string, mi int) (*amr.Dataset, error) {
	return s.DatasetContext(context.Background(), name, mi)
}

// DatasetContext is Dataset under a context (see LevelContext).
func (s *Server) DatasetContext(ctx context.Context, name string, mi int) (*amr.Dataset, error) {
	sa, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	m, err := sa.member(sa.view(), mi)
	if err != nil {
		return nil, err
	}
	ds := &amr.Dataset{Name: m.Name, Field: m.Field, Ratio: m.Ratio}
	for li := range m.Levels {
		g, idx, err := s.LevelContext(ctx, name, mi, li)
		if err != nil {
			return nil, err
		}
		ds.Levels = append(ds.Levels, &amr.Level{Grid: g, UnitBlock: idx.UnitBlock, Mask: idx.Mask})
	}
	return ds, nil
}

// blockRegion is the cell-space region of unit block (bx,by,bz).
func blockRegion(bx, by, bz, ub int) grid.Region {
	return grid.Region{
		X0: bx * ub, Y0: by * ub, Z0: bz * ub,
		X1: (bx + 1) * ub, Y1: (by + 1) * ub, Z1: (bz + 1) * ub,
	}
}
