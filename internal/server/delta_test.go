package server

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/sim"
)

const deltaEB = 1e9

// driftSnap derives the next campaign snapshot from ds: same AMR
// structure, values moved by a smooth per-block drift of a few error
// bounds — the regime where delta members win.
func driftSnap(ds *amr.Dataset, name string, seed int64) *amr.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := ds.Clone()
	out.Name = name
	for _, l := range out.Levels {
		for _, ord := range l.Mask.OccupiedIndices() {
			bx, by, bz := l.Mask.Dim.Coords(ord)
			r := l.BlockRegion(bx, by, bz)
			drift := amr.Value((rng.Float64()*2 - 1) * 3 * deltaEB)
			for x := r.X0; x < r.X1; x++ {
				for y := r.Y0; y < r.Y1; y++ {
					for z := r.Z0; z < r.Z1; z++ {
						i := l.Grid.Dim.Index(x, y, z)
						l.Grid.Data[i] += drift + amr.Value((rng.Float64()*2-1)*deltaEB/4)
					}
				}
			}
		}
	}
	return out
}

// campaignArchiveBytes writes a drifting campaign with the given keyframe
// interval and returns the archive bytes plus the source snapshots.
func campaignArchiveBytes(t testing.TB, steps, keyframe, batchBlocks int) ([]byte, []*amr.Dataset) {
	t.Helper()
	base, err := sim.Generate(sim.Spec{
		Name: "c0", FinestN: 32, Levels: 2, UnitBlock: 4,
		Seed: 41, LeafFractions: []float64{0.3, 0.7},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	snaps := []*amr.Dataset{base}
	for i := 1; i < steps; i++ {
		snaps = append(snaps, driftSnap(snaps[i-1], fmt.Sprintf("c%d", i), int64(i)))
	}
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = batchBlocks
	w.Keyframe = keyframe
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: deltaEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), snaps
}

// totalBatches counts the frames of one member across all levels.
func totalBatches(m *archive.Member) int {
	n := 0
	for li := range m.Levels {
		n += len(m.Levels[li].Batches)
	}
	return n
}

// TestServedDeltaChainByteIdentity serves the deepest member of a
// keyframe/delta campaign and asserts (a) the cache-assembled payload is
// byte-identical to direct extraction, (b) resolving the reference chain
// decoded each chain member exactly once — every intermediate landed in
// the cache under its own key, so (c) a later request for an intermediate
// member is pure cache hits, zero new decodes.
func TestServedDeltaChainByteIdentity(t *testing.T) {
	const steps = 5
	blob, _ := campaignArchiveBytes(t, steps, steps, 8) // one keyframe, chain depth steps-1
	s, r := newTestServer(t, blob, Config{})
	members := r.Members()
	if len(members) != steps {
		t.Fatalf("archive has %d members, want %d", len(members), steps)
	}
	for mi := 1; mi < steps; mi++ {
		if members[mi].Ref != mi-1 {
			t.Fatalf("member %d: Ref %d, want %d (chain intact)", mi, members[mi].Ref, mi-1)
		}
	}

	last := steps - 1
	for li := range members[last].Levels {
		g, _, err := s.Level("test", last, li)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.ExtractLevel(last, li)
		if err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if math.Float32bits(g.Data[i]) != math.Float32bits(want.Grid.Data[i]) {
				t.Fatalf("level %d cell %d: served %g, direct %g", li, i, g.Data[i], want.Grid.Data[i])
			}
		}
	}

	// The chain covers every member once: extracting the tip decoded
	// steps × batches-per-member frames, not more (no re-decode of shared
	// ancestors across batches) and not fewer.
	st := s.Cache().Stats()
	wantDecodes := int64(0)
	for mi := range members {
		wantDecodes += int64(totalBatches(&members[mi]))
	}
	if st.Decodes != wantDecodes {
		t.Fatalf("chain extraction decoded %d frames, want %d (stats %+v)", st.Decodes, wantDecodes, st)
	}

	// Intermediates were cached by the chain walk: serving one now costs
	// zero decodes.
	if _, _, err := s.Level("test", last/2, 0); err != nil {
		t.Fatal(err)
	}
	if st2 := s.Cache().Stats(); st2.Decodes != wantDecodes {
		t.Fatalf("intermediate member re-decoded: %d decodes, want still %d", st2.Decodes, wantDecodes)
	}
}

// TestIngestDeltaChain runs the write path in campaign mode: with
// Config.IngestKeyframe set, ingested snapshots delta-code against the
// archive's committed tail, keyframes cut the chain at the configured
// interval, and every served member stays within the error bound of its
// own source snapshot.
func TestIngestDeltaChain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.taca")

	base, err := sim.Generate(sim.Spec{
		Name: "c0", FinestN: 32, Levels: 2, UnitBlock: 4,
		Seed: 41, LeafFractions: []float64{0.3, 0.7},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddDataset(base, codec.Config{ErrorBound: deltaEB}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{IngestKeyframe: 3})
	if _, err := s.AddAppendFile("live="+path, codec.Config{ErrorBound: deltaEB, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Ingest three drift steps: with K=3 and the committed tail as chain
	// root, members 1 and 2 ride the chain and member 3 is a keyframe.
	snaps := []*amr.Dataset{base}
	for i := 1; i <= 3; i++ {
		ds := driftSnap(snaps[i-1], fmt.Sprintf("c%d", i), int64(100+i))
		snaps = append(snaps, ds)
		var wire bytes.Buffer
		if err := ds.Write(&wire); err != nil {
			t.Fatal(err)
		}
		rec := post(t, h, "/a/live/ingest", wire.Bytes())
		if rec.Code != http.StatusCreated {
			t.Fatalf("ingest %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	// Every ingested member must be served within the bound of its OWN
	// snapshot — per-member guarantee, no accumulation down the chain.
	for mi := 1; mi <= 3; mi++ {
		for li, l := range snaps[mi].Levels {
			g, _, err := s.Level("live", mi, li)
			if err != nil {
				t.Fatal(err)
			}
			for _, ord := range l.Mask.OccupiedIndices() {
				bx, by, bz := l.Mask.Dim.Coords(ord)
				r := l.BlockRegion(bx, by, bz)
				for x := r.X0; x < r.X1; x++ {
					for y := r.Y0; y < r.Y1; y++ {
						for z := r.Z0; z < r.Z1; z++ {
							i := l.Grid.Dim.Index(x, y, z)
							if d := math.Abs(float64(g.Data[i]) - float64(l.Grid.Data[i])); d > deltaEB {
								t.Fatalf("member %d level %d cell %d: error %g > bound %g", mi, li, i, d, deltaEB)
							}
						}
					}
				}
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold reopen: the dependency links the ingester wrote are the
	// keyframe schedule we asked for.
	fr, err := archive.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	wantRef := []int{-1, 0, 1, -1} // K=3: tail chain 0 -> delta, delta, keyframe
	ms := fr.Members()
	if len(ms) != len(wantRef) {
		t.Fatalf("reopened archive has %d members, want %d", len(ms), len(wantRef))
	}
	for mi, want := range wantRef {
		if ms[mi].Ref != want {
			t.Fatalf("member %d: Ref %d, want %d", mi, ms[mi].Ref, want)
		}
	}
}
