package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/faultio"
	"repro/internal/sim"
)

// chaosArchiveBytes builds the two-snapshot test archive with per-frame
// digests, so in-flight bit rot is detected deterministically instead of
// surfacing as silently wrong values.
func chaosArchiveBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 4
	w.Checksums = true
	for ti, frac := range [][]float64{{0.25, 0.75}, {0.55, 0.45}} {
		spec := sim.Spec{
			Name: fmt.Sprintf("snap%d", ti), FinestN: 32, Levels: 2,
			UnitBlock: 4, Seed: 77 + int64(ti), LeafFractions: frac,
		}
		ds, err := sim.Generate(spec, sim.BaryonDensity)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AddDataset(ds, codec.Config{ErrorBound: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameMidpoint locates a byte in the middle of one frame's payload.
func frameMidpoint(t testing.TB, r *archive.Reader, mi, li, b int) int64 {
	t.Helper()
	rec := r.Members()[mi].Levels[li].Batches[b]
	return rec.Offset + rec.Length/2
}

// quarantineBody is httpError's structured 502 payload.
type quarantineBody struct {
	Error       string `json:"error"`
	Quarantined bool   `json:"quarantined"`
	Retryable   bool   `json:"retryable"`
}

// healthOf decodes the /stats health section.
func healthOf(t *testing.T, h http.Handler) HealthStats {
	t.Helper()
	rec := get(t, h, "/stats")
	var out struct {
		Health HealthStats `json:"health"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, rec.Body.String())
	}
	return out.Health
}

// TestChaosBitFlipQuarantinesMember is the headline fault-injection run:
// storage silently flips one bit in one frame of member 0. Requests for
// that member fail with corruption errors until the strike threshold
// quarantines it (structured 502 from then on, for every level of the
// member), /healthz degrades, /stats names the member — and member 1,
// served through the same hostile ReaderAt, stays byte-identical to a
// clean extraction throughout.
func TestChaosBitFlipQuarantinesMember(t *testing.T) {
	blob := chaosArchiveBytes(t)
	s, fr, _ := flakyServer(t, blob, Config{Workers: 1, QuarantineAfter: 2})
	h := s.Handler()
	sa, err := s.lookup("test")
	if err != nil {
		t.Fatal(err)
	}
	fr.SetPlan(faultio.FlipByte(frameMidpoint(t, sa.reader(), 0, 0, 0), 0x20))

	// Strikes 1 and 2: corruption is detected (500, error names the
	// damage), and the second strike trips the quarantine.
	for strike := 1; strike <= 2; strike++ {
		rec := get(t, h, "/a/test/snap/0/level/0")
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("strike %d: status %d, want 500: %s", strike, rec.Code, rec.Body.String())
		}
		if !bytes.Contains(rec.Body.Bytes(), []byte("checksum")) {
			t.Fatalf("strike %d: error does not name the checksum mismatch: %s", strike, rec.Body.String())
		}
	}

	// Quarantined: every level of member 0 answers the structured 502.
	for li := 0; li < 2; li++ {
		rec := get(t, h, fmt.Sprintf("/a/test/snap/0/level/%d", li))
		if rec.Code != http.StatusBadGateway {
			t.Fatalf("quarantined member level %d: status %d, want 502: %s", li, rec.Code, rec.Body.String())
		}
		var qb quarantineBody
		if err := json.Unmarshal(rec.Body.Bytes(), &qb); err != nil {
			t.Fatalf("502 body is not the structured form: %v (%s)", err, rec.Body.String())
		}
		if !qb.Quarantined || qb.Retryable || qb.Error == "" {
			t.Fatalf("structured 502 fields: %+v", qb)
		}
	}

	// The node is degraded but alive, and /stats names the member.
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK || rec.Body.String() != "degraded\n" {
		t.Fatalf("healthz: %d %q, want 200 \"degraded\"", rec.Code, rec.Body.String())
	}
	hs := healthOf(t, h)
	if hs.QuarantinedMembers != 1 || hs.CorruptEvents < 2 || !hs.Degraded {
		t.Fatalf("health stats: %+v", hs)
	}
	if qs := hs.Quarantined["test"]; len(qs) != 1 || qs[0] != 0 {
		t.Fatalf("quarantine map: %v, want member 0 of \"test\"", hs.Quarantined)
	}

	// Member 1, through the same hostile storage, serves byte-identical.
	for li := 0; li < 2; li++ {
		rec := get(t, h, fmt.Sprintf("/a/test/snap/1/level/%d", li))
		if rec.Code != http.StatusOK {
			t.Fatalf("healthy member level %d: status %d: %s", li, rec.Code, rec.Body.String())
		}
		if want := cleanLevelBody(t, blob, 1, li); !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("healthy member level %d differs from a clean extraction", li)
		}
	}
}

// TestChaosScrubQuarantinesBeforeTraffic arms the bit flip before any
// client request and lets the scrubber find it: after one sweep the
// damaged member is out of service — no client ever saw a corrupt read
// fail — and the healthy member still serves.
func TestChaosScrubQuarantinesBeforeTraffic(t *testing.T) {
	blob := chaosArchiveBytes(t)
	s, fr, _ := flakyServer(t, blob, Config{Workers: 1})
	h := s.Handler()
	sa, err := s.lookup("test")
	if err != nil {
		t.Fatal(err)
	}
	fr.SetPlan(faultio.FlipByte(frameMidpoint(t, sa.reader(), 0, 1, 0), 0x08))

	if issues := s.ScrubOnce(); issues == 0 {
		t.Fatal("scrub found no issues on storage that flips a frame byte")
	}
	hs := healthOf(t, h)
	if hs.ScrubPasses != 1 || hs.ScrubIssues == 0 || hs.QuarantinedMembers != 1 {
		t.Fatalf("health after scrub: %+v", hs)
	}
	if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusBadGateway {
		t.Fatalf("scrub-quarantined member: status %d, want 502", rec.Code)
	}
	if rec := get(t, h, "/a/test/snap/1/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("healthy member after scrub: status %d", rec.Code)
	} else if want := cleanLevelBody(t, blob, 1, 0); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("healthy member differs from a clean extraction after scrub")
	}
	// A second sweep is idempotent: the member is already out.
	s.ScrubOnce()
	if hs := healthOf(t, h); hs.QuarantinedMembers != 1 {
		t.Fatalf("second sweep changed the quarantine set: %+v", hs)
	}
}

// TestChaosBackgroundScrubber runs the real timer-driven scrub loop
// against storage that rots after the server starts, and waits for the
// node to degrade on its own. Close must stop the loop cleanly.
func TestChaosBackgroundScrubber(t *testing.T) {
	blob := chaosArchiveBytes(t)
	fr := faultio.New(bytes.NewReader(blob))
	r, err := archive.Open(fr, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, ScrubInterval: 2 * time.Millisecond})
	defer s.Close()
	if err := s.AddReader("test", r, nil); err != nil {
		t.Fatal(err)
	}
	fr.SetPlan(faultio.FlipByte(frameMidpoint(t, r, 1, 0, 0), 0x40))
	deadline := time.Now().Add(10 * time.Second)
	for !s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never quarantined the rotting member")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec := get(t, s.Handler(), "/a/test/snap/1/level/0"); rec.Code != http.StatusBadGateway {
		t.Fatalf("rotted member after background scrub: status %d, want 502", rec.Code)
	}
	if rec := get(t, s.Handler(), "/a/test/snap/0/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("healthy member: status %d", rec.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosLatencyDeadline stalls every read far past the configured
// request budget: the request must come back 504, not hang. The stall is
// ten seconds but the injected delay honors context cancellation, so the
// in-flight read is freed the moment the deadline fires — the whole
// request lives and dies in tens of milliseconds, not storage time.
func TestChaosLatencyDeadline(t *testing.T) {
	blob := chaosArchiveBytes(t)
	fr := faultio.New(bytes.NewReader(blob))
	r, err := archive.Open(fr, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, RequestTimeout: 20 * time.Millisecond})
	if err := s.AddReader("test", r, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	fr.SetContext(ctx)
	fr.SetPlan(faultio.Delay(10 * time.Second))
	start := time.Now()
	rec := get(t, s.Handler(), "/a/test/snap/0/level/0")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("stalled storage: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stalled read pinned the request for %v; cancellation did not free it", el)
	}
	// With the stall lifted the same request serves clean — a deadline
	// overrun is transient, never a quarantine.
	fr.SetPlan(nil)
	fr.SetContext(nil)
	if rec := get(t, s.Handler(), "/a/test/snap/0/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("after the stall lifted: status %d", rec.Code)
	}
	if hs := s.HealthStats(); hs.QuarantinedMembers != 0 {
		t.Fatalf("deadline overrun quarantined a member: %+v", hs)
	}
}
