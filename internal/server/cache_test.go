package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/amr"
	"repro/internal/grid"
)

// fakeBlocks makes a distinguishable one-block batch.
func fakeBlocks(tag amr.Value) blocks {
	g := grid.NewCube[amr.Value](2)
	g.Fill(tag)
	return blocks{g}
}

func key(b int) Key { return Key{Archive: "a", Member: 0, Level: 0, Batch: b} }

// fill returns a constant-cost fill that counts executions.
func fill(tag amr.Value, cost int64, calls *atomic.Int64) func() (blocks, int64, error) {
	return func() (blocks, int64, error) {
		calls.Add(1)
		return fakeBlocks(tag), cost, nil
	}
}

// TestCacheEvictionTinyBudget squeezes distinct keys through a
// single-shard cache whose budget fits only one entry: every insert after
// the first evicts its predecessor, and the resident set never exceeds
// the budget.
func TestCacheEvictionTinyBudget(t *testing.T) {
	c := NewCache(100, 1)
	var calls atomic.Int64
	for b := 0; b < 5; b++ {
		if _, err := c.GetOrFill(key(b), fill(amr.Value(b), 60, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries %d, want 1 (stats %+v)", st.Entries, st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions %d, want 4", st.Evictions)
	}
	// The survivor is the most recent key; re-requesting it hits.
	if _, err := c.GetOrFill(key(4), fill(4, 60, &calls)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got != 1 {
		t.Fatalf("hits %d, want 1", got)
	}
	if calls.Load() != 5 {
		t.Fatalf("fills %d, want 5", calls.Load())
	}
}

// TestCacheLRUOrder verifies recency bumps: touching an old entry saves
// it from the next eviction.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(130, 1) // fits two 60-cost entries
	var calls atomic.Int64
	mustFill := func(b int) {
		t.Helper()
		if _, err := c.GetOrFill(key(b), fill(amr.Value(b), 60, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	mustFill(0)
	mustFill(1)
	mustFill(0) // bump 0; 1 becomes LRU
	mustFill(2) // evicts 1
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	before := calls.Load()
	mustFill(0) // still resident
	if calls.Load() != before {
		t.Fatal("key 0 was evicted despite recency bump")
	}
	mustFill(1) // gone: must refill
	if calls.Load() != before+1 {
		t.Fatal("key 1 unexpectedly survived")
	}
}

// TestCacheOversizedEntry: an entry larger than the whole budget is still
// admitted so repeats hit instead of thrashing.
func TestCacheOversizedEntry(t *testing.T) {
	c := NewCache(10, 1)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrFill(key(0), fill(1, 1000, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("oversized entry decoded %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 2 hits and 1 entry", st)
	}
}

// TestCacheFillError: errors are returned, never cached.
func TestCacheFillError(t *testing.T) {
	c := NewCache(1000, 1)
	boom := errors.New("boom")
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		_, err := c.GetOrFill(key(0), func() (blocks, int64, error) {
			calls.Add(1)
			return nil, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err %v, want boom", err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("failed fill ran %d times, want 2 (errors must not be cached)", calls.Load())
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error left %d entries resident", st.Entries)
	}
}

// TestCacheConcurrentDistinctKeys runs concurrent fills over many keys
// through many shards (race coverage for the shard locks and the flight
// map) and checks the counters add up.
func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(1<<20, 8)
	const keys, rounds, workers = 32, 4, 8
	var calls atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for b := 0; b < keys; b++ {
					v, err := c.GetOrFill(key(b), fill(amr.Value(b), 64, &calls))
					if err != nil {
						errCh <- err
						return
					}
					if got := v[0].Data[0]; got != amr.Value(b) {
						errCh <- fmt.Errorf("key %d returned batch tagged %g", b, got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Decodes != keys {
		t.Fatalf("decodes %d, want %d (budget fits everything; each key fills once)", st.Decodes, keys)
	}
	if st.Hits+st.Misses != keys*rounds*workers {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, keys*rounds*workers)
	}
}

// TestSingleflightGroup exercises the group primitive directly: a blocked
// leader, piggybacking followers, one execution.
func TestSingleflightGroup(t *testing.T) {
	var g group[string, int]
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := g.Do("k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 || shared {
			t.Errorf("leader got (%d, shared=%v, %v), want (42, false, nil)", v, shared, err)
		}
	}()
	<-started
	const followers = 4
	var wg sync.WaitGroup
	results := make([]int, followers)
	shareds := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shareds[i], _ = g.Do("k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
		}(i)
	}
	// The leader is parked on release, so the key stays in flight while
	// the followers enter Do; give them ample time to park, and verify
	// none of them executed a fill of their own while the flight was up.
	time.Sleep(50 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("fill ran %d times while leader in flight, want 1", calls.Load())
	}
	close(release)
	wg.Wait()
	<-leaderDone
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("follower %d got %d, want 42 (shared=%v)", i, results[i], shareds[i])
		}
		if !shareds[i] {
			t.Fatalf("follower %d did not piggyback", i)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fill ran %d times, want 1", calls.Load())
	}
}
