package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/remote"
)

// rawServer exposes blob with standard Range/ETag handling, as any
// range-capable origin would.
func rawServer(t testing.TB, blob []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("ETag", `"g0"`)
		http.ServeContent(w, req, "test.taca", time.Time{}, bytes.NewReader(blob))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRemotePrimaryByteIdentity registers an archive whose primary is a
// URL and checks every extraction surface against the same archive read
// locally.
func TestRemotePrimaryByteIdentity(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	ts := rawServer(t, blob)
	local, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{CacheBytes: 1 << 20})
	defer s.Close()
	name, err := s.Add("test", ArchiveSpec{Primary: ts.URL, Remote: remote.Config{SegmentBytes: 8 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if name != "test" {
		t.Fatalf("registered as %q", name)
	}
	for mi := range local.Members() {
		want, err := local.Extract(mi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Dataset("test", mi)
		if err != nil {
			t.Fatal(err)
		}
		for li := range want.Levels {
			if !bytes.Equal(floatBytes(want.Levels[li].Grid.Data), floatBytes(got.Levels[li].Grid.Data)) {
				t.Fatalf("member %d level %d differs between remote and local", mi, li)
			}
		}
	}
}

func floatBytes(vals []amr.Value) []byte {
	var buf bytes.Buffer
	for _, v := range vals {
		fmt.Fprintf(&buf, "%x,", v)
	}
	return buf.Bytes()
}

// TestRemoteAutoSegmentTuning checks that a URL primary opened with no
// explicit segment size gets retuned to the archive's frame span.
func TestRemoteAutoSegmentTuning(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	ts := rawServer(t, blob)
	rr, err := remote.Open(ts.URL, remote.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	r, err := archive.Open(rr, rr.Size())
	if err != nil {
		t.Fatal(err)
	}
	before := rr.SegmentBytes()
	tuneRemote(r, rr, remote.Config{})
	fb := r.TypicalFrameBytes()
	if fb <= 0 {
		t.Fatal("no typical frame size")
	}
	seg := rr.SegmentBytes()
	if seg < 4<<10 || seg > 4<<20 {
		t.Fatalf("tuned segment %d out of clamp range", seg)
	}
	// The tuned segment must be a power of two covering one typical
	// frame (unless clamped at the floor); bigger than 2x means the tune
	// overshot into ROI-overfetch territory.
	if seg > 4<<10 && (seg < fb || seg >= 2*fb) {
		t.Fatalf("tuned segment %d is not the covering power of two for frames of %d bytes (was %d)", seg, fb, before)
	}
}

// TestRemoteFaultsRetryNotQuarantine injects transient connection drops
// into the range origin and asserts the serving tier's existing retry
// machinery absorbs them: reads succeed, retries are counted, and no
// member is quarantined (network faults are ErrIO, not corruption).
func TestRemoteFaultsRetryNotQuarantine(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	var n atomic.Int64
	var armed atomic.Bool // faults start after the footer is parsed
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Drop every third data request mid-body once armed. The headers
		// must be flushed first: a connection lost before any response
		// bytes is retried transparently by net/http's transport and
		// would never reach the serving tier's retry machinery.
		if armed.Load() && n.Add(1)%3 == 1 {
			w.WriteHeader(http.StatusOK)
			w.(http.Flusher).Flush()
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close()
			return
		}
		w.Header().Set("ETag", `"g0"`)
		http.ServeContent(w, req, "test.taca", time.Time{}, bytes.NewReader(blob))
	}))
	defer ts.Close()

	s := New(Config{
		CacheBytes: 1 << 20,
		Logf:       func(string, ...any) {}, // quiet: faults are the point
	})
	defer s.Close()
	s.sleep = func(time.Duration) {}
	// Tiny segments so a snapshot read issues many requests and is
	// guaranteed to hit injected faults.
	if _, err := s.Add("test", ArchiveSpec{Primary: ts.URL, Remote: remote.Config{SegmentBytes: 4 << 10, CacheBytes: -1}}); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	local, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	for mi := range local.Members() {
		want, err := local.Extract(mi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Dataset("test", mi)
		if err != nil {
			t.Fatalf("member %d under faults: %v", mi, err)
		}
		for li := range want.Levels {
			if !bytes.Equal(floatBytes(want.Levels[li].Grid.Data), floatBytes(got.Levels[li].Grid.Data)) {
				t.Fatalf("member %d level %d torn under faults", mi, li)
			}
		}
	}
	hs := s.HealthStats()
	if hs.Retries == 0 {
		t.Fatal("injected faults never exercised the retry path")
	}
	if hs.Quarantines != 0 || hs.QuarantinedMembers != 0 {
		t.Fatalf("network faults quarantined a member: %+v", hs)
	}
	if hs.CorruptEvents != 0 {
		t.Fatalf("network faults counted as corruption strikes: %+v", hs)
	}
}

// TestRemoteMountOnRawEndpoint stacks one serving tier on another: a
// second Server opens the first Server's /v1/a/{name}/raw endpoint as
// its primary, and both must serve identical bytes. Also checks the
// derived name (".../a/test/raw" mounts as "test").
func TestRemoteMountOnRawEndpoint(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	origin, _ := newTestServer(t, blob, Config{})
	defer origin.Close()
	ts := httptest.NewServer(origin.Handler())
	defer ts.Close()

	edge := New(Config{})
	defer edge.Close()
	name, err := edge.Add("", ArchiveSpec{Primary: ts.URL + "/v1/a/test/raw"})
	if err != nil {
		t.Fatal(err)
	}
	if name != "test" {
		t.Fatalf("derived name %q, want %q", name, "test")
	}
	want, err := origin.Dataset("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := edge.Dataset("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	for li := range want.Levels {
		if !bytes.Equal(floatBytes(want.Levels[li].Grid.Data), floatBytes(got.Levels[li].Grid.Data)) {
			t.Fatalf("level %d differs through the raw mount", li)
		}
	}
}

// TestRemoteReplicaFailover serves an archive whose primary file is
// damaged and whose replica is a URL: reads must fail over the network.
func TestRemoteReplicaFailover(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	ts := rawServer(t, blob)
	// The local primary is truncated: its footer parses (we hand the
	// Multi the full size and the replica serves the tail) — simplest is
	// a primary that errors on every read instead.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Range") == "bytes=0-0" {
			w.Header().Set("ETag", `"g0"`)
			http.ServeContent(w, req, "t", time.Time{}, bytes.NewReader(blob))
			return
		}
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer dead.Close()
	s := New(Config{Logf: func(string, ...any) {}})
	defer s.Close()
	s.sleep = func(time.Duration) {}
	if _, err := s.Add("test", ArchiveSpec{
		Primary:  dead.URL,
		Replicas: []string{ts.URL},
		Remote:   remote.Config{SegmentBytes: 8 << 10},
	}); err != nil {
		t.Fatal(err)
	}
	local, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Extract(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Dataset("test", 0)
	if err != nil {
		t.Fatalf("failover to URL replica: %v", err)
	}
	for li := range want.Levels {
		if !bytes.Equal(floatBytes(want.Levels[li].Grid.Data), floatBytes(got.Levels[li].Grid.Data)) {
			t.Fatalf("level %d differs via URL replica", li)
		}
	}
}

// TestV1RoutesAndEnvelope exercises the versioned surface: every
// endpoint must answer under /v1/, and errors must carry the JSON
// envelope with stable codes on both route sets.
func TestV1RoutesAndEnvelope(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, _ := newTestServer(t, blob, Config{})
	defer s.Close()
	h := s.Handler()

	for _, path := range []string{"/healthz", "/v1/healthz"} {
		rec := get(t, h, path)
		if rec.Code != 200 || rec.Body.String() != "ok\n" {
			t.Fatalf("%s = %d %q", path, rec.Code, rec.Body.String())
		}
	}
	for _, path := range []string{
		"/stats", "/v1/stats",
		"/archives", "/v1/archives",
		"/a/test", "/v1/a/test",
		"/a/test/snap/0", "/v1/a/test/snap/0",
	} {
		if rec := get(t, h, path); rec.Code != 200 {
			t.Fatalf("%s = %d", path, rec.Code)
		}
	}
	// Binary surfaces must be byte-identical across route sets.
	legacy := get(t, h, "/a/test/snap/0/amr")
	v1 := get(t, h, "/v1/a/test/snap/0/amr")
	if legacy.Code != 200 || v1.Code != 200 || !bytes.Equal(legacy.Body.Bytes(), v1.Body.Bytes()) {
		t.Fatalf("amr differs across route sets: %d vs %d", legacy.Code, v1.Code)
	}

	// Error envelope, both route sets.
	for _, path := range []string{"/a/nope", "/v1/a/nope"} {
		rec := get(t, h, path)
		if rec.Code != 404 {
			t.Fatalf("%s = %d, want 404", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content-type %q", path, ct)
		}
		var env struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s body %q: %v", path, rec.Body.String(), err)
		}
		if env.Code != "not_found" || env.Message == "" || env.Error != env.Message {
			t.Fatalf("%s envelope %+v", path, env)
		}
	}
	rec := get(t, h, "/v1/a/test/snap/99")
	var env errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || rec.Code != 404 || env.Code != "not_found" {
		t.Fatalf("bad-snapshot envelope: %d %q (%v)", rec.Code, rec.Body.String(), err)
	}
}

// TestRawEndpointRangeSemantics checks the raw endpoint's HTTP
// contract directly: full body, a satisfied Range, and a strong ETag.
func TestRawEndpointRangeSemantics(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, _ := newTestServer(t, blob, Config{})
	defer s.Close()
	h := s.Handler()

	full := get(t, h, "/v1/a/test/raw")
	if full.Code != 200 || !bytes.Equal(full.Body.Bytes(), blob) {
		t.Fatalf("raw full read: %d, %d bytes (want %d)", full.Code, full.Body.Len(), len(blob))
	}
	etag := full.Header().Get("ETag")
	if etag == "" || strings.HasPrefix(etag, "W/") {
		t.Fatalf("raw ETag %q is not strong", etag)
	}
	part := get(t, h, "/a/test/raw", "Range", "bytes=8-23")
	if part.Code != http.StatusPartialContent || !bytes.Equal(part.Body.Bytes(), blob[8:24]) {
		t.Fatalf("raw range read: %d, %q", part.Code, part.Body.Bytes())
	}
	if part.Header().Get("ETag") != etag {
		t.Fatalf("range ETag %q != full ETag %q", part.Header().Get("ETag"), etag)
	}
}

// TestSpecNameDerivation pins the CLI-visible name resolution rules.
func TestSpecNameDerivation(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"runs/alpha.taca", "alpha"},
		{"mine=runs/alpha.taca", "mine"},
		{"http://h:1234/a/origin/raw", "origin"},
		{"https://h/files/camp.taca", "camp"},
		{"edge=http://h/a/origin/raw", "edge"},
		// A query string contains '=' but must not be mis-split as a
		// name=primary form.
		{"http://h/a/origin/raw?x=1", "origin"},
	}
	for _, c := range cases {
		if got := SpecName(c.spec); got != c.want {
			t.Errorf("SpecName(%q) = %q, want %q", c.spec, got, c.want)
		}
	}
}
