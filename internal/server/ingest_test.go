package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/sim"
)

// writeTestArchiveFile materializes the standard two-snapshot test
// archive on disk, for the append path.
func writeTestArchiveFile(t testing.TB, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "live.taca")
	if err := os.WriteFile(path, testArchiveBytes(t, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// ingestSnap generates a fresh snapshot and its .amr wire form.
func ingestSnap(t testing.TB, name string, seed int64) (*amr.Dataset, []byte) {
	t.Helper()
	ds, err := sim.Generate(sim.Spec{
		Name: name, FinestN: 16, Levels: 2, UnitBlock: 4,
		Seed: seed, LeafFractions: []float64{0.4, 0.6},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return ds, buf.Bytes()
}

// post drives the handler with a POST body.
func post(t testing.TB, h http.Handler, url string, body []byte, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", url, bytes.NewReader(body))
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// newAppendServer serves the on-disk archive writably as "live".
func newAppendServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	path := writeTestArchiveFile(t, t.TempDir())
	s := New(cfg)
	if _, err := s.AddAppendFile("live="+path, codec.Config{ErrorBound: 1e9, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	return s, path
}

// TestIngestVisibility appends a snapshot over HTTP and asserts the new
// member is served immediately — no restart, no re-registration — while
// pre-existing members' payloads stay byte-identical; after shutdown the
// served bytes must equal what a cold open of the grown file extracts.
func TestIngestVisibility(t *testing.T) {
	s, path := newAppendServer(t, Config{})
	h := s.Handler()

	before := get(t, h, "/a/live/snap/0/level/0")
	if before.Code != http.StatusOK {
		t.Fatalf("pre-ingest read: status %d", before.Code)
	}
	if rec := get(t, h, "/a/live/snap/2"); rec.Code != http.StatusNotFound {
		t.Fatalf("snapshot 2 before ingest: status %d, want 404", rec.Code)
	}

	_, wire := ingestSnap(t, "live0", 123)
	rec := post(t, h, "/a/live/ingest", wire)
	if rec.Code != http.StatusCreated {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Archive    string `json:"archive"`
		Snapshot   int    `json:"snapshot"`
		Name       string `json:"name"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("ingest response: %v", err)
	}
	if resp.Snapshot != 2 || resp.Name != "live0" || resp.Generation != 1 {
		t.Fatalf("ingest response %+v, want snapshot 2 name live0 generation 1", resp)
	}

	// The appended member is readable on the very next request.
	var served [][]byte
	for li := 0; li < 2; li++ {
		rec := get(t, h, fmt.Sprintf("/a/live/snap/2/level/%d", li))
		if rec.Code != http.StatusOK {
			t.Fatalf("new member level %d: status %d: %s", li, rec.Code, rec.Body.String())
		}
		served = append(served, append([]byte(nil), rec.Body.Bytes()...))
	}
	// Pre-existing member payloads are untouched.
	after := get(t, h, "/a/live/snap/0/level/0")
	if !bytes.Equal(before.Body.Bytes(), after.Body.Bytes()) {
		t.Fatal("pre-existing member payload changed across ingest")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold reopen: the served-while-hot bytes must match disk truth.
	fr, err := archive.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if n := len(fr.Members()); n != 3 {
		t.Fatalf("reopened archive has %d members, want 3", n)
	}
	if g := fr.Generation(); g != 1 {
		t.Fatalf("reopened generation %d, want 1", g)
	}
	for li := 0; li < 2; li++ {
		l, err := fr.ExtractLevel(2, li)
		if err != nil {
			t.Fatal(err)
		}
		var wb bytes.Buffer
		if err := writeFloats(&wb, l.Grid.Data); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served[li], wb.Bytes()) {
			t.Fatalf("level %d: served bytes differ from cold extraction", li)
		}
	}
}

// TestIngestConfigInheritance checks a zero codec.Config picks up the
// newest member's recorded compression parameters.
func TestIngestConfigInheritance(t *testing.T) {
	path := writeTestArchiveFile(t, t.TempDir())
	s := New(Config{})
	if _, err := s.AddAppendFile(path, codec.Config{}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	_, wire := ingestSnap(t, "inherit", 9)
	rec := post(t, h, "/a/live/ingest", wire)
	if rec.Code != http.StatusCreated {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	sa, err := s.lookup("live")
	if err != nil {
		t.Fatal(err)
	}
	ms := sa.reader().Members()
	last, prev := &ms[len(ms)-1], &ms[len(ms)-2]
	if last.ErrorBound != prev.ErrorBound || last.Mode != prev.Mode || last.QuantBits != prev.QuantBits {
		t.Fatalf("appended member params (eb=%g mode=%v qb=%d) differ from inherited (eb=%g mode=%v qb=%d)",
			last.ErrorBound, last.Mode, last.QuantBits, prev.ErrorBound, prev.Mode, prev.QuantBits)
	}
}

// TestIngestBackpressure holds the append loop mid-job, fills the queue,
// and asserts the overflow request is bounced with 429 + Retry-After
// while everything accepted eventually commits.
func TestIngestBackpressure(t *testing.T) {
	s, _ := newAppendServer(t, Config{IngestQueue: 1})
	h := s.Handler()
	sa, err := s.lookup("live")
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	var entered atomic.Bool
	sa.ing.beforeHandle = func() {
		// Only the first job blocks; the drain must run free.
		if entered.CompareAndSwap(false, true) {
			<-hold
		}
	}

	_, wire := ingestSnap(t, "bp", 5)
	codes := make(chan int, 3)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- post(t, h, "/a/live/ingest", wire).Code
		}()
	}
	// Job 1 occupies the loop (parked on hold), job 2 fills the queue.
	// Jobs must enter in order, so wait for each to be taken/queued.
	launch()
	waitFor(t, func() bool { return entered.Load() })
	launch()
	waitFor(t, func() bool { return len(sa.ing.q) == 1 })
	// Queue full: this one must bounce immediately, before hold releases.
	rec := post(t, h, "/a/live/ingest", wire)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow ingest: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After")
	}
	close(hold)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusCreated {
			t.Fatalf("accepted ingest finished with status %d, want 201", code)
		}
	}
	if got := s.IngestStats(); got.Accepted != 2 || got.Rejected != 1 {
		t.Fatalf("ingest stats %+v, want 2 accepted / 1 rejected", got)
	}
}

// waitFor spins until cond holds (bounded by the test deadline).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1e7; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never held")
}

// TestIngestDraining checks the shutdown surface: draining flips healthz
// to 503 and refuses new ingests while reads keep flowing, and
// Server.Close commits everything already queued.
func TestIngestDraining(t *testing.T) {
	s, path := newAppendServer(t, Config{})
	h := s.Handler()
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	_, wire := ingestSnap(t, "pre", 31)
	if rec := post(t, h, "/a/live/ingest", wire); rec.Code != http.StatusCreated {
		t.Fatalf("pre-drain ingest: status %d", rec.Code)
	}

	s.SetDraining(true)
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", rec.Code)
	}
	rec := post(t, h, "/a/live/ingest", wire)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	// Reads still work during the drain window.
	if rec := get(t, h, "/a/live/snap/2/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("read during drain: status %d", rec.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close sealed the file: the pre-drain ingest survived.
	fr, err := archive.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if n := len(fr.Members()); n != 3 {
		t.Fatalf("after drain: %d members on disk, want 3", n)
	}
}

// TestIngestMisuse covers the rejection paths: read-only archives,
// unknown archives, unparsable and structurally invalid bodies.
func TestIngestMisuse(t *testing.T) {
	blob := testArchiveBytes(t, 7)
	s, _ := newTestServer(t, blob, Config{}) // read-only registration
	h := s.Handler()
	_, wire := ingestSnap(t, "x", 1)
	if rec := post(t, h, "/a/test/ingest", wire); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("read-only ingest: status %d, want 405: %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, h, "/a/nope/ingest", wire); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown archive ingest: status %d, want 404", rec.Code)
	}

	sw, path := newAppendServer(t, Config{})
	defer sw.Close()
	hw := sw.Handler()
	if rec := post(t, hw, "/a/live/ingest", []byte("not an amr stream")); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", rec.Code)
	}
	if rec := post(t, hw, "/a/live/ingest", wire[:len(wire)/2]); rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated body: status %d, want 400", rec.Code)
	}
	if rec := post(t, hw, "/a/live/ingest", wire, "Content-Encoding", "gzip"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus gzip body: status %d, want 400", rec.Code)
	}
	// Nothing above should have grown the archive.
	fr, err := archive.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if n := len(fr.Members()); n != 2 {
		t.Fatalf("after rejected ingests: %d members, want 2", n)
	}
}

// TestReadWhileIngest hammers reads of pre-existing members from several
// goroutines while snapshots stream in through the ingest endpoint (run
// under -race in CI): reads must never fail, pre-existing payloads must
// stay byte-identical throughout, and every ingest must land.
func TestReadWhileIngest(t *testing.T) {
	s, _ := newAppendServer(t, Config{})
	defer s.Close()
	h := s.Handler()

	baseline := get(t, h, "/a/live/snap/1/level/0")
	if baseline.Code != http.StatusOK {
		t.Fatalf("baseline read: status %d", baseline.Code)
	}
	want := baseline.Body.Bytes()

	const ingests = 3
	errs := make(chan error, 16)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := get(t, h, "/a/live/snap/1/level/0")
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("concurrent read: status %d", rec.Code)
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want) {
					errs <- fmt.Errorf("concurrent read: payload changed")
					return
				}
			}
		}()
	}
	for i := 0; i < ingests; i++ {
		_, wire := ingestSnap(t, fmt.Sprintf("live%d", i), int64(100+i))
		rec := post(t, h, "/a/live/ingest", wire)
		if rec.Code != http.StatusCreated {
			t.Fatalf("ingest %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		// The member must be visible to an immediately following read.
		if rec := get(t, h, fmt.Sprintf("/a/live/snap/%d", 2+i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d not visible: status %d", i, rec.Code)
		}
	}
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sa, err := s.lookup("live")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sa.reader().Members()); n != 2+ingests {
		t.Fatalf("served member count %d, want %d", n, 2+ingests)
	}
	if g := sa.reader().Generation(); g != ingests {
		t.Fatalf("served generation %d, want %d", g, ingests)
	}
}
