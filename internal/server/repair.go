package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"repro/internal/archive"
)

// ErrNoReplica tags repair requests for archives registered without
// replica sources: there is nothing to re-fetch healthy frames from. The
// HTTP layer answers 409.
var ErrNoReplica = errors.New("no replica configured")

// RepairMember attempts to heal member mi of archive name from its
// replicas: the damaged frames are re-fetched through the replica
// failover reader, digest-verified, and spliced into the local file in
// place (archive.Reader.RepairMember), and on success the member — plus
// every member quarantined via it — returns to service with its strikes
// cleared, no restart needed. Returns the splice stats and the member
// indices un-quarantined. Repairing a clean member is a cheap no-op.
func (s *Server) RepairMember(name string, mi int) (archive.RepairStats, []int, error) {
	sa, err := s.lookup(name)
	if err != nil {
		return archive.RepairStats{}, nil, err
	}
	st := sa.view()
	if _, err := sa.member(st, mi); err != nil {
		return archive.RepairStats{}, nil, err
	}
	return s.repairMember(sa, st, mi)
}

// repairMember is RepairMember after lookup; also the automatic-repair
// entry point. Attempts on one archive are serialized: a second request
// arriving while a repair is in flight waits and then finds the member
// already clean (its RepairMember call becomes the no-op re-scrub).
func (s *Server) repairMember(sa *servedArchive, st *archiveState, mi int) (archive.RepairStats, []int, error) {
	if sa.replicas == nil || sa.path == "" {
		return archive.RepairStats{}, nil, fmt.Errorf("server: %w: archive %q", ErrNoReplica, sa.name)
	}
	sa.repairMu.Lock()
	defer sa.repairMu.Unlock()
	s.health.repairsAttempted.Add(1)
	f, err := os.OpenFile(sa.path, os.O_RDWR, 0)
	if err != nil {
		return archive.RepairStats{}, nil, fmt.Errorf("server: repairing %q: %w", sa.name, err)
	}
	defer f.Close()
	rs, err := st.r.RepairMember(mi, sa.replicas, f)
	s.health.framesRespliced.Add(int64(rs.FramesRepaired))
	if err != nil {
		return rs, nil, fmt.Errorf("server: repairing %q snapshot %d: %w", sa.name, mi, err)
	}
	s.health.repairsSucceeded.Add(1)
	// Cached batches decoded from the member while it was damaged must
	// not outlive the repair: on digest-bearing archives every cached
	// decode was verified, but pre-v3 members can cache silently wrong
	// blocks, and dropping a handful of entries is cheap either way.
	if rs.FramesRepaired > 0 {
		s.cache.PurgeMember(sa.name, mi)
	}
	lifted := sa.liftQuarantine(mi)
	if len(lifted) > 0 {
		s.health.unquarantines.Add(int64(len(lifted)))
	}
	return rs, lifted, nil
}

// tryAutoRepair is the health machine's hook: fired synchronously the
// moment a member is quarantined, when the archive has replicas. A
// failed attempt (fetch errors, replicas damaged at the same frames)
// leaves the quarantine standing — operators see it in /stats.health as
// attempts without matching successes.
func (s *Server) tryAutoRepair(sa *servedArchive, mi int) {
	if sa.replicas == nil {
		return
	}
	_, _, _ = s.repairMember(sa, sa.view(), mi)
}

// handleRepair is POST /a/{name}/repair: with ?member=i it repairs that
// member; without, it repairs every currently quarantined member (via
// the damaged roots of their reference chains). The response reports the
// splice stats and which members returned to service; a repair that
// could not heal the archive answers 502 (the damage is upstream of this
// server — its replicas are bad too), and archives without replicas
// answer 409.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var (
		rs     archive.RepairStats
		lifted []int
		err    error
	)
	if q := r.URL.Query().Get("member"); q != "" {
		mi, aerr := strconv.Atoi(q)
		if aerr != nil {
			s.httpError(w, fmt.Errorf("server: %w: bad member %q", ErrBadRequest, q))
			return
		}
		rs, lifted, err = s.RepairMember(name, mi)
	} else {
		rs, lifted, err = s.RepairArchive(name)
	}
	if err != nil && (errors.Is(err, ErrNotFound) || errors.Is(err, ErrBadRequest) || errors.Is(err, ErrNoReplica)) {
		s.httpError(w, err)
		return
	}
	res := struct {
		Archive        string `json:"archive"`
		FramesScanned  int    `json:"frames_scanned"`
		FramesDamaged  int    `json:"frames_damaged"`
		FramesRepaired int    `json:"frames_repaired"`
		BytesRespliced int64  `json:"bytes_respliced"`
		Repaired       []int  `json:"repaired,omitempty"`
		Unquarantined  []int  `json:"unquarantined,omitempty"`
		Error          string `json:"error,omitempty"`
	}{
		Archive:        name,
		FramesScanned:  rs.FramesScanned,
		FramesDamaged:  rs.FramesDamaged,
		FramesRepaired: rs.FramesRepaired,
		BytesRespliced: rs.BytesRespliced,
		Repaired:       rs.Members,
		Unquarantined:  lifted,
	}
	if err != nil {
		res.Error = err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		writeJSON(w, res)
		return
	}
	writeJSON(w, res)
}

// RepairArchive repairs every currently quarantined member of archive
// name by healing the damaged roots of their reference chains, in index
// order. Returns combined stats and every member un-quarantined. An
// archive with nothing quarantined returns zero stats and no error.
func (s *Server) RepairArchive(name string) (archive.RepairStats, []int, error) {
	sa, err := s.lookup(name)
	if err != nil {
		return archive.RepairStats{}, nil, err
	}
	if sa.replicas == nil || sa.path == "" {
		return archive.RepairStats{}, nil, fmt.Errorf("server: %w: archive %q", ErrNoReplica, sa.name)
	}
	st := sa.view()
	var total archive.RepairStats
	var lifted []int
	for _, root := range sa.quarantineRoots() {
		rs, up, err := s.repairMember(sa, st, root)
		total.FramesScanned += rs.FramesScanned
		total.FramesDamaged += rs.FramesDamaged
		total.FramesRepaired += rs.FramesRepaired
		total.BytesRespliced += rs.BytesRespliced
		total.Members = append(total.Members, rs.Members...)
		lifted = append(lifted, up...)
		if err != nil {
			return total, lifted, err
		}
	}
	return total, lifted, nil
}
