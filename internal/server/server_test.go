package server

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/sim"
)

// testArchiveBytes builds a small two-snapshot archive in memory.
func testArchiveBytes(t testing.TB, batchBlocks int) []byte {
	return testArchiveBytesSeed(t, batchBlocks, 77)
}

// testArchiveBytesSeed is testArchiveBytes with a chosen value seed, for
// tests that need two archives with different contents.
func testArchiveBytesSeed(t testing.TB, batchBlocks int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = batchBlocks
	for ti, frac := range [][]float64{{0.25, 0.75}, {0.55, 0.45}} {
		spec := sim.Spec{
			Name: fmt.Sprintf("snap%d", ti), FinestN: 32, Levels: 2,
			UnitBlock: 4, Seed: seed + int64(ti), LeafFractions: frac,
		}
		ds, err := sim.Generate(spec, sim.BaryonDensity)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AddDataset(ds, codec.Config{ErrorBound: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer opens the archive bytes and registers them as "test".
func newTestServer(t testing.TB, blob []byte, cfg Config) (*Server, *archive.Reader) {
	t.Helper()
	r, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.AddReader("test", r, nil); err != nil {
		t.Fatal(err)
	}
	return s, r
}

// floatsOf reinterprets a raw little-endian float32 payload.
func floatsOf(t *testing.T, b []byte) []amr.Value {
	t.Helper()
	if len(b)%4 != 0 {
		t.Fatalf("payload length %d is not a multiple of 4", len(b))
	}
	out := make([]amr.Value, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// get drives the handler in-process and returns the response.
func get(t *testing.T, h http.Handler, url string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServedLevelByteIdentity asserts the level endpoint's payload equals
// the directly extracted level grid, byte for byte, for every member and
// level — the cache-assembled path and archive.Reader.ExtractLevel must
// be indistinguishable.
func TestServedLevelByteIdentity(t *testing.T) {
	blob := testArchiveBytes(t, 7) // odd batch size: exercises short tail batches
	s, r := newTestServer(t, blob, Config{})
	h := s.Handler()
	for mi := range r.Members() {
		for li := range r.Members()[mi].Levels {
			rec := get(t, h, fmt.Sprintf("/a/test/snap/%d/level/%d", mi, li))
			if rec.Code != http.StatusOK {
				t.Fatalf("member %d level %d: status %d: %s", mi, li, rec.Code, rec.Body.String())
			}
			want, err := r.ExtractLevel(mi, li)
			if err != nil {
				t.Fatal(err)
			}
			got := floatsOf(t, rec.Body.Bytes())
			if len(got) != len(want.Grid.Data) {
				t.Fatalf("member %d level %d: %d values, want %d", mi, li, len(got), len(want.Grid.Data))
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want.Grid.Data[i]) {
					t.Fatalf("member %d level %d: value %d differs: %g vs %g", mi, li, i, got[i], want.Grid.Data[i])
				}
			}
		}
	}
	// A second pass over an already-served level must be all hits.
	st0 := s.Cache().Stats()
	if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("repeat request failed: %d", rec.Code)
	}
	st1 := s.Cache().Stats()
	if st1.Hits <= st0.Hits || st1.Decodes != st0.Decodes {
		t.Fatalf("repeat extraction did not hit the cache: before %+v, after %+v", st0, st1)
	}
}

// TestServedRegionByteIdentity asserts ROI windows equal the same window
// of the fully extracted level.
func TestServedRegionByteIdentity(t *testing.T) {
	blob := testArchiveBytes(t, 5)
	s, r := newTestServer(t, blob, Config{})
	h := s.Handler()
	rois := []grid.Region{
		{X0: 0, Y0: 0, Z0: 0, X1: 9, Y1: 7, Z1: 5},
		{X0: 3, Y0: 3, Z0: 3, X1: 13, Y1: 29, Z1: 11},
		{X0: 8, Y0: 0, Z0: 8, X1: 32, Y1: 32, Z1: 32},
		{X0: 5, Y0: 5, Z0: 5, X1: 6, Y1: 6, Z1: 6}, // single cell
	}
	for mi := range r.Members() {
		for li := range r.Members()[mi].Levels {
			full, err := r.ExtractLevel(mi, li)
			if err != nil {
				t.Fatal(err)
			}
			for _, roi := range rois {
				clipped := roi.Intersect(full.Grid.Dim)
				if clipped.Empty() {
					continue
				}
				url := fmt.Sprintf("/a/test/snap/%d/level/%d?roi=%d:%d,%d:%d,%d:%d",
					mi, li, roi.X0, roi.X1, roi.Y0, roi.Y1, roi.Z0, roi.Z1)
				rec := get(t, h, url)
				if rec.Code != http.StatusOK {
					t.Fatalf("%s: status %d: %s", url, rec.Code, rec.Body.String())
				}
				want := make([]amr.Value, clipped.Count())
				full.Grid.CopyRegionTo(clipped, want)
				got := floatsOf(t, rec.Body.Bytes())
				if len(got) != len(want) {
					t.Fatalf("%s: %d values, want %d", url, len(got), len(want))
				}
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("%s: value %d differs: %g vs %g", url, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestServedDatasetByteIdentity asserts the /amr stream round-trips to a
// dataset value-identical to archive.Reader.Extract.
func TestServedDatasetByteIdentity(t *testing.T) {
	blob := testArchiveBytes(t, 6)
	s, r := newTestServer(t, blob, Config{})
	rec := get(t, s.Handler(), "/a/test/snap/1/amr")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got, err := amr.ReadFrom(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Extract(1)
	if err != nil {
		t.Fatal(err)
	}
	var wb, gb bytes.Buffer
	if err := want.Write(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("served .amr stream differs from direct extraction (%d vs %d bytes)", gb.Len(), wb.Len())
	}
}

// TestSingleflightCollapse fires many concurrent requests for the same
// uncached frame and asserts the decode counter — incremented only inside
// executed fills — shows exactly one decode: everyone else either joined
// the flight or hit the cache it populated.
func TestSingleflightCollapse(t *testing.T) {
	blob := testArchiveBytes(t, 1<<20) // one batch per level: one key of contention
	s, _ := newTestServer(t, blob, Config{})
	sa, err := s.lookup("test")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.batch(sa, sa.view(), 0, 0, 0)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Cache().Stats()
	if st.Decodes != 1 {
		t.Fatalf("%d concurrent requests decoded %d times, want exactly 1 (stats %+v)", n, st.Decodes, st)
	}
	if st.Hits+st.Misses != n {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, n)
	}
}

// TestConcurrentMixedPaths hammers every endpoint from concurrent
// goroutines (run under -race in CI with GOMAXPROCS=4): listings, levels,
// regions, full snapshots, stats. Responses must stay well-formed and
// identically sized across rounds.
func TestConcurrentMixedPaths(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, _ := newTestServer(t, blob, Config{CacheBytes: 1 << 20, CacheShards: 4})
	h := s.Handler()
	paths := []string{
		"/archives",
		"/a/test",
		"/a/test/snap/0",
		"/a/test/snap/0/level/0",
		"/a/test/snap/0/level/1",
		"/a/test/snap/1/level/0?roi=0:16,0:16,0:16",
		"/a/test/snap/1/amr",
		"/stats",
		"/healthz",
	}
	// First pass serially to learn the expected sizes.
	wantLen := make(map[string]int)
	for _, p := range paths {
		rec := get(t, h, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", p, rec.Code, rec.Body.String())
		}
		wantLen[p] = rec.Body.Len()
	}
	const rounds = 8
	var wg sync.WaitGroup
	errCh := make(chan error, rounds*len(paths))
	for g := 0; g < rounds; g++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				rec := get(t, h, p)
				if rec.Code != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d", p, rec.Code)
					return
				}
				// /stats and /archives bodies change as counters move;
				// extraction payloads must not.
				if p != "/stats" && rec.Body.Len() != wantLen[p] {
					errCh <- fmt.Errorf("%s: body %d bytes, want %d", p, rec.Body.Len(), wantLen[p])
				}
			}(p)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestGzipEncoding asserts the gzip response path round-trips to the
// identity payload.
func TestGzipEncoding(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, _ := newTestServer(t, blob, Config{})
	h := s.Handler()
	plain := get(t, h, "/a/test/snap/0/level/1")
	zipped := get(t, h, "/a/test/snap/0/level/1", "Accept-Encoding", "gzip")
	if enc := zipped.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(zipped.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plain.Body.Bytes()) {
		t.Fatalf("gzip payload decodes to %d bytes, identity is %d", len(unzipped), plain.Body.Len())
	}
	// A client that explicitly refuses gzip must get the identity body.
	refused := get(t, h, "/a/test/snap/0/level/1", "Accept-Encoding", "gzip;q=0, identity")
	if enc := refused.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("Content-Encoding %q for a client that refused gzip", enc)
	}
	if !bytes.Equal(refused.Body.Bytes(), plain.Body.Bytes()) {
		t.Fatal("gzip-refusing client did not get the identity payload")
	}
}

// TestHTTPErrors covers the client-error paths.
func TestHTTPErrors(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, _ := newTestServer(t, blob, Config{})
	h := s.Handler()
	cases := []struct {
		url  string
		code int
	}{
		{"/a/nope", http.StatusNotFound},
		{"/a/nope/snap/0/level/0", http.StatusNotFound},
		{"/a/test/snap/99", http.StatusNotFound},
		{"/a/test/snap/0/level/9", http.StatusNotFound},
		{"/a/test/snap/x/level/0", http.StatusBadRequest},                    // non-numeric snap
		{"/a/test/snap/0/level/0?roi=bogus", http.StatusBadRequest},          // malformed roi
		{"/a/test/snap/0/level/0?roi=99:100,0:1,0:1", http.StatusBadRequest}, // outside extent
	}
	for _, c := range cases {
		rec := get(t, h, c.url)
		if rec.Code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.url, rec.Code, c.code, rec.Body.String())
		}
	}
}

// TestCloseThenReaddServesFreshData pins the Close→Add name-reuse path:
// batches of the closed archive must not survive in the cache under the
// reused name.
func TestCloseThenReaddServesFreshData(t *testing.T) {
	s, _ := newTestServer(t, testArchiveBytes(t, 4), Config{})
	h := s.Handler()
	old := get(t, h, "/a/test/snap/0/level/0")
	if old.Code != http.StatusOK {
		t.Fatalf("status %d", old.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob2 := testArchiveBytesSeed(t, 4, 1234)
	r2, err := archive.Open(bytes.NewReader(blob2), int64(len(blob2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddReader("test", r2, nil); err != nil {
		t.Fatal(err)
	}
	fresh := get(t, h, "/a/test/snap/0/level/0")
	if fresh.Code != http.StatusOK {
		t.Fatalf("status %d after re-add", fresh.Code)
	}
	want, err := r2.ExtractLevel(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := floatsOf(t, fresh.Body.Bytes())
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want.Grid.Data[i]) {
			t.Fatalf("value %d differs from the re-added archive: %g vs %g (stale cache?)", i, got[i], want.Grid.Data[i])
		}
	}
	if bytes.Equal(fresh.Body.Bytes(), old.Body.Bytes()) {
		t.Fatal("re-added archive served the old archive's payload")
	}
}

// TestStatsEndpoint sanity-checks the JSON counters after traffic.
func TestStatsEndpoint(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, _ := newTestServer(t, blob, Config{})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusOK {
			t.Fatalf("level request failed: %d", rec.Code)
		}
	}
	rec := get(t, h, "/stats")
	var out struct {
		Archives []string   `json:"archives"`
		Cache    CacheStats `json:"cache"`
		HitRatio float64    `json:"cache_hit_ratio"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, rec.Body.String())
	}
	if len(out.Archives) != 1 || out.Archives[0] != "test" {
		t.Fatalf("archives %v, want [test]", out.Archives)
	}
	if out.Cache.Hits == 0 || out.HitRatio <= 0 {
		t.Fatalf("expected hits after repeated requests: %+v", out.Cache)
	}
}
