package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
)

// ErrQuarantined tags requests for members the health state machine has
// taken out of service after repeated corruption (or a scrub hit). The
// HTTP layer answers a structured 502: the archive is damaged upstream
// of this server, and retrying here cannot help — but every other member
// keeps serving.
var ErrQuarantined = errors.New("member quarantined")

// healthCounters are the server-wide fault-tolerance counters /stats
// exposes.
type healthCounters struct {
	retries          atomic.Int64 // frame reads retried after transient I/O errors
	corruptEvents    atomic.Int64 // deterministic ErrCorrupt detections on the request path
	quarantines      atomic.Int64 // members quarantined since start (never decremented)
	scrubPasses      atomic.Int64 // completed background scrub sweeps
	scrubIssues      atomic.Int64 // damaged frames found by scrubs
	repairsAttempted atomic.Int64 // member repair attempts (manual + automatic)
	repairsSucceeded atomic.Int64 // repair attempts that left the member clean
	framesRespliced  atomic.Int64 // damaged frames re-fetched from a replica and spliced back
	unquarantines    atomic.Int64 // members returned to service by a repair
}

// HealthStats is the /stats health section.
type HealthStats struct {
	Retries            int64 `json:"retries"`
	CorruptEvents      int64 `json:"corrupt_events"`
	Quarantines        int64 `json:"quarantines"`
	QuarantinedMembers int64 `json:"quarantined_members"`
	ScrubPasses        int64 `json:"scrub_passes"`
	ScrubIssues        int64 `json:"scrub_issues"`
	RepairsAttempted   int64 `json:"repairs_attempted"`
	RepairsSucceeded   int64 `json:"repairs_succeeded"`
	FramesRespliced    int64 `json:"frames_respliced"`
	Unquarantines      int64 `json:"unquarantines"`
	Degraded           bool  `json:"degraded"`
	// Quarantined lists the quarantined member indices per archive.
	Quarantined map[string][]int `json:"quarantined,omitempty"`
}

// archiveHealth is the per-archive member health state machine. A member
// is healthy until ErrCorrupt detections against it reach the quarantine
// threshold (or a scrub finds damage), after which it is quarantined:
// requests for it — and for members whose reference chain passes through
// it — answer ErrQuarantined until a repair heals the damaged member
// (replica-backed archives attempt one automatically the moment the
// quarantine trips) or the process restarts with a repaired archive.
// Transient I/O errors (archive.ErrIO) never count: they are retried,
// not held against the member.
type archiveHealth struct {
	mu          sync.Mutex
	strikes     map[int]int
	quarantined map[int]quarRecord
}

// quarRecord is one quarantined member: why, and which damaged member's
// quarantine caused it — itself for direct damage, the root of its
// reference chain for a chain-closure quarantine. Repairing the root
// lifts every record tied to it.
type quarRecord struct {
	reason string
	via    int
}

// quarantinedMember reports whether member mi is out of service, and why.
func (sa *servedArchive) quarantinedMember(mi int) (string, bool) {
	sa.health.mu.Lock()
	defer sa.health.mu.Unlock()
	rec, ok := sa.health.quarantined[mi]
	return rec.reason, ok
}

// quarantine takes member mi out of service (via names the damaged
// member responsible — mi itself for direct damage), reporting whether
// this call was the one that did it.
func (sa *servedArchive) quarantine(mi, via int, reason string) bool {
	sa.health.mu.Lock()
	defer sa.health.mu.Unlock()
	if _, done := sa.health.quarantined[mi]; done {
		return false
	}
	if sa.health.quarantined == nil {
		sa.health.quarantined = make(map[int]quarRecord)
	}
	sa.health.quarantined[mi] = quarRecord{reason: reason, via: via}
	return true
}

// liftQuarantine returns member root — just repaired — and every member
// quarantined via it to service, clearing their strikes, and returns the
// lifted member indices sorted.
func (sa *servedArchive) liftQuarantine(root int) []int {
	sa.health.mu.Lock()
	defer sa.health.mu.Unlock()
	var lifted []int
	for mi, rec := range sa.health.quarantined {
		if mi == root || rec.via == root {
			delete(sa.health.quarantined, mi)
			delete(sa.health.strikes, mi)
			lifted = append(lifted, mi)
		}
	}
	delete(sa.health.strikes, root)
	sort.Ints(lifted)
	return lifted
}

// quarantineRoots returns the distinct damaged members responsible for
// the current quarantines, sorted — the repair worklist.
func (sa *servedArchive) quarantineRoots() []int {
	sa.health.mu.Lock()
	defer sa.health.mu.Unlock()
	seen := make(map[int]bool)
	var roots []int
	for _, rec := range sa.health.quarantined {
		if !seen[rec.via] {
			seen[rec.via] = true
			roots = append(roots, rec.via)
		}
	}
	sort.Ints(roots)
	return roots
}

// recordCorrupt counts one deterministic corruption detection against
// member mi, quarantining it when the count reaches threshold (≤ 0
// disables quarantining). It reports whether this strike quarantined the
// member.
func (sa *servedArchive) recordCorrupt(mi, threshold int, reason string) bool {
	if threshold <= 0 {
		return false
	}
	sa.health.mu.Lock()
	if sa.health.strikes == nil {
		sa.health.strikes = make(map[int]int)
	}
	sa.health.strikes[mi]++
	hit := sa.health.strikes[mi] >= threshold
	sa.health.mu.Unlock()
	if hit {
		return sa.quarantine(mi, mi, reason)
	}
	return false
}

// quarantinedList returns the quarantined member indices, sorted.
func (sa *servedArchive) quarantinedList() []int {
	sa.health.mu.Lock()
	defer sa.health.mu.Unlock()
	if len(sa.health.quarantined) == 0 {
		return nil
	}
	out := make([]int, 0, len(sa.health.quarantined))
	for mi := range sa.health.quarantined {
		out = append(out, mi)
	}
	sort.Ints(out)
	return out
}

// noteError inspects an extraction error on the request path: a
// deterministic corruption (ErrCorrupt without ErrIO — the bytes arrived
// and failed verification) counts a strike against the member it was
// detected in. I/O-tagged failures were already retried and stay
// transient; usage errors are the client's problem.
func (s *Server) noteError(sa *servedArchive, mi int, err error) {
	if err == nil || !errors.Is(err, archive.ErrCorrupt) || errors.Is(err, archive.ErrIO) {
		return
	}
	s.health.corruptEvents.Add(1)
	if sa.recordCorrupt(mi, s.cfg.QuarantineAfter, fmt.Sprintf("repeated corruption: %v", err)) {
		s.health.quarantines.Add(1)
		// Replica-backed archives try to heal the member right away,
		// synchronously: the request that tripped the quarantine still
		// fails, but by the time its response is on the wire the member
		// is either repaired and back in service or confirmed
		// unrepairable (replicas damaged too — quarantine stands).
		s.tryAutoRepair(sa, mi)
	}
}

// decodeRetry decodes one frame, retrying transient I/O failures
// (archive.ErrIO) up to cfg.RetryAttempts times with exponential,
// jittered backoff. Deterministic corruption is never retried — the same
// bytes would fail the same way — and neither are usage errors.
func (s *Server) decodeRetry(st *archiveState, mi, li, b int, refs blocks) (blocks, error) {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		v, err := st.r.DecodeBatchOn(mi, li, b, refs)
		if err == nil || attempt >= s.cfg.RetryAttempts || !errors.Is(err, archive.ErrIO) {
			return v, err
		}
		s.health.retries.Add(1)
		s.sleep(jittered(backoff, s.jitter()))
		backoff *= 2
	}
}

// jittered spreads a backoff over [0.5d, 1.5d) so a fleet of requests
// hitting the same flaky device does not retry in lockstep. j is a
// uniform sample from [0, 1).
func jittered(d time.Duration, j float64) time.Duration {
	return time.Duration(float64(d) * (0.5 + j))
}

// defaultJitter is the production jitter source (tests inject their own).
func defaultJitter() float64 { return rand.Float64() }

// HealthStats snapshots the fault-tolerance counters and the quarantine
// map.
func (s *Server) HealthStats() HealthStats {
	hs := HealthStats{
		Retries:          s.health.retries.Load(),
		CorruptEvents:    s.health.corruptEvents.Load(),
		Quarantines:      s.health.quarantines.Load(),
		ScrubPasses:      s.health.scrubPasses.Load(),
		ScrubIssues:      s.health.scrubIssues.Load(),
		RepairsAttempted: s.health.repairsAttempted.Load(),
		RepairsSucceeded: s.health.repairsSucceeded.Load(),
		FramesRespliced:  s.health.framesRespliced.Load(),
		Unquarantines:    s.health.unquarantines.Load(),
	}
	s.mu.RLock()
	archives := make([]*servedArchive, 0, len(s.archives))
	for _, sa := range s.archives {
		archives = append(archives, sa)
	}
	s.mu.RUnlock()
	for _, sa := range archives {
		if qs := sa.quarantinedList(); len(qs) > 0 {
			if hs.Quarantined == nil {
				hs.Quarantined = make(map[string][]int)
			}
			hs.Quarantined[sa.name] = qs
			hs.QuarantinedMembers += int64(len(qs))
		}
	}
	hs.Degraded = hs.QuarantinedMembers > 0
	return hs
}

// Degraded reports whether any registered member is quarantined: the
// server still answers everything it can, but /healthz says "degraded"
// so operators notice the archive needs repair.
func (s *Server) Degraded() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sa := range s.archives {
		sa.health.mu.Lock()
		n := len(sa.health.quarantined)
		sa.health.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// scrubMemberPause is the between-members yield of a scrub sweep: the
// scrubber is a background janitor and must not monopolize the ReaderAt
// or the decode pools against live traffic.
const scrubMemberPause = 2 * time.Millisecond

// ScrubOnce sweeps every registered archive member by member, verifying
// every frame (archive.Reader.ScrubMember: digest checks on checksummed
// archives, full decodes otherwise) and quarantining damaged members
// proactively — plus every member whose reference chain passes through
// one, since those can only reconstruct from poisoned data. It returns
// the number of damaged frames found. The background scrubber calls this
// on a timer; tests and operators can call it directly.
func (s *Server) ScrubOnce() int {
	issues := 0
	for _, name := range s.Names() {
		sa, err := s.lookup(name)
		if err != nil {
			continue // racing Close
		}
		st := sa.view()
		members := st.r.Members()
		for mi := range members {
			if _, q := sa.quarantinedMember(mi); q {
				continue
			}
			probs := st.r.ScrubMember(mi)
			if len(probs) > 0 {
				issues += len(probs)
				s.health.scrubIssues.Add(int64(len(probs)))
				if sa.quarantine(mi, mi, fmt.Sprintf("scrub: %v", probs[0].Err)) {
					s.health.quarantines.Add(1)
					s.tryAutoRepair(sa, mi)
				}
			}
			s.sleep(scrubMemberPause)
		}
		// Chain closure: references point strictly backward, so one
		// forward pass after the sweep settles every dependent.
		for mi := range members {
			if _, q := sa.quarantinedMember(mi); q {
				continue
			}
			for r := mi; members[r].Ref >= 0; {
				r = members[r].Ref
				reason, q := sa.quarantinedMember(r)
				if !q {
					continue
				}
				if sa.quarantine(mi, r, fmt.Sprintf("reference member %d quarantined (%s)", r, reason)) {
					s.health.quarantines.Add(1)
				}
				break
			}
		}
	}
	s.health.scrubPasses.Add(1)
	return issues
}

// scrubLoop is the background scrubber goroutine, started by New when
// Config.ScrubInterval > 0 and stopped by Close.
func (s *Server) scrubLoop() {
	defer close(s.scrubDone)
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-t.C:
			s.ScrubOnce()
		}
	}
}

// stopScrubber halts the background scrubber, waiting for an in-flight
// sweep to finish. Safe to call when none was started, and idempotent.
func (s *Server) stopScrubber() {
	if s.scrubStop == nil {
		return
	}
	s.scrubOnce.Do(func() { close(s.scrubStop) })
	<-s.scrubDone
}
