package server

import (
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/grid"
)

// Handler returns the HTTP API. Every route is mounted twice: under
// /v1/ (the versioned surface) and at its legacy unprefixed path (kept
// as an alias for one release):
//
//	GET  /v1/healthz                                liveness probe ("ok", or 503 "draining")
//	GET  /v1/stats                                  cache + ingest + registry counters (JSON)
//	GET  /v1/archives                               registered archives (JSON)
//	GET  /v1/a/{name}                               member listing (JSON)
//	GET  /v1/a/{name}/raw                           committed archive bytes (Range/ETag/If-Range;
//	                                                mount point for remote tacds)
//	GET  /v1/a/{name}/snap/{i}                      one member's level geometry (JSON)
//	GET  /v1/a/{name}/snap/{i}/amr                  whole snapshot, .amr stream
//	GET  /v1/a/{name}/snap/{i}/level/{l}            dense level grid, raw float32 LE
//	GET  /v1/a/{name}/snap/{i}/level/{l}?roi=x0:x1,y0:y1,z0:z1
//	                                                dense window of the level (level cells)
//	POST /v1/a/{name}/ingest                        append one .amr snapshot (writable archives)
//	POST /v1/a/{name}/repair[?member=i]             re-fetch and splice damaged members
//
// Binary responses carry the payload geometry in X-Tac-* headers and are
// gzip-compressed when the client advertises Accept-Encoding: gzip.
// Ingest bodies are .amr streams (amr.Dataset.Write), optionally
// gzip-compressed with Content-Encoding: gzip; a full ingest queue
// answers 429 with a Retry-After hint.
//
// Non-2xx responses (except /healthz, which stays plain text for
// probes) carry the JSON error envelope {code, message, member?,
// quarantined?}: code is a stable slug (not_found, bad_request,
// read_only, busy, draining, no_replica, timeout, quarantined, corrupt,
// io, too_large, internal), member is the snapshot index the failure
// concerns when known, and the legacy error/retryable fields mirror
// message for pre-v1 clients.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		// Degraded is still 200: the node serves every healthy member, so
		// load balancers should keep routing here — but the body tells
		// operators the archive needs repair.
		if s.Degraded() {
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	handle("GET /stats", s.handleStats)
	handle("GET /archives", s.handleArchives)
	handle("GET /a/{name}", s.handleArchive)
	handle("GET /a/{name}/raw", s.handleRaw)
	handle("GET /a/{name}/snap/{snap}", s.handleSnap)
	handle("GET /a/{name}/snap/{snap}/amr", s.handleSnapAMR)
	handle("GET /a/{name}/snap/{snap}/level/{level}", s.handleLevel)
	handle("POST /a/{name}/ingest", s.handleIngest)
	handle("POST /a/{name}/repair", s.handleRepair)
	return mux
}

// handleRaw serves the committed bytes of one archive's current
// generation with full Range / ETag / If-Range semantics — the mount
// point a remote tacd (internal/remote) opens as its primary. The ETag
// is a strong, generation-derived validator: an ingest commit changes
// it, so a remote reader pinned to the old generation fails ErrChanged
// (classified ErrIO downstream) instead of reading torn bytes.
func (s *Server) handleRaw(w http.ResponseWriter, r *http.Request) {
	sa, err := s.lookup(r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	st := sa.view()
	w.Header().Set("ETag", fmt.Sprintf("\"taca-g%d-%d\"", st.r.Generation(), st.r.EndOffset()))
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, sa.name+".taca", time.Time{}, st.r.Section())
}

// errorBody is the JSON error envelope. Error and Retryable predate the
// v1 surface and mirror Message; new clients should key on Code.
type errorBody struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	Member      *int   `json:"member,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Error       string `json:"error"`
	Retryable   bool   `json:"retryable"`
}

// memberError tags an error with the member index it concerns so the
// envelope can carry machine-readable coordinates.
type memberError struct {
	mi  int
	err error
}

func (e *memberError) Error() string { return e.err.Error() }
func (e *memberError) Unwrap() error { return e.err }

// httpError maps an assembly error to a status code and the JSON error
// envelope via the sentinel the error was tagged with: unknown names
// and indices are the client's fault, archive damage and everything
// untagged is a server-side failure. Quarantined members answer a
// structured 502 — the damage is upstream of this server, and the body
// says so in machine-readable form so clients can stop retrying the
// poisoned member and keep using the rest.
//
// Client-attributable and archive-integrity messages pass through: they
// are constructed by this package or the archive index layer and name
// members, levels and checksums, never storage internals. Raw I/O and
// untagged failures are sanitized — their messages carry file paths,
// URLs and offsets — with the detail logged server-side (Config.Logf).
func (s *Server) httpError(w http.ResponseWriter, err error) {
	env := errorBody{Code: "internal", Message: err.Error()}
	var me *memberError
	if errors.As(err, &me) {
		mi := me.mi
		env.Member = &mi
	}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQuarantined):
		code = http.StatusBadGateway
		env.Code = "quarantined"
		env.Quarantined = true
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
		env.Code = "not_found"
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
		env.Code = "bad_request"
	case errors.Is(err, ErrReadOnly):
		code = http.StatusMethodNotAllowed
		env.Code = "read_only"
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
		env.Code = "busy"
		env.Retryable = true
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		code = http.StatusServiceUnavailable
		env.Code = "draining"
		env.Retryable = true
	case errors.Is(err, ErrNoReplica):
		code = http.StatusConflict
		env.Code = "no_replica"
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
		env.Code = "timeout"
		env.Retryable = true
	case errors.Is(err, archive.ErrIO):
		// Transient storage fault that survived the retry budget. The
		// underlying error is an OS or network message (paths, URLs,
		// offsets) — log it, don't leak it.
		env.Code = "io"
		env.Message = "transient storage read failure (retries exhausted); try again"
		env.Retryable = true
		s.cfg.Logf("server: io error: %v", err)
	case errors.Is(err, archive.ErrCorrupt):
		// Deterministic damage: the message is archive-constructed
		// (member/level/batch coordinates, checksum mismatch) and safe.
		env.Code = "corrupt"
	default:
		env.Message = "internal server error"
		s.cfg.Logf("server: internal error: %v", err)
	}
	env.Error = env.Message
	s.writeError(w, code, env)
}

// writeError emits the envelope with the given status.
func (s *Server) writeError(w http.ResponseWriter, code int, env errorBody) {
	env.Error = env.Message
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(env) //nolint:errcheck // client went away; nothing to do
}

// requestCtx derives the per-request context, bounded by RequestTimeout
// when one is configured.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// archiveInfo is the /archives listing row.
type archiveInfo struct {
	Name            string `json:"name"`
	Members         int    `json:"members"`
	CompressedBytes int64  `json:"compressed_bytes"`
	OriginalBytes   int64  `json:"original_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One snapshot for both fields, so the reported ratio always equals
	// hits/(hits+misses) of the counters in the same body.
	st := s.cache.Stats()
	writeJSON(w, struct {
		Archives []string    `json:"archives"`
		Cache    CacheStats  `json:"cache"`
		HitRatio float64     `json:"cache_hit_ratio"`
		Ingest   IngestStats `json:"ingest"`
		Health   HealthStats `json:"health"`
		Draining bool        `json:"draining"`
	}{s.Names(), st, st.HitRatio(), s.IngestStats(), s.HealthStats(), s.Draining()})
}

func (s *Server) handleArchives(w http.ResponseWriter, r *http.Request) {
	var out []archiveInfo
	for _, name := range s.Names() {
		sa, err := s.lookup(name)
		if err != nil {
			continue // racing Close; skip
		}
		info := archiveInfo{Name: name}
		members := sa.reader().Members()
		for mi := range members {
			m := &members[mi]
			info.Members++
			info.CompressedBytes += m.CompressedBytes()
			info.OriginalBytes += m.OriginalBytes()
		}
		out = append(out, info)
	}
	writeJSON(w, struct {
		Archives []archiveInfo `json:"archives"`
	}{out})
}

// memberInfo is the /a/{name} listing row.
type memberInfo struct {
	Index           int     `json:"index"`
	Name            string  `json:"name"`
	Field           string  `json:"field"`
	Ratio           int     `json:"ratio"`
	Levels          int     `json:"levels"`
	StoredCells     int     `json:"stored_cells"`
	CompressedBytes int64   `json:"compressed_bytes"`
	ErrorBound      float64 `json:"error_bound"`
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	sa, err := s.lookup(r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	members := sa.reader().Members()
	out := make([]memberInfo, len(members))
	for mi := range members {
		m := &members[mi]
		out[mi] = memberInfo{
			Index: mi, Name: m.Name, Field: m.Field, Ratio: m.Ratio,
			Levels: len(m.Levels), StoredCells: m.StoredCells(),
			CompressedBytes: m.CompressedBytes(), ErrorBound: m.ErrorBound,
		}
	}
	writeJSON(w, struct {
		Name    string       `json:"name"`
		Members []memberInfo `json:"members"`
	}{sa.name, out})
}

// levelInfo is the /a/{name}/snap/{i} geometry row.
type levelInfo struct {
	Level           int    `json:"level"`
	Dims            [3]int `json:"dims"`
	UnitBlock       int    `json:"unit_block"`
	OccupiedBlocks  int    `json:"occupied_blocks"`
	Batches         int    `json:"batches"`
	CompressedBytes int64  `json:"compressed_bytes"`
}

// snapArgs resolves the {name}/{snap} path segments shared by the
// snapshot handlers.
func (s *Server) snapArgs(r *http.Request) (*servedArchive, int, *archive.Member, error) {
	sa, err := s.lookup(r.PathValue("name"))
	if err != nil {
		return nil, 0, nil, err
	}
	mi, err := strconv.Atoi(r.PathValue("snap"))
	if err != nil {
		return nil, 0, nil, fmt.Errorf("server: %w: snapshot index %q is not a number", ErrBadRequest, r.PathValue("snap"))
	}
	m, err := sa.member(sa.view(), mi)
	if err != nil {
		return nil, 0, nil, err
	}
	return sa, mi, m, nil
}

func (s *Server) handleSnap(w http.ResponseWriter, r *http.Request) {
	sa, mi, m, err := s.snapArgs(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	levels := make([]levelInfo, len(m.Levels))
	for li := range m.Levels {
		idx := &m.Levels[li]
		levels[li] = levelInfo{
			Level:          li,
			Dims:           [3]int{idx.Dims.X, idx.Dims.Y, idx.Dims.Z},
			UnitBlock:      idx.UnitBlock,
			OccupiedBlocks: idx.Mask.Count(),
			Batches:        len(idx.Batches),

			CompressedBytes: idx.CompressedBytes(),
		}
	}
	writeJSON(w, struct {
		Archive string      `json:"archive"`
		Index   int         `json:"index"`
		Name    string      `json:"name"`
		Field   string      `json:"field"`
		Ratio   int         `json:"ratio"`
		Levels  []levelInfo `json:"levels"`
	}{sa.name, mi, m.Name, m.Field, m.Ratio, levels})
}

func (s *Server) handleSnapAMR(w http.ResponseWriter, r *http.Request) {
	sa, mi, _, err := s.snapArgs(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ds, err := s.DatasetContext(ctx, sa.name, mi)
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := compressedBody(w, r)
	defer bw.Close()
	// Best effort: the status line is already gone, so a mid-stream write
	// failure can only surface as a truncated body.
	_ = ds.Write(bw)
}

func (s *Server) handleLevel(w http.ResponseWriter, r *http.Request) {
	sa, mi, m, err := s.snapArgs(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	li, err := strconv.Atoi(r.PathValue("level"))
	if err != nil {
		s.httpError(w, fmt.Errorf("server: %w: level index %q is not a number", ErrBadRequest, r.PathValue("level")))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var g *grid.Grid3[amr.Value]
	var reg grid.Region
	if roiStr := r.URL.Query().Get("roi"); roiStr != "" {
		roi, err := grid.ParseRegion(roiStr)
		if err != nil {
			s.httpError(w, fmt.Errorf("server: %w: %w", ErrBadRequest, err))
			return
		}
		g, reg, err = s.RegionContext(ctx, sa.name, mi, li, roi)
		if err != nil {
			s.httpError(w, err)
			return
		}
	} else {
		var idx *archive.LevelIndex
		g, idx, err = s.LevelContext(ctx, sa.name, mi, li)
		if err != nil {
			s.httpError(w, err)
			return
		}
		reg = grid.RegionOf(idx.Dims)
	}
	// Both assembly paths above return ErrNotFound for an out-of-range
	// level, so li is valid here.
	ub := m.Levels[li].UnitBlock
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Tac-Elem", "float32le")
	h.Set("X-Tac-Dims", fmt.Sprintf("%d %d %d", g.Dim.X, g.Dim.Y, g.Dim.Z))
	h.Set("X-Tac-Region", fmt.Sprintf("%d:%d,%d:%d,%d:%d", reg.X0, reg.X1, reg.Y0, reg.Y1, reg.Z0, reg.Z1))
	h.Set("X-Tac-Unit-Block", strconv.Itoa(ub))
	bw := compressedBody(w, r)
	defer bw.Close()
	writeFloats(bw, g.Data)
}

// writeFloats streams values as little-endian float32, chunked so a large
// level never materializes a second full-size byte buffer.
func writeFloats(w io.Writer, vals []amr.Value) error {
	const chunk = 16384
	buf := make([]byte, 0, chunk*4)
	for len(vals) > 0 {
		n := min(len(vals), chunk)
		buf = buf[:0]
		for _, v := range vals[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// gzipWriters pools the serving-side gzip state (BestSpeed; level grids
// of floats compress little but the window state is the expensive part).
var gzipWriters = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return zw
	},
}

// bodyWriter is the response body sink: possibly gzip-wrapped.
type bodyWriter struct {
	io.Writer
	zw *gzip.Writer
}

// Close flushes and pools the gzip writer, if any.
func (b *bodyWriter) Close() error {
	if b.zw == nil {
		return nil
	}
	err := b.zw.Close()
	b.zw.Reset(nil)
	gzipWriters.Put(b.zw)
	return err
}

// acceptsGzip reports whether the request's Accept-Encoding lists gzip
// with a nonzero quality: "gzip", "x-gzip" or "gzip;q=0.5" accept it,
// "gzip;q=0" and absence refuse it (the content-negotiation cases a
// strict client relies on; full q-value ranking across codings is not
// attempted since gzip is the only coding offered).
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		coding = strings.TrimSpace(coding)
		if coding != "gzip" && coding != "x-gzip" && coding != "*" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			k, v, _ := strings.Cut(strings.TrimSpace(p), "=")
			if strings.TrimSpace(k) == "q" {
				q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				return err != nil || q > 0
			}
		}
		return true
	}
	return false
}

// compressedBody wraps w in gzip when the request advertises support.
// Callers must Close the result before returning.
func compressedBody(w http.ResponseWriter, r *http.Request) *bodyWriter {
	if !acceptsGzip(r.Header.Get("Accept-Encoding")) {
		return &bodyWriter{Writer: w}
	}
	w.Header().Set("Content-Encoding", "gzip")
	zw := gzipWriters.Get().(*gzip.Writer)
	zw.Reset(w)
	return &bodyWriter{Writer: zw, zw: zw}
}
