package server

import (
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/grid"
)

// Handler returns the HTTP API:
//
//	GET  /healthz                                liveness probe ("ok", or 503 "draining")
//	GET  /stats                                  cache + ingest + registry counters (JSON)
//	GET  /archives                               registered archives (JSON)
//	GET  /a/{name}                               member listing (JSON)
//	GET  /a/{name}/snap/{i}                      one member's level geometry (JSON)
//	GET  /a/{name}/snap/{i}/amr                  whole snapshot, .amr stream
//	GET  /a/{name}/snap/{i}/level/{l}            dense level grid, raw float32 LE
//	GET  /a/{name}/snap/{i}/level/{l}?roi=x0:x1,y0:y1,z0:z1
//	                                             dense window of the level (level cells)
//	POST /a/{name}/ingest                        append one .amr snapshot (writable archives)
//
// Binary responses carry the payload geometry in X-Tac-* headers and are
// gzip-compressed when the client advertises Accept-Encoding: gzip.
// Ingest bodies are .amr streams (amr.Dataset.Write), optionally
// gzip-compressed with Content-Encoding: gzip; a full ingest queue
// answers 429 with a Retry-After hint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		// Degraded is still 200: the node serves every healthy member, so
		// load balancers should keep routing here — but the body tells
		// operators the archive needs repair.
		if s.Degraded() {
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /archives", s.handleArchives)
	mux.HandleFunc("GET /a/{name}", s.handleArchive)
	mux.HandleFunc("GET /a/{name}/snap/{snap}", s.handleSnap)
	mux.HandleFunc("GET /a/{name}/snap/{snap}/amr", s.handleSnapAMR)
	mux.HandleFunc("GET /a/{name}/snap/{snap}/level/{level}", s.handleLevel)
	mux.HandleFunc("POST /a/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /a/{name}/repair", s.handleRepair)
	return mux
}

// httpError maps an assembly error to a status code via the sentinel the
// error was tagged with: unknown names and indices are the client's
// fault, archive damage and everything untagged is a server-side failure.
// Quarantined members answer a structured 502 — the damage is upstream of
// this server, and the body says so in machine-readable form so clients
// can stop retrying the poisoned member and keep using the rest.
func httpError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQuarantined) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		enc := json.NewEncoder(w)
		//nolint:errcheck // client went away; nothing to do
		enc.Encode(struct {
			Error       string `json:"error"`
			Quarantined bool   `json:"quarantined"`
			Retryable   bool   `json:"retryable"`
		}{err.Error(), true, false})
		return
	}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrReadOnly):
		code = http.StatusMethodNotAllowed
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNoReplica):
		code = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	http.Error(w, err.Error(), code)
}

// requestCtx derives the per-request context, bounded by RequestTimeout
// when one is configured.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// archiveInfo is the /archives listing row.
type archiveInfo struct {
	Name            string `json:"name"`
	Members         int    `json:"members"`
	CompressedBytes int64  `json:"compressed_bytes"`
	OriginalBytes   int64  `json:"original_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One snapshot for both fields, so the reported ratio always equals
	// hits/(hits+misses) of the counters in the same body.
	st := s.cache.Stats()
	writeJSON(w, struct {
		Archives []string    `json:"archives"`
		Cache    CacheStats  `json:"cache"`
		HitRatio float64     `json:"cache_hit_ratio"`
		Ingest   IngestStats `json:"ingest"`
		Health   HealthStats `json:"health"`
		Draining bool        `json:"draining"`
	}{s.Names(), st, st.HitRatio(), s.IngestStats(), s.HealthStats(), s.Draining()})
}

func (s *Server) handleArchives(w http.ResponseWriter, r *http.Request) {
	var out []archiveInfo
	for _, name := range s.Names() {
		sa, err := s.lookup(name)
		if err != nil {
			continue // racing Close; skip
		}
		info := archiveInfo{Name: name}
		members := sa.reader().Members()
		for mi := range members {
			m := &members[mi]
			info.Members++
			info.CompressedBytes += m.CompressedBytes()
			info.OriginalBytes += m.OriginalBytes()
		}
		out = append(out, info)
	}
	writeJSON(w, struct {
		Archives []archiveInfo `json:"archives"`
	}{out})
}

// memberInfo is the /a/{name} listing row.
type memberInfo struct {
	Index           int     `json:"index"`
	Name            string  `json:"name"`
	Field           string  `json:"field"`
	Ratio           int     `json:"ratio"`
	Levels          int     `json:"levels"`
	StoredCells     int     `json:"stored_cells"`
	CompressedBytes int64   `json:"compressed_bytes"`
	ErrorBound      float64 `json:"error_bound"`
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	sa, err := s.lookup(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	members := sa.reader().Members()
	out := make([]memberInfo, len(members))
	for mi := range members {
		m := &members[mi]
		out[mi] = memberInfo{
			Index: mi, Name: m.Name, Field: m.Field, Ratio: m.Ratio,
			Levels: len(m.Levels), StoredCells: m.StoredCells(),
			CompressedBytes: m.CompressedBytes(), ErrorBound: m.ErrorBound,
		}
	}
	writeJSON(w, struct {
		Name    string       `json:"name"`
		Members []memberInfo `json:"members"`
	}{sa.name, out})
}

// levelInfo is the /a/{name}/snap/{i} geometry row.
type levelInfo struct {
	Level           int    `json:"level"`
	Dims            [3]int `json:"dims"`
	UnitBlock       int    `json:"unit_block"`
	OccupiedBlocks  int    `json:"occupied_blocks"`
	Batches         int    `json:"batches"`
	CompressedBytes int64  `json:"compressed_bytes"`
}

// snapArgs resolves the {name}/{snap} path segments shared by the
// snapshot handlers.
func (s *Server) snapArgs(r *http.Request) (*servedArchive, int, *archive.Member, error) {
	sa, err := s.lookup(r.PathValue("name"))
	if err != nil {
		return nil, 0, nil, err
	}
	mi, err := strconv.Atoi(r.PathValue("snap"))
	if err != nil {
		return nil, 0, nil, fmt.Errorf("server: %w: snapshot index %q is not a number", ErrBadRequest, r.PathValue("snap"))
	}
	m, err := sa.member(sa.view(), mi)
	if err != nil {
		return nil, 0, nil, err
	}
	return sa, mi, m, nil
}

func (s *Server) handleSnap(w http.ResponseWriter, r *http.Request) {
	sa, mi, m, err := s.snapArgs(r)
	if err != nil {
		httpError(w, err)
		return
	}
	levels := make([]levelInfo, len(m.Levels))
	for li := range m.Levels {
		idx := &m.Levels[li]
		levels[li] = levelInfo{
			Level:          li,
			Dims:           [3]int{idx.Dims.X, idx.Dims.Y, idx.Dims.Z},
			UnitBlock:      idx.UnitBlock,
			OccupiedBlocks: idx.Mask.Count(),
			Batches:        len(idx.Batches),

			CompressedBytes: idx.CompressedBytes(),
		}
	}
	writeJSON(w, struct {
		Archive string      `json:"archive"`
		Index   int         `json:"index"`
		Name    string      `json:"name"`
		Field   string      `json:"field"`
		Ratio   int         `json:"ratio"`
		Levels  []levelInfo `json:"levels"`
	}{sa.name, mi, m.Name, m.Field, m.Ratio, levels})
}

func (s *Server) handleSnapAMR(w http.ResponseWriter, r *http.Request) {
	sa, mi, _, err := s.snapArgs(r)
	if err != nil {
		httpError(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ds, err := s.DatasetContext(ctx, sa.name, mi)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := compressedBody(w, r)
	defer bw.Close()
	// Best effort: the status line is already gone, so a mid-stream write
	// failure can only surface as a truncated body.
	_ = ds.Write(bw)
}

func (s *Server) handleLevel(w http.ResponseWriter, r *http.Request) {
	sa, mi, m, err := s.snapArgs(r)
	if err != nil {
		httpError(w, err)
		return
	}
	li, err := strconv.Atoi(r.PathValue("level"))
	if err != nil {
		httpError(w, fmt.Errorf("server: %w: level index %q is not a number", ErrBadRequest, r.PathValue("level")))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var g *grid.Grid3[amr.Value]
	var reg grid.Region
	if roiStr := r.URL.Query().Get("roi"); roiStr != "" {
		roi, err := grid.ParseRegion(roiStr)
		if err != nil {
			httpError(w, fmt.Errorf("server: %w: %w", ErrBadRequest, err))
			return
		}
		g, reg, err = s.RegionContext(ctx, sa.name, mi, li, roi)
		if err != nil {
			httpError(w, err)
			return
		}
	} else {
		var idx *archive.LevelIndex
		g, idx, err = s.LevelContext(ctx, sa.name, mi, li)
		if err != nil {
			httpError(w, err)
			return
		}
		reg = grid.RegionOf(idx.Dims)
	}
	// Both assembly paths above return ErrNotFound for an out-of-range
	// level, so li is valid here.
	ub := m.Levels[li].UnitBlock
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Tac-Elem", "float32le")
	h.Set("X-Tac-Dims", fmt.Sprintf("%d %d %d", g.Dim.X, g.Dim.Y, g.Dim.Z))
	h.Set("X-Tac-Region", fmt.Sprintf("%d:%d,%d:%d,%d:%d", reg.X0, reg.X1, reg.Y0, reg.Y1, reg.Z0, reg.Z1))
	h.Set("X-Tac-Unit-Block", strconv.Itoa(ub))
	bw := compressedBody(w, r)
	defer bw.Close()
	writeFloats(bw, g.Data)
}

// writeFloats streams values as little-endian float32, chunked so a large
// level never materializes a second full-size byte buffer.
func writeFloats(w io.Writer, vals []amr.Value) error {
	const chunk = 16384
	buf := make([]byte, 0, chunk*4)
	for len(vals) > 0 {
		n := min(len(vals), chunk)
		buf = buf[:0]
		for _, v := range vals[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// gzipWriters pools the serving-side gzip state (BestSpeed; level grids
// of floats compress little but the window state is the expensive part).
var gzipWriters = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return zw
	},
}

// bodyWriter is the response body sink: possibly gzip-wrapped.
type bodyWriter struct {
	io.Writer
	zw *gzip.Writer
}

// Close flushes and pools the gzip writer, if any.
func (b *bodyWriter) Close() error {
	if b.zw == nil {
		return nil
	}
	err := b.zw.Close()
	b.zw.Reset(nil)
	gzipWriters.Put(b.zw)
	return err
}

// acceptsGzip reports whether the request's Accept-Encoding lists gzip
// with a nonzero quality: "gzip", "x-gzip" or "gzip;q=0.5" accept it,
// "gzip;q=0" and absence refuse it (the content-negotiation cases a
// strict client relies on; full q-value ranking across codings is not
// attempted since gzip is the only coding offered).
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		coding = strings.TrimSpace(coding)
		if coding != "gzip" && coding != "x-gzip" && coding != "*" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			k, v, _ := strings.Cut(strings.TrimSpace(p), "=")
			if strings.TrimSpace(k) == "q" {
				q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				return err != nil || q > 0
			}
		}
		return true
	}
	return false
}

// compressedBody wraps w in gzip when the request advertises support.
// Callers must Close the result before returning.
func compressedBody(w http.ResponseWriter, r *http.Request) *bodyWriter {
	if !acceptsGzip(r.Header.Get("Accept-Encoding")) {
		return &bodyWriter{Writer: w}
	}
	w.Header().Set("Content-Encoding", "gzip")
	zw := gzipWriters.Get().(*gzip.Writer)
	zw.Reset(w)
	return &bodyWriter{Writer: zw, zw: zw}
}
