package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/faultio"
)

var errFlaky = errors.New("injected transient I/O error")

// sleepRecorder captures backoff sleeps instead of actually sleeping, so
// retry cadence is asserted without wall-clock time in the test.
type sleepRecorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (sr *sleepRecorder) sleep(d time.Duration) {
	sr.mu.Lock()
	sr.slept = append(sr.slept, d)
	sr.mu.Unlock()
}

func (sr *sleepRecorder) all() []time.Duration {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return append([]time.Duration(nil), sr.slept...)
}

// flakyServer registers blob as "test", served through a faultio wrapper
// (armed by the test after this clean open), with a recording clock and a
// fixed midpoint jitter so jittered(d, 0.5) == d exactly.
func flakyServer(t testing.TB, blob []byte, cfg Config) (*Server, *faultio.ReaderAt, *sleepRecorder) {
	t.Helper()
	fr := faultio.New(bytes.NewReader(blob))
	r, err := archive.Open(fr, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	sr := &sleepRecorder{}
	s.sleep = sr.sleep
	s.jitter = func() float64 { return 0.5 }
	if err := s.AddReader("test", r, nil); err != nil {
		t.Fatal(err)
	}
	return s, fr, sr
}

// cleanLevelBody is the expected payload of /a/test/snap/{mi}/level/{li},
// extracted from a pristine reader so no serving-path state is involved.
func cleanLevelBody(t testing.TB, blob []byte, mi, li int) []byte {
	t.Helper()
	r, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := r.ExtractLevel(mi, li)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeFloats(&buf, l.Grid.Data); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRetryFlakyThenHeal drives a request through storage that fails its
// first two reads and then heals: the request must succeed byte-identical
// to a clean extraction, after exactly two backoff sleeps on the doubling
// schedule, and the member must not be quarantined — transient faults are
// not corruption.
func TestRetryFlakyThenHeal(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, fr, sr := flakyServer(t, blob, Config{Workers: 1, RetryBackoff: 4 * time.Millisecond})
	fr.SetPlan(faultio.FailFirst(2, errFlaky))
	rec := get(t, s.Handler(), "/a/test/snap/0/level/0")
	if rec.Code != http.StatusOK {
		t.Fatalf("request through flaky-then-heal storage: status %d: %s", rec.Code, rec.Body.String())
	}
	if want := cleanLevelBody(t, blob, 0, 0); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("payload served through retries differs from a clean extraction")
	}
	if got, want := sr.all(), []time.Duration{4 * time.Millisecond, 8 * time.Millisecond}; len(got) != len(want) ||
		got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoff sleeps %v, want %v", got, want)
	}
	if fr.Faults() != 2 {
		t.Fatalf("storage injected %d faults, want 2", fr.Faults())
	}
	hs := s.HealthStats()
	if hs.Retries != 2 || hs.QuarantinedMembers != 0 || hs.CorruptEvents != 0 {
		t.Fatalf("health after transient faults: %+v", hs)
	}
	if rec := get(t, s.Handler(), "/healthz"); rec.Body.String() != "ok\n" {
		t.Fatalf("healthz after healed transient faults: %q", rec.Body.String())
	}
}

// TestRetryJitterSpreadsBackoff pins the jitter seam: a sleep is drawn
// from [0.5d, 1.5d), so synchronized clients desynchronize.
func TestRetryJitterSpreadsBackoff(t *testing.T) {
	d := 10 * time.Millisecond
	for _, j := range []float64{0, 0.25, 0.5, 0.999} {
		got := jittered(d, j)
		if got < d/2 || got >= d+d/2 {
			t.Fatalf("jittered(%v, %v) = %v, outside [%v, %v)", d, j, got, d/2, d+d/2)
		}
	}
	if jittered(d, 0.5) != d {
		t.Fatalf("midpoint jitter must be the nominal backoff, got %v", jittered(d, 0.5))
	}
}

// TestRetryExhaustionStaysTransient never lets the storage heal: the
// request must fail after exactly RetryAttempts sleeps with the I/O error
// in the chain — and because the failure is transient, not corruption,
// the member must stay in service and recover as soon as the storage does.
func TestRetryExhaustionStaysTransient(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, fr, sr := flakyServer(t, blob, Config{Workers: 1, RetryBackoff: time.Millisecond})
	fr.SetPlan(faultio.FailFirst(1<<30, errFlaky))
	rec := get(t, s.Handler(), "/a/test/snap/0/level/0")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("unhealed storage: status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if got := sr.all(); len(got) != DefaultRetryAttempts {
		t.Fatalf("slept %d times, want %d (bounded attempts)", len(got), DefaultRetryAttempts)
	}
	if hs := s.HealthStats(); hs.QuarantinedMembers != 0 || hs.CorruptEvents != 0 {
		t.Fatalf("transient exhaustion must not quarantine: %+v", hs)
	}
	fr.SetPlan(nil) // storage healed
	rec = get(t, s.Handler(), "/a/test/snap/0/level/0")
	if rec.Code != http.StatusOK {
		t.Fatalf("after storage healed: status %d", rec.Code)
	}
	if want := cleanLevelBody(t, blob, 0, 0); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("post-heal payload differs from a clean extraction")
	}
}

// TestRetryDisabled pins the opt-out: RetryAttempts < 0 fails on the
// first fault with no sleeps.
func TestRetryDisabled(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, fr, sr := flakyServer(t, blob, Config{Workers: 1, RetryAttempts: -1})
	fr.SetPlan(faultio.FailFirst(1, errFlaky))
	if rec := get(t, s.Handler(), "/a/test/snap/0/level/0"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if got := sr.all(); len(got) != 0 {
		t.Fatalf("retries disabled but slept %v", got)
	}
	if rec := get(t, s.Handler(), "/a/test/snap/0/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("after the single fault: status %d", rec.Code)
	}
}

// TestRetryDecodesNeverExceedMisses hammers flaky storage from many
// goroutines (run under -race in CI) and asserts the cache's decodes ≤
// misses invariant survives retries: retrying happens inside one fill, so
// it must never inflate the decode count past the misses that admitted
// fills.
func TestRetryDecodesNeverExceedMisses(t *testing.T) {
	blob := testArchiveBytes(t, 4)
	s, fr, _ := flakyServer(t, blob, Config{RetryBackoff: time.Microsecond})
	fr.SetPlan(faultio.FailFirst(8, errFlaky))
	h := s.Handler()
	var wg sync.WaitGroup
	codes := make([]int, 32)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("/a/test/snap/%d/level/%d", i%2, i%2)
			codes[i] = get(t, h, url).Code
		}(i)
	}
	wg.Wait()
	st := s.Cache().Stats()
	if st.Decodes > st.Misses {
		t.Fatalf("decodes %d > misses %d under retries", st.Decodes, st.Misses)
	}
	// The plan healed after 8 faults, so a final pass must serve clean.
	for mi := 0; mi < 2; mi++ {
		rec := get(t, h, fmt.Sprintf("/a/test/snap/%d/level/%d", mi, mi))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-storm request for member %d: status %d", mi, rec.Code)
		}
		if want := cleanLevelBody(t, blob, mi, mi); !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("member %d payload differs from clean extraction after the fault storm", mi)
		}
	}
	if st := s.Cache().Stats(); st.Decodes > st.Misses {
		t.Fatalf("decodes %d > misses %d after recovery", st.Decodes, st.Misses)
	}
}
