package server

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/remote"
)

// maxIngestBody caps one ingest request body; .amr streams of realistic
// snapshots are far smaller, so anything bigger is hostile or a bug.
const maxIngestBody = 1 << 30

// ingester owns the write path of one archive: a single goroutine drains
// a bounded queue of parsed snapshots, compresses each through the
// archive's worker-pool pipeline, commits (crash-safe fsync ordering in
// archive.Writer.Commit), and swaps a fresh generation view into the
// servedArchive so concurrent readers see the new member immediately —
// without restart and without invalidating any batch they already hold.
//
// One goroutine per archive serializes appends (archive.Writer is not
// concurrency-safe) while the bounded queue is the backpressure surface:
// submit never blocks, it either enqueues or reports ErrBusy.
type ingester struct {
	sa  *servedArchive // set at registration, before run starts
	f   *os.File       // shared handle: writer appends, readers pread
	w   *archive.Writer
	cfg codec.Config
	q   chan ingestJob

	mu     sync.RWMutex // guards closed vs. submit (race-free close(q))
	closed bool

	done     chan struct{} // closed when run has sealed and closed the file
	finalErr error         // written before done closes, read after

	accepted atomic.Int64 // members committed
	rejected atomic.Int64 // submissions refused by a full queue
	bytesIn  atomic.Int64 // uncompressed bytes of committed members

	// beforeHandle, when non-nil, runs at the start of each handle; tests
	// use it to hold the loop mid-job so the queue fills deterministically.
	// Synchronized by the job channel: set it before the first submit.
	beforeHandle func()
}

type ingestJob struct {
	ds    *amr.Dataset
	reply chan ingestResult
}

type ingestResult struct {
	member int    // index of the appended member
	gen    uint64 // generation whose footer now indexes it
	err    error
}

// IngestStats aggregates the write-path counters across archives.
type IngestStats struct {
	// Accepted counts snapshots committed and made visible.
	Accepted int64 `json:"accepted"`
	// Rejected counts submissions bounced by a full queue (429s).
	Rejected int64 `json:"rejected"`
	// Bytes is the uncompressed size of everything accepted.
	Bytes int64 `json:"bytes"`
}

// IngestStats sums the counters of every writable archive.
func (s *Server) IngestStats() IngestStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st IngestStats
	for _, sa := range s.archives {
		if sa.ing == nil {
			continue
		}
		st.Accepted += sa.ing.accepted.Load()
		st.Rejected += sa.ing.rejected.Load()
		st.Bytes += sa.ing.bytesIn.Load()
	}
	return st
}

// AddAppendFile opens a .taca file read-write and registers it as a
// writable archive.
//
// Deprecated: use Add with an ArchiveSpec{Append: true}.
func (s *Server) AddAppendFile(spec string, cfg codec.Config) (string, error) {
	name, primary := splitSpec(spec)
	return s.Add(name, ArchiveSpec{Primary: primary, Append: true, Ingest: cfg})
}

// addAppend opens spec.Primary read-write and registers it as a
// writable archive: reads are served exactly as read-only specs, and
// POST /a/{name}/ingest appends snapshots to it. A torn tail from an
// earlier crash is truncated on open (archive.OpenAppend). spec.Ingest
// sets the compression parameters for ingested members; a zero
// ErrorBound inherits them from the archive's newest member, so a
// growing campaign keeps its established fidelity without restating it.
// The file is sealed and closed by Server.Close after the queue drains.
func (s *Server) addAppend(name string, spec ArchiveSpec) (string, error) {
	if remote.IsURL(spec.Primary) {
		return "", fmt.Errorf("server: %s: append requires a local file, not a URL", spec.Primary)
	}
	if len(spec.Replicas) > 0 {
		// The repair splice and the append tail would race over the same
		// file region; replicated archives are read-only for now.
		return "", fmt.Errorf("server: %s: replicas cannot back a writable archive", spec.Primary)
	}
	w, f, err := archive.OpenAppendFile(spec.Primary)
	if err != nil {
		return "", err
	}
	// Campaign mode: delta-code ingested members against the committed
	// tail. The writer primes each field's reference from the newest
	// committed member, so chains continue seamlessly across restarts.
	w.Keyframe = s.cfg.IngestKeyframe
	if spec.Keyframe >= 2 {
		w.Keyframe = spec.Keyframe
	}
	w.Checksums = w.Checksums || spec.Checksums
	w.FooterSum = w.FooterSum || spec.FooterSum
	r, err := archive.Open(f, w.Stats().BytesWritten)
	if err != nil {
		f.Close()
		return "", fmt.Errorf("%s: %w", spec.Primary, err)
	}
	cfg := spec.Ingest
	if cfg.ErrorBound == 0 {
		if ms := r.Members(); len(ms) > 0 {
			last := &ms[len(ms)-1]
			cfg.ErrorBound = last.ErrorBound
			cfg.Mode = last.Mode
			cfg.QuantBits = last.QuantBits
			cfg.LevelScales = append([]float64(nil), last.LevelScales...)
		}
	}
	ing := &ingester{
		f:    f,
		w:    w,
		cfg:  cfg,
		q:    make(chan ingestJob, s.cfg.IngestQueue),
		done: make(chan struct{}),
	}
	if err := s.add(name, r, nil, ing); err != nil {
		f.Close()
		return "", err
	}
	return name, nil
}

// submit hands ds to the ingester without blocking: the reply channel
// resolves once the snapshot is committed (or failed). ErrBusy means the
// queue is full — the client should back off and retry; ErrDraining
// means the ingester is shutting down.
func (ing *ingester) submit(ds *amr.Dataset) (<-chan ingestResult, error) {
	ing.mu.RLock()
	defer ing.mu.RUnlock()
	if ing.closed {
		return nil, fmt.Errorf("server: %w", ErrDraining)
	}
	job := ingestJob{ds: ds, reply: make(chan ingestResult, 1)}
	select {
	case ing.q <- job:
		return job.reply, nil
	default:
		ing.rejected.Add(1)
		return nil, fmt.Errorf("server: %w (%d queued)", ErrBusy, cap(ing.q))
	}
}

// stop drains the queue (every accepted snapshot still commits), seals
// the archive, closes the file, and waits for all of it.
func (ing *ingester) stop() error {
	ing.mu.Lock()
	if !ing.closed {
		ing.closed = true
		close(ing.q)
	}
	ing.mu.Unlock()
	<-ing.done
	return ing.finalErr
}

// run is the per-archive append loop.
func (ing *ingester) run() {
	defer close(ing.done)
	for job := range ing.q {
		job.reply <- ing.handle(job.ds)
	}
	// Seal: commits nothing new when the last handle already committed,
	// but guarantees a clean footer if a mid-append failure left members
	// sealed-but-uncommitted.
	if err := ing.w.Close(); err != nil && ing.finalErr == nil {
		ing.finalErr = err
	}
	if err := ing.f.Close(); err != nil && ing.finalErr == nil {
		ing.finalErr = err
	}
}

// handle appends one snapshot: compress, commit, republish the view.
func (ing *ingester) handle(ds *amr.Dataset) ingestResult {
	if ing.beforeHandle != nil {
		ing.beforeHandle()
	}
	mw, err := ing.w.BeginMember(ds.Name, ds.Field, ds.Ratio, ing.cfg)
	if err != nil {
		return ingestResult{err: err}
	}
	for _, l := range ds.Levels {
		if err := mw.AddLevel(l); err != nil {
			// Abort unhooks the half-built member so the writer survives
			// for the next job; its flushed frames become dead bytes.
			mw.Abort()
			return ingestResult{err: err}
		}
	}
	if err := mw.Close(); err != nil {
		return ingestResult{err: err}
	}
	if err := ing.w.Commit(); err != nil {
		return ingestResult{err: err}
	}
	// Re-open the index over the new generation and publish it. Readers
	// pinned to the old view keep working: the bytes they index were
	// never touched.
	r, err := archive.Open(ing.f, ing.w.Stats().BytesWritten)
	if err != nil {
		return ingestResult{err: fmt.Errorf("server: reopening after commit: %w", err)}
	}
	old := ing.sa.state.Load()
	ing.sa.state.Store(newArchiveState(r, old))
	ing.accepted.Add(1)
	ing.bytesIn.Add(int64(ds.OriginalBytes()))
	return ingestResult{member: len(r.Members()) - 1, gen: r.Generation()}
}

// handleIngest is POST /a/{name}/ingest: parse an .amr body, queue it,
// and answer with the committed member's coordinates.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sa, err := s.lookup(r.PathValue("name"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if sa.ing == nil {
		s.httpError(w, fmt.Errorf("server: %w: archive %q was not opened for append", ErrReadOnly, sa.name))
		return
	}
	if s.Draining() {
		s.httpError(w, fmt.Errorf("server: %w", ErrDraining))
		return
	}
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			s.httpError(w, fmt.Errorf("server: %w: bad gzip body: %v", ErrBadRequest, err))
			return
		}
		defer zr.Close()
		body = zr
	}
	ds, err := amr.ReadFrom(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, errorBody{
				Code: "too_large", Message: "ingest body exceeds limit",
			})
			return
		}
		s.httpError(w, fmt.Errorf("server: %w: parsing .amr body: %v", ErrBadRequest, err))
		return
	}
	if err := ds.Validate(); err != nil {
		s.httpError(w, fmt.Errorf("server: %w: invalid snapshot: %v", ErrBadRequest, err))
		return
	}
	reply, err := sa.ing.submit(ds)
	if err != nil {
		s.httpError(w, err)
		return
	}
	res := <-reply
	if res.err != nil {
		s.httpError(w, fmt.Errorf("server: appending snapshot: %w", res.err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, struct {
		Archive     string `json:"archive"`
		Snapshot    int    `json:"snapshot"`
		Name        string `json:"name"`
		Field       string `json:"field"`
		Generation  uint64 `json:"generation"`
		StoredCells int    `json:"stored_cells"`
	}{sa.name, res.member, ds.Name, ds.Field, res.gen, ds.StoredCells()})
}
