package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/archive"
)

// repairBody is handleRepair's JSON payload.
type repairBody struct {
	Archive        string `json:"archive"`
	FramesScanned  int    `json:"frames_scanned"`
	FramesDamaged  int    `json:"frames_damaged"`
	FramesRepaired int    `json:"frames_repaired"`
	BytesRespliced int64  `json:"bytes_respliced"`
	Repaired       []int  `json:"repaired"`
	Unquarantined  []int  `json:"unquarantined"`
	Error          string `json:"error"`
}

// replicaServer writes blob to a primary and one replica file, registers
// the primary as "test" with replica-backed failover and repair, and
// returns the server plus both paths. The caller damages the files —
// unlike the faultio chaos tests, the rot here is durable on-disk state,
// which is exactly what the repair path must be able to undo.
func replicaServer(t *testing.T, blob []byte, cfg Config) (*Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	primary := filepath.Join(dir, "primary.taca")
	rep := filepath.Join(dir, "replica.taca")
	for _, p := range []string{primary, rep} {
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	name, err := s.AddFileReplicas("test="+primary, []string{rep})
	if err != nil {
		t.Fatal(err)
	}
	if name != "test" {
		t.Fatalf("registered as %q, want \"test\"", name)
	}
	return s, primary, rep
}

// flipAt XORs mask into the byte at off of the file at path, in place,
// through its own descriptor — the server's open handles see the change
// because they share the inode.
func flipAt(t *testing.T, path string, off int64, mask byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// damageOffset locates a frame-midpoint byte using a pristine reader.
func damageOffset(t *testing.T, blob []byte, mi, li, b int) int64 {
	t.Helper()
	r, err := archive.Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	return frameMidpoint(t, r, mi, li, b)
}

// TestRepairAutoHealsOnQuarantine is the headline self-healing loop: a
// frame of the primary file rots on disk, requests strike out until the
// member is quarantined — and the quarantine trip itself re-fetches the
// damaged frame from the replica, digest-verifies it, splices it into
// the primary at the same offset, and lifts the quarantine. The next
// request serves 200, byte-identical, with no restart and no operator.
func TestRepairAutoHealsOnQuarantine(t *testing.T) {
	blob := chaosArchiveBytes(t)
	off := damageOffset(t, blob, 0, 0, 0)
	s, primary, _ := replicaServer(t, blob, Config{Workers: 1, QuarantineAfter: 2})
	flipAt(t, primary, off, 0x20)
	h := s.Handler()

	// Strikes 1 and 2 fail on the damaged frame; the second trips the
	// quarantine, whose synchronous auto-repair heals the member before
	// the response is on the wire.
	for strike := 1; strike <= 2; strike++ {
		if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusInternalServerError {
			t.Fatalf("strike %d: status %d: %s", strike, rec.Code, rec.Body.String())
		}
	}

	// Every level of every member now serves clean, byte-identical.
	for mi := 0; mi < 2; mi++ {
		for li := 0; li < 2; li++ {
			rec := get(t, h, fmt.Sprintf("/a/test/snap/%d/level/%d", mi, li))
			if rec.Code != http.StatusOK {
				t.Fatalf("member %d level %d after auto-repair: status %d: %s", mi, li, rec.Code, rec.Body.String())
			}
			if want := cleanLevelBody(t, blob, mi, li); !bytes.Equal(rec.Body.Bytes(), want) {
				t.Fatalf("member %d level %d differs from a clean extraction after repair", mi, li)
			}
		}
	}

	hs := healthOf(t, h)
	if hs.QuarantinedMembers != 0 || hs.Degraded {
		t.Fatalf("quarantine not lifted: %+v", hs)
	}
	if hs.RepairsAttempted < 1 || hs.RepairsSucceeded < 1 || hs.FramesRespliced < 1 || hs.Unquarantines < 1 {
		t.Fatalf("repair counters: %+v", hs)
	}

	// The splice healed the file itself, byte-identical to pristine.
	got, err := os.ReadFile(primary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("primary file is not byte-identical to the pristine archive after repair")
	}
	// The singleflight invariant holds through the damage/repair cycle.
	if cs := s.cache.Stats(); cs.Decodes > cs.Misses {
		t.Fatalf("decodes %d > misses %d", cs.Decodes, cs.Misses)
	}
}

// TestRepairEndpointHealsAfterReplicaFixed exercises the operator loop
// when auto-repair cannot help: the replica is rotten at the same frame,
// so the quarantine stands (502) — until the replica is restored and
// POST /a/{name}/repair heals the member in place.
func TestRepairEndpointHealsAfterReplicaFixed(t *testing.T) {
	blob := chaosArchiveBytes(t)
	off := damageOffset(t, blob, 0, 0, 0)
	s, primary, rep := replicaServer(t, blob, Config{Workers: 1, QuarantineAfter: 2})
	flipAt(t, primary, off, 0x20)
	flipAt(t, rep, off, 0x08) // replica rotted at the same frame
	h := s.Handler()

	for strike := 1; strike <= 2; strike++ {
		if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusInternalServerError {
			t.Fatalf("strike %d: status %d: %s", strike, rec.Code, rec.Body.String())
		}
	}
	// Auto-repair ran and failed — the fetch digest check refused the
	// damaged replica bytes — so the quarantine stands.
	hs := healthOf(t, h)
	if hs.RepairsAttempted < 1 || hs.RepairsSucceeded != 0 {
		t.Fatalf("counters after failed auto-repair: %+v", hs)
	}
	if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusBadGateway {
		t.Fatalf("unrepairable member: status %d, want 502", rec.Code)
	}
	// Manual repair against the still-damaged replica fails the same way,
	// and must not splice the bad bytes into the primary.
	if rec := post(t, h, "/a/test/repair", nil); rec.Code != http.StatusBadGateway {
		t.Fatalf("repair from damaged replica: status %d, want 502: %s", rec.Code, rec.Body.String())
	}

	// The operator restores the replica (rsync, snapshot, …) and POSTs
	// the repair: member healed, quarantine lifted, no restart.
	flipAt(t, rep, off, 0x08)
	rec := post(t, h, "/a/test/repair", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("repair: status %d: %s", rec.Code, rec.Body.String())
	}
	var rb repairBody
	if err := json.Unmarshal(rec.Body.Bytes(), &rb); err != nil {
		t.Fatalf("repair body decode: %v (%s)", err, rec.Body.String())
	}
	if rb.FramesRepaired < 1 || len(rb.Repaired) != 1 || rb.Repaired[0] != 0 {
		t.Fatalf("repair body: %+v", rb)
	}
	if len(rb.Unquarantined) != 1 || rb.Unquarantined[0] != 0 {
		t.Fatalf("unquarantined %v, want [0]", rb.Unquarantined)
	}

	if rec := get(t, h, "/a/test/snap/0/level/0"); rec.Code != http.StatusOK {
		t.Fatalf("after manual repair: status %d: %s", rec.Code, rec.Body.String())
	} else if want := cleanLevelBody(t, blob, 0, 0); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("repaired member differs from a clean extraction")
	}
	if got, err := os.ReadFile(primary); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("primary not healed on disk (err %v)", err)
	}
	if hs := healthOf(t, h); hs.QuarantinedMembers != 0 || hs.Degraded {
		t.Fatalf("quarantine not lifted: %+v", hs)
	}
	// Repairing the now-clean archive again is a harmless no-op.
	rec = post(t, h, "/a/test/repair", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("idempotent repair: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rb); err != nil {
		t.Fatal(err)
	}
	if rb.FramesRepaired != 0 || rb.FramesDamaged != 0 {
		t.Fatalf("repair of a clean archive spliced frames: %+v", rb)
	}
}

// TestFailoverServesThroughTruncatedPrimary loses half the primary file
// under the server's open descriptor: every read past the cut fails at
// the primary and falls over to the replica per read, so clients keep
// getting byte-identical 200s and the health machine records no
// corruption at all — failover is invisible to the archive layer.
func TestFailoverServesThroughTruncatedPrimary(t *testing.T) {
	blob := chaosArchiveBytes(t)
	s, primary, _ := replicaServer(t, blob, Config{Workers: 1, QuarantineAfter: 2})
	h := s.Handler()
	if err := os.Truncate(primary, int64(len(blob)/2)); err != nil {
		t.Fatal(err)
	}
	for mi := 0; mi < 2; mi++ {
		for li := 0; li < 2; li++ {
			rec := get(t, h, fmt.Sprintf("/a/test/snap/%d/level/%d", mi, li))
			if rec.Code != http.StatusOK {
				t.Fatalf("member %d level %d through truncated primary: status %d: %s", mi, li, rec.Code, rec.Body.String())
			}
			if want := cleanLevelBody(t, blob, mi, li); !bytes.Equal(rec.Body.Bytes(), want) {
				t.Fatalf("member %d level %d differs from a clean extraction", mi, li)
			}
		}
	}
	if hs := healthOf(t, h); hs.CorruptEvents != 0 || hs.QuarantinedMembers != 0 {
		t.Fatalf("failover surfaced as corruption: %+v", hs)
	}
}

// TestRepairEndpointErrors pins the error statuses: 409 without replicas,
// 404 for unknown archives and out-of-range members, 400 for garbage
// member indices, and a clean 200 no-op for an undamaged member.
func TestRepairEndpointErrors(t *testing.T) {
	blob := chaosArchiveBytes(t)
	s, _, _ := flakyServer(t, blob, Config{Workers: 1})
	h := s.Handler()
	if rec := post(t, h, "/a/test/repair", nil); rec.Code != http.StatusConflict {
		t.Fatalf("repair without replicas: status %d, want 409: %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, h, "/a/nope/repair", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown archive: status %d, want 404", rec.Code)
	}

	sr, _, _ := replicaServer(t, blob, Config{Workers: 1})
	hr := sr.Handler()
	if rec := post(t, hr, "/a/test/repair?member=wat", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage member: status %d, want 400", rec.Code)
	}
	if rec := post(t, hr, "/a/test/repair?member=99", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("member out of range: status %d, want 404", rec.Code)
	}
	rec := post(t, hr, "/a/test/repair?member=0", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("repair of a clean member: status %d: %s", rec.Code, rec.Body.String())
	}
	var rb repairBody
	if err := json.Unmarshal(rec.Body.Bytes(), &rb); err != nil {
		t.Fatal(err)
	}
	if rb.FramesRepaired != 0 || rb.FramesDamaged != 0 || rb.FramesScanned == 0 {
		t.Fatalf("clean repair body: %+v", rb)
	}
}
