package server

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/amr"
	"repro/internal/grid"
	"repro/internal/sz"
)

// Key identifies one decoded block batch: frame Batch of level Level of
// member Member in the archive registered under Archive. It mirrors the
// seekable container's own frame granularity (archive.LevelIndex.BatchSpan),
// so a cache entry is exactly one independently decodable unit of the
// on-disk format.
type Key struct {
	Archive string
	Member  int
	Level   int
	Batch   int
}

// blocks is the cached value: the decoded unit blocks of one frame, in
// row-major mask order. Entries are shared between requests concurrently
// and must never be mutated after insertion; the assembly paths only copy
// out of them.
type blocks = []*grid.Grid3[amr.Value]

// CacheStats is a point-in-time snapshot of cache behavior.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget_bytes"`
	// Decodes counts fills that actually executed. Misses collapsed by
	// singleflight share one decode, so Decodes ≤ Misses; the gap is the
	// thundering-herd work the collapse saved.
	Decodes int64 `json:"decodes"`
}

// HitRatio returns Hits / (Hits + Misses), 0 when idle.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a sharded, byte-budgeted LRU over decoded block batches. Each
// shard owns an independent lock, hash ring and budget slice, so lookups
// from concurrent request goroutines contend only when they land on the
// same shard; fills are collapsed per key by a singleflight group that
// lives outside the shard locks, so a slow decode never blocks unrelated
// lookups.
type Cache struct {
	shards  []cacheShard
	seed    maphash.Seed
	flight  group[Key, blocks]
	decodes atomic.Int64
}

// cacheEntry is an intrusive LRU node; root.next is most recent.
type cacheEntry struct {
	key        Key
	val        blocks
	cost       int64
	prev, next *cacheEntry
}

type cacheShard struct {
	mu     sync.Mutex
	m      map[Key]*cacheEntry
	root   cacheEntry // sentinel of the recency ring
	bytes  int64
	budget int64

	hits, misses, evictions int64
}

// NewCache returns a cache budgeted at budgetBytes of decoded data split
// evenly across shards (shards ≤ 0 means DefaultCacheShards; a single
// shard makes eviction order fully deterministic, which the tests use).
func NewCache(budgetBytes int64, shards int) *Cache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	c := &Cache{shards: make([]cacheShard, shards), seed: maphash.MakeSeed()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.m = make(map[Key]*cacheEntry)
		sh.root.prev, sh.root.next = &sh.root, &sh.root
		sh.budget = budgetBytes / int64(shards)
	}
	return c
}

// shard maps a key to its shard by hashing every field.
func (c *Cache) shard(k Key) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.Archive)
	var num [24]byte
	for i, v := range [3]int{k.Member, k.Level, k.Batch} {
		u := uint64(v)
		for j := 0; j < 8; j++ {
			num[i*8+j] = byte(u >> (8 * j))
		}
	}
	h.Write(num[:])
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// GetOrFill returns the cached batch for k, or runs fill — once per key
// across all concurrent callers — and caches its result. fill returns the
// decoded blocks and their byte cost against the budget.
func (c *Cache) GetOrFill(k Key, fill func() (blocks, int64, error)) (blocks, error) {
	sh := c.shard(k)
	if v, ok := sh.get(k); ok {
		return v, nil
	}
	v, _, err := c.flight.Do(k, func() (blocks, error) {
		// Re-check under the flight: a previous flight for this key may
		// have landed between our miss and this call.
		if v, ok := sh.peek(k); ok {
			return v, nil
		}
		c.decodes.Add(1)
		v, cost, err := fill()
		if err != nil {
			return nil, err
		}
		sh.insert(k, v, cost)
		return v, nil
	})
	return v, err
}

// Purge drops every resident entry (counters are kept). Server.Close
// uses it so a registry reset cannot leave batches of a closed archive
// resident under a name a later Add might reuse.
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[Key]*cacheEntry)
		sh.root.prev, sh.root.next = &sh.root, &sh.root
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// PurgeMember drops every resident entry of one member of one archive —
// the repair path calls it after resplicing the member's frames on disk,
// so blocks decoded while the member was damaged cannot outlive the
// repair.
func (c *Cache) PurgeMember(name string, mi int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if k.Archive == name && k.Member == mi {
				sh.unlink(e)
				delete(sh.m, k)
				sh.bytes -= e.cost
			}
		}
		sh.mu.Unlock()
	}
}

// Stats sums the shard counters.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Entries += int64(len(sh.m))
		st.Bytes += sh.bytes
		st.Budget += sh.budget
		sh.mu.Unlock()
	}
	st.Decodes = c.decodes.Load()
	return st
}

// get looks k up, bumping recency and the hit/miss counters.
func (sh *cacheShard) get(k Key) (blocks, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[k]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.moveToFront(e)
	return e.val, true
}

// peek is get without counters: the double-check inside a fill is not a
// new request, so it must not skew the hit ratio.
func (sh *cacheShard) peek(k Key) (blocks, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[k]; ok {
		sh.moveToFront(e)
		return e.val, true
	}
	return nil, false
}

// insert adds the entry at the front and evicts from the tail until the
// shard fits its budget again. An entry larger than the whole budget is
// still admitted (and everything else evicted): repeated requests for one
// oversized frame must hit, not thrash.
func (sh *cacheShard) insert(k Key, v blocks, cost int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[k]; ok {
		// Lost a race with another insert of the same key; keep the
		// resident entry.
		sh.moveToFront(e)
		return
	}
	e := &cacheEntry{key: k, val: v, cost: cost}
	sh.m[k] = e
	sh.pushFront(e)
	sh.bytes += cost
	for sh.bytes > sh.budget && sh.root.prev != e {
		old := sh.root.prev
		sh.unlink(old)
		delete(sh.m, old.key)
		sh.bytes -= old.cost
		sh.evictions++
	}
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = &sh.root
	e.next = sh.root.next
	e.prev.next = e
	e.next.prev = e
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveToFront(e *cacheEntry) {
	sh.unlink(e)
	sh.pushFront(e)
}

// batchCost prices a decoded batch for the byte budget: the data slab
// (sz's own costing of a decoded frame) plus per-block header overhead.
func batchCost(v blocks) int64 {
	if len(v) == 0 {
		return 0
	}
	const hdr = 64 // Grid3 header + pointer, amortized
	info := sz.BatchInfo{BlockDims: v[0].Dim, Blocks: len(v)}
	return info.DecodedBytes(amr.ValueBytes) + int64(len(v))*hdr
}

// String implements fmt.Stringer for log lines.
func (k Key) String() string {
	return fmt.Sprintf("%s/m%d/l%d/b%d", k.Archive, k.Member, k.Level, k.Batch)
}
