// Package fft implements radix-2 complex FFTs in one and three dimensions.
// It backs two substrates of the TAC reproduction: the Gaussian-random-field
// generator in internal/sim (synthesizing Nyx-like cosmology fields) and the
// matter power spectrum P(k) in internal/analysis (paper metric 5).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// plan caches twiddle factors for a given transform size.
type plan struct {
	n    int
	w    []complex128 // w[k] = exp(-2πik/n), k < n/2
	winv []complex128 // conjugates, for the inverse transform
}

func newPlan(n int) *plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: size %d is not a power of two", n))
	}
	p := &plan{n: n, w: make([]complex128, n/2), winv: make([]complex128, n/2)}
	for k := 0; k < n/2; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(c, s)
		p.winv[k] = complex(c, -s)
	}
	return p
}

// transform runs an in-place iterative Cooley–Tukey FFT on x.
func (p *plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d != plan size %d", len(x), n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.w
	if inverse {
		tw = p.winv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				u := x[i]
				v := x[i+half] * tw[k]
				x[i] = u + v
				x[i+half] = u - v
				k += step
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// Forward computes the in-place forward DFT of x (len must be a power of 2).
func Forward(x []complex128) { newPlan(len(x)).transform(x, false) }

// Inverse computes the in-place inverse DFT of x, normalized by 1/n.
func Inverse(x []complex128) { newPlan(len(x)).transform(x, true) }

// Grid3C is a cube of complex values used for 3D transforms, stored with z
// varying fastest, matching grid.Grid3 layout.
type Grid3C struct {
	N    int
	Data []complex128
}

// NewGrid3C allocates a zeroed n×n×n complex cube (n a power of two).
func NewGrid3C(n int) *Grid3C {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: grid size %d is not a power of two", n))
	}
	return &Grid3C{N: n, Data: make([]complex128, n*n*n)}
}

// At returns the value at (x,y,z).
func (g *Grid3C) At(x, y, z int) complex128 { return g.Data[(x*g.N+y)*g.N+z] }

// Set stores v at (x,y,z).
func (g *Grid3C) Set(x, y, z int, v complex128) { g.Data[(x*g.N+y)*g.N+z] = v }

// Forward3 computes the in-place 3D forward DFT of g by transforming along
// z, then y, then x.
func Forward3(g *Grid3C) { transform3(g, false) }

// Inverse3 computes the in-place 3D inverse DFT (normalized by 1/n³).
func Inverse3(g *Grid3C) { transform3(g, true) }

func transform3(g *Grid3C, inverse bool) {
	n := g.N
	p := newPlan(n)
	// Along z: contiguous rows.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			base := (x*n + y) * n
			p.transform(g.Data[base:base+n], inverse)
		}
	}
	// Along y and x: gather strided lines into a scratch buffer.
	line := make([]complex128, n)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				line[y] = g.Data[(x*n+y)*n+z]
			}
			p.transform(line, inverse)
			for y := 0; y < n; y++ {
				g.Data[(x*n+y)*n+z] = line[y]
			}
		}
	}
	for y := 0; y < n; y++ {
		for z := 0; z < n; z++ {
			for x := 0; x < n; x++ {
				line[x] = g.Data[(x*n+y)*n+z]
			}
			p.transform(line, inverse)
			for x := 0; x < n; x++ {
				g.Data[(x*n+y)*n+z] = line[x]
			}
		}
	}
}

// FreqIndex maps a DFT bin index to its signed frequency in [-n/2, n/2).
func FreqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}
