package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestForwardInverse1D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 64, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		Forward(x)
		Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: index %d: got %v, want %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestKnownDFT(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a pure tone lands in one bin.
	n := 16
	y := make([]complex128, n)
	for i := range y {
		angle := 2 * math.Pi * 3 * float64(i) / float64(n)
		y[i] = cmplx.Exp(complex(0, angle))
	}
	Forward(y)
	for i, v := range y {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("tone bin %d = %v, want magnitude %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestParseval1D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	Forward(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-6*timeE {
		t.Fatalf("Parseval violated: time %v vs freq/n %v", timeE, freqE/float64(n))
	}
}

func TestForwardInverse3D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewGrid3C(8)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
	}
	Forward3(g)
	Inverse3(g)
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("index %d: got %v, want %v", i, g.Data[i], orig[i])
		}
	}
}

func TestForward3Separability(t *testing.T) {
	// A delta at the origin transforms to all-ones.
	g := NewGrid3C(4)
	g.Set(0, 0, 0, 1)
	Forward3(g)
	for i, v := range g.Data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("index %d = %v, want 1", i, v)
		}
	}
}

func TestFreqIndex(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {4, 8, 4}, {5, 8, -3}, {7, 8, -1},
	}
	for _, c := range cases {
		if got := FreqIndex(c.i, c.n); got != c.want {
			t.Fatalf("FreqIndex(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1000} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) = true", n)
		}
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward on non-pow2 length should panic")
		}
	}()
	Forward(make([]complex128, 3))
}
