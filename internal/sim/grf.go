// Package sim synthesizes Nyx-like cosmology AMR snapshots. It substitutes
// for the proprietary LANL Nyx runs the paper evaluates on (Table 1): a
// Gaussian random field with a power-law spectrum is transformed into a
// heavy-tailed log-normal density field, and a value-threshold refinement
// criterion (refine a block when its maximum exceeds a threshold, as in the
// paper's Sec. 2.2) carves it into tree-structured AMR levels whose
// per-level densities match the paper's datasets.
package sim

import (
	"math"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/grid"
)

// GRFOptions parameterizes a Gaussian random field.
type GRFOptions struct {
	// N is the cube edge (power of two).
	N int
	// SpectralIndex is the exponent of the power spectrum P(k) ∝ k^Index ·
	// exp(−(k/Cutoff)²). Cosmological matter at these scales has a falling
	// spectrum; −2.5 gives convincingly clumpy fields.
	SpectralIndex float64
	// Cutoff is the Gaussian damping scale in frequency units; 0 means
	// N/4.
	Cutoff float64
	// Seed makes generation deterministic.
	Seed int64
}

// GaussianRandomField returns a zero-mean, unit-variance real field with
// the requested spectrum: white noise is generated in real space,
// transformed, shaped by √P(k), and transformed back. Filtering white
// noise guarantees the result is real without Hermitian bookkeeping.
func GaussianRandomField(opts GRFOptions) *grid.Grid3[float64] {
	n := opts.N
	if !fft.IsPow2(n) {
		panic("sim: GRF size must be a power of two")
	}
	cutoff := opts.Cutoff
	if cutoff == 0 {
		cutoff = float64(n) / 12
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := fft.NewGrid3C(n)
	for i := range c.Data {
		c.Data[i] = complex(rng.NormFloat64(), 0)
	}
	fft.Forward3(c)
	for x := 0; x < n; x++ {
		fx := float64(fft.FreqIndex(x, n))
		for y := 0; y < n; y++ {
			fy := float64(fft.FreqIndex(y, n))
			base := (x*n + y) * n
			for z := 0; z < n; z++ {
				fz := float64(fft.FreqIndex(z, n))
				k2 := fx*fx + fy*fy + fz*fz
				if k2 == 0 {
					c.Data[base+z] = 0 // remove the mean mode
					continue
				}
				k := math.Sqrt(k2)
				amp := math.Pow(k, opts.SpectralIndex/2) * math.Exp(-k2/(2*cutoff*cutoff))
				c.Data[base+z] *= complex(amp, 0)
			}
		}
	}
	fft.Inverse3(c)
	out := grid.NewCube[float64](n)
	for i, v := range c.Data {
		out.Data[i] = real(v)
	}
	normalize(out)
	return out
}

// normalize rescales the field in place to zero mean and unit variance.
func normalize(g *grid.Grid3[float64]) {
	var sum, sum2 float64
	for _, v := range g.Data {
		sum += v
	}
	mean := sum / float64(len(g.Data))
	for _, v := range g.Data {
		d := v - mean
		sum2 += d * d
	}
	std := math.Sqrt(sum2 / float64(len(g.Data)))
	if std == 0 {
		std = 1
	}
	inv := 1 / std
	for i, v := range g.Data {
		g.Data[i] = (v - mean) * inv
	}
}
