package sim

import "fmt"

// Catalog returns the seven Table-1 dataset specs, scaled by the given
// divisor relative to the paper's resolutions. scale=4 (the default used by
// the experiment harness) maps the paper's Run1 512³/256³ to 128³/64³ and
// Run2's finest 1024³ to 256³, keeping every per-level density of Table 1.
// scale must be a power of two between 1 and 16.
//
// Unit blocks are 8³ for Run1 and 4³ for Run2 at scale 4, preserving the
// paper's block-to-grid edge ratio (16³ blocks on 512³ grids = 1:32) as
// closely as coarse Run2 levels allow.
func Catalog(scale int) ([]Spec, error) {
	switch scale {
	case 1, 2, 4, 8, 16:
	default:
		return nil, fmt.Errorf("sim: scale must be a power of two in [1,16], got %d", scale)
	}
	run1N := 512 / scale
	run2T2 := 256 / scale
	run2T3 := 512 / scale
	run2T4 := 1024 / scale
	ub1 := max(32/scale, 2)
	ub2 := max(16/scale, 2)
	specs := []Spec{
		{Name: "Run1_Z10", FinestN: run1N, Levels: 2, UnitBlock: ub1, Seed: 1001,
			LeafFractions: []float64{0.23, 0.77}},
		{Name: "Run1_Z5", FinestN: run1N, Levels: 2, UnitBlock: ub1, Seed: 1001,
			LeafFractions: []float64{0.58, 0.42}},
		{Name: "Run1_Z3", FinestN: run1N, Levels: 2, UnitBlock: ub1, Seed: 1001,
			LeafFractions: []float64{0.64, 0.36}},
		{Name: "Run1_Z2", FinestN: run1N, Levels: 2, UnitBlock: ub1, Seed: 1001,
			LeafFractions: []float64{0.63, 0.37}},
		{Name: "Run2_T2", FinestN: run2T2, Levels: 2, UnitBlock: ub2, Seed: 2002,
			LeafFractions: []float64{0.002, 0.998}},
		{Name: "Run2_T3", FinestN: run2T3, Levels: 3, UnitBlock: ub2, Seed: 2002,
			LeafFractions: []float64{0.0002, 0.0056, 0.9942}},
		{Name: "Run2_T4", FinestN: run2T4, Levels: 4, UnitBlock: ub2, Seed: 2002,
			LeafFractions: []float64{0.00003, 0.0002, 0.022, 0.9777}},
	}
	for i := range specs {
		if err := specs[i].withDefaults().validate(); err != nil {
			return nil, fmt.Errorf("sim: catalog spec %s: %w", specs[i].Name, err)
		}
	}
	return specs, nil
}

// SpecByName returns the catalog spec with the given name at the given
// scale.
func SpecByName(name string, scale int) (Spec, error) {
	specs, err := Catalog(scale)
	if err != nil {
		return Spec{}, err
	}
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("sim: no dataset %q in catalog", name)
}
