package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/amr"
	"repro/internal/grid"
)

// Spec describes one synthetic AMR dataset to generate.
type Spec struct {
	// Name identifies the dataset (e.g. "Run1_Z10").
	Name string
	// FinestN is the finest-level cube edge in cells (a power of two).
	FinestN int
	// Levels is the number of refinement levels (≥ 1).
	Levels int
	// Ratio is the refinement ratio between adjacent levels.
	Ratio int
	// UnitBlock is the refinement granularity in cells per level.
	UnitBlock int
	// LeafFractions is the target volume fraction of the domain stored at
	// each level, fine to coarse — exactly the "Density of Each Level"
	// column of the paper's Table 1. Must sum to ~1.
	LeafFractions []float64
	// Seed drives all randomness; the same seed with different
	// LeafFractions models successive timesteps of one run (refinement
	// deepens as structure grows, Sec. 4.1).
	Seed int64
	// SpectralIndex of the underlying GRF; 0 means −3.2.
	SpectralIndex float64
	// CutoffDiv sets the GRF damping scale to FinestN/CutoffDiv; 0 means
	// 12. Larger values give smoother fields (larger features).
	CutoffDiv float64
	// DriverCorr is the correlation between the refinement-driver field
	// and the baryon-density field, in [0,1]; 0 means 0.8. Real AMR
	// refinement tracks the density imperfectly (lagged criteria,
	// block-granular decisions), which keeps part of the value range on
	// the coarse levels — the regime GSP targets.
	DriverCorr float64
}

func (s Spec) withDefaults() Spec {
	if s.SpectralIndex == 0 {
		s.SpectralIndex = -3.2
	}
	if s.DriverCorr == 0 {
		s.DriverCorr = 0.8
	}
	if s.Ratio == 0 {
		s.Ratio = 2
	}
	if s.UnitBlock == 0 {
		s.UnitBlock = 8
	}
	return s
}

func (s Spec) validate() error {
	if s.FinestN <= 0 || s.FinestN&(s.FinestN-1) != 0 {
		return fmt.Errorf("sim: FinestN %d must be a power of two", s.FinestN)
	}
	if s.Levels < 1 {
		return fmt.Errorf("sim: Levels must be ≥ 1, got %d", s.Levels)
	}
	if len(s.LeafFractions) != s.Levels {
		return fmt.Errorf("sim: %d leaf fractions for %d levels", len(s.LeafFractions), s.Levels)
	}
	coarsestCells := s.FinestN
	for i := 1; i < s.Levels; i++ {
		coarsestCells /= s.Ratio
	}
	if coarsestCells%s.UnitBlock != 0 {
		return fmt.Errorf("sim: coarsest level (%d cells) not divisible by unit block %d", coarsestCells, s.UnitBlock)
	}
	var sum float64
	for _, f := range s.LeafFractions {
		if f < 0 {
			return fmt.Errorf("sim: negative leaf fraction %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 0.05 {
		return fmt.Errorf("sim: leaf fractions sum to %v, want ≈1", sum)
	}
	return nil
}

// Generate builds the AMR dataset for one field of the spec. All fields of
// a spec share the same refinement structure (driven by the baryon-density
// GRF, as Nyx refines on density), so compressing different fields of one
// snapshot exercises the same masks.
func Generate(spec Spec, field Field) (*amr.Dataset, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	// Refinement driver: the baryon-density structure field.
	cutoff := 0.0
	if spec.CutoffDiv > 0 {
		cutoff = float64(spec.FinestN) / spec.CutoffDiv
	}
	driver := GaussianRandomField(GRFOptions{
		N: spec.FinestN, SpectralIndex: spec.SpectralIndex, Cutoff: cutoff, Seed: spec.Seed,
	})
	var raw *grid.Grid3[float64]
	if off := fieldSeedOffset(field); off == 0 {
		// The density field correlates with, but does not equal, the
		// refinement driver: mix in an independent component so some
		// high-value structure remains on coarse levels.
		rho := spec.DriverCorr
		if rho > 1 {
			rho = 1
		}
		indep := GaussianRandomField(GRFOptions{
			N: spec.FinestN, SpectralIndex: spec.SpectralIndex, Cutoff: cutoff, Seed: spec.Seed + 101,
		})
		raw = grid.New[float64](driver.Dim)
		w := math.Sqrt(1 - rho*rho)
		for i := range raw.Data {
			raw.Data[i] = rho*driver.Data[i] + w*indep.Data[i]
		}
	} else {
		raw = GaussianRandomField(GRFOptions{
			N: spec.FinestN, SpectralIndex: spec.SpectralIndex, Cutoff: cutoff, Seed: spec.Seed + off,
		})
	}
	phys := synthesize(field, raw)

	masks := buildMasks(spec, driver)
	ds := &amr.Dataset{Name: spec.Name, Field: string(field), Ratio: spec.Ratio}
	fine64 := phys
	for li := 0; li < spec.Levels; li++ {
		if li > 0 {
			fine64 = fine64.Downsample(spec.Ratio)
		}
		l := amr.NewLevel(fine64.Dim, spec.UnitBlock)
		l.Mask.CopyFrom(masks[li])
		// Copy values into occupied unit blocks only; unoccupied blocks
		// stay zero, as in the stored AMR representation.
		md := l.Mask.Dim
		for bx := 0; bx < md.X; bx++ {
			for by := 0; by < md.Y; by++ {
				for bz := 0; bz < md.Z; bz++ {
					if !l.Mask.At(bx, by, bz) {
						continue
					}
					r := l.BlockRegion(bx, by, bz)
					for x := r.X0; x < r.X1; x++ {
						for y := r.Y0; y < r.Y1; y++ {
							si := fine64.Dim.Index(x, y, r.Z0)
							di := l.Grid.Dim.Index(x, y, r.Z0)
							for z := 0; z < r.Z1-r.Z0; z++ {
								l.Grid.Data[di+z] = amr.Value(fine64.Data[si+z])
							}
						}
					}
				}
			}
		}
		ds.Levels = append(ds.Levels, l)
	}
	return ds, nil
}

// MustGenerate is Generate, panicking on error; intended for the fixed
// catalog specs which are validated by tests.
func MustGenerate(spec Spec, field Field) *amr.Dataset {
	ds, err := Generate(spec, field)
	if err != nil {
		panic(err)
	}
	return ds
}

// buildMasks carves the domain into per-level leaf masks. Working from the
// coarsest level down, each level refines the blocks with the highest
// driver-field maxima (the paper's "refine a block when its maximum value
// is larger than a threshold"), choosing the count so that the volume
// passed to finer levels matches the target leaf fractions.
func buildMasks(spec Spec, driver *grid.Grid3[float64]) []*grid.Mask {
	L := spec.Levels
	r := spec.Ratio
	ub := spec.UnitBlock

	// blockMax[li] holds, at level li's block granularity, the maximum of
	// the driver field over each block's physical region. Built as a
	// max-pool pyramid from the finest blocks up.
	blockMax := make([]*grid.Grid3[float64], L)
	fineBlocks := driver.Dim.Div(ub)
	bm := grid.New[float64](fineBlocks)
	for bx := 0; bx < fineBlocks.X; bx++ {
		for by := 0; by < fineBlocks.Y; by++ {
			for bz := 0; bz < fineBlocks.Z; bz++ {
				reg := grid.Region{
					X0: bx * ub, Y0: by * ub, Z0: bz * ub,
					X1: (bx + 1) * ub, Y1: (by + 1) * ub, Z1: (bz + 1) * ub,
				}
				bm.Set(bx, by, bz, regionMax(driver, reg))
			}
		}
	}
	blockMax[0] = bm
	for li := 1; li < L; li++ {
		prev := blockMax[li-1]
		cd := prev.Dim.Div(r)
		cur := grid.New[float64](cd)
		for bx := 0; bx < cd.X; bx++ {
			for by := 0; by < cd.Y; by++ {
				for bz := 0; bz < cd.Z; bz++ {
					m := math.Inf(-1)
					for dx := 0; dx < r; dx++ {
						for dy := 0; dy < r; dy++ {
							for dz := 0; dz < r; dz++ {
								if v := prev.At(bx*r+dx, by*r+dy, bz*r+dz); v > m {
									m = v
								}
							}
						}
					}
					cur.Set(bx, by, bz, m)
				}
			}
		}
		blockMax[li] = cur
	}

	masks := make([]*grid.Mask, L)
	for li := range masks {
		masks[li] = grid.NewMask(blockMax[li].Dim)
	}

	// existing marks which blocks of the current level are covered by it
	// (i.e. not captured by a coarser leaf). The coarsest level covers
	// everything.
	existing := make([]bool, blockMax[L-1].Dim.Count())
	for i := range existing {
		existing[i] = true
	}
	for li := L - 1; li >= 1; li-- {
		bd := blockMax[li].Dim
		// Volume (domain fraction) of one block at this level.
		bvf := 1 / float64(bd.Count())
		var sumFiner float64
		for j := 0; j < li; j++ {
			sumFiner += spec.LeafFractions[j]
		}
		refineCount := int(math.Round(sumFiner / bvf))
		if sumFiner > 0 && refineCount == 0 {
			refineCount = 1
		}
		// Rank existing blocks by driver maximum, refine the top ones.
		type cand struct {
			idx   int
			score float64
		}
		var cands []cand
		for i, ex := range existing {
			if ex {
				cands = append(cands, cand{i, blockMax[li].Data[i]})
			}
		}
		if refineCount > len(cands) {
			refineCount = len(cands)
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			return cands[a].idx < cands[b].idx
		})
		refined := make(map[int]bool, refineCount)
		for _, c := range cands[:refineCount] {
			refined[c.idx] = true
		}
		for _, c := range cands[refineCount:] {
			masks[li].SetIndex(c.idx, true) // leaf at this level
		}
		// Children of refined blocks exist at the next finer level.
		fd := blockMax[li-1].Dim
		nextExisting := make([]bool, fd.Count())
		for i := range refined {
			bx, by, bz := bd.Coords(i)
			for dx := 0; dx < r; dx++ {
				for dy := 0; dy < r; dy++ {
					for dz := 0; dz < r; dz++ {
						nextExisting[fd.Index(bx*r+dx, by*r+dy, bz*r+dz)] = true
					}
				}
			}
		}
		existing = nextExisting
	}
	// Everything still existing at the finest level is a leaf there.
	for i, ex := range existing {
		if ex {
			masks[0].SetIndex(i, true)
		}
	}
	return masks
}

func regionMax(g *grid.Grid3[float64], r grid.Region) float64 {
	m := math.Inf(-1)
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := g.Dim.Index(x, y, r.Z0)
			for _, v := range g.Data[base : base+(r.Z1-r.Z0)] {
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}
