package sim

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// Field names the physical quantities a Nyx snapshot carries (Sec. 4.1 of
// the paper: baryon density, dark matter density, temperature, and the
// three velocity components).
type Field string

// The six Nyx fields.
const (
	BaryonDensity     Field = "baryon_density"
	DarkMatterDensity Field = "dark_matter_density"
	Temperature       Field = "temperature"
	VelocityX         Field = "velocity_x"
	VelocityY         Field = "velocity_y"
	VelocityZ         Field = "velocity_z"
)

// Fields lists all supported fields.
func Fields() []Field {
	return []Field{BaryonDensity, DarkMatterDensity, Temperature, VelocityX, VelocityY, VelocityZ}
}

// fieldSeedOffset decorrelates the per-field random streams while keeping a
// dataset's fields generated from related large-scale structure.
func fieldSeedOffset(f Field) int64 {
	switch f {
	case BaryonDensity:
		return 0
	case DarkMatterDensity:
		return 0 // same structure as baryons, different transform
	case Temperature:
		return 1
	case VelocityX:
		return 2
	case VelocityY:
		return 3
	case VelocityZ:
		return 4
	default:
		panic(fmt.Sprintf("sim: unknown field %q", f))
	}
}

// synthesize converts a unit-variance GRF into the physical field. The
// transforms are chosen so value ranges and tail behaviour resemble Nyx:
// densities are log-normal with means near 10¹¹ (Nyx baryon density is
// quoted in M☉/Mpc³-scale units, which is why the paper's absolute error
// bounds are 10⁸–10¹⁰), temperature is a milder log-normal around 10⁴ K,
// and velocities are Gaussian at ±10⁷ cm/s scale.
func synthesize(f Field, g *grid.Grid3[float64]) *grid.Grid3[float64] {
	out := grid.New[float64](g.Dim)
	switch f {
	case BaryonDensity:
		const mean, sigma = 1e11, 1.9
		for i, v := range g.Data {
			out.Data[i] = mean * math.Exp(sigma*v-sigma*sigma/2)
		}
	case DarkMatterDensity:
		const mean, sigma = 5e11, 2.1
		for i, v := range g.Data {
			out.Data[i] = mean * math.Exp(sigma*v-sigma*sigma/2)
		}
	case Temperature:
		const mean, sigma = 1e4, 0.8
		for i, v := range g.Data {
			out.Data[i] = mean * math.Exp(sigma*v-sigma*sigma/2)
		}
	case VelocityX, VelocityY, VelocityZ:
		const scale = 1e7
		for i, v := range g.Data {
			out.Data[i] = scale * v
		}
	default:
		panic(fmt.Sprintf("sim: unknown field %q", f))
	}
	return out
}
