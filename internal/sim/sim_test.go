package sim

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestGRFStatistics(t *testing.T) {
	g := GaussianRandomField(GRFOptions{N: 32, SpectralIndex: -2.5, Seed: 1})
	var sum, sum2 float64
	for _, v := range g.Data {
		sum += v
		sum2 += v * v
	}
	n := float64(len(g.Data))
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 1e-10 {
		t.Fatalf("GRF mean %v, want 0", mean)
	}
	if math.Abs(variance-1) > 1e-6 {
		t.Fatalf("GRF variance %v, want 1", variance)
	}
}

func TestGRFDeterministic(t *testing.T) {
	a := GaussianRandomField(GRFOptions{N: 16, SpectralIndex: -2.5, Seed: 9})
	b := GaussianRandomField(GRFOptions{N: 16, SpectralIndex: -2.5, Seed: 9})
	if grid.MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed produced different fields")
	}
	c := GaussianRandomField(GRFOptions{N: 16, SpectralIndex: -2.5, Seed: 10})
	if grid.MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestGRFSmoothness(t *testing.T) {
	// A falling spectrum must be smoother than white noise: neighboring
	// cells should correlate strongly.
	g := GaussianRandomField(GRFOptions{N: 32, SpectralIndex: -3, Seed: 2})
	var corr float64
	n := 0
	for x := 0; x < 31; x++ {
		for y := 0; y < 32; y++ {
			for z := 0; z < 32; z++ {
				corr += g.At(x, y, z) * g.At(x+1, y, z)
				n++
			}
		}
	}
	corr /= float64(n)
	if corr < 0.5 {
		t.Fatalf("lag-1 correlation %v; field not smooth", corr)
	}
}

func TestGenerateValidDataset(t *testing.T) {
	spec := Spec{
		Name: "test", FinestN: 32, Levels: 2, UnitBlock: 4, Seed: 3,
		LeafFractions: []float64{0.25, 0.75},
	}
	ds, err := Generate(spec, BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	dens := ds.Densities()
	if math.Abs(dens[0]-0.25) > 0.05 {
		t.Fatalf("fine density %v, want ≈0.25", dens[0])
	}
	if math.Abs(dens[1]-0.75) > 0.05 {
		t.Fatalf("coarse density %v, want ≈0.75", dens[1])
	}
}

func TestGenerateMultiLevel(t *testing.T) {
	spec := Spec{
		Name: "test3", FinestN: 64, Levels: 3, UnitBlock: 4, Seed: 4,
		LeafFractions: []float64{0.01, 0.09, 0.90},
	}
	ds, err := Generate(spec, BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	dens := ds.Densities()
	if math.Abs(dens[2]-0.90) > 0.03 {
		t.Fatalf("coarsest density %v, want ≈0.90", dens[2])
	}
	if dens[0] <= 0 || dens[0] > 0.05 {
		t.Fatalf("finest density %v, want small nonzero", dens[0])
	}
}

func TestGenerateSingleLevel(t *testing.T) {
	spec := Spec{
		Name: "uni", FinestN: 16, Levels: 1, UnitBlock: 4, Seed: 5,
		LeafFractions: []float64{1},
	}
	ds, err := Generate(spec, Temperature)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := ds.Levels[0].Density(); d != 1 {
		t.Fatalf("single level density %v, want 1", d)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", FinestN: 30, Levels: 1, UnitBlock: 2, LeafFractions: []float64{1}},          // not pow2
		{Name: "x", FinestN: 32, Levels: 2, UnitBlock: 2, LeafFractions: []float64{1}},          // wrong frac count
		{Name: "x", FinestN: 32, Levels: 1, UnitBlock: 2, LeafFractions: []float64{0.2}},        // sums to 0.2
		{Name: "x", FinestN: 32, Levels: 4, UnitBlock: 8, LeafFractions: []float64{0, 0, 0, 1}}, // coarsest 4 cells < ub
	}
	for i, s := range bad {
		if _, err := Generate(s, BaryonDensity); err == nil {
			t.Fatalf("spec %d should be rejected", i)
		}
	}
}

func TestFieldsShareRefinement(t *testing.T) {
	spec := Spec{
		Name: "t", FinestN: 32, Levels: 2, UnitBlock: 4, Seed: 6,
		LeafFractions: []float64{0.3, 0.7},
	}
	a, err := Generate(spec, BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, VelocityX)
	if err != nil {
		t.Fatal(err)
	}
	for li := range a.Levels {
		am, bm := a.Levels[li].Mask, b.Levels[li].Mask
		for i := 0; i < am.Len(); i++ {
			if am.AtIndex(i) != bm.AtIndex(i) {
				t.Fatalf("level %d masks differ between fields", li)
			}
		}
	}
}

func TestBaryonDensityHeavyTail(t *testing.T) {
	spec := Spec{
		Name: "t", FinestN: 32, Levels: 1, UnitBlock: 4, Seed: 7,
		LeafFractions: []float64{1},
	}
	ds, err := Generate(spec, BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Levels[0].Grid
	lo, hi := g.MinMax()
	if lo <= 0 {
		t.Fatalf("density must be positive, min %v", lo)
	}
	mean := g.Mean()
	if float64(hi) < 10*mean {
		t.Fatalf("max %v vs mean %v: tail not heavy enough for halo analysis", hi, mean)
	}
}

func TestCatalogSpecsValid(t *testing.T) {
	for _, scale := range []int{4, 8, 16} {
		specs, err := Catalog(scale)
		if err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		if len(specs) != 7 {
			t.Fatalf("scale %d: %d specs, want 7", scale, len(specs))
		}
	}
	if _, err := Catalog(3); err == nil {
		t.Fatal("scale 3 should be rejected")
	}
}

func TestCatalogDensitiesMatchTable1(t *testing.T) {
	// At scale 16 (fast), the generated densities should track Table 1.
	specs, err := Catalog(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if spec.Name == "Run2_T4" || spec.Name == "Run2_T3" {
			continue // too few blocks at scale 16 for tight density checks
		}
		ds, err := Generate(spec, BaryonDensity)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		dens := ds.Densities()
		for li, want := range spec.LeafFractions {
			tol := 0.1
			if got := dens[li]; math.Abs(got-want) > tol && math.Abs(got-want) > 0.5*want {
				t.Errorf("%s level %d density %.4f, want ≈%.4f", spec.Name, li, got, want)
			}
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Run1_Z10", 8)
	if err != nil || s.Name != "Run1_Z10" {
		t.Fatalf("SpecByName: %+v, %v", s, err)
	}
	if _, err := SpecByName("nope", 8); err == nil {
		t.Fatal("unknown name should error")
	}
}
