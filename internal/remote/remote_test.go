package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// rangeServer serves blob with net/http's standard Range handling and a
// strong ETag, like a well-behaved origin.
func rangeServer(t *testing.T, blob []byte, etag string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if etag != "" {
			w.Header().Set("ETag", etag)
		}
		http.ServeContent(w, req, "blob.bin", time.Time{}, bytes.NewReader(blob))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func testBlob(n int) []byte {
	blob := make([]byte, n)
	rng := rand.New(rand.NewSource(42))
	rng.Read(blob)
	return blob
}

func TestOpenAndReadAt(t *testing.T) {
	blob := testBlob(300_000)
	ts := rangeServer(t, blob, `"v1"`)
	r, err := Open(ts.URL, Config{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(blob)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(blob))
	}
	if r.ETag() != `"v1"` {
		t.Fatalf("ETag = %q, want %q", r.ETag(), `"v1"`)
	}
	if r.Label() != ts.URL {
		t.Fatalf("Label = %q", r.Label())
	}
	// Reads of every flavour: inside one segment, spanning segments,
	// at EOF, past EOF.
	cases := []struct{ off, n int }{
		{0, 100}, {777, 3000}, {16<<10 - 5, 10}, {100_000, 90_000},
		{len(blob) - 10, 10},
	}
	for _, c := range cases {
		got := make([]byte, c.n)
		n, err := r.ReadAt(got, int64(c.off))
		if err != nil || n != c.n {
			t.Fatalf("ReadAt(%d, %d) = %d, %v", c.off, c.n, n, err)
		}
		if !bytes.Equal(got, blob[c.off:c.off+c.n]) {
			t.Fatalf("ReadAt(%d, %d): bytes differ", c.off, c.n)
		}
	}
	// Truncated tail read: n < len(p) with io.EOF.
	got := make([]byte, 100)
	n, err := r.ReadAt(got, int64(len(blob)-40))
	if n != 40 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d, %v; want 40, io.EOF", n, err)
	}
	if !bytes.Equal(got[:40], blob[len(blob)-40:]) {
		t.Fatal("tail bytes differ")
	}
	if _, err := r.ReadAt(got, int64(len(blob))); err != io.EOF {
		t.Fatalf("past-EOF ReadAt err = %v, want io.EOF", err)
	}
	st := r.Stats()
	if st.Fills > st.Misses {
		t.Fatalf("fills %d > misses %d", st.Fills, st.Misses)
	}
	if st.Requests == 0 || st.BytesFetched == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	blob := testBlob(64 << 10)
	ts := rangeServer(t, blob, `"v1"`)
	r, err := Open(ts.URL, Config{SegmentBytes: 8 << 10, CacheBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 8<<10)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	before := r.Stats()
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("second read hits = %d, want %d", after.Hits, before.Hits+1)
	}
	// Sweep the whole blob (4x the budget), then re-read the start: the
	// budget must have evicted it (a miss), and resident bytes must have
	// stayed within budget.
	for off := int64(0); off < int64(len(blob)); off += 8 << 10 {
		if _, err := r.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	resident := r.resident
	r.mu.Unlock()
	if resident > 16<<10 {
		t.Fatalf("resident %d bytes exceeds 16KiB budget", resident)
	}
	pre := r.Stats().Misses
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Misses != pre+1 {
		t.Fatal("expected evicted segment to miss")
	}
}

func TestSingleflightCollapsesFills(t *testing.T) {
	blob := testBlob(32 << 10)
	var reqs sync.Map
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reqs.Store(req.Header.Get("Range"), true)
		time.Sleep(20 * time.Millisecond) // widen the window for concurrent misses
		w.Header().Set("ETag", `"v1"`)
		http.ServeContent(w, req, "blob.bin", time.Time{}, bytes.NewReader(blob))
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 1024)
			if _, err := r.ReadAt(buf, int64(i*512)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := r.Stats()
	if st.Fills > st.Misses {
		t.Fatalf("fills %d > misses %d", st.Fills, st.Misses)
	}
	if st.Fills != 1 {
		t.Fatalf("16 concurrent reads of one segment did %d fills, want 1", st.Fills)
	}
}

func TestShortRangeResponse(t *testing.T) {
	blob := testBlob(64 << 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Range") == "bytes=0-0" {
			http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(blob))
			return
		}
		// Claim the full range but send half the bytes, then cut the
		// connection: a body shorter than the Content-Range promise.
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 0-%d/%d", 16<<10-1, len(blob)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(blob[:8<<10])
		w.(http.Flusher).Flush()
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4<<10)
	if _, err := r.ReadAt(buf, 0); err == nil {
		t.Fatal("short range body did not error")
	}
}

func TestWrongSpanRangeResponse(t *testing.T) {
	blob := testBlob(64 << 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Range") == "bytes=0-0" {
			http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(blob))
			return
		}
		// Answer a different (over-long) span than asked.
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 0-%d/%d", 32<<10-1, len(blob)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(blob[:32<<10])
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4<<10)
	if _, err := r.ReadAt(buf, 0); err == nil || !strings.Contains(err.Error(), "asked bytes") {
		t.Fatalf("wrong-span response: err = %v, want span mismatch", err)
	}
}

func TestOverlongRangeBody(t *testing.T) {
	blob := testBlob(64 << 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Range") == "bytes=0-0" {
			http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(blob))
			return
		}
		// Correct Content-Range, but more body bytes than it declares.
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 0-%d/%d", 16<<10-1, len(blob)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(blob[:24<<10])
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 4<<10)
	if _, err := r.ReadAt(buf, 0); err == nil || !strings.Contains(err.Error(), "over-long") {
		t.Fatalf("over-long body: err = %v, want over-long error", err)
	}
}

func TestFullResponseFallback(t *testing.T) {
	// A server that ignores Range entirely (200 + full body) must still
	// produce correct bytes, just without partial transfers.
	blob := testBlob(48 << 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("ETag", `"v1"`)
		w.Header().Set("Content-Length", fmt.Sprint(len(blob)))
		w.WriteHeader(http.StatusOK)
		w.Write(blob)
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(blob)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(blob))
	}
	got := make([]byte, 1000)
	if _, err := r.ReadAt(got, 40_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[40_000:41_000]) {
		t.Fatal("bytes differ via 200 fallback")
	}
}

func Test416(t *testing.T) {
	blob := testBlob(16 << 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Range") == "bytes=0-0" {
			http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(blob))
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", 4<<10))
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 1<<10)
	if _, err := r.ReadAt(buf, 8<<10); !errors.Is(err, ErrChanged) {
		t.Fatalf("416: err = %v, want ErrChanged", err)
	}
}

func TestConnectionDropMidBody(t *testing.T) {
	blob := testBlob(64 << 10)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Range") == "bytes=0-0" {
			http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(blob))
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 16384-%d/%d", 32<<10-1, len(blob)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(blob[16<<10 : 20<<10])
		w.(http.Flusher).Flush()
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close() // drop mid-body
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 1<<10)
	if _, err := r.ReadAt(buf, 16<<10); err == nil {
		t.Fatal("connection drop mid-body did not error")
	}
	// The error must not be cached: a healthy retry through the same
	// reader is impossible here (server always drops), but the inflight
	// map must be clean so the next attempt issues a fresh fetch.
	pre := r.Stats().Fills
	r.ReadAt(buf, 16<<10) //nolint:errcheck
	if r.Stats().Fills != pre+1 {
		t.Fatal("failed fill was cached; retry did not refetch")
	}
}

func TestETagChangeBetweenRanges(t *testing.T) {
	// Generation pinning: the resource is appended/replaced between two
	// range requests. The second read must fail ErrChanged — never serve
	// bytes from the new generation against the old footer.
	blobV1 := testBlob(64 << 10)
	blobV2 := append(append([]byte{}, blobV1...), testBlob(16<<10)...)
	var mu sync.Mutex
	blob, etag := blobV1, `"v1"`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		b, e := blob, etag
		mu.Unlock()
		w.Header().Set("ETag", e)
		http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(b))
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 1<<10)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	blob, etag = blobV2, `"v2"`
	mu.Unlock()
	if _, err := r.ReadAt(buf, 32<<10); !errors.Is(err, ErrChanged) {
		t.Fatalf("post-append read err = %v, want ErrChanged", err)
	}
	// Cached segments from the pinned generation stay readable — they
	// were fetched before the change and are still the old bytes.
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("cached segment after change: %v", err)
	}
	if !bytes.Equal(buf, blobV1[:1<<10]) {
		t.Fatal("cached segment returned torn bytes")
	}
}

func TestETagChangeVia200Fallback(t *testing.T) {
	// A range-less server that swaps content must also be caught: the 200
	// fallback path compares ETag and Content-Length.
	var mu sync.Mutex
	blob, etag := testBlob(32<<10), `"v1"`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		b, e := blob, etag
		mu.Unlock()
		w.Header().Set("ETag", e)
		w.Header().Set("Content-Length", fmt.Sprint(len(b)))
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	}))
	defer ts.Close()
	r, err := Open(ts.URL, Config{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mu.Lock()
	blob, etag = testBlob(32<<10), `"v2"`
	mu.Unlock()
	buf := make([]byte, 100)
	if _, err := r.ReadAt(buf, 0); !errors.Is(err, ErrChanged) {
		t.Fatalf("200-fallback after change: err = %v, want ErrChanged", err)
	}
}

func TestRetune(t *testing.T) {
	blob := testBlob(64 << 10)
	ts := rangeServer(t, blob, `"v1"`)
	r, err := Open(ts.URL, Config{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 1<<10)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	r.Retune(32 << 10)
	if r.SegmentBytes() != 32<<10 {
		t.Fatalf("SegmentBytes = %d after Retune", r.SegmentBytes())
	}
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blob[:1<<10]) {
		t.Fatal("bytes differ after Retune")
	}
	// Clamping.
	r.Retune(1)
	if r.SegmentBytes() != minSegmentBytes {
		t.Fatalf("Retune(1) -> %d, want %d", r.SegmentBytes(), minSegmentBytes)
	}
}

func TestParseContentRange(t *testing.T) {
	good := []struct {
		h                  string
		first, last, total int64
	}{
		{"bytes 0-0/100", 0, 0, 100},
		{"bytes 5-9/100", 5, 9, 100},
		{"bytes 5-9/*", 5, 9, -1},
	}
	for _, c := range good {
		f, l, tot, err := parseContentRange(c.h)
		if err != nil || f != c.first || l != c.last || tot != c.total {
			t.Fatalf("parseContentRange(%q) = %d,%d,%d,%v", c.h, f, l, tot, err)
		}
	}
	bad := []string{"", "bytes 5-9", "bytes x-9/100", "bytes 9-5/100", "bytes 5-100/100", "0-0/100"}
	for _, h := range bad {
		if _, _, _, err := parseContentRange(h); err == nil {
			t.Fatalf("parseContentRange(%q) accepted", h)
		}
	}
}

func TestIsURL(t *testing.T) {
	if !IsURL("http://x/a") || !IsURL("https://x/a") {
		t.Fatal("http(s) URLs not recognized")
	}
	if IsURL("/tmp/a.taca") || IsURL("httpx.taca") {
		t.Fatal("paths misclassified as URLs")
	}
}

func TestOpenErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.NotFound(w, req)
	}))
	defer ts.Close()
	if _, err := Open(ts.URL, Config{}); err == nil {
		t.Fatal("Open of 404 resource succeeded")
	}
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.ServeContent(w, req, "b", time.Time{}, bytes.NewReader(nil))
	}))
	defer empty.Close()
	if _, err := Open(empty.URL, Config{}); err == nil {
		t.Fatal("Open of empty resource succeeded")
	}
}
