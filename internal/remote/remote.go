// Package remote provides an io.ReaderAt backed by HTTP Range requests,
// so a TACA archive hosted on any range-capable server — another tacd's
// /a/{name}/raw endpoint, nginx, an S3-style blob store — can be opened,
// served, and repaired from without a local copy.
//
// The reader is built for the archive's access pattern: level and ROI
// extraction touch only a few percent of archive bytes (BENCH_engine.json
// records 2.7–3.1%), in frame-sized spans clustered by batch index. Reads
// therefore go through a byte-budgeted read-ahead cache of aligned
// segments; concurrent batch decodes that miss on the same segment are
// collapsed into one fetch by a singleflight gate, so a fleet of workers
// pulls each segment over the wire at most once.
//
// Generation pinning: Open records the resource's ETag, every request
// carries If-Range (strong validators only), and every response's ETag is
// compared against the pinned one. A mid-read append or rewrite upstream
// therefore fails the read with ErrChanged instead of splicing bytes from
// two generations together. The archive layer wraps any ReadAt failure on
// a frame as ErrCorrupt+ErrIO, so the serving tier's retry/backoff and
// failover machinery applies to network faults unchanged.
package remote

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrChanged reports that the remote resource's validator (ETag) no
// longer matches the one pinned at Open: the archive was appended to or
// replaced upstream. Callers should reopen to pick up the new generation.
var ErrChanged = errors.New("remote: resource changed upstream")

const (
	// DefaultSegmentBytes covers a handful of typical batch frames, so one
	// fill read-aheads the neighbours a level sweep touches next.
	DefaultSegmentBytes = 128 << 10
	// DefaultCacheBytes bounds resident segments per reader.
	DefaultCacheBytes = 32 << 20
	// DefaultTimeout bounds each individual range request.
	DefaultTimeout = 30 * time.Second

	minSegmentBytes = 4 << 10
	maxSegmentBytes = 4 << 20
)

// Config tunes a Reader. The zero value is usable.
type Config struct {
	// Client issues the requests. nil builds a pooled transport owned by
	// the Reader (closed by Close).
	Client *http.Client
	// Timeout bounds each range request, connect to last body byte.
	// 0 means DefaultTimeout; negative means no limit.
	Timeout time.Duration
	// SegmentBytes is the aligned fetch/cache unit. 0 means
	// DefaultSegmentBytes; values are clamped to [4 KiB, 4 MiB].
	SegmentBytes int
	// CacheBytes budgets resident segments. 0 means DefaultCacheBytes;
	// negative disables caching (every read fetches).
	CacheBytes int64
}

// Stats is a point-in-time counter snapshot of a Reader.
type Stats struct {
	Requests     int64 `json:"requests"`      // HTTP requests issued (incl. the Open probe)
	BytesFetched int64 `json:"bytes_fetched"` // payload bytes pulled over the wire
	BytesRead    int64 `json:"bytes_read"`    // logical bytes served to callers
	Hits         int64 `json:"hits"`          // segment lookups served from cache
	Misses       int64 `json:"misses"`        // segment lookups that had to wait for a fill
	Fills        int64 `json:"fills"`         // actual segment fills (≤ Misses: singleflight)
}

// HitRatio is the fraction of segment lookups served from cache.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Reader is an io.ReaderAt over one HTTP resource. It is safe for
// concurrent use; the archive decode fan-out reads through one Reader.
type Reader struct {
	url      string
	client   *http.Client
	ownsConn bool
	timeout  time.Duration
	size     int64
	etag     string // pinned validator, "" if the server sent none
	strong   bool   // etag is strong: eligible for If-Range

	budget   int64
	segBytes int64

	mu       sync.Mutex
	segs     map[int64]*list.Element // segment start -> lru element
	lru      list.List               // of *segment, front = most recent
	resident int64                   // cached bytes
	inflight map[int64]*fill

	requests, fetched, read atomic.Int64
	hits, misses, fills     atomic.Int64
}

type segment struct {
	start int64
	data  []byte
}

type fill struct {
	done chan struct{}
	data []byte
	err  error
}

// Open probes url with a 1-byte range request to learn the resource
// size and pin its ETag, and returns a Reader over it. The server must
// either honor Range (206) or expose Content-Length on a 200.
func Open(url string, cfg Config) (*Reader, error) {
	r := &Reader{
		url:      url,
		client:   cfg.Client,
		timeout:  cfg.Timeout,
		budget:   cfg.CacheBytes,
		segBytes: int64(cfg.SegmentBytes),
		segs:     make(map[int64]*list.Element),
		inflight: make(map[int64]*fill),
	}
	if r.timeout == 0 {
		r.timeout = DefaultTimeout
	}
	if r.budget == 0 {
		r.budget = DefaultCacheBytes
	}
	if r.segBytes == 0 {
		r.segBytes = DefaultSegmentBytes
	}
	r.segBytes = min(max(r.segBytes, minSegmentBytes), maxSegmentBytes)
	if r.client == nil {
		r.ownsConn = true
		r.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        32,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if err := r.probe(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// probe learns size and pins the validator.
func (r *Reader) probe() error {
	ctx, cancel := r.reqContext()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url, nil)
	if err != nil {
		return fmt.Errorf("remote: %s: %w", r.url, err)
	}
	req.Header.Set("Range", "bytes=0-0")
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("remote: probing %s: %w", r.url, err)
	}
	defer drain(resp)
	r.requests.Add(1)
	r.etag = resp.Header.Get("ETag")
	r.strong = r.etag != "" && !strings.HasPrefix(r.etag, "W/")
	switch resp.StatusCode {
	case http.StatusPartialContent:
		_, _, total, err := parseContentRange(resp.Header.Get("Content-Range"))
		if err != nil {
			return fmt.Errorf("remote: probing %s: %w", r.url, err)
		}
		if total < 0 {
			return fmt.Errorf("remote: probing %s: server did not report a total size", r.url)
		}
		r.size = total
	case http.StatusOK:
		// Range not honored: the reader still works via the 200 fallback
		// in fetch, just without partial transfers.
		if resp.ContentLength < 0 {
			return fmt.Errorf("remote: probing %s: no Content-Length on 200 response", r.url)
		}
		r.size = resp.ContentLength
	default:
		return fmt.Errorf("remote: probing %s: http %d", r.url, resp.StatusCode)
	}
	if r.size <= 0 {
		return fmt.Errorf("remote: %s: empty resource", r.url)
	}
	return nil
}

// Size is the pinned resource length in bytes.
func (r *Reader) Size() int64 { return r.size }

// ETag is the validator pinned at Open ("" if the server sent none).
func (r *Reader) ETag() string { return r.etag }

// Label identifies this source in failover logs (replica.Source).
func (r *Reader) Label() string { return r.url }

// Stats snapshots the reader's counters.
func (r *Reader) Stats() Stats {
	return Stats{
		Requests:     r.requests.Load(),
		BytesFetched: r.fetched.Load(),
		BytesRead:    r.read.Load(),
		Hits:         r.hits.Load(),
		Misses:       r.misses.Load(),
		Fills:        r.fills.Load(),
	}
}

// Close drops the cache and, when the Reader owns its client, the
// pooled connections. The Reader must not be used afterwards.
func (r *Reader) Close() error {
	r.mu.Lock()
	r.segs = make(map[int64]*list.Element)
	r.lru.Init()
	r.resident = 0
	r.mu.Unlock()
	if r.ownsConn {
		r.client.CloseIdleConnections()
	}
	return nil
}

// Retune resizes the segment unit (clamped to [4 KiB, 4 MiB]) and drops
// the cache so existing alignment cannot mix. The serving tier calls
// this after parsing the footer, sizing segments to the archive's
// typical frame span.
func (r *Reader) Retune(segmentBytes int64) {
	segmentBytes = min(max(segmentBytes, minSegmentBytes), maxSegmentBytes)
	r.mu.Lock()
	defer r.mu.Unlock()
	if segmentBytes == r.segBytes {
		return
	}
	r.segBytes = segmentBytes
	r.segs = make(map[int64]*list.Element)
	r.lru.Init()
	r.resident = 0
}

// SegmentBytes is the current aligned fetch unit.
func (r *Reader) SegmentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.segBytes
}

// ReadAt implements io.ReaderAt. Reads past the pinned size return
// io.EOF; every fetched byte is validated against the pinned ETag, so a
// changed resource yields ErrChanged, never torn bytes.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("remote: %s: negative offset %d", r.url, off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= r.size {
		return 0, io.EOF
	}
	want := len(p)
	if off+int64(want) > r.size {
		want = int(r.size - off)
	}
	n := 0
	for n < want {
		r.mu.Lock()
		seg := r.segBytes
		r.mu.Unlock()
		start := (off + int64(n)) / seg * seg
		data, err := r.segment(start, seg)
		if err != nil {
			return n, err
		}
		n += copy(p[n:want], data[off+int64(n)-start:])
	}
	r.read.Add(int64(n))
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// segment returns the bytes of the aligned segment at start, from cache
// or by fetching. Concurrent misses on one segment share a single fetch;
// errors are returned to every waiter but never cached.
func (r *Reader) segment(start, seg int64) ([]byte, error) {
	r.mu.Lock()
	if e, ok := r.segs[start]; ok {
		r.lru.MoveToFront(e)
		data := e.Value.(*segment).data
		r.mu.Unlock()
		r.hits.Add(1)
		return data, nil
	}
	r.misses.Add(1)
	if f, ok := r.inflight[start]; ok {
		r.mu.Unlock()
		<-f.done
		return f.data, f.err
	}
	f := &fill{done: make(chan struct{})}
	r.inflight[start] = f
	r.mu.Unlock()

	r.fills.Add(1)
	end := min(start+seg, r.size)
	data, err := r.fetch(start, end)
	f.data, f.err = data, err

	r.mu.Lock()
	delete(r.inflight, start)
	if err == nil && r.budget > 0 {
		r.insert(start, data)
	}
	r.mu.Unlock()
	close(f.done)
	return data, err
}

// insert caches one segment, evicting least-recently-used segments past
// the byte budget. Caller holds r.mu.
func (r *Reader) insert(start int64, data []byte) {
	if _, ok := r.segs[start]; ok {
		return
	}
	r.segs[start] = r.lru.PushFront(&segment{start: start, data: data})
	r.resident += int64(len(data))
	for r.resident > r.budget && r.lru.Len() > 1 {
		e := r.lru.Back()
		sg := e.Value.(*segment)
		r.lru.Remove(e)
		delete(r.segs, sg.start)
		r.resident -= int64(len(sg.data))
	}
}

// fetch pulls [start, end) in one range request and validates the
// response shape: a 206 must match the requested span exactly (short or
// over-long bodies are errors, not truncations), a 200 is accepted only
// as the full resource with the prefix discarded, anything else fails.
func (r *Reader) fetch(start, end int64) ([]byte, error) {
	want := end - start
	ctx, cancel := r.reqContext()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url, nil)
	if err != nil {
		return nil, fmt.Errorf("remote: %s: %w", r.url, err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", start, end-1))
	if r.strong {
		// A strong validator turns a stale range into a 200 + current
		// body instead of torn bytes; the ETag check below still guards
		// servers that ignore If-Range.
		req.Header.Set("If-Range", r.etag)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("remote: %s: bytes [%d,%d): %w", r.url, start, end, err)
	}
	defer drain(resp)
	r.requests.Add(1)
	if et := resp.Header.Get("ETag"); et != "" && r.etag != "" && et != r.etag {
		return nil, fmt.Errorf("remote: %s: etag %s -> %s: %w", r.url, r.etag, et, ErrChanged)
	}
	switch resp.StatusCode {
	case http.StatusPartialContent:
		first, last, total, err := parseContentRange(resp.Header.Get("Content-Range"))
		if err != nil {
			return nil, fmt.Errorf("remote: %s: %w", r.url, err)
		}
		if total >= 0 && total != r.size {
			return nil, fmt.Errorf("remote: %s: size %d -> %d: %w", r.url, r.size, total, ErrChanged)
		}
		if first != start || last != end-1 {
			return nil, fmt.Errorf("remote: %s: asked bytes [%d,%d), got [%d,%d]", r.url, start, end, first, last)
		}
		buf := make([]byte, want)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return nil, fmt.Errorf("remote: %s: short body for bytes [%d,%d): %w", r.url, start, end, err)
		}
		var extra [1]byte
		if m, _ := resp.Body.Read(extra[:]); m > 0 {
			return nil, fmt.Errorf("remote: %s: over-long body for bytes [%d,%d)", r.url, start, end)
		}
		r.fetched.Add(want)
		return buf, nil
	case http.StatusOK:
		// Range ignored (or If-Range did not match but the validator is
		// unchanged/absent — the ETag comparison above already rejected a
		// changed one): the body is the whole resource.
		if resp.ContentLength >= 0 && resp.ContentLength != r.size {
			return nil, fmt.Errorf("remote: %s: size %d -> %d: %w", r.url, r.size, resp.ContentLength, ErrChanged)
		}
		if _, err := io.CopyN(io.Discard, resp.Body, start); err != nil {
			return nil, fmt.Errorf("remote: %s: skipping to %d in full body: %w", r.url, start, err)
		}
		buf := make([]byte, want)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return nil, fmt.Errorf("remote: %s: short body at %d in full response: %w", r.url, start, err)
		}
		r.fetched.Add(start + want)
		return buf, nil
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, fmt.Errorf("remote: %s: bytes [%d,%d) not satisfiable (http 416): %w", r.url, start, end, ErrChanged)
	default:
		return nil, fmt.Errorf("remote: %s: http %d fetching bytes [%d,%d)", r.url, resp.StatusCode, start, end)
	}
}

func (r *Reader) reqContext() (context.Context, context.CancelFunc) {
	if r.timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), r.timeout)
}

// drain consumes a bounded remainder of the body so the connection can
// be reused, then closes it.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256<<10)) //nolint:errcheck
	resp.Body.Close()
}

// parseContentRange parses "bytes first-last/total" ("/*" yields
// total = -1).
func parseContentRange(h string) (first, last, total int64, err error) {
	rest, ok := strings.CutPrefix(h, "bytes ")
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	span, tot, ok := strings.Cut(rest, "/")
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	lo, hi, ok := strings.Cut(span, "-")
	if !ok {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	if first, err = strconv.ParseInt(lo, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	if last, err = strconv.ParseInt(hi, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	if tot == "*" {
		total = -1
	} else if total, err = strconv.ParseInt(tot, 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	if first < 0 || last < first || (total >= 0 && last >= total) {
		return 0, 0, 0, fmt.Errorf("bad Content-Range %q", h)
	}
	return first, last, total, nil
}

// IsURL reports whether spec names a remote resource this package can
// open, as opposed to a local file path.
func IsURL(spec string) bool {
	return strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://")
}
