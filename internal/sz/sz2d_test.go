package sz

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func smooth2D(nx, ny int) []float32 {
	out := make([]float32, nx*ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			out[x*ny+y] = float32(50*math.Sin(float64(x)/9)*math.Cos(float64(y)/7) + float64(x))
		}
	}
	return out
}

func TestRoundTrip2DWithinBound(t *testing.T) {
	nx, ny := 40, 28
	vals := smooth2D(nx, ny)
	eb := 0.01
	blob, st, err := Compress2D(vals, nx, ny, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, gx, gy, err := Decompress2D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if gx != nx || gy != ny {
		t.Fatalf("dims %dx%d, want %dx%d", gx, gy, nx, ny)
	}
	for i := range vals {
		if d := math.Abs(float64(vals[i]) - float64(got[i])); d > eb*(1+1e-9) {
			t.Fatalf("value %d error %v exceeds bound", i, d)
		}
	}
	if st.Ratio() < 3 {
		t.Fatalf("smooth 2D field compressed only %.1fx", st.Ratio())
	}
}

func TestCompress2DRejectsBadGeometry(t *testing.T) {
	vals := make([]float32, 12)
	if _, _, err := Compress2D(vals, 3, 5, Options{ErrorBound: 1}); err == nil {
		t.Fatal("3×5 ≠ 12 should be rejected")
	}
	if _, _, err := Compress2D(vals, 0, 12, Options{ErrorBound: 1}); err == nil {
		t.Fatal("zero dim should be rejected")
	}
}

func TestCompress2DNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nx, ny := 32, 32
	vals := make([]float32, nx*ny)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64() * 1e5)
	}
	eb := 10.0
	blob, _, err := Compress2D(vals, nx, ny, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := Decompress2D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if d := math.Abs(float64(vals[i]) - float64(got[i])); d > eb*(1+1e-9) {
			t.Fatalf("value %d error %v exceeds bound", i, d)
		}
	}
}

func TestSlicesRoundTrip(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 16, Y: 12, Z: 10})
	eb := 0.05
	blob, st, err := CompressSlices(g, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != g.Dim.Count() {
		t.Fatalf("stats N %d, want %d", st.N, g.Dim.Count())
	}
	got, err := DecompressSlices[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != g.Dim {
		t.Fatalf("dims %v, want %v", got.Dim, g.Dim)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > eb*(1+1e-9) {
		t.Fatalf("max abs diff %v exceeds bound", mad)
	}
}

func TestSlicesRelativeMode(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 8, Y: 8, Z: 8})
	rel := 1e-3
	blob, st, err := CompressSlices(g, Options{ErrorBound: rel, Mode: Rel})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressSlices[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > st.EffectiveEB*(1+1e-6) {
		t.Fatalf("max abs diff %v exceeds effective bound %v", mad, st.EffectiveEB)
	}
}

func TestDimensionalityOrdering(t *testing.T) {
	// The Sec. 2.3 premise: on a smooth 3D field at the same bound,
	// higher-dimensional prediction compresses smaller.
	g := smoothGrid(grid.Dims{X: 32, Y: 32, Z: 32})
	opts := Options{ErrorBound: 0.01}
	b1, _, err := Compress1D(g.Data, opts)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := CompressSlices(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b3, _, err := Compress3D(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(b3) < len(b2) && len(b2) < len(b1)) {
		t.Fatalf("expected 3D < 2D < 1D, got %d / %d / %d bytes", len(b3), len(b2), len(b1))
	}
}

func TestKind2DMismatch(t *testing.T) {
	vals := smooth2D(8, 8)
	blob, _, err := Compress2D(vals, 8, 8, Options{ErrorBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress3D[float32](blob); err == nil {
		t.Fatal("2D payload must not decode as 3D")
	}
	if _, err := Decompress1D[float32](blob); err == nil {
		t.Fatal("2D payload must not decode as 1D")
	}
}
