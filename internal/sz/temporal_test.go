package sz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// driftBlocks derives a correlated "next snapshot" from base: each cell
// moves by a smooth per-block drift of a few error bounds plus sub-bound
// jitter, the regime delta coding is built for.
func driftBlocks(base []*grid.Grid3[float32], eb float64, seed int64) []*grid.Grid3[float32] {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*grid.Grid3[float32], len(base))
	for b, g := range base {
		drift := float32((rng.Float64()*2 - 1) * 3 * eb)
		n := grid.New[float32](g.Dim)
		for i, v := range g.Data {
			n.Data[i] = v + drift + float32((rng.Float64()*2-1)*eb/4)
		}
		out[b] = n
	}
	return out
}

func maxAbsErr(a, b []*grid.Grid3[float32]) float64 {
	worst := 0.0
	for i := range a {
		for j := range a[i].Data {
			if d := math.Abs(float64(a[i].Data[j]) - float64(b[i].Data[j])); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestTemporalKernelMatchesRef compares the production temporal kernels
// against the scalar quantizer/dequantizer oracles element-for-element:
// identical codes, literals and reconstructions in both directions.
func TestTemporalKernelMatchesRef(t *testing.T) {
	const eb = 0.05
	src := testBlocks(1, 9, 7)[0]
	ref := driftBlocks([]*grid.Grid3[float32]{src}, eb, 8)[0]
	n := len(src.Data)
	radius := quantRadius(16)

	codes := make([]uint32, n)
	recon := make([]float32, n)
	lits, nlit := encodeTemporalBlock(src.Data, ref.Data, recon, codes, nil, eb, radius)

	q := newQuantizer[float32](eb, 16)
	refRecon := make([]float32, n)
	encodeTemporalRef(src.Data, ref.Data, refRecon, q)
	if nlit != q.nlit {
		t.Fatalf("kernel emitted %d literals, oracle %d", nlit, q.nlit)
	}
	for i := range codes {
		if codes[i] != q.codes[i] {
			t.Fatalf("code %d: kernel %d, oracle %d", i, codes[i], q.codes[i])
		}
		if recon[i] != refRecon[i] {
			t.Fatalf("recon %d: kernel %v, oracle %v", i, recon[i], refRecon[i])
		}
	}
	if !bytes.Equal(lits, q.lits) {
		t.Fatalf("literal pools differ: kernel %d bytes, oracle %d", len(lits), len(q.lits))
	}

	out := make([]float32, n)
	if lp := decodeTemporalBlock(out, ref.Data, codes, lits, 2*eb, radius); lp != len(lits) {
		t.Fatalf("decode consumed %d literal bytes, pool holds %d", lp, len(lits))
	}
	dq := &dequantizer[float32]{twoEB: 2 * eb, radius: radius, codes: q.codes, lits: q.lits}
	refOut := make([]float32, n)
	if err := decodeTemporalRef(refOut, ref.Data, dq); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != refOut[i] {
			t.Fatalf("decode %d: kernel %v, oracle %v", i, out[i], refOut[i])
		}
		if d := math.Abs(float64(src.Data[i]) - float64(out[i])); d > eb {
			t.Fatalf("element %d error %g exceeds bound %g", i, d, eb)
		}
		if out[i] != recon[i] {
			t.Fatalf("element %d: decode %v != encoder recon %v", i, out[i], recon[i])
		}
	}
}

// TestCapturePayloadByteIdentity pins the contract CompressBlocksCapture
// ships under: the payload is bit-identical to CompressBlocks, and the
// captured reconstruction equals the decoded output exactly.
func TestCapturePayloadByteIdentity(t *testing.T) {
	blocks := testBlocks(13, 8, 42) // 13 exercises both the quad and tail paths
	opts := Options{ErrorBound: 0.05}
	want, _, err := CompressBlocks(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	recons := grid.NewBlocks[float32](blocks[0].Dim, len(blocks))
	var e Encoder[float32]
	got, _, err := e.CompressBlocksCapture(blocks, opts, recons)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("capture payload differs from CompressBlocks (%d vs %d bytes)", len(got), len(want))
	}
	decoded, err := DecompressBlocks[float32](got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		for j := range decoded[i].Data {
			if decoded[i].Data[j] != recons[i].Data[j] {
				t.Fatalf("block %d cell %d: decoded %v, captured %v", i, j, decoded[i].Data[j], recons[i].Data[j])
			}
		}
	}
}

// TestDeltaRoundTrip runs the full delta path: compress against a
// reference, peek, decompress with the same reference, and check the
// bound, the capture, and that delta beats intra on correlated data.
func TestDeltaRoundTrip(t *testing.T) {
	const eb = 0.05
	opts := Options{ErrorBound: eb}
	refSnap := testBlocks(13, 8, 1)
	refRecons := grid.NewBlocks[float32](refSnap[0].Dim, len(refSnap))
	var e Encoder[float32]
	if _, _, err := e.CompressBlocksCapture(refSnap, opts, refRecons); err != nil {
		t.Fatal(err)
	}
	cur := driftBlocks(refSnap, eb, 2)

	recons := grid.NewBlocks[float32](cur[0].Dim, len(cur))
	blob, st, err := e.CompressBlocksDelta(cur, refRecons, opts, recons)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 13*8*8*8 {
		t.Fatalf("stats N = %d", st.N)
	}

	bi, err := PeekBatch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bi.Delta || bi.Blocks != 13 || bi.BlockDims != cur[0].Dim {
		t.Fatalf("PeekBatch = %+v", bi)
	}

	out, err := DecompressBlocksDelta(blob, refRecons)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxAbsErr(cur, out); got > eb {
		t.Fatalf("max error %g exceeds bound %g", got, eb)
	}
	for i := range out {
		for j := range out[i].Data {
			if out[i].Data[j] != recons[i].Data[j] {
				t.Fatalf("block %d cell %d: captured recon differs from decode", i, j)
			}
		}
	}

	intra, _, err := CompressBlocks(cur, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= len(intra) {
		t.Fatalf("delta payload %d bytes, intra %d — no win on correlated data", len(blob), len(intra))
	}

	// One-shot wrapper agrees with the engine byte-for-byte.
	oneShot, _, err := CompressBlocksDelta(cur, refRecons, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneShot, blob) {
		t.Fatal("one-shot delta payload differs from pooled encoder")
	}
}

// TestDeltaChainNoErrorAccumulation encodes a 6-deep reference chain and
// asserts every member individually honors the bound: residuals are taken
// against reconstructed predecessors, so depth never compounds error.
func TestDeltaChainNoErrorAccumulation(t *testing.T) {
	const eb, depth = 0.05, 6
	opts := Options{ErrorBound: eb}
	var e Encoder[float32]
	var d Decoder[float32]

	snap := testBlocks(7, 8, 99)
	prev := grid.NewBlocks[float32](snap[0].Dim, len(snap))
	blob, _, err := e.CompressBlocksCapture(snap, opts, prev)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := d.DecompressBlocks(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxAbsErr(snap, decoded); got > eb {
		t.Fatalf("keyframe: max error %g exceeds %g", got, eb)
	}
	for step := 1; step <= depth; step++ {
		snap = driftBlocks(snap, eb, int64(step))
		recons := grid.NewBlocks[float32](snap[0].Dim, len(snap))
		blob, _, err := e.CompressBlocksDelta(snap, prev, opts, recons)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := d.DecompressBlocksDelta(blob, prev)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxAbsErr(snap, decoded); got > eb {
			t.Fatalf("chain depth %d: max error %g exceeds %g", step, got, eb)
		}
		prev = recons
	}
}

// TestDeltaValidation exercises the failure surface: reference count and
// shape mismatches, and kind confusion in both directions.
func TestDeltaValidation(t *testing.T) {
	opts := Options{ErrorBound: 0.05}
	blocks := testBlocks(3, 4, 5)
	refs := grid.NewBlocks[float32](blocks[0].Dim, len(blocks))

	if _, _, err := CompressBlocksDelta(blocks, refs[:2], opts); err == nil {
		t.Fatal("short reference batch accepted")
	}
	badRef := append(append([]*grid.Grid3[float32]{}, refs[:2]...), grid.NewCube[float32](5))
	if _, _, err := CompressBlocksDelta(blocks, badRef, opts); err == nil {
		t.Fatal("mis-shaped reference accepted")
	}

	var e Encoder[float32]
	if _, _, err := e.CompressBlocksCapture(blocks, opts, refs[:2]); err == nil {
		t.Fatal("short capture batch accepted")
	}

	delta, _, err := CompressBlocksDelta(blocks, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressBlocks[float32](delta); err == nil {
		t.Fatal("DecompressBlocks decoded a delta payload")
	}
	intra, _, err := CompressBlocks(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressBlocksDelta(intra, refs); err == nil {
		t.Fatal("DecompressBlocksDelta decoded an intra payload")
	}
	if _, err := DecompressBlocksDelta(delta, refs[:2]); err == nil {
		t.Fatal("short reference batch accepted on decode")
	}
	badRef[2] = grid.NewCube[float32](5)
	if _, err := DecompressBlocksDelta(delta, badRef); err == nil {
		t.Fatal("mis-shaped reference accepted on decode")
	}
}
