package sz

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func randomBlocks(n int, d grid.Dims, seed int64) []*grid.Grid3[float32] {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*grid.Grid3[float32], n)
	for i := range out {
		g := grid.New[float32](d)
		for j := range g.Data {
			g.Data[j] = float32(rng.NormFloat64()*50 + float64(i))
		}
		out[i] = g
	}
	return out
}

func TestParallelCompressMatchesSerial(t *testing.T) {
	blocks := randomBlocks(13, grid.Dims{X: 6, Y: 6, Z: 6}, 1)
	opts := Options{ErrorBound: 0.1}
	serial, sSt, err := CompressBlocks(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		par, pSt, err := CompressBlocksParallel(blocks, opts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d: parallel payload differs from serial", workers)
		}
		if pSt.Literals != sSt.Literals || pSt.N != sSt.N {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, pSt, sSt)
		}
	}
}

func TestParallelCompressSingleBlockFallsBack(t *testing.T) {
	blocks := randomBlocks(1, grid.Dims{X: 4, Y: 4, Z: 4}, 2)
	serial, _, err := CompressBlocks(blocks, Options{ErrorBound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := CompressBlocksParallel(blocks, Options{ErrorBound: 0.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, par) {
		t.Fatal("single-block parallel differs from serial")
	}
}

func TestParallelDecompressMatchesSerial(t *testing.T) {
	blocks := randomBlocks(9, grid.Dims{X: 5, Y: 7, Z: 4}, 3)
	blob, _, err := CompressBlocks(blocks, Options{ErrorBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := DecompressBlocks[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DecompressBlocksParallel[float32](blob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("block counts %d vs %d", len(par), len(serial))
	}
	for i := range serial {
		if grid.MaxAbsDiff(serial[i], par[i]) != 0 {
			t.Fatalf("block %d differs between serial and parallel decode", i)
		}
	}
}

func TestParallelRoundTripWithLiterals(t *testing.T) {
	// Adversarial blocks force literal fallbacks; the literal-pool offset
	// computation must split them correctly across goroutines.
	blocks := randomBlocks(6, grid.Dims{X: 4, Y: 4, Z: 4}, 4)
	for i, b := range blocks {
		for j := range b.Data {
			if (i+j)%3 == 0 {
				b.Data[j] = 1e30 // far outside the quantization range
			}
		}
	}
	eb := 1e-3
	blob, st, err := CompressBlocksParallel(blocks, Options{ErrorBound: eb}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Literals == 0 {
		t.Fatal("expected literals in adversarial batch")
	}
	got, err := DecompressBlocksParallel[float32](blob, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if mad := grid.MaxAbsDiff(blocks[i], got[i]); mad > eb*(1+1e-9) {
			t.Fatalf("block %d error %v exceeds bound", i, mad)
		}
	}
}

func TestParallelRelativeMode(t *testing.T) {
	blocks := randomBlocks(5, grid.Dims{X: 6, Y: 6, Z: 6}, 5)
	serial, sSt, err := CompressBlocks(blocks, Options{ErrorBound: 1e-3, Mode: Rel})
	if err != nil {
		t.Fatal(err)
	}
	par, pSt, err := CompressBlocksParallel(blocks, Options{ErrorBound: 1e-3, Mode: Rel}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sSt.EffectiveEB != pSt.EffectiveEB {
		t.Fatalf("effective bounds differ: %v vs %v", sSt.EffectiveEB, pSt.EffectiveEB)
	}
	if !bytes.Equal(serial, par) {
		t.Fatal("relative-mode parallel payload differs")
	}
}

func TestParallelRejectsEmptyAndMixed(t *testing.T) {
	if _, _, err := CompressBlocksParallel[float32](nil, Options{ErrorBound: 1}, 2); err == nil {
		t.Fatal("empty batch should error")
	}
	a := grid.New[float32](grid.Dims{X: 2, Y: 2, Z: 2})
	b := grid.New[float32](grid.Dims{X: 2, Y: 2, Z: 4})
	if _, _, err := CompressBlocksParallel([]*grid.Grid3[float32]{a, b}, Options{ErrorBound: 1}, 2); err == nil {
		t.Fatal("mixed shapes should error")
	}
}

// TestWorkersFanOutMatchesSerial drives the internal fan-out
// implementations directly: the public entry points cap workers at
// GOMAXPROCS (a single-CPU host always takes the serial path), so this is
// what keeps the goroutine paths exercised — including under -race —
// regardless of the host's CPU count.
func TestWorkersFanOutMatchesSerial(t *testing.T) {
	blocks := randomBlocks(11, grid.Dims{X: 5, Y: 4, Z: 6}, 8)
	for i, b := range blocks {
		for j := range b.Data {
			if (i+j)%17 == 0 {
				b.Data[j] = 1e30 // literal markers cross worker boundaries
			}
		}
	}
	opts := Options{ErrorBound: 0.05}
	ref, _, err := CompressBlocks(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder[float32]()
	dec := NewDecoder[float32]()
	want, err := DecompressBlocks[float32](ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 64} {
		blob, _, err := enc.compressBlocksWorkers(blocks, opts, w)
		if err != nil {
			t.Fatalf("compress workers=%d: %v", w, err)
		}
		if !bytes.Equal(ref, blob) {
			t.Fatalf("compress workers=%d: payload differs from serial", w)
		}
		got, err := dec.decompressBlocksWorkers(blob, w)
		if err != nil {
			t.Fatalf("decompress workers=%d: %v", w, err)
		}
		for i := range want {
			if grid.MaxAbsDiff(want[i], got[i]) != 0 {
				t.Fatalf("decompress workers=%d: block %d differs from serial", w, i)
			}
		}
	}
}

// TestParallelSingleWorkerTakesSerialPath pins the satellite fix: a
// resolved worker count of 1 (explicit, or any count on a 1-CPU process)
// must produce results identical to the serial entry points — the
// implementations delegate rather than paying fan-out setup.
func TestParallelSingleWorkerTakesSerialPath(t *testing.T) {
	blocks := randomBlocks(5, grid.Dims{X: 4, Y: 4, Z: 4}, 9)
	opts := Options{ErrorBound: 0.1}
	ref, _, err := CompressBlocks(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 0, -1} {
		blob, _, err := CompressBlocksParallel(blocks, opts, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !bytes.Equal(ref, blob) {
			t.Fatalf("workers=%d: payload differs from serial", w)
		}
		got, err := DecompressBlocksParallel[float32](blob, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(blocks) {
			t.Fatalf("workers=%d: %d blocks out", w, len(got))
		}
	}
}

func TestParallelDecompressRejectsCorrupt(t *testing.T) {
	blocks := randomBlocks(4, grid.Dims{X: 4, Y: 4, Z: 4}, 6)
	blob, _, err := CompressBlocks(blocks, Options{ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressBlocksParallel[float32](blob[:len(blob)/2], 2); err == nil {
		t.Fatal("truncated payload should error")
	}
	if _, err := DecompressBlocksParallel[float32](nil, 2); err == nil {
		t.Fatal("nil payload should error")
	}
}
