package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// smoothGrid builds a smooth 3D field: the kind SZ predicts well.
func smoothGrid(d grid.Dims) *grid.Grid3[float32] {
	g := grid.New[float32](d)
	for x := 0; x < d.X; x++ {
		for y := 0; y < d.Y; y++ {
			for z := 0; z < d.Z; z++ {
				v := math.Sin(float64(x)/7) * math.Cos(float64(y)/5) * math.Sin(float64(z)/9)
				g.Set(x, y, z, float32(100*v+float64(x+y+z)))
			}
		}
	}
	return g
}

func noisyValues(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * 1e6)
	}
	return out
}

func TestRoundTrip1DWithinBound(t *testing.T) {
	vals := noisyValues(10000, 1)
	for _, eb := range []float64{1, 100, 1e4} {
		blob, st, err := Compress1D(vals, Options{ErrorBound: eb})
		if err != nil {
			t.Fatalf("eb=%v: %v", eb, err)
		}
		got, err := Decompress1D[float32](blob)
		if err != nil {
			t.Fatalf("eb=%v decompress: %v", eb, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("eb=%v: got %d values, want %d", eb, len(got), len(vals))
		}
		for i := range vals {
			if d := math.Abs(float64(vals[i]) - float64(got[i])); d > eb*(1+1e-9) {
				t.Fatalf("eb=%v: value %d error %v exceeds bound", eb, i, d)
			}
		}
		if st.N != len(vals) {
			t.Fatalf("stats N = %d", st.N)
		}
	}
}

func TestRoundTrip3DWithinBound(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 24, Y: 20, Z: 28})
	eb := 0.01
	blob, st, err := Compress3D(g, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != g.Dim {
		t.Fatalf("dims %v, want %v", got.Dim, g.Dim)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > eb*(1+1e-9) {
		t.Fatalf("max abs diff %v exceeds bound %v", mad, eb)
	}
	if st.Ratio() < 4 {
		t.Fatalf("smooth field compressed only %.1fx", st.Ratio())
	}
}

func TestRelativeModeBound(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 16, Y: 16, Z: 16})
	rel := 1e-3
	blob, st, err := Compress3D(g, Options{ErrorBound: rel, Mode: Rel})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.MinMax()
	wantAbs := rel * (float64(hi) - float64(lo))
	if math.Abs(st.EffectiveEB-wantAbs) > 1e-12*wantAbs {
		t.Fatalf("effective eb %v, want %v", st.EffectiveEB, wantAbs)
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > wantAbs*(1+1e-6) {
		t.Fatalf("max abs diff %v exceeds relative bound %v", mad, wantAbs)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	d := grid.Dims{X: 12, Y: 12, Z: 12}
	g := grid.New[float64](d)
	rng := rand.New(rand.NewSource(5))
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	eb := 1e-4
	blob, _, err := Compress3D(g, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress3D[float64](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > eb*(1+1e-12) {
		t.Fatalf("max abs diff %v exceeds bound", mad)
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	d := grid.Dims{X: 8, Y: 8, Z: 8}
	rng := rand.New(rand.NewSource(11))
	var blocks []*grid.Grid3[float32]
	for b := 0; b < 7; b++ {
		g := grid.New[float32](d)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64()*10 + float64(b)*100)
		}
		blocks = append(blocks, g)
	}
	eb := 0.05
	blob, st, err := CompressBlocks(blocks, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 7*d.Count() {
		t.Fatalf("stats N = %d, want %d", st.N, 7*d.Count())
	}
	got, err := DecompressBlocks[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	for i := range blocks {
		if mad := grid.MaxAbsDiff(blocks[i], got[i]); mad > eb*(1+1e-9) {
			t.Fatalf("block %d max abs diff %v exceeds bound", i, mad)
		}
	}
}

func TestBlocksRejectMixedShapes(t *testing.T) {
	a := grid.New[float32](grid.Dims{X: 4, Y: 4, Z: 4})
	b := grid.New[float32](grid.Dims{X: 4, Y: 4, Z: 8})
	if _, _, err := CompressBlocks([]*grid.Grid3[float32]{a, b}, Options{ErrorBound: 1}); err == nil {
		t.Fatal("mixed shapes should be rejected")
	}
}

func TestInvalidOptions(t *testing.T) {
	g := grid.New[float32](grid.Dims{X: 2, Y: 2, Z: 2})
	if _, _, err := Compress3D(g, Options{ErrorBound: 0}); err == nil {
		t.Fatal("zero error bound should be rejected")
	}
	if _, _, err := Compress3D(g, Options{ErrorBound: -1}); err == nil {
		t.Fatal("negative error bound should be rejected")
	}
	if _, _, err := Compress3D(g, Options{ErrorBound: 1, QuantBits: 1}); err == nil {
		t.Fatal("QuantBits=1 should be rejected")
	}
}

func TestKindMismatch(t *testing.T) {
	vals := noisyValues(100, 2)
	blob, _, err := Compress1D(vals, Options{ErrorBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress3D[float32](blob); err == nil {
		t.Fatal("decoding a 1D payload as 3D should error")
	}
}

func TestCorruptPayload(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 8, Y: 8, Z: 8})
	blob, _, err := Compress3D(g, Options{ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress3D[float32](nil); err == nil {
		t.Fatal("nil payload should error")
	}
	if _, err := Decompress3D[float32](blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated payload should error")
	}
	garbage := append([]byte{}, blob...)
	garbage[0] ^= 0xff
	if _, err := Decompress3D[float32](garbage); err == nil {
		t.Fatal("bad magic should error")
	}
}

func TestConstantField(t *testing.T) {
	g := grid.New[float32](grid.Dims{X: 16, Y: 16, Z: 16})
	g.Fill(42)
	blob, st, err := Compress3D(g, Options{ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > 1e-6 {
		t.Fatalf("constant field error %v", mad)
	}
	if st.Ratio() < 50 {
		t.Fatalf("constant field ratio only %.1f", st.Ratio())
	}
}

func TestConstantFieldRelMode(t *testing.T) {
	// Zero value range: rel mode must still terminate and round-trip.
	g := grid.New[float32](grid.Dims{X: 4, Y: 4, Z: 4})
	g.Fill(7)
	blob, _, err := Compress3D(g, Options{ErrorBound: 1e-3, Mode: Rel})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > 1e-3 {
		t.Fatalf("error %v", mad)
	}
}

func TestSpikyDataStaysBounded(t *testing.T) {
	// Huge dynamic range with spikes: bound must hold even when most
	// residuals exceed the quantization range.
	rng := rand.New(rand.NewSource(13))
	g := grid.New[float32](grid.Dims{X: 12, Y: 12, Z: 12})
	for i := range g.Data {
		g.Data[i] = float32(math.Exp(rng.NormFloat64() * 10))
	}
	eb := 1e-3
	blob, _, err := Compress3D(g, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > eb*(1+1e-9) {
		t.Fatalf("max abs diff %v exceeds bound %v", mad, eb)
	}
}

func TestQuickErrorBoundProperty(t *testing.T) {
	// Property: for arbitrary data and bounds, round-trip error ≤ bound.
	f := func(seed int64, ebExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eb := math.Pow(10, float64(int(ebExp%8))-4) // 1e-4 .. 1e3
		d := grid.Dims{X: 6, Y: 6, Z: 6}
		g := grid.New[float32](d)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64() * 1e3)
		}
		blob, _, err := Compress3D(g, Options{ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := Decompress3D[float32](blob)
		if err != nil {
			return false
		}
		return grid.MaxAbsDiff(g, got) <= eb*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallerBoundLargerPayload(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 32, Y: 32, Z: 32})
	var prev int
	for i, eb := range []float64{10, 1, 0.1, 0.01} {
		blob, _, err := Compress3D(g, Options{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(blob) < prev {
			t.Fatalf("tighter bound %v produced smaller payload (%d < %d)", eb, len(blob), prev)
		}
		prev = len(blob)
	}
}

func TestStatsLiterals(t *testing.T) {
	// Alternating extreme values defeat the predictor; most values should
	// still be within bound thanks to literals.
	g := grid.New[float32](grid.Dims{X: 8, Y: 8, Z: 8})
	for i := range g.Data {
		if i%2 == 0 {
			g.Data[i] = 1e30
		} else {
			g.Data[i] = -1e30
		}
	}
	blob, st, err := Compress3D(g, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Literals == 0 {
		t.Fatal("expected literal fallbacks for adversarial data")
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > 1e-3 {
		t.Fatalf("adversarial data error %v", mad)
	}
}

func TestDisableLossless(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 16, Y: 16, Z: 16})
	blob, _, err := Compress3D(g, Options{ErrorBound: 0.01, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, got); mad > 0.01*(1+1e-9) {
		t.Fatalf("error %v", mad)
	}
}

func TestModeString(t *testing.T) {
	if Abs.String() != "abs" || Rel.String() != "rel" {
		t.Fatalf("mode strings: %q %q", Abs.String(), Rel.String())
	}
}
