package sz

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/grid"
)

// Boundary-peeled, branch-free Lorenzo kernels.
//
// The reference kernels (encodeLorenzo3Ref and friends in sz.go/sz2d.go)
// pay seven boundary branches per element in lorenzoPred, a non-inlined
// quantizer.encode with append-grown code storage, and a per-element
// error-returning dequantizer.decode. The kernels below remove all of
// that without changing a single payload byte:
//
//   - each block is split into its x=0 face, the y=0 and z=0 boundary
//     lines of every plane, and a branch-free interior loop (z innermost,
//     walking precomputed sx/sy strides with all seven neighbor loads
//     unconditional);
//   - the quantizer is hand-inlined into every loop, codes are written by
//     index into a buffer presized to the block's cell count, and the
//     constants (eb, 2·eb, radius) live in locals;
//   - the decode side validates the code count and literal pool once up
//     front (checkLiterals), then consumes codes by index with no
//     per-element error return; literals stream from a cursor.
//
// Byte-identity is load-bearing: the golden payload hash from PR 1 must
// not move. The float64 arithmetic of the reference quantizer is kept
// verbatim, and the peeled boundary predictors reproduce the reference's
// left-to-right summation over zero-valued absent neighbors exactly,
// including IEEE signed-zero behavior:
//
//   - subtracting an absent term (x − (+0)) is the identity for every x,
//     so absent negative terms are dropped;
//   - adding an absent term (x + (+0)) differs only when x is −0, which
//     the reference's running sum can reach only right after the first
//     two terms (fx+fy with both −0) or when the sum starts at +0 and
//     the first present term is −0 — so exactly the zero terms that
//     matter are kept (the `zero +` / `+ zero` below), and the rest are
//     provably identity and dropped.
//
// kernel_test.go checks every case element-for-element against the
// reference kernels, on top of the payload-level golden tests.

// fastRound is math.Round — round half away from zero — computed through
// the math.RoundToEven hardware intrinsic (ROUNDSD on amd64; math.Round
// itself has no instruction and falls back to bit manipulation). The
// result is bit-identical to math.Round for every input:
//
//   - r := RoundToEven(x) is the nearest integer to x, so |x−r| ≤ 0.5 and
//     the subtraction x−r is exact (Sterbenz for |r| ≥ 1, trivial for
//     r = 0), which means x−r == ±0.5 exactly identifies the halfway
//     ties — the only inputs where the two rounding rules differ;
//   - at a tie RoundToEven picked the even neighbor; rounding half away
//     from zero wants the larger magnitude, so a +0.5 gap with r ≥ 0
//     bumps up and a −0.5 gap with r ≤ 0 bumps down (the sign conditions
//     keep ties that RoundToEven already moved away from zero fixed);
//   - NaN and ±Inf fall through (the gap is NaN). The one observable
//     difference from math.Round: the intrinsic quiets signaling-NaN
//     payloads. The quantizer never sees NaN payload bits — any NaN
//     fails the radius check and takes the literal path — so payloads
//     are unaffected.
//
// The tie branches are almost never taken and predict perfectly; the
// critical-path cost drops from ~20 cycles of integer bit twiddling to
// one 8-cycle instruction. kernel_test.go exercises the equivalence
// directly and every payload-identity test covers it end to end.
func fastRound(x float64) float64 {
	r := math.RoundToEven(x)
	d := x - r
	if d == 0.5 && r >= 0 {
		return r + 1
	}
	if d == -0.5 && r <= 0 {
		return r - 1
	}
	return r
}

// The quantizer step appears hand-inlined in every encode loop below
// rather than as a helper: gcshape-stenciled generic calls carry a
// dictionary argument that pushes the instantiation past the inlining
// budget, so a helper would cost a real function call per element. Each
// expansion is the same eight lines, mirroring quantizer.encode
// operation-for-operation:
//
//	diff := float64(v) - float64(pred)
//	qv := fastRound(diff / twoEB)
//	c, r := uint32(0), v                  // literal marker unless...
//	if math.Abs(qv) < radiusF {           // (range-check before the
//		if rr := T(float64(pred)+twoEB*qv); // int conversion: out-of-
//			math.Abs(float64(v)-float64(rr)) <= eb { // range conversions
//			c, r = uint32(int64(qv)+radius), rr      // are undefined)
//		}
//	}
//
// dqstep is the dequantizer twin; it is small enough to inline even as a
// shape instantiation.
func dqstep[T grid.Float](c uint32, pred T, twoEB float64, radius int64) T {
	return T(float64(pred) + twoEB*float64(int64(c)-radius))
}

// loadLiteral reads one exact literal from the front of b. The caller
// guarantees b holds at least one literal (checkLiterals ran).
func loadLiteral[T grid.Float](b []byte) T {
	var zero T
	switch any(zero).(type) {
	case float32:
		return T(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	default:
		return T(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	}
}

// checkLiterals verifies once, up front, that the literal pool holds
// enough bytes for every literal marker (code 0) in codes, so the decode
// kernels can consume literals without per-element checks.
func checkLiterals[T grid.Float](codes []uint32, lits []byte) error {
	zeros := 0
	for _, c := range codes {
		if c == 0 {
			zeros++
		}
	}
	if need := zeros * literalSize[T](); need > len(lits) {
		return fmt.Errorf("sz: literal pool holds %d bytes, need %d", len(lits), need)
	}
	return nil
}

// encodeBlock3 runs the boundary-peeled 3D Lorenzo encode over src,
// writing the reconstruction into recon and one code per cell into codes.
// recon must be zeroed and codes presized: both of length d.Count().
// Literals append to lits; the grown slice and the literal count return.
func encodeBlock3[T grid.Float](src, recon []T, d grid.Dims, codes []uint32, lits []byte, eb float64, radius int64) ([]byte, int) {
	nx, ny, nz := d.X, d.Y, d.Z
	if nx == 0 || ny == 0 || nz == 0 {
		return lits, 0
	}
	twoEB := 2 * eb
	radiusF := float64(radius)
	nlit := 0
	var zero T
	sy := nz
	sx := ny * nz

	// Every row below follows the same shape: the quantizer body is
	// hand-inlined per element (see the package comment above on gcshape
	// calls), the previous reconstruction rolls through a local so the
	// store queue stays out of the dependency chain, and literals are
	// collected by a per-row post-pass over the code row (collectLits),
	// which keeps the compute loops call-free while preserving the
	// literal pool's scan order exactly.

	// x = 0 face: a 2D Lorenzo in (y,z) with the x-side terms absent.
	{
		// Row (0,0,*): the z edge.
		row, srcRow, codeRow := recon[:nz], src[:nz], codes[:nz]
		p := zero
		{
			v := srcRow[0]
			diff := float64(v) - float64(p)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(p) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[0], row[0], p = c, r, r
		}
		for z := 1; z < nz; z++ {
			pred := zero + p
			v := srcRow[z]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[z], row[z], p = c, r, r
		}
		lits, nlit = collectLits(codeRow, srcRow, lits, nlit)
	}
	for y := 1; y < ny; y++ {
		base := y * sy
		row := recon[base : base+nz]
		rowY := recon[base-sy : base]
		srcRow := src[base : base+nz]
		codeRow := codes[base : base+nz]
		var p T
		{
			pred := zero + rowY[0]
			v := srcRow[0]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[0], row[0], p = c, r, r
		}
		for z := 1; z < nz; z++ {
			pred := zero + rowY[z] + p - rowY[z-1]
			v := srcRow[z]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[z], row[z], p = c, r, r
		}
		lits, nlit = collectLits(codeRow, srcRow, lits, nlit)
	}

	for x := 1; x < nx; x++ {
		pbase := x * sx
		// Row (x,0,*): the y=0 boundary line of this plane.
		{
			row := recon[pbase : pbase+nz]
			rowX := recon[pbase-sx : pbase-sx+nz]
			srcRow := src[pbase : pbase+nz]
			codeRow := codes[pbase : pbase+nz]
			var p T
			{
				pred := rowX[0] + zero
				v := srcRow[0]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeRow[0], row[0], p = c, r, r
			}
			for z := 1; z < nz; z++ {
				pred := rowX[z] + zero + p - rowX[z-1]
				v := srcRow[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeRow[z], row[z], p = c, r, r
			}
			lits, nlit = collectLits(codeRow, srcRow, lits, nlit)
		}
		// Interior rows. The per-element work is latency-bound on the
		// reconstruction chain (row[z-1] feeds the next prediction through
		// a divide, a round and two conversions), so rows are processed in
		// wavefront pairs: row y at z and row y+1 at z-2 are independent —
		// row y+1 only reads row y values finished two steps earlier — and
		// the two chains overlap in the pipeline for ~2× the throughput of
		// one. Codes and reconstructions land by index, so only the
		// literal pool is order-sensitive; the pair loop therefore defers
		// literals to a per-row post-pass over the code rows, which also
		// keeps the hot loop free of calls. Scan order of the pool is
		// preserved: row y's literals append before row y+1's, and pairs
		// complete in order.
		y := 1
		for ; y+1 < ny && nz >= 3; y += 2 {
			baseA := pbase + y*sy
			rowA := recon[baseA : baseA+nz]
			rowAY := recon[baseA-sy : baseA]
			rowAX := recon[baseA-sx : baseA-sx+nz]
			rowAXY := recon[baseA-sx-sy : baseA-sx-sy+nz]
			srcA := src[baseA : baseA+nz]
			codeA := codes[baseA : baseA+nz]
			baseB := baseA + sy
			rowB := recon[baseB : baseB+nz]
			// Row B's y-side neighbors are row A itself (same plane) and
			// rowAX (plane x-1, row y).
			rowBX := recon[baseB-sx : baseB-sx+nz]
			srcB := src[baseB : baseB+nz]
			codeB := codes[baseB : baseB+nz]

			// z = 0 boundary elements and row A's two-step head start.
			{
				pred := rowAX[0] + rowAY[0] + zero - rowAXY[0]
				v := srcA[0]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeA[0], rowA[0] = c, r
			}
			{
				pred := rowBX[0] + rowA[0] + zero - rowAX[0]
				v := srcB[0]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeB[0], rowB[0] = c, r
			}
			for z := 1; z < 3 && z < nz; z++ {
				pred := rowAX[z] + rowAY[z] + rowA[z-1] - rowAXY[z] - rowAX[z-1] - rowAY[z-1] + rowAXY[z-1]
				v := srcA[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeA[z], rowA[z] = c, r
			}
			// Steady state: element (y, t) and (y+1, t-2) per iteration,
			// quantizer hand-inlined, no calls, no appends. The previous
			// reconstruction and the z-1 neighbor loads roll through
			// locals, keeping the store queue out of the dependency chain.
			pA, fxA1, fyA1, fxyA1 := rowA[2], rowAX[2], rowAY[2], rowAXY[2]
			pB, fxB1, fyB1, fxyB1 := rowB[0], rowBX[0], rowA[0], rowAX[0]
			for t := 3; t < nz; t++ {
				fxA, fyA, fxyA := rowAX[t], rowAY[t], rowAXY[t]
				predA := fxA + fyA + pA - fxyA - fxA1 - fyA1 + fxyA1
				fxA1, fyA1, fxyA1 = fxA, fyA, fxyA
				vA := srcA[t]
				diffA := float64(vA) - float64(predA)
				qvA := fastRound(diffA / twoEB)
				okA := false
				if math.Abs(qvA) < radiusF {
					r := T(float64(predA) + twoEB*qvA)
					if math.Abs(float64(vA)-float64(r)) <= eb {
						codeA[t] = uint32(int64(qvA) + radius)
						pA = r
						okA = true
					}
				}
				if !okA {
					codeA[t] = 0
					pA = vA
				}
				rowA[t] = pA

				zb := t - 2
				fxB, fyB, fxyB := rowBX[zb], rowA[zb], rowAX[zb]
				predB := fxB + fyB + pB - fxyB - fxB1 - fyB1 + fxyB1
				fxB1, fyB1, fxyB1 = fxB, fyB, fxyB
				vB := srcB[zb]
				diffB := float64(vB) - float64(predB)
				qvB := fastRound(diffB / twoEB)
				okB := false
				if math.Abs(qvB) < radiusF {
					r := T(float64(predB) + twoEB*qvB)
					if math.Abs(float64(vB)-float64(r)) <= eb {
						codeB[zb] = uint32(int64(qvB) + radius)
						pB = r
						okB = true
					}
				}
				if !okB {
					codeB[zb] = 0
					pB = vB
				}
				rowB[zb] = pB
			}
			// Row B's two-step tail.
			for zb := nz - 2; zb < nz; zb++ {
				if zb < 1 {
					continue
				}
				pred := rowBX[zb] + rowA[zb] + rowB[zb-1] - rowAX[zb] - rowBX[zb-1] - rowA[zb-1] + rowAX[zb-1]
				v := srcB[zb]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeB[zb], rowB[zb] = c, r
			}
			// Literal post-pass, in scan order: all of row A, then row B.
			lits, nlit = collectLits(codeA, srcA, lits, nlit)
			lits, nlit = collectLits(codeB, srcB, lits, nlit)
		}
		for ; y < ny; y++ {
			base := pbase + y*sy
			row := recon[base : base+nz]
			rowY := recon[base-sy : base]
			rowX := recon[base-sx : base-sx+nz]
			rowXY := recon[base-sx-sy : base-sx-sy+nz]
			srcRow := src[base : base+nz]
			codeRow := codes[base : base+nz]
			var p T
			// z = 0 boundary element of the interior row.
			{
				pred := rowX[0] + rowY[0] + zero - rowXY[0]
				v := srcRow[0]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeRow[0], row[0], p = c, r, r
			}
			// Branch-free interior: all seven neighbor loads unconditional.
			for z := 1; z < nz; z++ {
				pred := rowX[z] + rowY[z] + p - rowXY[z] - rowX[z-1] - rowY[z-1] + rowXY[z-1]
				v := srcRow[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				codeRow[z], row[z], p = c, r, r
			}
			lits, nlit = collectLits(codeRow, srcRow, lits, nlit)
		}
	}
	return lits, nlit
}

// collectLits appends the exact source values of a row's literal markers
// (code 0) to lits, in element order — the per-row post-pass that keeps
// the compute loops call-free while preserving the literal pool's global
// scan order.
func collectLits[T grid.Float](codeRow []uint32, srcRow []T, lits []byte, nlit int) ([]byte, int) {
	for z, c := range codeRow {
		if c == 0 {
			lits = appendLiteral(lits, srcRow[z])
			nlit++
		}
	}
	return lits, nlit
}

// decodeBlock3 is the decode twin of encodeBlock3: it reconstructs out
// (length d.Count()) from one code per cell, consuming literals from the
// front of lits. The caller has pre-validated the code count and literal
// pool (checkLiterals or the litOff machinery), so there are no
// per-element error paths. It returns the literal bytes consumed.
func decodeBlock3[T grid.Float](out []T, d grid.Dims, codes []uint32, lits []byte, twoEB float64, radius int64) int {
	nx, ny, nz := d.X, d.Y, d.Z
	if nx == 0 || ny == 0 || nz == 0 {
		return 0
	}
	litSize := literalSize[T]()
	lp := 0
	var zero T
	sy := nz
	sx := ny * nz

	{
		row, codeRow := out[:nz], codes[:nz]
		if c := codeRow[0]; c != 0 {
			row[0] = dqstep(c, zero, twoEB, radius)
		} else {
			row[0] = loadLiteral[T](lits[lp:])
			lp += litSize
		}
		for z := 1; z < nz; z++ {
			if c := codeRow[z]; c != 0 {
				row[z] = dqstep(c, zero+row[z-1], twoEB, radius)
			} else {
				row[z] = loadLiteral[T](lits[lp:])
				lp += litSize
			}
		}
	}
	for y := 1; y < ny; y++ {
		base := y * sy
		row := out[base : base+nz]
		rowY := out[base-sy : base]
		codeRow := codes[base : base+nz]
		if c := codeRow[0]; c != 0 {
			row[0] = dqstep(c, zero+rowY[0], twoEB, radius)
		} else {
			row[0] = loadLiteral[T](lits[lp:])
			lp += litSize
		}
		for z := 1; z < nz; z++ {
			if c := codeRow[z]; c != 0 {
				pred := zero + rowY[z] + row[z-1] - rowY[z-1]
				row[z] = dqstep(c, pred, twoEB, radius)
			} else {
				row[z] = loadLiteral[T](lits[lp:])
				lp += litSize
			}
		}
	}

	for x := 1; x < nx; x++ {
		pbase := x * sx
		{
			row := out[pbase : pbase+nz]
			rowX := out[pbase-sx : pbase-sx+nz]
			codeRow := codes[pbase : pbase+nz]
			if c := codeRow[0]; c != 0 {
				row[0] = dqstep(c, rowX[0]+zero, twoEB, radius)
			} else {
				row[0] = loadLiteral[T](lits[lp:])
				lp += litSize
			}
			for z := 1; z < nz; z++ {
				if c := codeRow[z]; c != 0 {
					pred := rowX[z] + zero + row[z-1] - rowX[z-1]
					row[z] = dqstep(c, pred, twoEB, radius)
				} else {
					row[z] = loadLiteral[T](lits[lp:])
					lp += litSize
				}
			}
		}
		// Interior rows decode in the same wavefront pairs as the encode
		// kernel (see encodeBlock3): row y at t and row y+1 at t-2 form two
		// independent reconstruction chains. The literal pool is consumed
		// in scan order, so each row gets its own cursor — row y+1's
		// starts after every literal marker of row y, counted up front
		// from the code rows.
		y := 1
		for ; y+1 < ny && nz >= 3; y += 2 {
			baseA := pbase + y*sy
			rowA := out[baseA : baseA+nz]
			rowAY := out[baseA-sy : baseA]
			rowAX := out[baseA-sx : baseA-sx+nz]
			rowAXY := out[baseA-sx-sy : baseA-sx-sy+nz]
			codeA := codes[baseA : baseA+nz]
			baseB := baseA + sy
			rowB := out[baseB : baseB+nz]
			rowBX := out[baseB-sx : baseB-sx+nz]
			codeB := codes[baseB : baseB+nz]

			zerosA, zerosB := 0, 0
			for _, c := range codeA {
				if c == 0 {
					zerosA++
				}
			}
			for _, c := range codeB {
				if c == 0 {
					zerosB++
				}
			}
			lpA := lp
			lpB := lp + zerosA*litSize
			lp = lpB + zerosB*litSize

			if c := codeA[0]; c != 0 {
				rowA[0] = dqstep(c, rowAX[0]+rowAY[0]+zero-rowAXY[0], twoEB, radius)
			} else {
				rowA[0] = loadLiteral[T](lits[lpA:])
				lpA += litSize
			}
			if c := codeB[0]; c != 0 {
				rowB[0] = dqstep(c, rowBX[0]+rowA[0]+zero-rowAX[0], twoEB, radius)
			} else {
				rowB[0] = loadLiteral[T](lits[lpB:])
				lpB += litSize
			}
			for z := 1; z < 3 && z < nz; z++ {
				if c := codeA[z]; c != 0 {
					pred := rowAX[z] + rowAY[z] + rowA[z-1] - rowAXY[z] - rowAX[z-1] - rowAY[z-1] + rowAXY[z-1]
					rowA[z] = dqstep(c, pred, twoEB, radius)
				} else {
					rowA[z] = loadLiteral[T](lits[lpA:])
					lpA += litSize
				}
			}
			pA, fxA1, fyA1, fxyA1 := rowA[2], rowAX[2], rowAY[2], rowAXY[2]
			pB, fxB1, fyB1, fxyB1 := rowB[0], rowBX[0], rowA[0], rowAX[0]
			for t := 3; t < nz; t++ {
				fxA, fyA, fxyA := rowAX[t], rowAY[t], rowAXY[t]
				if c := codeA[t]; c != 0 {
					pred := fxA + fyA + pA - fxyA - fxA1 - fyA1 + fxyA1
					pA = dqstep(c, pred, twoEB, radius)
				} else {
					pA = loadLiteral[T](lits[lpA:])
					lpA += litSize
				}
				rowA[t] = pA
				fxA1, fyA1, fxyA1 = fxA, fyA, fxyA

				zb := t - 2
				fxB, fyB, fxyB := rowBX[zb], rowA[zb], rowAX[zb]
				if c := codeB[zb]; c != 0 {
					pred := fxB + fyB + pB - fxyB - fxB1 - fyB1 + fxyB1
					pB = dqstep(c, pred, twoEB, radius)
				} else {
					pB = loadLiteral[T](lits[lpB:])
					lpB += litSize
				}
				rowB[zb] = pB
				fxB1, fyB1, fxyB1 = fxB, fyB, fxyB
			}
			for zb := nz - 2; zb < nz; zb++ {
				if zb < 1 {
					continue
				}
				if c := codeB[zb]; c != 0 {
					pred := rowBX[zb] + rowA[zb] + rowB[zb-1] - rowAX[zb] - rowBX[zb-1] - rowA[zb-1] + rowAX[zb-1]
					rowB[zb] = dqstep(c, pred, twoEB, radius)
				} else {
					rowB[zb] = loadLiteral[T](lits[lpB:])
					lpB += litSize
				}
			}
		}
		for ; y < ny; y++ {
			base := pbase + y*sy
			row := out[base : base+nz]
			rowY := out[base-sy : base]
			rowX := out[base-sx : base-sx+nz]
			rowXY := out[base-sx-sy : base-sx-sy+nz]
			codeRow := codes[base : base+nz]
			if c := codeRow[0]; c != 0 {
				row[0] = dqstep(c, rowX[0]+rowY[0]+zero-rowXY[0], twoEB, radius)
			} else {
				row[0] = loadLiteral[T](lits[lp:])
				lp += litSize
			}
			for z := 1; z < nz; z++ {
				if c := codeRow[z]; c != 0 {
					pred := rowX[z] + rowY[z] + row[z-1] - rowXY[z] - rowX[z-1] - rowY[z-1] + rowXY[z-1]
					row[z] = dqstep(c, pred, twoEB, radius)
				} else {
					row[z] = loadLiteral[T](lits[lp:])
					lp += litSize
				}
			}
		}
	}
	return lp
}

// encodeBlock2 is the boundary-peeled 2D kernel (nx×ny, y fastest), the
// x=0 row and y=0 column peeled off a branch-free interior.
func encodeBlock2[T grid.Float](src, recon []T, nx, ny int, codes []uint32, lits []byte, eb float64, radius int64) ([]byte, int) {
	if nx == 0 || ny == 0 {
		return lits, 0
	}
	twoEB := 2 * eb
	radiusF := float64(radius)
	nlit := 0
	var zero T

	{
		row, srcRow, codeRow := recon[:ny], src[:ny], codes[:ny]
		p := zero
		{
			v := srcRow[0]
			diff := float64(v) - float64(p)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(p) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[0], row[0], p = c, r, r
		}
		for y := 1; y < ny; y++ {
			pred := zero + p
			v := srcRow[y]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[y], row[y], p = c, r, r
		}
		lits, nlit = collectLits(codeRow, srcRow, lits, nlit)
	}
	for x := 1; x < nx; x++ {
		base := x * ny
		row := recon[base : base+ny]
		rowX := recon[base-ny : base]
		srcRow := src[base : base+ny]
		codeRow := codes[base : base+ny]
		var p T
		{
			pred := rowX[0] + zero
			v := srcRow[0]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[0], row[0], p = c, r, r
		}
		// Branch-free interior with the quantizer hand-inlined.
		for y := 1; y < ny; y++ {
			pred := rowX[y] + p - rowX[y-1]
			v := srcRow[y]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			codeRow[y], row[y], p = c, r, r
		}
		lits, nlit = collectLits(codeRow, srcRow, lits, nlit)
	}
	return lits, nlit
}

// decodeBlock2 is the decode twin of encodeBlock2. Pre-validated like
// decodeBlock3; returns the literal bytes consumed.
func decodeBlock2[T grid.Float](out []T, nx, ny int, codes []uint32, lits []byte, twoEB float64, radius int64) int {
	if nx == 0 || ny == 0 {
		return 0
	}
	litSize := literalSize[T]()
	lp := 0
	var zero T

	{
		row, codeRow := out[:ny], codes[:ny]
		if c := codeRow[0]; c != 0 {
			row[0] = dqstep(c, zero, twoEB, radius)
		} else {
			row[0] = loadLiteral[T](lits[lp:])
			lp += litSize
		}
		for y := 1; y < ny; y++ {
			if c := codeRow[y]; c != 0 {
				row[y] = dqstep(c, zero+row[y-1], twoEB, radius)
			} else {
				row[y] = loadLiteral[T](lits[lp:])
				lp += litSize
			}
		}
	}
	for x := 1; x < nx; x++ {
		base := x * ny
		row := out[base : base+ny]
		rowX := out[base-ny : base]
		codeRow := codes[base : base+ny]
		if c := codeRow[0]; c != 0 {
			row[0] = dqstep(c, rowX[0]+zero, twoEB, radius)
		} else {
			row[0] = loadLiteral[T](lits[lp:])
			lp += litSize
		}
		for y := 1; y < ny; y++ {
			if c := codeRow[y]; c != 0 {
				pred := rowX[y] + row[y-1] - rowX[y-1]
				row[y] = dqstep(c, pred, twoEB, radius)
			} else {
				row[y] = loadLiteral[T](lits[lp:])
				lp += litSize
			}
		}
	}
	return lp
}

// encodeStream1 is the 1D kernel: order-1 prediction from the previous
// reconstruction, codes written by index.
func encodeStream1[T grid.Float](values []T, codes []uint32, lits []byte, eb float64, radius int64) ([]byte, int) {
	twoEB := 2 * eb
	radiusF := float64(radius)
	nlit := 0
	var prev T
	for i, v := range values {
		diff := float64(v) - float64(prev)
		qv := fastRound(diff / twoEB)
		if math.Abs(qv) < radiusF {
			r := T(float64(prev) + twoEB*qv)
			if math.Abs(float64(v)-float64(r)) <= eb {
				codes[i] = uint32(int64(qv) + radius)
				prev = r
				continue
			}
		}
		codes[i] = 0
		lits = appendLiteral(lits, v)
		nlit++
		prev = v
	}
	return lits, nlit
}

// decodeStream1 is the decode twin of encodeStream1 (pre-validated).
func decodeStream1[T grid.Float](out []T, codes []uint32, lits []byte, twoEB float64, radius int64) int {
	litSize := literalSize[T]()
	lp := 0
	var prev T
	for i, c := range codes {
		var v T
		if c != 0 {
			v = dqstep(c, prev, twoEB, radius)
		} else {
			v = loadLiteral[T](lits[lp:])
			lp += litSize
		}
		out[i] = v
		prev = v
	}
	return lp
}

// quantRadius maps QuantBits to the code-space radius both kernels use.
func quantRadius(quantBits int) int64 { return int64(1) << (quantBits - 1) }

// Predict3D runs only the Lorenzo prediction/quantization stage over g —
// the entropy and DEFLATE stages are skipped — returning the quantization
// codes, literal pool and literal count. The returned slices alias the
// encoder's scratch and stay valid until its next call; the predictor
// benchmarks use this to measure the kernel in isolation.
func (e *Encoder[T]) Predict3D(g *grid.Grid3[T], opts Options) ([]uint32, []byte, int, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, 0, err
	}
	eb := effectiveEB(g.Data, opts)
	codes := e.codesBuf(len(g.Data))
	recon := e.reconBuf(len(g.Data))
	lits, nlit := encodeBlock3(g.Data, recon, g.Dim, codes, e.lits[:0], eb, quantRadius(opts.QuantBits))
	e.lits = lits[:0]
	return codes, lits, nlit, nil
}

// Reconstruct3D inverts Predict3D into out, which supplies the geometry.
// opts must carry the same (effective) ErrorBound and QuantBits the codes
// were produced with; the code count and literal pool are validated once
// before the branch-free kernel runs.
func Reconstruct3D[T grid.Float](out *grid.Grid3[T], codes []uint32, lits []byte, opts Options) error {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return err
	}
	if len(codes) != out.Dim.Count() {
		return fmt.Errorf("sz: %d codes for %d values", len(codes), out.Dim.Count())
	}
	if err := checkLiterals[T](codes, lits); err != nil {
		return err
	}
	decodeBlock3(out.Data, out.Dim, codes, lits, 2*opts.ErrorBound, quantRadius(opts.QuantBits))
	return nil
}

// ExtractCodesInto is ExtractCodes on a pooled decoder (benchmarks use it
// to isolate the entropy stage without allocation noise).
func ExtractCodesInto[T grid.Float](d *Decoder[T], blob []byte) error {
	_, _, _, err := d.unseal(blob, -1)
	return err
}
