package sz

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/grid"
)

// fuzzSeeds builds one valid payload of every kind (plus a lossless-off
// variant) so the fuzzer starts from structurally plausible inputs; the
// same seeds are checked in under testdata/fuzz for deterministic CI runs.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte

	vals := make([]float32, 257)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 9))
	}
	b1, _, err := Compress1D(vals, Options{ErrorBound: 1e-2})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, b1)

	g := grid.NewCube[float32](6)
	for i := range g.Data {
		g.Data[i] = vals[i%len(vals)]
	}
	b3, _, err := Compress3D(g, Options{ErrorBound: 1e-2})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, b3)

	blocks := []*grid.Grid3[float32]{g.Clone(), g.Clone(), g.Clone()}
	blocks[1].Data[7] = 1e30 // force a literal
	bb, _, err := CompressBlocks(blocks, Options{ErrorBound: 1e-2})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, bb)

	raw, _, err := CompressBlocks(blocks, Options{ErrorBound: 1e-2, DisableLossless: true})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, raw)

	b2, _, err := Compress2D(vals[:240], 16, 15, Options{ErrorBound: 1e-2})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, b2)

	// A temporal (kindBatchDelta) payload: blocks predicted from a drifted
	// reference snapshot, exercising the delta decode surface.
	refs := make([]*grid.Grid3[float32], len(blocks))
	for i, b := range blocks {
		r := b.Clone()
		for j := range r.Data {
			r.Data[j] += 0.03
		}
		refs[i] = r
	}
	bd, _, err := CompressBlocksDelta(blocks, refs, Options{ErrorBound: 1e-2})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, bd)
	return seeds
}

// TestWriteDeltaSeedCorpus writes the temporal-payload seeds into the
// checked-in corpora under testdata/fuzz when UPDATE_FUZZ_SEEDS=1 is set
// (a no-op otherwise), so CI's deterministic fuzz runs cover the delta
// decode path without relying on in-process f.Add ordering.
func TestWriteDeltaSeedCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_SEEDS") == "" {
		t.Skip("set UPDATE_FUZZ_SEEDS=1 to rewrite testdata/fuzz delta seeds")
	}
	seeds := fuzzSeeds(t)
	delta := seeds[len(seeds)-1] // the kindBatchDelta payload is appended last
	write := func(dir, name string, data []byte) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(dir+"/"+name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("testdata/fuzz/FuzzParseHeader", "seed_delta0", delta)
	write("testdata/fuzz/FuzzDecompress", "seed_delta0", delta)
	write("testdata/fuzz/FuzzDecompress", "seed_delta1", delta[:len(delta)-3]) // torn tail
	mut := append([]byte(nil), delta...)
	mut[len(mut)/3] ^= 0x40
	write("testdata/fuzz/FuzzDecompress", "seed_delta2", mut) // bit-flipped body
}

// FuzzParseHeader fuzzes the header parser and the header-only PeekBatch
// path: no input may panic or claim implausible geometry that would make a
// caller over-allocate.
func FuzzParseHeader(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
		if len(s) > 4 {
			f.Add(s[:len(s)/2]) // truncated
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, _, err := parseHeader(data)
		if err == nil {
			if h.n < 0 || h.n > 1<<40 {
				t.Fatalf("parseHeader accepted implausible n=%d", h.n)
			}
			for _, d := range h.dims {
				if d.X < 0 || d.Y < 0 || d.Z < 0 || d.X > 1<<40 || d.Y > 1<<40 || d.Z > 1<<40 {
					t.Fatalf("parseHeader accepted implausible dims %v", d)
				}
			}
		}
		if info, err := PeekBatch(data); err == nil {
			if info.Blocks <= 0 || info.BlockDims.Count() <= 0 {
				t.Fatalf("PeekBatch accepted implausible geometry %+v", info)
			}
		}
	})
}

// FuzzDecompress fuzzes the full unseal + entropy decode + reconstruction
// paths of every payload kind, serial and parallel, in both element
// widths. Corrupt inputs must error (or round-trip), never panic or
// over-allocate.
func FuzzDecompress(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
		if len(s) > 8 {
			mut := append([]byte(nil), s...)
			mut[len(mut)/3] ^= 0x40 // bit-flipped body
			f.Add(mut)
			f.Add(s[:len(s)-3]) // truncated tail
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress1D[float32](data)
		_, _ = Decompress1D[float64](data)
		_, _, _, _ = Decompress2D[float32](data)
		_, _ = Decompress3D[float32](data)
		_, _ = DecompressBlocks[float32](data)
		_, _ = DecompressBlocksParallel[float32](data, 3)
		_, _ = DecompressBlocksParallel[float64](data, 2)
		// Delta decode with a reference batch matching whatever geometry the
		// payload claims (bounded), so corrupt bodies reach the temporal
		// kernel rather than dying at the shape check.
		if info, err := PeekBatch(data); err == nil &&
			info.Blocks <= 64 && info.BlockDims.Count() <= 4096 {
			refs := grid.NewBlocks[float32](info.BlockDims, info.Blocks)
			_, _ = DecompressBlocksDelta(data, refs)
		}
	})
}
