package sz

import (
	"math"

	"repro/internal/grid"
)

// Quad-block kernels. The blocks of a batch never see each other's
// reconstructions, so their dependency chains are fully independent; the
// batch paths exploit that by walking four same-shaped blocks in lock
// step, one element position per iteration with four hand-unrolled
// bodies. Unlike the within-block wavefront in kernel.go — which only
// overlaps two chains and only in row interiors — the quad walk gets
// four-chain instruction-level parallelism on every element including
// the boundary planes, which dominate the small unit blocks the AMR
// extraction produces. The per-element arithmetic is identical to the
// single-block kernels (same formulas, same evaluation order), so
// payloads and reconstructions stay bit-identical; the golden tests and
// the batch-equivalence suite pin that.
//
// Literal-pool ordering: the pool is laid out block after block, so the
// encode side emits no literals during the walk (the caller post-passes
// each block's code array, in block order, via collectLits) and the
// decode side reads through four absolute cursors precomputed from the
// per-block literal counts (the litOff scan).

// encodeBlockQuad encodes four same-shaped blocks in lock step. The
// recon slices must be zeroed, the code slices presized to d.Count().
// Literals are NOT appended here — callers post-pass the code arrays.
func encodeBlockQuad[T grid.Float](s0, s1, s2, s3, r0, r1, r2, r3 []T, d grid.Dims, c0, c1, c2, c3 []uint32, eb float64, radius int64) {
	nx, ny, nz := d.X, d.Y, d.Z
	if nx == 0 || ny == 0 || nz == 0 {
		return
	}
	twoEB := 2 * eb
	radiusF := float64(radius)
	var zero T
	sy := nz
	sx := ny * nz

	var p0, p1, p2, p3 T

	// Row (0,0,*).
	{
		{
			v := s0[0]
			diff := float64(v) - float64(zero)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(zero) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c0[0], r0[0], p0 = c, r, r
		}
		{
			v := s1[0]
			diff := float64(v) - float64(zero)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(zero) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c1[0], r1[0], p1 = c, r, r
		}
		{
			v := s2[0]
			diff := float64(v) - float64(zero)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(zero) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c2[0], r2[0], p2 = c, r, r
		}
		{
			v := s3[0]
			diff := float64(v) - float64(zero)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(zero) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c3[0], r3[0], p3 = c, r, r
		}
		for z := 1; z < nz; z++ {
			{
				pred := zero + p0
				v := s0[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c0[z], r0[z], p0 = c, r, r
			}
			{
				pred := zero + p1
				v := s1[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c1[z], r1[z], p1 = c, r, r
			}
			{
				pred := zero + p2
				v := s2[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c2[z], r2[z], p2 = c, r, r
			}
			{
				pred := zero + p3
				v := s3[z]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c3[z], r3[z], p3 = c, r, r
			}
		}
	}

	// Rows (0,y,*): the rest of the x=0 face.
	for y := 1; y < ny; y++ {
		base := y * sy
		{
			pred := zero + r0[base-sy]
			v := s0[base]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c0[base], r0[base], p0 = c, r, r
		}
		{
			pred := zero + r1[base-sy]
			v := s1[base]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c1[base], r1[base], p1 = c, r, r
		}
		{
			pred := zero + r2[base-sy]
			v := s2[base]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c2[base], r2[base], p2 = c, r, r
		}
		{
			pred := zero + r3[base-sy]
			v := s3[base]
			diff := float64(v) - float64(pred)
			qv := fastRound(diff / twoEB)
			c, r := uint32(0), v
			if math.Abs(qv) < radiusF {
				if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
					c, r = uint32(int64(qv)+radius), rr
				}
			}
			c3[base], r3[base], p3 = c, r, r
		}
		for z := 1; z < nz; z++ {
			i := base + z
			{
				pred := zero + r0[i-sy] + p0 - r0[i-sy-1]
				v := s0[i]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c0[i], r0[i], p0 = c, r, r
			}
			{
				pred := zero + r1[i-sy] + p1 - r1[i-sy-1]
				v := s1[i]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c1[i], r1[i], p1 = c, r, r
			}
			{
				pred := zero + r2[i-sy] + p2 - r2[i-sy-1]
				v := s2[i]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c2[i], r2[i], p2 = c, r, r
			}
			{
				pred := zero + r3[i-sy] + p3 - r3[i-sy-1]
				v := s3[i]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c3[i], r3[i], p3 = c, r, r
			}
		}
	}

	for x := 1; x < nx; x++ {
		pbase := x * sx
		// Row (x,0,*).
		{
			{
				pred := r0[pbase-sx] + zero
				v := s0[pbase]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c0[pbase], r0[pbase], p0 = c, r, r
			}
			{
				pred := r1[pbase-sx] + zero
				v := s1[pbase]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c1[pbase], r1[pbase], p1 = c, r, r
			}
			{
				pred := r2[pbase-sx] + zero
				v := s2[pbase]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c2[pbase], r2[pbase], p2 = c, r, r
			}
			{
				pred := r3[pbase-sx] + zero
				v := s3[pbase]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c3[pbase], r3[pbase], p3 = c, r, r
			}
			for z := 1; z < nz; z++ {
				i := pbase + z
				{
					pred := r0[i-sx] + zero + p0 - r0[i-sx-1]
					v := s0[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c0[i], r0[i], p0 = c, r, r
				}
				{
					pred := r1[i-sx] + zero + p1 - r1[i-sx-1]
					v := s1[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c1[i], r1[i], p1 = c, r, r
				}
				{
					pred := r2[i-sx] + zero + p2 - r2[i-sx-1]
					v := s2[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c2[i], r2[i], p2 = c, r, r
				}
				{
					pred := r3[i-sx] + zero + p3 - r3[i-sx-1]
					v := s3[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c3[i], r3[i], p3 = c, r, r
				}
			}
		}
		// Rows (x,y,*): interior rows of the plane.
		for y := 1; y < ny; y++ {
			base := pbase + y*sy
			{
				pred := r0[base-sx] + r0[base-sy] + zero - r0[base-sx-sy]
				v := s0[base]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c0[base], r0[base], p0 = c, r, r
			}
			{
				pred := r1[base-sx] + r1[base-sy] + zero - r1[base-sx-sy]
				v := s1[base]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c1[base], r1[base], p1 = c, r, r
			}
			{
				pred := r2[base-sx] + r2[base-sy] + zero - r2[base-sx-sy]
				v := s2[base]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c2[base], r2[base], p2 = c, r, r
			}
			{
				pred := r3[base-sx] + r3[base-sy] + zero - r3[base-sx-sy]
				v := s3[base]
				diff := float64(v) - float64(pred)
				qv := fastRound(diff / twoEB)
				c, r := uint32(0), v
				if math.Abs(qv) < radiusF {
					if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
						c, r = uint32(int64(qv)+radius), rr
					}
				}
				c3[base], r3[base], p3 = c, r, r
			}
			for z := 1; z < nz; z++ {
				i := base + z
				{
					pred := r0[i-sx] + r0[i-sy] + p0 - r0[i-sx-sy] - r0[i-sx-1] - r0[i-sy-1] + r0[i-sx-sy-1]
					v := s0[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c0[i], r0[i], p0 = c, r, r
				}
				{
					pred := r1[i-sx] + r1[i-sy] + p1 - r1[i-sx-sy] - r1[i-sx-1] - r1[i-sy-1] + r1[i-sx-sy-1]
					v := s1[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c1[i], r1[i], p1 = c, r, r
				}
				{
					pred := r2[i-sx] + r2[i-sy] + p2 - r2[i-sx-sy] - r2[i-sx-1] - r2[i-sy-1] + r2[i-sx-sy-1]
					v := s2[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c2[i], r2[i], p2 = c, r, r
				}
				{
					pred := r3[i-sx] + r3[i-sy] + p3 - r3[i-sx-sy] - r3[i-sx-1] - r3[i-sy-1] + r3[i-sx-sy-1]
					v := s3[i]
					diff := float64(v) - float64(pred)
					qv := fastRound(diff / twoEB)
					c, r := uint32(0), v
					if math.Abs(qv) < radiusF {
						if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
							c, r = uint32(int64(qv)+radius), rr
						}
					}
					c3[i], r3[i], p3 = c, r, r
				}
			}
		}
	}
}

// decodeBlockQuad decodes four same-shaped blocks in lock step. The
// literal cursors l0..l3 are absolute offsets into lits, precomputed by
// the caller's litOff scan (which also validated the pool size).
func decodeBlockQuad[T grid.Float](o0, o1, o2, o3 []T, d grid.Dims, c0, c1, c2, c3 []uint32, lits []byte, l0, l1, l2, l3 int, twoEB float64, radius int64) {
	nx, ny, nz := d.X, d.Y, d.Z
	if nx == 0 || ny == 0 || nz == 0 {
		return
	}
	litSize := literalSize[T]()
	var zero T
	sy := nz
	sx := ny * nz

	var p0, p1, p2, p3 T

	// Row (0,0,*).
	{
		if c := c0[0]; c != 0 {
			p0 = dqstep(c, zero, twoEB, radius)
		} else {
			p0 = loadLiteral[T](lits[l0:])
			l0 += litSize
		}
		o0[0] = p0
		if c := c1[0]; c != 0 {
			p1 = dqstep(c, zero, twoEB, radius)
		} else {
			p1 = loadLiteral[T](lits[l1:])
			l1 += litSize
		}
		o1[0] = p1
		if c := c2[0]; c != 0 {
			p2 = dqstep(c, zero, twoEB, radius)
		} else {
			p2 = loadLiteral[T](lits[l2:])
			l2 += litSize
		}
		o2[0] = p2
		if c := c3[0]; c != 0 {
			p3 = dqstep(c, zero, twoEB, radius)
		} else {
			p3 = loadLiteral[T](lits[l3:])
			l3 += litSize
		}
		o3[0] = p3
		for z := 1; z < nz; z++ {
			if c := c0[z]; c != 0 {
				p0 = dqstep(c, zero+p0, twoEB, radius)
			} else {
				p0 = loadLiteral[T](lits[l0:])
				l0 += litSize
			}
			o0[z] = p0
			if c := c1[z]; c != 0 {
				p1 = dqstep(c, zero+p1, twoEB, radius)
			} else {
				p1 = loadLiteral[T](lits[l1:])
				l1 += litSize
			}
			o1[z] = p1
			if c := c2[z]; c != 0 {
				p2 = dqstep(c, zero+p2, twoEB, radius)
			} else {
				p2 = loadLiteral[T](lits[l2:])
				l2 += litSize
			}
			o2[z] = p2
			if c := c3[z]; c != 0 {
				p3 = dqstep(c, zero+p3, twoEB, radius)
			} else {
				p3 = loadLiteral[T](lits[l3:])
				l3 += litSize
			}
			o3[z] = p3
		}
	}

	// Rows (0,y,*).
	for y := 1; y < ny; y++ {
		base := y * sy
		if c := c0[base]; c != 0 {
			p0 = dqstep(c, zero+o0[base-sy], twoEB, radius)
		} else {
			p0 = loadLiteral[T](lits[l0:])
			l0 += litSize
		}
		o0[base] = p0
		if c := c1[base]; c != 0 {
			p1 = dqstep(c, zero+o1[base-sy], twoEB, radius)
		} else {
			p1 = loadLiteral[T](lits[l1:])
			l1 += litSize
		}
		o1[base] = p1
		if c := c2[base]; c != 0 {
			p2 = dqstep(c, zero+o2[base-sy], twoEB, radius)
		} else {
			p2 = loadLiteral[T](lits[l2:])
			l2 += litSize
		}
		o2[base] = p2
		if c := c3[base]; c != 0 {
			p3 = dqstep(c, zero+o3[base-sy], twoEB, radius)
		} else {
			p3 = loadLiteral[T](lits[l3:])
			l3 += litSize
		}
		o3[base] = p3
		for z := 1; z < nz; z++ {
			i := base + z
			if c := c0[i]; c != 0 {
				pred := zero + o0[i-sy] + p0 - o0[i-sy-1]
				p0 = dqstep(c, pred, twoEB, radius)
			} else {
				p0 = loadLiteral[T](lits[l0:])
				l0 += litSize
			}
			o0[i] = p0
			if c := c1[i]; c != 0 {
				pred := zero + o1[i-sy] + p1 - o1[i-sy-1]
				p1 = dqstep(c, pred, twoEB, radius)
			} else {
				p1 = loadLiteral[T](lits[l1:])
				l1 += litSize
			}
			o1[i] = p1
			if c := c2[i]; c != 0 {
				pred := zero + o2[i-sy] + p2 - o2[i-sy-1]
				p2 = dqstep(c, pred, twoEB, radius)
			} else {
				p2 = loadLiteral[T](lits[l2:])
				l2 += litSize
			}
			o2[i] = p2
			if c := c3[i]; c != 0 {
				pred := zero + o3[i-sy] + p3 - o3[i-sy-1]
				p3 = dqstep(c, pred, twoEB, radius)
			} else {
				p3 = loadLiteral[T](lits[l3:])
				l3 += litSize
			}
			o3[i] = p3
		}
	}

	for x := 1; x < nx; x++ {
		pbase := x * sx
		// Row (x,0,*).
		{
			if c := c0[pbase]; c != 0 {
				p0 = dqstep(c, o0[pbase-sx]+zero, twoEB, radius)
			} else {
				p0 = loadLiteral[T](lits[l0:])
				l0 += litSize
			}
			o0[pbase] = p0
			if c := c1[pbase]; c != 0 {
				p1 = dqstep(c, o1[pbase-sx]+zero, twoEB, radius)
			} else {
				p1 = loadLiteral[T](lits[l1:])
				l1 += litSize
			}
			o1[pbase] = p1
			if c := c2[pbase]; c != 0 {
				p2 = dqstep(c, o2[pbase-sx]+zero, twoEB, radius)
			} else {
				p2 = loadLiteral[T](lits[l2:])
				l2 += litSize
			}
			o2[pbase] = p2
			if c := c3[pbase]; c != 0 {
				p3 = dqstep(c, o3[pbase-sx]+zero, twoEB, radius)
			} else {
				p3 = loadLiteral[T](lits[l3:])
				l3 += litSize
			}
			o3[pbase] = p3
			for z := 1; z < nz; z++ {
				i := pbase + z
				if c := c0[i]; c != 0 {
					pred := o0[i-sx] + zero + p0 - o0[i-sx-1]
					p0 = dqstep(c, pred, twoEB, radius)
				} else {
					p0 = loadLiteral[T](lits[l0:])
					l0 += litSize
				}
				o0[i] = p0
				if c := c1[i]; c != 0 {
					pred := o1[i-sx] + zero + p1 - o1[i-sx-1]
					p1 = dqstep(c, pred, twoEB, radius)
				} else {
					p1 = loadLiteral[T](lits[l1:])
					l1 += litSize
				}
				o1[i] = p1
				if c := c2[i]; c != 0 {
					pred := o2[i-sx] + zero + p2 - o2[i-sx-1]
					p2 = dqstep(c, pred, twoEB, radius)
				} else {
					p2 = loadLiteral[T](lits[l2:])
					l2 += litSize
				}
				o2[i] = p2
				if c := c3[i]; c != 0 {
					pred := o3[i-sx] + zero + p3 - o3[i-sx-1]
					p3 = dqstep(c, pred, twoEB, radius)
				} else {
					p3 = loadLiteral[T](lits[l3:])
					l3 += litSize
				}
				o3[i] = p3
			}
		}
		// Rows (x,y,*).
		for y := 1; y < ny; y++ {
			base := pbase + y*sy
			if c := c0[base]; c != 0 {
				pred := o0[base-sx] + o0[base-sy] + zero - o0[base-sx-sy]
				p0 = dqstep(c, pred, twoEB, radius)
			} else {
				p0 = loadLiteral[T](lits[l0:])
				l0 += litSize
			}
			o0[base] = p0
			if c := c1[base]; c != 0 {
				pred := o1[base-sx] + o1[base-sy] + zero - o1[base-sx-sy]
				p1 = dqstep(c, pred, twoEB, radius)
			} else {
				p1 = loadLiteral[T](lits[l1:])
				l1 += litSize
			}
			o1[base] = p1
			if c := c2[base]; c != 0 {
				pred := o2[base-sx] + o2[base-sy] + zero - o2[base-sx-sy]
				p2 = dqstep(c, pred, twoEB, radius)
			} else {
				p2 = loadLiteral[T](lits[l2:])
				l2 += litSize
			}
			o2[base] = p2
			if c := c3[base]; c != 0 {
				pred := o3[base-sx] + o3[base-sy] + zero - o3[base-sx-sy]
				p3 = dqstep(c, pred, twoEB, radius)
			} else {
				p3 = loadLiteral[T](lits[l3:])
				l3 += litSize
			}
			o3[base] = p3
			for z := 1; z < nz; z++ {
				i := base + z
				if c := c0[i]; c != 0 {
					pred := o0[i-sx] + o0[i-sy] + p0 - o0[i-sx-sy] - o0[i-sx-1] - o0[i-sy-1] + o0[i-sx-sy-1]
					p0 = dqstep(c, pred, twoEB, radius)
				} else {
					p0 = loadLiteral[T](lits[l0:])
					l0 += litSize
				}
				o0[i] = p0
				if c := c1[i]; c != 0 {
					pred := o1[i-sx] + o1[i-sy] + p1 - o1[i-sx-sy] - o1[i-sx-1] - o1[i-sy-1] + o1[i-sx-sy-1]
					p1 = dqstep(c, pred, twoEB, radius)
				} else {
					p1 = loadLiteral[T](lits[l1:])
					l1 += litSize
				}
				o1[i] = p1
				if c := c2[i]; c != 0 {
					pred := o2[i-sx] + o2[i-sy] + p2 - o2[i-sx-sy] - o2[i-sx-1] - o2[i-sy-1] + o2[i-sx-sy-1]
					p2 = dqstep(c, pred, twoEB, radius)
				} else {
					p2 = loadLiteral[T](lits[l2:])
					l2 += litSize
				}
				o2[i] = p2
				if c := c3[i]; c != 0 {
					pred := o3[i-sx] + o3[i-sy] + p3 - o3[i-sx-sy] - o3[i-sx-1] - o3[i-sy-1] + o3[i-sx-sy-1]
					p3 = dqstep(c, pred, twoEB, radius)
				} else {
					p3 = loadLiteral[T](lits[l3:])
					l3 += litSize
				}
				o3[i] = p3
			}
		}
	}
}
