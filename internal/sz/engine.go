package sz

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/bitio"
	"repro/internal/grid"
	"repro/internal/huffman"
)

// The pooled engine. Every one-shot Compress*/Decompress* call allocates
// fresh code streams, reconstruction grids, Huffman tables and DEFLATE
// coders; on repeated-snapshot campaigns (the archive writer, benchall,
// services compressing a stream of members) that allocation dominates the
// small-block hot path. Encoder and Decoder keep all of that scratch alive
// across calls, and the process-wide DEFLATE coder pools are shared even by
// the one-shot entry points. Payloads are byte-identical to the one-shot
// functions in both directions.

// flateWriters pools DEFLATE writers (each ~600 KiB of window state, the
// single most expensive allocation of a Compress call).
var flateWriters = sync.Pool{
	New: func() any {
		fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // only fails for invalid levels
		}
		return fw
	},
}

// flateReaders pools DEFLATE readers via flate.Resetter.
var flateReaders = sync.Pool{
	New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	},
}

// sliceWriter adapts an append-grown []byte to io.Writer for the pooled
// flate writers.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// deflateAppend DEFLATEs data and appends the result to dst.
func deflateAppend(dst, data []byte) ([]byte, error) {
	fw := flateWriters.Get().(*flate.Writer)
	defer func() {
		// Detach the destination before pooling, so an idle writer does not
		// pin the caller's staging buffer for the process lifetime.
		fw.Reset(io.Discard)
		flateWriters.Put(fw)
	}()
	sw := sliceWriter{b: dst}
	fw.Reset(&sw)
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return sw.b, nil
}

// inflateAppend inflates data and appends the result to dst.
func inflateAppend(dst, data []byte) ([]byte, error) {
	fr := flateReaders.Get().(io.ReadCloser)
	defer func() {
		// Detach the source before pooling so an idle reader does not pin
		// the caller's payload.
		fr.(flate.Resetter).Reset(bytes.NewReader(nil), nil)
		flateReaders.Put(fr)
	}()
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(data), nil); err != nil {
		return nil, fmt.Errorf("sz: inflating section: %w", err)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := fr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sz: inflating section: %w", err)
		}
	}
}

// Encoder is a reusable compression engine. It owns the quantization-code
// buffer, literal pool, reconstruction grid, Huffman scratch and payload
// staging buffers, reusing them across calls so that steady-state
// compression allocates only the returned payload.
//
// The zero value is ready to use. An Encoder is not safe for concurrent
// use; use one per goroutine (they are cheap once warm) or guard with a
// sync.Pool.
type Encoder[T grid.Float] struct {
	codes []uint32
	lits  []byte
	recon []T
	huff  huffman.Encoder

	huffBuf []byte // raw huffman blob staging
	deflBuf []byte // deflated section staging
	metas   []blockMeta
}

// NewEncoder returns an empty Encoder; scratch grows on first use.
func NewEncoder[T grid.Float]() *Encoder[T] { return &Encoder[T]{} }

// reconBuf returns the pooled reconstruction scratch, length n, zeroed.
func (e *Encoder[T]) reconBuf(n int) []T {
	if cap(e.recon) < n {
		e.recon = make([]T, n)
	}
	r := e.recon[:n]
	clear(r)
	return r
}

// codesBuf returns the pooled code buffer presized to exactly n entries,
// so the kernels write codes by index with no append growth.
func (e *Encoder[T]) codesBuf(n int) []uint32 {
	if cap(e.codes) < n {
		e.codes = make([]uint32, n)
	}
	return e.codes[:n]
}

// Compress1D is Compress1D reusing the encoder's scratch.
func (e *Encoder[T]) Compress1D(values []T, opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	eb := effectiveEB(values, opts)
	codes := e.codesBuf(len(values))
	lits, nlit := encodeStream1(values, codes, e.lits[:0], eb, quantRadius(opts.QuantBits))
	return e.seal(kindRaw1D, nil, len(values), eb, opts, codes, lits, nlit)
}

// Compress3D is Compress3D reusing the encoder's scratch.
func (e *Encoder[T]) Compress3D(g *grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	eb := effectiveEB(g.Data, opts)
	codes := e.codesBuf(len(g.Data))
	recon := e.reconBuf(len(g.Data))
	lits, nlit := encodeBlock3(g.Data, recon, g.Dim, codes, e.lits[:0], eb, quantRadius(opts.QuantBits))
	return e.seal(kindGrid3D, []grid.Dims{g.Dim}, len(g.Data), eb, opts, codes, lits, nlit)
}

// CompressBlocks is CompressBlocks reusing the encoder's scratch.
func (e *Encoder[T]) CompressBlocks(blocks []*grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	return e.compressBlocksCapture(blocks, opts, nil)
}

// CompressBlocksCapture is CompressBlocks that additionally writes each
// block's reconstruction — the values a decoder of the payload will
// produce — into recons, which must hold one grid per block at the same
// dims. The payload is byte-identical to CompressBlocks (the kernels are
// the same; only the reconstruction destination changes). The archive's
// delta mode uses it to retain a member's reconstruction as the
// reference for the next snapshot without a decode round trip.
func (e *Encoder[T]) CompressBlocksCapture(blocks []*grid.Grid3[T], opts Options, recons []*grid.Grid3[T]) ([]byte, Stats, error) {
	if len(recons) != len(blocks) {
		return nil, Stats{}, fmt.Errorf("sz: %d recon grids for %d blocks", len(recons), len(blocks))
	}
	return e.compressBlocksCapture(blocks, opts, recons)
}

func (e *Encoder[T]) compressBlocksCapture(blocks []*grid.Grid3[T], opts Options, recons []*grid.Grid3[T]) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	d, total, eb, err := batchGeometry(blocks, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	if recons != nil {
		for i, r := range recons {
			if r.Dim != d {
				return nil, Stats{}, fmt.Errorf("sz: recon grid %d dims %v differ from %v", i, r.Dim, d)
			}
		}
	}
	per := d.Count()
	radius := quantRadius(opts.QuantBits)
	codes := e.codesBuf(total)
	lits := e.lits[:0]
	nlit := 0
	// Blocks are mutually independent, so groups of four encode in lock
	// step through the quad kernel — four overlapping dependency chains
	// instead of one (see kernel_quad.go). Literals post-pass per block,
	// in block order, preserving the pool layout exactly.
	reconLen := per
	if len(blocks) >= 4 {
		reconLen = 4 * per
	}
	var recon []T
	if recons == nil {
		recon = e.reconBuf(reconLen)
	}
	// rec returns the (zeroed) reconstruction destination for block i: the
	// caller's capture grid, or slot of the pooled scratch.
	rec := func(i, slot int) []T {
		var r []T
		if recons != nil {
			r = recons[i].Data
		} else {
			r = recon[slot*per : (slot+1)*per]
		}
		clear(r)
		return r
	}
	i := 0
	for ; i+4 <= len(blocks); i += 4 {
		encodeBlockQuad(
			blocks[i].Data, blocks[i+1].Data, blocks[i+2].Data, blocks[i+3].Data,
			rec(i, 0), rec(i+1, 1), rec(i+2, 2), rec(i+3, 3), d,
			codes[i*per:(i+1)*per], codes[(i+1)*per:(i+2)*per], codes[(i+2)*per:(i+3)*per], codes[(i+3)*per:(i+4)*per],
			eb, radius)
		for k := 0; k < 4; k++ {
			lits, nlit = collectLits(codes[(i+k)*per:(i+k+1)*per], blocks[i+k].Data, lits, nlit)
		}
	}
	for ; i < len(blocks); i++ {
		var k int
		lits, k = encodeBlock3(blocks[i].Data, rec(i, 0), d, codes[i*per:(i+1)*per], lits, eb, radius)
		nlit += k
	}
	dims := []grid.Dims{d, {X: len(blocks)}} // block count rides in a dims record
	return e.seal(kindBatch, dims, total, eb, opts, codes, lits, nlit)
}

// CompressBlocksDelta compresses a batch temporally: each block's values
// are predicted from the reconstructed values of the same-shaped block in
// refs (the previous snapshot as a decoder sees it), and only the
// residual is quantized and entropy-coded. The residual check runs
// against the CURRENT values with the CURRENT bound, so |v − recon| ≤ eb
// holds for this snapshot regardless of chain depth — error does not
// accumulate. recons, if non-nil, captures each block's reconstruction
// (one grid per block, same dims) for use as the next snapshot's
// reference. The payload kind is kindBatchDelta; it only decodes through
// DecompressBlocksDelta with the same refs.
func (e *Encoder[T]) CompressBlocksDelta(blocks, refs []*grid.Grid3[T], opts Options, recons []*grid.Grid3[T]) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	d, total, eb, err := batchGeometry(blocks, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	if len(refs) != len(blocks) {
		return nil, Stats{}, fmt.Errorf("sz: %d reference blocks for %d blocks", len(refs), len(blocks))
	}
	for i, r := range refs {
		if r.Dim != d {
			return nil, Stats{}, fmt.Errorf("sz: reference block %d dims %v differ from %v", i, r.Dim, d)
		}
	}
	if recons != nil {
		if len(recons) != len(blocks) {
			return nil, Stats{}, fmt.Errorf("sz: %d recon grids for %d blocks", len(recons), len(blocks))
		}
		for i, r := range recons {
			if r.Dim != d {
				return nil, Stats{}, fmt.Errorf("sz: recon grid %d dims %v differ from %v", i, r.Dim, d)
			}
		}
	}
	per := d.Count()
	radius := quantRadius(opts.QuantBits)
	codes := e.codesBuf(total)
	lits := e.lits[:0]
	nlit := 0
	recon := e.reconBuf(per)
	for i := range blocks {
		rec := recon
		if recons != nil {
			rec = recons[i].Data
		}
		var k int
		lits, k = encodeTemporalBlock(blocks[i].Data, refs[i].Data, rec, codes[i*per:(i+1)*per], lits, eb, radius)
		nlit += k
	}
	dims := []grid.Dims{d, {X: len(blocks)}}
	return e.seal(kindBatchDelta, dims, total, eb, opts, codes, lits, nlit)
}

// CompressBlocksDelta is the one-shot form of Encoder.CompressBlocksDelta.
func CompressBlocksDelta[T grid.Float](blocks, refs []*grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	var e Encoder[T]
	return e.CompressBlocksDelta(blocks, refs, opts, nil)
}

// batchGeometry validates a block batch and resolves its shared shape,
// total cell count, and effective absolute bound.
func batchGeometry[T grid.Float](blocks []*grid.Grid3[T], opts Options) (grid.Dims, int, float64, error) {
	if len(blocks) == 0 {
		return grid.Dims{}, 0, 0, fmt.Errorf("sz: empty block batch")
	}
	d := blocks[0].Dim
	total := 0
	for i, b := range blocks {
		if b.Dim != d {
			return grid.Dims{}, 0, 0, fmt.Errorf("sz: block %d dims %v differ from %v", i, b.Dim, d)
		}
		total += len(b.Data)
	}
	// The relative bound is computed over the union of all blocks so that
	// every block sees the same effective absolute bound.
	eb := opts.ErrorBound
	if opts.Mode == Rel {
		lo, hi := rangeOfBlocks(blocks)
		eb = relToAbs(opts.ErrorBound, lo, hi)
	}
	return d, total, eb, nil
}

// seal assembles the final payload from the code stream and literal pool,
// stashing the grown scratch buffers back on the encoder for the next
// call.
func (e *Encoder[T]) seal(kind int, dims []grid.Dims, n int, eb float64, opts Options, codes []uint32, lits []byte, nlit int) ([]byte, Stats, error) {
	e.codes = codes[:0]
	e.lits = lits[:0]

	var hdr [64]byte
	h := hdr[:0]
	h = bitio.AppendUvarint(h, magic)
	h = bitio.AppendUvarint(h, version)
	h = bitio.AppendUvarint(h, uint64(kind))
	h = bitio.AppendUvarint(h, uint64(n))
	h = bitio.AppendUvarint(h, math.Float64bits(eb))
	h = bitio.AppendUvarint(h, uint64(opts.QuantBits))
	lossless := uint64(1)
	if opts.DisableLossless {
		lossless = 0
	}
	h = bitio.AppendUvarint(h, lossless)
	h = bitio.AppendUvarint(h, uint64(len(dims)))
	for _, d := range dims {
		h = bitio.AppendUvarint(h, uint64(d.X))
		h = bitio.AppendUvarint(h, uint64(d.Y))
		h = bitio.AppendUvarint(h, uint64(d.Z))
	}

	huff := e.huff.AppendEncode(e.huffBuf[:0], codes)
	e.huffBuf = huff[:0]
	if !opts.DisableLossless {
		var err error
		defl := e.deflBuf[:0]
		if defl, err = deflateAppend(defl, huff); err != nil {
			return nil, Stats{}, err
		}
		huffLen := len(defl)
		if defl, err = deflateAppend(defl, lits); err != nil {
			return nil, Stats{}, err
		}
		e.deflBuf = defl[:0]
		huff, lits = defl[:huffLen], defl[huffLen:]
	}
	out := make([]byte, 0, len(h)+len(huff)+len(lits)+16)
	out = append(out, h...)
	out = bitio.AppendBytes(out, huff)
	out = bitio.AppendBytes(out, lits)
	st := Stats{N: n, EffectiveEB: eb, Literals: nlit, CompressedLen: len(out), ElemBytes: literalSize[T]()}
	return out, st, nil
}

// EncoderPool is a typed sync.Pool of Encoders for callers whose hot path
// spans goroutines (archive workers, level fan-outs). The zero value is
// ready to use.
type EncoderPool[T grid.Float] struct{ p sync.Pool }

// Get returns a pooled (or fresh) Encoder.
func (p *EncoderPool[T]) Get() *Encoder[T] {
	if e, _ := p.p.Get().(*Encoder[T]); e != nil {
		return e
	}
	return &Encoder[T]{}
}

// Put returns an Encoder to the pool.
func (p *EncoderPool[T]) Put(e *Encoder[T]) { p.p.Put(e) }

// DecoderPool is a typed sync.Pool of Decoders; the zero value is ready to
// use.
type DecoderPool[T grid.Float] struct{ p sync.Pool }

// Get returns a pooled (or fresh) Decoder.
func (p *DecoderPool[T]) Get() *Decoder[T] {
	if d, _ := p.p.Get().(*Decoder[T]); d != nil {
		return d
	}
	return &Decoder[T]{}
}

// Put returns a Decoder to the pool.
func (p *DecoderPool[T]) Put(d *Decoder[T]) { p.p.Put(d) }

// Decoder is the reusable decompression engine: it keeps the inflated
// section buffers, decoded symbol stream, the Huffman decode tables and
// literal-offset scratch alive across calls. The zero value is ready to
// use; a Decoder is not safe for concurrent use (DecompressBlocksParallel
// fans out internally).
type Decoder[T grid.Float] struct {
	codes   []uint32
	huff    huffman.Decoder
	huffBuf []byte
	litBuf  []byte
	litOff  []int
}

// NewDecoder returns an empty Decoder; scratch grows on first use.
func NewDecoder[T grid.Float]() *Decoder[T] { return &Decoder[T]{} }

// unseal parses a payload into the decoder's scratch and returns the
// header, code stream and literal pool. The returned slices alias the
// decoder and are valid until the next call. A negative wantKind accepts
// any payload kind.
func (d *Decoder[T]) unseal(blob []byte, wantKind int) (header, []uint32, []byte, error) {
	h, blob, err := parseHeader(blob)
	if err != nil {
		return h, nil, nil, err
	}
	if wantKind >= 0 && h.kind != wantKind {
		return h, nil, nil, fmt.Errorf("sz: payload kind %d, want %d", h.kind, wantKind)
	}

	huff, k, err := bitio.Bytes(blob)
	if err != nil {
		return h, nil, nil, fmt.Errorf("sz: reading code section: %w", err)
	}
	blob = blob[k:]
	lits, _, err := bitio.Bytes(blob)
	if err != nil {
		return h, nil, nil, fmt.Errorf("sz: reading literal section: %w", err)
	}
	if h.lossless {
		if huff, err = inflateAppend(d.huffBuf[:0], huff); err != nil {
			return h, nil, nil, err
		}
		d.huffBuf = huff[:0]
		if lits, err = inflateAppend(d.litBuf[:0], lits); err != nil {
			return h, nil, nil, err
		}
		d.litBuf = lits[:0]
	}
	codes, err := d.huff.AppendDecode(d.codes[:0], huff)
	if err != nil {
		return h, nil, nil, err
	}
	d.codes = codes[:0]
	if len(codes) != h.n {
		return h, nil, nil, fmt.Errorf("sz: %d codes for %d values", len(codes), h.n)
	}
	return h, codes, lits, nil
}

// ExtractCodes runs only the entropy stage of any payload kind: section
// split, inflate, and Huffman decode of the quantization-code stream,
// skipping Lorenzo reconstruction entirely. Analysis tooling uses it to
// inspect code distributions, and the entropy benchmarks use it to obtain
// the exact symbol stream a payload carries. The returned slice is freshly
// allocated and owned by the caller.
func ExtractCodes(blob []byte) ([]uint32, error) {
	var d Decoder[float32] // element type is irrelevant to the code stream
	_, codes, _, err := d.unseal(blob, -1)
	if err != nil {
		return nil, err
	}
	return codes, nil
}

// Decompress1D is Decompress1D reusing the decoder's scratch.
func (d *Decoder[T]) Decompress1D(blob []byte) ([]T, error) {
	hdr, codes, lits, err := d.unseal(blob, kindRaw1D)
	if err != nil {
		return nil, err
	}
	if err := checkLiterals[T](codes, lits); err != nil {
		return nil, err
	}
	out := make([]T, hdr.n)
	decodeStream1(out, codes, lits, 2*hdr.eb, quantRadius(hdr.quantBits))
	return out, nil
}

// Decompress3D is Decompress3D reusing the decoder's scratch.
func (d *Decoder[T]) Decompress3D(blob []byte) (*grid.Grid3[T], error) {
	hdr, codes, lits, err := d.unseal3D(blob)
	if err != nil {
		return nil, err
	}
	out := grid.New[T](hdr.dims[0])
	decodeBlock3(out.Data, out.Dim, codes, lits, 2*hdr.eb, quantRadius(hdr.quantBits))
	return out, nil
}

// Decompress3DInto is Decompress3D decoding straight into out, whose dims
// must match the payload — no output allocation, no copy. Every cell of
// out is overwritten. Callers that already hold the destination grid (a
// dataset skeleton's level, a pooled buffer) use it to skip a full
// allocate-zero-copy cycle per grid.
func (d *Decoder[T]) Decompress3DInto(out *grid.Grid3[T], blob []byte) error {
	hdr, codes, lits, err := d.unseal3D(blob)
	if err != nil {
		return err
	}
	if out.Dim != hdr.dims[0] {
		return fmt.Errorf("sz: destination dims %v, payload %v", out.Dim, hdr.dims[0])
	}
	decodeBlock3(out.Data, out.Dim, codes, lits, 2*hdr.eb, quantRadius(hdr.quantBits))
	return nil
}

// unseal3D unseals and validates a kindGrid3D payload.
func (d *Decoder[T]) unseal3D(blob []byte) (header, []uint32, []byte, error) {
	hdr, codes, lits, err := d.unseal(blob, kindGrid3D)
	if err != nil {
		return hdr, nil, nil, err
	}
	if len(hdr.dims) != 1 {
		return hdr, nil, nil, fmt.Errorf("sz: 3D payload with %d dim records", len(hdr.dims))
	}
	if n, ok := checkedCount(hdr.dims[0]); !ok || n != hdr.n {
		return hdr, nil, nil, fmt.Errorf("sz: 3D dims %v do not cover %d values", hdr.dims[0], hdr.n)
	}
	if err := checkLiterals[T](codes, lits); err != nil {
		return hdr, nil, nil, err
	}
	return hdr, codes, lits, nil
}

// DecompressBlocks is DecompressBlocks reusing the decoder's scratch.
func (d *Decoder[T]) DecompressBlocks(blob []byte) ([]*grid.Grid3[T], error) {
	hdr, codes, lits, err := d.unseal(blob, kindBatch)
	if err != nil {
		return nil, err
	}
	bd, count, err := hdr.batchGeometry()
	if err != nil {
		return nil, err
	}
	per := bd.Count()
	litOff, err := d.litOffsets(codes, per, count, lits)
	if err != nil {
		return nil, err
	}
	twoEB := 2 * hdr.eb
	radius := quantRadius(hdr.quantBits)
	out := grid.NewBlocks[T](bd, count)
	i := 0
	for ; i+4 <= count; i += 4 {
		decodeBlockQuad(
			out[i].Data, out[i+1].Data, out[i+2].Data, out[i+3].Data, bd,
			codes[i*per:(i+1)*per], codes[(i+1)*per:(i+2)*per], codes[(i+2)*per:(i+3)*per], codes[(i+3)*per:(i+4)*per],
			lits, litOff[i], litOff[i+1], litOff[i+2], litOff[i+3], twoEB, radius)
	}
	for ; i < count; i++ {
		decodeBlock3(out[i].Data, bd, codes[i*per:(i+1)*per], lits[litOff[i]:litOff[i+1]], twoEB, radius)
	}
	return out, nil
}

// litOffsets computes every block's literal-pool offset in one scan over
// the code stream AND validates the pool size, so the kernels run with no
// per-element checks (and, for intra batches, groups of four blocks can
// decode in lock step — see kernel_quad.go).
func (d *Decoder[T]) litOffsets(codes []uint32, per, count int, lits []byte) ([]int, error) {
	litSize := literalSize[T]()
	if cap(d.litOff) < count+1 {
		d.litOff = make([]int, count+1)
	}
	litOff := d.litOff[:count+1]
	litOff[0] = 0
	for i := 0; i < count; i++ {
		zeros := 0
		for _, c := range codes[i*per : (i+1)*per] {
			if c == 0 {
				zeros++
			}
		}
		litOff[i+1] = litOff[i] + zeros*litSize
	}
	if litOff[count] > len(lits) {
		return nil, fmt.Errorf("sz: literal pool holds %d bytes, need %d", len(lits), litOff[count])
	}
	return litOff, nil
}

// DecompressBlocksDelta decodes a temporal (kindBatchDelta) batch given
// the reconstructed reference blocks it was encoded against — one grid
// per block, same dims, read only. It is the inverse of
// CompressBlocksDelta; passing different references than the encoder used
// yields wrong values (but never a panic or out-of-bounds access).
func (d *Decoder[T]) DecompressBlocksDelta(blob []byte, refs []*grid.Grid3[T]) ([]*grid.Grid3[T], error) {
	hdr, codes, lits, err := d.unseal(blob, kindBatchDelta)
	if err != nil {
		return nil, err
	}
	bd, count, err := hdr.batchGeometry()
	if err != nil {
		return nil, err
	}
	if len(refs) != count {
		return nil, fmt.Errorf("sz: %d reference blocks for %d blocks", len(refs), count)
	}
	for i, r := range refs {
		if r.Dim != bd {
			return nil, fmt.Errorf("sz: reference block %d dims %v differ from %v", i, r.Dim, bd)
		}
	}
	per := bd.Count()
	litOff, err := d.litOffsets(codes, per, count, lits)
	if err != nil {
		return nil, err
	}
	twoEB := 2 * hdr.eb
	radius := quantRadius(hdr.quantBits)
	out := grid.NewBlocks[T](bd, count)
	for i := 0; i < count; i++ {
		decodeTemporalBlock(out[i].Data, refs[i].Data, codes[i*per:(i+1)*per], lits[litOff[i]:litOff[i+1]], twoEB, radius)
	}
	return out, nil
}

// DecompressBlocksDelta is the one-shot form of
// Decoder.DecompressBlocksDelta.
func DecompressBlocksDelta[T grid.Float](blob []byte, refs []*grid.Grid3[T]) ([]*grid.Grid3[T], error) {
	var d Decoder[T]
	return d.DecompressBlocksDelta(blob, refs)
}
