package sz

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/bitio"
	"repro/internal/grid"
	"repro/internal/huffman"
)

// The pooled engine. Every one-shot Compress*/Decompress* call allocates
// fresh code streams, reconstruction grids, Huffman tables and DEFLATE
// coders; on repeated-snapshot campaigns (the archive writer, benchall,
// services compressing a stream of members) that allocation dominates the
// small-block hot path. Encoder and Decoder keep all of that scratch alive
// across calls, and the process-wide DEFLATE coder pools are shared even by
// the one-shot entry points. Payloads are byte-identical to the one-shot
// functions in both directions.

// flateWriters pools DEFLATE writers (each ~600 KiB of window state, the
// single most expensive allocation of a Compress call).
var flateWriters = sync.Pool{
	New: func() any {
		fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // only fails for invalid levels
		}
		return fw
	},
}

// flateReaders pools DEFLATE readers via flate.Resetter.
var flateReaders = sync.Pool{
	New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	},
}

// sliceWriter adapts an append-grown []byte to io.Writer for the pooled
// flate writers.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// deflateAppend DEFLATEs data and appends the result to dst.
func deflateAppend(dst, data []byte) ([]byte, error) {
	fw := flateWriters.Get().(*flate.Writer)
	defer func() {
		// Detach the destination before pooling, so an idle writer does not
		// pin the caller's staging buffer for the process lifetime.
		fw.Reset(io.Discard)
		flateWriters.Put(fw)
	}()
	sw := sliceWriter{b: dst}
	fw.Reset(&sw)
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return sw.b, nil
}

// inflateAppend inflates data and appends the result to dst.
func inflateAppend(dst, data []byte) ([]byte, error) {
	fr := flateReaders.Get().(io.ReadCloser)
	defer func() {
		// Detach the source before pooling so an idle reader does not pin
		// the caller's payload.
		fr.(flate.Resetter).Reset(bytes.NewReader(nil), nil)
		flateReaders.Put(fr)
	}()
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(data), nil); err != nil {
		return nil, fmt.Errorf("sz: inflating section: %w", err)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := fr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sz: inflating section: %w", err)
		}
	}
}

// Encoder is a reusable compression engine. It owns the quantization-code
// buffer, literal pool, reconstruction grid, Huffman scratch and payload
// staging buffers, reusing them across calls so that steady-state
// compression allocates only the returned payload.
//
// The zero value is ready to use. An Encoder is not safe for concurrent
// use; use one per goroutine (they are cheap once warm) or guard with a
// sync.Pool.
type Encoder[T grid.Float] struct {
	codes []uint32
	lits  []byte
	recon []T
	huff  huffman.Encoder

	huffBuf []byte // raw huffman blob staging
	deflBuf []byte // deflated section staging
	metas   []blockMeta
}

// NewEncoder returns an empty Encoder; scratch grows on first use.
func NewEncoder[T grid.Float]() *Encoder[T] { return &Encoder[T]{} }

// reconGrid returns the pooled reconstruction scratch shaped as d, zeroed.
func (e *Encoder[T]) reconGrid(d grid.Dims) *grid.Grid3[T] {
	n := d.Count()
	if cap(e.recon) < n {
		e.recon = make([]T, n)
	}
	r := e.recon[:n]
	clear(r)
	return grid.FromSlice(d, r)
}

// newQuantizer builds a quantizer over the encoder's pooled buffers.
func (e *Encoder[T]) newQuantizer(eb float64, quantBits int) *quantizer[T] {
	q := newQuantizer[T](eb, quantBits)
	q.codes = e.codes[:0]
	q.lits = e.lits[:0]
	return q
}

// Compress1D is Compress1D reusing the encoder's scratch.
func (e *Encoder[T]) Compress1D(values []T, opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	eb := effectiveEB(values, opts)
	q := e.newQuantizer(eb, opts.QuantBits)
	var prev T
	for i, v := range values {
		pred := prev
		if i == 0 {
			pred = 0
		}
		prev = q.encode(v, pred)
	}
	return e.seal(kindRaw1D, nil, len(values), eb, opts, q)
}

// Compress3D is Compress3D reusing the encoder's scratch.
func (e *Encoder[T]) Compress3D(g *grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	eb := effectiveEB(g.Data, opts)
	q := e.newQuantizer(eb, opts.QuantBits)
	encodeLorenzo3(g, e.reconGrid(g.Dim), q)
	return e.seal(kindGrid3D, []grid.Dims{g.Dim}, len(g.Data), eb, opts, q)
}

// CompressBlocks is CompressBlocks reusing the encoder's scratch.
func (e *Encoder[T]) CompressBlocks(blocks []*grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	d, total, eb, err := batchGeometry(blocks, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	q := e.newQuantizer(eb, opts.QuantBits)
	recon := e.reconGrid(d)
	for _, b := range blocks {
		clear(recon.Data)
		encodeLorenzo3(b, recon, q)
	}
	dims := []grid.Dims{d, {X: len(blocks)}} // block count rides in a dims record
	return e.seal(kindBatch, dims, total, eb, opts, q)
}

// batchGeometry validates a block batch and resolves its shared shape,
// total cell count, and effective absolute bound.
func batchGeometry[T grid.Float](blocks []*grid.Grid3[T], opts Options) (grid.Dims, int, float64, error) {
	if len(blocks) == 0 {
		return grid.Dims{}, 0, 0, fmt.Errorf("sz: empty block batch")
	}
	d := blocks[0].Dim
	total := 0
	for i, b := range blocks {
		if b.Dim != d {
			return grid.Dims{}, 0, 0, fmt.Errorf("sz: block %d dims %v differ from %v", i, b.Dim, d)
		}
		total += len(b.Data)
	}
	// The relative bound is computed over the union of all blocks so that
	// every block sees the same effective absolute bound.
	eb := opts.ErrorBound
	if opts.Mode == Rel {
		lo, hi := rangeOfBlocks(blocks)
		eb = relToAbs(opts.ErrorBound, lo, hi)
	}
	return d, total, eb, nil
}

// seal assembles the final payload from the quantizer state, stashing the
// grown scratch buffers back on the encoder for the next call.
func (e *Encoder[T]) seal(kind int, dims []grid.Dims, n int, eb float64, opts Options, q *quantizer[T]) ([]byte, Stats, error) {
	e.codes = q.codes[:0]
	e.lits = q.lits[:0]

	var hdr [64]byte
	h := hdr[:0]
	h = bitio.AppendUvarint(h, magic)
	h = bitio.AppendUvarint(h, version)
	h = bitio.AppendUvarint(h, uint64(kind))
	h = bitio.AppendUvarint(h, uint64(n))
	h = bitio.AppendUvarint(h, math.Float64bits(eb))
	h = bitio.AppendUvarint(h, uint64(opts.QuantBits))
	lossless := uint64(1)
	if opts.DisableLossless {
		lossless = 0
	}
	h = bitio.AppendUvarint(h, lossless)
	h = bitio.AppendUvarint(h, uint64(len(dims)))
	for _, d := range dims {
		h = bitio.AppendUvarint(h, uint64(d.X))
		h = bitio.AppendUvarint(h, uint64(d.Y))
		h = bitio.AppendUvarint(h, uint64(d.Z))
	}

	huff := e.huff.AppendEncode(e.huffBuf[:0], q.codes)
	e.huffBuf = huff[:0]
	lits := q.lits
	if !opts.DisableLossless {
		var err error
		defl := e.deflBuf[:0]
		if defl, err = deflateAppend(defl, huff); err != nil {
			return nil, Stats{}, err
		}
		huffLen := len(defl)
		if defl, err = deflateAppend(defl, lits); err != nil {
			return nil, Stats{}, err
		}
		e.deflBuf = defl[:0]
		huff, lits = defl[:huffLen], defl[huffLen:]
	}
	out := make([]byte, 0, len(h)+len(huff)+len(lits)+16)
	out = append(out, h...)
	out = bitio.AppendBytes(out, huff)
	out = bitio.AppendBytes(out, lits)
	st := Stats{N: n, EffectiveEB: eb, Literals: q.nlit, CompressedLen: len(out), ElemBytes: literalSize[T]()}
	return out, st, nil
}

// EncoderPool is a typed sync.Pool of Encoders for callers whose hot path
// spans goroutines (archive workers, level fan-outs). The zero value is
// ready to use.
type EncoderPool[T grid.Float] struct{ p sync.Pool }

// Get returns a pooled (or fresh) Encoder.
func (p *EncoderPool[T]) Get() *Encoder[T] {
	if e, _ := p.p.Get().(*Encoder[T]); e != nil {
		return e
	}
	return &Encoder[T]{}
}

// Put returns an Encoder to the pool.
func (p *EncoderPool[T]) Put(e *Encoder[T]) { p.p.Put(e) }

// DecoderPool is a typed sync.Pool of Decoders; the zero value is ready to
// use.
type DecoderPool[T grid.Float] struct{ p sync.Pool }

// Get returns a pooled (or fresh) Decoder.
func (p *DecoderPool[T]) Get() *Decoder[T] {
	if d, _ := p.p.Get().(*Decoder[T]); d != nil {
		return d
	}
	return &Decoder[T]{}
}

// Put returns a Decoder to the pool.
func (p *DecoderPool[T]) Put(d *Decoder[T]) { p.p.Put(d) }

// Decoder is the reusable decompression engine: it keeps the inflated
// section buffers, decoded symbol stream, the Huffman decode tables and
// literal-offset scratch alive across calls. The zero value is ready to
// use; a Decoder is not safe for concurrent use (DecompressBlocksParallel
// fans out internally).
type Decoder[T grid.Float] struct {
	codes   []uint32
	huff    huffman.Decoder
	huffBuf []byte
	litBuf  []byte
	litOff  []int
}

// NewDecoder returns an empty Decoder; scratch grows on first use.
func NewDecoder[T grid.Float]() *Decoder[T] { return &Decoder[T]{} }

// unseal parses a payload into the decoder's scratch and returns the
// header, code stream and literal pool. The returned slices alias the
// decoder and are valid until the next call. A negative wantKind accepts
// any payload kind.
func (d *Decoder[T]) unseal(blob []byte, wantKind int) (header, []uint32, []byte, error) {
	h, blob, err := parseHeader(blob)
	if err != nil {
		return h, nil, nil, err
	}
	if wantKind >= 0 && h.kind != wantKind {
		return h, nil, nil, fmt.Errorf("sz: payload kind %d, want %d", h.kind, wantKind)
	}

	huff, k, err := bitio.Bytes(blob)
	if err != nil {
		return h, nil, nil, fmt.Errorf("sz: reading code section: %w", err)
	}
	blob = blob[k:]
	lits, _, err := bitio.Bytes(blob)
	if err != nil {
		return h, nil, nil, fmt.Errorf("sz: reading literal section: %w", err)
	}
	if h.lossless {
		if huff, err = inflateAppend(d.huffBuf[:0], huff); err != nil {
			return h, nil, nil, err
		}
		d.huffBuf = huff[:0]
		if lits, err = inflateAppend(d.litBuf[:0], lits); err != nil {
			return h, nil, nil, err
		}
		d.litBuf = lits[:0]
	}
	codes, err := d.huff.AppendDecode(d.codes[:0], huff)
	if err != nil {
		return h, nil, nil, err
	}
	d.codes = codes[:0]
	if len(codes) != h.n {
		return h, nil, nil, fmt.Errorf("sz: %d codes for %d values", len(codes), h.n)
	}
	return h, codes, lits, nil
}

// ExtractCodes runs only the entropy stage of any payload kind: section
// split, inflate, and Huffman decode of the quantization-code stream,
// skipping Lorenzo reconstruction entirely. Analysis tooling uses it to
// inspect code distributions, and the entropy benchmarks use it to obtain
// the exact symbol stream a payload carries. The returned slice is freshly
// allocated and owned by the caller.
func ExtractCodes(blob []byte) ([]uint32, error) {
	var d Decoder[float32] // element type is irrelevant to the code stream
	_, codes, _, err := d.unseal(blob, -1)
	if err != nil {
		return nil, err
	}
	return codes, nil
}

// Decompress1D is Decompress1D reusing the decoder's scratch.
func (d *Decoder[T]) Decompress1D(blob []byte) ([]T, error) {
	hdr, codes, lits, err := d.unseal(blob, kindRaw1D)
	if err != nil {
		return nil, err
	}
	dq, err := newDequantizer[T](hdr, codes, lits)
	if err != nil {
		return nil, err
	}
	out := make([]T, hdr.n)
	var prev T
	for i := range out {
		pred := prev
		if i == 0 {
			pred = 0
		}
		v, err := dq.decode(pred)
		if err != nil {
			return nil, err
		}
		out[i] = v
		prev = v
	}
	return out, nil
}

// Decompress3D is Decompress3D reusing the decoder's scratch.
func (d *Decoder[T]) Decompress3D(blob []byte) (*grid.Grid3[T], error) {
	hdr, codes, lits, err := d.unseal(blob, kindGrid3D)
	if err != nil {
		return nil, err
	}
	if len(hdr.dims) != 1 {
		return nil, fmt.Errorf("sz: 3D payload with %d dim records", len(hdr.dims))
	}
	if n, ok := checkedCount(hdr.dims[0]); !ok || n != hdr.n {
		return nil, fmt.Errorf("sz: 3D dims %v do not cover %d values", hdr.dims[0], hdr.n)
	}
	dq, err := newDequantizer[T](hdr, codes, lits)
	if err != nil {
		return nil, err
	}
	out := grid.New[T](hdr.dims[0])
	if err := decodeLorenzo3(out, dq); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressBlocks is DecompressBlocks reusing the decoder's scratch.
func (d *Decoder[T]) DecompressBlocks(blob []byte) ([]*grid.Grid3[T], error) {
	hdr, codes, lits, err := d.unseal(blob, kindBatch)
	if err != nil {
		return nil, err
	}
	bd, count, err := hdr.batchGeometry()
	if err != nil {
		return nil, err
	}
	dq, err := newDequantizer[T](hdr, codes, lits)
	if err != nil {
		return nil, err
	}
	out := make([]*grid.Grid3[T], count)
	for i := range out {
		g := grid.New[T](bd)
		if err := decodeLorenzo3(g, dq); err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}
