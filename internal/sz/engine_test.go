package sz

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/grid"
)

// testBlocks builds a deterministic batch of smooth-ish blocks with some
// literal-triggering outliers.
func testBlocks(n, edge int, seed int64) []*grid.Grid3[float32] {
	rng := rand.New(rand.NewSource(seed))
	blocks := make([]*grid.Grid3[float32], n)
	for b := range blocks {
		g := grid.NewCube[float32](edge)
		for x := 0; x < edge; x++ {
			for y := 0; y < edge; y++ {
				for z := 0; z < edge; z++ {
					v := float32(math.Sin(float64(x+b))*10 + float64(y)*0.5 + float64(z)*0.25)
					if rng.Float64() < 0.01 {
						v = float32(rng.NormFloat64() * 1e6) // unpredictable literal
					}
					g.Set(x, y, z, v)
				}
			}
		}
		blocks[b] = g
	}
	return blocks
}

// TestGoldenByteIdentity asserts that every compression path — one-shot
// serial, one-shot parallel at several worker counts, pooled Encoder serial
// and parallel, and a reused (warm) Encoder — produces bit-identical
// payloads. This is the contract that lets the parallel and pooled paths
// ship without a format version bump.
func TestGoldenByteIdentity(t *testing.T) {
	blocks := testBlocks(13, 8, 42)
	opts := Options{ErrorBound: 0.05}

	ref, refStats, err := CompressBlocks(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, blob []byte, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(ref, blob) {
			t.Fatalf("%s: payload differs from serial reference (%d vs %d bytes)", name, len(blob), len(ref))
		}
	}

	for _, w := range []int{2, 3, 4, 8, 16} {
		blob, _, err := CompressBlocksParallel(blocks, opts, w)
		check(fmt.Sprintf("one-shot parallel workers=%d", w), blob, err)
	}

	enc := NewEncoder[float32]()
	blob, st, err := enc.CompressBlocks(blocks, opts)
	check("encoder serial cold", blob, err)
	if st != refStats {
		t.Fatalf("encoder stats %+v != one-shot stats %+v", st, refStats)
	}
	// Warm reuse: scratch now holds stale state from the previous call.
	blob, _, err = enc.CompressBlocks(blocks, opts)
	check("encoder serial warm", blob, err)
	for _, w := range []int{2, 8} {
		blob, _, err = enc.CompressBlocksParallel(blocks, opts, w)
		check(fmt.Sprintf("encoder parallel warm workers=%d", w), blob, err)
	}
	// Interleave a different payload, then re-check the original.
	other := testBlocks(5, 4, 7)
	if _, _, err := enc.CompressBlocks(other, opts); err != nil {
		t.Fatal(err)
	}
	blob, _, err = enc.CompressBlocks(blocks, opts)
	check("encoder serial after interleaved payload", blob, err)
}

// TestGoldenPayloadHash pins the exact bytes of a DisableLossless payload
// (no DEFLATE stage, so the bytes are stable across Go releases). If this
// hash moves, the on-disk format changed and every archive written by
// earlier builds breaks.
func TestGoldenPayloadHash(t *testing.T) {
	blocks := testBlocks(4, 4, 1)
	blob, _, err := CompressBlocks(blocks, Options{ErrorBound: 0.1, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verified equal to the pre-refactor (PR 1) implementation's output.
	const want = "208dd8c00876bd455b6cbb10af4d3497b144061fece7122f714307e9d9340e91"
	if got := hex.EncodeToString(sha256sum(blob)); got != want {
		t.Fatalf("payload hash %s, want %s — compressed format drifted", got, want)
	}
	// And with the DEFLATE stage on (stable for the Go release in go.mod;
	// pinned to catch accidental level/stage changes, not stdlib drift).
	blob, _, err = CompressBlocks(blocks, Options{ErrorBound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	const wantLossless = "fe1b54c2108ac2146eb874f8c924fc66dc1ac47da55cbfb5e9bde74bf9366d7c"
	if got := hex.EncodeToString(sha256sum(blob)); got != wantLossless {
		t.Fatalf("lossless payload hash %s, want %s — compressed format drifted", got, wantLossless)
	}
}

func sha256sum(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// TestDecoderParallelMatchesSerial checks the pooled decoder's fan-out
// path (including the parallel literal-offset scan) against the serial
// decoder at several worker counts.
func TestDecoderParallelMatchesSerial(t *testing.T) {
	blocks := testBlocks(13, 8, 43)
	blob, _, err := CompressBlocks(blocks, Options{ErrorBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DecompressBlocks[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder[float32]()
	for _, w := range []int{1, 2, 3, 8, 64} {
		got, err := dec.DecompressBlocksParallel(blob, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d blocks, want %d", w, len(got), len(ref))
		}
		for i := range got {
			if got[i].Dim != ref[i].Dim {
				t.Fatalf("workers=%d block %d dims %v, want %v", w, i, got[i].Dim, ref[i].Dim)
			}
			for j := range got[i].Data {
				if got[i].Data[j] != ref[i].Data[j] {
					t.Fatalf("workers=%d block %d cell %d: %v != %v", w, i, j, got[i].Data[j], ref[i].Data[j])
				}
			}
		}
	}
}

// TestPoolConcurrentReuse hammers the Encoder/Decoder pools from many
// goroutines (run with -race): every borrowed engine must produce the
// reference payload and a bound-respecting round trip regardless of what
// the previous borrower left in its scratch.
func TestPoolConcurrentReuse(t *testing.T) {
	opts := Options{ErrorBound: 0.05}
	payloads := make([][]*grid.Grid3[float32], 4)
	refs := make([][]byte, len(payloads))
	for i := range payloads {
		payloads[i] = testBlocks(3+2*i, 4+i, int64(100+i))
		var err error
		refs[i], _, err = CompressBlocks(payloads[i], opts)
		if err != nil {
			t.Fatal(err)
		}
	}

	var encs EncoderPool[float32]
	var decs DecoderPool[float32]
	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				pi := (g + it) % len(payloads)
				enc := encs.Get()
				var blob []byte
				var err error
				if it%2 == 0 {
					blob, _, err = enc.CompressBlocks(payloads[pi], opts)
				} else {
					blob, _, err = enc.CompressBlocksParallel(payloads[pi], opts, 3)
				}
				encs.Put(enc)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(blob, refs[pi]) {
					errCh <- fmt.Errorf("goroutine %d iter %d: payload %d differs after pool reuse", g, it, pi)
					return
				}
				dec := decs.Get()
				got, err := dec.DecompressBlocksParallel(blob, 2)
				decs.Put(dec)
				if err != nil {
					errCh <- err
					return
				}
				for b, gb := range got {
					for j := range gb.Data {
						if diff := math.Abs(float64(gb.Data[j]) - float64(payloads[pi][b].Data[j])); diff > opts.ErrorBound+1e-9 {
							errCh <- fmt.Errorf("goroutine %d iter %d: block %d cell %d error %g exceeds bound", g, it, b, j, diff)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestExtractCodes checks the entropy-stage-only decode: every payload
// kind yields exactly one quantization code per value, with literal
// markers (code 0) matching the reported literal count.
func TestExtractCodes(t *testing.T) {
	blocks := testBlocks(6, 6, 3)
	for _, disable := range []bool{false, true} {
		blob, st, err := CompressBlocks(blocks, Options{ErrorBound: 0.05, DisableLossless: disable})
		if err != nil {
			t.Fatal(err)
		}
		codes, err := ExtractCodes(blob)
		if err != nil {
			t.Fatalf("ExtractCodes(lossless=%v): %v", !disable, err)
		}
		if len(codes) != st.N {
			t.Fatalf("lossless=%v: %d codes for %d values", !disable, len(codes), st.N)
		}
		zeros := 0
		for _, c := range codes {
			if c == 0 {
				zeros++
			}
		}
		if zeros != st.Literals {
			t.Fatalf("lossless=%v: %d literal markers, stats say %d", !disable, zeros, st.Literals)
		}
	}
	if _, err := ExtractCodes([]byte("not a payload")); err == nil {
		t.Fatal("ExtractCodes accepted garbage")
	}
}

// TestCheckedCount pins the overflow guard on header-supplied geometry.
func TestCheckedCount(t *testing.T) {
	cases := []struct {
		d  grid.Dims
		n  int
		ok bool
	}{
		{grid.Dims{X: 4, Y: 5, Z: 6}, 120, true},
		{grid.Dims{X: 1 << 20, Y: 1, Z: 1}, 1 << 20, true},
		{grid.Dims{X: 1 << 21, Y: 1, Z: 1}, 1 << 21, true}, // block counts beyond the old 2^20 cap stay decodable
		{grid.Dims{X: 1 << 40, Y: 1, Z: 1}, 1 << 40, true},
		{grid.Dims{X: 1 << 40, Y: 2, Z: 1}, 0, false},
		{grid.Dims{X: 1 << 40, Y: 1 << 40, Z: 1 << 40}, 0, false}, // would overflow naive multiplication
		{grid.Dims{X: -1, Y: 1, Z: 1}, 0, false},
	}
	for _, c := range cases {
		n, ok := checkedCount(c.d)
		if ok != c.ok || (ok && n != c.n) {
			t.Fatalf("checkedCount(%v) = (%d,%v), want (%d,%v)", c.d, n, ok, c.n, c.ok)
		}
	}
}

// TestStatsElemBytes checks that Ratio accounts for the true element width:
// a float64 stream of the same values must report (about) twice the ratio
// of its float32 twin, not the same number.
func TestStatsElemBytes(t *testing.T) {
	n := 4096
	v32 := make([]float32, n)
	v64 := make([]float64, n)
	for i := range v32 {
		v := math.Sin(float64(i) / 50)
		v32[i] = float32(v)
		v64[i] = v
	}
	_, st32, err := Compress1D(v32, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	_, st64, err := Compress1D(v64, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if st32.ElemBytes != 4 || st64.ElemBytes != 8 {
		t.Fatalf("ElemBytes = %d/%d, want 4/8", st32.ElemBytes, st64.ElemBytes)
	}
	if st64.Ratio() < 1.5*st32.Ratio() {
		t.Fatalf("float64 ratio %.2f not ~2x float32 ratio %.2f", st64.Ratio(), st32.Ratio())
	}
}

// TestEncoderAllPaths round-trips the non-batch entry points through the
// pooled engine.
func TestEncoderAllPaths(t *testing.T) {
	enc := NewEncoder[float32]()
	dec := NewDecoder[float32]()

	vals := make([]float32, 2000)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i) / 30))
	}
	for round := 0; round < 2; round++ { // second round exercises warm scratch
		blob, _, err := enc.Compress1D(vals, Options{ErrorBound: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decompress1D(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(float64(got[i])-float64(vals[i])) > 1e-3 {
				t.Fatalf("round %d: 1D cell %d out of bound", round, i)
			}
		}

		g := grid.NewCube[float32](12)
		for i := range g.Data {
			g.Data[i] = vals[i%len(vals)]
		}
		blob3, _, err := enc.Compress3D(g, Options{ErrorBound: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		got3, err := dec.Decompress3D(blob3)
		if err != nil {
			t.Fatal(err)
		}
		if got3.Dim != g.Dim {
			t.Fatalf("round %d: 3D dims %v, want %v", round, got3.Dim, g.Dim)
		}
		for i := range got3.Data {
			if math.Abs(float64(got3.Data[i])-float64(g.Data[i])) > 1e-3 {
				t.Fatalf("round %d: 3D cell %d out of bound", round, i)
			}
		}
	}
}
