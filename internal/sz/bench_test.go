package sz

import (
	"testing"

	"repro/internal/grid"
)

// Predictor-stage benchmarks: the Lorenzo prediction/quantization kernels
// in isolation (no entropy or DEFLATE stage), the numbers the PR 4
// boundary-peeled kernels are tracked by. cmd/benchall's `predict`
// section measures the same stage on the real Run1_Z10 snapshot.

func benchGrid(edge int) *grid.Grid3[float32] {
	return smoothGrid(grid.Dims{X: edge, Y: edge, Z: edge})
}

func BenchmarkLorenzo3Encode(b *testing.B) {
	g := benchGrid(64)
	enc := NewEncoder[float32]()
	opts := Options{ErrorBound: 0.05}
	if _, _, _, err := enc.Predict3D(g, opts); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * g.Dim.Count()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := enc.Predict3D(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLorenzo3Decode(b *testing.B) {
	g := benchGrid(64)
	enc := NewEncoder[float32]()
	opts := Options{ErrorBound: 0.05}
	codes, lits, _, err := enc.Predict3D(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	out := grid.New[float32](g.Dim)
	b.SetBytes(int64(4 * g.Dim.Count()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Reconstruct3D(out, codes, lits, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLorenzo3EncodeRef / DecodeRef measure the retained scalar
// reference kernels for the before/after comparison in EXPERIMENTS.md.
func BenchmarkLorenzo3EncodeRef(b *testing.B) {
	g := benchGrid(64)
	recon := grid.New[float32](g.Dim)
	b.SetBytes(int64(4 * g.Dim.Count()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := newQuantizer[float32](0.05, 16)
		clear(recon.Data)
		encodeLorenzo3Ref(g, recon, q)
	}
}

func BenchmarkLorenzo3DecodeRef(b *testing.B) {
	g := benchGrid(64)
	q := newQuantizer[float32](0.05, 16)
	recon := grid.New[float32](g.Dim)
	encodeLorenzo3Ref(g, recon, q)
	out := grid.New[float32](g.Dim)
	b.SetBytes(int64(4 * g.Dim.Count()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dq := &dequantizer[float32]{twoEB: 2 * 0.05, radius: quantRadius(16), codes: q.codes, lits: q.lits}
		if err := decodeLorenzo3Ref(out, dq); err != nil {
			b.Fatal(err)
		}
	}
}
