package sz

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/grid"
)

// Parallel block compression. The per-block Lorenzo predictor never crosses
// block boundaries (each block's reconstruction buffer starts from zero),
// so blocks of a batch are embarrassingly parallel on both sides; only the
// shared Huffman codebook and the payload assembly are sequential. This
// addresses the throughput concern the paper leaves as future work
// ("relatively low throughput on small AMR datasets") without changing the
// compressed format: payloads are bit-identical to the serial path.

// CompressBlocksParallel is CompressBlocks with the per-block prediction
// and quantization fanned out over workers goroutines (≤ 0 means
// GOMAXPROCS). The output is byte-identical to CompressBlocks.
func CompressBlocksParallel[T grid.Float](blocks []*grid.Grid3[T], opts Options, workers int) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if len(blocks) == 0 {
		return nil, Stats{}, fmt.Errorf("sz: empty block batch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(blocks) == 1 {
		return CompressBlocks(blocks, opts)
	}
	d := blocks[0].Dim
	total := 0
	for i, b := range blocks {
		if b.Dim != d {
			return nil, Stats{}, fmt.Errorf("sz: block %d dims %v differ from %v", i, b.Dim, d)
		}
		total += len(b.Data)
	}
	eb := opts.ErrorBound
	if opts.Mode == Rel {
		lo, hi := rangeOfBlocks(blocks)
		eb = relToAbs(opts.ErrorBound, lo, hi)
	}

	// Quantize every block independently, then splice the per-block code
	// streams and literal pools in order — exactly what the serial loop
	// produces.
	qs := make([]*quantizer[T], len(blocks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, b := range blocks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, b *grid.Grid3[T]) {
			defer wg.Done()
			defer func() { <-sem }()
			q := newQuantizer[T](eb, opts.QuantBits)
			recon := grid.New[T](d)
			encodeLorenzo3(b, recon, q)
			qs[i] = q
		}(i, b)
	}
	wg.Wait()

	merged := newQuantizer[T](eb, opts.QuantBits)
	for _, q := range qs {
		merged.codes = append(merged.codes, q.codes...)
		merged.lits = append(merged.lits, q.lits...)
		merged.nlit += q.nlit
	}
	dims := []grid.Dims{d, {X: len(blocks)}}
	return seal(kindBatch, dims, total, eb, opts, merged)
}

// DecompressBlocksParallel inverts CompressBlocks/CompressBlocksParallel
// with per-block reconstruction fanned out over workers goroutines. The
// code stream splits evenly (one code per cell); the literal pool is split
// by counting literal markers per block segment.
func DecompressBlocksParallel[T grid.Float](blob []byte, workers int) ([]*grid.Grid3[T], error) {
	hdr, codes, lits, err := unseal(blob, kindBatch)
	if err != nil {
		return nil, err
	}
	if len(hdr.dims) != 2 {
		return nil, fmt.Errorf("sz: batch payload with %d dim records", len(hdr.dims))
	}
	d, count := hdr.dims[0], hdr.dims[1].X
	if count <= 0 || d.Count()*count != hdr.n {
		return nil, fmt.Errorf("sz: batch geometry %v × %d does not cover %d values", d, count, hdr.n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	per := d.Count()
	if len(codes) != per*count {
		return nil, fmt.Errorf("sz: %d codes for %d cells", len(codes), per*count)
	}
	litSize := literalSize[T]()

	// Literal-pool offsets: block i's literals start after all literal
	// markers (code 0) in earlier blocks.
	litOff := make([]int, count+1)
	for i := 0; i < count; i++ {
		zeros := 0
		for _, c := range codes[i*per : (i+1)*per] {
			if c == 0 {
				zeros++
			}
		}
		litOff[i+1] = litOff[i] + zeros*litSize
	}
	if litOff[count] > len(lits) {
		return nil, fmt.Errorf("sz: literal pool holds %d bytes, need %d", len(lits), litOff[count])
	}

	out := make([]*grid.Grid3[T], count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < count; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			dq := &dequantizer[T]{
				twoEB:  2 * hdr.eb,
				radius: int64(1) << (hdr.quantBits - 1),
				codes:  codes[i*per : (i+1)*per],
				lits:   lits[litOff[i]:litOff[i+1]],
			}
			g := grid.New[T](d)
			if err := decodeLorenzo3(g, dq); err != nil {
				errs[i] = err
				return
			}
			out[i] = g
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// literalSize returns the byte width of one exact literal for T.
func literalSize[T grid.Float]() int {
	var zero T
	switch any(zero).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}

// rangeOfBlocks returns the min and max over the union of all blocks.
func rangeOfBlocks[T grid.Float](blocks []*grid.Grid3[T]) (lo, hi float64) {
	first := true
	for _, b := range blocks {
		bl, bh := b.MinMax()
		if first {
			lo, hi = float64(bl), float64(bh)
			first = false
			continue
		}
		if float64(bl) < lo {
			lo = float64(bl)
		}
		if float64(bh) > hi {
			hi = float64(bh)
		}
	}
	return lo, hi
}
