package sz

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
)

// Parallel block compression. The per-block Lorenzo predictor never crosses
// block boundaries (each block's reconstruction buffer starts from zero),
// so blocks of a batch are embarrassingly parallel on both sides; only the
// shared Huffman codebook and the payload assembly are sequential. This
// addresses the throughput concern the paper leaves as future work
// ("relatively low throughput on small AMR datasets") without changing the
// compressed format: payloads are bit-identical to the serial path.
//
// Each block of shape d emits exactly d.Count() quantization codes, so the
// whole batch's code stream is pre-sized once and every worker writes its
// block's codes by index into its own sub-range — the per-block streams
// land spliced in place, with no post-hoc re-copy. Only the variable-length
// literal pools need one ordered copy into the final buffer.

// blockMeta records where one block's literals landed in its worker's
// arena, so the pools can be spliced in block order afterwards.
type blockMeta struct {
	worker int
	litOff int
	litLen int
	nlit   int
}

// CompressBlocksParallel is CompressBlocks with the per-block prediction
// and quantization fanned out over workers goroutines (≤ 0 means
// GOMAXPROCS). The output is byte-identical to CompressBlocks.
func CompressBlocksParallel[T grid.Float](blocks []*grid.Grid3[T], opts Options, workers int) ([]byte, Stats, error) {
	var e Encoder[T]
	return e.CompressBlocksParallel(blocks, opts, workers)
}

// CompressBlocksParallel is CompressBlocksParallel reusing the encoder's
// scratch. The code stream is written directly into the encoder's pooled,
// pre-sized buffer by all workers; per-worker reconstruction grids are the
// only per-call allocations. On a single-CPU process (GOMAXPROCS=1) any
// worker count takes the serial path — the fan-out can only add overhead
// there.
func (e *Encoder[T]) CompressBlocksParallel(blocks []*grid.Grid3[T], opts Options, workers int) ([]byte, Stats, error) {
	if workers <= 0 || workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	return e.compressBlocksWorkers(blocks, opts, workers)
}

// compressBlocksWorkers is the fan-out implementation behind
// CompressBlocksParallel with the worker count already resolved (tests
// call it directly to exercise the parallel path on single-CPU hosts).
func (e *Encoder[T]) compressBlocksWorkers(blocks []*grid.Grid3[T], opts Options, workers int) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if len(blocks) == 0 {
		return nil, Stats{}, fmt.Errorf("sz: empty block batch")
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		return e.CompressBlocks(blocks, opts)
	}
	d, total, eb, err := batchGeometry(blocks, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	per := d.Count()
	radius := quantRadius(opts.QuantBits)

	// One pre-sized code buffer; worker i's block lands at [i*per,(i+1)*per).
	codes := e.codesBuf(total)
	if cap(e.metas) < len(blocks) {
		e.metas = make([]blockMeta, len(blocks))
	}
	metas := e.metas[:len(blocks)]
	arenas := make([][]byte, workers)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			recon := make([]T, per)
			var arena []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(blocks) {
					break
				}
				clear(recon)
				start := len(arena)
				var nlit int
				arena, nlit = encodeBlock3(blocks[i].Data, recon, d, codes[i*per:(i+1)*per], arena, eb, radius)
				metas[i] = blockMeta{worker: w, litOff: start, litLen: len(arena) - start, nlit: nlit}
			}
			arenas[w] = arena
		}(w)
	}
	wg.Wait()

	// Splice the literal pools in block order — exactly the layout the
	// serial loop produces.
	totalLits, nlit := 0, 0
	for i := range metas {
		totalLits += metas[i].litLen
		nlit += metas[i].nlit
	}
	if cap(e.lits) < totalLits {
		e.lits = make([]byte, 0, totalLits)
	}
	lits := e.lits[:0]
	for i := range metas {
		m := &metas[i]
		lits = append(lits, arenas[m.worker][m.litOff:m.litOff+m.litLen]...)
	}

	dims := []grid.Dims{d, {X: len(blocks)}}
	return e.seal(kindBatch, dims, total, eb, opts, codes, lits, nlit)
}

// DecompressBlocksParallel inverts CompressBlocks/CompressBlocksParallel
// with per-block reconstruction fanned out over workers goroutines. The
// code stream splits evenly (one code per cell); the literal pool is split
// by counting literal markers per block segment, itself fanned out over the
// workers before a cheap serial prefix sum.
func DecompressBlocksParallel[T grid.Float](blob []byte, workers int) ([]*grid.Grid3[T], error) {
	var d Decoder[T]
	return d.DecompressBlocksParallel(blob, workers)
}

// DecompressBlocksParallel is DecompressBlocksParallel reusing the
// decoder's scratch. With a resolved worker count of 1 — explicitly, or
// because the process has a single CPU — it takes the plain serial path,
// skipping the literal-offset pre-scan the fan-out needs.
func (dec *Decoder[T]) DecompressBlocksParallel(blob []byte, workers int) ([]*grid.Grid3[T], error) {
	if workers <= 0 || workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	return dec.decompressBlocksWorkers(blob, workers)
}

// decompressBlocksWorkers is the fan-out implementation behind
// DecompressBlocksParallel with the worker count already resolved (tests
// call it directly to exercise the parallel path on single-CPU hosts).
func (dec *Decoder[T]) decompressBlocksWorkers(blob []byte, workers int) ([]*grid.Grid3[T], error) {
	if workers <= 1 {
		return dec.DecompressBlocks(blob)
	}
	hdr, codes, lits, err := dec.unseal(blob, kindBatch)
	if err != nil {
		return nil, err
	}
	d, count, err := hdr.batchGeometry()
	if err != nil {
		return nil, err
	}
	if workers > count {
		workers = count
	}
	per := d.Count()
	litSize := literalSize[T]()
	twoEB := 2 * hdr.eb
	radius := quantRadius(hdr.quantBits)

	// Literal-pool offsets: block i's literals start after all literal
	// markers (code 0) in earlier blocks. The per-block zero counts are
	// independent, so the scan fans out over the workers; the prefix sum
	// over count entries is negligible.
	if cap(dec.litOff) < count+1 {
		dec.litOff = make([]int, count+1)
	}
	litOff := dec.litOff[:count+1]
	countZeros := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zeros := 0
			for _, c := range codes[i*per : (i+1)*per] {
				if c == 0 {
					zeros++
				}
			}
			litOff[i+1] = zeros * litSize
		}
	}
	if workers == 1 {
		countZeros(0, count)
	} else {
		var wg sync.WaitGroup
		chunk := (count + workers - 1) / workers
		for lo := 0; lo < count; lo += chunk {
			hi := min(lo+chunk, count)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				countZeros(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	litOff[0] = 0
	for i := 1; i <= count; i++ {
		litOff[i] += litOff[i-1]
	}
	// The one up-front validation: every block's code segment has exact
	// length per (batchGeometry), and the pool covers every literal
	// marker, so the per-block kernels below run with no error paths.
	if litOff[count] > len(lits) {
		return nil, fmt.Errorf("sz: literal pool holds %d bytes, need %d", len(lits), litOff[count])
	}

	out := grid.NewBlocks[T](d, count)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				decodeBlock3(out[i].Data, d, codes[i*per:(i+1)*per], lits[litOff[i]:litOff[i+1]], twoEB, radius)
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// literalSize returns the byte width of one exact literal for T.
func literalSize[T grid.Float]() int {
	var zero T
	switch any(zero).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}

// rangeOfBlocks returns the min and max over the union of all blocks.
func rangeOfBlocks[T grid.Float](blocks []*grid.Grid3[T]) (lo, hi float64) {
	first := true
	for _, b := range blocks {
		bl, bh := b.MinMax()
		if first {
			lo, hi = float64(bl), float64(bh)
			first = false
			continue
		}
		if float64(bl) < lo {
			lo = float64(bl)
		}
		if float64(bh) > hi {
			hi = float64(bh)
		}
	}
	return lo, hi
}
