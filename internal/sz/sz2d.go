package sz

import (
	"fmt"

	"repro/internal/grid"
)

// 2D compression: the intermediate point between the 1D baseline and TAC's
// 3D path. The paper's Sec. 2.3 argument — "leveraging more dimensional
// information can significantly improve the compression performance" —
// becomes measurable with all three dimensionalities on the same data; the
// dimensionality ablation bench exercises exactly that.

const kindGrid2D = 4

// Compress2D compresses a dense 2D field (nx × ny, row-major, y fastest)
// with the order-1 2D Lorenzo predictor f(x−1,y)+f(x,y−1)−f(x−1,y−1).
func Compress2D[T grid.Float](values []T, nx, ny int, opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if nx <= 0 || ny <= 0 || nx*ny != len(values) {
		return nil, Stats{}, fmt.Errorf("sz: 2D geometry %d×%d does not cover %d values", nx, ny, len(values))
	}
	eb := effectiveEB(values, opts)
	codes := make([]uint32, len(values))
	recon := make([]T, len(values))
	lits, nlit := encodeBlock2(values, recon, nx, ny, codes, nil, eb, quantRadius(opts.QuantBits))
	return seal[T](kindGrid2D, []grid.Dims{{X: nx, Y: ny, Z: 1}}, len(values), eb, opts, codes, lits, nlit)
}

// Decompress2D inverts Compress2D, returning the field and its dims.
func Decompress2D[T grid.Float](blob []byte) ([]T, int, int, error) {
	hdr, codes, lits, err := unseal(blob, kindGrid2D)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(hdr.dims) != 1 {
		return nil, 0, 0, fmt.Errorf("sz: 2D payload with %d dim records", len(hdr.dims))
	}
	nx, ny := hdr.dims[0].X, hdr.dims[0].Y
	if n, ok := checkedCount(grid.Dims{X: nx, Y: ny, Z: 1}); !ok || n != hdr.n {
		return nil, 0, 0, fmt.Errorf("sz: 2D geometry %d×%d does not cover %d values", nx, ny, hdr.n)
	}
	if err := checkLiterals[T](codes, lits); err != nil {
		return nil, 0, 0, err
	}
	out := make([]T, hdr.n)
	decodeBlock2(out, nx, ny, codes, lits, 2*hdr.eb, quantRadius(hdr.quantBits))
	return out, nx, ny, nil
}

// encodeLorenzo2Ref is the retained scalar reference 2D encode (see
// encodeLorenzo3Ref); production paths run encodeBlock2 in kernel.go.
func encodeLorenzo2Ref[T grid.Float](src, recon []T, nx, ny int, q *quantizer[T]) {
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			i := x*ny + y
			recon[i] = q.encode(src[i], lorenzoPred2(recon, i, x, y, ny))
		}
	}
}

// decodeLorenzo2Ref is the retained scalar reference 2D decode.
func decodeLorenzo2Ref[T grid.Float](out []T, nx, ny int, dq *dequantizer[T]) error {
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			i := x*ny + y
			v, err := dq.decode(lorenzoPred2(out, i, x, y, ny))
			if err != nil {
				return err
			}
			out[i] = v
		}
	}
	return nil
}

func lorenzoPred2[T grid.Float](data []T, i, x, y, ny int) T {
	var fx, fy, fxy T
	if x > 0 {
		fx = data[i-ny]
	}
	if y > 0 {
		fy = data[i-1]
	}
	if x > 0 && y > 0 {
		fxy = data[i-ny-1]
	}
	return fx + fy - fxy
}

// CompressSlices compresses a 3D grid as a sequence of independent 2D
// slices along z — the natural way 2D compression is applied to 3D data
// (each x-y plane compressed separately), used by the dimensionality
// ablation.
func CompressSlices[T grid.Float](g *grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	eb := effectiveEB(g.Data, opts)
	fixed := opts
	fixed.Mode = Abs
	fixed.ErrorBound = eb
	d := g.Dim
	per := d.X * d.Y
	radius := quantRadius(opts.QuantBits)
	codes := make([]uint32, d.Count())
	slice := make([]T, per)
	recon := make([]T, per)
	var lits []byte
	nlit := 0
	for z := 0; z < d.Z; z++ {
		for x := 0; x < d.X; x++ {
			for y := 0; y < d.Y; y++ {
				slice[x*d.Y+y] = g.At(x, y, z)
			}
		}
		clear(recon)
		var k int
		lits, k = encodeBlock2(slice, recon, d.X, d.Y, codes[z*per:(z+1)*per], lits, eb, radius)
		nlit += k
	}
	return seal[T](kindBatch, []grid.Dims{{X: d.X, Y: d.Y, Z: 1}, {X: d.Z}}, d.Count(), eb, opts, codes, lits, nlit)
}

// DecompressSlices inverts CompressSlices back into a 3D grid.
func DecompressSlices[T grid.Float](blob []byte) (*grid.Grid3[T], error) {
	blocks, err := DecompressBlocks[T](blob)
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("sz: empty slice payload")
	}
	sd := blocks[0].Dim
	out := grid.New[T](grid.Dims{X: sd.X, Y: sd.Y, Z: len(blocks)})
	for z, b := range blocks {
		for x := 0; x < sd.X; x++ {
			for y := 0; y < sd.Y; y++ {
				out.Set(x, y, z, b.At(x, y, 0))
			}
		}
	}
	return out, nil
}
