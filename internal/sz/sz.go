// Package sz implements a prediction-based error-bounded lossy compressor
// for floating-point scientific data, modeled on SZ (Di & Cappello 2016;
// Tao et al. 2017), the compressor the TAC paper builds on.
//
// The pipeline follows the three steps the paper describes in Sec. 2.1:
//
//  1. predict each value from its already-reconstructed neighbors using a
//     Lorenzo predictor (order-1 in 1D, the 7-neighbor cube corner stencil
//     in 3D);
//  2. quantize the prediction residual into 2^QuantBits linear bins scaled
//     by the error bound, reconstructing on the fly so the decompressor
//     sees exactly the same neighborhood; values whose quantized
//     reconstruction would violate the bound are stored as exact literals;
//  3. entropy-code the quantization bins with canonical Huffman and pass
//     the result (and the literal pool) through DEFLATE.
//
// The absolute reconstruction error of every value is guaranteed to be at
// most the (effective) error bound; literals are exact.
package sz

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitio"
	"repro/internal/grid"
)

// Mode selects how Options.ErrorBound is interpreted.
type Mode uint8

const (
	// Abs interprets ErrorBound as a point-wise absolute error bound.
	Abs Mode = iota
	// Rel interprets ErrorBound as a point-wise value-range-relative error
	// bound: the effective absolute bound is ErrorBound × (max−min).
	Rel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Abs:
		return "abs"
	case Rel:
		return "rel"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Options configures a compression run.
type Options struct {
	// ErrorBound is the user error bound; interpretation depends on Mode.
	// Must be > 0.
	ErrorBound float64
	// Mode selects absolute or value-range-relative bounding. Default Abs.
	Mode Mode
	// QuantBits sets the quantization code width; the bin radius is
	// 2^(QuantBits-1). Default 16, matching SZ's default 65536 bins.
	QuantBits int
	// DisableLossless skips the DEFLATE stage (useful for isolating the
	// prediction/quantization behaviour in tests and ablations).
	DisableLossless bool
}

func (o Options) withDefaults() Options {
	if o.QuantBits == 0 {
		o.QuantBits = 16
	}
	return o
}

func (o Options) validate() error {
	if !(o.ErrorBound > 0) {
		return fmt.Errorf("sz: error bound must be positive, got %v", o.ErrorBound)
	}
	if o.QuantBits < 2 || o.QuantBits > 30 {
		return fmt.Errorf("sz: QuantBits must be in [2,30], got %d", o.QuantBits)
	}
	return nil
}

// Stats reports per-stream compression details.
type Stats struct {
	N             int     // number of values
	EffectiveEB   float64 // absolute bound actually applied
	Literals      int     // values stored exactly (unpredictable)
	CompressedLen int     // total payload bytes
	ElemBytes     int     // uncompressed width of one element (4 or 8)
}

// Ratio returns the compression ratio against the stream's uncompressed
// storage at its actual element width — 4 bytes for float32 streams (the
// accounting the paper uses for Nyx data), 8 for float64, so
// double-precision streams no longer report half their true ratio.
func (s Stats) Ratio() float64 {
	if s.CompressedLen == 0 {
		return 0
	}
	eb := s.ElemBytes
	if eb == 0 {
		eb = 4
	}
	return float64(eb*s.N) / float64(s.CompressedLen)
}

const (
	magic      = 0x535a4752 // "SZGR"
	version    = 1
	kindRaw1D  = 1
	kindGrid3D = 2
	kindBatch  = 3
	// kindBatchDelta is a block batch whose residuals are taken against
	// the reconstructed values of a reference batch of identical shape
	// (temporal prediction). The payload layout is exactly kindBatch's;
	// only the predictor differs, so a delta stream is undecodable
	// without its reference — DecompressBlocksDelta demands it.
	kindBatchDelta = 4
)

// Compress1D compresses values as a 1D stream with an order-1 predictor
// (each value predicted by its reconstructed predecessor). This is the
// compressor the 1D baseline and zMesh use.
func Compress1D[T grid.Float](values []T, opts Options) ([]byte, Stats, error) {
	var e Encoder[T]
	return e.Compress1D(values, opts)
}

// Decompress1D inverts Compress1D.
func Decompress1D[T grid.Float](blob []byte) ([]T, error) {
	var d Decoder[T]
	return d.Decompress1D(blob)
}

// Compress3D compresses a dense 3D grid with the 3D Lorenzo predictor.
func Compress3D[T grid.Float](g *grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	var e Encoder[T]
	return e.Compress3D(g, opts)
}

// Decompress3D inverts Compress3D.
func Decompress3D[T grid.Float](blob []byte) (*grid.Grid3[T], error) {
	var d Decoder[T]
	return d.Decompress3D(blob)
}

// CompressBlocks compresses a batch of equally-shaped 3D blocks as one
// stream: each block is Lorenzo-predicted independently (no cross-block
// leakage), but all blocks share a single quantization-code stream and
// Huffman codebook. This is how TAC compresses the "4D arrays" that OpST
// and AKDTree produce (Sec. 3.1: sub-blocks of the same size are merged
// into the same array for easy compression).
func CompressBlocks[T grid.Float](blocks []*grid.Grid3[T], opts Options) ([]byte, Stats, error) {
	var e Encoder[T]
	return e.CompressBlocks(blocks, opts)
}

// DecompressBlocks inverts CompressBlocks.
func DecompressBlocks[T grid.Float](blob []byte) ([]*grid.Grid3[T], error) {
	var d Decoder[T]
	return d.DecompressBlocks(blob)
}

// effectiveEB resolves the options to an absolute error bound for values.
func effectiveEB[T grid.Float](values []T, opts Options) float64 {
	if opts.Mode != Rel {
		return opts.ErrorBound
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return relToAbs(opts.ErrorBound, lo, hi)
}

func relToAbs(rel, lo, hi float64) float64 {
	r := hi - lo
	if !(r > 0) {
		// Constant (or empty) data: any positive bound preserves it; pick
		// the raw value so the header still records something meaningful.
		return rel
	}
	return rel * r
}

// encodeLorenzo3Ref is the retained scalar reference implementation of
// the 3D Lorenzo encode: per-element branchy prediction through
// lorenzoPred and append-grown codes through quantizer.encode. Production
// paths run the boundary-peeled kernels in kernel.go; the equivalence
// suite in kernel_test.go compares the two element-for-element.
func encodeLorenzo3Ref[T grid.Float](src, recon *grid.Grid3[T], q *quantizer[T]) {
	d := src.Dim
	sy := d.Z
	sx := d.Y * d.Z
	for x := 0; x < d.X; x++ {
		for y := 0; y < d.Y; y++ {
			base := d.Index(x, y, 0)
			for z := 0; z < d.Z; z++ {
				i := base + z
				pred := lorenzoPred(recon.Data, i, x, y, z, sx, sy)
				recon.Data[i] = q.encode(src.Data[i], pred)
			}
		}
	}
}

// decodeLorenzo3Ref is the retained scalar reference decode (see
// encodeLorenzo3Ref).
func decodeLorenzo3Ref[T grid.Float](out *grid.Grid3[T], dq *dequantizer[T]) error {
	d := out.Dim
	sy := d.Z
	sx := d.Y * d.Z
	for x := 0; x < d.X; x++ {
		for y := 0; y < d.Y; y++ {
			base := d.Index(x, y, 0)
			for z := 0; z < d.Z; z++ {
				i := base + z
				pred := lorenzoPred(out.Data, i, x, y, z, sx, sy)
				v, err := dq.decode(pred)
				if err != nil {
					return err
				}
				out.Data[i] = v
			}
		}
	}
	return nil
}

// lorenzoPred computes the order-1 3D Lorenzo prediction from the seven
// already-visited cube-corner neighbors, treating out-of-grid neighbors as
// zero (standard SZ boundary handling).
func lorenzoPred[T grid.Float](data []T, i, x, y, z, sx, sy int) T {
	var fx, fy, fz, fxy, fxz, fyz, fxyz T
	if x > 0 {
		fx = data[i-sx]
	}
	if y > 0 {
		fy = data[i-sy]
	}
	if z > 0 {
		fz = data[i-1]
	}
	if x > 0 && y > 0 {
		fxy = data[i-sx-sy]
	}
	if x > 0 && z > 0 {
		fxz = data[i-sx-1]
	}
	if y > 0 && z > 0 {
		fyz = data[i-sy-1]
	}
	if x > 0 && y > 0 && z > 0 {
		fxyz = data[i-sx-sy-1]
	}
	return fx + fy + fz - fxy - fxz - fyz + fxyz
}

// quantizer turns (value, prediction) pairs into quantization codes plus a
// literal pool, reconstructing each value as it goes. It is the retained
// reference implementation of the quantization step; production paths run
// the inlined qstep in kernel.go, which mirrors encode exactly.
type quantizer[T grid.Float] struct {
	eb     float64
	twoEB  float64
	radius int64
	codes  []uint32
	lits   []byte
	nlit   int
}

func newQuantizer[T grid.Float](eb float64, quantBits int) *quantizer[T] {
	return &quantizer[T]{
		eb:     eb,
		twoEB:  2 * eb,
		radius: int64(1) << (quantBits - 1),
	}
}

// encode emits the code for v given prediction pred and returns the
// reconstructed value the decompressor will produce.
func (q *quantizer[T]) encode(v, pred T) T {
	diff := float64(v) - float64(pred)
	qv := math.Round(diff / q.twoEB)
	// Range-check before the int conversion: conversions of out-of-range
	// floats to int64 are implementation-dependent in Go.
	if math.Abs(qv) < float64(q.radius) {
		iq := int64(qv)
		recon := T(float64(pred) + q.twoEB*qv)
		if math.Abs(float64(v)-float64(recon)) <= q.eb {
			q.codes = append(q.codes, uint32(iq+q.radius))
			return recon
		}
	}
	// Unpredictable: code 0 marks a literal stored exactly.
	q.codes = append(q.codes, 0)
	q.lits = appendLiteral(q.lits, v)
	q.nlit++
	return v
}

// dequantizer replays a code stream plus literal pool (reference
// implementation; production decode runs the pre-validated kernels).
type dequantizer[T grid.Float] struct {
	twoEB  float64
	radius int64
	codes  []uint32
	lits   []byte
	ci     int
}

func newDequantizer[T grid.Float](hdr header, codes []uint32, lits []byte) (*dequantizer[T], error) {
	if len(codes) != hdr.n {
		return nil, fmt.Errorf("sz: %d codes for %d values", len(codes), hdr.n)
	}
	return &dequantizer[T]{
		twoEB:  2 * hdr.eb,
		radius: int64(1) << (hdr.quantBits - 1),
		codes:  codes,
		lits:   lits,
	}, nil
}

func (d *dequantizer[T]) decode(pred T) (T, error) {
	if d.ci >= len(d.codes) {
		return 0, errors.New("sz: code stream exhausted")
	}
	c := d.codes[d.ci]
	d.ci++
	if c == 0 {
		v, rest, err := takeLiteral[T](d.lits)
		if err != nil {
			return 0, err
		}
		d.lits = rest
		return v, nil
	}
	qv := int64(c) - d.radius
	return T(float64(pred) + d.twoEB*float64(qv)), nil
}

// appendLiteral stores the exact bit pattern of v.
func appendLiteral[T grid.Float](dst []byte, v T) []byte {
	switch x := any(v).(type) {
	case float32:
		b := math.Float32bits(x)
		return append(dst, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
	case float64:
		b := math.Float64bits(x)
		return append(dst, byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
			byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
	default:
		panic("sz: unsupported float type")
	}
}

func takeLiteral[T grid.Float](src []byte) (T, []byte, error) {
	var zero T
	switch any(zero).(type) {
	case float32:
		if len(src) < 4 {
			return 0, nil, errors.New("sz: literal pool exhausted")
		}
		b := uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
		return T(math.Float32frombits(b)), src[4:], nil
	case float64:
		if len(src) < 8 {
			return 0, nil, errors.New("sz: literal pool exhausted")
		}
		b := uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 | uint64(src[3])<<24 |
			uint64(src[4])<<32 | uint64(src[5])<<40 | uint64(src[6])<<48 | uint64(src[7])<<56
		return T(math.Float64frombits(b)), src[8:], nil
	default:
		panic("sz: unsupported float type")
	}
}

// header is the decoded payload header.
type header struct {
	kind      int
	n         int
	eb        float64
	quantBits int
	lossless  bool
	dims      []grid.Dims
}

// seal assembles the final payload from a code stream and literal pool
// (one-shot entry point; the Encoder method is the implementation).
func seal[T grid.Float](kind int, dims []grid.Dims, n int, eb float64, opts Options, codes []uint32, lits []byte, nlit int) ([]byte, Stats, error) {
	var e Encoder[T]
	return e.seal(kind, dims, n, eb, opts, codes, lits, nlit)
}

// parseHeader decodes the payload header and returns it plus the remaining
// bytes (the code and literal sections).
func parseHeader(blob []byte) (header, []byte, error) {
	var h header
	u := func() (uint64, error) {
		v, k, err := bitio.Uvarint(blob)
		if err != nil {
			return 0, err
		}
		blob = blob[k:]
		return v, nil
	}
	m, err := u()
	if err != nil || m != magic {
		return h, nil, fmt.Errorf("sz: bad magic")
	}
	ver, err := u()
	if err != nil || ver != version {
		return h, nil, fmt.Errorf("sz: unsupported version")
	}
	kind, err := u()
	if err != nil {
		return h, nil, err
	}
	h.kind = int(kind)
	n, err := u()
	if err != nil {
		return h, nil, err
	}
	h.n = int(n)
	if n > 1<<40 {
		return h, nil, fmt.Errorf("sz: implausible value count %d", n)
	}
	ebBits, err := u()
	if err != nil {
		return h, nil, err
	}
	h.eb = math.Float64frombits(ebBits)
	qb, err := u()
	if err != nil {
		return h, nil, err
	}
	h.quantBits = int(qb)
	if h.quantBits < 2 || h.quantBits > 30 {
		return h, nil, fmt.Errorf("sz: corrupt quantBits %d", h.quantBits)
	}
	ll, err := u()
	if err != nil {
		return h, nil, err
	}
	h.lossless = ll == 1
	nd, err := u()
	if err != nil {
		return h, nil, err
	}
	if nd > 8 {
		return h, nil, fmt.Errorf("sz: implausible dim-record count %d", nd)
	}
	for i := uint64(0); i < nd; i++ {
		var d grid.Dims
		for _, p := range []*int{&d.X, &d.Y, &d.Z} {
			v, err := u()
			if err != nil {
				return h, nil, err
			}
			// Dim records also carry the batch block count, so the bound
			// must admit anything up to the value-count cap; overflow
			// safety comes from checkedCount at the use sites.
			if v > 1<<40 {
				return h, nil, fmt.Errorf("sz: implausible dim extent %d", v)
			}
			*p = int(v)
		}
		h.dims = append(h.dims, d)
	}
	return h, blob, nil
}

// batchGeometry validates a kindBatch header's dim records against its
// value count and returns the block shape and block count.
func (h header) batchGeometry() (grid.Dims, int, error) {
	if len(h.dims) != 2 {
		return grid.Dims{}, 0, fmt.Errorf("sz: batch payload with %d dim records", len(h.dims))
	}
	d, count := h.dims[0], h.dims[1].X
	per, ok := checkedCount(d)
	// Divide instead of multiplying so corrupt counts cannot overflow.
	if !ok || count <= 0 || per <= 0 || h.n%per != 0 || h.n/per != count {
		return grid.Dims{}, 0, fmt.Errorf("sz: batch geometry %v × %d does not cover %d values", d, count, h.n)
	}
	return d, count, nil
}

// checkedCount is Dims.Count with overflow protection for header-supplied
// dims: it reports false when the product exceeds the value-count cap (so
// it could never match a valid header anyway).
func checkedCount(d grid.Dims) (int, bool) {
	if d.X < 0 || d.Y < 0 || d.Z < 0 {
		return 0, false
	}
	hi, p := bits.Mul64(uint64(d.X), uint64(d.Y))
	if hi != 0 || p > 1<<40 {
		return 0, false
	}
	hi, p = bits.Mul64(p, uint64(d.Z))
	if hi != 0 || p > 1<<40 {
		return 0, false
	}
	return int(p), true
}

// BatchInfo describes a block-batch payload without decoding its streams.
type BatchInfo struct {
	BlockDims   grid.Dims // shape of every block in the batch
	Blocks      int       // number of blocks
	EffectiveEB float64   // absolute error bound baked into the stream
	QuantBits   int
	// Delta reports a temporally-predicted batch (kindBatchDelta): the
	// stream only decodes against the reconstructed reference batch it
	// was encoded from.
	Delta bool
}

// DecodedBytes returns the in-memory footprint of the batch once decoded
// at elemBytes per cell. Cache admission and byte budgeting (the serving
// layer's block-batch LRU) use it to cost a frame before or without
// decoding it.
func (bi BatchInfo) DecodedBytes(elemBytes int) int64 {
	return int64(bi.Blocks) * int64(bi.BlockDims.Count()) * int64(elemBytes)
}

// PeekBatch parses only the header of a CompressBlocks or
// CompressBlocksDelta payload, letting callers (the archive reader,
// listings) validate geometry, learn the coding mode, or report the
// applied bound without paying for entropy decoding.
func PeekBatch(blob []byte) (BatchInfo, error) {
	h, _, err := parseHeader(blob)
	if err != nil {
		return BatchInfo{}, err
	}
	if h.kind != kindBatch && h.kind != kindBatchDelta {
		return BatchInfo{}, fmt.Errorf("sz: payload kind %d, want %d or %d", h.kind, kindBatch, kindBatchDelta)
	}
	d, count, err := h.batchGeometry()
	if err != nil {
		return BatchInfo{}, err
	}
	return BatchInfo{BlockDims: d, Blocks: count, EffectiveEB: h.eb, QuantBits: h.quantBits, Delta: h.kind == kindBatchDelta}, nil
}

// unseal parses a payload and returns the header, code stream and literal
// pool (one-shot entry point; the Decoder method is the implementation).
func unseal(blob []byte, wantKind int) (header, []uint32, []byte, error) {
	var d Decoder[float32] // T is irrelevant to section parsing
	return d.unseal(blob, wantKind)
}
