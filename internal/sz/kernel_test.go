package sz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// Kernel-equivalence suite: the boundary-peeled branch-free kernels in
// kernel.go must produce byte-identical code streams and literal pools
// AND bit-identical reconstructions (including IEEE signed zeros) versus
// the retained scalar reference kernels, across degenerate and
// literal-heavy geometries. CI runs this package under -race, which also
// exercises these kernels through the parallel fan-out tests.

// kernelDims is the geometry gauntlet: the unit cell, thin slabs along
// every axis, lines, non-cubic bricks, and a bulky interior.
var kernelDims = []grid.Dims{
	{X: 1, Y: 1, Z: 1},
	{X: 1, Y: 1, Z: 9},
	{X: 1, Y: 9, Z: 1},
	{X: 9, Y: 1, Z: 1},
	{X: 1, Y: 7, Z: 5},
	{X: 7, Y: 1, Z: 5},
	{X: 7, Y: 5, Z: 1},
	{X: 2, Y: 2, Z: 2},
	{X: 5, Y: 7, Z: 4},
	{X: 16, Y: 3, Z: 2},
	{X: 8, Y: 8, Z: 8},
}

// fillKernelData populates data with a mix of smooth structure, literal
// outliers, exact zeros and negative zeros (the signed-zero cases the
// peeled boundary arithmetic must reproduce bit-for-bit).
func fillKernelData[T grid.Float](data []T, seed int64, litFrac float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range data {
		switch {
		case rng.Float64() < litFrac:
			data[i] = T(rng.NormFloat64() * 1e9) // forces a literal
		case rng.Float64() < 0.05:
			data[i] = T(math.Copysign(0, -1)) // negative zero
		case rng.Float64() < 0.05:
			data[i] = 0
		default:
			data[i] = T(math.Sin(float64(i)/7)*10 + float64(i%13))
		}
	}
}

// bitsOf returns the exact bit pattern of v for bit-identity checks.
func bitsOf[T grid.Float](v T) uint64 {
	switch x := any(v).(type) {
	case float32:
		return uint64(math.Float32bits(x))
	case float64:
		return math.Float64bits(x)
	default:
		panic("unsupported")
	}
}

// refEncode3 runs the retained reference 3D encode.
func refEncode3[T grid.Float](g *grid.Grid3[T], eb float64, quantBits int) (*quantizer[T], *grid.Grid3[T]) {
	q := newQuantizer[T](eb, quantBits)
	recon := grid.New[T](g.Dim)
	encodeLorenzo3Ref(g, recon, q)
	return q, recon
}

// refDecode3 runs the retained reference 3D decode.
func refDecode3[T grid.Float](d grid.Dims, codes []uint32, lits []byte, eb float64, quantBits int) (*grid.Grid3[T], error) {
	dq := &dequantizer[T]{twoEB: 2 * eb, radius: quantRadius(quantBits), codes: codes, lits: lits}
	out := grid.New[T](d)
	err := decodeLorenzo3Ref(out, dq)
	return out, err
}

func checkKernel3[T grid.Float](t *testing.T, d grid.Dims, seed int64, litFrac, eb float64) {
	t.Helper()
	const quantBits = 16
	g := grid.New[T](d)
	fillKernelData(g.Data, seed, litFrac)

	q, refRecon := refEncode3(g, eb, quantBits)

	codes := make([]uint32, d.Count())
	recon := make([]T, d.Count())
	lits, nlit := encodeBlock3(g.Data, recon, d, codes, nil, eb, quantRadius(quantBits))

	if len(codes) != len(q.codes) {
		t.Fatalf("%v: kernel emitted %d codes, reference %d", d, len(codes), len(q.codes))
	}
	for i := range codes {
		if codes[i] != q.codes[i] {
			x, y, z := d.Coords(i)
			t.Fatalf("%v: code[%d] (%d,%d,%d) = %d, reference %d", d, i, x, y, z, codes[i], q.codes[i])
		}
	}
	if !bytes.Equal(lits, q.lits) {
		t.Fatalf("%v: literal pool differs from reference (%d vs %d bytes)", d, len(lits), len(q.lits))
	}
	if nlit != q.nlit {
		t.Fatalf("%v: kernel counted %d literals, reference %d", d, nlit, q.nlit)
	}
	for i := range recon {
		if bitsOf(recon[i]) != bitsOf(refRecon.Data[i]) {
			x, y, z := d.Coords(i)
			t.Fatalf("%v: encode recon[%d] (%d,%d,%d) = %x, reference %x", d, i, x, y, z, bitsOf(recon[i]), bitsOf(refRecon.Data[i]))
		}
	}

	refOut, err := refDecode3[T](d, codes, lits, eb, quantBits)
	if err != nil {
		t.Fatalf("%v: reference decode: %v", d, err)
	}
	out := make([]T, d.Count())
	if err := checkLiterals[T](codes, lits); err != nil {
		t.Fatalf("%v: checkLiterals on valid stream: %v", d, err)
	}
	consumed := decodeBlock3(out, d, codes, lits, 2*eb, quantRadius(quantBits))
	if consumed != len(lits) {
		t.Fatalf("%v: decode consumed %d literal bytes, pool holds %d", d, consumed, len(lits))
	}
	for i := range out {
		if bitsOf(out[i]) != bitsOf(refOut.Data[i]) {
			x, y, z := d.Coords(i)
			t.Fatalf("%v: decode[%d] (%d,%d,%d) = %x, reference %x", d, i, x, y, z, bitsOf(out[i]), bitsOf(refOut.Data[i]))
		}
	}
}

// TestKernel3Equivalence is the 3D property test: byte-identical codes
// and literals, bit-identical reconstructions, across the geometry
// gauntlet, both element widths, and literal densities from none to
// literal-heavy.
func TestKernel3Equivalence(t *testing.T) {
	for _, d := range kernelDims {
		for _, litFrac := range []float64{0, 0.02, 0.5} {
			checkKernel3[float32](t, d, int64(d.Count())*7+int64(litFrac*100), litFrac, 0.05)
			checkKernel3[float64](t, d, int64(d.Count())*13+int64(litFrac*100), litFrac, 0.05)
		}
	}
}

func checkKernel2[T grid.Float](t *testing.T, nx, ny int, seed int64, litFrac, eb float64) {
	t.Helper()
	const quantBits = 16
	n := nx * ny
	src := make([]T, n)
	fillKernelData(src, seed, litFrac)

	q := newQuantizer[T](eb, quantBits)
	refRecon := make([]T, n)
	encodeLorenzo2Ref(src, refRecon, nx, ny, q)

	codes := make([]uint32, n)
	recon := make([]T, n)
	lits, nlit := encodeBlock2(src, recon, nx, ny, codes, nil, eb, quantRadius(quantBits))

	for i := range codes {
		if codes[i] != q.codes[i] {
			t.Fatalf("%dx%d: code[%d] = %d, reference %d", nx, ny, i, codes[i], q.codes[i])
		}
	}
	if !bytes.Equal(lits, q.lits) || nlit != q.nlit {
		t.Fatalf("%dx%d: literal pool differs from reference", nx, ny)
	}
	for i := range recon {
		if bitsOf(recon[i]) != bitsOf(refRecon[i]) {
			t.Fatalf("%dx%d: encode recon[%d] differs from reference", nx, ny, i)
		}
	}

	dq := &dequantizer[T]{twoEB: 2 * eb, radius: quantRadius(quantBits), codes: codes, lits: lits}
	refOut := make([]T, n)
	if err := decodeLorenzo2Ref(refOut, nx, ny, dq); err != nil {
		t.Fatalf("%dx%d: reference decode: %v", nx, ny, err)
	}
	out := make([]T, n)
	if consumed := decodeBlock2(out, nx, ny, codes, lits, 2*eb, quantRadius(quantBits)); consumed != len(lits) {
		t.Fatalf("%dx%d: decode consumed %d of %d literal bytes", nx, ny, consumed, len(lits))
	}
	for i := range out {
		if bitsOf(out[i]) != bitsOf(refOut[i]) {
			t.Fatalf("%dx%d: decode[%d] differs from reference", nx, ny, i)
		}
	}
}

// TestKernel2Equivalence is the 2D twin of TestKernel3Equivalence.
func TestKernel2Equivalence(t *testing.T) {
	for _, g := range [][2]int{{1, 1}, {1, 9}, {9, 1}, {5, 7}, {16, 2}, {12, 12}} {
		for _, litFrac := range []float64{0, 0.03, 0.5} {
			checkKernel2[float32](t, g[0], g[1], int64(g[0]*31+g[1]), litFrac, 0.05)
			checkKernel2[float64](t, g[0], g[1], int64(g[0]*37+g[1]), litFrac, 0.05)
		}
	}
}

// TestKernel1Equivalence checks the 1D stream kernels against the
// reference quantizer/dequantizer pair.
func TestKernel1Equivalence(t *testing.T) {
	const quantBits, eb = 16, 0.01
	for _, n := range []int{0, 1, 2, 257, 4096} {
		for _, litFrac := range []float64{0, 0.1} {
			src := make([]float32, n)
			fillKernelData(src, int64(n)+int64(litFrac*10), litFrac)

			q := newQuantizer[float32](eb, quantBits)
			var prev float32
			for i, v := range src {
				pred := prev
				if i == 0 {
					pred = 0
				}
				prev = q.encode(v, pred)
			}

			codes := make([]uint32, n)
			lits, nlit := encodeStream1(src, codes, nil, eb, quantRadius(quantBits))
			for i := range codes {
				if codes[i] != q.codes[i] {
					t.Fatalf("n=%d: code[%d] = %d, reference %d", n, i, codes[i], q.codes[i])
				}
			}
			if !bytes.Equal(lits, q.lits) || nlit != q.nlit {
				t.Fatalf("n=%d: literal pool differs from reference", n)
			}

			dq := &dequantizer[float32]{twoEB: 2 * eb, radius: quantRadius(quantBits), codes: codes, lits: lits}
			refOut := make([]float32, n)
			var dprev float32
			for i := range refOut {
				pred := dprev
				if i == 0 {
					pred = 0
				}
				v, err := dq.decode(pred)
				if err != nil {
					t.Fatalf("n=%d: reference decode: %v", n, err)
				}
				refOut[i] = v
				dprev = v
			}
			out := make([]float32, n)
			decodeStream1(out, codes, lits, 2*eb, quantRadius(quantBits))
			for i := range out {
				if bitsOf(out[i]) != bitsOf(refOut[i]) {
					t.Fatalf("n=%d: decode[%d] differs from reference", n, i)
				}
			}
		}
	}
}

// TestQuadBatchEquivalence drives the quad-block lock-step kernels
// through the public batch API across batch sizes that exercise the quad
// main loop, the scalar tail, and both (1..9 blocks), on degenerate and
// literal-heavy geometries: payloads must be byte-identical to a
// per-block reference built from the retained scalar kernels, and
// decoded blocks bit-identical.
func TestQuadBatchEquivalence(t *testing.T) {
	const quantBits, eb = 16, 0.05
	for _, d := range []grid.Dims{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 3, Z: 5}, {X: 4, Y: 4, Z: 4}, {X: 5, Y: 3, Z: 7}} {
		for nblocks := 1; nblocks <= 9; nblocks++ {
			for _, litFrac := range []float64{0, 0.3} {
				blocks := make([]*grid.Grid3[float32], nblocks)
				for b := range blocks {
					blocks[b] = grid.New[float32](d)
					fillKernelData(blocks[b].Data, int64(d.Count()*100+b*10)+int64(litFrac*10), litFrac)
				}
				// Reference payload: scalar kernels, block by block.
				q := newQuantizer[float32](eb, quantBits)
				recon := grid.New[float32](d)
				for _, b := range blocks {
					clear(recon.Data)
					encodeLorenzo3Ref(b, recon, q)
				}
				opts := Options{ErrorBound: eb, DisableLossless: true}.withDefaults()
				want, _, err := seal[float32](kindBatch, []grid.Dims{d, {X: nblocks}}, d.Count()*nblocks, eb, opts, q.codes, q.lits, q.nlit)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := CompressBlocks(blocks, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("dims %v × %d blocks litFrac %v: batch payload differs from scalar reference", d, nblocks, litFrac)
				}
				// Decode: quad+tail must reproduce the reference decode bits.
				dec, err := DecompressBlocks[float32](got)
				if err != nil {
					t.Fatal(err)
				}
				dq := &dequantizer[float32]{twoEB: 2 * eb, radius: quantRadius(quantBits), codes: q.codes, lits: q.lits}
				for b := range blocks {
					ref := grid.New[float32](d)
					if err := decodeLorenzo3Ref(ref, dq); err != nil {
						t.Fatal(err)
					}
					for i := range ref.Data {
						if bitsOf(dec[b].Data[i]) != bitsOf(ref.Data[i]) {
							t.Fatalf("dims %v × %d blocks: block %d cell %d differs from reference decode", d, nblocks, b, i)
						}
					}
				}
			}
		}
	}
}

// TestFastRound pins fastRound == math.Round bit-for-bit: exact halfway
// ties (where RoundToEven and Round disagree), the values just below a
// tie that naive x+0.5 formulations misround, signed zeros, huge values
// past the integer-spacing threshold, and the IEEE specials.
func TestFastRound(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1),
		0.5, -0.5, 1.5, -1.5, 2.5, -2.5, 3.5, -3.5,
		0.49999999999999994, -0.49999999999999994, // x+0.5 rounds to 1.0; Round(x) = 0
		1.4999999999999998, -1.4999999999999998,
		0.25, -0.25, 0.75, -0.75,
		1 << 51, -(1 << 51), (1 << 51) + 0.5, -((1 << 51) + 0.5),
		1 << 52, -(1 << 52), 1 << 53, -(1 << 53),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	// sameRound treats any NaN as equal to any NaN: the ROUNDSD intrinsic
	// quiets signaling-NaN payloads where math.Round's bit path passes
	// them through, and the quantizer never observes NaN payload bits
	// (every NaN fails the radius check and takes the literal path).
	sameRound := func(got, want float64) bool {
		if math.IsNaN(got) || math.IsNaN(want) {
			return math.IsNaN(got) && math.IsNaN(want)
		}
		return math.Float64bits(got) == math.Float64bits(want)
	}
	for _, x := range cases {
		if got, want := fastRound(x), math.Round(x); !sameRound(got, want) {
			t.Errorf("fastRound(%v) = %v (%x), math.Round = %v (%x)", x, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200000; i++ {
		x := math.Float64frombits(rng.Uint64())
		if got, want := fastRound(x), math.Round(x); !sameRound(got, want) {
			t.Fatalf("fastRound(%x) = %x, math.Round = %x", math.Float64bits(x), math.Float64bits(got), math.Float64bits(want))
		}
		// Halfway ties drawn uniformly over the representable range.
		k := float64(int64(rng.Uint64()) >> (11 + rng.Intn(40)))
		x = k + math.Copysign(0.5, k)
		if got, want := fastRound(x), math.Round(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("fastRound(tie %v) = %v, math.Round = %v", x, got, want)
		}
	}
}

// TestCheckLiterals pins the one-shot pre-validation the branch-free
// decode kernels rely on.
func TestCheckLiterals(t *testing.T) {
	codes := []uint32{5, 0, 9, 0} // two literal markers
	if err := checkLiterals[float32](codes, make([]byte, 8)); err != nil {
		t.Fatalf("exact pool rejected: %v", err)
	}
	if err := checkLiterals[float32](codes, make([]byte, 7)); err == nil {
		t.Fatal("short pool accepted")
	}
	if err := checkLiterals[float64](codes, make([]byte, 15)); err == nil {
		t.Fatal("short float64 pool accepted")
	}
	if err := checkLiterals[float32](nil, nil); err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
}

// TestTruncatedLiteralPoolErrors confirms the pre-validation surfaces as
// a decode error through every public path (the reference kernels used to
// catch this per element).
func TestTruncatedLiteralPoolErrors(t *testing.T) {
	g := grid.New[float32](grid.Dims{X: 4, Y: 4, Z: 4})
	fillKernelData(g.Data, 3, 0.4)
	blob, st, err := Compress3D(g, Options{ErrorBound: 1e-3, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Literals == 0 {
		t.Fatal("expected literals in adversarial grid")
	}
	// Chop the tail of the literal section (the last payload bytes).
	if _, err := Decompress3D[float32](blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated literal pool decoded without error")
	}
}

// TestPredictReconstruct checks the exported predictor-stage API: the
// codes match the entropy stage of a full Compress3D payload, and
// Reconstruct3D inverts Predict3D bit-exactly against Decompress3D.
func TestPredictReconstruct(t *testing.T) {
	g := smoothGrid(grid.Dims{X: 12, Y: 10, Z: 8})
	opts := Options{ErrorBound: 0.05}
	enc := NewEncoder[float32]()
	codes, lits, nlit, err := enc.Predict3D(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	blob, st, err := Compress3D(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nlit != st.Literals {
		t.Fatalf("Predict3D counted %d literals, Compress3D %d", nlit, st.Literals)
	}
	fullCodes, err := ExtractCodes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != len(fullCodes) {
		t.Fatalf("Predict3D emitted %d codes, payload carries %d", len(codes), len(fullCodes))
	}
	for i := range codes {
		if codes[i] != fullCodes[i] {
			t.Fatalf("code[%d] = %d, payload carries %d", i, codes[i], fullCodes[i])
		}
	}

	want, err := Decompress3D[float32](blob)
	if err != nil {
		t.Fatal(err)
	}
	out := grid.New[float32](g.Dim)
	if err := Reconstruct3D(out, codes, lits, opts); err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if bitsOf(out.Data[i]) != bitsOf(want.Data[i]) {
			t.Fatalf("Reconstruct3D[%d] differs from Decompress3D", i)
		}
	}

	// Validation paths.
	if err := Reconstruct3D(grid.New[float32](grid.Dims{X: 2, Y: 2, Z: 2}), codes, lits, opts); err == nil {
		t.Fatal("wrong geometry accepted")
	}
	if err := Reconstruct3D(out, codes, lits[:0], opts); err == nil && nlit > 0 {
		t.Fatal("missing literal pool accepted")
	}
}
