package sz

import (
	"math"

	"repro/internal/grid"
)

// Temporal (cross-snapshot) kernels. Where the Lorenzo kernels predict a
// cell from its already-reconstructed spatial neighbors, the temporal
// kernels predict it from the reconstructed value of the same cell in a
// reference block — the previous snapshot of a slowly-evolving campaign.
// Because the prediction never reads the block being encoded, every
// element is independent: there is no wavefront, no boundary peel, and no
// loop-carried dependency at all, so the straight-line loop below already
// exposes full instruction-level parallelism (the property the quad
// kernels had to manufacture for Lorenzo).
//
// The per-element quantization is the same inlined qstep the production
// Lorenzo kernels use (identical formulas and evaluation order), so the
// error-bound argument is unchanged: the residual is taken against the
// reference's RECONSTRUCTED value — exactly what the decoder holds — so
// |v − recon| ≤ eb holds per snapshot and error never accumulates along a
// reference chain. The scalar oracles encodeTemporalRef/decodeTemporalRef
// route through quantizer/dequantizer; the equivalence suite compares the
// two element-for-element.

// encodeTemporalBlock encodes one block against its reference, writing
// the quantization codes and reconstruction. codes and recon must be
// presized to len(src); ref must be the reference block's reconstructed
// values at the same shape. Literals are appended via the standard
// collectLits post-pass and (lits, nlit) returned grown.
func encodeTemporalBlock[T grid.Float](src, ref, recon []T, codes []uint32, lits []byte, eb float64, radius int64) ([]byte, int) {
	twoEB := 2 * eb
	radiusF := float64(radius)
	for i, v := range src {
		pred := ref[i]
		diff := float64(v) - float64(pred)
		qv := fastRound(diff / twoEB)
		c, r := uint32(0), v
		if math.Abs(qv) < radiusF {
			if rr := T(float64(pred) + twoEB*qv); math.Abs(float64(v)-float64(rr)) <= eb {
				c, r = uint32(int64(qv)+radius), rr
			}
		}
		codes[i], recon[i] = c, r
	}
	return collectLits(codes, src, lits, 0)
}

// decodeTemporalBlock decodes one block given the reconstructed reference
// block, returning the literal bytes consumed. out must be presized to
// len(codes); ref is read only.
func decodeTemporalBlock[T grid.Float](out, ref []T, codes []uint32, lits []byte, twoEB float64, radius int64) int {
	litSize := literalSize[T]()
	lp := 0
	for i, c := range codes {
		if c != 0 {
			out[i] = dqstep(c, ref[i], twoEB, radius)
		} else {
			out[i] = loadLiteral[T](lits[lp:])
			lp += litSize
		}
	}
	return lp
}

// encodeTemporalRef is the retained scalar reference implementation of
// the temporal encode: per-element prediction from ref through
// quantizer.encode, writing the reconstruction into recon. The
// equivalence suite compares it against encodeTemporalBlock.
func encodeTemporalRef[T grid.Float](src, ref, recon []T, q *quantizer[T]) {
	for i, v := range src {
		recon[i] = q.encode(v, ref[i])
	}
}

// decodeTemporalRef is the retained scalar reference decode (see
// encodeTemporalRef).
func decodeTemporalRef[T grid.Float](out, ref []T, dq *dequantizer[T]) error {
	for i := range out {
		v, err := dq.decode(ref[i])
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}
