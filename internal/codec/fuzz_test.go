package codec

import (
	"testing"

	"repro/internal/amr"
	"repro/internal/grid"
)

// fuzzContainer builds a small valid container so the fuzzer starts from a
// structurally plausible input; the same seed is checked in under
// testdata/fuzz for deterministic CI runs.
func fuzzContainer(tb testing.TB) []byte {
	tb.Helper()
	ds := &amr.Dataset{Name: "fuzz", Field: "f", Ratio: 2}
	fine := amr.NewLevel(grid.Dims{X: 8, Y: 8, Z: 8}, 4)
	fine.Mask.Set(0, 0, 0, true)
	fine.Mask.Set(1, 1, 1, true)
	coarse := amr.NewLevel(grid.Dims{X: 4, Y: 4, Z: 4}, 4)
	coarse.Mask.Fill(true)
	coarse.Mask.Set(0, 0, 0, false)
	ds.Levels = []*amr.Level{fine, coarse}
	blob, err := EncodeContainer(7, SkeletonOf(ds), []byte("body"))
	if err != nil {
		tb.Fatal(err)
	}
	return blob
}

// FuzzDecodeContainer fuzzes the shared container parser: corrupt payloads
// must error out instead of panicking or allocating implausible skeletons.
func FuzzDecodeContainer(f *testing.F) {
	seed := fuzzContainer(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	mut := append([]byte(nil), seed...)
	mut[len(mut)/4] ^= 0x80
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, _, err := DecodeContainer(data, 7)
		if err != nil {
			return
		}
		for li, l := range sk.Levels {
			if l.UnitBlock <= 0 || l.Dims.Count() <= 0 || l.Dims.Count() > 1<<40 ||
				l.Dims.X > 1<<20 || l.Dims.Y > 1<<20 || l.Dims.Z > 1<<20 ||
				l.Dims.X%l.UnitBlock != 0 || l.Dims.Y%l.UnitBlock != 0 || l.Dims.Z%l.UnitBlock != 0 {
				t.Fatalf("DecodeContainer accepted implausible level %d geometry %+v", li, l)
			}
			if l.Mask.Dim != l.Dims.Div(l.UnitBlock) {
				t.Fatalf("level %d mask dims %v for level dims %v / %d", li, l.Mask.Dim, l.Dims, l.UnitBlock)
			}
		}
	})
}
