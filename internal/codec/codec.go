// Package codec defines the common interface all AMR compressors in this
// repository implement — TAC and the paper's three baselines — plus the
// shared container format that carries the dataset skeleton (level
// geometry and occupancy masks) alongside codec-specific payloads.
//
// Because every strategy's extraction is a pure function of the occupancy
// mask, storing the (deflated, bit-packed) masks in the container is all
// the metadata any codec needs; coordinates of sub-blocks are never
// serialized. The mask costs one bit per unit block, the "negligible
// (e.g., 0.1%) metadata overhead" of Sec. 3.1.
package codec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"repro/internal/amr"
	"repro/internal/grid"
	"repro/internal/preprocess"
	"repro/internal/sz"

	"repro/internal/bitio"
)

// Strategy selects a per-level pre-process strategy for TAC.
type Strategy uint8

// The strategies of Sec. 3, plus Auto (density-based hybrid selection) and
// the diagnostic ZF/NaST/Classic variants used in ablations.
const (
	Auto Strategy = iota
	ZF
	NaST
	OpST
	AKD
	GSP
	ClassicKD // fixed-cycle k-d tree; ablation for AKD's adaptive split
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ZF:
		return "ZF"
	case NaST:
		return "NaST"
	case OpST:
		return "OpST"
	case AKD:
		return "AKDTree"
	case GSP:
		return "GSP"
	case ClassicKD:
		return "ClassicKD"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Config carries the compression parameters shared by all codecs.
type Config struct {
	// ErrorBound with Mode selects the base error bound.
	ErrorBound float64
	// Mode is absolute or value-range-relative (per level).
	Mode sz.Mode
	// QuantBits forwards to sz.Options (0 = default 16).
	QuantBits int
	// LevelScales optionally multiplies the error bound per level, fine to
	// coarse — the adaptive error bound of Sec. 4.5 (e.g. {3,1} for the
	// 3:1 power-spectrum tuning). nil or missing entries mean 1.
	LevelScales []float64
	// Strategy forces a pre-process strategy for every level; Auto applies
	// the density filter with thresholds T1/T2.
	Strategy Strategy
	// T1 and T2 are the density thresholds of Sec. 3.4 (0 = defaults 0.50
	// and 0.60).
	T1, T2 float64
	// AdaptiveBaseline enables the Sec. 4.4 outer switch: when the finest
	// level's density is at least T2, hand the whole dataset to the 3D
	// baseline instead of level-wise TAC.
	AdaptiveBaseline bool
	// GSP tunes ghost-shell padding.
	GSP preprocess.GSPOptions
	// Workers > 1 compresses the sub-block batches of each level in
	// parallel (payloads stay byte-identical to the serial path); ≤ 1 is
	// serial. -1 uses all CPUs.
	Workers int
}

// WithDefaults fills in zero-valued thresholds.
func (c Config) WithDefaults() Config {
	if c.T1 == 0 {
		c.T1 = 0.50
	}
	if c.T2 == 0 {
		c.T2 = 0.60
	}
	return c
}

// LevelScale returns the error-bound multiplier for level li.
func (c Config) LevelScale(li int) float64 {
	if li < len(c.LevelScales) && c.LevelScales[li] > 0 {
		return c.LevelScales[li]
	}
	return 1
}

// LevelEB resolves the absolute error bound for one level, converting
// relative bounds against the range of the level's stored values.
func (c Config) LevelEB(li int, l *amr.Level) float64 {
	eb := c.ErrorBound * c.LevelScale(li)
	if c.Mode == sz.Rel {
		lo, hi := maskedRange(l)
		if r := hi - lo; r > 0 {
			eb *= r
		}
	}
	return eb
}

func maskedRange(l *amr.Level) (lo, hi float64) {
	first := true
	md := l.Mask.Dim
	for bx := 0; bx < md.X; bx++ {
		for by := 0; by < md.Y; by++ {
			for bz := 0; bz < md.Z; bz++ {
				if !l.Mask.At(bx, by, bz) {
					continue
				}
				r := l.BlockRegion(bx, by, bz)
				for x := r.X0; x < r.X1; x++ {
					for y := r.Y0; y < r.Y1; y++ {
						base := l.Grid.Dim.Index(x, y, r.Z0)
						for _, v := range l.Grid.Data[base : base+(r.Z1-r.Z0)] {
							f := float64(v)
							if first {
								lo, hi = f, f
								first = false
								continue
							}
							if f < lo {
								lo = f
							}
							if f > hi {
								hi = f
							}
						}
					}
				}
			}
		}
	}
	return lo, hi
}

// Codec compresses and decompresses whole AMR datasets.
type Codec interface {
	// Name identifies the codec in experiment output ("TAC", "1D",
	// "zMesh", "3D").
	Name() string
	// Compress produces a self-contained payload.
	Compress(ds *amr.Dataset, cfg Config) ([]byte, error)
	// Decompress reconstructs the dataset (values within error bound,
	// identical structure).
	Decompress(blob []byte) (*amr.Dataset, error)
}

const containerMagic = 0x54414343 // "TACC"

// EncodeMask serializes an occupancy mask as bit-packed bytes passed
// through DEFLATE — the representation both the in-memory container and
// the on-disk archive footer store (one bit per unit block before the
// lossless stage, the "negligible metadata overhead" of Sec. 3.1).
func EncodeMask(m *grid.Mask) ([]byte, error) {
	packed := m.AppendPacked(make([]byte, 0, m.PackedLen()))
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(packed); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMask inverts EncodeMask, allocating a mask of the given dims. The
// inflate is capped at the mask's own packed size, so a corrupt stream
// cannot balloon past it.
func DecodeMask(d grid.Dims, comp []byte) (*grid.Mask, error) {
	m := grid.NewMask(d)
	fr := flate.NewReader(bytes.NewReader(comp))
	packed, err := io.ReadAll(io.LimitReader(fr, int64(m.PackedLen())+1))
	fr.Close()
	if err != nil {
		return nil, fmt.Errorf("codec: inflating mask: %w", err)
	}
	if err := m.SetPacked(packed); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return m, nil
}

// Skeleton is the structural part of a dataset: everything except values.
type Skeleton struct {
	Name   string
	Field  string
	Ratio  int
	Levels []LevelInfo
}

// LevelInfo is one level's geometry plus occupancy.
type LevelInfo struct {
	Dims      grid.Dims
	UnitBlock int
	Mask      *grid.Mask
}

// SkeletonOf extracts the skeleton from a dataset (masks are shared, not
// copied).
func SkeletonOf(ds *amr.Dataset) Skeleton {
	sk := Skeleton{Name: ds.Name, Field: ds.Field, Ratio: ds.Ratio}
	for _, l := range ds.Levels {
		sk.Levels = append(sk.Levels, LevelInfo{Dims: l.Grid.Dim, UnitBlock: l.UnitBlock, Mask: l.Mask})
	}
	return sk
}

// NewDataset materializes an empty dataset (zero grids, masks cloned) from
// the skeleton.
func (sk Skeleton) NewDataset() *amr.Dataset {
	ds := &amr.Dataset{Name: sk.Name, Field: sk.Field, Ratio: sk.Ratio}
	for _, li := range sk.Levels {
		l := amr.NewLevel(li.Dims, li.UnitBlock)
		l.Mask.CopyFrom(li.Mask)
		ds.Levels = append(ds.Levels, l)
	}
	return ds
}

// EncodeContainer assembles a payload: codec id, skeleton, then the
// codec-specific body.
func EncodeContainer(codecID byte, sk Skeleton, body []byte) ([]byte, error) {
	var out []byte
	out = bitio.AppendUvarint(out, containerMagic)
	out = append(out, codecID)
	out = bitio.AppendBytes(out, []byte(sk.Name))
	out = bitio.AppendBytes(out, []byte(sk.Field))
	out = bitio.AppendUvarint(out, uint64(sk.Ratio))
	out = bitio.AppendUvarint(out, uint64(len(sk.Levels)))
	for _, li := range sk.Levels {
		out = bitio.AppendUvarint(out, uint64(li.Dims.X))
		out = bitio.AppendUvarint(out, uint64(li.Dims.Y))
		out = bitio.AppendUvarint(out, uint64(li.Dims.Z))
		out = bitio.AppendUvarint(out, uint64(li.UnitBlock))
		comp, err := EncodeMask(li.Mask)
		if err != nil {
			return nil, err
		}
		out = bitio.AppendBytes(out, comp)
	}
	return append(out, body...), nil
}

// DecodeContainer parses a payload, verifying the codec id, and returns
// the skeleton and the codec-specific body.
func DecodeContainer(blob []byte, wantCodecID byte) (Skeleton, []byte, error) {
	var sk Skeleton
	m, n, err := bitio.Uvarint(blob)
	if err != nil || m != containerMagic {
		return sk, nil, fmt.Errorf("codec: bad container magic")
	}
	blob = blob[n:]
	if len(blob) == 0 {
		return sk, nil, fmt.Errorf("codec: truncated container")
	}
	if blob[0] != wantCodecID {
		return sk, nil, fmt.Errorf("codec: payload written by codec %d, not %d", blob[0], wantCodecID)
	}
	blob = blob[1:]
	nameB, n, err := bitio.Bytes(blob)
	if err != nil {
		return sk, nil, err
	}
	sk.Name = string(nameB)
	blob = blob[n:]
	fieldB, n, err := bitio.Bytes(blob)
	if err != nil {
		return sk, nil, err
	}
	sk.Field = string(fieldB)
	blob = blob[n:]
	ratio, n, err := bitio.Uvarint(blob)
	if err != nil {
		return sk, nil, err
	}
	sk.Ratio = int(ratio)
	blob = blob[n:]
	nlev, n, err := bitio.Uvarint(blob)
	if err != nil {
		return sk, nil, err
	}
	blob = blob[n:]
	if nlev == 0 || nlev > 64 {
		return sk, nil, fmt.Errorf("codec: implausible level count %d", nlev)
	}
	for i := uint64(0); i < nlev; i++ {
		var li LevelInfo
		for _, p := range []*int{&li.Dims.X, &li.Dims.Y, &li.Dims.Z, &li.UnitBlock} {
			v, n, err := bitio.Uvarint(blob)
			if err != nil {
				return sk, nil, err
			}
			*p = int(v)
			blob = blob[n:]
		}
		// Bound the extents and their product before allocating the mask,
		// so corrupt containers error instead of over-allocating.
		if li.Dims.X > 1<<20 || li.Dims.Y > 1<<20 || li.Dims.Z > 1<<20 {
			return sk, nil, fmt.Errorf("codec: implausible level %d dims %v", i, li.Dims)
		}
		if cells := uint64(li.Dims.X) * uint64(li.Dims.Y) * uint64(li.Dims.Z); cells > 1<<40 {
			return sk, nil, fmt.Errorf("codec: implausible level %d cell count %d", i, cells)
		}
		if li.UnitBlock <= 0 || li.Dims.Count() <= 0 {
			return sk, nil, fmt.Errorf("codec: corrupt level %d geometry", i)
		}
		// NewDataset materializes levels with amr.NewLevel, which panics on
		// a unit block that does not divide the extents; reject here so
		// corrupt containers error instead.
		if li.Dims.X%li.UnitBlock != 0 || li.Dims.Y%li.UnitBlock != 0 || li.Dims.Z%li.UnitBlock != 0 {
			return sk, nil, fmt.Errorf("codec: level %d unit block %d does not divide dims %v", i, li.UnitBlock, li.Dims)
		}
		comp, n, err := bitio.Bytes(blob)
		if err != nil {
			return sk, nil, err
		}
		blob = blob[n:]
		li.Mask, err = DecodeMask(li.Dims.Div(li.UnitBlock), comp)
		if err != nil {
			return sk, nil, fmt.Errorf("codec: level %d mask: %w", i, err)
		}
		sk.Levels = append(sk.Levels, li)
	}
	return sk, blob, nil
}
