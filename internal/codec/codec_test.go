package codec

import (
	"math/rand"
	"testing"

	"repro/internal/amr"
	"repro/internal/grid"
	"repro/internal/sz"
)

func testSkeletonDataset() *amr.Dataset {
	fine := amr.NewLevel(grid.Dims{X: 8, Y: 8, Z: 8}, 4)
	coarse := amr.NewLevel(grid.Dims{X: 4, Y: 4, Z: 4}, 4)
	fine.Mask.Set(0, 0, 0, true)
	fine.Mask.Set(1, 1, 1, true)
	coarse.Mask.Set(0, 0, 0, true)
	rng := rand.New(rand.NewSource(3))
	for i := range fine.Grid.Data {
		fine.Grid.Data[i] = float32(rng.NormFloat64())
	}
	return &amr.Dataset{Name: "sk", Field: "baryon_density", Ratio: 2, Levels: []*amr.Level{fine, coarse}}
}

func TestContainerRoundTrip(t *testing.T) {
	ds := testSkeletonDataset()
	sk := SkeletonOf(ds)
	body := []byte{1, 2, 3, 4, 5}
	blob, err := EncodeContainer(9, sk, body)
	if err != nil {
		t.Fatal(err)
	}
	got, gotBody, err := DecodeContainer(blob, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sk" || got.Field != "baryon_density" || got.Ratio != 2 {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Levels) != 2 {
		t.Fatalf("levels: %d", len(got.Levels))
	}
	for li := range sk.Levels {
		if got.Levels[li].Dims != sk.Levels[li].Dims || got.Levels[li].UnitBlock != sk.Levels[li].UnitBlock {
			t.Fatalf("level %d geometry mismatch", li)
		}
		for i := 0; i < sk.Levels[li].Mask.Len(); i++ {
			if got.Levels[li].Mask.AtIndex(i) != sk.Levels[li].Mask.AtIndex(i) {
				t.Fatalf("level %d mask bit %d mismatch", li, i)
			}
		}
	}
	if string(gotBody) != string(body) {
		t.Fatalf("body: %v", gotBody)
	}
}

func TestContainerRejectsWrongCodec(t *testing.T) {
	sk := SkeletonOf(testSkeletonDataset())
	blob, err := EncodeContainer(9, sk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeContainer(blob, 8); err == nil {
		t.Fatal("wrong codec id should be rejected")
	}
	if _, _, err := DecodeContainer(nil, 9); err == nil {
		t.Fatal("nil blob should be rejected")
	}
	if _, _, err := DecodeContainer(blob[:4], 9); err == nil {
		t.Fatal("truncated blob should be rejected")
	}
}

func TestSkeletonNewDataset(t *testing.T) {
	ds := testSkeletonDataset()
	sk := SkeletonOf(ds)
	fresh := sk.NewDataset()
	if fresh.StoredCells() != ds.StoredCells() {
		t.Fatalf("stored cells %d vs %d", fresh.StoredCells(), ds.StoredCells())
	}
	for _, l := range fresh.Levels {
		for _, v := range l.Grid.Data {
			if v != 0 {
				t.Fatal("fresh dataset grids must be zero")
			}
		}
	}
	// Masks are copies, not aliases.
	fresh.Levels[0].Mask.Set(0, 0, 0, false)
	if !ds.Levels[0].Mask.At(0, 0, 0) {
		t.Fatal("NewDataset aliases the skeleton masks")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.T1 != 0.50 || cfg.T2 != 0.60 {
		t.Fatalf("defaults: T1=%v T2=%v", cfg.T1, cfg.T2)
	}
	custom := Config{T1: 0.3, T2: 0.9}.WithDefaults()
	if custom.T1 != 0.3 || custom.T2 != 0.9 {
		t.Fatal("explicit thresholds overridden")
	}
}

func TestConfigLevelScale(t *testing.T) {
	cfg := Config{LevelScales: []float64{3, 1}}
	if cfg.LevelScale(0) != 3 || cfg.LevelScale(1) != 1 || cfg.LevelScale(2) != 1 {
		t.Fatalf("scales: %v %v %v", cfg.LevelScale(0), cfg.LevelScale(1), cfg.LevelScale(2))
	}
	if (Config{}).LevelScale(0) != 1 {
		t.Fatal("missing scales should default to 1")
	}
}

func TestConfigLevelEB(t *testing.T) {
	ds := testSkeletonDataset()
	abs := Config{ErrorBound: 5}
	if got := abs.LevelEB(0, ds.Levels[0]); got != 5 {
		t.Fatalf("abs LevelEB = %v", got)
	}
	scaled := Config{ErrorBound: 5, LevelScales: []float64{2, 1}}
	if got := scaled.LevelEB(0, ds.Levels[0]); got != 10 {
		t.Fatalf("scaled LevelEB = %v", got)
	}
	// Rel mode multiplies by the masked range.
	rel := Config{ErrorBound: 0.1, Mode: sz.Rel}
	vals := ds.Levels[0].MaskedValues(nil)
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	want := 0.1 * (float64(hi) - float64(lo))
	if got := rel.LevelEB(0, ds.Levels[0]); got < want*0.999 || got > want*1.001 {
		t.Fatalf("rel LevelEB = %v, want %v", got, want)
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		Auto: "auto", ZF: "ZF", NaST: "NaST", OpST: "OpST",
		AKD: "AKDTree", GSP: "GSP", ClassicKD: "ClassicKD",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
