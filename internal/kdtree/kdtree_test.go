package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func randomMask(d grid.Dims, density float64, seed int64) *grid.Mask {
	rng := rand.New(rand.NewSource(seed))
	m := grid.NewMask(d)
	for i := 0; i < m.Len(); i++ {
		m.SetIndex(i, rng.Float64() < density)
	}
	return m
}

// verifyCover checks leaves tile exactly the occupied blocks.
func verifyCover(t *testing.T, m *grid.Mask, boxes []Box) {
	t.Helper()
	cover := make([]int, m.Dim.Count())
	for _, b := range boxes {
		r := b.Region()
		if r.Intersect(m.Dim) != r {
			t.Fatalf("box %+v exceeds domain %v", b, m.Dim)
		}
		for x := r.X0; x < r.X1; x++ {
			for y := r.Y0; y < r.Y1; y++ {
				for z := r.Z0; z < r.Z1; z++ {
					cover[m.Dim.Index(x, y, z)]++
				}
			}
		}
	}
	for i, c := range cover {
		want := 0
		if m.AtIndex(i) {
			want = 1
		}
		if c != want {
			x, y, z := m.Dim.Coords(i)
			t.Fatalf("block (%d,%d,%d) covered %d times, want %d", x, y, z, c, want)
		}
	}
}

func TestAdaptiveCoversExactly(t *testing.T) {
	for _, density := range []float64{0, 0.1, 0.5, 0.77, 1} {
		m := randomMask(grid.Dims{X: 16, Y: 16, Z: 16}, density, int64(density*1000)+1)
		boxes, st := Adaptive(m)
		verifyCover(t, m, boxes)
		if st.FullLeaves != len(boxes) {
			t.Fatalf("stats full leaves %d, boxes %d", st.FullLeaves, len(boxes))
		}
	}
}

func TestClassicCoversExactly(t *testing.T) {
	for _, density := range []float64{0.1, 0.6, 0.95} {
		m := randomMask(grid.Dims{X: 16, Y: 16, Z: 16}, density, int64(density*100)+5)
		boxes, _ := Classic(m)
		verifyCover(t, m, boxes)
	}
}

func TestNonCubeDomain(t *testing.T) {
	// Non-power-of-two, non-cube domains must still cover exactly.
	m := randomMask(grid.Dims{X: 12, Y: 6, Z: 10}, 0.4, 77)
	boxes, _ := Adaptive(m)
	verifyCover(t, m, boxes)
	boxes, _ = Classic(m)
	verifyCover(t, m, boxes)
}

func TestFullMaskSingleLeaf(t *testing.T) {
	m := grid.NewMask(grid.Dims{X: 8, Y: 8, Z: 8})
	m.Fill(true)
	boxes, st := Adaptive(m)
	if len(boxes) != 1 || boxes[0].Blocks() != 512 {
		t.Fatalf("full mask gave %d leaves: %+v", len(boxes), boxes)
	}
	if st.Nodes != 1 {
		t.Fatalf("full mask visited %d nodes, want 1", st.Nodes)
	}
}

func TestEmptyMaskNoLeaves(t *testing.T) {
	m := grid.NewMask(grid.Dims{X: 8, Y: 8, Z: 8})
	boxes, _ := Adaptive(m)
	if len(boxes) != 0 {
		t.Fatalf("empty mask gave %d leaves", len(boxes))
	}
}

func TestAdaptiveBeatsClassicOnSkewedData(t *testing.T) {
	// An off-center slab: the adaptive split should isolate it in fewer
	// leaves than the fixed cycle (the motivation of Fig. 8: n[2][2]'s
	// largest sub-block is 4×2, which fixed splitting misses).
	d := grid.Dims{X: 16, Y: 16, Z: 16}
	m := grid.NewMask(d)
	m.FillRegion(grid.Region{X0: 0, Y0: 4, Z0: 0, X1: 16, Y1: 12, Z1: 16}, true)
	ab, _ := Adaptive(m)
	cb, _ := Classic(m)
	verifyCover(t, m, ab)
	verifyCover(t, m, cb)
	if len(ab) > len(cb) {
		t.Fatalf("adaptive produced %d leaves, classic %d — adaptive should not be worse here", len(ab), len(cb))
	}
}

func TestQuickAdaptiveCoverage(t *testing.T) {
	f := func(seed int64, density uint8, side uint8) bool {
		n := int(side)%12 + 2
		m := randomMask(grid.Dims{X: n, Y: n, Z: n}, float64(density%101)/100, seed)
		boxes, _ := Adaptive(m)
		cover := make([]int, m.Dim.Count())
		for _, b := range boxes {
			r := b.Region()
			for x := r.X0; x < r.X1; x++ {
				for y := r.Y0; y < r.Y1; y++ {
					for z := r.Z0; z < r.Z1; z++ {
						if !m.Dim.Contains(x, y, z) {
							return false
						}
						cover[m.Dim.Index(x, y, z)]++
					}
				}
			}
		}
		for i, c := range cover {
			want := 0
			if m.AtIndex(i) {
				want = 1
			}
			if c != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxHelpers(t *testing.T) {
	b := Box{X: 1, Y: 2, Z: 3, DX: 4, DY: 5, DZ: 6}
	if b.Blocks() != 120 {
		t.Fatalf("Blocks = %d", b.Blocks())
	}
	r := b.Region()
	if r.X0 != 1 || r.X1 != 5 || r.Y1 != 7 || r.Z1 != 9 {
		t.Fatalf("Region = %+v", r)
	}
}

func TestDeterministic(t *testing.T) {
	m := randomMask(grid.Dims{X: 16, Y: 16, Z: 16}, 0.5, 123)
	a, _ := Adaptive(m)
	b, _ := Adaptive(m)
	if len(a) != len(b) {
		t.Fatal("non-deterministic leaf count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("leaf %d differs", i)
		}
	}
}
