// Package kdtree implements spatial subdivision over unit-block occupancy
// masks: the classic fixed-cycle k-d tree used in particle data compression
// (Sec. 2.4 of the TAC paper) and the paper's adaptive k-d tree (AKDTree,
// Sec. 3.2 / Algorithm 2), which picks the split dimension maximizing the
// occupancy difference between the two children so that large fully-
// occupied leaves emerge early.
//
// Both variants keep splitting until a node is entirely empty or entirely
// full; the full leaves are the sub-blocks handed to the compressor.
package kdtree

import (
	"sort"

	"repro/internal/grid"
)

// Box is an axis-aligned box in unit-block coordinates: origin and size.
type Box struct {
	X, Y, Z    int
	DX, DY, DZ int
}

// Region converts the box to a grid.Region in block coordinates.
func (b Box) Region() grid.Region {
	return grid.Region{X0: b.X, Y0: b.Y, Z0: b.Z, X1: b.X + b.DX, Y1: b.Y + b.DY, Z1: b.Z + b.DZ}
}

// Blocks returns the number of unit blocks the box covers.
func (b Box) Blocks() int { return b.DX * b.DY * b.DZ }

func boxFromRegion(r grid.Region) Box {
	return Box{X: r.X0, Y: r.Y0, Z: r.Z0, DX: r.X1 - r.X0, DY: r.Y1 - r.Y0, DZ: r.Z1 - r.Z0}
}

// Stats reports construction counters, used by the Fig. 13 time-overhead
// experiment and the ablation benches.
type Stats struct {
	Nodes      int // tree nodes visited
	FullLeaves int
	EmptyLeafs int
}

// Adaptive runs AKDTree over the mask and returns the full leaf boxes in
// deterministic (depth-first) order, plus construction stats.
//
// Following Algorithm 2, nodes cycle through three shapes — cube (1:1:1),
// flat (2:2:1) and slim (2:1:1). A cube is conceptually split into eight
// octants whose occupancy counts c1..c8 decide the split dimension (the one
// with the maximum |left−right| difference); the flat child reuses the four
// counts on its side; the slim child splits along its long dimension,
// yielding cubes again. Occupancy counts come from a 3D summed-area table,
// so every decision is O(1).
func Adaptive(mask *grid.Mask) ([]Box, Stats) {
	t := grid.NewSumTable(mask)
	var leaves []Box
	var st Stats
	// The shape cycle assumes a power-of-two cube domain. Embed the mask
	// in one; the padding is empty, so the spurious space prunes in
	// O(log n) splits.
	n := 1
	for n < mask.Dim.X || n < mask.Dim.Y || n < mask.Dim.Z {
		n <<= 1
	}
	adaptiveSplit(t, grid.Region{X1: n, Y1: n, Z1: n}, &leaves, &st)
	return leaves, st
}

func adaptiveSplit(t *grid.SumTable, r grid.Region, leaves *[]Box, st *Stats) {
	st.Nodes++
	// Clip to the actual domain for counting; the clipped part is what the
	// leaf would cover.
	clipped := r.Intersect(t.Dims())
	if clipped.Empty() {
		st.EmptyLeafs++
		return
	}
	cnt := t.Count(clipped)
	if cnt == 0 {
		st.EmptyLeafs++
		return
	}
	if clipped == r && cnt == int64(r.Count()) {
		st.FullLeaves++
		*leaves = append(*leaves, boxFromRegion(r))
		return
	}
	if r.Count() == 1 {
		// A single unit block is empty or full; both cases are handled
		// above when the block lies inside the domain. Out-of-domain
		// slivers cannot reach here because clipped.Empty() caught them.
		st.FullLeaves++
		*leaves = append(*leaves, boxFromRegion(r))
		return
	}
	d := r.Dims()
	var axis int
	switch {
	case d.X == d.Y && d.Y == d.Z:
		// Cube: pick the dimension with the maximum occupancy difference
		// between its two halves (equivalent to the octant-count sums of
		// Algorithm 2).
		axis = maxDiffAxis(t, r, []int{0, 1, 2})
	case twoLongOneShort(d):
		// Flat: the short dimension was just split; choose between the
		// two long dimensions.
		axis = maxDiffAxis(t, r, longAxes(d))
	default:
		// Slim (or irregular boundary shape): split the largest dimension.
		axis = largestAxis(d)
	}
	a, b := halve(r, axis)
	adaptiveSplit(t, a, leaves, st)
	adaptiveSplit(t, b, leaves, st)
}

// Classic runs the fixed-cycle k-d tree (split dimensions x, y, z in turn,
// always at the midpoint) until every leaf is empty or full. It is the
// reference the paper's Fig. 8 contrasts AKDTree against, and serves as the
// ablation baseline for the adaptive split choice.
func Classic(mask *grid.Mask) ([]Box, Stats) {
	t := grid.NewSumTable(mask)
	var leaves []Box
	var st Stats
	n := 1
	for n < mask.Dim.X || n < mask.Dim.Y || n < mask.Dim.Z {
		n <<= 1
	}
	classicSplit(t, grid.Region{X1: n, Y1: n, Z1: n}, 0, &leaves, &st)
	return leaves, st
}

func classicSplit(t *grid.SumTable, r grid.Region, depth int, leaves *[]Box, st *Stats) {
	st.Nodes++
	clipped := r.Intersect(t.Dims())
	if clipped.Empty() {
		st.EmptyLeafs++
		return
	}
	cnt := t.Count(clipped)
	if cnt == 0 {
		st.EmptyLeafs++
		return
	}
	if clipped == r && cnt == int64(r.Count()) {
		st.FullLeaves++
		*leaves = append(*leaves, boxFromRegion(r))
		return
	}
	d := r.Dims()
	axis := depth % 3
	// Skip axes that cannot be split further.
	for i := 0; i < 3 && axisLen(d, axis) < 2; i++ {
		axis = (axis + 1) % 3
	}
	a, b := halve(r, axis)
	classicSplit(t, a, depth+1, leaves, st)
	classicSplit(t, b, depth+1, leaves, st)
}

// maxDiffAxis returns the axis from candidates whose midpoint split
// maximizes the occupancy difference between the two halves. Ties resolve
// to the lowest axis index for determinism.
func maxDiffAxis(t *grid.SumTable, r grid.Region, candidates []int) int {
	sort.Ints(candidates)
	best, bestDiff := candidates[0], int64(-1)
	for _, ax := range candidates {
		if axisLen(r.Dims(), ax) < 2 {
			continue
		}
		a, b := halve(r, ax)
		diff := t.Count(a.Intersect(t.Dims())) - t.Count(b.Intersect(t.Dims()))
		if diff < 0 {
			diff = -diff
		}
		if diff > bestDiff {
			best, bestDiff = ax, diff
		}
	}
	return best
}

func axisLen(d grid.Dims, axis int) int {
	switch axis {
	case 0:
		return d.X
	case 1:
		return d.Y
	default:
		return d.Z
	}
}

func largestAxis(d grid.Dims) int {
	axis := 0
	if d.Y > axisLen(d, axis) {
		axis = 1
	}
	if d.Z > axisLen(d, axis) {
		axis = 2
	}
	return axis
}

// twoLongOneShort reports whether exactly one dimension is strictly the
// shortest and the other two are equal — the "flat" shape of Algorithm 2.
func twoLongOneShort(d grid.Dims) bool {
	switch {
	case d.X == d.Y && d.Z < d.X:
		return true
	case d.X == d.Z && d.Y < d.X:
		return true
	case d.Y == d.Z && d.X < d.Y:
		return true
	}
	return false
}

func longAxes(d grid.Dims) []int {
	switch {
	case d.X == d.Y && d.Z < d.X:
		return []int{0, 1}
	case d.X == d.Z && d.Y < d.X:
		return []int{0, 2}
	default:
		return []int{1, 2}
	}
}

// halve splits r at the midpoint of the given axis.
func halve(r grid.Region, axis int) (grid.Region, grid.Region) {
	a, b := r, r
	switch axis {
	case 0:
		mid := (r.X0 + r.X1) / 2
		a.X1, b.X0 = mid, mid
	case 1:
		mid := (r.Y0 + r.Y1) / 2
		a.Y1, b.Y0 = mid, mid
	default:
		mid := (r.Z0 + r.Z1) / 2
		a.Z1, b.Z0 = mid, mid
	}
	return a, b
}
