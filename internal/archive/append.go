package archive

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// OpenAppend re-opens an existing TACA file for appending. It parses the
// newest committed footer (recovering — and truncating — a torn tail left
// by a crashed append first), positions f at the end of that generation,
// and returns a Writer already holding the committed member index: new
// members stream through the usual BeginMember/AddDataset pipeline after
// the old trailer, and Commit/Close seal them under a fresh
// generation-stamped footer with crash-safe fsync ordering. Committed
// bytes are never overwritten, so concurrent Readers opened on any
// earlier generation stay valid throughout.
//
// f must be open for both reading and writing; the Writer does not close
// it.
func OpenAppend(f *os.File) (*Writer, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	rd, err := openAt(f, size)
	if err != nil && errors.Is(err, ErrCorrupt) {
		// Torn tail from a crashed append: fall back to the newest
		// committed generation and cut the wreckage off so the next
		// append starts at a clean boundary.
		var end int64
		if rd2, e, rerr := recoverScan(f, size); rerr == nil {
			rd, end, err = rd2, e, nil
			if terr := f.Truncate(end); terr != nil {
				return nil, fmt.Errorf("archive: truncating torn tail at %d: %w", end, terr)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(rd.size, io.SeekStart); err != nil {
		return nil, fmt.Errorf("archive: seeking to append position: %w", err)
	}
	return &Writer{
		w:         f,
		file:      f,
		off:       rd.size,
		members:   rd.members,
		committed: rd.gen + 1,
		// A checksummed tail keeps its digests: new frames are digested as
		// they stream out instead of being read back at Commit. A v4 tail
		// likewise keeps its footer digest on every later commit.
		Checksums: rd.sums,
		FooterSum: rd.fsum,
		// The committed tail doubles as the delta-reference source: if the
		// appender enables Keyframe, the first member of each field primes
		// its reference by decoding the field's newest committed member.
		tail: rd,
	}, nil
}

// OpenAppendFile opens the TACA file at path read-write for appending.
// Closing the returned file commits nothing by itself — seal appended
// members with Writer.Commit or Writer.Close first.
func OpenAppendFile(path string) (*Writer, *os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, err
	}
	w, err := OpenAppend(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return w, f, nil
}
