package archive

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/amr"
	"repro/internal/bitio"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/sim"
)

// driftDataset derives the next snapshot of a campaign from ds: identical
// AMR structure, values moved by a smooth per-unit-block drift of a few
// error bounds plus sub-bound jitter — the slowly-evolving regime delta
// coding targets.
func driftDataset(ds *amr.Dataset, name string, eb float64, seed int64) *amr.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := ds.Clone()
	out.Name = name
	for _, l := range out.Levels {
		for _, ord := range l.Mask.OccupiedIndices() {
			bx, by, bz := l.Mask.Dim.Coords(ord)
			r := l.BlockRegion(bx, by, bz)
			drift := amr.Value((rng.Float64()*2 - 1) * 3 * eb)
			for x := r.X0; x < r.X1; x++ {
				for y := r.Y0; y < r.Y1; y++ {
					for z := r.Z0; z < r.Z1; z++ {
						i := l.Grid.Dim.Index(x, y, z)
						l.Grid.Data[i] += drift + amr.Value((rng.Float64()*2-1)*eb/4)
					}
				}
			}
		}
	}
	return out
}

// testCampaign generates steps correlated snapshots of one field at a
// shared AMR structure.
func testCampaign(t testing.TB, steps int) []*amr.Dataset {
	t.Helper()
	base, err := sim.Generate(sim.Spec{
		Name: "t0", FinestN: 32, Levels: 2, UnitBlock: 4,
		Seed: 7, LeafFractions: []float64{0.3, 0.7},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	snaps := []*amr.Dataset{base}
	for s := 1; s < steps; s++ {
		snaps = append(snaps, driftDataset(snaps[s-1], fmt.Sprintf("t%d", s), testEB, int64(s)))
	}
	return snaps
}

// buildDeltaArchive writes the snapshots with the given keyframe interval.
func buildDeltaArchive(t testing.TB, snaps []*amr.Dataset, keyframe int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 16
	w.Keyframe = keyframe
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeltaArchiveRoundTrip is the campaign-mode acceptance test: a
// 6-snapshot campaign at keyframe interval 4 must produce a smaller
// archive than intra coding, carry the expected keyframe/delta member
// pattern, and reconstruct EVERY chain member within the error bound —
// residuals are taken against reconstructed predecessors, so depth never
// compounds error.
func TestDeltaArchiveRoundTrip(t *testing.T) {
	const keyframe = 4
	snaps := testCampaign(t, 6)
	delta := buildDeltaArchive(t, snaps, keyframe)
	intra := buildDeltaArchive(t, snaps, 0)
	if len(delta) >= len(intra) {
		t.Fatalf("delta archive %d bytes, intra %d — campaign coding did not pay", len(delta), len(intra))
	}

	r, err := Open(bytes.NewReader(delta), int64(len(delta)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Members()); got != len(snaps) {
		t.Fatalf("archive holds %d members, want %d", got, len(snaps))
	}
	for i := range snaps {
		m := &r.Members()[i]
		wantRef := i - 1
		if i%keyframe == 0 {
			wantRef = -1 // keyframes bound every chain
		}
		if m.Ref != wantRef {
			t.Fatalf("member %d references %d, want %d", i, m.Ref, wantRef)
		}
		if m.Gen != 0 {
			t.Fatalf("member %d generation %d, want 0", i, m.Gen)
		}
	}

	for i, ds := range snaps {
		recon, err := r.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range ds.Levels {
			if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > testEB {
				t.Fatalf("member %d level %d max err %.4g > bound %.4g", i, li, worst, testEB)
			}
		}
	}
}

// TestDeltaOffByteIdentity pins the format-stability contract: with
// Keyframe off the writer's output is byte-identical to the pre-delta
// (v1) writer, and even with Keyframe ON, a campaign whose snapshots
// never share an AMR structure codes fully intra and still commits the
// identical v1 bytes.
func TestDeltaOffByteIdentity(t *testing.T) {
	snaps := testSnapshots(t) // structures differ between timesteps
	v1 := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 16
	w.Keyframe = 4
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), v1) {
		t.Fatalf("keyframe-on writer emitted %d bytes differing from v1 output (%d bytes) on a structure-mismatched campaign", buf.Len(), len(v1))
	}
	if !bytes.HasSuffix(v1, trailerMagic[:]) {
		t.Fatalf("delta-off archive does not end with the v1 trailer magic")
	}

	r, err := Open(bytes.NewReader(v1), int64(len(v1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Members() {
		if m := &r.Members()[i]; m.Ref != -1 || m.IsDelta() {
			t.Fatalf("v1 member %d decoded with Ref=%d", i, m.Ref)
		}
	}
}

// TestDeltaAppendContinuesChain appends to a committed delta archive and
// checks the chain crosses the generation boundary: the appender primes
// its reference by decoding the committed tail, so the first appended
// member may delta-code against the last committed one.
func TestDeltaAppendContinuesChain(t *testing.T) {
	const keyframe = 4
	snaps := testCampaign(t, 4)
	path := filepath.Join(t.TempDir(), "campaign.taca")

	fl, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fl)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 16
	w.Keyframe = keyframe
	for _, ds := range snaps[:2] {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fl.Close()

	w2, fl2, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.BatchBlocks = 16
	w2.Keyframe = keyframe
	for _, ds := range snaps[2:] {
		if err := w2.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	fl2.Close()

	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	wantRef := []int{-1, 0, 1, 2}
	wantGen := []int{0, 0, 1, 1}
	for i := range snaps {
		m := &r.Members()[i]
		if m.Ref != wantRef[i] {
			t.Fatalf("member %d references %d, want %d (chain should cross the append boundary)", i, m.Ref, wantRef[i])
		}
		if m.Gen != wantGen[i] {
			t.Fatalf("member %d generation %d, want %d", i, m.Gen, wantGen[i])
		}
	}
	for i, ds := range snaps {
		recon, err := r.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range ds.Levels {
			if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > testEB {
				t.Fatalf("member %d level %d max err %.4g > bound %.4g", i, li, worst, testEB)
			}
		}
	}
}

// TestDeltaParallelWriterMatchesSerial extends the byte-identity contract
// to campaign mode: the parallel batch pipeline must emit the same delta
// archive as the serial path.
func TestDeltaParallelWriterMatchesSerial(t *testing.T) {
	snaps := testCampaign(t, 4)
	write := func(workers int) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		w.BatchBlocks = 8
		w.Keyframe = 3
		for _, ds := range snaps {
			if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB, Workers: workers}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := write(1)
	for _, workers := range []int{2, 4} {
		if got := write(workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d delta archive differs from serial (%d vs %d bytes)", workers, len(got), len(serial))
		}
	}
}

// rawV2Member appends one hand-built v2 footer member record: one level
// of dims edge³ at unit block 4, a full occupancy mask, and nb batches
// whose delta flags are taken from flags. It exists so the hostile-link
// tests can emit footers the production encoder refuses to.
func rawV2Member(t *testing.T, out []byte, name string, refPlus1, gen uint64, edge, batchBlocks int, flags []uint64) []byte {
	t.Helper()
	out = bitio.AppendBytes(out, []byte(name))
	out = bitio.AppendBytes(out, []byte("f"))
	out = bitio.AppendUvarint(out, 2) // ratio
	out = bitio.AppendUvarint(out, math.Float64bits(1e9))
	out = bitio.AppendUvarint(out, 0)  // mode
	out = bitio.AppendUvarint(out, 16) // quant bits
	out = bitio.AppendUvarint(out, refPlus1)
	out = bitio.AppendUvarint(out, gen)
	out = bitio.AppendUvarint(out, 0) // no level scales
	out = bitio.AppendUvarint(out, 1) // one level
	out = bitio.AppendUvarint(out, uint64(edge))
	out = bitio.AppendUvarint(out, uint64(edge))
	out = bitio.AppendUvarint(out, uint64(edge))
	out = bitio.AppendUvarint(out, 4) // unit block
	mask := grid.NewMask(grid.Dims{X: edge / 4, Y: edge / 4, Z: edge / 4})
	mask.Fill(true)
	comp, err := codec.EncodeMask(mask)
	if err != nil {
		t.Fatal(err)
	}
	out = bitio.AppendBytes(out, comp)
	out = bitio.AppendUvarint(out, uint64(batchBlocks))
	nb := (mask.Count() + batchBlocks - 1) / batchBlocks
	out = bitio.AppendUvarint(out, uint64(nb))
	for b := 0; b < nb; b++ {
		out = bitio.AppendUvarint(out, uint64(headerLen+b*10)) // offset
		out = bitio.AppendUvarint(out, 10)                     // length
	}
	if len(flags) != nb {
		t.Fatalf("rawV2Member: %d flags for %d batches", len(flags), nb)
	}
	for _, fl := range flags {
		out = bitio.AppendUvarint(out, fl)
	}
	return out
}

// TestHostileDependencyLinks drives decodeFooter with hand-built v2
// footers carrying every malformed dependency shape: self and forward
// references (which subsume cycles — valid links always point strictly
// backward), delta batches without a reference, mode flags outside the
// known set, and references at a mismatched AMR structure. All must
// error; none may hang, panic, or allocate unboundedly.
func TestHostileDependencyLinks(t *testing.T) {
	intra := []uint64{0}
	delta := []uint64{1}
	cases := []struct {
		name   string
		footer func(t *testing.T) []byte
	}{
		{"self reference", func(t *testing.T) []byte {
			out := bitio.AppendUvarint(nil, 1)
			return rawV2Member(t, out, "m0", 1, 0, 4, 64, intra) // refPlus1=1 → ref 0 == own index
		}},
		{"forward reference", func(t *testing.T) []byte {
			out := bitio.AppendUvarint(nil, 2)
			out = rawV2Member(t, out, "m0", 2, 0, 4, 64, delta) // ref 1 > own index 0
			return rawV2Member(t, out, "m1", 0, 0, 4, 64, intra)
		}},
		{"ref at or past member count", func(t *testing.T) []byte {
			out := bitio.AppendUvarint(nil, 1)
			return rawV2Member(t, out, "m0", 9, 0, 4, 64, delta)
		}},
		{"delta batch without reference", func(t *testing.T) []byte {
			out := bitio.AppendUvarint(nil, 1)
			return rawV2Member(t, out, "m0", 0, 0, 4, 64, delta)
		}},
		{"unknown mode flags", func(t *testing.T) []byte {
			out := bitio.AppendUvarint(nil, 2)
			out = rawV2Member(t, out, "m0", 0, 0, 4, 64, intra)
			return rawV2Member(t, out, "m1", 1, 0, 4, 64, []uint64{2})
		}},
		{"structure mismatch", func(t *testing.T) []byte {
			out := bitio.AppendUvarint(nil, 2)
			out = rawV2Member(t, out, "m0", 0, 0, 8, 64, intra) // 8³ reference
			return rawV2Member(t, out, "m1", 1, 0, 4, 64, delta)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeFooter(tc.footer(t), 2); err == nil {
				t.Fatalf("hostile footer (%s) decoded without error", tc.name)
			}
		})
	}

	// Positive control: the same hand-rolled layout with a well-formed
	// backward link decodes, proving the cases above fail on the hostile
	// links rather than on the raw encoding.
	out := bitio.AppendUvarint(nil, 2)
	out = rawV2Member(t, out, "m0", 0, 0, 4, 64, intra)
	out = rawV2Member(t, out, "m1", 1, 0, 4, 64, delta)
	members, err := decodeFooter(out, 2)
	if err != nil {
		t.Fatalf("well-formed raw footer rejected: %v", err)
	}
	if len(members) != 2 || members[1].Ref != 0 || !members[1].Levels[0].IsDelta(0) {
		t.Fatalf("well-formed raw footer decoded wrong: %+v", members)
	}
}

// TestTornDeltaTail crashes an append mid-delta-member and checks both
// recovery paths: Open serves the last committed generation, and
// OpenAppend truncates the wreckage and can continue the campaign.
func TestTornDeltaTail(t *testing.T) {
	const keyframe = 4
	snaps := testCampaign(t, 3)
	path := filepath.Join(t.TempDir(), "torn.taca")

	fl, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fl)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 16
	w.Keyframe = keyframe
	for _, ds := range snaps[:2] {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	committed, err := fl.Seek(0, io.SeekEnd)
	if err != nil {
		t.Fatal(err)
	}
	// The crash: frames of a third (delta) member land after the trailer
	// but no footer ever commits them.
	w2, err := OpenAppend(fl)
	if err != nil {
		t.Fatal(err)
	}
	w2.BatchBlocks = 16
	w2.Keyframe = keyframe
	if err := w2.AddDataset(snaps[2], codec.Config{ErrorBound: testEB}); err != nil {
		t.Fatal(err)
	}
	fl.Close() // no Commit — the delta tail is torn

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) <= committed {
		t.Fatal("torn append wrote nothing past the committed generation")
	}
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatalf("recovery from torn delta tail failed: %v", err)
	}
	if r.EndOffset() != committed || len(r.Members()) != 2 {
		t.Fatalf("recovered end %d with %d members, want %d with 2", r.EndOffset(), len(r.Members()), committed)
	}

	// OpenAppend must cut the wreckage and still continue the chain.
	w3, fl3, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w3.BatchBlocks = 16
	w3.Keyframe = keyframe
	if err := w3.AddDataset(snaps[2], codec.Config{ErrorBound: testEB}); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	fl3.Close()
	r2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if m := &r2.Members()[2]; m.Ref != 1 {
		t.Fatalf("post-recovery append references %d, want 1", m.Ref)
	}
	recon, err := r2.Extract(2)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range snaps[2].Levels {
		if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > testEB {
			t.Fatalf("level %d max err %.4g > bound %.4g", li, worst, testEB)
		}
	}
}
