package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/sim"
)

// FuzzOpen throws mutated archive bytes — seeded with fresh,
// appended/multi-generation, and torn-tail archives so the
// generation-stamped trailer and the recovery scan are both in the
// corpus — at the full open path: trailer parse, recovery scan, footer
// decode, frame-bounds validation. Open must never panic, and any Reader
// it does return must hold an index whose every batch decodes or fails
// cleanly.
func FuzzOpen(f *testing.F) {
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.taca")
	mkSnap := func(name string, seed int64) *amr.Dataset {
		ds, err := sim.Generate(sim.Spec{
			Name: name, FinestN: 16, Levels: 2, UnitBlock: 4,
			Seed: seed, LeafFractions: []float64{0.3, 0.7},
		}, sim.BaryonDensity)
		if err != nil {
			f.Fatal(err)
		}
		return ds
	}

	// Seed 1: a single-generation archive.
	writeSeedArchive(f, path, mkSnap("s0", 1))
	gen0, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(gen0)

	// Seeds 2-3: two appended generations, and a torn tail mid-append.
	for i := 1; i <= 2; i++ {
		w, fl, err := OpenAppendFile(path)
		if err != nil {
			f.Fatal(err)
		}
		if err := w.AddDataset(mkSnap("s"+string(rune('0'+i)), int64(i+1)), codec.Config{ErrorBound: 1e9}); err != nil {
			f.Fatal(err)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		fl.Close()
	}
	multi, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(multi)
	f.Add(multi[:len(gen0)+(len(multi)-len(gen0))/2]) // torn second append
	f.Add(multi[:len(multi)-5])                       // torn trailer
	f.Add([]byte("TACA\x01 not really an archive TACAEND1"))

	// Seeds 4-6: a v2 campaign archive (delta members under TACAEND3),
	// a torn delta tail, and a bit-flip inside its footer region — the
	// mutation engine starts from here to attack the dependency links.
	dpath := filepath.Join(dir, "delta.taca")
	dfl, err := os.Create(dpath)
	if err != nil {
		f.Fatal(err)
	}
	dw, err := NewWriter(dfl)
	if err != nil {
		f.Fatal(err)
	}
	dw.BatchBlocks = 8
	dw.Keyframe = 3
	prev := mkSnap("d0", 9)
	for i := 0; i < 3; i++ {
		if err := dw.AddDataset(prev, codec.Config{ErrorBound: 1e9}); err != nil {
			f.Fatal(err)
		}
		prev = driftDataset(prev, "d"+string(rune('1'+i)), 1e9, int64(i))
	}
	if err := dw.Close(); err != nil {
		f.Fatal(err)
	}
	dfl.Close()
	dv2, err := os.ReadFile(dpath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(dv2)
	f.Add(dv2[:len(dv2)-trailer3Len-7]) // torn delta tail: footer cut mid-record
	flip := append([]byte(nil), dv2...)
	flip[len(flip)-trailer3Len-10] ^= 0x08 // corrupt a footer byte near the links
	f.Add(flip)

	// Seeds 7-8: a v3 checksummed campaign archive (digests under
	// TACAEND4) and a flip in its digest region, so the mutation engine
	// attacks the sum varints and the checksum-verified read path.
	spath := filepath.Join(dir, "sums.taca")
	sfl, err := os.Create(spath)
	if err != nil {
		f.Fatal(err)
	}
	sw, err := NewWriter(sfl)
	if err != nil {
		f.Fatal(err)
	}
	sw.BatchBlocks = 8
	sw.Keyframe = 3
	sw.Checksums = true
	prev = mkSnap("c0", 13)
	for i := 0; i < 3; i++ {
		if err := sw.AddDataset(prev, codec.Config{ErrorBound: 1e9}); err != nil {
			f.Fatal(err)
		}
		prev = driftDataset(prev, "c"+string(rune('1'+i)), 1e9, int64(10+i))
	}
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	sfl.Close()
	sv3, err := os.ReadFile(spath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sv3)
	sflip := append([]byte(nil), sv3...)
	sflip[len(sflip)-trailer4Len-6] ^= 0x11 // corrupt a footer byte near the digests
	f.Add(sflip)

	// Seeds 9-11: a multi-generation v4 archive (footer digest under
	// TACAEND5), a footer-digest flip that must fall back to the previous
	// generation, and a flip inside the digest word itself.
	vpath := filepath.Join(dir, "fsum.taca")
	vfl, err := os.Create(vpath)
	if err != nil {
		f.Fatal(err)
	}
	vw, err := NewWriter(vfl)
	if err != nil {
		f.Fatal(err)
	}
	vw.BatchBlocks = 8
	vw.FooterSum = true
	if err := vw.AddDataset(mkSnap("v0", 21), codec.Config{ErrorBound: 1e9}); err != nil {
		f.Fatal(err)
	}
	if err := vw.Close(); err != nil {
		f.Fatal(err)
	}
	vfl.Close()
	vw2, vfl2, err := OpenAppendFile(vpath)
	if err != nil {
		f.Fatal(err)
	}
	if err := vw2.AddDataset(mkSnap("v1", 22), codec.Config{ErrorBound: 1e9}); err != nil {
		f.Fatal(err)
	}
	if err := vw2.Close(); err != nil {
		f.Fatal(err)
	}
	vfl2.Close()
	fv4, err := os.ReadFile(vpath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fv4)
	vflip := append([]byte(nil), fv4...)
	vflip[len(vflip)-trailer5Len-9] ^= 0x10 // footer flip: digest must reject, Open falls back a generation
	f.Add(vflip)
	cflip := append([]byte(nil), fv4...)
	cflip[len(cflip)-10] ^= 0x10 // flip inside the trailer's digest word
	f.Add(cflip)

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<20 {
			return
		}
		r, err := Open(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			return
		}
		if r.EndOffset() > int64(len(b)) {
			t.Fatalf("recovered end %d past input size %d", r.EndOffset(), len(b))
		}
		for mi := range r.Members() {
			m := &r.Members()[mi]
			if m.StoredCells() > 1<<22 {
				continue // cap per-member work; geometry was already validated
			}
			for li := range m.Levels {
				for bi := range m.Levels[li].Batches {
					_, _ = r.DecodeBatch(mi, li, bi) // must not panic
				}
			}
		}
	})
}

func writeSeedArchive(f *testing.F, path string, snaps ...*amr.Dataset) {
	fl, err := os.Create(path)
	if err != nil {
		f.Fatal(err)
	}
	defer fl.Close()
	w, err := NewWriter(fl)
	if err != nil {
		f.Fatal(err)
	}
	w.BatchBlocks = 8
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: 1e9}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
}
