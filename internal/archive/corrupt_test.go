package archive

import (
	"bytes"
	"errors"
	"io"
	"slices"
	"strconv"
	"strings"
	"testing"

	"repro/internal/amr"
	"repro/internal/codec"
)

// flipExtract opens the damaged archive bytes and runs every extraction
// path, returning the first error encountered (nil when the damage was
// harmless, e.g. a flipped metadata float).
func flipExtract(blob []byte) error {
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return err
	}
	for mi := range r.Members() {
		if _, err := r.Extract(mi); err != nil {
			return err
		}
		for li := range r.Members()[mi].Levels {
			if _, err := r.ExtractLevel(mi, li); err != nil {
				return err
			}
		}
	}
	return nil
}

// assertClean fails if err is a raw io error with no archive context —
// the regression this test pins: a damaged file must yield an error that
// says where in the archive the damage bit, not a bare "EOF".
func assertClean(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		return
	}
	msg := err.Error()
	if msg == io.EOF.Error() || msg == io.ErrUnexpectedEOF.Error() {
		t.Fatalf("%s: raw io error with no context: %v", what, err)
	}
	if !strings.Contains(msg, "archive") && !strings.Contains(msg, "sz:") {
		t.Fatalf("%s: error carries no archive context: %v", what, err)
	}
}

// TestCorruptIndexCleanErrors bit-flips its way across the footer index
// and the trailer: every damaged archive must either still extract
// (metadata-only damage) or fail with a contextful, ErrCorrupt-style
// error — never a raw io error.
func TestCorruptIndexCleanErrors(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps[:2], codec.Config{ErrorBound: testEB}, 8)

	// Locate the footer: the last 16 bytes are length + magic.
	var flen uint64
	for i := 7; i >= 0; i-- {
		flen = flen<<8 | uint64(blob[len(blob)-trailerLen+i])
	}
	footerStart := len(blob) - trailerLen - int(flen)

	// Flip one bit in every footer byte (step 3 keeps the test fast while
	// still covering every varint field class), plus the whole trailer.
	for off := footerStart; off < len(blob); off += 3 {
		damaged := append([]byte(nil), blob...)
		damaged[off] ^= 0x10
		err := flipExtract(damaged)
		assertClean(t, err, "bit flip at offset "+strconv.Itoa(off))
	}
}

// TestTruncatedArchiveCleanErrors cuts the file at several points; Open
// must always say the archive is corrupt or truncated, with context.
func TestTruncatedArchiveCleanErrors(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps[:1], codec.Config{ErrorBound: testEB}, 8)
	for _, frac := range []float64{0.15, 0.5, 0.9, 0.999} {
		cut := blob[:int(float64(len(blob))*frac)]
		_, err := Open(bytes.NewReader(cut), int64(len(cut)))
		if err == nil {
			t.Fatalf("Open accepted an archive truncated to %d/%d bytes", len(cut), len(blob))
		}
		assertClean(t, err, "truncation")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation error is not ErrCorrupt: %v", err)
		}
	}
}

// TestFrameDamageIsErrCorrupt flips bits inside the data section (the
// frames) and asserts decode failures are tagged ErrCorrupt with
// member/level/batch context. Frame payload damage may also decode to
// different values without erroring (sz streams are not checksummed);
// only actual errors are inspected.
func TestFrameDamageIsErrCorrupt(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps[:1], codec.Config{ErrorBound: testEB}, 8)
	sawErr := false
	for off := headerLen; off < headerLen+256 && off < len(blob); off += 5 {
		damaged := append([]byte(nil), blob...)
		damaged[off] ^= 0x01
		err := flipExtract(damaged)
		if err == nil {
			continue
		}
		sawErr = true
		assertClean(t, err, "frame flip at offset "+strconv.Itoa(off))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("frame damage error is not ErrCorrupt: %v", err)
		}
		if !strings.Contains(err.Error(), "batch") && !strings.Contains(err.Error(), "member") {
			t.Fatalf("frame damage error names no member/batch: %v", err)
		}
	}
	if !sawErr {
		t.Skip("no frame flip produced an error on this payload")
	}
}

// TestDeltaCorruptionBlastRadius bit-flips one frame of a checksummed
// campaign archive and maps the damage: every member whose reference
// chain passes through the damaged frame must fail with ErrCorrupt —
// never reconstruct from a poisoned reference — and every other member
// must extract byte-identical to the clean archive.
func TestDeltaCorruptionBlastRadius(t *testing.T) {
	const keyframe = 3
	snaps := testCampaign(t, 6)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 16
	w.Keyframe = keyframe
	w.Checksums = true
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	clean, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	// Member layout at keyframe 3: 0 (key), 1→0, 2→1, 3 (key), 4→3, 5→4.
	for i, wantRef := range []int{-1, 0, 1, -1, 3, 4} {
		if got := clean.Members()[i].Ref; got != wantRef {
			t.Fatalf("member %d references %d, want %d — campaign layout changed under the test", i, got, wantRef)
		}
	}
	want := make([]*amr.Dataset, len(snaps))
	for i := range snaps {
		if want[i], err = clean.Extract(i); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name    string
		damage  int   // member whose frame gets the flip
		poisons []int // members that must fail (the chain closure)
	}{
		{"keyframe", 0, []int{0, 1, 2}},
		{"mid-chain delta", 4, []int{4, 5}},
		{"chain tail", 2, []int{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := clean.Members()[tc.damage].Levels[0].Batches[0]
			damaged := append([]byte(nil), blob...)
			damaged[rec.Offset+rec.Length/2] ^= 0x20
			dr, err := Open(bytes.NewReader(damaged), int64(len(damaged)))
			if err != nil {
				t.Fatal(err)
			}
			poisoned := make(map[int]bool, len(tc.poisons))
			for _, mi := range tc.poisons {
				poisoned[mi] = true
			}
			for mi := range snaps {
				ds, err := dr.Extract(mi)
				if poisoned[mi] {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("member %d depends on damaged member %d but extracted (err=%v)", mi, tc.damage, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("member %d does not depend on damaged member %d but failed: %v", mi, tc.damage, err)
				}
				for li := range ds.Levels {
					if !slices.Equal(ds.Levels[li].Grid.Data, want[mi].Levels[li].Grid.Data) {
						t.Fatalf("member %d level %d differs from the clean extraction", mi, li)
					}
				}
			}
		})
	}
}

// TestReadAtFailureHasContext serves the archive through a ReaderAt that
// fails after the index is parsed, simulating disk trouble mid-extract:
// the io error must surface wrapped, not bare.
func TestReadAtFailureHasContext(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps[:1], codec.Config{ErrorBound: testEB}, 8)
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	// Swap the backing reader for one that truncates frame reads.
	r.r = &truncatingReaderAt{r: bytes.NewReader(blob), limit: headerLen + 10}
	_, err = r.Extract(0)
	if err == nil {
		t.Fatal("Extract succeeded through a failing ReaderAt")
	}
	assertClean(t, err, "failing ReaderAt")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAt failure not tagged ErrCorrupt: %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("underlying io error not preserved in the chain: %v", err)
	}
}

// truncatingReaderAt yields EOF for any read past limit.
type truncatingReaderAt struct {
	r     io.ReaderAt
	limit int64
}

func (tr *truncatingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= tr.limit {
		return 0, io.EOF
	}
	if off+int64(len(p)) > tr.limit {
		n, _ := tr.r.ReadAt(p[:tr.limit-off], off)
		return n, io.ErrUnexpectedEOF
	}
	return tr.r.ReadAt(p, off)
}
