package archive

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/codec"
)

// buildSummed builds an in-memory checksummed (v3) archive.
func buildSummed(t testing.TB, n int) []byte {
	t.Helper()
	snaps := testSnapshots(t)[:n]
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 8
	w.Checksums = true
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// damageFrame flips one byte in the middle of the given frame and
// returns the flipped offset.
func damageFrame(t *testing.T, blob []byte, r *Reader, mi, li, b int) int64 {
	t.Helper()
	rec := r.Members()[mi].Levels[li].Batches[b]
	off := rec.Offset + rec.Length/2
	blob[off] ^= 0x20
	return off
}

func TestRepairMemberSplices(t *testing.T) {
	clean := buildSummed(t, 2)
	path := filepath.Join(t.TempDir(), "dmg.taca")
	cr, err := Open(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), clean...)
	damageFrame(t, damaged, cr, 0, 0, 0)
	damageFrame(t, damaged, cr, 0, 1, 0)
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := Open(f, int64(len(damaged)))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.ScrubMember(0)); n != 2 {
		t.Fatalf("scrub found %d issues, want 2", n)
	}
	rs, err := r.RepairMember(0, bytes.NewReader(clean), f)
	if err != nil {
		t.Fatalf("RepairMember: %v", err)
	}
	if rs.FramesDamaged != 2 || rs.FramesRepaired != 2 || rs.BytesRespliced <= 0 || !reflect.DeepEqual(rs.Members, []int{0}) {
		t.Fatalf("stats = %+v", rs)
	}
	if rs.FramesScanned < 2 {
		t.Fatalf("scanned %d frames", rs.FramesScanned)
	}
	// The file is byte-identical to the clean original again.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean) {
		t.Fatal("repaired file differs from the clean original")
	}
	if issues := r.Scrub(); len(issues) != 0 {
		t.Fatalf("repaired archive scrubs dirty: %v", issues)
	}
}

func TestRepairMemberCleanIsNoop(t *testing.T) {
	clean := buildSummed(t, 1)
	path := filepath.Join(t.TempDir(), "ok.taca")
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := Open(f, int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.RepairMember(0, bytes.NewReader(clean), f)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FramesRepaired != 0 || rs.FramesDamaged != 0 || len(rs.Members) != 0 {
		t.Fatalf("clean member repair stats = %+v", rs)
	}
}

func TestRepairFromDamagedReplicaFails(t *testing.T) {
	clean := buildSummed(t, 1)
	cr, err := Open(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), clean...)
	off := damageFrame(t, damaged, cr, 0, 0, 0)
	// The replica is damaged at the same frame (different bit).
	badReplica := append([]byte(nil), clean...)
	badReplica[off] ^= 0x08

	path := filepath.Join(t.TempDir(), "dmg.taca")
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := Open(f, int64(len(damaged)))
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := r.RepairMember(0, bytes.NewReader(badReplica), f)
	if !errors.Is(rerr, ErrCorrupt) || errors.Is(rerr, ErrIO) {
		t.Fatalf("repair from damaged replica = %v, want ErrCorrupt (not ErrIO)", rerr)
	}
	// The bad bytes were rejected before any splice: the file still holds
	// its own (detectable) damage, not the replica's.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, damaged) {
		t.Fatal("failed repair modified the file")
	}
}

func TestRepairFetchErrorIsErrIO(t *testing.T) {
	clean := buildSummed(t, 1)
	cr, err := Open(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), clean...)
	damageFrame(t, damaged, cr, 0, 0, 0)
	path := filepath.Join(t.TempDir(), "dmg.taca")
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := Open(f, int64(len(damaged)))
	if err != nil {
		t.Fatal(err)
	}
	// A truncated replica: every frame fetch runs off its end.
	_, rerr := r.RepairMember(0, bytes.NewReader(clean[:16]), f)
	if !errors.Is(rerr, ErrIO) {
		t.Fatalf("repair with unreadable replica = %v, want ErrIO", rerr)
	}
}

func TestRepairWholeArchive(t *testing.T) {
	clean := buildSummed(t, 3)
	cr, err := Open(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), clean...)
	damageFrame(t, damaged, cr, 0, 0, 0)
	damageFrame(t, damaged, cr, 2, 0, 1)
	path := filepath.Join(t.TempDir(), "dmg.taca")
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Repair(path, bytes.NewReader(clean))
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rs.FramesRepaired != 2 || !reflect.DeepEqual(rs.Members, []int{0, 2}) {
		t.Fatalf("stats = %+v", rs)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean) {
		t.Fatal("repaired file differs from the clean original")
	}
}
