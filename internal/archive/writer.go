package archive

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/sz"
)

// encoders and decoders keep warm sz scratch shared by all writers and
// readers in the process: each worker of the batch pipelines borrows one
// for the duration of a frame, so steady-state archive traffic stops
// allocating code streams, recon grids, Huffman codebook arenas and
// decode lookup tables, and DEFLATE state.
var (
	encoders sz.EncoderPool[amr.Value]
	decoders sz.DecoderPool[amr.Value]
)

// Writer appends members to a TACA archive, streaming frames to the
// underlying io.Writer as they are compressed. Only the unit-block batches
// currently being compressed are held uncompressed in memory (one per
// worker), so archives of arbitrarily long snapshot sequences stream
// through without full materialization.
//
// A Writer is not safe for concurrent use; the parallelism lives inside
// AddLevel's worker pool.
type Writer struct {
	// BatchBlocks is the number of unit blocks per frame for subsequently
	// begun members; 0 means DefaultBatchBlocks.
	BatchBlocks int

	// Keyframe enables campaign (delta) coding for subsequently begun
	// members: when a member's field was already written at identical AMR
	// structure, each batch is coded both intra and as residuals against
	// the previous member's reconstruction, and the smaller frame wins —
	// so a delta archive is never larger than its intra counterpart. A
	// fresh keyframe (fully intra member) starts at least every Keyframe
	// members per field, bounding every reference chain a reader must
	// resolve. 0 or 1 disables delta coding entirely, and the output is
	// then byte-identical to a pre-delta writer (v1 footer and trailers).
	// Delta mode keeps one reconstructed snapshot per field in memory,
	// relaxing the streaming-memory guarantee by the field's stored cells.
	Keyframe int

	// Checksums records a CRC32C digest of every frame in the footer and
	// commits the v3 (TACAEND4) format, so readers verify each frame
	// before decoding and Scrub audits without decoding. Set it before
	// the first frame is written; enabling it later is only supported on
	// file-backed writers (OpenAppend), where Commit backfills digests
	// for already-written frames by reading them back. Off (the default)
	// leaves the output byte-identical to the pre-checksum formats. Once
	// an archive carries digests they are kept on every later commit,
	// whether or not the appending writer sets this (OpenAppend inherits
	// it from the tail).
	Checksums bool

	// FooterSum additionally records a CRC32C digest of the footer bytes
	// (and of the trailer's length and generation words) in the trailer,
	// committing the v4 (TACAEND5) format: Open verifies the index itself
	// before trusting it and falls back to the previous committed
	// generation when the newest footer is damaged. Implies Checksums —
	// an index worth digesting indexes digested frames — with the same
	// set-before-the-first-frame rule, and is equally sticky across
	// appends (OpenAppend inherits it from a v4 tail). Off (the default)
	// leaves the output byte-identical to the v1–v3 formats.
	FooterSum bool

	w       io.Writer
	file    *os.File // non-nil for append-mode writers: enables Commit's fsync ordering
	off     int64    // bytes emitted so far == next frame's offset
	members []Member
	cur     *MemberWriter
	closed  bool

	// prev holds, per field, the reconstruction of the newest sealed
	// member — the reference candidate for the next member of that field.
	// tail, set by OpenAppend, lazily primes prev from the committed
	// archive so delta chains continue across append generations.
	prev map[string]*fieldRecon
	tail *Reader

	committed uint64 // footer generations written so far (== next trailer's generation)
	dirty     bool   // members sealed since the last Commit

	gatheredCells atomic.Int64 // cells currently gathered, pre-compression
	peakGathered  atomic.Int64
}

// fieldRecon is the retained reconstruction of one member, the temporal
// reference for the next member of the same field.
type fieldRecon struct {
	index  int // member index the reconstruction belongs to
	chain  int // delta-chain depth of that member (0 = keyframe)
	levels []levelRecon
}

// levelRecon is one level of a fieldRecon: the structure the next member
// must match for delta coding, plus the reconstructed occupied blocks in
// row-major mask order.
type levelRecon struct {
	dims        grid.Dims
	unitBlock   int
	batchBlocks int
	mask        *grid.Mask
	blocks      []*grid.Grid3[amr.Value]
}

// matches reports whether a level with the given structure can be
// delta-coded against lr: delta frames only decode when batch b of both
// members covers exactly the same blocks.
func (lr *levelRecon) matches(d grid.Dims, unitBlock, batchBlocks int, mask *grid.Mask) bool {
	return lr.dims == d && lr.unitBlock == unitBlock &&
		lr.batchBlocks == batchBlocks && lr.mask.Equal(mask)
}

// Stats reports what a Writer has done so far.
type Stats struct {
	Members      int
	BytesWritten int64
	// PeakGatheredValues is the high-water mark of uncompressed cells the
	// writer's pipeline held at once — the streaming-memory guarantee made
	// observable (at most workers × BatchBlocks × UnitBlock³).
	PeakGatheredValues int64
}

// NewWriter writes the archive header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	hdr := append(headerMagic[:], Version)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("archive: writing header: %w", err)
	}
	return &Writer{w: w, off: headerLen}, nil
}

// Stats returns the writer's progress counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Members:            len(w.members),
		BytesWritten:       w.off,
		PeakGatheredValues: w.peakGathered.Load(),
	}
}

// AddDataset compresses a whole snapshot as one member. The member name is
// ds.Name and the field ds.Field.
func (w *Writer) AddDataset(ds *amr.Dataset, cfg codec.Config) error {
	mw, err := w.BeginMember(ds.Name, ds.Field, ds.Ratio, cfg)
	if err != nil {
		return err
	}
	for _, l := range ds.Levels {
		if err := mw.AddLevel(l); err != nil {
			return err
		}
	}
	return mw.Close()
}

// BeginMember starts a new member. Levels are appended fine to coarse with
// AddLevel — each is compressed and flushed immediately, so the caller may
// generate or load levels one at a time and discard them after the call —
// and the member is sealed with Close before the next BeginMember.
func (w *Writer) BeginMember(name, field string, ratio int, cfg codec.Config) (*MemberWriter, error) {
	if w.closed {
		return nil, fmt.Errorf("archive: writer is closed")
	}
	if w.cur != nil {
		return nil, fmt.Errorf("archive: member %q still open", w.cur.member.Name)
	}
	if ratio < 2 {
		return nil, fmt.Errorf("archive: member %q has refinement ratio %d < 2", name, ratio)
	}
	cfg = cfg.WithDefaults()
	w.cur = &MemberWriter{
		w:   w,
		cfg: cfg,
		member: Member{
			Name:        name,
			Field:       field,
			Ratio:       ratio,
			ErrorBound:  cfg.ErrorBound,
			Mode:        cfg.Mode,
			QuantBits:   cfg.QuantBits,
			LevelScales: append([]float64(nil), cfg.LevelScales...),
			Ref:         -1,
		},
	}
	if w.Keyframe > 1 {
		w.cur.capturing = true
		fr, err := w.primed(field)
		if err != nil {
			w.cur = nil
			return nil, err
		}
		// Chains are cut BEFORE they would reach Keyframe members: a
		// reference at depth Keyframe−1 forces this member intra.
		if fr != nil && fr.chain+1 < w.Keyframe {
			w.cur.ref = fr
		}
	}
	return w.cur, nil
}

// primed returns the reference candidate for field: the reconstruction
// of the newest sealed member of that field, decoding it from the
// appended-to archive (through any delta chain) on first use. It returns
// nil when the field has never been written.
func (w *Writer) primed(field string) (*fieldRecon, error) {
	if fr, ok := w.prev[field]; ok {
		return fr, nil
	}
	if w.prev == nil {
		w.prev = make(map[string]*fieldRecon)
	}
	if w.tail == nil {
		return nil, nil
	}
	tm := w.tail.Members()
	mi := -1
	for i := len(tm) - 1; i >= 0; i-- {
		if tm[i].Field == field {
			mi = i
			break
		}
	}
	if mi < 0 {
		w.prev[field] = nil
		return nil, nil
	}
	m := &tm[mi]
	fr := &fieldRecon{index: mi}
	for r := mi; tm[r].Ref >= 0; r = tm[r].Ref {
		fr.chain++
	}
	for li := range m.Levels {
		idx := &m.Levels[li]
		lr := levelRecon{
			dims:        idx.Dims,
			unitBlock:   idx.UnitBlock,
			batchBlocks: idx.BatchBlocks,
			mask:        idx.Mask.Clone(),
			blocks:      make([]*grid.Grid3[amr.Value], 0, idx.occupiedCount()),
		}
		for b := range idx.Batches {
			blocks, err := w.tail.DecodeBatch(mi, li, b)
			if err != nil {
				return nil, fmt.Errorf("archive: priming delta reference for field %q: %w", field, err)
			}
			lr.blocks = append(lr.blocks, blocks...)
		}
		fr.levels = append(fr.levels, lr)
	}
	w.prev[field] = fr
	return fr, nil
}

// MemberWriter appends the levels of one member.
type MemberWriter struct {
	w      *Writer
	cfg    codec.Config
	member Member
	done   bool

	// Campaign-mode state: ref is the reference reconstruction delta
	// batches code against (nil → all intra); capturing records this
	// member's own reconstruction level by level into capture, making it
	// the next member's reference candidate; usedDelta notes whether any
	// batch actually won as a delta.
	ref       *fieldRecon
	capturing bool
	capture   []levelRecon
	usedDelta bool
}

// workers resolves the configured worker count for the batch pipeline.
func (mw *MemberWriter) workers() int {
	switch {
	case mw.cfg.Workers == -1:
		return runtime.GOMAXPROCS(0)
	case mw.cfg.Workers > 1:
		return mw.cfg.Workers
	default:
		return 1
	}
}

// AddLevel compresses one level into block-batch frames and streams them
// out. Batches are gathered and compressed by a pool of cfg.Workers
// goroutines (each batch is an independent sz stream, so the pool
// pipelines gather → compress → in-order write), and only the batches in
// flight exist uncompressed outside l itself.
func (mw *MemberWriter) AddLevel(l *amr.Level) error {
	if mw.done {
		return fmt.Errorf("archive: member %q already closed", mw.member.Name)
	}
	liIdx := len(mw.member.Levels)
	eb := mw.cfg.LevelEB(liIdx, l)
	opts := sz.Options{ErrorBound: eb, QuantBits: mw.cfg.QuantBits}

	batchBlocks := mw.w.BatchBlocks
	if batchBlocks <= 0 {
		batchBlocks = DefaultBatchBlocks
	}
	idx := LevelIndex{
		Dims:        l.Grid.Dim,
		UnitBlock:   l.UnitBlock,
		Mask:        l.Mask.Clone(),
		BatchBlocks: batchBlocks,
	}
	ords := l.Mask.OccupiedIndices()
	idx.occupied = len(ords)
	nbatch := (len(ords) + batchBlocks - 1) / batchBlocks

	// Campaign mode: capture this level's reconstruction (so the next
	// member can reference it), and resolve the reference level delta
	// batches would code against — only legal at bit-identical structure.
	ubDims := grid.Dims{X: l.UnitBlock, Y: l.UnitBlock, Z: l.UnitBlock}
	var capture []*grid.Grid3[amr.Value]
	if mw.capturing {
		capture = grid.NewBlocks[amr.Value](ubDims, len(ords))
		mw.capture = append(mw.capture, levelRecon{
			dims:        idx.Dims,
			unitBlock:   idx.UnitBlock,
			batchBlocks: batchBlocks,
			mask:        idx.Mask,
			blocks:      capture,
		})
	}
	var refLevel *levelRecon
	if mw.ref != nil && liIdx < len(mw.ref.levels) &&
		mw.ref.levels[liIdx].matches(l.Grid.Dim, l.UnitBlock, batchBlocks, l.Mask) {
		refLevel = &mw.ref.levels[liIdx]
	}

	if nbatch == 0 {
		mw.member.Levels = append(mw.member.Levels, idx)
		return nil
	}

	// compress gathers and encodes one batch, reporting whether the delta
	// coding won. With a reference in scope each batch is coded BOTH ways
	// and the smaller frame kept, so delta mode can only shrink the
	// archive (at roughly half the encode throughput).
	compress := func(b int) ([]byte, bool, error) {
		lo := b * batchBlocks
		hi := min(lo+batchBlocks, len(ords))
		cells := int64(hi-lo) * int64(l.UnitBlock*l.UnitBlock*l.UnitBlock)
		cur := mw.w.gatheredCells.Add(cells)
		for {
			peak := mw.w.peakGathered.Load()
			if cur <= peak || mw.w.peakGathered.CompareAndSwap(peak, cur) {
				break
			}
		}
		defer mw.w.gatheredCells.Add(-cells)
		blocks := make([]*grid.Grid3[amr.Value], 0, hi-lo)
		for _, ord := range ords[lo:hi] {
			bx, by, bz := l.Mask.Dim.Coords(ord)
			blocks = append(blocks, l.Grid.Extract(l.BlockRegion(bx, by, bz)))
		}
		enc := encoders.Get()
		defer encoders.Put(enc)
		var caps []*grid.Grid3[amr.Value]
		if capture != nil {
			caps = capture[lo:hi]
		}
		var intra []byte
		var err error
		if caps != nil {
			intra, _, err = enc.CompressBlocksCapture(blocks, opts, caps)
		} else {
			intra, _, err = enc.CompressBlocks(blocks, opts)
		}
		if err != nil || refLevel == nil {
			return intra, false, err
		}
		deltaRec := grid.NewBlocks[amr.Value](ubDims, hi-lo)
		delta, _, err := enc.CompressBlocksDelta(blocks, refLevel.blocks[lo:hi], opts, deltaRec)
		if err != nil {
			return nil, false, err
		}
		if len(delta) >= len(intra) {
			return intra, false, nil
		}
		// The delta frame ships, so the retained reconstruction must be
		// the one ITS decoder produces.
		for k, c := range caps {
			copy(c.Data, deltaRec[k].Data)
		}
		return delta, true, nil
	}
	var deltaFlags []bool
	anyDelta := false
	sealBatches := func() {
		if anyDelta {
			idx.Delta = deltaFlags
			mw.usedDelta = true
		}
		mw.member.Levels = append(mw.member.Levels, idx)
	}
	if refLevel != nil {
		deltaFlags = make([]bool, nbatch)
	}

	workers := mw.workers()
	if workers == 1 {
		// Serial path: gather, compress, and flush one batch at a time.
		for b := 0; b < nbatch; b++ {
			blob, isDelta, err := compress(b)
			if err != nil {
				return fmt.Errorf("archive: level %d batch %d: %w", liIdx, b, err)
			}
			if err := mw.w.writeFrame(blob, &idx); err != nil {
				return err
			}
			if isDelta {
				deltaFlags[b] = true
				anyDelta = true
			}
		}
		sealBatches()
		return nil
	}

	// Parallel path: a bounded pool compresses batches out of order while
	// this goroutine flushes them in batch order, so the index layout
	// matches the serial path exactly and each frame streams out as soon
	// as its predecessors have. The window semaphore caps batches that
	// are in flight or compressed-but-unwritten, bounding both gathered
	// cells and buffered frames to ~workers batches even when one slow
	// batch heads the queue.
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		blobs  = make([][]byte, nbatch)
		deltas = make([]bool, nbatch)
		errs   = make([]error, nbatch)
		done   = make([]bool, nbatch)
		wg     sync.WaitGroup
		window = make(chan struct{}, workers)
		stop   = make(chan struct{})
	)
	// The spawner holds its own WaitGroup slot for its whole life, so the
	// nested Add calls always run while the counter is positive and
	// fail()'s Wait cannot return before every spawned worker is counted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < nbatch; b++ {
			select {
			case window <- struct{}{}:
			case <-stop:
				return
			}
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				blob, isDelta, err := compress(b)
				mu.Lock()
				blobs[b], deltas[b], errs[b], done[b] = blob, isDelta, err, true
				cond.Broadcast()
				mu.Unlock()
			}(b)
		}
	}()
	fail := func(err error) error {
		close(stop)
		wg.Wait()
		return err
	}
	for b := 0; b < nbatch; b++ {
		mu.Lock()
		for !done[b] {
			cond.Wait()
		}
		blob, isDelta, err := blobs[b], deltas[b], errs[b]
		blobs[b] = nil
		mu.Unlock()
		if err != nil {
			return fail(fmt.Errorf("archive: level %d batch %d: %w", liIdx, b, err))
		}
		if err := mw.w.writeFrame(blob, &idx); err != nil {
			return fail(err)
		}
		if isDelta {
			deltaFlags[b] = true
			anyDelta = true
		}
		<-window
	}
	sealBatches()
	return nil
}

// writeFrame emits one batch frame and records it in the level index,
// digesting it on the way out when checksums are on.
func (w *Writer) writeFrame(blob []byte, idx *LevelIndex) error {
	if _, err := w.w.Write(blob); err != nil {
		return fmt.Errorf("archive: writing frame: %w", err)
	}
	idx.Batches = append(idx.Batches, BatchRecord{Offset: w.off, Length: int64(len(blob))})
	if w.Checksums || w.FooterSum {
		idx.Sums = append(idx.Sums, crc32.Checksum(blob, castagnoli))
	}
	w.off += int64(len(blob))
	return nil
}

// backfillSums computes digests for frames written before Checksums was
// enabled — an unchecksummed archive being upgraded on append — by
// reading them back from the file. Frames of a fresh in-memory writer
// cannot be read back, so there the flag must be set before writing.
func (w *Writer) backfillSums() error {
	for mi := range w.members {
		m := &w.members[mi]
		for li := range m.Levels {
			idx := &m.Levels[li]
			if len(idx.Sums) == len(idx.Batches) {
				continue
			}
			if len(idx.Sums) != 0 {
				return fmt.Errorf("archive: member %d level %d has %d checksums for %d batches (Checksums toggled mid-member)", mi, li, len(idx.Sums), len(idx.Batches))
			}
			if w.file == nil {
				return fmt.Errorf("archive: member %d was written before Checksums was enabled (set it before the first frame, or append to a file)", mi)
			}
			sums := make([]uint32, len(idx.Batches))
			for b, rec := range idx.Batches {
				blob := make([]byte, rec.Length)
				if _, err := w.file.ReadAt(blob, rec.Offset); err != nil {
					return fmt.Errorf("archive: member %d level %d batch %d: reading frame for checksum backfill: %w", mi, li, b, err)
				}
				sums[b] = crc32.Checksum(blob, castagnoli)
			}
			idx.Sums = sums
		}
	}
	return nil
}

// anySums reports whether any member already carries frame digests — an
// archive that was ever committed at v3 keeps its digests on every later
// commit, so the format never silently downgrades.
func anySums(members []Member) bool {
	for mi := range members {
		for li := range members[mi].Levels {
			if members[mi].Levels[li].Sums != nil {
				return true
			}
		}
	}
	return false
}

// Close seals the member and adds it to the archive index.
func (mw *MemberWriter) Close() error {
	if mw.done {
		return nil
	}
	mw.done = true
	if len(mw.member.Levels) == 0 {
		mw.w.cur = nil
		return fmt.Errorf("archive: member %q has no levels", mw.member.Name)
	}
	mw.member.Gen = int(mw.w.committed)
	if mw.usedDelta {
		mw.member.Ref = mw.ref.index
	}
	mw.w.members = append(mw.w.members, mw.member)
	if mw.capturing {
		// This member is now the field's reference candidate. A member
		// that shipped no delta batch is a keyframe: it resets the chain,
		// so the next member may reference it at full depth budget.
		chain := 0
		if mw.usedDelta {
			chain = mw.ref.chain + 1
		}
		if mw.w.prev == nil {
			mw.w.prev = make(map[string]*fieldRecon)
		}
		mw.w.prev[mw.member.Field] = &fieldRecon{
			index:  len(mw.w.members) - 1,
			chain:  chain,
			levels: mw.capture,
		}
	}
	mw.w.dirty = true
	mw.w.cur = nil
	return nil
}

// Abort discards the member without adding it to the index, releasing the
// Writer for the next BeginMember. Frames the member already streamed out
// stay in the file as dead bytes — they are never referenced by a footer,
// so they cost space, not correctness — which is what makes Abort safe to
// call after a mid-member compression failure in a long-lived appender.
func (mw *MemberWriter) Abort() {
	if mw.done {
		return
	}
	mw.done = true
	if mw.w.cur == mw {
		mw.w.cur = nil
	}
}

// Members returns the index as committed-plus-sealed so far (shared, not
// copied — callers must not mutate).
func (w *Writer) Members() []Member { return w.members }

// Generation returns the number of footer generations committed so far:
// 0 before the first Commit/Close, and thereafter one more than the
// generation recorded in the newest trailer.
func (w *Writer) Generation() uint64 { return w.committed }

// Commit makes every member added so far readable: it writes a fresh
// footer over the full index followed by a trailer, and leaves the Writer
// open for more members (which are laid down after the trailer — committed
// bytes are never overwritten). For file-backed writers (OpenAppend) the
// ordering is crash-safe: frames are fsynced before the footer is written
// and the trailer is fsynced before Commit returns, so a crash at any
// byte offset leaves the previous committed generation's footer intact
// and the archive openable.
//
// Generation 0 (a fresh archive's first commit) writes the 16-byte v1
// trailer, byte-identical to archives written before append existed;
// later generations write the 24-byte generation-stamped trailer. An
// archive holding any delta-coded member instead commits the v2 footer
// under the TACAEND3 trailer (generation-stamped, legal at generation 0);
// intra-only archives never do, keeping their bytes on the v1 format. A
// writer with Checksums on — or appending to an archive that already
// carries frame digests — commits the v3 footer under TACAEND4,
// backfilling digests for any frames written before the flag was set.
// FooterSum further seals the same footer bytes under the digest-bearing
// TACAEND5 trailer (v4).
func (w *Writer) Commit() error {
	if w.closed {
		return fmt.Errorf("archive: writer is closed")
	}
	if w.cur != nil {
		return fmt.Errorf("archive: member %q still open", w.cur.member.Name)
	}
	if w.FooterSum {
		w.Checksums = true
	}
	ver := 1
	if needV2(w.members) {
		ver = 2
	}
	if w.Checksums || anySums(w.members) {
		ver = 3
		if err := w.backfillSums(); err != nil {
			return err
		}
	}
	if w.FooterSum {
		ver = 4
	}
	footer, err := encodeFooter(w.members, ver)
	if err != nil {
		return err
	}
	if w.file != nil {
		// Frames must be durable before any trailer that indexes them.
		if err := w.file.Sync(); err != nil {
			return fmt.Errorf("archive: syncing frames: %w", err)
		}
	}
	if _, err := w.w.Write(footer); err != nil {
		return fmt.Errorf("archive: writing footer: %w", err)
	}
	flen := uint64(len(footer))
	var trailer []byte
	switch {
	case ver >= 4:
		trailer = make([]byte, 0, trailer5Len)
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(flen>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(w.committed>>(8*i)))
		}
		// The digest seals the footer bytes plus the length and
		// generation words above, so a flip anywhere in the index or in
		// the words that locate it fails verification.
		sum := crc32.Checksum(footer, castagnoli)
		sum = crc32.Update(sum, castagnoli, trailer)
		for i := 0; i < 4; i++ {
			trailer = append(trailer, byte(sum>>(8*i)))
		}
		trailer = append(trailer, trailer5Magic[:]...)
	case ver >= 3:
		trailer = make([]byte, 0, trailer4Len)
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(flen>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(w.committed>>(8*i)))
		}
		trailer = append(trailer, trailer4Magic[:]...)
	case ver == 2:
		trailer = make([]byte, 0, trailer3Len)
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(flen>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(w.committed>>(8*i)))
		}
		trailer = append(trailer, trailer3Magic[:]...)
	case w.committed == 0:
		trailer = make([]byte, 0, trailerLen)
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(flen>>(8*i)))
		}
		trailer = append(trailer, trailerMagic[:]...)
	default:
		trailer = make([]byte, 0, trailer2Len)
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(flen>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			trailer = append(trailer, byte(w.committed>>(8*i)))
		}
		trailer = append(trailer, trailer2Magic[:]...)
	}
	if _, err := w.w.Write(trailer); err != nil {
		return fmt.Errorf("archive: writing trailer: %w", err)
	}
	if w.file != nil {
		// The commit point: once the trailer bytes are durable the new
		// generation wins; until then the previous one does.
		if err := w.file.Sync(); err != nil {
			return fmt.Errorf("archive: syncing trailer: %w", err)
		}
	}
	w.off += int64(len(footer)) + int64(len(trailer))
	w.committed++
	w.dirty = false
	return nil
}

// Close commits any members added since the last Commit (or the whole
// archive, if never committed) and seals the Writer against further use.
// The underlying io.Writer / file is not closed.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if w.cur != nil {
		return fmt.Errorf("archive: member %q still open", w.cur.member.Name)
	}
	if w.dirty || w.committed == 0 {
		if err := w.Commit(); err != nil {
			return err
		}
	}
	w.closed = true
	return nil
}
