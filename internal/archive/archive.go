// Package archive implements TACA, a framed, seekable container for
// sequences of TAC-compressed AMR snapshots. Where the in-memory codec
// container (internal/codec) carries one opaque snapshot blob, a TACA
// archive holds many members — one per snapshot × field — laid out so that
//
//   - the Writer streams: members are compressed level by level in
//     fixed-size unit-block batches that go straight to an io.Writer, so a
//     campaign larger than memory never materializes more than the batches
//     currently in flight;
//   - the Reader seeks: a footer index records every member's skeleton
//     (level geometry + occupancy masks) and the byte extent of every
//     block batch, so extracting one member, one refinement level, or one
//     spatial region reads only the index and the covered batches from any
//     io.ReaderAt, safely from many goroutines at once.
//
// File layout:
//
//	header    "TACA" magic + 1 version byte
//	frames    raw sz block-batch payloads, back to back, in index order
//	footer    varint-coded member index (see encodeFooter)
//	trailer   uint64 LE footer length + 8-byte end magic "TACAEND1"
//
// Each frame is an independently decodable sz.CompressBlocks stream over
// up to BatchBlocks occupied unit blocks of one level, in row-major mask
// order. Block coordinates are never stored: like the codec container,
// the footer's occupancy masks fully determine which blocks the i-th
// batch of a level covers, so the index costs one bit per unit block plus
// two varints per batch.
//
// Append and crash safety: an archive grows by appending — new frames go
// after the previous footer+trailer (which are left intact), and the
// grown archive is committed by writing a fresh footer over all members
// followed by a generation-stamped trailer
//
//	trailer₂  uint64 LE footer length + uint64 LE generation + "TACAEND2"
//
// with fsync ordering (frames durable before the trailer is written, the
// trailer durable before the commit is acknowledged). Nothing is ever
// overwritten, so a crash at any byte offset leaves the previous
// generation's footer valid: Open first parses the trailer at EOF and, if
// the tail is torn, scans backward for the newest committed generation,
// ignoring (or, in OpenAppend, truncating) the torn tail.
//
// Campaign (delta) mode — format v2: when the writer's keyframe interval
// is on, a member may be coded temporally against an earlier member of
// the same field: its frames are sz.CompressBlocksDelta residuals whose
// reference is the RECONSTRUCTION of the referenced member's matching
// batch. Such archives commit with a v2 footer — the v1 index plus, per
// member, a dependency link (reference member index + generation) and,
// per batch, a coding-mode flag — and the trailer magic
//
//	trailer₃  uint64 LE footer length + uint64 LE generation + "TACAEND3"
//
// which is what signals the v2 footer layout to readers (same 24-byte
// shape as trailer₂, but legal at generation 0). Archives containing no
// delta member commit with the v1 footer and trailers, byte-identical to
// what this package wrote before delta mode existed. Reference links
// always point strictly backward in the member index, so chains terminate
// by construction; the reader resolves them transparently, and keyframes
// every K members bound the depth (see Writer.Keyframe).
//
// Integrity (checksums) — format v3: a writer with Checksums on records a
// CRC32C (Castagnoli) digest of every frame in the footer and commits
// with the v3 footer layout — the v2 index plus, per batch, the digest
// varint after the coding-mode flags — sealed by the trailer magic
//
//	trailer₄  uint64 LE footer length + uint64 LE generation + "TACAEND4"
//
// (same 24-byte shape again, legal at generation 0). Readers verify the
// digest of every frame they read before any bytes reach the codec, so a
// flipped bit inside a compressed payload surfaces as ErrCorrupt instead
// of silently wrong field values; Reader.Scrub audits every frame of the
// archive the same way without decoding. Checksums are strictly opt-in:
// with them off the output stays byte-identical to the v1/v2 formats
// above, and v1–v3 archives (no digests) remain fully readable.
//
// Footer self-digest — format v4: per-frame digests leave the index
// itself unverified, so a writer with FooterSum on additionally records a
// CRC32C digest of the footer bytes (and of the trailer's length and
// generation words) in the trailer:
//
//	trailer₅  uint64 LE footer length + uint64 LE generation +
//	          uint32 LE footer CRC32C + "TACAEND5"
//
// (28 bytes; the footer layout itself is unchanged from v3). Open
// verifies the digest before trusting a single index varint, and when the
// newest footer fails it — a torn or bit-flipped index — falls back to the
// previous committed generation's trailer, so index damage degrades the
// archive to its last good generation instead of making it unreadable.
// Like checksums, the footer digest is opt-in and sticky: with it off the
// output is byte-identical to v1–v3, and once an archive commits at v4
// every later append keeps the footer digest.
package archive

import (
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bitio"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/sz"
)

const (
	// Version is the TACA format version this package reads and writes.
	Version = 1
	// DefaultBatchBlocks is the default number of unit blocks per frame:
	// large enough that the shared Huffman codebook amortizes, small
	// enough that a region query decodes little beyond its footprint.
	DefaultBatchBlocks = 64

	headerLen   = 5  // "TACA" + version byte
	trailerLen  = 16 // generation-0 trailer: footer length + magic
	trailer2Len = 24 // appended generations: footer length + generation + magic
	trailer3Len = 24 // v2 (delta-bearing) footer: footer length + generation + magic
	trailer4Len = 24 // v3 (checksummed) footer: footer length + generation + magic
	trailer5Len = 28 // v4 (footer-digested): footer length + generation + footer CRC32C + magic
)

var (
	headerMagic   = [4]byte{'T', 'A', 'C', 'A'}
	trailerMagic  = [8]byte{'T', 'A', 'C', 'A', 'E', 'N', 'D', '1'}
	trailer2Magic = [8]byte{'T', 'A', 'C', 'A', 'E', 'N', 'D', '2'}
	trailer3Magic = [8]byte{'T', 'A', 'C', 'A', 'E', 'N', 'D', '3'}
	trailer4Magic = [8]byte{'T', 'A', 'C', 'A', 'E', 'N', 'D', '4'}
	trailer5Magic = [8]byte{'T', 'A', 'C', 'A', 'E', 'N', 'D', '5'}
)

// castagnoli is the CRC32C table frame digests are computed with. The
// Castagnoli polynomial has hardware support (SSE4.2 / ARMv8 CRC) through
// hash/crc32, so checksumming runs at memory speed on the platforms the
// serving layer targets.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BatchRecord locates one block-batch frame in the archive.
type BatchRecord struct {
	Offset int64 // absolute byte offset of the frame
	Length int64 // frame length in bytes
}

// LevelIndex is the footer record for one refinement level of a member.
type LevelIndex struct {
	Dims        grid.Dims  // cell extent of the level grid
	UnitBlock   int        // edge length of the refinement unit
	Mask        *grid.Mask // occupancy at unit-block granularity
	BatchBlocks int        // unit blocks per batch (last batch may be short)
	Batches     []BatchRecord

	// Delta flags each batch's coding mode: true when frame b is a
	// temporal residual (sz.CompressBlocksDelta) against the matching
	// batch of the member's reference (Member.Ref). nil — the only state
	// a v1 footer can produce — means all-intra.
	Delta []bool

	// Sums holds the CRC32C digest of every batch frame's raw bytes,
	// parallel to Batches. nil — the only state a v1/v2 footer can
	// produce — means the level carries no digests and frame reads are
	// verified structurally only.
	Sums []uint32

	// occupied caches Mask.Count(), set by the reader and writer index
	// builders so the serving hot paths do not popcount the mask per
	// batch per request; occupiedCount falls back to the popcount for
	// hand-built indices.
	occupied int
}

// IsDelta reports whether batch b of the level is temporally coded.
func (li *LevelIndex) IsDelta(b int) bool {
	return li.Delta != nil && b < len(li.Delta) && li.Delta[b]
}

// occupiedCount returns the number of occupied unit blocks.
func (li *LevelIndex) occupiedCount() int {
	if li.occupied > 0 || li.Mask == nil {
		return li.occupied
	}
	return li.Mask.Count()
}

// BatchSpan returns the half-open range [lo, hi) of occupied-block
// ordinals — positions in the row-major order of Mask.OccupiedIndices —
// that frame b of the level covers. It is the frame-granularity hook the
// serving layer keys its block cache on: batch b of a level always holds
// exactly the blocks with ordinals in this span, in order.
func (li *LevelIndex) BatchSpan(b int) (lo, hi int) {
	lo = b * li.BatchBlocks
	hi = lo + li.BatchBlocks
	if n := li.occupiedCount(); hi > n {
		hi = n
	}
	return lo, hi
}

// blockCount returns the number of occupied blocks batch b covers.
func (li *LevelIndex) blockCount(b int) int {
	lo, hi := li.BatchSpan(b)
	return hi - lo
}

// CompressedBytes returns the total frame bytes of the level.
func (li *LevelIndex) CompressedBytes() int64 {
	var n int64
	for _, b := range li.Batches {
		n += b.Length
	}
	return n
}

// Member is the footer record for one snapshot × field entry.
type Member struct {
	Name  string
	Field string
	Ratio int

	// Compression parameters the member was written with, recorded for
	// listings and provenance; the effective absolute bound of every
	// frame is also baked into its sz header.
	ErrorBound  float64
	Mode        sz.Mode
	QuantBits   int
	LevelScales []float64

	// Ref is the member index this member's delta batches reference, or
	// −1 when the member is fully intra-coded. References always point
	// strictly backward (Ref < the member's own index), so chains
	// terminate; only v2 footers can carry Ref ≥ 0.
	Ref int
	// Gen is the archive generation the member was committed in (0 for
	// the initial write). v1 footers do not record it.
	Gen int

	Levels []LevelIndex
}

// IsDelta reports whether any batch of the member is temporally coded.
func (m *Member) IsDelta() bool { return m.Ref >= 0 }

// StoredCells returns the number of cells stored across all levels.
func (m *Member) StoredCells() int {
	n := 0
	for i := range m.Levels {
		li := &m.Levels[i]
		n += li.Mask.Count() * li.UnitBlock * li.UnitBlock * li.UnitBlock
	}
	return n
}

// OriginalBytes returns the uncompressed size (4 bytes per stored cell).
func (m *Member) OriginalBytes() int64 { return 4 * int64(m.StoredCells()) }

// CompressedBytes returns the total frame bytes across all levels.
func (m *Member) CompressedBytes() int64 {
	var n int64
	for i := range m.Levels {
		n += m.Levels[i].CompressedBytes()
	}
	return n
}

// needV2 reports whether the member set requires the v2 footer layout —
// any delta-coded member. Intra-only archives stay on v1 so their bytes
// are unchanged from pre-delta writers.
func needV2(members []Member) bool {
	for i := range members {
		if members[i].Ref >= 0 {
			return true
		}
	}
	return false
}

// encodeFooter serializes the member index at the given footer version.
// The v2 layout interleaves the dependency links: per member a reference
// index (+1, 0 = none) and generation after QuantBits, and per batch a
// coding-mode flag varint after the batch records. The v3 layout is v2
// plus, per batch, the frame's CRC32C digest varint after the mode flags
// — all-or-nothing: every level of every member must carry digests.
func encodeFooter(members []Member, ver int) ([]byte, error) {
	v2 := ver >= 2
	sums := ver >= 3
	var out []byte
	out = bitio.AppendUvarint(out, uint64(len(members)))
	for mi := range members {
		m := &members[mi]
		out = bitio.AppendBytes(out, []byte(m.Name))
		out = bitio.AppendBytes(out, []byte(m.Field))
		out = bitio.AppendUvarint(out, uint64(m.Ratio))
		out = bitio.AppendUvarint(out, math.Float64bits(m.ErrorBound))
		out = bitio.AppendUvarint(out, uint64(m.Mode))
		out = bitio.AppendUvarint(out, uint64(m.QuantBits))
		if v2 {
			if m.Ref >= mi {
				return nil, fmt.Errorf("archive: member %d references member %d (must point strictly backward)", mi, m.Ref)
			}
			out = bitio.AppendUvarint(out, uint64(m.Ref+1)) // −1 (intra) encodes as 0
			out = bitio.AppendUvarint(out, uint64(m.Gen))
		} else if m.Ref >= 0 {
			return nil, fmt.Errorf("archive: member %d is delta-coded but footer is v1", mi)
		}
		out = bitio.AppendUvarint(out, uint64(len(m.LevelScales)))
		for _, s := range m.LevelScales {
			out = bitio.AppendUvarint(out, math.Float64bits(s))
		}
		out = bitio.AppendUvarint(out, uint64(len(m.Levels)))
		for i := range m.Levels {
			li := &m.Levels[i]
			out = bitio.AppendUvarint(out, uint64(li.Dims.X))
			out = bitio.AppendUvarint(out, uint64(li.Dims.Y))
			out = bitio.AppendUvarint(out, uint64(li.Dims.Z))
			out = bitio.AppendUvarint(out, uint64(li.UnitBlock))
			comp, err := codec.EncodeMask(li.Mask)
			if err != nil {
				return nil, err
			}
			out = bitio.AppendBytes(out, comp)
			out = bitio.AppendUvarint(out, uint64(li.BatchBlocks))
			out = bitio.AppendUvarint(out, uint64(len(li.Batches)))
			for _, b := range li.Batches {
				out = bitio.AppendUvarint(out, uint64(b.Offset))
				out = bitio.AppendUvarint(out, uint64(b.Length))
			}
			if v2 {
				if li.Delta != nil && len(li.Delta) != len(li.Batches) {
					return nil, fmt.Errorf("archive: member %d level %d has %d delta flags for %d batches", mi, i, len(li.Delta), len(li.Batches))
				}
				for b := range li.Batches {
					var flag uint64
					if li.IsDelta(b) {
						flag = 1
					}
					out = bitio.AppendUvarint(out, flag)
				}
			}
			if sums {
				if len(li.Sums) != len(li.Batches) {
					return nil, fmt.Errorf("archive: member %d level %d has %d checksums for %d batches", mi, i, len(li.Sums), len(li.Batches))
				}
				for _, s := range li.Sums {
					out = bitio.AppendUvarint(out, uint64(s))
				}
			} else if li.Sums != nil && len(li.Sums) != 0 {
				return nil, fmt.Errorf("archive: member %d level %d carries checksums but footer is v%d", mi, i, ver)
			}
		}
	}
	return out, nil
}

// decodeFooter parses the member index at the given footer version: 2
// selects the delta-aware layout (signaled by the TACAEND3 trailer), 3
// additionally reads per-batch CRC32C digests (TACAEND4). The dependency
// links the v2+ layouts carry are validated here so no hostile footer can
// smuggle a cycle, a forward or self reference, or a delta batch whose
// reference has a different AMR structure — every such link is rejected
// before any frame is read.
func decodeFooter(buf []byte, ver int) ([]Member, error) {
	v2 := ver >= 2
	sums := ver >= 3
	u := func() (uint64, error) {
		v, n, err := bitio.Uvarint(buf)
		if err != nil {
			return 0, err
		}
		buf = buf[n:]
		return v, nil
	}
	bs := func() ([]byte, error) {
		b, n, err := bitio.Bytes(buf)
		if err != nil {
			return nil, err
		}
		buf = buf[n:]
		return b, nil
	}
	nm, err := u()
	if err != nil {
		return nil, fmt.Errorf("archive: footer member count: %w", err)
	}
	if nm > 1<<20 {
		return nil, fmt.Errorf("archive: implausible member count %d", nm)
	}
	members := make([]Member, 0, nm)
	for mi := uint64(0); mi < nm; mi++ {
		var m Member
		nameB, err := bs()
		if err != nil {
			return nil, fmt.Errorf("archive: member %d name: %w", mi, err)
		}
		m.Name = string(nameB)
		fieldB, err := bs()
		if err != nil {
			return nil, fmt.Errorf("archive: member %d field: %w", mi, err)
		}
		m.Field = string(fieldB)
		ratio, err := u()
		if err != nil {
			return nil, err
		}
		m.Ratio = int(ratio)
		ebBits, err := u()
		if err != nil {
			return nil, err
		}
		m.ErrorBound = math.Float64frombits(ebBits)
		mode, err := u()
		if err != nil {
			return nil, err
		}
		m.Mode = sz.Mode(mode)
		qb, err := u()
		if err != nil {
			return nil, err
		}
		m.QuantBits = int(qb)
		m.Ref = -1
		if v2 {
			refPlus1, err := u()
			if err != nil {
				return nil, err
			}
			// Strictly-backward references are the whole termination
			// argument: no self links, no forward links, and therefore no
			// cycles, regardless of what the footer claims.
			if refPlus1 > mi {
				return nil, fmt.Errorf("archive: member %d references member %d (must point strictly backward)", mi, int64(refPlus1)-1)
			}
			m.Ref = int(refPlus1) - 1
			gen, err := u()
			if err != nil {
				return nil, err
			}
			if gen > 1<<32 {
				return nil, fmt.Errorf("archive: member %d has implausible generation %d", mi, gen)
			}
			m.Gen = int(gen)
		}
		ns, err := u()
		if err != nil {
			return nil, err
		}
		if ns > 64 {
			return nil, fmt.Errorf("archive: member %d has %d level scales", mi, ns)
		}
		for i := uint64(0); i < ns; i++ {
			bits, err := u()
			if err != nil {
				return nil, err
			}
			m.LevelScales = append(m.LevelScales, math.Float64frombits(bits))
		}
		nlev, err := u()
		if err != nil {
			return nil, err
		}
		if nlev == 0 || nlev > 64 {
			return nil, fmt.Errorf("archive: member %d has implausible level count %d", mi, nlev)
		}
		// Ratio scales ROI coordinates across levels (used as a divisor);
		// reject corrupt values before they can reach that arithmetic.
		if m.Ratio < 2 {
			return nil, fmt.Errorf("archive: member %d has refinement ratio %d < 2", mi, m.Ratio)
		}
		for liIdx := uint64(0); liIdx < nlev; liIdx++ {
			var li LevelIndex
			for _, p := range []*int{&li.Dims.X, &li.Dims.Y, &li.Dims.Z, &li.UnitBlock} {
				v, err := u()
				if err != nil {
					return nil, err
				}
				*p = int(v)
			}
			// Same plausibility cap as amr.ReadFrom: reject before the
			// mask/grid allocations a hostile footer could inflate.
			if li.UnitBlock <= 0 || li.Dims.Count() <= 0 || li.Dims.Count() > 1<<31 ||
				li.Dims.X%li.UnitBlock != 0 || li.Dims.Y%li.UnitBlock != 0 || li.Dims.Z%li.UnitBlock != 0 {
				return nil, fmt.Errorf("archive: member %d level %d has corrupt geometry %v/%d", mi, liIdx, li.Dims, li.UnitBlock)
			}
			// Bound the unit-block count separately: a hostile footer
			// claiming 2^31 cells at unit block 1 would otherwise make
			// DecodeMask allocate a 256 MiB mask before any cross-check.
			ub3 := li.UnitBlock * li.UnitBlock * li.UnitBlock
			if li.Dims.Count()/ub3 > 1<<26 {
				return nil, fmt.Errorf("archive: member %d level %d has implausible %d unit blocks", mi, liIdx, li.Dims.Count()/ub3)
			}
			comp, err := bs()
			if err != nil {
				return nil, fmt.Errorf("archive: member %d level %d mask: %w", mi, liIdx, err)
			}
			li.Mask, err = codec.DecodeMask(li.Dims.Div(li.UnitBlock), comp)
			if err != nil {
				return nil, fmt.Errorf("archive: member %d level %d: %w", mi, liIdx, err)
			}
			bb, err := u()
			if err != nil {
				return nil, err
			}
			li.BatchBlocks = int(bb)
			nb, err := u()
			if err != nil {
				return nil, err
			}
			occupied := li.Mask.Count()
			li.occupied = occupied
			wantBatches := 0
			if occupied > 0 {
				if li.BatchBlocks <= 0 {
					return nil, fmt.Errorf("archive: member %d level %d has batch size %d", mi, liIdx, li.BatchBlocks)
				}
				wantBatches = (occupied + li.BatchBlocks - 1) / li.BatchBlocks
			}
			if int(nb) != wantBatches {
				return nil, fmt.Errorf("archive: member %d level %d has %d batches, mask implies %d", mi, liIdx, nb, wantBatches)
			}
			for i := uint64(0); i < nb; i++ {
				off, err := u()
				if err != nil {
					return nil, err
				}
				length, err := u()
				if err != nil {
					return nil, err
				}
				if length == 0 {
					return nil, fmt.Errorf("archive: member %d level %d batch %d is empty", mi, liIdx, i)
				}
				li.Batches = append(li.Batches, BatchRecord{Offset: int64(off), Length: int64(length)})
			}
			if v2 {
				for b := uint64(0); b < nb; b++ {
					flag, err := u()
					if err != nil {
						return nil, err
					}
					if flag > 1 {
						return nil, fmt.Errorf("archive: member %d level %d batch %d has unknown mode flags %#x", mi, liIdx, b, flag)
					}
					if flag == 1 {
						if li.Delta == nil {
							li.Delta = make([]bool, nb)
						}
						li.Delta[b] = true
					}
				}
				if sums {
					li.Sums = make([]uint32, nb)
					for b := uint64(0); b < nb; b++ {
						s, err := u()
						if err != nil {
							return nil, fmt.Errorf("archive: member %d level %d batch %d checksum: %w", mi, liIdx, b, err)
						}
						if s > math.MaxUint32 {
							return nil, fmt.Errorf("archive: member %d level %d batch %d has implausible checksum %#x", mi, liIdx, b, s)
						}
						li.Sums[b] = uint32(s)
					}
				}
				if li.Delta != nil {
					// A delta batch only decodes against a reference batch
					// covering the same blocks, so the referenced member
					// must carry this level at a bit-identical structure.
					if m.Ref < 0 {
						return nil, fmt.Errorf("archive: member %d level %d has delta batches but no reference member", mi, liIdx)
					}
					ref := &members[m.Ref]
					if ref.Field != m.Field {
						return nil, fmt.Errorf("archive: member %d (field %q) references member %d (field %q)", mi, m.Field, m.Ref, ref.Field)
					}
					if int(liIdx) >= len(ref.Levels) {
						return nil, fmt.Errorf("archive: member %d level %d missing from reference member %d", mi, liIdx, m.Ref)
					}
					rl := &ref.Levels[liIdx]
					if rl.Dims != li.Dims || rl.UnitBlock != li.UnitBlock ||
						rl.BatchBlocks != li.BatchBlocks || !rl.Mask.Equal(li.Mask) {
						return nil, fmt.Errorf("archive: member %d level %d structure differs from reference member %d", mi, liIdx, m.Ref)
					}
				}
			}
			m.Levels = append(m.Levels, li)
		}
		members = append(members, m)
	}
	return members, nil
}
