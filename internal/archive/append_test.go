package archive

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/sim"
)

// smallSnapshot generates one tiny snapshot (unique per seed) so the
// byte-offset fault-injection sweep stays fast.
func smallSnapshot(t testing.TB, name string, seed int64) *amr.Dataset {
	t.Helper()
	ds, err := sim.Generate(sim.Spec{
		Name: name, FinestN: 16, Levels: 2, UnitBlock: 4,
		Seed: seed, LeafFractions: []float64{0.3, 0.7},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// writeArchiveFile builds an on-disk archive from the snapshots.
func writeArchiveFile(t testing.TB, path string, snaps []*amr.Dataset) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 8
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// extractAllErr returns every level grid of every member, the
// byte-identity fingerprint the append tests compare across generations.
// It is goroutine-safe (no testing.T) for the read-while-append test.
func extractAllErr(r *Reader) ([][][]amr.Value, error) {
	var out [][][]amr.Value
	for mi := range r.Members() {
		ds, err := r.Extract(mi)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", mi, err)
		}
		var grids [][]amr.Value
		for _, l := range ds.Levels {
			grids = append(grids, append([]amr.Value(nil), l.Grid.Data...))
		}
		out = append(out, grids)
	}
	return out, nil
}

func extractAll(t testing.TB, r *Reader) [][][]amr.Value {
	t.Helper()
	out, err := extractAllErr(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameGrids(a, b [][][]amr.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if len(a[i][j]) != len(b[i][j]) {
				return false
			}
			for k := range a[i][j] {
				if a[i][j][k] != b[i][j][k] {
					return false
				}
			}
		}
	}
	return true
}

func TestAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.taca")
	base := []*amr.Dataset{smallSnapshot(t, "s0", 1), smallSnapshot(t, "s1", 2)}
	writeArchiveFile(t, path, base)

	before, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := extractAll(t, before.Reader)
	if g := before.Generation(); g != 0 {
		t.Fatalf("fresh archive generation %d, want 0", g)
	}
	before.Close()

	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Members()) != 2 {
		t.Fatalf("append writer sees %d members, want 2", len(w.Members()))
	}
	for i := 2; i < 4; i++ {
		if err := w.AddDataset(smallSnapshot(t, fmt.Sprintf("s%d", i), int64(i+1)), codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 2 {
		t.Fatalf("writer committed %d generations, want 2", g)
	}

	after, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if g := after.Generation(); g != 1 {
		t.Fatalf("appended archive generation %d, want 1", g)
	}
	if n := len(after.Members()); n != 4 {
		t.Fatalf("appended archive holds %d members, want 4", n)
	}
	got := extractAll(t, after.Reader)
	if !sameGrids(want, got[:2]) {
		t.Fatal("pre-existing members changed across append")
	}
	for i := 2; i < 4; i++ {
		src := smallSnapshot(t, fmt.Sprintf("s%d", i), int64(i+1))
		for li, l := range src.Levels {
			if worst := maskedMaxErr(l, mustLevel(t, after.Reader, i, li), l.Mask); worst > testEB {
				t.Fatalf("appended member %d level %d max err %.4g > bound", i, li, worst)
			}
		}
	}
}

func mustLevel(t testing.TB, r *Reader, mi, li int) *amr.Level {
	t.Helper()
	l, err := r.ExtractLevel(mi, li)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestAppendMultiGeneration commits one member per generation and checks
// the generation counter and member set advance in lockstep.
func TestAppendMultiGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.taca")
	writeArchiveFile(t, path, []*amr.Dataset{smallSnapshot(t, "s0", 1)})

	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 1; i <= 3; i++ {
		if err := w.AddDataset(smallSnapshot(t, fmt.Sprintf("s%d", i), int64(i+1)), codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenFile(path)
		if err != nil {
			t.Fatalf("after commit %d: %v", i, err)
		}
		if g, n := r.Generation(), len(r.Members()); g != uint64(i) || n != i+1 {
			t.Fatalf("after commit %d: generation %d / %d members, want %d / %d", i, g, n, i, i+1)
		}
		r.Close()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close after a clean Commit must not stack another footer.
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if g := r.Generation(); g != 3 {
		t.Fatalf("final generation %d, want 3", g)
	}
}

// TestAppendCrashRecovery is the fault-injection harness the issue asks
// for: replay an append, truncate the file at every byte offset past the
// old footer, and assert Open always recovers the pre-append member set —
// a crash at any point during an append must leave the archive openable
// with the previous footer, byte-identical for every old member.
func TestAppendCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.taca")
	writeArchiveFile(t, path, []*amr.Dataset{smallSnapshot(t, "s0", 1), smallSnapshot(t, "s1", 2)})
	oldBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	oldSize := int64(len(oldBytes))
	oldR, err := Open(bytes.NewReader(oldBytes), oldSize)
	if err != nil {
		t.Fatal(err)
	}
	want := extractAll(t, oldR)

	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddDataset(smallSnapshot(t, "s2", 3), codec.Config{ErrorBound: testEB}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) <= oldSize {
		t.Fatalf("append did not grow the file (%d -> %d)", oldSize, len(full))
	}
	if !bytes.Equal(full[:oldSize], oldBytes) {
		t.Fatal("append rewrote committed bytes")
	}

	// Crash at every byte offset of the append: the old generation must
	// always win; only the complete file exposes the new member.
	for cut := oldSize; cut <= int64(len(full)); cut++ {
		r, err := Open(bytes.NewReader(full[:cut]), cut)
		if err != nil {
			t.Fatalf("cut at %d (of %d): %v", cut, len(full), err)
		}
		wantMembers, wantGen := 2, uint64(0)
		if cut == int64(len(full)) {
			wantMembers, wantGen = 3, 1
		}
		if n, g := len(r.Members()), r.Generation(); n != wantMembers || g != wantGen {
			t.Fatalf("cut at %d: %d members gen %d, want %d gen %d", cut, n, g, wantMembers, wantGen)
		}
		if r.EndOffset() != oldSize && cut != int64(len(full)) {
			t.Fatalf("cut at %d: recovered end %d, want old size %d", cut, r.EndOffset(), oldSize)
		}
	}

	// Spot-check byte identity of the recovered members at a few torn
	// points (the full sweep above already proved openability).
	for _, cut := range []int64{oldSize, oldSize + 1, (oldSize + int64(len(full))) / 2, int64(len(full)) - 1} {
		r, err := Open(bytes.NewReader(full[:cut]), cut)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if got := extractAll(t, r); !sameGrids(want, got) {
			t.Fatalf("cut at %d: recovered members differ from pre-append state", cut)
		}
	}

	// An append onto a torn file must first truncate the wreckage, then
	// land the new member cleanly.
	torn := full[: oldSize+(int64(len(full))-oldSize)/2 : oldSize+(int64(len(full))-oldSize)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, f2, err := OpenAppendFile(path)
	if err != nil {
		t.Fatalf("OpenAppend on torn file: %v", err)
	}
	if st, err := f2.Stat(); err != nil || st.Size() != oldSize {
		t.Fatalf("torn tail not truncated: size %d, want %d (err %v)", st.Size(), oldSize, err)
	}
	if err := w2.AddDataset(smallSnapshot(t, "s2b", 9), codec.Config{ErrorBound: testEB}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := len(r.Members()); n != 3 {
		t.Fatalf("post-recovery append holds %d members, want 3", n)
	}
	if r.Members()[2].Name != "s2b" {
		t.Fatalf("post-recovery append member is %q, want s2b", r.Members()[2].Name)
	}
}

// TestReadWhileAppend extracts pre-existing members concurrently with an
// appending writer on the same file, asserting byte-identity throughout;
// run with -race. Readers opened on a committed generation only ever
// touch bytes that generation owns, which append never rewrites.
func TestReadWhileAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.taca")
	base := []*amr.Dataset{smallSnapshot(t, "s0", 1), smallSnapshot(t, "s1", 2)}
	writeArchiveFile(t, path, base)
	r0, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r0.Close()
	want := extractAll(t, r0.Reader)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				// Alternate between the long-lived reader and a freshly
				// opened one (which may land on any committed generation).
				r := r0.Reader
				var fr *FileReader
				if g%2 == 1 {
					var err error
					fr, err = OpenFile(path)
					if err != nil {
						errs <- fmt.Errorf("reader %d: %w", g, err)
						return
					}
					r = fr.Reader
				}
				got, err := extractAllErr(r)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					if fr != nil {
						fr.Close()
					}
					return
				}
				if !sameGrids(want, got[:2]) {
					errs <- fmt.Errorf("reader %d: pre-existing members changed mid-append", g)
					if fr != nil {
						fr.Close()
					}
					return
				}
				if fr != nil {
					fr.Close()
				}
			}
		}(g)
	}

	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if err := w.AddDataset(smallSnapshot(t, fmt.Sprintf("s%d", i), int64(i+1)), codec.Config{ErrorBound: testEB, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if n := len(final.Members()); n != 5 {
		t.Fatalf("final archive holds %d members, want 5", n)
	}
}

// TestAppendMisuse pins the error paths of the append API.
func TestAppendMisuse(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.taca")
	if err := os.WriteFile(junk, []byte("not an archive at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenAppendFile(junk); err == nil {
		t.Error("OpenAppendFile accepted junk")
	}
	if _, _, err := OpenAppendFile(filepath.Join(dir, "missing.taca")); err == nil {
		t.Error("OpenAppendFile accepted a missing file")
	}

	path := filepath.Join(dir, "a.taca")
	writeArchiveFile(t, path, []*amr.Dataset{smallSnapshot(t, "s0", 1)})
	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mw, err := w.BeginMember("open", "f", 2, codec.Config{ErrorBound: testEB})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err == nil {
		t.Error("Commit with an open member accepted")
	}
	_ = mw.Close() // empty member errors; the writer is usable again
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err == nil {
		t.Error("Commit after Close accepted")
	}
}
