package archive

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/sim"
)

const testEB = 1e9

// testSnapshots generates a small two-timestep, two-field campaign.
func testSnapshots(t testing.TB) []*amr.Dataset {
	t.Helper()
	var out []*amr.Dataset
	for ti, frac := range [][]float64{{0.25, 0.75}, {0.55, 0.45}} {
		for _, field := range []sim.Field{sim.BaryonDensity, sim.Temperature} {
			spec := sim.Spec{
				Name: fmt.Sprintf("snap%d", ti), FinestN: 32, Levels: 2,
				UnitBlock: 4, Seed: int64(100 + ti), LeafFractions: frac,
			}
			ds, err := sim.Generate(spec, field)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ds)
		}
	}
	return out
}

// buildArchive writes the snapshots into an in-memory archive.
func buildArchive(t testing.TB, snaps []*amr.Dataset, cfg codec.Config, batchBlocks int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = batchBlocks
	for _, ds := range snaps {
		if err := w.AddDataset(ds, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countingReaderAt counts the bytes fetched through ReadAt.
type countingReaderAt struct {
	r    io.ReaderAt
	read atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.read.Add(int64(n))
	return n, err
}

// maskedMaxErr returns the largest absolute error over blocks marked in
// both masks.
func maskedMaxErr(orig, recon *amr.Level, m *grid.Mask) float64 {
	var worst float64
	for _, ord := range m.OccupiedIndices() {
		bx, by, bz := m.Dim.Coords(ord)
		r := orig.BlockRegion(bx, by, bz)
		a := orig.Grid.Extract(r)
		b := recon.Grid.Extract(r)
		if d := grid.MaxAbsDiff(a, b); d > worst {
			worst = d
		}
	}
	return worst
}

func TestRoundTrip(t *testing.T) {
	snaps := testSnapshots(t)
	cfg := codec.Config{ErrorBound: testEB}
	blob := buildArchive(t, snaps, cfg, 16)

	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Members()); got != len(snaps) {
		t.Fatalf("archive holds %d members, want %d", got, len(snaps))
	}
	for i, ds := range snaps {
		m := r.Members()[i]
		if m.Name != ds.Name || m.Field != ds.Field {
			t.Fatalf("member %d is %s/%s, want %s/%s", i, m.Name, m.Field, ds.Name, ds.Field)
		}
		if m.StoredCells() != ds.StoredCells() {
			t.Fatalf("member %d stores %d cells, want %d", i, m.StoredCells(), ds.StoredCells())
		}
		recon, err := r.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := recon.Validate(); err != nil {
			t.Fatalf("member %d reconstruction invalid: %v", i, err)
		}
		for li, l := range ds.Levels {
			rl := recon.Levels[li]
			if !bytes.Equal(l.Mask.AppendPacked(nil), rl.Mask.AppendPacked(nil)) {
				t.Fatalf("member %d level %d mask mismatch", i, li)
			}
			if worst := maskedMaxErr(l, rl, l.Mask); worst > testEB {
				t.Fatalf("member %d level %d max err %.4g > bound %.4g", i, li, worst, testEB)
			}
		}
	}
}

func TestFind(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if i := r.Find("snap1", string(sim.Temperature)); i != 3 {
		t.Fatalf("Find(snap1, temperature) = %d, want 3", i)
	}
	if i := r.Find("snap0", ""); i != 0 {
		t.Fatalf("Find(snap0, any) = %d, want 0", i)
	}
	if i := r.Find("nope", ""); i != -1 {
		t.Fatalf("Find(nope) = %d, want -1", i)
	}
}

// TestParallelWriterMatchesSerial checks the worker-pool pipeline emits a
// byte-identical archive.
func TestParallelWriterMatchesSerial(t *testing.T) {
	snaps := testSnapshots(t)
	serial := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)
	parallel := buildArchive(t, snaps, codec.Config{ErrorBound: testEB, Workers: -1}, 16)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel archive differs from serial (%d vs %d bytes)", len(parallel), len(serial))
	}
}

// TestRandomAccessLevel is the random-access proof for single-level
// extraction: pulling one coarse level of one member out of a multi-member
// archive must read only the index and that level's frames.
func TestRandomAccessLevel(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)

	cr := &countingReaderAt{r: bytes.NewReader(blob)}
	r, err := Open(cr, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	indexBytes := cr.read.Load()
	l, err := r.ExtractLevel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	read := cr.read.Load()

	want := snaps[2].Levels[1]
	if worst := maskedMaxErr(want, l, want.Mask); worst > testEB {
		t.Fatalf("level max err %.4g > bound %.4g", worst, testEB)
	}
	// The touched frames must be exactly the level's compressed extent.
	frames := read - indexBytes
	if lvl := r.Members()[2].Levels[1].CompressedBytes(); frames != lvl {
		t.Fatalf("read %d frame bytes, level holds %d", frames, lvl)
	}
	if frac := float64(read) / float64(len(blob)); frac > 0.30 {
		t.Fatalf("extracting one of 8 levels read %.0f%% of the archive", frac*100)
	}
}

// TestRandomAccessRegion is the random-access proof for spatial queries:
// an octant ROI reads a small fraction of the archive and reconstructs
// within the bound.
func TestRandomAccessRegion(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 4)

	cr := &countingReaderAt{r: bytes.NewReader(blob)}
	r, err := Open(cr, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	roi := grid.Region{X0: 0, Y0: 0, Z0: 0, X1: 16, Y1: 16, Z1: 16} // one octant of 32³
	part, err := r.ExtractRegion(1, roi)
	if err != nil {
		t.Fatal(err)
	}
	read := cr.read.Load()

	orig := snaps[1]
	scale := 1
	covered := 0
	for li, l := range orig.Levels {
		pm := part.Levels[li].Mask
		ub := l.UnitBlock
		md := l.Mask.Dim
		for bx := 0; bx < md.X; bx++ {
			for by := 0; by < md.Y; by++ {
				for bz := 0; bz < md.Z; bz++ {
					// The block's finest-resolution extent intersects the
					// (origin-anchored) ROI iff its lower corner is inside.
					intersects := bx*ub*scale < roi.X1 && by*ub*scale < roi.Y1 && bz*ub*scale < roi.Z1
					if l.Mask.At(bx, by, bz) && intersects {
						if !pm.At(bx, by, bz) {
							t.Fatalf("level %d block (%d,%d,%d) intersects ROI but was not extracted", li, bx, by, bz)
						}
					}
					if !l.Mask.At(bx, by, bz) && pm.At(bx, by, bz) {
						t.Fatalf("level %d block (%d,%d,%d) extracted but never stored", li, bx, by, bz)
					}
				}
			}
		}
		covered += pm.Count()
		if worst := maskedMaxErr(l, part.Levels[li], pm); worst > testEB {
			t.Fatalf("level %d ROI max err %.4g > bound %.4g", li, worst, testEB)
		}
		scale *= orig.Ratio
	}
	if covered == 0 {
		t.Fatal("ROI extraction covered no blocks")
	}
	if frac := float64(read) / float64(len(blob)); frac > 0.20 {
		t.Fatalf("octant ROI of one of four members read %.0f%% of the archive", frac*100)
	}
}

// TestStreamingWriter checks that frames flow out incrementally (not
// buffered until Close) and that the pipeline never gathers more than one
// batch per worker uncompressed.
func TestStreamingWriter(t *testing.T) {
	snaps := testSnapshots(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 8
	const workers = 2
	cfg := codec.Config{ErrorBound: testEB, Workers: workers}

	prev := buf.Len()
	for _, ds := range snaps {
		mw, err := w.BeginMember(ds.Name, ds.Field, ds.Ratio, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range ds.Levels {
			if err := mw.AddLevel(l); err != nil {
				t.Fatal(err)
			}
			if buf.Len() <= prev {
				t.Fatalf("%s level %d: no bytes streamed out", ds.Name, li)
			}
			prev = buf.Len()
		}
		if err := mw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ub := snaps[0].Levels[0].UnitBlock
	limit := int64(workers * w.BatchBlocks * ub * ub * ub)
	if peak := w.Stats().PeakGatheredValues; peak == 0 || peak > limit {
		t.Fatalf("peak gathered %d values, want (0, %d]", peak, limit)
	}
	if st := w.Stats(); st.BytesWritten != int64(buf.Len()) || st.Members != len(snaps) {
		t.Fatalf("stats %+v disagree with buffer %d / members %d", st, buf.Len(), len(snaps))
	}
}

// TestConcurrentReaders extracts from one Reader in many goroutines; run
// with -race.
func TestConcurrentReaders(t *testing.T) {
	snaps := testSnapshots(t)
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := r.Extract(g % len(snaps)); err != nil {
				errs <- err
			}
			if _, err := r.ExtractLevel(g%len(snaps), g%2); err != nil {
				errs <- err
			}
			roi := grid.Region{X0: 8 * (g % 3), Y0: 0, Z0: 0, X1: 8*(g%3) + 8, Y1: 32, Z1: 32}
			if _, err := r.ExtractRegion(g%len(snaps), roi); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCorruptArchive(t *testing.T) {
	snaps := testSnapshots(t)[:1]
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)

	open := func(b []byte) error {
		_, err := Open(bytes.NewReader(b), int64(len(b)))
		return err
	}
	if err := open(blob[:10]); err == nil {
		t.Error("truncated archive accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if err := open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), blob...)
	bad[4] = 99
	if err := open(bad); err == nil {
		t.Error("unsupported version accepted")
	}
	// Truncating the tail destroys the trailer magic.
	if err := open(blob[:len(blob)-3]); err == nil {
		t.Error("truncated trailer accepted")
	}
	// Oversized footer length.
	bad = append([]byte(nil), blob...)
	for i := 0; i < 8; i++ {
		bad[len(bad)-16+i] = 0xff
	}
	if err := open(bad); err == nil {
		t.Error("oversized footer length accepted")
	}
	// Footer bytes scribbled: must error out, not panic.
	bad = append([]byte(nil), blob...)
	for i := len(bad) - 100; i < len(bad)-16; i++ {
		bad[i] ^= 0x5a
	}
	if err := open(bad); err == nil {
		t.Error("corrupt footer accepted")
	}
}

// TestRelativeBoundPerLevel checks Rel-mode archives resolve the bound
// against each level's own value range, like the one-shot codec.
func TestRelativeBoundPerLevel(t *testing.T) {
	snaps := testSnapshots(t)[:1]
	cfg := codec.Config{ErrorBound: 1e-3, Mode: 1} // sz.Rel
	blob := buildArchive(t, snaps, cfg, 16)
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.Extract(0)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range snaps[0].Levels {
		eb := cfg.LevelEB(li, l)
		if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > eb*(1+1e-12) {
			t.Fatalf("level %d max err %.6g > resolved bound %.6g", li, worst, eb)
		}
	}
}

func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := w.BeginMember("a", "f", 2, codec.Config{ErrorBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.BeginMember("b", "f", 2, codec.Config{ErrorBound: 1}); err == nil {
		t.Error("nested BeginMember accepted")
	}
	w2, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.BeginMember("r0", "f", 0, codec.Config{ErrorBound: 1}); err == nil {
		t.Error("refinement ratio 0 accepted (would divide by zero in ExtractRegion)")
	}
	if err := w.Close(); err == nil {
		t.Error("Close with open member accepted")
	}
	if err := mw.Close(); err == nil {
		t.Error("empty member accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("closing empty archive: %v", err)
	}
	if _, err := w.BeginMember("c", "f", 2, codec.Config{ErrorBound: 1}); err == nil {
		t.Error("BeginMember after Close accepted")
	}
	// An empty archive still round-trips.
	if _, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err != nil {
		t.Fatalf("empty archive: %v", err)
	}
}

func TestExtractRegionOutside(t *testing.T) {
	snaps := testSnapshots(t)[:1]
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExtractRegion(0, grid.Region{X0: 100, Y0: 0, Z0: 0, X1: 200, Y1: 10, Z1: 10}); err == nil {
		t.Error("out-of-domain ROI accepted")
	}
	if _, err := r.ExtractLevel(0, 7); err == nil {
		t.Error("missing level accepted")
	}
	if _, err := r.Extract(42); err == nil {
		t.Error("missing member accepted")
	}
}

// TestBatchSizeSweep round-trips several batch granularities, including
// one that leaves a short final batch.
func TestBatchSizeSweep(t *testing.T) {
	snaps := testSnapshots(t)[:1]
	for _, bb := range []int{1, 3, 16, 1024} {
		blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, bb)
		r, err := Open(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			t.Fatalf("batch %d: %v", bb, err)
		}
		recon, err := r.Extract(0)
		if err != nil {
			t.Fatalf("batch %d: %v", bb, err)
		}
		for li, l := range snaps[0].Levels {
			if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > testEB {
				t.Fatalf("batch %d level %d max err %.4g", bb, li, worst)
			}
		}
	}
}

func TestMemberAccounting(t *testing.T) {
	snaps := testSnapshots(t)[:1]
	blob := buildArchive(t, snaps, codec.Config{ErrorBound: testEB}, 16)
	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Members()[0]
	if m.OriginalBytes() != int64(snaps[0].OriginalBytes()) {
		t.Fatalf("original bytes %d, want %d", m.OriginalBytes(), snaps[0].OriginalBytes())
	}
	if c := m.CompressedBytes(); c <= 0 || c >= m.OriginalBytes() {
		t.Fatalf("compressed bytes %d outside (0, %d)", c, m.OriginalBytes())
	}
	if m.ErrorBound != testEB {
		t.Fatalf("recorded bound %v, want %v", m.ErrorBound, testEB)
	}
}
