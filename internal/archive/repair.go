package archive

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// RepairStats summarizes one repair pass: how many frames were audited,
// how many were damaged, and how many were re-fetched and respliced.
type RepairStats struct {
	FramesScanned  int   // frames audited by the pre-repair scrub
	FramesDamaged  int   // frames the scrub flagged
	FramesRepaired int   // frames re-fetched, verified, and respliced
	BytesRespliced int64 // total bytes rewritten in place
	Members        []int // member indices that had frames respliced, ascending
}

func (rs *RepairStats) add(o RepairStats) {
	rs.FramesScanned += o.FramesScanned
	rs.FramesDamaged += o.FramesDamaged
	rs.FramesRepaired += o.FramesRepaired
	rs.BytesRespliced += o.BytesRespliced
	rs.Members = append(rs.Members, o.Members...)
}

// syncer is the optional durability hook of a repair target: *os.File
// implements it, and RepairMember fsyncs respliced frames through it
// before re-verifying.
type syncer interface{ Sync() error }

// RepairMember heals member mi in place: it scrubs the member, re-fetches
// each damaged frame's bytes from src (a healthy source holding the same
// archive — a replica file or a replica.Multi), verifies the fetched
// bytes against the footer's CRC32C digest when the archive carries one,
// and splices them into dst at the frame's own offset. Frame offsets and
// lengths are fixed by the committed footer, so the splice rewrites
// exactly the damaged spans and never moves a byte; a crash mid-splice
// leaves the frame either old (still damaged, still detectable) or new —
// both re-repairable. dst must be the same storage the Reader reads
// (typically an O_RDWR handle of the archive file); when dst has a
// Sync method the respliced bytes are fsynced before the post-repair
// verification, which re-scrubs the member — on pre-v3 archives with no
// frame digests that decode pass is the only verification of the fetched
// bytes.
//
// A clean member is a no-op (zero FramesRepaired, nil error). Fetch
// failures are tagged ErrIO (the source may heal); a fetched frame that
// fails its digest means the source is damaged too and is tagged
// ErrCorrupt, with the local frame left untouched.
func (r *Reader) RepairMember(mi int, src io.ReaderAt, dst io.WriterAt) (RepairStats, error) {
	var rs RepairStats
	m, err := r.member(mi)
	if err != nil {
		return rs, err
	}
	for li := range m.Levels {
		rs.FramesScanned += len(m.Levels[li].Batches)
	}
	issues := r.ScrubMember(mi)
	rs.FramesDamaged = len(issues)
	if len(issues) == 0 {
		return rs, nil
	}
	for _, is := range issues {
		idx := &m.Levels[is.Level]
		rec := idx.Batches[is.Batch]
		blob := make([]byte, rec.Length)
		if _, err := src.ReadAt(blob, rec.Offset); err != nil {
			return rs, fmt.Errorf("archive: repair member %d level %d batch %d: %w: fetching replica frame: %w", mi, is.Level, is.Batch, ErrIO, err)
		}
		if idx.Sums != nil {
			if got := crc32.Checksum(blob, castagnoli); got != idx.Sums[is.Batch] {
				return rs, fmt.Errorf("archive: repair member %d level %d batch %d: %w: replica frame checksum %08x, footer records %08x — replica damaged too", mi, is.Level, is.Batch, ErrCorrupt, got, idx.Sums[is.Batch])
			}
		}
		if _, err := dst.WriteAt(blob, rec.Offset); err != nil {
			return rs, fmt.Errorf("archive: repair member %d level %d batch %d: splicing frame: %w", mi, is.Level, is.Batch, err)
		}
		rs.FramesRepaired++
		rs.BytesRespliced += rec.Length
	}
	if s, ok := dst.(syncer); ok {
		if err := s.Sync(); err != nil {
			return rs, fmt.Errorf("archive: repair member %d: syncing respliced frames: %w", mi, err)
		}
	}
	if left := r.ScrubMember(mi); len(left) > 0 {
		return rs, fmt.Errorf("archive: member %d still damaged after repair (%s): %w", mi, left[0], ErrCorrupt)
	}
	rs.Members = []int{mi}
	return rs, nil
}

// Repair heals the archive file at path in place: every member is
// scrubbed and any damaged frames are re-fetched from src via
// RepairMember. Members are repaired in index order, so on pre-v3
// archives (whose scrub decodes through delta chains) a damaged
// reference member is healed before the members coded against it.
// Repair stops at the first member it cannot heal; the stats cover
// everything done up to that point.
func Repair(path string, src io.ReaderAt) (RepairStats, error) {
	var total RepairStats
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return total, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return total, err
	}
	r, err := Open(f, st.Size())
	if err != nil {
		return total, fmt.Errorf("%s: %w", path, err)
	}
	for mi := range r.Members() {
		rs, err := r.RepairMember(mi, src, f)
		total.add(rs)
		if err != nil {
			return total, err
		}
	}
	sort.Ints(total.Members)
	return total, nil
}
