package archive

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
)

// TestChecksumRoundTrip builds the same snapshots with and without
// checksums: the checksummed archive must commit the v3 (TACAEND4)
// format with a digest per frame, keep the data section byte-identical
// to the plain build (digests live only in the footer), and extract the
// same values.
func TestChecksumRoundTrip(t *testing.T) {
	snaps := testSnapshots(t)
	cfg := codec.Config{ErrorBound: testEB}
	plain := buildArchive(t, snaps, cfg, 8)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 8
	w.Checksums = true
	for _, ds := range snaps {
		if err := w.AddDataset(ds, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sum := buf.Bytes()

	if !bytes.HasSuffix(sum, trailer4Magic[:]) {
		t.Fatalf("checksummed archive does not end with %q", trailer4Magic)
	}
	// The frames themselves must be untouched: digests change only the
	// footer and trailer. The plain archive's data section is everything
	// before its footer.
	var flen uint64
	for i := 7; i >= 0; i-- {
		flen = flen<<8 | uint64(plain[len(plain)-trailerLen+i])
	}
	dataEnd := len(plain) - trailerLen - int(flen)
	if !bytes.Equal(plain[:dataEnd], sum[:dataEnd]) {
		t.Fatal("checksummed archive's data section differs from the plain build")
	}

	r, err := Open(bytes.NewReader(sum), int64(len(sum)))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checksummed() {
		t.Fatal("Checksummed() = false on a v3 archive")
	}
	for mi := range r.Members() {
		m := &r.Members()[mi]
		for li := range m.Levels {
			idx := &m.Levels[li]
			if len(idx.Sums) != len(idx.Batches) {
				t.Fatalf("member %d level %d: %d sums for %d batches", mi, li, len(idx.Sums), len(idx.Batches))
			}
		}
		recon, err := r.Extract(mi)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range snaps[mi].Levels {
			if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > testEB {
				t.Fatalf("member %d level %d max err %.4g > bound %.4g", mi, li, worst, testEB)
			}
		}
	}
	if issues := r.Scrub(); len(issues) != 0 {
		t.Fatalf("clean archive scrubbed %d issues: %v", len(issues), issues[0])
	}

	// The plain archive must also scrub clean through the decode
	// fallback, and report itself unchecksummed.
	pr, err := Open(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Checksummed() {
		t.Fatal("Checksummed() = true on a v1 archive")
	}
	if issues := pr.Scrub(); len(issues) != 0 {
		t.Fatalf("clean v1 archive scrubbed %d issues: %v", len(issues), issues[0])
	}
}

// TestChecksumDetectsEveryFrameFlip is the 100%-detection sweep: one bit
// flipped in the middle of EVERY frame of a checksummed archive must be
// caught both by the read path (DecodeBatch → ErrCorrupt) and by Scrub,
// which must name exactly the damaged frame. sz streams themselves are
// not checksummed, so without digests some of these flips would decode
// to silently wrong values (see TestFrameDamageIsErrCorrupt).
func TestChecksumDetectsEveryFrameFlip(t *testing.T) {
	snaps := testSnapshots(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 8
	w.Checksums = true
	for _, ds := range snaps[:2] {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	clean, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}

	frames := 0
	for mi := range clean.Members() {
		m := &clean.Members()[mi]
		for li := range m.Levels {
			for b, rec := range m.Levels[li].Batches {
				frames++
				damaged := append([]byte(nil), blob...)
				damaged[rec.Offset+rec.Length/2] ^= 0x04

				dr, err := Open(bytes.NewReader(damaged), int64(len(damaged)))
				if err != nil {
					t.Fatalf("frame damage broke Open: %v", err)
				}
				if _, err := dr.DecodeBatch(mi, li, b); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("member %d level %d batch %d: flipped frame decoded without ErrCorrupt (err=%v)", mi, li, b, err)
				} else if errors.Is(err, ErrIO) {
					t.Fatalf("member %d level %d batch %d: checksum mismatch tagged ErrIO: %v", mi, li, b, err)
				}
				issues := dr.Scrub()
				if len(issues) != 1 {
					t.Fatalf("member %d level %d batch %d: scrub found %d issues, want exactly 1", mi, li, b, len(issues))
				}
				is := issues[0]
				if is.Member != mi || is.Level != li || is.Batch != b {
					t.Fatalf("scrub blamed member %d level %d batch %d, damage was %d/%d/%d", is.Member, is.Level, is.Batch, mi, li, b)
				}
				if !strings.Contains(is.String(), "checksum") {
					t.Fatalf("scrub issue does not mention the checksum: %v", is)
				}
			}
		}
	}
	if frames < 4 {
		t.Fatalf("sweep covered only %d frames — archive too small to mean anything", frames)
	}
}

// TestChecksumAppendUpgrade appends to an UNchecksummed on-disk archive
// with Checksums enabled: Commit must backfill digests for the committed
// generation (reading its frames back) and seal the whole archive at v3,
// so one append upgrades a legacy archive in place.
func TestChecksumAppendUpgrade(t *testing.T) {
	snaps := testSnapshots(t)
	cfg := codec.Config{ErrorBound: testEB}
	path := filepath.Join(t.TempDir(), "upgrade.taca")
	if err := os.WriteFile(path, buildArchive(t, snaps[:2], cfg, 8), 0o644); err != nil {
		t.Fatal(err)
	}

	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if w.Checksums {
		t.Fatal("OpenAppend claims a v1 archive is checksummed")
	}
	w.Checksums = true
	if err := w.AddDataset(snaps[2], cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Checksummed() {
		t.Fatal("upgraded archive is not checksummed")
	}
	if got := len(r.Members()); got != 3 {
		t.Fatalf("upgraded archive holds %d members, want 3", got)
	}
	if issues := r.Scrub(); len(issues) != 0 {
		t.Fatalf("upgraded archive scrubbed %d issues: %v", len(issues), issues[0])
	}

	// And the next append inherits checksums without being asked.
	w2, f2, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !w2.Checksums {
		t.Fatal("OpenAppend did not inherit Checksums from a v3 tail")
	}
	if err := w2.AddDataset(snaps[3], cfg); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !r2.Checksummed() || len(r2.Members()) != 4 {
		t.Fatalf("second append: checksummed=%v members=%d, want true/4", r2.Checksummed(), len(r2.Members()))
	}
	if issues := r2.Scrub(); len(issues) != 0 {
		t.Fatalf("twice-appended archive scrubbed %d issues: %v", len(issues), issues[0])
	}
}

// TestChecksumLateEnableRejected pins the in-memory failure mode: frames
// already streamed to a plain io.Writer cannot be read back, so enabling
// Checksums after writing must fail loudly at Commit, not emit a v3
// footer with missing digests.
func TestChecksumLateEnableRejected(t *testing.T) {
	snaps := testSnapshots(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddDataset(snaps[0], codec.Config{ErrorBound: testEB}); err != nil {
		t.Fatal(err)
	}
	w.Checksums = true
	if err := w.Close(); err == nil {
		t.Fatal("Commit accepted checksums enabled after frames were written to a non-file writer")
	}
}

// TestChecksumDeltaCampaign runs campaign (delta) mode with digests on:
// the archive must carry both delta links and sums (v3 subsumes v2), and
// every chain member must still reconstruct within the bound.
func TestChecksumDeltaCampaign(t *testing.T) {
	const keyframe = 3
	snaps := testCampaign(t, 5)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 16
	w.Keyframe = keyframe
	w.Checksums = true
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	r, err := Open(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checksummed() {
		t.Fatal("delta campaign archive is not checksummed")
	}
	sawDelta := false
	for i := range snaps {
		if r.Members()[i].IsDelta() {
			sawDelta = true
		}
		recon, err := r.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range snaps[i].Levels {
			if worst := maskedMaxErr(l, recon.Levels[li], l.Mask); worst > testEB {
				t.Fatalf("member %d level %d max err %.4g > bound %.4g", i, li, worst, testEB)
			}
		}
	}
	if !sawDelta {
		t.Fatal("campaign archive holds no delta member — drift too large?")
	}
	if issues := r.Scrub(); len(issues) != 0 {
		t.Fatalf("clean campaign archive scrubbed %d issues: %v", len(issues), issues[0])
	}
}
