package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/amr"
	"repro/internal/codec"
)

// buildV4 writes the snapshots into an in-memory archive sealed under the
// v4 (footer-digested) trailer.
func buildV4(t testing.TB, snaps []*amr.Dataset, batchBlocks int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = batchBlocks
	w.FooterSum = true
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// maskedValues flattens a dataset to its stored values, level by level.
func maskedValues(ds *amr.Dataset) []amr.Value {
	var out []amr.Value
	for _, l := range ds.Levels {
		out = l.MaskedValues(out)
	}
	return out
}

// TestFooterSumRoundTrip pins the v4 format's byte relationship to v3:
// the data section and footer are identical — FooterSum changes only the
// trailer — and the archive opens, verifies, and extracts like its v3
// twin.
func TestFooterSumRoundTrip(t *testing.T) {
	snaps := testSnapshots(t)[:2]
	var v3buf bytes.Buffer
	w, err := NewWriter(&v3buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchBlocks = 8
	w.Checksums = true
	for _, ds := range snaps {
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	v3 := v3buf.Bytes()
	v4 := buildV4(t, snaps, 8)

	if !bytes.HasSuffix(v4, trailer5Magic[:]) {
		t.Fatalf("v4 archive does not end with TACAEND5: %q", v4[len(v4)-8:])
	}
	if len(v4) != len(v3)+(trailer5Len-trailer4Len) {
		t.Fatalf("v4 size %d, v3 size %d: want exactly the trailer growth %d", len(v4), len(v3), trailer5Len-trailer4Len)
	}
	if !bytes.Equal(v4[:len(v4)-trailer5Len], v3[:len(v3)-trailer4Len]) {
		t.Fatal("v4 data+footer bytes differ from v3 — FooterSum must only change the trailer")
	}

	r, err := Open(bytes.NewReader(v4), int64(len(v4)))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checksummed() || !r.FooterChecksummed() {
		t.Fatalf("Checksummed=%v FooterChecksummed=%v, want both", r.Checksummed(), r.FooterChecksummed())
	}
	v3r, err := Open(bytes.NewReader(v3), int64(len(v3)))
	if err != nil {
		t.Fatal(err)
	}
	if v3r.FooterChecksummed() {
		t.Fatal("v3 archive claims a footer digest")
	}
	if issues := r.Scrub(); len(issues) != 0 {
		t.Fatalf("clean v4 archive scrubs dirty: %v", issues)
	}
	for i := range snaps {
		a, err := r.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := v3r.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(maskedValues(a), maskedValues(b)) {
			t.Fatalf("member %d: v4 extraction differs from v3", i)
		}
	}
}

// TestFooterSumAppendInheritance appends to a v4 file without setting any
// flag: the footer digest must be sticky across generations.
func TestFooterSumAppendInheritance(t *testing.T) {
	snaps := testSnapshots(t)
	path := filepath.Join(t.TempDir(), "v4.taca")
	if err := os.WriteFile(path, buildV4(t, snaps[:1], 8), 0o644); err != nil {
		t.Fatal(err)
	}
	w, f, err := OpenAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !w.FooterSum || !w.Checksums {
		t.Fatalf("OpenAppend of a v4 tail: FooterSum=%v Checksums=%v, want both inherited", w.FooterSum, w.Checksums)
	}
	if err := w.AddDataset(snaps[1], codec.Config{ErrorBound: testEB}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.FooterChecksummed() || r.Generation() != 1 || len(r.Members()) != 2 {
		t.Fatalf("appended v4 archive: fsum=%v gen=%d members=%d", r.FooterChecksummed(), r.Generation(), len(r.Members()))
	}
	if issues := r.Scrub(); len(issues) != 0 {
		t.Fatalf("appended v4 archive scrubs dirty: %v", issues)
	}
}

// TestFooterSumGenerationFallback is the survivability sweep: a single
// bit flipped at EVERY byte of a 3-generation v4 archive's newest
// footer+trailer must make Open reject that generation (the digest seals
// footer, length, and generation words; the magic bytes reject
// structurally) and recover generation N-1 with exactly its committed
// index.
func TestFooterSumGenerationFallback(t *testing.T) {
	snaps := testSnapshots(t)[:3]
	path := filepath.Join(t.TempDir(), "gens.taca")
	if err := os.WriteFile(path, buildV4(t, snaps[:1], 8), 0o644); err != nil {
		t.Fatal(err)
	}
	var ends []int64
	appendOne := func(ds *amr.Dataset) {
		t.Helper()
		w, f, err := OpenAppendFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := w.AddDataset(ds, codec.Config{ErrorBound: testEB}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, st.Size())
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ends = append(ends, st.Size())
	appendOne(snaps[1])
	appendOne(snaps[2])

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	size1, size2 := ends[1], ends[2]
	// The gen-1 reference view: the archive exactly as committed before
	// the last append.
	ref, err := Open(bytes.NewReader(full[:size1]), size1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Generation() != 1 || len(ref.Members()) != 2 {
		t.Fatalf("reference view: gen=%d members=%d", ref.Generation(), len(ref.Members()))
	}
	refVals := make([][]amr.Value, len(ref.Members()))
	for i := range refVals {
		ds, err := ref.Extract(i)
		if err != nil {
			t.Fatal(err)
		}
		refVals[i] = maskedValues(ds)
	}

	// Locate generation 2's footer from its trailer.
	var flen uint64
	for i := 7; i >= 0; i-- {
		flen = flen<<8 | uint64(full[size2-trailer5Len+int64(i)])
	}
	footerStart := size2 - trailer5Len - int64(flen)
	if footerStart <= size1 {
		t.Fatalf("gen-2 footer start %d not past gen-1 end %d", footerStart, size1)
	}

	damaged := append([]byte(nil), full...)
	for off := footerStart; off < size2; off++ {
		damaged[off] ^= 0x10
		rd, err := Open(bytes.NewReader(damaged), size2)
		if err != nil {
			t.Fatalf("flip at %d: Open failed outright: %v", off, err)
		}
		if rd.Generation() != 1 || rd.EndOffset() != size1 {
			t.Fatalf("flip at %d: recovered gen=%d end=%d, want gen 1 ending at %d", off, rd.Generation(), rd.EndOffset(), size1)
		}
		if !reflect.DeepEqual(rd.Members(), ref.Members()) {
			t.Fatalf("flip at %d: recovered index differs from the committed gen-1 index", off)
		}
		// Full byte-identical extraction is pricey; spot-check it on a
		// stride plus the first and last offsets of the sweep.
		if off == footerStart || off == size2-1 || (off-footerStart)%97 == 0 {
			for i := range rd.Members() {
				ds, err := rd.Extract(i)
				if err != nil {
					t.Fatalf("flip at %d: extracting member %d: %v", off, i, err)
				}
				if !reflect.DeepEqual(maskedValues(ds), refVals[i]) {
					t.Fatalf("flip at %d: member %d extraction differs from gen-1 reference", off, i)
				}
			}
		}
		damaged[off] ^= 0x10
	}
}
