package archive

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/amr"
	"repro/internal/grid"
	"repro/internal/sz"
)

// ErrCorrupt tags every failure caused by a damaged or truncated archive
// file: a trailer or index that does not parse, frame bytes the codec
// rejects, a frame whose CRC32C digest does not match the footer's, or
// reads that run off the data section. Callers branch on it with
// errors.Is to distinguish archive damage from usage errors (unknown
// member, bad level index), and every ErrCorrupt-wrapped message carries
// the member/level/batch it was detected in — no raw io error ever
// surfaces bare.
var ErrCorrupt = errors.New("corrupt or truncated archive")

// ErrIO additionally tags ErrCorrupt failures whose proximate cause was
// the io.ReaderAt itself — a failed or short frame read — as opposed to
// bytes that were read intact but do not verify. I/O failures are the
// transient class (a flaky disk, a dropped connection to remote storage):
// the serving layer retries errors.Is(err, ErrIO) with backoff, while
// deterministic corruption counts toward quarantining the member.
var ErrIO = errors.New("read error")

// Reader is a random-access view of a TACA archive. Open parses only the
// footer index; every extraction then reads exactly the frames it needs
// through the io.ReaderAt. A Reader holds no mutable state after Open, so
// any number of goroutines may extract concurrently.
type Reader struct {
	// Workers bounds the per-extraction decode pool; 0 means GOMAXPROCS,
	// 1 decodes serially.
	Workers int

	r       io.ReaderAt
	size    int64 // end of the generation this Reader parsed, ≤ the file size
	gen     uint64
	sums    bool // footer is v3+: every frame carries a CRC32C digest
	fsum    bool // footer is v4: the trailer carries a CRC32C digest of the footer itself
	members []Member
}

// Checksummed reports whether the archive's footer carries per-frame
// CRC32C digests (format v3): every frame read is then verified, and
// Scrub audits without decoding.
func (r *Reader) Checksummed() bool { return r.sums }

// FooterChecksummed reports whether the archive's newest trailer carries
// a CRC32C digest of the footer itself (format v4): Open verified the
// index before trusting it, and falls back to the previous committed
// generation when the newest footer is damaged.
func (r *Reader) FooterChecksummed() bool { return r.fsum }

// Open reads and parses the archive index from r, which must cover size
// bytes. If the tail of the file is torn — a crash mid-append left a
// partial frame or footer after the last committed generation — Open
// recovers: it scans backward for the newest committed trailer and serves
// that generation, ignoring the torn tail (OpenAppend additionally
// truncates it). An archive whose newest commit is intact always parses
// without any scanning.
func Open(r io.ReaderAt, size int64) (*Reader, error) {
	rd, err := openAt(r, size)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		return rd, err
	}
	// The exact tail is damaged. Every committed generation ends with a
	// trailer; the newest valid one wins.
	if rd, _, rerr := recoverScan(r, size); rerr == nil {
		return rd, nil
	}
	return nil, err
}

// openAt strictly parses the archive whose newest trailer ends exactly at
// end.
func openAt(r io.ReaderAt, end int64) (*Reader, error) {
	if end < headerLen+trailerLen {
		return nil, fmt.Errorf("archive: %d bytes is too short for a TACA archive", end)
	}
	hdr := make([]byte, headerLen)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("archive: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, fmt.Errorf("archive: bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("archive: unsupported version %d", hdr[4])
	}
	magic := make([]byte, 8)
	if _, err := r.ReadAt(magic, end-8); err != nil {
		return nil, fmt.Errorf("archive: reading trailer: %w", err)
	}
	var tlen int64
	var gen uint64
	ver := 1
	switch [8]byte(magic) {
	case trailerMagic:
		tlen = trailerLen
	case trailer2Magic:
		tlen = trailer2Len
		if end < headerLen+trailer2Len {
			return nil, fmt.Errorf("archive: %w: %d bytes is too short for a generation trailer", ErrCorrupt, end)
		}
	case trailer3Magic:
		// Same 24-byte shape as trailer₂, but signals the v2 (delta-aware)
		// footer layout and is legal at generation 0.
		tlen = trailer3Len
		ver = 2
		if end < headerLen+trailer3Len {
			return nil, fmt.Errorf("archive: %w: %d bytes is too short for a generation trailer", ErrCorrupt, end)
		}
	case trailer4Magic:
		// v3 footer: the v2 layout plus per-frame CRC32C digests.
		tlen = trailer4Len
		ver = 3
		if end < headerLen+trailer4Len {
			return nil, fmt.Errorf("archive: %w: %d bytes is too short for a generation trailer", ErrCorrupt, end)
		}
	case trailer5Magic:
		// v4: the v3 footer layout sealed under a whole-footer digest.
		tlen = trailer5Len
		ver = 4
		if end < headerLen+trailer5Len {
			return nil, fmt.Errorf("archive: %w: %d bytes is too short for a footer-digest trailer", ErrCorrupt, end)
		}
	default:
		return nil, fmt.Errorf("archive: %w: bad trailer magic %q", ErrCorrupt, magic)
	}
	trailer := make([]byte, tlen)
	if _, err := r.ReadAt(trailer, end-tlen); err != nil {
		return nil, fmt.Errorf("archive: reading trailer: %w", err)
	}
	var flen uint64
	for i := 7; i >= 0; i-- {
		flen = flen<<8 | uint64(trailer[i])
	}
	if tlen >= trailer2Len {
		for i := 7; i >= 0; i-- {
			gen = gen<<8 | uint64(trailer[8+i])
		}
		if gen == 0 && ver < 2 {
			return nil, fmt.Errorf("archive: %w: generation trailer claims generation 0", ErrCorrupt)
		}
	}
	if flen > uint64(end-headerLen-tlen) {
		return nil, fmt.Errorf("archive: %w: footer length %d exceeds file size %d", ErrCorrupt, flen, end)
	}
	footer := make([]byte, flen)
	if _, err := r.ReadAt(footer, end-tlen-int64(flen)); err != nil {
		return nil, fmt.Errorf("archive: %w: reading footer: %w", ErrCorrupt, err)
	}
	if ver >= 4 {
		// Verify the footer digest before trusting a single index varint:
		// it seals the footer bytes plus the trailer's length and
		// generation words, so a flip anywhere in the index — or in the
		// words that locate it — is rejected here, and Open falls back to
		// the previous committed generation.
		var want uint32
		for i := 3; i >= 0; i-- {
			want = want<<8 | uint32(trailer[16+i])
		}
		got := crc32.Checksum(footer, castagnoli)
		got = crc32.Update(got, castagnoli, trailer[:16])
		if got != want {
			return nil, fmt.Errorf("archive: %w: footer digest %08x, trailer records %08x", ErrCorrupt, got, want)
		}
	}
	members, err := decodeFooter(footer, ver)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	dataEnd := end - tlen - int64(flen)
	for mi := range members {
		for li := range members[mi].Levels {
			for _, b := range members[mi].Levels[li].Batches {
				if b.Offset < headerLen || b.Offset+b.Length > dataEnd {
					return nil, fmt.Errorf("archive: %w: member %d level %d frame [%d,%d) outside data section", ErrCorrupt, mi, li, b.Offset, b.Offset+b.Length)
				}
			}
		}
	}
	return &Reader{r: r, size: end, gen: gen, sums: ver >= 3, fsum: ver >= 4, members: members}, nil
}

// recoverScan searches backward from size for the newest end-of-trailer
// position whose generation parses completely, returning its Reader and
// end offset. The scan is the crash-recovery slow path: it only runs when
// the trailer at EOF is torn, and the previous generation's trailer — left
// intact because append never overwrites committed bytes — is normally
// found within the first chunk.
func recoverScan(r io.ReaderAt, size int64) (*Reader, int64, error) {
	const chunk = 64 << 10
	// Candidate ends strictly before size: size itself was already tried.
	for hi := size - 1; hi > headerLen; hi -= chunk {
		lo := hi - chunk
		if lo < headerLen {
			lo = headerLen
		}
		// Overlap by 7 bytes so a magic straddling the chunk boundary is
		// still seen by exactly one window.
		winEnd := hi + 7
		if winEnd > size {
			winEnd = size
		}
		win := make([]byte, winEnd-lo)
		if n, err := r.ReadAt(win, lo); err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("archive: %w: recovery scan read: %w", ErrCorrupt, err)
		} else if int64(n) < winEnd-lo {
			win = win[:n]
		}
		for i := len(win) - 8; i >= 0; i-- {
			if win[i] != 'T' {
				continue
			}
			m := [8]byte(win[i : i+8])
			if m != trailerMagic && m != trailer2Magic && m != trailer3Magic && m != trailer4Magic && m != trailer5Magic {
				continue
			}
			end := lo + int64(i) + 8
			if end >= size || end > hi+8 {
				// First guard: already tried. Second: the magic starts in
				// the overlap tail owned by the next-higher window.
				continue
			}
			if rd, err := openAt(r, end); err == nil {
				return rd, end, nil
			}
		}
	}
	return nil, 0, fmt.Errorf("archive: %w: no committed generation found", ErrCorrupt)
}

// FileReader is a Reader backed by an opened file.
type FileReader struct {
	*Reader
	f *os.File
}

// Close closes the underlying file.
func (fr *FileReader) Close() error { return fr.f.Close() }

// OpenFile opens a TACA archive from disk.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := Open(f, st.Size())
	if err != nil {
		f.Close()
		// Open's errors already carry the "archive:" prefix; add the path.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &FileReader{Reader: r, f: f}, nil
}

// Members returns the archive index (shared, not copied — callers must not
// mutate).
func (r *Reader) Members() []Member { return r.members }

// Generation returns the footer generation this Reader parsed: 0 for an
// archive that has never been appended to, k for the k-th committed
// append.
func (r *Reader) Generation() uint64 { return r.gen }

// EndOffset returns the byte offset just past the trailer of the parsed
// generation. It equals the file size unless Open recovered from a torn
// tail, in which case the bytes at [EndOffset, size) are the wreckage of
// an uncommitted append.
func (r *Reader) EndOffset() int64 { return r.size }

// Section returns a reader over the committed bytes of the generation
// this Reader parsed ([0, EndOffset())). The serving tier's raw-bytes
// endpoint reads through it to re-export an archive over HTTP ranges:
// a SectionReader is a ReadSeeker+ReaderAt, which is exactly what
// http.ServeContent wants, and bounding it at EndOffset keeps the
// wreckage of a torn tail — or a generation newer than this view —
// from ever crossing the wire.
func (r *Reader) Section() *io.SectionReader {
	return io.NewSectionReader(r.r, 0, r.size)
}

// TypicalFrameBytes returns the mean stored frame length across the
// archive's batch index, or 0 for an empty archive. Remote readers size
// their read-ahead segments to a few of these so one range request
// covers the neighbouring frames a level sweep touches next.
func (r *Reader) TypicalFrameBytes() int64 {
	var sum, n int64
	for mi := range r.members {
		for li := range r.members[mi].Levels {
			for _, b := range r.members[mi].Levels[li].Batches {
				sum += b.Length
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Find returns the index of the member with the given name and field, or
// -1. An empty field matches the first member with the name.
func (r *Reader) Find(name, field string) int {
	for i := range r.members {
		if r.members[i].Name == name && (field == "" || r.members[i].Field == field) {
			return i
		}
	}
	return -1
}

// member bounds-checks a member index.
func (r *Reader) member(i int) (*Member, error) {
	if i < 0 || i >= len(r.members) {
		return nil, fmt.Errorf("archive: no member %d (have %d)", i, len(r.members))
	}
	return &r.members[i], nil
}

// DecodeBatch reads and decodes exactly one block-batch frame: batch b of
// level li of member mi. The returned grids are the frame's occupied unit
// blocks in row-major mask order — ordinals BatchSpan(b) of the level's
// Mask.OccupiedIndices() — freshly allocated and owned by the caller. This
// is the frame-granularity extraction hook the serving layer builds its
// block cache on. Decoding borrows a pooled sz decoder; DecodeBatchWith
// lets a caller supply its own.
func (r *Reader) DecodeBatch(mi, li, b int) ([]*grid.Grid3[amr.Value], error) {
	dec := decoders.Get()
	defer decoders.Put(dec)
	return r.DecodeBatchWith(dec, mi, li, b)
}

// DecodeBatchWith is DecodeBatch decoding through dec, for callers that
// pin per-goroutine decoders instead of sharing the package pool.
func (r *Reader) DecodeBatchWith(dec *sz.Decoder[amr.Value], mi, li, b int) ([]*grid.Grid3[amr.Value], error) {
	m, err := r.member(mi)
	if err != nil {
		return nil, err
	}
	if li < 0 || li >= len(m.Levels) {
		return nil, fmt.Errorf("archive: member %d has no level %d", mi, li)
	}
	idx := &m.Levels[li]
	if b < 0 || b >= len(idx.Batches) {
		return nil, fmt.Errorf("archive: member %d level %d has no batch %d (have %d)", mi, li, b, len(idx.Batches))
	}
	return r.decodeBatch(dec, idx, mi, li, b)
}

// decodeBatch reads frame b of idx through the ReaderAt and decodes it,
// validating the frame geometry against the index. A delta frame first
// resolves its reference chain: the matching batch of the referenced
// member (structure-identical by footer validation, so batch b covers the
// same blocks) is decoded recursively down to the nearest intra frame,
// then residuals apply upward. References point strictly backward, so the
// recursion depth is bounded by the keyframe interval the writer used. mi
// and li only provide error context; idx must be level li of member mi.
func (r *Reader) decodeBatch(dec *sz.Decoder[amr.Value], idx *LevelIndex, mi, li, b int) ([]*grid.Grid3[amr.Value], error) {
	var refs []*grid.Grid3[amr.Value]
	if idx.IsDelta(b) {
		refMi := r.members[mi].Ref
		refIdx := &r.members[refMi].Levels[li]
		var err error
		if refs, err = r.decodeBatch(dec, refIdx, refMi, li, b); err != nil {
			return nil, err
		}
	}
	return r.decodeBatchOn(dec, idx, mi, li, b, refs)
}

// decodeBatchOn decodes frame b of idx given its already-decoded
// reference blocks (nil for an intra frame). The frame's coding mode must
// match the footer's flag — a delta payload in an intra slot (or the
// reverse) is corruption, caught before any reconstruction.
func (r *Reader) decodeBatchOn(dec *sz.Decoder[amr.Value], idx *LevelIndex, mi, li, b int, refs []*grid.Grid3[amr.Value]) ([]*grid.Grid3[amr.Value], error) {
	blob, err := r.readFrame(idx, mi, li, b)
	if err != nil {
		return nil, err
	}
	lo, hi := idx.BatchSpan(b)
	info, err := sz.PeekBatch(blob)
	if err != nil {
		return nil, fmt.Errorf("archive: member %d level %d batch %d: %w: %w", mi, li, b, ErrCorrupt, err)
	}
	wantDims := grid.Dims{X: idx.UnitBlock, Y: idx.UnitBlock, Z: idx.UnitBlock}
	if info.BlockDims != wantDims || info.Blocks != hi-lo {
		return nil, fmt.Errorf("archive: member %d level %d batch %d: %w: frame holds %d×%v blocks, index implies %d×%v",
			mi, li, b, ErrCorrupt, info.Blocks, info.BlockDims, hi-lo, wantDims)
	}
	if info.Delta != idx.IsDelta(b) {
		return nil, fmt.Errorf("archive: member %d level %d batch %d: %w: frame delta=%v, index says %v",
			mi, li, b, ErrCorrupt, info.Delta, idx.IsDelta(b))
	}
	var blocks []*grid.Grid3[amr.Value]
	if info.Delta {
		blocks, err = dec.DecompressBlocksDelta(blob, refs)
	} else {
		blocks, err = dec.DecompressBlocks(blob)
	}
	if err != nil {
		return nil, fmt.Errorf("archive: member %d level %d batch %d: %w: %w", mi, li, b, ErrCorrupt, err)
	}
	return blocks, nil
}

// readFrame reads frame b of idx and, when the footer carries digests,
// verifies its CRC32C before any byte reaches the codec. Read failures
// are tagged ErrIO (the transient class) in addition to ErrCorrupt;
// digest mismatches are ErrCorrupt alone — the bytes arrived, they are
// simply wrong. mi and li only provide error context.
func (r *Reader) readFrame(idx *LevelIndex, mi, li, b int) ([]byte, error) {
	rec := idx.Batches[b]
	blob := make([]byte, rec.Length)
	if _, err := r.r.ReadAt(blob, rec.Offset); err != nil {
		return nil, fmt.Errorf("archive: member %d level %d batch %d: %w: %w: reading frame: %w", mi, li, b, ErrCorrupt, ErrIO, err)
	}
	if idx.Sums != nil {
		if got := crc32.Checksum(blob, castagnoli); got != idx.Sums[b] {
			return nil, fmt.Errorf("archive: member %d level %d batch %d: %w: frame checksum %08x, footer records %08x", mi, li, b, ErrCorrupt, got, idx.Sums[b])
		}
	}
	return blob, nil
}

// ScrubIssue is one damaged frame found by Scrub: the member, level, and
// batch it lives in, plus the ErrCorrupt-tagged error describing it.
type ScrubIssue struct {
	Member int
	Level  int
	Batch  int
	Err    error
}

func (si ScrubIssue) String() string {
	return fmt.Sprintf("member %d level %d batch %d: %v", si.Member, si.Level, si.Batch, si.Err)
}

// Scrub audits every frame of the archive, returning one issue per
// damaged frame (nil means the archive is clean). On a checksummed (v3)
// archive each frame is read once and its CRC32C verified — no decoding,
// so a scrub runs at I/O speed; on older archives Scrub falls back to
// fully decoding every batch, which still catches structural damage but
// not a bit flip the codec happens to tolerate. Scrub keeps going after a
// hit so one pass reports the archive's full damage map.
func (r *Reader) Scrub() []ScrubIssue {
	var issues []ScrubIssue
	for mi := range r.members {
		issues = append(issues, r.ScrubMember(mi)...)
	}
	return issues
}

// ScrubMember audits every frame of one member (see Scrub).
func (r *Reader) ScrubMember(mi int) []ScrubIssue {
	m, err := r.member(mi)
	if err != nil {
		return []ScrubIssue{{Member: mi, Err: err}}
	}
	var issues []ScrubIssue
	for li := range m.Levels {
		idx := &m.Levels[li]
		for b := range idx.Batches {
			if idx.Sums != nil {
				if _, err := r.readFrame(idx, mi, li, b); err != nil {
					issues = append(issues, ScrubIssue{Member: mi, Level: li, Batch: b, Err: err})
				}
				continue
			}
			if _, err := r.DecodeBatch(mi, li, b); err != nil {
				issues = append(issues, ScrubIssue{Member: mi, Level: li, Batch: b, Err: err})
			}
		}
	}
	return issues
}

// BatchDep reports the dependency of batch b of level li of member mi:
// whether the frame is delta-coded and, if so, the member index its
// reference batch lives in (batch b of the same level — the structures
// are identical by construction). Chain-aware callers (the serving
// layer's cache) use it to decode references through their own storage
// and then apply the residual via DecodeBatchOn.
func (r *Reader) BatchDep(mi, li, b int) (ref int, delta bool, err error) {
	m, err := r.member(mi)
	if err != nil {
		return -1, false, err
	}
	if li < 0 || li >= len(m.Levels) {
		return -1, false, fmt.Errorf("archive: member %d has no level %d", mi, li)
	}
	idx := &m.Levels[li]
	if b < 0 || b >= len(idx.Batches) {
		return -1, false, fmt.Errorf("archive: member %d level %d has no batch %d (have %d)", mi, li, b, len(idx.Batches))
	}
	if idx.IsDelta(b) {
		return m.Ref, true, nil
	}
	return -1, false, nil
}

// DecodeBatchOn is DecodeBatch for callers that resolve reference chains
// themselves: refs must be the decoded blocks of the reference batch
// reported by BatchDep (nil for an intra frame). The returned grids are
// freshly allocated; refs is read only.
func (r *Reader) DecodeBatchOn(mi, li, b int, refs []*grid.Grid3[amr.Value]) ([]*grid.Grid3[amr.Value], error) {
	m, err := r.member(mi)
	if err != nil {
		return nil, err
	}
	if li < 0 || li >= len(m.Levels) {
		return nil, fmt.Errorf("archive: member %d has no level %d", mi, li)
	}
	idx := &m.Levels[li]
	if b < 0 || b >= len(idx.Batches) {
		return nil, fmt.Errorf("archive: member %d level %d has no batch %d (have %d)", mi, li, b, len(idx.Batches))
	}
	dec := decoders.Get()
	defer decoders.Put(dec)
	return r.decodeBatchOn(dec, idx, mi, li, b, refs)
}

// Extract reconstructs a whole member as a dataset.
func (r *Reader) Extract(i int) (*amr.Dataset, error) {
	return r.extract(i, nil)
}

// ExtractLevel reconstructs one refinement level of a member. The returned
// level's mask equals the stored occupancy; unmasked cells are zero.
func (r *Reader) ExtractLevel(i, li int) (*amr.Level, error) {
	m, err := r.member(i)
	if err != nil {
		return nil, err
	}
	if li < 0 || li >= len(m.Levels) {
		return nil, fmt.Errorf("archive: member %d has no level %d", i, li)
	}
	return r.extractLevel(m, i, li, nil)
}

// ExtractRegion reconstructs the part of a member covering roi, a region
// in finest-level cell coordinates. Only unit blocks whose extent
// intersects roi are read and decoded; the returned dataset's masks mark
// exactly those blocks, so it is a partial view that does not tile the
// domain (Dataset.Validate will reject it by design).
func (r *Reader) ExtractRegion(i int, roi grid.Region) (*amr.Dataset, error) {
	m, err := r.member(i)
	if err != nil {
		return nil, err
	}
	clipped := roi.Intersect(m.Levels[0].Dims)
	if clipped.Empty() {
		return nil, fmt.Errorf("archive: region %v does not intersect member %d (finest extent %v)", roi, i, m.Levels[0].Dims)
	}
	roi = clipped
	wants := make([]*grid.Mask, len(m.Levels))
	scale := 1
	for li := range m.Levels {
		idx := &m.Levels[li]
		// Scale the finest-cell ROI down to this level's cells (outer
		// bounds round outward), then to unit-block granularity, and
		// intersect with the stored occupancy.
		ub := idx.UnitBlock
		br := grid.Region{
			X0: roi.X0 / (scale * ub), Y0: roi.Y0 / (scale * ub), Z0: roi.Z0 / (scale * ub),
			X1: ceilDiv(roi.X1, scale*ub), Y1: ceilDiv(roi.Y1, scale*ub), Z1: ceilDiv(roi.Z1, scale*ub),
		}
		want := grid.NewMask(idx.Mask.Dim)
		want.FillRegion(br.Intersect(want.Dim), true)
		want.And(idx.Mask)
		wants[li] = want
		scale *= m.Ratio
	}
	return r.extract(i, wants)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// extract reconstructs a member; wants optionally restricts each level to
// a subset of its occupied blocks (nil, or a nil entry, means all).
func (r *Reader) extract(i int, wants []*grid.Mask) (*amr.Dataset, error) {
	m, err := r.member(i)
	if err != nil {
		return nil, err
	}
	ds := &amr.Dataset{Name: m.Name, Field: m.Field, Ratio: m.Ratio}
	for li := range m.Levels {
		var want *grid.Mask
		if wants != nil {
			want = wants[li]
		}
		l, err := r.extractLevel(m, i, li, want)
		if err != nil {
			return nil, err
		}
		ds.Levels = append(ds.Levels, l)
	}
	return ds, nil
}

// extractLevel reads and decodes only the batches containing wanted blocks
// (want nil means every occupied block), scattering them into a fresh
// level. mi only provides error context.
func (r *Reader) extractLevel(m *Member, mi, liIdx int, want *grid.Mask) (*amr.Level, error) {
	idx := &m.Levels[liIdx]
	l := amr.NewLevel(idx.Dims, idx.UnitBlock)
	ords := idx.Mask.OccupiedIndices()
	if want == nil {
		l.Mask.CopyFrom(idx.Mask)
	} else if want.Dim != idx.Mask.Dim {
		return nil, fmt.Errorf("archive: member %d level %d: want mask dims %v, level has %v", mi, liIdx, want.Dim, idx.Mask.Dim)
	}

	// Plan which batches to touch before reading a single frame byte.
	type job struct {
		batch int
		lo    int // first ordinal covered
	}
	var jobs []job
	for b := range idx.Batches {
		lo := b * idx.BatchBlocks
		hi := lo + idx.blockCount(b)
		if want != nil {
			hit := false
			for _, ord := range ords[lo:hi] {
				if want.AtIndex(ord) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		jobs = append(jobs, job{batch: b, lo: lo})
	}
	if len(jobs) == 0 {
		return l, nil
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	run := func(j job) error {
		dec := decoders.Get()
		defer decoders.Put(dec)
		blocks, err := r.decodeBatch(dec, idx, mi, liIdx, j.batch)
		if err != nil {
			return err
		}
		count := idx.blockCount(j.batch)
		for k, ord := range ords[j.lo : j.lo+count] {
			if want != nil && !want.AtIndex(ord) {
				continue
			}
			bx, by, bz := idx.Mask.Dim.Coords(ord)
			l.Grid.SetRegion(l.BlockRegion(bx, by, bz), blocks[k].Data)
		}
		return nil
	}
	// Mark the extracted blocks after the decode fan-out: bits of one packed
	// word are shared between batches, so the mask cannot be written from
	// concurrent workers.
	markWanted := func() {
		if want == nil {
			return
		}
		for _, j := range jobs {
			for _, ord := range ords[j.lo : j.lo+idx.blockCount(j.batch)] {
				if want.AtIndex(ord) {
					l.Mask.SetIndex(ord, true)
				}
			}
		}
	}
	if workers == 1 {
		for _, j := range jobs {
			if err := run(j); err != nil {
				return nil, err
			}
		}
		markWanted()
		return l, nil
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ji, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(ji int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[ji] = run(j)
		}(ji, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	markWanted()
	return l, nil
}
