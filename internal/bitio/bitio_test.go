package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xdead, 16)
	w.WriteBit(true)
	w.WriteBits(0, 5)
	w.WriteBits(0x1ffffffffffff, 49)
	buf := w.Bytes()

	r := NewReader(buf)
	got, err := r.ReadBits(3)
	if err != nil || got != 0b101 {
		t.Fatalf("ReadBits(3) = %v, %v; want 0b101", got, err)
	}
	if got, _ := r.ReadBits(16); got != 0xdead {
		t.Fatalf("ReadBits(16) = %#x, want 0xdead", got)
	}
	if b, _ := r.ReadBit(); !b {
		t.Fatal("ReadBit = false, want true")
	}
	if got, _ := r.ReadBits(5); got != 0 {
		t.Fatalf("ReadBits(5) = %v, want 0", got)
	}
	if got, _ := r.ReadBits(49); got != 0x1ffffffffffff {
		t.Fatalf("ReadBits(49) = %#x", got)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter()
	if w.BitLen() != 0 {
		t.Fatalf("empty writer BitLen = %d", w.BitLen())
	}
	w.WriteBits(1, 1)
	w.WriteBits(0xff, 8)
	if w.BitLen() != 9 {
		t.Fatalf("BitLen = %d, want 9", w.BitLen())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xab})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("past end err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTruncationDrainsReader(t *testing.T) {
	// A read that runs past the end must error AND leave the reader
	// drained: the leftover bits are not handed out by later smaller
	// reads (the old reader kept them, which made truncation ambiguous).
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(16); err != ErrUnexpectedEOF {
		t.Fatalf("truncated ReadBits(16) err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("read after truncation err = %v, want ErrUnexpectedEOF", err)
	}
	if got := r.Remaining(); got != 0 {
		t.Fatalf("Remaining after truncation = %d, want 0", got)
	}

	r = NewReader([]byte{0xff, 0xff, 0xff})
	if err := r.Consume(25); err != ErrUnexpectedEOF {
		t.Fatalf("truncated Consume(25) err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("read after truncated Consume err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestPeekConsume(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0x3fff, 14)
	w.WriteBits(0x155, 9)
	buf := w.Bytes()

	r := NewReader(buf)
	if got := r.Peek(4); got != 0b1011 {
		t.Fatalf("Peek(4) = %#b, want 0b1011", got)
	}
	// Peek must not consume.
	if got := r.Peek(4); got != 0b1011 {
		t.Fatalf("second Peek(4) = %#b, want 0b1011", got)
	}
	if err := r.Consume(4); err != nil {
		t.Fatal(err)
	}
	if got := r.Peek(14); got != 0x3fff {
		t.Fatalf("Peek(14) = %#x, want 0x3fff", got)
	}
	if err := r.Consume(14); err != nil {
		t.Fatal(err)
	}
	if got, err := r.ReadBits(9); err != nil || got != 0x155 {
		t.Fatalf("ReadBits(9) = %#x, %v; want 0x155", got, err)
	}
}

func TestPeekZeroPadsPastEnd(t *testing.T) {
	r := NewReader([]byte{0b10100000})
	if err := r.Consume(3); err != nil {
		t.Fatal(err)
	}
	if got := r.Remaining(); got != 5 {
		t.Fatalf("Remaining = %d, want 5", got)
	}
	// Only 5 real bits remain; the low bits of a wider peek are zero.
	if got := r.Peek(12); got != 0 {
		t.Fatalf("Peek(12) past end = %#b, want 0 (zero-padded)", got)
	}
	// The zero-padded peek must not consume or error; the real bits are
	// still readable.
	if got, err := r.ReadBits(5); err != nil || got != 0 {
		t.Fatalf("ReadBits(5) = %v, %v", got, err)
	}
}

func TestPeekConsumeMatchesReadBits(t *testing.T) {
	// Property: Peek(n)+Consume(n) sees exactly the bits ReadBits(n) sees,
	// across refill boundaries and the byte-tail path.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%96) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter()
		for i := range vals {
			widths[i] = uint(rng.Intn(57)) + 1
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			w.WriteBits(vals[i], widths[i])
		}
		buf := w.Bytes()
		ra, rb := NewReader(buf), NewReader(buf)
		for i := range vals {
			got, err := ra.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
			if pk := rb.Peek(widths[i]); pk != vals[i] {
				return false
			}
			if err := rb.Consume(widths[i]); err != nil {
				return false
			}
			if ra.Remaining() != rb.Remaining() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xde, 8)
	first := append([]byte(nil), w.Bytes()...)

	w.Reset(nil)
	w.WriteBits(0xad, 8)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xad {
		t.Fatalf("after Reset(nil): %x", got)
	}

	// Reset onto an existing prefix appends the bit stream in place.
	w.Reset([]byte{0x01, 0x02})
	w.WriteBits(0b101, 3)
	got := w.Bytes()
	want := []byte{0x01, 0x02, 0b10100000}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Reset(prefix) = %x, want %x", got, want)
	}
	_ = first
}

func TestQuickBitStream(t *testing.T) {
	// Property: any sequence of (value, width) writes reads back exactly.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter()
		for i := range vals {
			widths[i] = uint(rng.Intn(57)) + 1
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintHelpers(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendVarint(buf, -12345)
	v, n, err := Uvarint(buf)
	if err != nil || v != 0 {
		t.Fatalf("Uvarint = %v, %v", v, err)
	}
	buf = buf[n:]
	v, n, err = Uvarint(buf)
	if err != nil || v != 1<<40 {
		t.Fatalf("Uvarint = %v, %v", v, err)
	}
	buf = buf[n:]
	s, _, err := Varint(buf)
	if err != nil || s != -12345 {
		t.Fatalf("Varint = %v, %v", s, err)
	}
}

func TestVarintEmpty(t *testing.T) {
	if _, _, err := Uvarint(nil); err == nil {
		t.Fatal("Uvarint(nil) should error")
	}
	if _, _, err := Varint(nil); err == nil {
		t.Fatal("Varint(nil) should error")
	}
}

func TestLengthPrefixedBytes(t *testing.T) {
	var buf []byte
	buf = AppendBytes(buf, []byte("hello"))
	buf = AppendBytes(buf, nil)
	buf = AppendBytes(buf, []byte{1, 2, 3})

	blk, n, err := Bytes(buf)
	if err != nil || string(blk) != "hello" {
		t.Fatalf("Bytes #1 = %q, %v", blk, err)
	}
	buf = buf[n:]
	blk, n, err = Bytes(buf)
	if err != nil || len(blk) != 0 {
		t.Fatalf("Bytes #2 = %q, %v", blk, err)
	}
	buf = buf[n:]
	blk, _, err = Bytes(buf)
	if err != nil || len(blk) != 3 {
		t.Fatalf("Bytes #3 = %v, %v", blk, err)
	}
}

func TestBytesTruncated(t *testing.T) {
	var buf []byte
	buf = AppendBytes(buf, []byte("hello"))
	if _, _, err := Bytes(buf[:3]); err == nil {
		t.Fatal("truncated block should error")
	}
}
