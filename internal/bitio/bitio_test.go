package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xdead, 16)
	w.WriteBit(true)
	w.WriteBits(0, 5)
	w.WriteBits(0x1ffffffffffff, 49)
	buf := w.Bytes()

	r := NewReader(buf)
	got, err := r.ReadBits(3)
	if err != nil || got != 0b101 {
		t.Fatalf("ReadBits(3) = %v, %v; want 0b101", got, err)
	}
	if got, _ := r.ReadBits(16); got != 0xdead {
		t.Fatalf("ReadBits(16) = %#x, want 0xdead", got)
	}
	if b, _ := r.ReadBit(); !b {
		t.Fatal("ReadBit = false, want true")
	}
	if got, _ := r.ReadBits(5); got != 0 {
		t.Fatalf("ReadBits(5) = %v, want 0", got)
	}
	if got, _ := r.ReadBits(49); got != 0x1ffffffffffff {
		t.Fatalf("ReadBits(49) = %#x", got)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter()
	if w.BitLen() != 0 {
		t.Fatalf("empty writer BitLen = %d", w.BitLen())
	}
	w.WriteBits(1, 1)
	w.WriteBits(0xff, 8)
	if w.BitLen() != 9 {
		t.Fatalf("BitLen = %d, want 9", w.BitLen())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xab})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("past end err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestQuickBitStream(t *testing.T) {
	// Property: any sequence of (value, width) writes reads back exactly.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter()
		for i := range vals {
			widths[i] = uint(rng.Intn(57)) + 1
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintHelpers(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendVarint(buf, -12345)
	v, n, err := Uvarint(buf)
	if err != nil || v != 0 {
		t.Fatalf("Uvarint = %v, %v", v, err)
	}
	buf = buf[n:]
	v, n, err = Uvarint(buf)
	if err != nil || v != 1<<40 {
		t.Fatalf("Uvarint = %v, %v", v, err)
	}
	buf = buf[n:]
	s, _, err := Varint(buf)
	if err != nil || s != -12345 {
		t.Fatalf("Varint = %v, %v", s, err)
	}
}

func TestVarintEmpty(t *testing.T) {
	if _, _, err := Uvarint(nil); err == nil {
		t.Fatal("Uvarint(nil) should error")
	}
	if _, _, err := Varint(nil); err == nil {
		t.Fatal("Varint(nil) should error")
	}
}

func TestLengthPrefixedBytes(t *testing.T) {
	var buf []byte
	buf = AppendBytes(buf, []byte("hello"))
	buf = AppendBytes(buf, nil)
	buf = AppendBytes(buf, []byte{1, 2, 3})

	blk, n, err := Bytes(buf)
	if err != nil || string(blk) != "hello" {
		t.Fatalf("Bytes #1 = %q, %v", blk, err)
	}
	buf = buf[n:]
	blk, n, err = Bytes(buf)
	if err != nil || len(blk) != 0 {
		t.Fatalf("Bytes #2 = %q, %v", blk, err)
	}
	buf = buf[n:]
	blk, _, err = Bytes(buf)
	if err != nil || len(blk) != 3 {
		t.Fatalf("Bytes #3 = %v, %v", blk, err)
	}
}

func TestBytesTruncated(t *testing.T) {
	var buf []byte
	buf = AppendBytes(buf, []byte("hello"))
	if _, _, err := Bytes(buf[:3]); err == nil {
		t.Fatal("truncated block should error")
	}
}
