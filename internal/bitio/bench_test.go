package bitio

import (
	"math/rand"
	"testing"
)

// benchStream builds a bit stream of n values with Huffman-like widths
// (mostly short codes, occasional long ones) plus the width schedule to
// read it back.
func benchStream(n int) ([]byte, []uint) {
	rng := rand.New(rand.NewSource(3))
	widths := make([]uint, n)
	w := NewWriter()
	for i := range widths {
		wd := uint(rng.Intn(6)) + 2 // 2-7 bits, the canonical-code common case
		if rng.Intn(32) == 0 {
			wd = uint(rng.Intn(30)) + 8 // occasional long code
		}
		widths[i] = wd
		w.WriteBits(rng.Uint64()&(1<<wd-1), wd)
	}
	return w.Bytes(), widths
}

func BenchmarkBitWriter(b *testing.B) {
	_, widths := benchStream(1 << 16)
	b.SetBytes(int64(len(widths)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		for _, wd := range widths {
			w.WriteBits(0x2a, wd)
		}
		if w.Bytes() == nil {
			b.Fatal("empty stream")
		}
	}
}

func BenchmarkBitReader(b *testing.B) {
	buf, widths := benchStream(1 << 16)
	b.SetBytes(int64(len(widths)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		var sink uint64
		for _, wd := range widths {
			v, err := r.ReadBits(wd)
			if err != nil {
				b.Fatal(err)
			}
			sink += v
		}
		if sink == 0 {
			b.Fatal("degenerate stream")
		}
	}
}
