// Package bitio provides bit-granular writers and readers plus varint
// framing helpers, used by the Huffman coder and the TAC container format.
//
// Both the Writer and the Reader run on 64-bit accumulators: the Writer
// packs pending bits left-aligned in a word and flushes eight bytes at a
// time, and the Reader refills eight bytes at a time with a branch-light
// byte tail, so the per-call cost on the entropy hot path is a couple of
// shifts instead of a per-byte loop.
package bitio

import (
	"encoding/binary"
	"errors"
)

// Writer accumulates bits most-significant-first into a byte buffer.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, left-aligned (bit 63 is the next bit out)
	nbit uint   // number of pending bits in acc (< 64)
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// Reset makes w append to dst (commonly a recycled buffer, or a payload
// under construction so the bit stream lands in place), discarding any
// pending bits.
func (w *Writer) Reset(dst []byte) { w.buf, w.acc, w.nbit = dst, 0, 0 }

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 57] so a single write can never spill more than one word.
//
// The body is split so the all-accumulator fast path stays within the
// compiler's inlining budget (constant-string panic, word flushes
// outlined): the per-symbol cost on the entropy hot path is then a mask,
// a shift and an add with no call.
func (w *Writer) WriteBits(v uint64, n uint) {
	if free := 64 - w.nbit; n < free && n <= 57 {
		// The double shift self-masks v to its low n bits and lands them
		// just below the pending bits (a shift by 64 yields 0, so n == 0
		// writes nothing).
		w.acc |= v << (64 - n) >> (64 - free)
		w.nbit += n
		return
	}
	w.writeBitsSpill(v, n)
}

// writeBitsSpill handles the WriteBits cases that leave the fast path:
// out-of-range widths (the deterministic panic lives here so the fast
// path stays inlinable) and writes that emit a word — the accumulator
// filling exactly, or the value straddling two words. n is nonzero here:
// the accumulator always has at least one free bit, so a zero-width write
// never leaves the fast path.
func (w *Writer) writeBitsSpill(v uint64, n uint) {
	if n > 57 {
		panic(panicBitRange)
	}
	v &= 1<<n - 1
	if free := 64 - w.nbit; n == free {
		w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc|v)
		w.acc, w.nbit = 0, 0
		return
	}
	// The word fills mid-value: emit it and start the next with the spill.
	spill := n - (64 - w.nbit)
	w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc|v>>spill)
	w.acc = v << (64 - spill)
	w.nbit = spill
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// accumulated buffer. The writer may not be reused afterwards without Reset.
func (w *Writer) Bytes() []byte {
	for w.nbit > 0 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc <<= 8
		if w.nbit >= 8 {
			w.nbit -= 8
		} else {
			w.nbit = 0
		}
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Reader consumes bits most-significant-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next unread byte
	acc  uint64 // upcoming bits, left-aligned (bit 63 is the next bit in)
	nbit uint   // number of valid bits in acc
}

// NewReader wraps buf for bit-level reading.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ErrUnexpectedEOF is returned when a read runs past the end of the buffer.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// panicBitRange is the pre-boxed panic value for out-of-range bit counts;
// a predeclared any keeps the guard cheap enough for the hot-path methods
// to stay inlinable (a string literal would add a conversion at each site).
var panicBitRange any = "bitio: bit count out of range (max 57)"

// refill tops the accumulator up to at least 57 valid bits (or to the end
// of the stream). The common case absorbs a whole big-endian word in one
// load; within eight bytes of the end it falls back to a short byte loop.
// Bits of acc beyond nbit always mirror the bytes still at pos, so the OR
// in the word path is idempotent across partial consumes.
func (r *Reader) refill() {
	if r.pos+8 <= len(r.buf) {
		r.acc |= binary.BigEndian.Uint64(r.buf[r.pos:]) >> r.nbit
		adv := (64 - r.nbit) >> 3
		r.pos += int(adv)
		r.nbit += adv * 8
		return
	}
	for r.nbit <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << (56 - r.nbit)
		r.pos++
		r.nbit += 8
	}
}

// drain empties the reader so every subsequent read fails too: a truncated
// stream yields no partial values, before or after the error.
func (r *Reader) drain() {
	r.acc, r.nbit = 0, 0
	r.pos = len(r.buf)
}

// ReadBits reads n bits (n ≤ 57) and returns them right-aligned.
//
// If fewer than n bits remain the stream is truncated: ReadBits returns
// ErrUnexpectedEOF and leaves the reader drained, so the leftover bits are
// never handed out piecemeal by later, smaller reads.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if r.nbit < n || n > 57 {
		return r.readBitsSlow(n)
	}
	// A shift by 64 (n == 0) is defined to yield 0 in Go, so the
	// zero-width read needs no special case.
	v := r.acc >> (64 - n)
	r.acc <<= n
	r.nbit -= n
	return v, nil
}

// readBitsSlow refills and retries a ReadBits that outran the accumulator
// (and hosts the deterministic out-of-range panic, keeping ReadBits
// itself inlinable).
func (r *Reader) readBitsSlow(n uint) (uint64, error) {
	if n > 57 {
		panic(panicBitRange)
	}
	r.refill()
	if r.nbit < n {
		r.drain()
		return 0, ErrUnexpectedEOF
	}
	v := r.acc >> (64 - n)
	r.acc <<= n
	r.nbit -= n
	return v, nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// Peek returns the next n bits (n ≤ 57) right-aligned in the low n bits
// (MSB first) without consuming them. If fewer than n bits remain, the missing low
// bits are zero; pair with Remaining to detect the true stream end. This
// is the table-driven entropy decoder's lookup key.
func (r *Reader) Peek(n uint) uint64 {
	if r.nbit < n || n > 57 {
		return r.peekSlow(n)
	}
	return r.acc >> (64 - n)
}

// peekSlow refills and retries a Peek that outran the accumulator (and
// hosts the deterministic out-of-range panic).
func (r *Reader) peekSlow(n uint) uint64 {
	if n > 57 {
		panic(panicBitRange)
	}
	r.refill()
	return r.acc >> (64 - n)
}

// Consume discards n bits (n ≤ 57), typically after a Peek decided how
// many were used. Like ReadBits it returns ErrUnexpectedEOF and drains the
// reader if fewer than n bits remain.
func (r *Reader) Consume(n uint) error {
	if r.nbit < n || n > 57 {
		return r.consumeSlow(n)
	}
	r.acc <<= n
	r.nbit -= n
	return nil
}

// consumeSlow refills and retries a Consume that outran the accumulator
// (and hosts the deterministic out-of-range panic).
func (r *Reader) consumeSlow(n uint) error {
	if n > 57 {
		panic(panicBitRange)
	}
	r.refill()
	if r.nbit < n {
		r.drain()
		return ErrUnexpectedEOF
	}
	r.acc <<= n
	r.nbit -= n
	return nil
}

// Remaining reports how many unread bits the stream still holds.
func (r *Reader) Remaining() int { return int(r.nbit) + 8*(len(r.buf)-r.pos) }

// AppendUvarint appends x to dst in unsigned LEB128 form.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// AppendVarint appends x to dst in zig-zag signed LEB128 form.
func AppendVarint(dst []byte, x int64) []byte {
	return binary.AppendVarint(dst, x)
}

// Uvarint decodes an unsigned varint from buf, returning the value and the
// number of bytes consumed, or an error if the buffer is malformed.
func Uvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, ErrUnexpectedEOF
	}
	return v, n, nil
}

// Varint decodes a signed varint from buf.
func Varint(buf []byte) (int64, int, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, ErrUnexpectedEOF
	}
	return v, n, nil
}

// AppendBytes appends a length-prefixed byte block to dst.
func AppendBytes(dst, block []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(block)))
	return append(dst, block...)
}

// Bytes reads a length-prefixed byte block, returning the block and the
// total bytes consumed.
func Bytes(buf []byte) ([]byte, int, error) {
	n, hdr, err := Uvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(buf)-hdr) < n {
		return nil, 0, ErrUnexpectedEOF
	}
	return buf[hdr : hdr+int(n)], hdr + int(n), nil
}
