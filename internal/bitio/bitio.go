// Package bitio provides bit-granular writers and readers plus varint
// framing helpers, used by the Huffman coder and the TAC container format.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Writer accumulates bits most-significant-first into a byte buffer.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	nbit uint   // number of pending bits in cur (< 8 after flushes)
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 57] so the pending accumulator cannot overflow.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 57 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	w.cur = w.cur<<n | (v & (1<<n - 1))
	w.nbit += n
	for w.nbit >= 8 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit))
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// accumulated buffer. The writer may not be reused afterwards.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.nbit = 0
		w.cur = 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Reader consumes bits most-significant-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // loaded bits, right-aligned
	nbit uint   // number of valid bits in cur
}

// NewReader wraps buf for bit-level reading.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ErrUnexpectedEOF is returned when a read runs past the end of the buffer.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// ReadBits reads n bits (n ≤ 57) and returns them right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 57 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	for r.nbit < n {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nbit += 8
	}
	r.nbit -= n
	v := (r.cur >> r.nbit) & (1<<n - 1)
	return v, nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// AppendUvarint appends x to dst in unsigned LEB128 form.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// AppendVarint appends x to dst in zig-zag signed LEB128 form.
func AppendVarint(dst []byte, x int64) []byte {
	return binary.AppendVarint(dst, x)
}

// Uvarint decodes an unsigned varint from buf, returning the value and the
// number of bytes consumed, or an error if the buffer is malformed.
func Uvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, ErrUnexpectedEOF
	}
	return v, n, nil
}

// Varint decodes a signed varint from buf.
func Varint(buf []byte) (int64, int, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, ErrUnexpectedEOF
	}
	return v, n, nil
}

// AppendBytes appends a length-prefixed byte block to dst.
func AppendBytes(dst, block []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(block)))
	return append(dst, block...)
}

// Bytes reads a length-prefixed byte block, returning the block and the
// total bytes consumed.
func Bytes(buf []byte) ([]byte, int, error) {
	n, hdr, err := Uvarint(buf)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(buf)-hdr) < n {
		return nil, 0, ErrUnexpectedEOF
	}
	return buf[hdr : hdr+int(n)], hdr + int(n), nil
}
