package experiments

import (
	"io"
	"strconv"
	"time"

	"repro/internal/codec"
	"repro/internal/kdtree"
	"repro/internal/preprocess"
	"repro/internal/sim"
)

// Table1 prints the dataset inventory: per-level grid sizes and densities,
// generated vs the paper's targets.
func Table1(w io.Writer, env *Env) error {
	fprintf(w, "Table 1: tested datasets (scale 1/%d of the paper's resolutions)\n", env.Scale)
	fprintf(w, "%-10s %-7s %-22s %-30s %-30s\n", "Dataset", "Levels", "Grids (fine→coarse)", "Density target (Table 1)", "Density generated")
	specs, err := sim.Catalog(env.Scale)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		ds, err := env.Dataset(spec.Name, sim.BaryonDensity)
		if err != nil {
			return err
		}
		grids := ""
		for li := range ds.Levels {
			if li > 0 {
				grids += ","
			}
			grids += itoa(ds.Levels[li].Grid.Dim.X)
		}
		targets, got := "", ""
		for li, f := range spec.LeafFractions {
			if li > 0 {
				targets += ", "
				got += ", "
			}
			targets += pct(f)
			got += pct(ds.Densities()[li])
		}
		fprintf(w, "%-10s %-7d %-22s %-30s %-30s\n", spec.Name, len(ds.Levels), grids, targets, got)
	}
	return nil
}

func itoa(v int) string { return strconv.Itoa(v) }

func pct(f float64) string {
	switch {
	case f >= 0.01 || f == 0:
		return trim(f*100, 1) + "%"
	case f >= 0.0001:
		return trim(f*100, 3) + "%"
	default:
		return trim(f*100, 6) + "%"
	}
}

func trim(v float64, prec int) string {
	s := strconv.FormatFloat(v, 'f', prec, 64)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Fig7 compares NaST vs OpST on Run1_Z10's fine level (23% density) at the
// paper's relative error bound of 4.8e-4: OpST should achieve both a higher
// compression ratio and a higher PSNR (Fig. 7's CR 233.8/241.1 and PSNR
// 76.9/77.8 dB).
func Fig7(w io.Writer, env *Env) error {
	l, err := env.Level(LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0}, sim.BaryonDensity)
	if err != nil {
		return err
	}
	fprintf(w, "Fig 7: NaST vs OpST on Run1_Z10 fine level (density %.0f%%)\n", l.Density()*100)
	fprintf(w, "%-10s %-12s %-18s %-18s\n", "rel eb", "abs eb", "NaST cr/psnr", "OpST cr/psnr")
	// The paper reports the single point rel eb = 4.8e-4 (CR 233.8 vs
	// 241.1, PSNR 76.9 vs 77.8 dB). Our synthetic field has a different
	// range/compressibility profile, so we sweep around it; the claim
	// under test is OpST ≥ NaST on both axes in the discriminative regime.
	for _, rel := range []float64{1.2e-5, 4.8e-5, 1.2e-4, 4.8e-4} {
		eb := relEBOfLevel(l, rel)
		na, err := RunLevel(l, codec.NaST, eb)
		if err != nil {
			return err
		}
		op, err := RunLevel(l, codec.OpST, eb)
		if err != nil {
			return err
		}
		fprintf(w, "%-10.1e %-12.3g %8.1f/%-8.2f %8.1f/%-8.2f\n", rel, eb, na.Ratio, na.PSNR, op.Ratio, op.PSNR)
	}
	return nil
}

// Fig11 sweeps rate-distortion for GSP, OpST and AKDTree over the six
// density points. The paper's reading: OpST and AKDTree are nearly
// identical everywhere; GSP loses at low density and wins at very high
// density.
func Fig11(w io.Writer, env *Env) error {
	fprintf(w, "Fig 11: per-strategy rate-distortion at six densities\n")
	for _, ref := range env.DensityLevels() {
		l, err := env.Level(ref, sim.BaryonDensity)
		if err != nil {
			return err
		}
		fprintf(w, "-- %s (density %.1f%%)\n", ref.Label, l.Density()*100)
		fprintf(w, "%-10s", "eb")
		for _, st := range []codec.Strategy{codec.GSP, codec.OpST, codec.AKD} {
			fprintf(w, " %14s", st.String()+" br/psnr")
		}
		fprintf(w, "\n")
		for _, eb := range ebSweep() {
			fprintf(w, "%-10.1g", eb)
			for _, st := range []codec.Strategy{codec.GSP, codec.OpST, codec.AKD} {
				res, err := RunLevel(l, st, eb)
				if err != nil {
					return err
				}
				fprintf(w, "   %5.3f/%-6.1f", res.BitRate, res.PSNR)
			}
			fprintf(w, "\n")
		}
	}
	return nil
}

// Fig12 compares zero filling (ZF) vs ghost-shell padding (GSP) on two
// high-density levels: Run1_Z10's coarse level (77%, the paper's Fig. 12
// point: CR 156.7 vs 161.3, PSNR 32.8 vs 33.5 dB) and Run2_T2's coarse
// level (99.8%, the density regime TAC's hybrid actually routes to GSP).
// On our substrate the GSP advantage emerges at the higher density — the
// DEFLATE stage absorbs much of the zero-boundary entropy the paper's SZ
// pays for at 77% (see EXPERIMENTS.md).
func Fig12(w io.Writer, env *Env) error {
	refs := []LevelRef{
		{Label: "z10 coarse", Dataset: "Run1_Z10", Level: 1},
		{Label: "T2 coarse", Dataset: "Run2_T2", Level: 1},
	}
	fprintf(w, "Fig 12: ZF vs GSP on high-density levels, rel eb 6.7e-3\n")
	fprintf(w, "%-12s %-10s %-8s %-10s %-10s %-10s\n", "Level", "density", "Method", "CR", "PSNR(dB)", "bitrate")
	for _, ref := range refs {
		l, err := env.Level(ref, sim.BaryonDensity)
		if err != nil {
			return err
		}
		eb := relEBOfLevel(l, 6.7e-3)
		for _, st := range []codec.Strategy{codec.ZF, codec.GSP} {
			res, err := RunLevel(l, st, eb)
			if err != nil {
				return err
			}
			fprintf(w, "%-12s %-10.3f %-8s %-10.1f %-10.2f %-10.3f\n", ref.Label, l.Density(), st, res.Ratio, res.PSNR, res.BitRate)
		}
	}
	return nil
}

// Fig13 measures pre-processing time (extraction only, no SZ) of OpST vs
// AKDTree across the six densities. The paper's reading: AKDTree is flat
// while OpST grows roughly linearly with density, crossing near 50%.
func Fig13(w io.Writer, env *Env) error {
	fprintf(w, "Fig 13: pre-process time (extraction only), OpST vs AKDTree vs ClassicKD\n")
	fprintf(w, "%-14s %-10s %-12s %-12s %-12s %-8s\n", "Level", "density", "OpST", "AKDTree", "ClassicKD", "boxes(Op/AKD)")
	for _, ref := range env.DensityLevels() {
		l, err := env.Level(ref, sim.BaryonDensity)
		if err != nil {
			return err
		}
		mask := l.Mask
		t0 := time.Now()
		ob := preprocess.OpST(mask)
		opT := time.Since(t0)
		t0 = time.Now()
		ab, _ := kdtree.Adaptive(mask)
		akT := time.Since(t0)
		t0 = time.Now()
		cb, _ := kdtree.Classic(mask)
		ckT := time.Since(t0)
		_ = cb
		fprintf(w, "%-14s %-10.3f %-12v %-12v %-12v %d/%d\n",
			ref.Label, l.Density(), opT.Round(time.Microsecond), akT.Round(time.Microsecond), ckT.Round(time.Microsecond), len(ob), len(ab))
	}
	return nil
}

// relEBOfLevel converts a value-range-relative bound to absolute using the
// range of the level's stored values.
func relEBOfLevel(l interface {
	MaskedValues([]float32) []float32
}, rel float64) float64 {
	vals := l.MaskedValues(nil)
	if len(vals) == 0 {
		return rel
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if r := float64(hi) - float64(lo); r > 0 {
		return rel * r
	}
	return rel
}
