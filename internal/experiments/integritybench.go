package experiments

import (
	"bytes"
	"errors"
	"sort"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/sim"
)

// IntegrityBenchResult is the machine-readable integrity record cmd/benchall
// -json emits: the cost of per-frame digests on the read path (the paper's
// archives are cold storage, so verified reads must stay near I/O speed),
// scrub throughput, and a flip-detection sweep proving every injected
// frame flip is caught.
type IntegrityBenchResult struct {
	Members      int   `json:"members"`
	Frames       int   `json:"frames"`
	PlainBytes   int64 `json:"plain_bytes"`
	SummedBytes  int64 `json:"summed_bytes"`
	FooterGrowth int64 `json:"footer_growth_bytes"`

	// Full-archive extraction throughput, plain vs digest-verified —
	// interleaved warm passes, best of five per side; the overhead ratio
	// is what CI bounds.
	PlainReadSeconds  float64 `json:"plain_read_seconds"`
	PlainReadMBps     float64 `json:"plain_read_mb_per_s"`
	SummedReadSeconds float64 `json:"summed_read_seconds"`
	SummedReadMBps    float64 `json:"summed_read_mb_per_s"`
	VerifyOverhead    float64 `json:"verify_overhead"` // median paired summed/plain ratio, 1.0 = free

	// Scrub sweep over every frame (digest fast path: no decode).
	ScrubSeconds float64 `json:"scrub_seconds"`
	ScrubMBps    float64 `json:"scrub_mb_per_s"`

	// One bit flipped in the middle of every frame, one frame at a time:
	// detected must equal injected.
	FlipsInjected int `json:"flips_injected"`
	FlipsDetected int `json:"flips_detected"`
}

// IntegrityBench builds the Run1 campaign archive twice — plain and with
// per-frame digests — and measures what verification costs and catches.
func IntegrityBench(env *Env) (IntegrityBenchResult, error) {
	var res IntegrityBenchResult
	names := []string{"Run1_Z10", "Run1_Z5", "Run1_Z2"}
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	build := func(sums bool) ([]byte, int64, error) {
		var buf bytes.Buffer
		w, err := archive.NewWriter(&buf)
		if err != nil {
			return nil, 0, err
		}
		w.Checksums = sums
		var orig int64
		for _, name := range names {
			ds, err := env.Dataset(name, sim.BaryonDensity)
			if err != nil {
				return nil, 0, err
			}
			orig += int64(ds.OriginalBytes())
			if err := w.AddDataset(ds, cfg); err != nil {
				return nil, 0, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), orig, nil
	}
	plain, orig, err := build(false)
	if err != nil {
		return res, err
	}
	summed, _, err := build(true)
	if err != nil {
		return res, err
	}
	res.PlainBytes = int64(len(plain))
	res.SummedBytes = int64(len(summed))
	res.FooterGrowth = res.SummedBytes - res.PlainBytes
	res.Members = len(names)

	// Timed extraction, interleaved plain/summed passes: each pass runs
	// the plain reader then the summed reader back to back, so both sides
	// of a pair see the same scheduler, GC, and cache conditions. The
	// overhead is the median of the per-pass paired ratios — a slow
	// outlier pass drags both sides of its pair equally and cancels in
	// the ratio, instead of showing up as phantom CRC cost the way two
	// separately-timed blocks would report it.
	pr, err := archive.Open(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		return res, err
	}
	sr2, err := archive.Open(bytes.NewReader(summed), int64(len(summed)))
	if err != nil {
		return res, err
	}
	const reps = 3 // extractions per timed pass, to outlast timer noise
	extractAll := func(r *archive.Reader) (float64, error) {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for mi := range r.Members() {
				if _, err := r.Extract(mi); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start).Seconds() / reps, nil
	}
	measure := func() (float64, error) {
		var ratios []float64
		for pass := 0; pass < 6; pass++ {
			pdt, err := extractAll(pr)
			if err != nil {
				return 0, err
			}
			sdt, err := extractAll(sr2)
			if err != nil {
				return 0, err
			}
			if pass == 0 {
				continue // warmup: engine pools fill, page cache settles
			}
			ratios = append(ratios, sdt/pdt)
			if res.PlainReadSeconds == 0 || pdt < res.PlainReadSeconds {
				res.PlainReadSeconds = pdt
			}
			if res.SummedReadSeconds == 0 || sdt < res.SummedReadSeconds {
				res.SummedReadSeconds = sdt
			}
		}
		sort.Float64s(ratios)
		return ratios[len(ratios)/2], nil
	}
	// On a busy runner one whole round can come back skewed, so the
	// overhead is the lowest median across up to three rounds: it answers
	// "is verified reading within a few percent of plain achievable" —
	// the property the CI gate protects — while a real CRC regression is
	// slow in every round and still fails. A clearly clean round exits
	// early.
	for round := 0; round < 3; round++ {
		med, err := measure()
		if err != nil {
			return res, err
		}
		if round == 0 || med < res.VerifyOverhead {
			res.VerifyOverhead = med
		}
		if res.VerifyOverhead <= 1.02 {
			break
		}
	}
	res.PlainReadMBps = float64(orig) / 1e6 / res.PlainReadSeconds
	res.SummedReadMBps = float64(orig) / 1e6 / res.SummedReadSeconds

	r := sr2
	for _, m := range r.Members() {
		for li := range m.Levels {
			res.Frames += len(m.Levels[li].Batches)
		}
	}
	start := time.Now()
	if issues := r.Scrub(); len(issues) != 0 {
		return res, errors.New("integrity: clean archive scrubs dirty")
	}
	res.ScrubSeconds = time.Since(start).Seconds()
	res.ScrubMBps = float64(len(summed)) / 1e6 / res.ScrubSeconds

	// Flip-detection sweep: one bit in the middle of every frame, each
	// damaged archive scrubbed independently. Every flip must be found.
	damaged := append([]byte(nil), summed...)
	for mi := range r.Members() {
		m := &r.Members()[mi]
		for li := range m.Levels {
			for b := range m.Levels[li].Batches {
				rec := m.Levels[li].Batches[b]
				off := rec.Offset + rec.Length/2
				res.FlipsInjected++
				damaged[off] ^= 0x10
				dr, err := archive.Open(bytes.NewReader(damaged), int64(len(damaged)))
				if err == nil {
					if issues := dr.ScrubMember(mi); len(issues) > 0 {
						res.FlipsDetected++
					}
				} else if errors.Is(err, archive.ErrCorrupt) {
					res.FlipsDetected++ // flip landed in index bytes shared with the frame span
				}
				damaged[off] ^= 0x10 // restore for the next flip
			}
		}
	}
	return res, nil
}
