package experiments

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/replica"
	"repro/internal/sim"
)

// IntegrityBenchResult is the machine-readable integrity record cmd/benchall
// -json emits: the cost of per-frame digests on the read path (the paper's
// archives are cold storage, so verified reads must stay near I/O speed),
// scrub throughput, and a flip-detection sweep proving every injected
// frame flip is caught.
type IntegrityBenchResult struct {
	Members      int   `json:"members"`
	Frames       int   `json:"frames"`
	PlainBytes   int64 `json:"plain_bytes"`
	SummedBytes  int64 `json:"summed_bytes"`
	FooterGrowth int64 `json:"footer_growth_bytes"`

	// Full-archive extraction throughput, plain vs digest-verified —
	// interleaved warm passes, best of five per side; the overhead ratio
	// is what CI bounds.
	PlainReadSeconds  float64 `json:"plain_read_seconds"`
	PlainReadMBps     float64 `json:"plain_read_mb_per_s"`
	SummedReadSeconds float64 `json:"summed_read_seconds"`
	SummedReadMBps    float64 `json:"summed_read_mb_per_s"`
	VerifyOverhead    float64 `json:"verify_overhead"` // median paired summed/plain ratio, 1.0 = free

	// Scrub sweep over every frame (digest fast path: no decode).
	ScrubSeconds float64 `json:"scrub_seconds"`
	ScrubMBps    float64 `json:"scrub_mb_per_s"`

	// One bit flipped in the middle of every frame, one frame at a time:
	// detected must equal injected.
	FlipsInjected int `json:"flips_injected"`
	FlipsDetected int `json:"flips_detected"`

	// Repair throughput: every frame of a copy is damaged, then spliced
	// back from a clean source (Reader.RepairMember) — the worst case a
	// server-side repair ever faces. RepairedReadsMatch asserts the healed
	// copy is byte-identical and extracts identically to the original.
	RepairFrames       int     `json:"repair_frames"`
	RepairSeconds      float64 `json:"repair_seconds"`
	RepairMBps         float64 `json:"repair_mb_per_s"`
	RepairedReadsMatch bool    `json:"repaired_reads_match"`

	// Reading through a two-source replica.Multi vs the bare reader, both
	// sources healthy: the failover layer's cost on the hot path, measured
	// with the same paired-ratio discipline as VerifyOverhead. CI bounds it.
	FailoverOverhead float64 `json:"failover_overhead"`
}

// memFile is an in-memory io.ReaderAt+io.WriterAt, the splice target of
// the repair benchmark.
type memFile struct{ b []byte }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.b)) {
		return 0, errors.New("memFile: read past end")
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, errors.New("memFile: short read")
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > int64(len(m.b)) {
		return 0, errors.New("memFile: write past end")
	}
	return copy(m.b[off:], p), nil
}

// pairedOverhead measures how much slower full extraction through rb is
// than through ra. Interleaved passes: each runs ra then rb back to back,
// so both sides of a pair see the same scheduler, GC, and cache
// conditions, and the per-pass ratio cancels shared noise instead of
// reporting it as phantom cost. The overhead is the median paired ratio;
// on a busy runner one whole round can come back skewed, so it takes the
// lowest median across up to three rounds — it answers "is the cheap
// path achievable", the property a CI gate protects, while a real
// regression is slow in every round and still fails. A clearly clean
// round exits early. Also returns each side's best per-pass seconds.
func pairedOverhead(ra, rb *archive.Reader) (overhead, aBest, bBest float64, err error) {
	const reps = 3 // extractions per timed pass, to outlast timer noise
	extractAll := func(r *archive.Reader) (float64, error) {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for mi := range r.Members() {
				if _, err := r.Extract(mi); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start).Seconds() / reps, nil
	}
	measure := func() (float64, error) {
		var ratios []float64
		for pass := 0; pass < 6; pass++ {
			adt, err := extractAll(ra)
			if err != nil {
				return 0, err
			}
			bdt, err := extractAll(rb)
			if err != nil {
				return 0, err
			}
			if pass == 0 {
				continue // warmup: engine pools fill, page cache settles
			}
			ratios = append(ratios, bdt/adt)
			if aBest == 0 || adt < aBest {
				aBest = adt
			}
			if bBest == 0 || bdt < bBest {
				bBest = bdt
			}
		}
		sort.Float64s(ratios)
		return ratios[len(ratios)/2], nil
	}
	for round := 0; round < 3; round++ {
		med, merr := measure()
		if merr != nil {
			return 0, 0, 0, merr
		}
		if round == 0 || med < overhead {
			overhead = med
		}
		if overhead <= 1.02 {
			break
		}
	}
	return overhead, aBest, bBest, nil
}

// IntegrityBench builds the Run1 campaign archive twice — plain and with
// per-frame digests — and measures what verification costs and catches.
func IntegrityBench(env *Env) (IntegrityBenchResult, error) {
	var res IntegrityBenchResult
	names := []string{"Run1_Z10", "Run1_Z5", "Run1_Z2"}
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	build := func(sums bool) ([]byte, int64, error) {
		var buf bytes.Buffer
		w, err := archive.NewWriter(&buf)
		if err != nil {
			return nil, 0, err
		}
		w.Checksums = sums
		var orig int64
		for _, name := range names {
			ds, err := env.Dataset(name, sim.BaryonDensity)
			if err != nil {
				return nil, 0, err
			}
			orig += int64(ds.OriginalBytes())
			if err := w.AddDataset(ds, cfg); err != nil {
				return nil, 0, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), orig, nil
	}
	plain, orig, err := build(false)
	if err != nil {
		return res, err
	}
	summed, _, err := build(true)
	if err != nil {
		return res, err
	}
	res.PlainBytes = int64(len(plain))
	res.SummedBytes = int64(len(summed))
	res.FooterGrowth = res.SummedBytes - res.PlainBytes
	res.Members = len(names)

	// Timed extraction, interleaved plain/summed passes: each pass runs
	// the plain reader then the summed reader back to back, so both sides
	// of a pair see the same scheduler, GC, and cache conditions. The
	// overhead is the median of the per-pass paired ratios — a slow
	// outlier pass drags both sides of its pair equally and cancels in
	// the ratio, instead of showing up as phantom CRC cost the way two
	// separately-timed blocks would report it.
	pr, err := archive.Open(bytes.NewReader(plain), int64(len(plain)))
	if err != nil {
		return res, err
	}
	sr2, err := archive.Open(bytes.NewReader(summed), int64(len(summed)))
	if err != nil {
		return res, err
	}
	res.VerifyOverhead, res.PlainReadSeconds, res.SummedReadSeconds, err = pairedOverhead(pr, sr2)
	if err != nil {
		return res, err
	}
	res.PlainReadMBps = float64(orig) / 1e6 / res.PlainReadSeconds
	res.SummedReadMBps = float64(orig) / 1e6 / res.SummedReadSeconds

	r := sr2
	for _, m := range r.Members() {
		for li := range m.Levels {
			res.Frames += len(m.Levels[li].Batches)
		}
	}
	start := time.Now()
	if issues := r.Scrub(); len(issues) != 0 {
		return res, errors.New("integrity: clean archive scrubs dirty")
	}
	res.ScrubSeconds = time.Since(start).Seconds()
	res.ScrubMBps = float64(len(summed)) / 1e6 / res.ScrubSeconds

	// Flip-detection sweep: one bit in the middle of every frame, each
	// damaged archive scrubbed independently. Every flip must be found.
	damaged := append([]byte(nil), summed...)
	for mi := range r.Members() {
		m := &r.Members()[mi]
		for li := range m.Levels {
			for b := range m.Levels[li].Batches {
				rec := m.Levels[li].Batches[b]
				off := rec.Offset + rec.Length/2
				res.FlipsInjected++
				damaged[off] ^= 0x10
				dr, err := archive.Open(bytes.NewReader(damaged), int64(len(damaged)))
				if err == nil {
					if issues := dr.ScrubMember(mi); len(issues) > 0 {
						res.FlipsDetected++
					}
				} else if errors.Is(err, archive.ErrCorrupt) {
					res.FlipsDetected++ // flip landed in index bytes shared with the frame span
				}
				damaged[off] ^= 0x10 // restore for the next flip
			}
		}
	}

	// Repair throughput: damage every frame of a copy, then splice them
	// all back from the clean bytes — the all-frames case bounds what any
	// real (usually single-member) repair costs.
	dmg := &memFile{b: append([]byte(nil), summed...)}
	for mi := range r.Members() {
		m := &r.Members()[mi]
		for li := range m.Levels {
			for b := range m.Levels[li].Batches {
				rec := m.Levels[li].Batches[b]
				dmg.b[rec.Offset+rec.Length/2] ^= 0x10
			}
		}
	}
	dr, err := archive.Open(dmg, int64(len(dmg.b)))
	if err != nil {
		return res, err
	}
	src := bytes.NewReader(summed)
	var respliced int64
	start = time.Now()
	for mi := range dr.Members() {
		rs, err := dr.RepairMember(mi, src, dmg)
		if err != nil {
			return res, err
		}
		res.RepairFrames += rs.FramesRepaired
		respliced += rs.BytesRespliced
	}
	res.RepairSeconds = time.Since(start).Seconds()
	res.RepairMBps = float64(respliced) / 1e6 / res.RepairSeconds

	// The healed copy must be byte-identical to the original and extract
	// identically through a fresh reader.
	res.RepairedReadsMatch = bytes.Equal(dmg.b, summed)
	if res.RepairedReadsMatch {
		hr, err := archive.Open(bytes.NewReader(dmg.b), int64(len(dmg.b)))
		if err != nil {
			return res, err
		}
		for mi := range hr.Members() {
			want, err := r.Extract(mi)
			if err != nil {
				return res, err
			}
			got, err := hr.Extract(mi)
			if err != nil {
				return res, err
			}
			if !reflect.DeepEqual(got, want) {
				res.RepairedReadsMatch = false
				break
			}
		}
	}

	// Failover-layer cost: the same archive read through a two-source
	// replica.Multi (both sources healthy, so every read is served by the
	// primary after one health-gate check) vs the bare reader.
	multi, err := replica.New(replica.Config{},
		replica.Reader(bytes.NewReader(summed), "primary"),
		replica.Reader(bytes.NewReader(summed), "replica"))
	if err != nil {
		return res, err
	}
	mr, err := archive.Open(multi, int64(len(summed)))
	if err != nil {
		return res, err
	}
	res.FailoverOverhead, _, _, err = pairedOverhead(sr2, mr)
	if err != nil {
		return res, err
	}
	return res, nil
}
