package experiments

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/remote"
	"repro/internal/sim"
)

// RemoteBenchResult is the machine-readable remote-serving record
// cmd/benchall -json emits: how much of an archive actually crosses the
// wire when it is mounted over HTTP ranges instead of a local file, and
// what the read-ahead segment cache buys on a repeated read. The
// level/region fetch fractions are the remote analogue of the
// archive bench's bytes-read fractions — the random-access claim must
// survive the network hop, not just the local pread path.
type RemoteBenchResult struct {
	Members      int   `json:"members"`
	ArchiveBytes int64 `json:"archive_bytes"`
	SegmentBytes int64 `json:"segment_bytes"`

	// Bytes pulled over HTTP for one level / one ROI read, as fractions
	// of the whole archive (footer fetch included — a cold mount pays it).
	LevelBytesFetched   int64   `json:"level_bytes_fetched"`
	LevelFetchFraction  float64 `json:"level_fetch_fraction"`
	RegionBytesFetched  int64   `json:"region_bytes_fetched"`
	RegionFetchFraction float64 `json:"region_fetch_fraction"`

	ColdExtractSeconds float64 `json:"cold_extract_seconds"`
	ColdExtractMBps    float64 `json:"cold_extract_mb_per_s"`
	WarmExtractSeconds float64 `json:"warm_extract_seconds"`
	WarmExtractMBps    float64 `json:"warm_extract_mb_per_s"`

	Requests     int64   `json:"requests"`
	BytesFetched int64   `json:"bytes_fetched"`
	Hits         int64   `json:"cache_hits"`
	Misses       int64   `json:"cache_misses"`
	Fills        int64   `json:"cache_fills"`
	HitRatio     float64 `json:"cache_hit_ratio"`

	// RemoteLocalMatch reports that a full member extracted over HTTP is
	// byte-identical to the same member extracted from the local bytes.
	RemoteLocalMatch bool `json:"remote_local_match"`
}

// RemoteBench writes two snapshots into an in-memory archive, serves the
// blob from an httptest range server, and mounts it through
// remote.Reader three separate times — one cold mount per measurement,
// so the level read, the ROI read, and the cold extract each start with
// an empty segment cache and their fetch counts don't subsidize each
// other.
func RemoteBench(env *Env) (RemoteBenchResult, error) {
	var res RemoteBenchResult
	names := []string{"Run1_Z10", "Run1_Z5"}
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		return res, err
	}
	for _, name := range names {
		ds, err := env.Dataset(name, sim.BaryonDensity)
		if err != nil {
			return res, err
		}
		if err := w.AddDataset(ds, cfg); err != nil {
			return res, err
		}
	}
	if err := w.Close(); err != nil {
		return res, err
	}
	blob := buf.Bytes()
	res.Members = len(names)
	res.ArchiveBytes = int64(len(blob))

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"bench-blob"`)
		http.ServeContent(w, r, "bench.taca", time.Time{}, bytes.NewReader(blob))
	}))
	defer ts.Close()

	// mount is one cold open: probe, footer parse, and the same
	// frame-size segment auto-tune the server applies to URL primaries.
	mount := func() (*archive.Reader, *remote.Reader, error) {
		rr, err := remote.Open(ts.URL, remote.Config{})
		if err != nil {
			return nil, nil, err
		}
		r, err := archive.Open(rr, rr.Size())
		if err != nil {
			rr.Close()
			return nil, nil, err
		}
		if fb := r.TypicalFrameBytes(); fb > 0 {
			seg := int64(1)
			for seg < fb {
				seg <<= 1
			}
			rr.Retune(seg)
		}
		return r, rr, nil
	}

	// One mid-resolution level of the second member: the "give me level l
	// of snapshot i" analysis query.
	r, rr, err := mount()
	if err != nil {
		return res, err
	}
	res.SegmentBytes = rr.SegmentBytes()
	before := rr.Stats().BytesFetched
	if _, err := r.ExtractLevel(1, 1); err != nil {
		rr.Close()
		return res, err
	}
	res.LevelBytesFetched = rr.Stats().BytesFetched - before
	res.LevelFetchFraction = float64(res.LevelBytesFetched) / float64(res.ArchiveBytes)
	rr.Close()

	// An octant ROI of the first member's finest level.
	r, rr, err = mount()
	if err != nil {
		return res, err
	}
	fd := r.Members()[0].Levels[0].Dims
	roi := grid.Region{X1: fd.X / 2, Y1: fd.Y / 2, Z1: fd.Z / 2}
	before = rr.Stats().BytesFetched
	if _, err := r.ExtractRegion(0, roi); err != nil {
		rr.Close()
		return res, err
	}
	res.RegionBytesFetched = rr.Stats().BytesFetched - before
	res.RegionFetchFraction = float64(res.RegionBytesFetched) / float64(res.ArchiveBytes)
	rr.Close()

	// Cold-vs-warm full-member extract on one mount: the first pass pulls
	// every frame over the wire, the second must be served from the
	// segment cache (hits > 0, and fills never exceed misses).
	r, rr, err = mount()
	if err != nil {
		return res, err
	}
	defer rr.Close()
	start := time.Now()
	remoteDS, err := r.Extract(0)
	if err != nil {
		return res, err
	}
	res.ColdExtractSeconds = time.Since(start).Seconds()
	res.ColdExtractMBps = float64(remoteDS.OriginalBytes()) / 1e6 / res.ColdExtractSeconds
	start = time.Now()
	if _, err := r.Extract(0); err != nil {
		return res, err
	}
	res.WarmExtractSeconds = time.Since(start).Seconds()
	res.WarmExtractMBps = float64(remoteDS.OriginalBytes()) / 1e6 / res.WarmExtractSeconds

	st := rr.Stats()
	res.Requests = st.Requests
	res.BytesFetched = st.BytesFetched
	res.Hits = st.Hits
	res.Misses = st.Misses
	res.Fills = st.Fills
	res.HitRatio = st.HitRatio()

	lr, err := archive.Open(bytes.NewReader(blob), res.ArchiveBytes)
	if err != nil {
		return res, err
	}
	localDS, err := lr.Extract(0)
	if err != nil {
		return res, err
	}
	var remoteBytes, localBytes bytes.Buffer
	if err := remoteDS.Write(&remoteBytes); err != nil {
		return res, err
	}
	if err := localDS.Write(&localBytes); err != nil {
		return res, err
	}
	res.RemoteLocalMatch = bytes.Equal(remoteBytes.Bytes(), localBytes.Bytes())
	if !res.RemoteLocalMatch {
		return res, fmt.Errorf("remote bench: remote extract differs from local extract")
	}
	return res, nil
}
