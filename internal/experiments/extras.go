package experiments

import (
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sz"
)

// The exhibits in this file go beyond the paper's figures: ablations and
// extensions that the experiment harness makes cheap to run.

// AblationDims measures the paper's Sec. 2.3 premise directly: the same
// uniform field compressed with the 1D, 2D (slice-wise) and 3D predictors
// at the same absolute bound. Higher-dimensional prediction should win,
// which is the entire reason TAC exists.
func AblationDims(w io.Writer, env *Env) error {
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return err
	}
	uni := ds.FlattenToUniform()
	n := uni.Dim.Count()
	fprintf(w, "Ablation: predictor dimensionality on uniform %v field\n", uni.Dim)
	fprintf(w, "%-10s %-12s %-12s %-12s\n", "eb", "1D bits/val", "2D bits/val", "3D bits/val")
	for _, eb := range []float64{1e9, 1e10} {
		opts := sz.Options{ErrorBound: eb}
		b1, _, err := sz.Compress1D(uni.Data, opts)
		if err != nil {
			return err
		}
		b2, _, err := sz.CompressSlices(uni, opts)
		if err != nil {
			return err
		}
		b3, _, err := sz.Compress3D(uni, opts)
		if err != nil {
			return err
		}
		fprintf(w, "%-10.1g %-12.3f %-12.3f %-12.3f\n", eb,
			metrics.BitRate(len(b1), n), metrics.BitRate(len(b2), n), metrics.BitRate(len(b3), n))
	}
	return nil
}

// AblationClassicKD quantifies the effect of AKDTree's adaptive split
// choice against the fixed-cycle classic k-d tree on the full TAC
// pipeline: same hybrid, extraction forced to one tree variant. The
// adaptive split pays off on skewed occupancy (Fig. 8's motivating case);
// on near-isotropic masks the two extract similar leaf sets.
func AblationClassicKD(w io.Writer, env *Env) error {
	ds, err := env.Dataset("Run1_Z5", sim.BaryonDensity)
	if err != nil {
		return err
	}
	fprintf(w, "Ablation: AKDTree adaptive split vs classic fixed-cycle k-d tree (Run1_Z5)\n")
	fprintf(w, "%-10s %-14s %-14s\n", "eb", "AKD bits/val", "Classic bits/val")
	for _, eb := range []float64{1e9, 1e10} {
		var brs [2]float64
		for i, st := range []codec.Strategy{codec.AKD, codec.ClassicKD} {
			blob, err := core.TAC{}.Compress(ds, codec.Config{ErrorBound: eb, Strategy: st})
			if err != nil {
				return err
			}
			brs[i] = metrics.BitRate(len(blob), ds.StoredCells())
		}
		fprintf(w, "%-10.1g %-14.3f %-14.3f\n", eb, brs[0], brs[1])
	}
	return nil
}

// Fields compresses every Nyx field of one snapshot with TAC at the same
// relative bound — the paper evaluates baryon density; this shows the
// pipeline handles all six fields (including signed velocities).
func Fields(w io.Writer, env *Env) error {
	fprintf(w, "Extension: TAC across all six Nyx fields (Run1_Z10, rel eb 1e-3)\n")
	fprintf(w, "%-22s %-10s %-10s %-12s\n", "field", "CR", "PSNR(dB)", "bits/val")
	for _, f := range sim.Fields() {
		ds, err := env.Dataset("Run1_Z10", f)
		if err != nil {
			return err
		}
		p, _, _, err := RunCodec(core.TAC{}, ds, codec.Config{ErrorBound: 1e-3, Mode: sz.Rel})
		if err != nil {
			return err
		}
		fprintf(w, "%-22s %-10.1f %-10.2f %-12.3f\n", f, p.Ratio, p.PSNR, p.BitRate)
	}
	return nil
}
