package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/amr"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Codecs returns the four compared codecs in the paper's ordering.
func Codecs() []codec.Codec {
	return []codec.Codec{core.TAC{}, baseline.Naive1D{}, baseline.ZMesh{}, baseline.Uniform3D{}}
}

// RunCodec compresses and decompresses one dataset with one codec,
// returning the rate-distortion point and the timings.
func RunCodec(c codec.Codec, ds *amr.Dataset, cfg codec.Config) (metrics.RatePoint, time.Duration, time.Duration, error) {
	t0 := time.Now()
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		return metrics.RatePoint{}, 0, 0, fmt.Errorf("%s compress: %w", c.Name(), err)
	}
	ct := time.Since(t0)
	t0 = time.Now()
	recon, err := c.Decompress(blob)
	if err != nil {
		return metrics.RatePoint{}, 0, 0, fmt.Errorf("%s decompress: %w", c.Name(), err)
	}
	dt := time.Since(t0)
	dist, err := metrics.DatasetDistortion(ds, recon)
	if err != nil {
		return metrics.RatePoint{}, 0, 0, err
	}
	p := metrics.RatePoint{
		ErrorBound: cfg.ErrorBound,
		BitRate:    metrics.BitRate(len(blob), ds.StoredCells()),
		PSNR:       dist.PSNR(),
		Ratio:      metrics.CompressionRatio(ds.OriginalBytes(), len(blob)),
	}
	return p, ct, dt, nil
}

// rateDistortion prints a TAC-vs-baselines sweep for the named datasets —
// the body of Figs. 14 and 15.
func rateDistortion(w io.Writer, env *Env, title string, names []string) error {
	fprintf(w, "%s\n", title)
	for _, name := range names {
		ds, err := env.Dataset(name, sim.BaryonDensity)
		if err != nil {
			return err
		}
		fprintf(w, "-- %s (finest density %s)\n", name, pct(ds.Densities()[0]))
		fprintf(w, "%-10s", "eb")
		for _, c := range Codecs() {
			fprintf(w, " %16s", c.Name()+" br/psnr")
		}
		fprintf(w, "\n")
		for _, eb := range ebSweep() {
			fprintf(w, "%-10.1g", eb)
			for _, c := range Codecs() {
				p, _, _, err := RunCodec(c, ds, codec.Config{ErrorBound: eb})
				if err != nil {
					return err
				}
				fprintf(w, "    %6.3f/%-6.1f", p.BitRate, p.PSNR)
			}
			fprintf(w, "\n")
		}
	}
	return nil
}

// Fig14 sweeps rate-distortion on the four Run1 datasets (finest densities
// 23–64%). Expected shape: TAC dominates the 1D baseline and zMesh
// everywhere; the 3D baseline is competitive (slightly ahead at low
// bit-rates) once the finest level is dense.
func Fig14(w io.Writer, env *Env) error {
	return rateDistortion(w, env, "Fig 14: rate-distortion, TAC vs baselines (Run1)",
		[]string{"Run1_Z10", "Run1_Z5", "Run1_Z3", "Run1_Z2"})
}

// Fig15 sweeps rate-distortion on the three Run2 datasets (finest densities
// 0.2%–3e-5). Expected shape: TAC far ahead of the 3D baseline, whose
// up-sampled redundancy explodes at these sparsities.
func Fig15(w io.Writer, env *Env) error {
	return rateDistortion(w, env, "Fig 15: rate-distortion, TAC vs baselines (Run2)",
		[]string{"Run2_T2", "Run2_T3", "Run2_T4"})
}

// Fig18 prints bit-rate as a function of the absolute error bound for
// Run1_Z2's fine and coarse levels, compressed level-wise with TAC's
// density-chosen strategy. Expected shape: the two curves converge and
// flatten as the bound grows — the motivation for tuning per-level bounds.
func Fig18(w io.Writer, env *Env) error {
	ds, err := env.Dataset("Run1_Z2", sim.BaryonDensity)
	if err != nil {
		return err
	}
	fprintf(w, "Fig 18: bit-rate vs error bound, Run1_Z2 fine and coarse levels\n")
	fprintf(w, "%-10s %-12s %-12s\n", "eb", "fine br", "coarse br")
	cfg := codec.Config{}.WithDefaults()
	for _, eb := range []float64{1e8, 3e8, 1e9, 3e9, 1e10, 3e10, 1e11, 3e11} {
		var brs [2]float64
		for li, l := range ds.Levels {
			st := core.PickStrategy(l.Density(), cfg)
			res, err := RunLevel(l, st, eb)
			if err != nil {
				return err
			}
			brs[li] = res.BitRate
		}
		fprintf(w, "%-10.1g %-12.3f %-12.3f\n", eb, brs[0], brs[1])
	}
	return nil
}

// MatchRatio binary-searches the error bound that brings codec c's
// compression ratio on ds within tol (relative) of target. It returns the
// bound and the achieved ratio. Used by Fig. 19 and Table 3, which compare
// methods "under the (almost) same compression ratio".
func MatchRatio(c codec.Codec, ds *amr.Dataset, base codec.Config, target, tol float64, maxIter int) (float64, float64, error) {
	lo, hi := 1e5, 1e13
	var eb, got float64
	for i := 0; i < maxIter; i++ {
		eb = sqrtGeo(lo, hi)
		cfg := base
		cfg.ErrorBound = eb
		blob, err := c.Compress(ds, cfg)
		if err != nil {
			return 0, 0, err
		}
		got = metrics.CompressionRatio(ds.OriginalBytes(), len(blob))
		if got > target*(1+tol) {
			hi = eb // too much compression: tighten the bound
		} else if got < target*(1-tol) {
			lo = eb
		} else {
			return eb, got, nil
		}
	}
	return eb, got, nil
}

// sqrtGeo is the geometric mean, the midpoint of a log-space search.
func sqrtGeo(a, b float64) float64 { return math.Sqrt(a * b) }
