package experiments

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/sim"
	"repro/internal/sz"
)

// PredictBenchResult is the machine-readable record of the Lorenzo
// prediction/quantization stage in isolation — no entropy or DEFLATE
// stage — on the real Run1_Z10 finest-level grid, tracking the
// boundary-peeled branch-free kernels across PRs. Throughput is over the
// grid's in-memory size (4 bytes per float32 cell), the same accounting
// the entropy section uses.
type PredictBenchResult struct {
	Dataset       string  `json:"dataset"`
	Cells         int     `json:"cells"`
	Literals      int     `json:"literals"`
	EncodeNsPerOp float64 `json:"lorenzo_encode_ns_per_op"`
	EncodeMBps    float64 `json:"lorenzo_encode_mb_per_s"`
	DecodeNsPerOp float64 `json:"lorenzo_decode_ns_per_op"`
	DecodeMBps    float64 `json:"lorenzo_decode_mb_per_s"`
}

// PredictBench isolates the predictor: it runs only the prediction and
// quantization stage (Encoder.Predict3D) and its inverse
// (Reconstruct3D) on the Run1_Z10 finest level, warm, with all scratch
// pooled, so the numbers are the kernels alone.
func PredictBench(env *Env) (PredictBenchResult, error) {
	var res PredictBenchResult
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return res, err
	}
	res.Dataset = ds.Name
	g := ds.Levels[0].Grid
	res.Cells = g.Dim.Count()
	opts := sz.Options{ErrorBound: 1e9}
	streamBytes := amr.ValueBytes * res.Cells

	enc := sz.NewEncoder[amr.Value]()
	codes, lits, nlit, err := enc.Predict3D(g, opts) // warm the scratch
	if err != nil {
		return res, fmt.Errorf("predict bench encode: %w", err)
	}
	res.Literals = nlit

	const iters = 16
	res.EncodeNsPerOp, _, _, err = measureLoop(iters, func() error {
		codes, lits, _, err = enc.Predict3D(g, opts)
		return err
	})
	if err != nil {
		return res, err
	}
	res.EncodeMBps = float64(streamBytes) / 1e6 / (res.EncodeNsPerOp / 1e9)

	out := g.Clone() // reused destination: decode overwrites every cell
	if err := sz.Reconstruct3D(out, codes, lits, opts); err != nil {
		return res, fmt.Errorf("predict bench decode: %w", err)
	}
	res.DecodeNsPerOp, _, _, err = measureLoop(iters, func() error {
		return sz.Reconstruct3D(out, codes, lits, opts)
	})
	if err != nil {
		return res, err
	}
	res.DecodeMBps = float64(streamBytes) / 1e6 / (res.DecodeNsPerOp / 1e9)
	return res, nil
}
