// Package experiments reproduces every table and figure of the TAC paper's
// evaluation (Sec. 4) on the synthetic Nyx-like datasets of internal/sim.
// Each runner prints the rows/series of one exhibit; cmd/benchall drives
// them all, and bench_test.go exposes one testing.B benchmark per exhibit.
//
// Absolute numbers differ from the paper (scaled datasets, reimplemented
// SZ, different hardware); the claims under test are the *shapes*: who
// wins, by what rough factor, and where the crossovers sit. EXPERIMENTS.md
// records paper-vs-measured for each exhibit.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultScale divides the paper's resolutions by 4 (Run1: 128³/64³,
// Run2_T4 finest: 256³), the largest size that keeps the full suite in
// laptop territory.
const DefaultScale = 4

// Env generates and caches datasets for the experiment runners.
type Env struct {
	Scale int

	mu    sync.Mutex
	cache map[string]*amr.Dataset
}

// NewEnv returns an environment at the given scale divisor (0 means
// DefaultScale).
func NewEnv(scale int) *Env {
	if scale == 0 {
		scale = DefaultScale
	}
	return &Env{Scale: scale, cache: make(map[string]*amr.Dataset)}
}

// Dataset returns the named catalog dataset for the field, generating it on
// first use.
func (e *Env) Dataset(name string, field sim.Field) (*amr.Dataset, error) {
	key := name + "/" + string(field)
	e.mu.Lock()
	ds, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return ds, nil
	}
	spec, err := sim.SpecByName(name, e.Scale)
	if err != nil {
		return nil, err
	}
	ds, err = sim.Generate(spec, field)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.cache[key] = ds
	e.mu.Unlock()
	return ds, nil
}

// Custom generates (and caches) a non-catalog dataset, used for the
// synthetic density points of Fig. 11/13.
func (e *Env) Custom(spec sim.Spec, field sim.Field) (*amr.Dataset, error) {
	key := "custom/" + spec.Name + "/" + string(field)
	e.mu.Lock()
	ds, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return ds, nil
	}
	ds, err := sim.Generate(spec, field)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.cache[key] = ds
	e.mu.Unlock()
	return ds, nil
}

// LevelRef names one AMR level of one dataset, the unit of the per-level
// strategy experiments (Fig. 7/11/12/13).
type LevelRef struct {
	Label   string
	Dataset string // catalog name; empty means Custom spec
	Spec    sim.Spec
	Level   int
}

// Level materializes the referenced level.
func (e *Env) Level(ref LevelRef, field sim.Field) (*amr.Level, error) {
	var ds *amr.Dataset
	var err error
	if ref.Dataset != "" {
		ds, err = e.Dataset(ref.Dataset, field)
	} else {
		ds, err = e.Custom(ref.Spec, field)
	}
	if err != nil {
		return nil, err
	}
	if ref.Level < 0 || ref.Level >= len(ds.Levels) {
		return nil, fmt.Errorf("experiments: %s has no level %d", ref.Label, ref.Level)
	}
	return ds.Levels[ref.Level], nil
}

// DensityLevels returns the six density points of Fig. 11/13: the finest
// levels of Run1's four timesteps (23%–64%) and two near-dense coarse
// levels (≈99.8%, ≈99.9%).
func (e *Env) DensityLevels() []LevelRef {
	n := 256 / e.Scale
	ub := max(16/e.Scale, 2)
	return []LevelRef{
		{Label: "z10 (d=23)", Dataset: "Run1_Z10", Level: 0},
		{Label: "z5 (d=58)", Dataset: "Run1_Z5", Level: 0},
		{Label: "z2 (d=63)", Dataset: "Run1_Z2", Level: 0},
		{Label: "z3 (d=64)", Dataset: "Run1_Z3", Level: 0},
		{Label: "d=99.8", Dataset: "Run2_T2", Level: 1},
		{Label: "d=99.9", Spec: sim.Spec{
			Name: "dense999", FinestN: n, Levels: 2, UnitBlock: ub, Seed: 2202,
			LeafFractions: []float64{0.001, 0.999},
		}, Level: 1},
	}
}

// LevelResult is one measured point of a per-level compression run.
type LevelResult struct {
	Strategy codec.Strategy
	EB       float64
	Bytes    int
	BitRate  float64
	PSNR     float64
	Ratio    float64
	PreTime  time.Duration // extraction/padding time, excluding SZ
	Total    time.Duration
}

// RunLevel compresses and decompresses one level with a forced strategy and
// absolute error bound, measuring size, distortion, and time.
func RunLevel(l *amr.Level, st codec.Strategy, eb float64) (LevelResult, error) {
	start := time.Now()
	blob, err := core.CompressLevel(l, st, eb, codec.Config{ErrorBound: eb})
	if err != nil {
		return LevelResult{}, err
	}
	compTime := time.Since(start)
	recon := amr.NewLevel(l.Grid.Dim, l.UnitBlock)
	recon.Mask.CopyFrom(l.Mask)
	if err := core.DecompressLevel(recon, blob); err != nil {
		return LevelResult{}, err
	}
	// Distortion over the level's full extent, as in the paper's per-level
	// error maps (Figs. 7 and 12 show whole slices): strategies that
	// restore empty regions exactly (everything except ZF) are credited
	// for it.
	dist, err := metrics.GridDistortion(l.Grid, recon.Grid)
	if err != nil {
		return LevelResult{}, err
	}
	n := l.StoredCells()
	return LevelResult{
		Strategy: st,
		EB:       eb,
		Bytes:    len(blob),
		BitRate:  metrics.BitRate(len(blob), n),
		PSNR:     dist.PSNR(),
		Ratio:    metrics.CompressionRatio(amr.ValueBytes*n, len(blob)),
		Total:    compTime,
	}, nil
}

// ebSweep returns a geometric sweep of absolute error bounds appropriate
// for the synthetic baryon-density fields (mean ~1e11).
func ebSweep() []float64 {
	return []float64{1e8, 3e8, 1e9, 3e9, 1e10, 3e10, 1e11}
}

// fprintf discards the error: experiment output goes to a terminal or a
// build log, where a failed write has nowhere better to be reported.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// sortedKeys returns the map's keys in sorted order (stable table output).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PickStrategyForTest exposes the density filter with default thresholds
// for the experiment tests without importing internal/core (which imports
// this package's sibling codecs).
func PickStrategyForTest(density float64) codec.Strategy {
	switch {
	case density < 0.5:
		return codec.OpST
	case density < 0.6:
		return codec.AKD
	default:
		return codec.GSP
	}
}

// codecConfig is a test helper building a plain absolute-bound config.
func codecConfig(eb float64) codec.Config { return codec.Config{ErrorBound: eb} }
