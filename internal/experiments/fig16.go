package experiments

import (
	"io"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/sim"
	"repro/internal/sz"
)

// Fig16 demonstrates the paper's Fig. 16 argument with measurements rather
// than a toy sketch: zMesh's cross-level interleaving helps only when the
// AMR data is *block-structured* (coarse levels redundantly store the
// values of refined regions), and hurts *tree-structured* data (each cell
// stored once). For both representations of the same snapshot we build the
// level-by-level 1D order and the zMesh interleaved order, then compare
// 1D-compressed sizes.
func Fig16(w io.Writer, env *Env) error {
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return err
	}
	sk := codec.SkeletonOf(ds)

	// Tree-structured streams (the repository's native representation).
	var treeZ []amr.Value
	walkZMesh(sk, func(li, idx int) {
		treeZ = append(treeZ, ds.Levels[li].Grid.Data[idx])
	})
	var treeL []amr.Value
	for _, l := range ds.Levels {
		treeL = l.MaskedValues(treeL)
	}

	// Block-structured variant: the coarse level also stores data under
	// refined regions (the restriction of the fine level), as patch-based
	// AMR codes do. The zMesh order emits the coarse value first, then
	// descends — so redundant neighbors sit adjacent, which is exactly
	// what zMesh exploits.
	blockCoarse := ds.Levels[0].Grid.Downsample(ds.Ratio)
	var blockZ []amr.Value
	cd := ds.Levels[1].Grid.Dim
	ub := ds.Levels[1].UnitBlock
	for x := 0; x < cd.X; x++ {
		for y := 0; y < cd.Y; y++ {
			for z := 0; z < cd.Z; z++ {
				if ds.Levels[1].Mask.At(x/ub, y/ub, z/ub) {
					blockZ = append(blockZ, ds.Levels[1].Grid.At(x, y, z))
					continue
				}
				blockZ = append(blockZ, blockCoarse.At(x, y, z))
				for dx := 0; dx < ds.Ratio; dx++ {
					for dy := 0; dy < ds.Ratio; dy++ {
						for dz := 0; dz < ds.Ratio; dz++ {
							blockZ = append(blockZ, ds.Levels[0].Grid.At(x*ds.Ratio+dx, y*ds.Ratio+dy, z*ds.Ratio+dz))
						}
					}
				}
			}
		}
	}
	var blockL []amr.Value
	for x := 0; x < cd.X; x++ { // level order: full coarse grid first
		for y := 0; y < cd.Y; y++ {
			for z := 0; z < cd.Z; z++ {
				if ds.Levels[1].Mask.At(x/ub, y/ub, z/ub) {
					blockL = append(blockL, ds.Levels[1].Grid.At(x, y, z))
				} else {
					blockL = append(blockL, blockCoarse.At(x, y, z))
				}
			}
		}
	}
	blockL = ds.Levels[0].MaskedValues(blockL)

	eb := 1e9
	size := func(vals []amr.Value) int {
		blob, _, err := sz.Compress1D(vals, sz.Options{ErrorBound: eb})
		if err != nil {
			return -1
		}
		return len(blob)
	}
	tz, tl := size(treeZ), size(treeL)
	bz, bl := size(blockZ), size(blockL)
	fprintf(w, "Fig 16: zMesh reordering vs level order, 1D-compressed size (eb %.0e)\n", eb)
	fprintf(w, "%-18s %-12s %-12s %-10s\n", "representation", "level order", "zMesh order", "zMesh gain")
	fprintf(w, "%-18s %-12d %-12d %+.1f%%\n", "tree-structured", tl, tz, 100*(float64(tl)-float64(tz))/float64(tl))
	fprintf(w, "%-18s %-12d %-12d %+.1f%%\n", "block-structured", bl, bz, 100*(float64(bl)-float64(bz))/float64(bl))
	fprintf(w, "(positive gain = zMesh order compresses smaller. The paper's argument is that\n")
	fprintf(w, " zMesh's reordering pays off only with the cross-level redundancy of\n")
	fprintf(w, " block-structured AMR; on tree-structured data its advantage shrinks toward —\n")
	fprintf(w, " and on the paper's high-contrast Nyx fields falls below — the 1D baseline.)\n")
	return nil
}

// walkZMesh re-exposes the zMesh traversal for this exhibit: coarse-level
// layout order, descending into refined regions in place.
func walkZMesh(sk codec.Skeleton, fn func(level, cellIdx int)) {
	L := len(sk.Levels)
	ratio := sk.Ratio
	var descend func(li, x, y, z int)
	descend = func(li, x, y, z int) {
		info := sk.Levels[li]
		ubl := info.UnitBlock
		if info.Mask.At(x/ubl, y/ubl, z/ubl) {
			fn(li, info.Dims.Index(x, y, z))
			return
		}
		if li == 0 {
			return
		}
		for dx := 0; dx < ratio; dx++ {
			for dy := 0; dy < ratio; dy++ {
				for dz := 0; dz < ratio; dz++ {
					descend(li-1, x*ratio+dx, y*ratio+dy, z*ratio+dz)
				}
			}
		}
	}
	cd := sk.Levels[L-1].Dims
	for x := 0; x < cd.X; x++ {
		for y := 0; y < cd.Y; y++ {
			for z := 0; z < cd.Z; z++ {
				descend(L-1, x, y, z)
			}
		}
	}
}
