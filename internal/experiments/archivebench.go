package experiments

import (
	"bytes"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/sim"
)

// ArchiveBenchResult is the machine-readable archive-throughput record
// cmd/benchall -json emits, tracking the seekable-container hot paths
// (streaming write, full-member read, and the two random-access queries)
// across PRs.
type ArchiveBenchResult struct {
	Members          int     `json:"members"`
	OriginalBytes    int64   `json:"original_bytes"`
	ArchiveBytes     int64   `json:"archive_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`

	WriteSeconds float64 `json:"write_seconds"`
	WriteMBps    float64 `json:"write_mb_per_s"`

	ExtractMemberSeconds   float64 `json:"extract_member_seconds"`
	ExtractMemberMBps      float64 `json:"extract_member_mb_per_s"`
	ExtractMemberBytesRead int64   `json:"extract_member_bytes_read"`

	// Bytes the random-access paths touched, as fractions of the archive:
	// the random-access claim, quantified.
	ExtractLevelBytesRead  int64   `json:"extract_level_bytes_read"`
	ExtractLevelFraction   float64 `json:"extract_level_fraction"`
	ExtractRegionBytesRead int64   `json:"extract_region_bytes_read"`
	ExtractRegionFraction  float64 `json:"extract_region_fraction"`
}

type countingReaderAt struct {
	r    io.ReaderAt
	read atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.read.Add(int64(n))
	return n, err
}

// ArchiveBench writes the three Run1 timesteps into an in-memory archive
// and measures the write and read paths.
func ArchiveBench(env *Env) (ArchiveBenchResult, error) {
	var res ArchiveBenchResult
	names := []string{"Run1_Z10", "Run1_Z5", "Run1_Z2"}
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		return res, err
	}
	var orig int64
	start := time.Now()
	for _, name := range names {
		ds, err := env.Dataset(name, sim.BaryonDensity)
		if err != nil {
			return res, err
		}
		orig += int64(ds.OriginalBytes())
		if err := w.AddDataset(ds, cfg); err != nil {
			return res, err
		}
	}
	if err := w.Close(); err != nil {
		return res, err
	}
	res.WriteSeconds = time.Since(start).Seconds()
	res.Members = len(names)
	res.OriginalBytes = orig
	res.ArchiveBytes = int64(buf.Len())
	res.CompressionRatio = float64(orig) / float64(buf.Len())
	res.WriteMBps = float64(orig) / 1e6 / res.WriteSeconds

	cr := &countingReaderAt{r: bytes.NewReader(buf.Bytes())}
	r, err := archive.Open(cr, int64(buf.Len()))
	if err != nil {
		return res, err
	}

	before := cr.read.Load()
	start = time.Now()
	ds, err := r.Extract(0)
	if err != nil {
		return res, err
	}
	res.ExtractMemberSeconds = time.Since(start).Seconds()
	res.ExtractMemberMBps = float64(ds.OriginalBytes()) / 1e6 / res.ExtractMemberSeconds
	res.ExtractMemberBytesRead = cr.read.Load() - before

	before = cr.read.Load()
	if _, err := r.ExtractLevel(1, 1); err != nil {
		return res, err
	}
	res.ExtractLevelBytesRead = cr.read.Load() - before
	res.ExtractLevelFraction = float64(res.ExtractLevelBytesRead) / float64(buf.Len())

	fd := r.Members()[0].Levels[0].Dims
	roi := grid.Region{X1: fd.X / 2, Y1: fd.Y / 2, Z1: fd.Z / 2}
	before = cr.read.Load()
	if _, err := r.ExtractRegion(0, roi); err != nil {
		return res, err
	}
	res.ExtractRegionBytesRead = cr.read.Load() - before
	res.ExtractRegionFraction = float64(res.ExtractRegionBytesRead) / float64(buf.Len())
	return res, nil
}
