package experiments

import (
	"fmt"
	"io"
	"time"
)

// Exhibit is one named table or figure reproduction.
type Exhibit struct {
	ID   string
	Desc string
	Run  func(w io.Writer, env *Env) error
}

// Exhibits lists every reproduced table and figure, in paper order.
func Exhibits() []Exhibit {
	return []Exhibit{
		{"table1", "dataset inventory (densities per level)", Table1},
		{"fig7", "NaST vs OpST on z10 fine level", Fig7},
		{"fig11", "GSP/OpST/AKDTree rate-distortion at six densities", Fig11},
		{"fig12", "ZF vs GSP on z10 coarse level", Fig12},
		{"fig13", "OpST vs AKDTree pre-process time vs density", Fig13},
		{"fig14", "TAC vs baselines rate-distortion (Run1)", Fig14},
		{"fig15", "TAC vs baselines rate-distortion (Run2)", Fig15},
		{"fig16", "zMesh reordering on tree- vs block-structured data", Fig16},
		{"fig18", "bit-rate vs error bound per level (Run1_Z2)", Fig18},
		{"fig19", "power-spectrum error with adaptive error bounds", Fig19},
		{"table2", "overall throughput of 1D/3D/TAC", Table2},
		{"table3", "halo-finder quality with adaptive error bounds", Table3},
		{"ablation_dims", "[extra] 1D vs 2D vs 3D prediction on the same field", AblationDims},
		{"ablation_kd", "[extra] AKDTree adaptive split vs classic k-d tree", AblationClassicKD},
		{"fields", "[extra] TAC across all six Nyx fields", Fields},
	}
}

// RunAll executes every exhibit in order, separating them with blank lines.
func RunAll(w io.Writer, env *Env) error {
	return RunAllTimed(w, env, nil)
}

// RunAllTimed is RunAll with a per-exhibit wall-time callback (nil is
// allowed), the hook cmd/benchall's -json record uses.
func RunAllTimed(w io.Writer, env *Env, timed func(id string, d time.Duration)) error {
	for i, ex := range Exhibits() {
		if i > 0 {
			fprintf(w, "\n")
		}
		start := time.Now()
		if err := ex.Run(w, env); err != nil {
			return fmt.Errorf("experiments: %s: %w", ex.ID, err)
		}
		if timed != nil {
			timed(ex.ID, time.Since(start))
		}
	}
	return nil
}

// RunByID executes one exhibit by its ID.
func RunByID(w io.Writer, env *Env, id string) error {
	for _, ex := range Exhibits() {
		if ex.ID == id {
			return ex.Run(w, env)
		}
	}
	return fmt.Errorf("experiments: unknown exhibit %q", id)
}
