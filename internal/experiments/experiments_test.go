package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/sim"
)

// testEnv uses scale 8 (Run1: 64³/32³) so the full exhibit set stays fast.
func testEnv() *Env { return NewEnv(8) }

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, testEnv()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Run1_Z10", "Run1_Z5", "Run1_Z3", "Run1_Z2", "Run2_T2", "Run2_T3", "Run2_T4"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 output missing %s:\n%s", name, out)
		}
	}
}

func TestFig7OpSTBeatsNaST(t *testing.T) {
	env := testEnv()
	l, err := env.Level(LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := relEBOfLevel(l, 4.8e-5) // discriminative regime for the synthetic field
	nast, err := RunLevel(l, codec.NaST, eb)
	if err != nil {
		t.Fatal(err)
	}
	opst, err := RunLevel(l, codec.OpST, eb)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 7: OpST achieves a higher CR at the same bound (the PSNR
	// edge is subtler; require CR strictly better and PSNR not worse by
	// more than 1 dB).
	if opst.Ratio <= nast.Ratio {
		t.Errorf("OpST CR %.1f not better than NaST %.1f", opst.Ratio, nast.Ratio)
	}
	if opst.PSNR < nast.PSNR-1 {
		t.Errorf("OpST PSNR %.2f far below NaST %.2f", opst.PSNR, nast.PSNR)
	}
}

func TestFig12GSPBeatsZFAtHighDensity(t *testing.T) {
	// At 99.8% density (where TAC's hybrid uses GSP), ghost-shell padding
	// must not lose to plain zero filling: the paper's claim is better
	// rate-distortion on high-density levels. Our SZ restores empty
	// regions exactly for GSP via the mask, so PSNR ties or wins, and CR
	// must be at least ZF's.
	env := testEnv()
	l, err := env.Level(LevelRef{Label: "T2 coarse", Dataset: "Run2_T2", Level: 1}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := relEBOfLevel(l, 6.7e-3)
	zf, err := RunLevel(l, codec.ZF, eb)
	if err != nil {
		t.Fatal(err)
	}
	gsp, err := RunLevel(l, codec.GSP, eb)
	if err != nil {
		t.Fatal(err)
	}
	if gsp.PSNR < zf.PSNR-0.1 {
		t.Errorf("GSP PSNR %.2f below ZF %.2f", gsp.PSNR, zf.PSNR)
	}
	if gsp.Ratio < zf.Ratio*0.98 {
		t.Errorf("GSP CR %.1f below ZF %.1f", gsp.Ratio, zf.Ratio)
	}
}

func TestFig11GSPWinsAtVeryHighDensity(t *testing.T) {
	// The hybrid threshold T2: above it, GSP must beat the extraction
	// strategies (paper Fig 11e/f).
	env := testEnv()
	l, err := env.Level(LevelRef{Label: "T2 coarse", Dataset: "Run2_T2", Level: 1}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e9
	gsp, err := RunLevel(l, codec.GSP, eb)
	if err != nil {
		t.Fatal(err)
	}
	akd, err := RunLevel(l, codec.AKD, eb)
	if err != nil {
		t.Fatal(err)
	}
	if gsp.BitRate >= akd.BitRate {
		t.Errorf("GSP bitrate %.3f not below AKD %.3f at 99.8%% density", gsp.BitRate, akd.BitRate)
	}
}

func TestFig11OpSTWinsAtLowDensity(t *testing.T) {
	// Below T1, the extraction strategies must beat GSP (paper Fig 11a).
	env := testEnv()
	l, err := env.Level(LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e9
	gsp, err := RunLevel(l, codec.GSP, eb)
	if err != nil {
		t.Fatal(err)
	}
	op, err := RunLevel(l, codec.OpST, eb)
	if err != nil {
		t.Fatal(err)
	}
	if op.BitRate >= gsp.BitRate {
		t.Errorf("OpST bitrate %.3f not below GSP %.3f at 23%% density", op.BitRate, gsp.BitRate)
	}
}

func TestFig11OpSTAndAKDClose(t *testing.T) {
	env := testEnv()
	l, err := env.Level(LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e9
	op, err := RunLevel(l, codec.OpST, eb)
	if err != nil {
		t.Fatal(err)
	}
	ak, err := RunLevel(l, codec.AKD, eb)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 11: OpST and AKDTree have almost identical rate-distortion.
	if ak.BitRate > op.BitRate*1.3 || op.BitRate > ak.BitRate*1.3 {
		t.Errorf("OpST br %.3f and AKD br %.3f diverge beyond 30%%", op.BitRate, ak.BitRate)
	}
	if diff := op.PSNR - ak.PSNR; diff > 3 || diff < -3 {
		t.Errorf("OpST PSNR %.1f and AKD PSNR %.1f diverge beyond 3 dB", op.PSNR, ak.PSNR)
	}
}

func TestFig15TACBeats3DOnSparse(t *testing.T) {
	env := testEnv()
	ds, err := env.Dataset("Run2_T2", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e9
	tac, _, _, err := RunCodec(Codecs()[0], ds, codec.Config{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	u3, _, _, err := RunCodec(Codecs()[3], ds, codec.Config{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	// Finest density 0.2%: the 3D baseline compresses 8× redundant data;
	// TAC's bit-rate must be far lower at the same bound.
	if tac.BitRate >= u3.BitRate {
		t.Errorf("TAC bitrate %.3f not below 3D baseline %.3f on sparse data", tac.BitRate, u3.BitRate)
	}
}

func TestMatchRatioConverges(t *testing.T) {
	env := testEnv()
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	target := 60.0
	_, got, err := MatchRatio(Codecs()[0], ds, codec.Config{}, target, 0.05, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got < target*0.9 || got > target*1.1 {
		t.Fatalf("MatchRatio landed at %.1f, want ≈%.1f", got, target)
	}
}

func TestEnvCaches(t *testing.T) {
	env := testEnv()
	a, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not cached")
	}
}

func TestRunByID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByID(&buf, testEnv(), "table1"); err != nil {
		t.Fatal(err)
	}
	if err := RunByID(&buf, testEnv(), "nope"); err == nil {
		t.Fatal("unknown exhibit should error")
	}
}

func TestExhibitsComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, ex := range Exhibits() {
		ids[ex.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig7", "fig11", "fig12", "fig13", "fig14", "fig15", "fig18", "fig19"} {
		if !ids[want] {
			t.Fatalf("exhibit %s missing", want)
		}
	}
}
