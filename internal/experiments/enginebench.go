package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
)

// EngineBenchResult is the machine-readable engine-throughput record
// cmd/benchall -json emits: allocation cost of the compress path and
// serial-vs-parallel decompress throughput, tracking the pooled zero-copy
// codec engine across PRs.
type EngineBenchResult struct {
	Dataset       string `json:"dataset"`
	OriginalBytes int64  `json:"original_bytes"`
	Workers       int    `json:"workers"` // GOMAXPROCS used by the parallel paths

	// Compress path (Config.Workers=-1) through the pooled engine.
	CompressNsPerOp     float64 `json:"compress_ns_per_op"`
	CompressAllocsPerOp float64 `json:"compress_allocs_per_op"`
	CompressBytesPerOp  float64 `json:"compress_bytes_per_op"`
	CompressMBps        float64 `json:"compress_mb_per_s"`

	// Decompress path, serial (Workers=0) vs fanned out (Workers=-1).
	DecompressSerialNsPerOp   float64 `json:"decompress_serial_ns_per_op"`
	DecompressSerialMBps      float64 `json:"decompress_serial_mb_per_s"`
	DecompressParallelNsPerOp float64 `json:"decompress_parallel_ns_per_op"`
	DecompressParallelMBps    float64 `json:"decompress_parallel_mb_per_s"`
	DecompressAllocsPerOp     float64 `json:"decompress_parallel_allocs_per_op"`
	DecompressSpeedup         float64 `json:"decompress_speedup"`
}

// measureLoop runs fn iters times in four timed batches and reports the
// per-op wall time of the fastest batch plus allocation counters averaged
// over every iteration. The fastest batch estimates what the code costs
// when co-tenants of a shared box aren't stealing the core — a mean over
// all iterations measures the neighbours as much as the code, and on
// this class of hardware the run-to-run spread of the mean exceeded the
// effect size of a typical PR.
func measureLoop(iters int, fn func() error) (nsPerOp, allocsPerOp, bytesPerOp float64, err error) {
	const batches = 4
	per := max(iters/batches, 1)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	best := time.Duration(math.MaxInt64)
	total := 0
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < per; i++ {
			if err = fn(); err != nil {
				return 0, 0, 0, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
		total += per
	}
	runtime.ReadMemStats(&m1)
	n := float64(total)
	return float64(best.Nanoseconds()) / float64(per),
		float64(m1.Mallocs-m0.Mallocs) / n,
		float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		nil
}

// EngineBench measures the pooled codec engine on the Run1_Z10 snapshot:
// compress cost (time and allocs/op with the engine warm) and decompress
// throughput serial vs Workers=-1.
func EngineBench(env *Env) (EngineBenchResult, error) {
	var res EngineBenchResult
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return res, err
	}
	res.Dataset = ds.Name
	res.OriginalBytes = int64(ds.OriginalBytes())
	res.Workers = runtime.GOMAXPROCS(0)
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	// Enough iterations to keep the MB/s figures stable on a shared box —
	// at 6 the run-to-run spread was wider than a typical PR's effect.
	const iters = 16
	eng := core.NewEngine(0)
	var blob []byte
	if blob, err = eng.Compress(ds, cfg); err != nil { // warm the scratch
		return res, err
	}
	res.CompressNsPerOp, res.CompressAllocsPerOp, res.CompressBytesPerOp, err = measureLoop(iters, func() error {
		blob, err = eng.Compress(ds, cfg)
		return err
	})
	if err != nil {
		return res, fmt.Errorf("engine bench compress: %w", err)
	}
	res.CompressMBps = float64(res.OriginalBytes) / 1e6 / (res.CompressNsPerOp / 1e9)

	serial := core.TAC{Workers: 0}
	if _, err := serial.Decompress(blob); err != nil {
		return res, err
	}
	res.DecompressSerialNsPerOp, _, _, err = measureLoop(iters, func() error {
		_, err := serial.Decompress(blob)
		return err
	})
	if err != nil {
		return res, fmt.Errorf("engine bench serial decompress: %w", err)
	}
	res.DecompressSerialMBps = float64(res.OriginalBytes) / 1e6 / (res.DecompressSerialNsPerOp / 1e9)

	parallel := core.TAC{Workers: -1}
	res.DecompressParallelNsPerOp, res.DecompressAllocsPerOp, _, err = measureLoop(iters, func() error {
		_, err := parallel.Decompress(blob)
		return err
	})
	if err != nil {
		return res, fmt.Errorf("engine bench parallel decompress: %w", err)
	}
	res.DecompressParallelMBps = float64(res.OriginalBytes) / 1e6 / (res.DecompressParallelNsPerOp / 1e9)
	res.DecompressSpeedup = res.DecompressParallelMBps / res.DecompressSerialMBps
	return res, nil
}
