package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sz"
)

func TestAblationDimsOrdering(t *testing.T) {
	// The Sec. 2.3 premise at dataset scale: 3D < 2D < 1D bits/value on
	// the flattened field.
	env := testEnv()
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	uni := ds.FlattenToUniform()
	opts := sz.Options{ErrorBound: 1e9}
	b1, _, err := sz.Compress1D(uni.Data, opts)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := sz.CompressSlices(uni, opts)
	if err != nil {
		t.Fatal(err)
	}
	b3, _, err := sz.Compress3D(uni, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(b3) < len(b2) && len(b2) < len(b1)) {
		t.Fatalf("want 3D < 2D < 1D, got %d / %d / %d", len(b3), len(b2), len(b1))
	}
}

func TestFieldsExhibitCoversAllSix(t *testing.T) {
	var buf bytes.Buffer
	if err := Fields(&buf, testEnv()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, f := range sim.Fields() {
		if !strings.Contains(out, string(f)) {
			t.Fatalf("fields exhibit missing %s:\n%s", f, out)
		}
	}
}

func TestFig16Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig16(&buf, testEnv()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tree-structured") || !strings.Contains(out, "block-structured") {
		t.Fatalf("fig16 output malformed:\n%s", out)
	}
}

func TestFig18MonotoneBitRates(t *testing.T) {
	// Fig 18's premise: bit-rate decreases monotonically with the bound,
	// for both levels.
	env := testEnv()
	ds, err := env.Dataset("Run1_Z2", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range ds.Levels {
		prev := 1e18
		for _, eb := range []float64{1e8, 1e9, 1e10, 1e11} {
			res, err := RunLevel(l, PickStrategyForTest(l.Density()), eb)
			if err != nil {
				t.Fatal(err)
			}
			if res.BitRate > prev*1.02 { // small tolerance for entropy noise
				t.Fatalf("level %d: bit-rate %v at eb %v above %v at looser bound", li, res.BitRate, eb, prev)
			}
			prev = res.BitRate
		}
	}
}

func TestTable2ThroughputSane(t *testing.T) {
	// One throughput cell, checked for sanity: positive, finite.
	env := testEnv()
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	p, ct, dt, err := RunCodec(Codecs()[0], ds, codecConfig(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if ct <= 0 || dt <= 0 {
		t.Fatalf("non-positive timings: %v %v", ct, dt)
	}
	if p.Ratio < 1 {
		t.Fatalf("TAC expanded the data: CR %.2f", p.Ratio)
	}
	if p.BitRate <= 0 || p.BitRate > 32 {
		t.Fatalf("implausible bit-rate %v", p.BitRate)
	}
	if r := metrics.CompressionRatio(ds.OriginalBytes(), 1); r <= 0 {
		t.Fatal("metrics sanity")
	}
}

func TestRunAllExhibitsAtTinyScale(t *testing.T) {
	// End-to-end smoke of every exhibit runner, paper + extras, at scale
	// 16 (Run1 at 32³/16³). Catches panics, format errors and broken
	// plumbing across the whole harness.
	if testing.Short() {
		t.Skip("full harness run skipped in -short mode")
	}
	env := NewEnv(16)
	var buf bytes.Buffer
	if err := RunAll(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{"Table 1", "Fig 7", "Fig 11", "Fig 12", "Fig 13", "Fig 14", "Fig 15", "Fig 16", "Fig 18", "Fig 19", "Table 2", "Table 3", "Ablation", "Extension"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("harness output missing %q", marker)
		}
	}
}
