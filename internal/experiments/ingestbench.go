package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/server"
	"repro/internal/sim"
)

// IngestBenchResult is the machine-readable write-path record cmd/benchall
// -json emits: sustained ingest throughput through the full HTTP stack —
// parse, compress, crash-safe commit, view republish — while concurrent
// readers hammer the already-committed members, the live-campaign workload
// the ingest subsystem exists for.
type IngestBenchResult struct {
	Snapshots   int `json:"snapshots"`
	Readers     int `json:"readers"`
	QueueDepth  int `json:"queue_depth"`
	FinalMember int `json:"final_members"`
	Generation  int `json:"generation"`

	Seconds        float64 `json:"seconds"`
	IngestedBytes  int64   `json:"ingested_bytes"`
	IngestMBps     float64 `json:"ingest_mb_per_s"`
	SnapshotsPerS  float64 `json:"snapshots_per_s"`
	Rejected       int64   `json:"rejected"`
	ReadRequests   int64   `json:"read_requests"`
	ReadMBps       float64 `json:"read_mb_per_s"`
	ArchiveBytes   int64   `json:"archive_bytes"`
	ReopenedOK     bool    `json:"reopened_ok"`
	ReopenedMember int     `json:"reopened_members"`
}

// IngestBench stands up a writable archive on disk behind the full tacd
// stack and measures sustained snapshot ingest over HTTP concurrent with
// read traffic: two reader goroutines loop over the committed members'
// levels the whole time snapshots stream in. After the drain it reopens
// the file cold and verifies every ingest actually landed.
func IngestBench(env *Env) (IngestBenchResult, error) {
	var res IngestBenchResult
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	// Seed archive: one committed member the readers will hammer.
	dir, err := os.MkdirTemp("", "tac-ingestbench-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "live.taca")
	seed, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return res, err
	}
	f, err := os.Create(path)
	if err != nil {
		return res, err
	}
	w, err := archive.NewWriter(f)
	if err != nil {
		f.Close()
		return res, err
	}
	if err := w.AddDataset(seed, cfg); err != nil {
		f.Close()
		return res, err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return res, err
	}
	if err := f.Close(); err != nil {
		return res, err
	}

	srv := server.New(server.Config{CacheBytes: 256 << 20})
	if _, err := srv.Add("live", server.ArchiveSpec{Primary: path, Append: true, Ingest: cfg}); err != nil {
		return res, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-serialize the ingest payloads so the measured loop times the
	// server, not the client-side generator. Each snapshot is a renamed
	// view of a cached dataset (Write only reads, so sharing levels is
	// safe).
	const snapshots, readers = 6, 2
	base, err := env.Dataset("Run1_Z5", sim.BaryonDensity)
	if err != nil {
		return res, err
	}
	payloads := make([][]byte, snapshots)
	for i := range payloads {
		ds := *base
		ds.Name = fmt.Sprintf("ingest%03d", i)
		var buf bytes.Buffer
		if err := ds.Write(&buf); err != nil {
			return res, err
		}
		payloads[i] = buf.Bytes()
		res.IngestedBytes += int64(base.OriginalBytes())
	}
	res.Snapshots = snapshots
	res.Readers = readers
	res.QueueDepth = server.DefaultIngestQueue

	client := &http.Client{Transport: &http.Transport{
		DisableCompression:  true,
		MaxIdleConnsPerHost: readers + 1,
	}}
	var readBytes, readReqs atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for li := 0; ; li = (li + 1) % len(seed.Levels) {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + fmt.Sprintf("/a/live/snap/0/level/%d", li))
				if err != nil {
					fail(err)
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("concurrent read: status %d err %v", resp.StatusCode, err))
					return
				}
				readBytes.Add(n)
				readReqs.Add(1)
			}
		}()
	}

	start := time.Now()
	for i, body := range payloads {
		resp, err := client.Post(ts.URL+"/a/live/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			close(stop)
			wg.Wait()
			return res, err
		}
		var ack struct {
			Snapshot   int    `json:"snapshot"`
			Generation uint64 `json:"generation"`
		}
		jerr := json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated || jerr != nil {
			close(stop)
			wg.Wait()
			return res, fmt.Errorf("ingest %d: status %d decode %v", i, resp.StatusCode, jerr)
		}
		res.FinalMember = ack.Snapshot + 1
		res.Generation = int(ack.Generation)
	}
	res.Seconds = time.Since(start).Seconds()
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return res, fmt.Errorf("ingest bench: %w", firstErr)
	}
	res.IngestMBps = float64(res.IngestedBytes) / 1e6 / res.Seconds
	res.SnapshotsPerS = float64(snapshots) / res.Seconds
	res.ReadRequests = readReqs.Load()
	res.ReadMBps = float64(readBytes.Load()) / 1e6 / res.Seconds
	res.Rejected = srv.IngestStats().Rejected

	// Drain, seal, and prove durability with a cold reopen.
	srv.SetDraining(true)
	if err := srv.Close(); err != nil {
		return res, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return res, err
	}
	res.ArchiveBytes = st.Size()
	fr, err := archive.OpenFile(path)
	if err != nil {
		return res, fmt.Errorf("reopening grown archive: %w", err)
	}
	defer fr.Close()
	res.ReopenedMember = len(fr.Members())
	res.ReopenedOK = res.ReopenedMember == 1+snapshots
	if !res.ReopenedOK {
		return res, fmt.Errorf("reopened archive has %d members, want %d", res.ReopenedMember, 1+snapshots)
	}
	// Spot-check the last ingested member decodes.
	if _, err := fr.ExtractLevel(res.ReopenedMember-1, 0); err != nil {
		return res, fmt.Errorf("extracting last ingested member: %w", err)
	}
	return res, nil
}
