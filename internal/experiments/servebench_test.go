package experiments

import "testing"

// TestServeBenchSmoke runs the serving benchmark end to end at a small
// scale and sanity-checks the record: all requests answered, the repeated
// workload hit the cache, and singleflight kept decodes at or below
// misses.
func TestServeBenchSmoke(t *testing.T) {
	res, err := ServeBench(NewEnv(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.RequestsPerSec <= 0 {
		t.Fatalf("no requests measured: %+v", res)
	}
	if res.ServedBytes == 0 {
		t.Fatalf("no bytes served: %+v", res)
	}
	if res.CacheHitRatio <= 0 {
		t.Fatalf("repeated workload produced no cache hits: %+v", res)
	}
	if res.Decodes > res.CacheMisses {
		t.Fatalf("decodes %d exceed misses %d (singleflight accounting broken): %+v",
			res.Decodes, res.CacheMisses, res)
	}
}
