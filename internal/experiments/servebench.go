package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/server"
	"repro/internal/sim"
)

// ServeBenchResult is the machine-readable serving-layer record
// cmd/benchall -json emits: request throughput through the tacd HTTP
// stack and the behavior of the block-level LRU cache under a repeated
// mixed workload, tracking the concurrent serving path across PRs.
type ServeBenchResult struct {
	Members     int `json:"members"`
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`

	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_s"`
	ServedBytes    int64   `json:"served_bytes"`
	ServedMBps     float64 `json:"served_mb_per_s"`

	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Decodes       int64   `json:"decodes"`
}

// ServeBench stands up the full serving stack — archive on an in-memory
// ReaderAt, server.Server with its sharded cache, real HTTP over
// loopback — and measures a repeated level + region workload from
// concurrent clients, the access pattern of an analysis fleet scanning a
// campaign's hot snapshots.
func ServeBench(env *Env) (ServeBenchResult, error) {
	var res ServeBenchResult
	names := []string{"Run1_Z10", "Run1_Z5"}
	cfg := codec.Config{ErrorBound: 1e9, Workers: -1}

	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		return res, err
	}
	for _, name := range names {
		ds, err := env.Dataset(name, sim.BaryonDensity)
		if err != nil {
			return res, err
		}
		if err := w.AddDataset(ds, cfg); err != nil {
			return res, err
		}
	}
	if err := w.Close(); err != nil {
		return res, err
	}
	res.Members = len(names)

	r, err := archive.Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		return res, err
	}
	srv := server.New(server.Config{CacheBytes: 256 << 20})
	if err := srv.AddReader("bench", r, nil); err != nil {
		return res, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The request mix: every level of every member plus two region
	// windows per member, repeated over several rounds — the first round
	// misses and decodes, later rounds measure the cached serving path.
	var paths []string
	for mi := range r.Members() {
		m := &r.Members()[mi]
		for li := range m.Levels {
			paths = append(paths, fmt.Sprintf("/a/bench/snap/%d/level/%d", mi, li))
		}
		fd := m.Levels[0].Dims
		paths = append(paths,
			fmt.Sprintf("/a/bench/snap/%d/level/0?roi=0:%d,0:%d,0:%d", mi, fd.X/2, fd.Y/2, fd.Z/2),
			fmt.Sprintf("/a/bench/snap/%d/level/0?roi=%d:%d,%d:%d,%d:%d", mi,
				fd.X/4, 3*fd.X/4, fd.Y/4, 3*fd.Y/4, fd.Z/4, 3*fd.Z/4))
	}
	const rounds, concurrency = 6, 4
	jobs := make(chan string, rounds*len(paths))
	for i := 0; i < rounds; i++ {
		for _, p := range paths {
			jobs <- p
		}
	}
	close(jobs)
	res.Requests = rounds * len(paths)
	res.Concurrency = concurrency

	client := &http.Client{Transport: &http.Transport{
		DisableCompression:  true, // measure the identity path, not gzip CPU
		MaxIdleConnsPerHost: concurrency,
	}}
	var served atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				resp, err := client.Get(ts.URL + p)
				if err != nil {
					fail(err)
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("GET %s: status %d", p, resp.StatusCode))
					return
				}
				served.Add(n)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return res, fmt.Errorf("serve bench: %w", firstErr)
	}
	res.Seconds = time.Since(start).Seconds()
	res.RequestsPerSec = float64(res.Requests) / res.Seconds
	res.ServedBytes = served.Load()
	res.ServedMBps = float64(res.ServedBytes) / 1e6 / res.Seconds

	st := srv.Cache().Stats()
	res.CacheHits = st.Hits
	res.CacheMisses = st.Misses
	res.CacheHitRatio = st.HitRatio()
	res.Decodes = st.Decodes
	return res, nil
}
