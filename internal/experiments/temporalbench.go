package experiments

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/codec"
	"repro/internal/sim"
)

// TemporalBenchResult is the machine-readable campaign-mode record
// cmd/benchall -json emits: the same drifting multi-snapshot campaign
// archived twice — intra-only and with keyframe/delta members — so the
// temporal-compression win (and its decode-latency price at worst-case
// chain depth) is tracked across PRs.
type TemporalBenchResult struct {
	Snapshots     int     `json:"snapshots"`
	Keyframe      int     `json:"keyframe"`
	ChainDepth    int     `json:"chain_depth"` // of the member timed below
	OriginalBytes int64   `json:"original_bytes"`
	ErrorBound    float64 `json:"error_bound"`

	IntraBytes int64   `json:"intra_bytes"`
	DeltaBytes int64   `json:"delta_bytes"`
	IntraRatio float64 `json:"intra_ratio"`
	DeltaRatio float64 `json:"delta_ratio"`
	// Improvement is DeltaRatio / IntraRatio: >1 means campaign mode
	// stored the same campaign smaller at the same bound.
	Improvement float64 `json:"improvement"`

	IntraWriteMBps float64 `json:"intra_write_mb_per_s"`
	DeltaWriteMBps float64 `json:"delta_write_mb_per_s"`
	// Extract throughput of the deepest-chained member, against the same
	// member of the intra archive: the worst-case random-access price of
	// resolving a reference chain.
	IntraExtractMBps float64 `json:"intra_extract_mb_per_s"`
	DeltaExtractMBps float64 `json:"delta_extract_mb_per_s"`

	// MaxErr is the largest |original - reconstructed| across every
	// member of the delta archive — the per-snapshot bound, measured.
	MaxErr float64 `json:"max_err"`
}

// temporalCampaign derives a drifting campaign from one catalog snapshot:
// identical AMR structure throughout, values moved per unit block by a few
// error bounds per step plus sub-bound jitter — the slowly-evolving
// regime the paper's simulation outputs live in.
func temporalCampaign(env *Env, steps int, eb float64) ([]*amr.Dataset, error) {
	base, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return nil, err
	}
	snaps := make([]*amr.Dataset, steps)
	snaps[0] = base
	rng := rand.New(rand.NewSource(1202))
	for s := 1; s < steps; s++ {
		ds := snaps[s-1].Clone()
		ds.Name = fmt.Sprintf("%s_t%d", base.Name, s)
		for _, l := range ds.Levels {
			for _, ord := range l.Mask.OccupiedIndices() {
				bx, by, bz := l.Mask.Dim.Coords(ord)
				r := l.BlockRegion(bx, by, bz)
				drift := amr.Value((rng.Float64()*2 - 1) * 3 * eb)
				for x := r.X0; x < r.X1; x++ {
					for y := r.Y0; y < r.Y1; y++ {
						for z := r.Z0; z < r.Z1; z++ {
							i := l.Grid.Dim.Index(x, y, z)
							l.Grid.Data[i] += drift + amr.Value((rng.Float64()*2-1)*eb/4)
						}
					}
				}
			}
		}
		snaps[s] = ds
	}
	return snaps, nil
}

// writeCampaign archives the snapshots with the given keyframe interval
// (0 = intra-only) and returns the bytes plus the wall time.
func writeCampaign(snaps []*amr.Dataset, keyframe int, eb float64) ([]byte, float64, error) {
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf)
	if err != nil {
		return nil, 0, err
	}
	w.Keyframe = keyframe
	cfg := codec.Config{ErrorBound: eb, Workers: -1}
	start := time.Now()
	for _, ds := range snaps {
		if err := w.AddDataset(ds, cfg); err != nil {
			return nil, 0, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), time.Since(start).Seconds(), nil
}

// TemporalBench archives a six-snapshot drifting campaign intra-only and
// in campaign mode (keyframe every 4) and measures size, throughput, and
// the worst-case chain-decode latency.
func TemporalBench(env *Env) (TemporalBenchResult, error) {
	const (
		steps    = 6
		keyframe = 4
		eb       = 1e9
	)
	res := TemporalBenchResult{Snapshots: steps, Keyframe: keyframe, ErrorBound: eb}
	snaps, err := temporalCampaign(env, steps, eb)
	if err != nil {
		return res, err
	}
	for _, ds := range snaps {
		res.OriginalBytes += int64(ds.OriginalBytes())
	}

	intra, intraSecs, err := writeCampaign(snaps, 0, eb)
	if err != nil {
		return res, err
	}
	delta, deltaSecs, err := writeCampaign(snaps, keyframe, eb)
	if err != nil {
		return res, err
	}
	res.IntraBytes = int64(len(intra))
	res.DeltaBytes = int64(len(delta))
	res.IntraRatio = float64(res.OriginalBytes) / float64(len(intra))
	res.DeltaRatio = float64(res.OriginalBytes) / float64(len(delta))
	res.Improvement = res.DeltaRatio / res.IntraRatio
	res.IntraWriteMBps = float64(res.OriginalBytes) / 1e6 / intraSecs
	res.DeltaWriteMBps = float64(res.OriginalBytes) / 1e6 / deltaSecs

	dr, err := archive.Open(bytes.NewReader(delta), int64(len(delta)))
	if err != nil {
		return res, err
	}
	ir, err := archive.Open(bytes.NewReader(intra), int64(len(intra)))
	if err != nil {
		return res, err
	}

	// Deepest chain in the delta archive, and the bound across every
	// member: the per-snapshot guarantee holds at every chain position.
	deepest, depth := 0, 0
	for mi := range dr.Members() {
		d := 0
		for at := mi; dr.Members()[at].Ref >= 0; at = dr.Members()[at].Ref {
			d++
		}
		if d >= depth {
			deepest, depth = mi, d
		}
		got, err := dr.Extract(mi)
		if err != nil {
			return res, err
		}
		for li, l := range snaps[mi].Levels {
			gl := got.Levels[li]
			for _, ord := range l.Mask.OccupiedIndices() {
				bx, by, bz := l.Mask.Dim.Coords(ord)
				r := l.BlockRegion(bx, by, bz)
				for x := r.X0; x < r.X1; x++ {
					for y := r.Y0; y < r.Y1; y++ {
						for z := r.Z0; z < r.Z1; z++ {
							i := l.Grid.Dim.Index(x, y, z)
							if d := math.Abs(float64(l.Grid.Data[i]) - float64(gl.Grid.Data[i])); d > res.MaxErr {
								res.MaxErr = d
							}
						}
					}
				}
			}
		}
	}
	res.ChainDepth = depth

	memberBytes := float64(snaps[deepest].OriginalBytes())
	start := time.Now()
	if _, err := dr.Extract(deepest); err != nil {
		return res, err
	}
	res.DeltaExtractMBps = memberBytes / 1e6 / time.Since(start).Seconds()
	start = time.Now()
	if _, err := ir.Extract(deepest); err != nil {
		return res, err
	}
	res.IntraExtractMBps = memberBytes / 1e6 / time.Since(start).Seconds()
	return res, nil
}
