package experiments

import (
	"fmt"

	"repro/internal/huffman"
	"repro/internal/sim"
	"repro/internal/sz"
)

// EntropyBenchResult is the machine-readable record of the entropy stage in
// isolation: canonical Huffman encode/decode throughput on the actual
// quantization-code stream the Run1_Z10 snapshot produces, tracking the
// table-driven coder across PRs. Throughput is measured over the symbol
// stream's in-memory size (4 bytes per uint32 code).
type EntropyBenchResult struct {
	Dataset         string  `json:"dataset"`
	Symbols         int     `json:"symbols"`
	DistinctSymbols int     `json:"distinct_symbols"`
	EncodedBytes    int     `json:"encoded_bytes"`
	EncodeNsPerOp   float64 `json:"huffman_encode_ns_per_op"`
	EncodeMBps      float64 `json:"huffman_encode_mb_per_s"`
	DecodeNsPerOp   float64 `json:"huffman_decode_ns_per_op"`
	DecodeMBps      float64 `json:"huffman_decode_mb_per_s"`
}

// EntropyBench isolates the Huffman stage: it compresses the Run1_Z10
// finest level once to obtain the real quantization-code stream, then
// measures warm pooled encode and decode over that stream alone.
func EntropyBench(env *Env) (EntropyBenchResult, error) {
	var res EntropyBenchResult
	ds, err := env.Dataset("Run1_Z10", sim.BaryonDensity)
	if err != nil {
		return res, err
	}
	res.Dataset = ds.Name

	blob, _, err := sz.Compress3D(ds.Levels[0].Grid, sz.Options{ErrorBound: 1e9})
	if err != nil {
		return res, fmt.Errorf("entropy bench compress: %w", err)
	}
	codes, err := sz.ExtractCodes(blob)
	if err != nil {
		return res, fmt.Errorf("entropy bench extract: %w", err)
	}
	res.Symbols = len(codes)
	distinct := make(map[uint32]struct{})
	for _, c := range codes {
		distinct[c] = struct{}{}
	}
	res.DistinctSymbols = len(distinct)
	streamBytes := 4 * len(codes)

	const iters = 12
	var enc huffman.Encoder
	huffBlob := enc.AppendEncode(nil, codes) // warm the scratch
	res.EncodedBytes = len(huffBlob)
	res.EncodeNsPerOp, _, _, err = measureLoop(iters, func() error {
		huffBlob = enc.AppendEncode(huffBlob[:0], codes)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.EncodeMBps = float64(streamBytes) / 1e6 / (res.EncodeNsPerOp / 1e9)

	var dec huffman.Decoder
	out, err := dec.AppendDecode(nil, huffBlob)
	if err != nil {
		return res, fmt.Errorf("entropy bench decode: %w", err)
	}
	res.DecodeNsPerOp, _, _, err = measureLoop(iters, func() error {
		var derr error
		out, derr = dec.AppendDecode(out[:0], huffBlob)
		return derr
	})
	if err != nil {
		return res, err
	}
	res.DecodeMBps = float64(streamBytes) / 1e6 / (res.DecodeNsPerOp / 1e9)
	return res, nil
}
