package experiments

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig19 reproduces the power-spectrum experiment on Run1_Z2: at (almost)
// the same compression ratio, compare the relative P(k) error of the 3D
// baseline, TAC with a uniform error bound (1:1), and TAC with the paper's
// 3:1 fine:coarse adaptive bound. Expected shape: TAC(1:1) ≈ 3D baseline;
// TAC(3:1) clearly better, comfortably under the 1% acceptance line.
func Fig19(w io.Writer, env *Env) error {
	ds, err := env.Dataset("Run1_Z2", sim.BaryonDensity)
	if err != nil {
		return err
	}
	orig := ds.FlattenToUniform()
	psOrig, err := analysis.ComputePowerSpectrum(orig)
	if err != nil {
		return err
	}
	// Anchor: the 3D baseline at a mid-sweep bound sets the target ratio.
	anchor := codec.Config{ErrorBound: 2e9}
	u3 := baseline.Uniform3D{}
	blob, err := u3.Compress(ds, anchor)
	if err != nil {
		return err
	}
	target := metrics.CompressionRatio(ds.OriginalBytes(), len(blob))

	type variant struct {
		label string
		c     codec.Codec
		base  codec.Config
	}
	variants := []variant{
		{"3D baseline", u3, anchor},
		{"TAC (1:1)", core.TAC{}, codec.Config{}},
		{"TAC (3:1)", core.TAC{}, codec.Config{LevelScales: []float64{3, 1}}},
	}
	// kMax: the paper uses k < 10 on 512³ grids; scale proportionally.
	kMax := float64(ds.FinestDims().X) * 10 / 512
	if kMax < 4 {
		kMax = 4
	}
	fprintf(w, "Fig 19: power-spectrum error on Run1_Z2 at matched CR ≈ %.1f (k < %.0f)\n", target, kMax)
	fprintf(w, "%-14s %-10s %-10s %-14s\n", "Method", "eb", "CR", "maxRelErr P(k)")
	for _, v := range variants {
		eb, got, err := MatchRatio(v.c, ds, v.base, target, 0.02, 24)
		if err != nil {
			return err
		}
		cfg := v.base
		cfg.ErrorBound = eb
		blob, err := v.c.Compress(ds, cfg)
		if err != nil {
			return err
		}
		recon, err := v.c.Decompress(blob)
		if err != nil {
			return err
		}
		ps, err := analysis.ComputePowerSpectrum(recon.FlattenToUniform())
		if err != nil {
			return err
		}
		_, maxErr, err := psOrig.RelativeError(ps, kMax)
		if err != nil {
			return err
		}
		fprintf(w, "%-14s %-10.3g %-10.1f %-14.6f\n", v.label, eb, got, maxErr)
	}
	return nil
}

// Table3 reproduces the halo-finder experiment on Run1_Z2: at matched CR,
// compare the biggest halo's relative mass difference and cell-count
// difference for the 3D baseline, TAC (1:1), and TAC with the paper's 2:1
// halo-tuned bound. Expected ordering: TAC(2:1) ≤ TAC(1:1) ≤ 3D baseline.
func Table3(w io.Writer, env *Env) error {
	ds, err := env.Dataset("Run1_Z2", sim.BaryonDensity)
	if err != nil {
		return err
	}
	orig := ds.FlattenToUniform()
	// The scaled synthetic field has fewer cells per halo than 512³ Nyx;
	// lower MinCells so halos exist at every scale.
	hOpts := analysis.HaloFinderOptions{ThresholdFactor: 81.66, MinCells: 4}
	if len(analysis.FindHalos(orig, hOpts)) == 0 {
		fprintf(w, "Table 3: skipped — no halos above 81.66× mean at this scale (rerun at scale ≤ 8)\n")
		return nil
	}
	u3 := baseline.Uniform3D{}
	anchor := codec.Config{ErrorBound: 2e9}
	blob, err := u3.Compress(ds, anchor)
	if err != nil {
		return err
	}
	target := metrics.CompressionRatio(ds.OriginalBytes(), len(blob))

	type variant struct {
		label string
		c     codec.Codec
		base  codec.Config
	}
	variants := []variant{
		{"3D baseline", u3, anchor},
		{"TAC (1:1)", core.TAC{}, codec.Config{}},
		{"TAC (2:1)", core.TAC{}, codec.Config{LevelScales: []float64{2, 1}}},
	}
	fprintf(w, "Table 3: halo finder on Run1_Z2 at matched CR ≈ %.1f\n", target)
	fprintf(w, "%-14s %-10s %-14s %-14s\n", "Method", "CR", "RelMassDiff", "CellNumsDiff")
	for _, v := range variants {
		eb, got, err := MatchRatio(v.c, ds, v.base, target, 0.02, 24)
		if err != nil {
			return err
		}
		cfg := v.base
		cfg.ErrorBound = eb
		blob, err := v.c.Compress(ds, cfg)
		if err != nil {
			return err
		}
		recon, err := v.c.Decompress(blob)
		if err != nil {
			return err
		}
		diff, err := analysis.CompareHalos(orig, recon.FlattenToUniform(), hOpts)
		if err != nil {
			return err
		}
		fprintf(w, "%-14s %-10.1f %-14.3e %-14d\n", v.label, got, diff.RelMassDiff, diff.CellNumDiff)
	}
	return nil
}

// Table2 measures overall throughput (compression + decompression,
// including pre-processing) in MB/s for the 1D baseline, the 3D baseline
// and TAC at three absolute error bounds across all seven datasets.
// Expected shape: 1D fastest; TAC close behind; the 3D baseline collapses
// on the sparse Run2 datasets where up-sampling inflates the data (the
// paper measures up to 75× advantage for TAC there).
func Table2(w io.Writer, env *Env) error {
	names := []string{"Run1_Z2", "Run1_Z3", "Run1_Z5", "Run1_Z10", "Run2_T2", "Run2_T3", "Run2_T4"}
	codecs := []codec.Codec{baseline.Naive1D{}, baseline.Uniform3D{}, core.TAC{}}
	fprintf(w, "Table 2: overall throughput (MB/s), compress+decompress\n")
	fprintf(w, "%-8s %-10s", "eb", "dataset")
	for _, c := range codecs {
		fprintf(w, " %8s", c.Name())
	}
	fprintf(w, "\n")
	for _, eb := range []float64{1e8, 1e9, 1e10} {
		for _, name := range names {
			ds, err := env.Dataset(name, sim.BaryonDensity)
			if err != nil {
				return err
			}
			fprintf(w, "%-8.0e %-10s", eb, name)
			mb := float64(ds.OriginalBytes()) / 1e6
			for _, c := range codecs {
				_, ct, dt, err := RunCodec(c, ds, codec.Config{ErrorBound: eb})
				if err != nil {
					return err
				}
				secs := (ct + dt).Seconds()
				fprintf(w, " %8.1f", mb/secs)
			}
			fprintf(w, "\n")
		}
	}
	return nil
}
