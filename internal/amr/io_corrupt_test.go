package amr

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/grid"
)

// validSnapshot serializes a small two-level dataset.
func validSnapshot(t *testing.T) []byte {
	t.Helper()
	ds := &Dataset{Name: "corrupt-test", Field: "baryon_density", Ratio: 2}
	// Fine 16³/ub 2 (mask 8³), coarse 8³/ub 2 (mask 4³): each coarse block
	// projects onto 2³ fine blocks, so refining coarse blocks (0,0,0) and
	// (1,1,1) into their eight fine blocks tiles the domain exactly.
	fine := NewLevel(grid.Dims{X: 16, Y: 16, Z: 16}, 2)
	coarse := NewLevel(grid.Dims{X: 8, Y: 8, Z: 8}, 2)
	coarse.Mask.Fill(true)
	for _, cb := range [][3]int{{0, 0, 0}, {1, 1, 1}} {
		coarse.Mask.Set(cb[0], cb[1], cb[2], false)
		for dx := 0; dx < 2; dx++ {
			for dy := 0; dy < 2; dy++ {
				for dz := 0; dz < 2; dz++ {
					fine.Mask.Set(2*cb[0]+dx, 2*cb[1]+dy, 2*cb[2]+dz, true)
				}
			}
		}
	}
	for i := range fine.Grid.Data {
		fine.Grid.Data[i] = float32(i)
	}
	for i := range coarse.Grid.Data {
		coarse.Grid.Data[i] = float32(2 * i)
	}
	ds.Levels = []*Level{fine, coarse}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustErr decodes blob expecting an error; any panic is converted into a
// test failure naming the case.
func mustErr(t *testing.T, name string, blob []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: ReadFrom panicked: %v", name, r)
		}
	}()
	if _, err := ReadFrom(bytes.NewReader(blob)); err == nil {
		t.Errorf("%s: corrupted snapshot accepted", name)
	}
}

func TestReadFromRejectsBadMagic(t *testing.T) {
	blob := validSnapshot(t)
	bad := append([]byte(nil), blob...)
	copy(bad, "NOPE")
	mustErr(t, "bad magic", bad)
}

func TestReadFromRejectsUnsupportedVersion(t *testing.T) {
	blob := validSnapshot(t)
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[4:], 999)
	mustErr(t, "unsupported version", bad)
}

func TestReadFromRejectsTruncation(t *testing.T) {
	blob := validSnapshot(t)
	// Every strict prefix must fail cleanly — header, mask, and value
	// truncations alike.
	for _, n := range []int{0, 3, 4, 7, 8, 11, 20, len(blob) / 2, len(blob) - 1} {
		mustErr(t, "truncated", blob[:n])
	}
}

func TestReadFromRejectsOversizedStringLength(t *testing.T) {
	blob := validSnapshot(t)
	bad := append([]byte(nil), blob...)
	// The name length field sits right after magic+version.
	binary.LittleEndian.PutUint32(bad[8:], 1<<30)
	mustErr(t, "oversized name length", bad)
}

func TestReadFromRejectsImplausibleLevelCount(t *testing.T) {
	blob := validSnapshot(t)
	// Locate the level-count field: magic(4) + version(4) + name + field +
	// ratio(4), where each string is 4-byte length + bytes.
	nameLen := int(binary.LittleEndian.Uint32(blob[8:]))
	fieldOff := 12 + nameLen
	fieldLen := int(binary.LittleEndian.Uint32(blob[fieldOff:]))
	nlevOff := fieldOff + 4 + fieldLen + 4
	for _, nlev := range []uint32{0, 17, 1 << 31} {
		bad := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint32(bad[nlevOff:], nlev)
		mustErr(t, "implausible level count", bad)
	}
}

func TestReadFromRejectsCorruptGeometry(t *testing.T) {
	blob := validSnapshot(t)
	nameLen := int(binary.LittleEndian.Uint32(blob[8:]))
	fieldOff := 12 + nameLen
	fieldLen := int(binary.LittleEndian.Uint32(blob[fieldOff:]))
	dimsOff := fieldOff + 4 + fieldLen + 8 // past ratio and level count

	// Oversized declared dims must not trigger a giant allocation or panic.
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[dimsOff:], 1<<24)
	mustErr(t, "oversized dims", bad)

	// Zero dims.
	bad = append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[dimsOff:], 0)
	mustErr(t, "zero dims", bad)

	// A unit block of zero or one that does not divide the dims used to
	// panic inside NewLevel.
	for _, ub := range []uint32{0, 3, 1 << 20} {
		bad = append([]byte(nil), blob...)
		binary.LittleEndian.PutUint32(bad[dimsOff+12:], ub)
		mustErr(t, "bad unit block", bad)
	}
}

func TestReadFromRejectsValueCountMismatch(t *testing.T) {
	blob := validSnapshot(t)
	// The first level's declared value count follows its packed mask. Find
	// it by re-deriving the layout: 8 header + strings + ratio + nlev, then
	// dims(16) + mask bytes for the 2×2×2 block mask (1 byte).
	nameLen := int(binary.LittleEndian.Uint32(blob[8:]))
	fieldOff := 12 + nameLen
	fieldLen := int(binary.LittleEndian.Uint32(blob[fieldOff:]))
	lvlOff := fieldOff + 4 + fieldLen + 8
	nvOff := lvlOff + 16 + 64 // dims+ub, then the packed 8³-bit mask
	for _, nv := range []uint32{0, 1, 1 << 28} {
		bad := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint32(bad[nvOff:], nv)
		mustErr(t, "value count mismatch", bad)
	}
}

func TestReadFromRoundTripStillWorks(t *testing.T) {
	blob := validSnapshot(t)
	ds, err := ReadFrom(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "corrupt-test" || len(ds.Levels) != 2 {
		t.Fatalf("round trip produced %q with %d levels", ds.Name, len(ds.Levels))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ds.Field, "density") {
		t.Fatalf("field %q lost", ds.Field)
	}
}
