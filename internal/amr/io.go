package amr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/grid"
)

// File format for .amr snapshots written by cmd/datagen and consumed by
// cmd/tacc: a small header followed, per level, by the packed occupancy
// mask and the masked cell values (only occupied unit blocks are stored,
// which is exactly what an AMR plotfile stores).

const (
	fileMagic   = "AMRD"
	fileVersion = uint32(1)
)

// Write serializes the dataset.
func (ds *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU32(fileVersion); err != nil {
		return err
	}
	if err := writeStr(ds.Name); err != nil {
		return err
	}
	if err := writeStr(ds.Field); err != nil {
		return err
	}
	if err := writeU32(uint32(ds.Ratio)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(ds.Levels))); err != nil {
		return err
	}
	for _, l := range ds.Levels {
		d := l.Grid.Dim
		for _, v := range []uint32{uint32(d.X), uint32(d.Y), uint32(d.Z), uint32(l.UnitBlock)} {
			if err := writeU32(v); err != nil {
				return err
			}
		}
		// Packed mask bits.
		packed := l.Mask.AppendPacked(make([]byte, 0, l.Mask.PackedLen()))
		if _, err := bw.Write(packed); err != nil {
			return err
		}
		vals := l.MaskedValues(nil)
		if err := writeU32(uint32(len(vals))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom deserializes a dataset written by Write.
func ReadFrom(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("amr: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("amr: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("amr: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	ver, err := readU32()
	if err != nil {
		return nil, err
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("amr: unsupported file version %d", ver)
	}
	ds := &Dataset{}
	if ds.Name, err = readStr(); err != nil {
		return nil, err
	}
	if ds.Field, err = readStr(); err != nil {
		return nil, err
	}
	ratio, err := readU32()
	if err != nil {
		return nil, err
	}
	ds.Ratio = int(ratio)
	nlev, err := readU32()
	if err != nil {
		return nil, err
	}
	if nlev == 0 || nlev > 16 {
		return nil, fmt.Errorf("amr: implausible level count %d", nlev)
	}
	for li := uint32(0); li < nlev; li++ {
		var d grid.Dims
		var ub uint32
		for _, p := range []*int{&d.X, &d.Y, &d.Z} {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			*p = int(v)
		}
		if ub, err = readU32(); err != nil {
			return nil, err
		}
		if d.Count() <= 0 || d.Count() > 1<<31 {
			return nil, fmt.Errorf("amr: implausible level dims %v", d)
		}
		// Validate before NewLevel, which panics on bad geometry.
		if ub == 0 || d.X%int(ub) != 0 || d.Y%int(ub) != 0 || d.Z%int(ub) != 0 {
			return nil, fmt.Errorf("amr: level %d unit block %d does not divide dims %v", li, ub, d)
		}
		l := NewLevel(d, int(ub))
		packed := make([]byte, l.Mask.PackedLen())
		if _, err := io.ReadFull(br, packed); err != nil {
			return nil, fmt.Errorf("amr: reading level %d mask: %w", li, err)
		}
		if err := l.Mask.SetPacked(packed); err != nil {
			return nil, fmt.Errorf("amr: level %d mask: %w", li, err)
		}
		nv, err := readU32()
		if err != nil {
			return nil, err
		}
		want := l.StoredCells()
		if int(nv) != want {
			return nil, fmt.Errorf("amr: level %d holds %d values, mask implies %d", li, nv, want)
		}
		buf := make([]byte, 4*nv)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("amr: reading level %d values: %w", li, err)
		}
		vals := make([]Value, nv)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		l.SetMaskedValues(vals)
		ds.Levels = append(ds.Levels, l)
	}
	return ds, nil
}

// Save writes the dataset to path.
func (ds *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Write(f); err != nil {
		return fmt.Errorf("amr: writing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a dataset from path.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("amr: reading %s: %w", path, err)
	}
	return ds, nil
}
