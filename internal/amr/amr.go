// Package amr models tree-structured adaptive-mesh-refinement datasets of
// the kind Nyx/AMReX produce: a stack of levels at power-of-ratio
// resolutions where every physical cell is stored exactly once, at the
// level of its finest refinement (Sec. 1 and Fig. 2 of the TAC paper).
//
// Each level is a dense 3D grid plus an occupancy mask at unit-block
// granularity; only cells inside occupied unit blocks carry data. Masks of
// different levels are disjoint when projected onto the finest resolution,
// and together they tile the whole domain.
package amr

import (
	"fmt"

	"repro/internal/grid"
)

// Value is the element type of AMR fields. Nyx stores single precision; the
// paper's bit-rates are quoted against 32 bits/value.
type Value = float32

// ValueBytes is the uncompressed storage width of one Value, the unit all
// compression-ratio accounting in this repository divides by.
const ValueBytes = 4

// Level is one refinement level of a dataset.
type Level struct {
	// Grid holds the level's values on its full extent. Cells outside
	// occupied unit blocks are zero and carry no information.
	Grid *grid.Grid3[Value]
	// UnitBlock is the edge length, in cells, of the refinement unit: the
	// granularity at which the simulation refines and at which TAC's
	// pre-process strategies operate.
	UnitBlock int
	// Mask records which unit blocks hold valid data. Its dims are
	// Grid.Dim / UnitBlock.
	Mask *grid.Mask
}

// NewLevel allocates an empty level of the given cell dims and unit block.
func NewLevel(d grid.Dims, unitBlock int) *Level {
	if unitBlock <= 0 || d.X%unitBlock != 0 || d.Y%unitBlock != 0 || d.Z%unitBlock != 0 {
		panic(fmt.Sprintf("amr: dims %v not divisible by unit block %d", d, unitBlock))
	}
	return &Level{
		Grid:      grid.New[Value](d),
		UnitBlock: unitBlock,
		Mask:      grid.NewMask(d.Div(unitBlock)),
	}
}

// Density returns the fraction of the level's unit blocks that hold data,
// the quantity TAC's density filter switches on.
func (l *Level) Density() float64 { return l.Mask.Density() }

// StoredCells returns the number of cells actually stored at this level.
func (l *Level) StoredCells() int {
	ub := l.UnitBlock
	return l.Mask.Count() * ub * ub * ub
}

// BlockRegion returns the cell-space region of unit block (bx,by,bz).
func (l *Level) BlockRegion(bx, by, bz int) grid.Region {
	ub := l.UnitBlock
	return grid.Region{
		X0: bx * ub, Y0: by * ub, Z0: bz * ub,
		X1: (bx + 1) * ub, Y1: (by + 1) * ub, Z1: (bz + 1) * ub,
	}
}

// Clone returns a deep copy of the level.
func (l *Level) Clone() *Level {
	return &Level{Grid: l.Grid.Clone(), UnitBlock: l.UnitBlock, Mask: l.Mask.Clone()}
}

// MaskedValues appends the values of all occupied unit blocks (block by
// block, row-major over blocks) to dst and returns it. This is the "stored
// data" of the level — what the original AMR file holds.
func (l *Level) MaskedValues(dst []Value) []Value {
	md := l.Mask.Dim
	buf := make([]Value, l.UnitBlock*l.UnitBlock*l.UnitBlock)
	for bx := 0; bx < md.X; bx++ {
		for by := 0; by < md.Y; by++ {
			for bz := 0; bz < md.Z; bz++ {
				if !l.Mask.At(bx, by, bz) {
					continue
				}
				l.Grid.CopyRegionTo(l.BlockRegion(bx, by, bz), buf)
				dst = append(dst, buf...)
			}
		}
	}
	return dst
}

// SetMaskedValues is the inverse of MaskedValues: it scatters src back into
// the occupied unit blocks in the same order and returns the remaining
// slice of src.
func (l *Level) SetMaskedValues(src []Value) []Value {
	md := l.Mask.Dim
	n := l.UnitBlock * l.UnitBlock * l.UnitBlock
	for bx := 0; bx < md.X; bx++ {
		for by := 0; by < md.Y; by++ {
			for bz := 0; bz < md.Z; bz++ {
				if !l.Mask.At(bx, by, bz) {
					continue
				}
				l.Grid.SetRegion(l.BlockRegion(bx, by, bz), src[:n])
				src = src[n:]
			}
		}
	}
	return src
}

// Dataset is a complete tree-structured AMR snapshot of one field.
type Dataset struct {
	// Name identifies the dataset (e.g. "Run1_Z10").
	Name string
	// Field names the physical quantity (e.g. "baryon_density").
	Field string
	// Ratio is the refinement ratio between adjacent levels (2 for Nyx).
	Ratio int
	// Levels is ordered fine to coarse: Levels[0] is the finest level,
	// matching Table 1's "Fine to Coarse" presentation.
	Levels []*Level
}

// FinestDims returns the cell dims of the finest level.
func (ds *Dataset) FinestDims() grid.Dims { return ds.Levels[0].Grid.Dim }

// LevelScale returns the up-sampling factor from level li to the finest
// resolution: Ratio^li.
func (ds *Dataset) LevelScale(li int) int {
	f := 1
	for i := 0; i < li; i++ {
		f *= ds.Ratio
	}
	return f
}

// StoredCells returns the total number of cells stored across all levels —
// the size of the original AMR data that compressors are measured against.
func (ds *Dataset) StoredCells() int {
	n := 0
	for _, l := range ds.Levels {
		n += l.StoredCells()
	}
	return n
}

// OriginalBytes returns the uncompressed size in bytes (ValueBytes per stored
// single-precision cell), the numerator of every compression ratio.
func (ds *Dataset) OriginalBytes() int { return ValueBytes * ds.StoredCells() }

// Densities returns the per-level densities, fine to coarse.
func (ds *Dataset) Densities() []float64 {
	out := make([]float64, len(ds.Levels))
	for i, l := range ds.Levels {
		out[i] = l.Density()
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (ds *Dataset) Clone() *Dataset {
	out := &Dataset{Name: ds.Name, Field: ds.Field, Ratio: ds.Ratio}
	out.Levels = make([]*Level, len(ds.Levels))
	for i, l := range ds.Levels {
		out.Levels[i] = l.Clone()
	}
	return out
}

// Validate checks the structural invariants: level dims shrink by Ratio,
// unit blocks divide dims, and the levels' masks tile the domain exactly
// (every finest-resolution cell covered exactly once).
func (ds *Dataset) Validate() error {
	if len(ds.Levels) == 0 {
		return fmt.Errorf("amr: dataset %q has no levels", ds.Name)
	}
	if ds.Ratio < 2 {
		return fmt.Errorf("amr: dataset %q has refinement ratio %d < 2", ds.Name, ds.Ratio)
	}
	fd := ds.FinestDims()
	for li, l := range ds.Levels {
		s := ds.LevelScale(li)
		want := grid.Dims{X: fd.X / s, Y: fd.Y / s, Z: fd.Z / s}
		if fd.X%s != 0 || l.Grid.Dim != want {
			return fmt.Errorf("amr: level %d dims %v, want %v (finest %v / %d)", li, l.Grid.Dim, want, fd, s)
		}
	}
	// Coverage check at finest-level unit-block granularity.
	fbd := ds.Levels[0].Mask.Dim
	cover := make([]int, fbd.Count())
	for li, l := range ds.Levels {
		s := ds.LevelScale(li)
		md := l.Mask.Dim
		for bx := 0; bx < md.X; bx++ {
			for by := 0; by < md.Y; by++ {
				for bz := 0; bz < md.Z; bz++ {
					if !l.Mask.At(bx, by, bz) {
						continue
					}
					for dx := 0; dx < s; dx++ {
						for dy := 0; dy < s; dy++ {
							for dz := 0; dz < s; dz++ {
								cover[fbd.Index(bx*s+dx, by*s+dy, bz*s+dz)]++
							}
						}
					}
				}
			}
		}
	}
	for i, c := range cover {
		if c != 1 {
			x, y, z := fbd.Coords(i)
			return fmt.Errorf("amr: finest block (%d,%d,%d) covered %d times, want exactly 1", x, y, z, c)
		}
	}
	return nil
}

// FlattenToUniform converts the dataset to a single uniform-resolution grid
// at the finest resolution by up-sampling each coarse level (piecewise-
// constant injection) and merging, exactly the post-analysis conversion of
// Fig. 2. The result is what the power spectrum and halo finder consume and
// what the 3D baseline compresses.
func (ds *Dataset) FlattenToUniform() *grid.Grid3[Value] {
	out := grid.New[Value](ds.FinestDims())
	for li, l := range ds.Levels {
		s := ds.LevelScale(li)
		md := l.Mask.Dim
		ub := l.UnitBlock
		for bx := 0; bx < md.X; bx++ {
			for by := 0; by < md.Y; by++ {
				for bz := 0; bz < md.Z; bz++ {
					if !l.Mask.At(bx, by, bz) {
						continue
					}
					// Up-sample this unit block into the output.
					for cx := bx * ub; cx < (bx+1)*ub; cx++ {
						for cy := by * ub; cy < (by+1)*ub; cy++ {
							for cz := bz * ub; cz < (bz+1)*ub; cz++ {
								v := l.Grid.At(cx, cy, cz)
								out.FillRegion(grid.Region{
									X0: cx * s, Y0: cy * s, Z0: cz * s,
									X1: (cx + 1) * s, Y1: (cy + 1) * s, Z1: (cz + 1) * s,
								}, v)
							}
						}
					}
				}
			}
		}
	}
	return out
}
