package amr

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// buildTwoLevel creates a valid two-level dataset by hand: the fine level
// owns the first half of the domain (in coarse-block terms), the coarse
// level the rest.
func buildTwoLevel(t *testing.T) *Dataset {
	t.Helper()
	fine := NewLevel(grid.Dims{X: 16, Y: 16, Z: 16}, 4) // 4³ blocks → 4x4x4 block grid
	coarse := NewLevel(grid.Dims{X: 8, Y: 8, Z: 8}, 4)  // 2x2x2 block grid
	// Coarse block (0,*,*) refined → fine blocks x∈{0,1}; coarse owns x=1.
	for bx := 0; bx < 2; bx++ {
		for by := 0; by < 2; by++ {
			for bz := 0; bz < 2; bz++ {
				coarse.Mask.Set(bx, by, bz, bx == 1)
			}
		}
	}
	for bx := 0; bx < 4; bx++ {
		for by := 0; by < 4; by++ {
			for bz := 0; bz < 4; bz++ {
				fine.Mask.Set(bx, by, bz, bx < 2)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := range fine.Grid.Data {
		fine.Grid.Data[i] = float32(rng.NormFloat64())
	}
	for i := range coarse.Grid.Data {
		coarse.Grid.Data[i] = float32(rng.NormFloat64())
	}
	ds := &Dataset{Name: "hand", Field: "f", Ratio: 2, Levels: []*Level{fine, coarse}}
	if err := ds.Validate(); err != nil {
		t.Fatalf("hand-built dataset invalid: %v", err)
	}
	return ds
}

func TestValidateCatchesGaps(t *testing.T) {
	ds := buildTwoLevel(t)
	ds.Levels[1].Mask.Set(1, 0, 0, false) // drop a coarse leaf → gap
	if err := ds.Validate(); err == nil {
		t.Fatal("gap should fail validation")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	ds := buildTwoLevel(t)
	ds.Levels[1].Mask.Set(0, 0, 0, true) // coarse block also covered by fine
	if err := ds.Validate(); err == nil {
		t.Fatal("overlap should fail validation")
	}
}

func TestValidateCatchesBadDims(t *testing.T) {
	ds := buildTwoLevel(t)
	ds.Levels[1] = NewLevel(grid.Dims{X: 4, Y: 4, Z: 4}, 4) // wrong coarse dims
	if err := ds.Validate(); err == nil {
		t.Fatal("wrong level dims should fail validation")
	}
}

func TestMaskedValuesRoundTrip(t *testing.T) {
	ds := buildTwoLevel(t)
	l := ds.Levels[0]
	vals := l.MaskedValues(nil)
	if len(vals) != l.StoredCells() {
		t.Fatalf("MaskedValues len %d, want %d", len(vals), l.StoredCells())
	}
	clone := NewLevel(l.Grid.Dim, l.UnitBlock)
	clone.Mask.CopyFrom(l.Mask)
	rest := clone.SetMaskedValues(vals)
	if len(rest) != 0 {
		t.Fatalf("SetMaskedValues left %d values", len(rest))
	}
	// Masked cells identical, unmasked cells zero.
	for bx := 0; bx < 4; bx++ {
		for x := bx * 4; x < (bx+1)*4; x++ {
			for y := 0; y < 16; y++ {
				for z := 0; z < 16; z++ {
					want := l.Grid.At(x, y, z)
					if bx >= 2 {
						want = 0
					}
					if got := clone.Grid.At(x, y, z); got != want {
						t.Fatalf("cell (%d,%d,%d): got %v want %v", x, y, z, got, want)
					}
				}
			}
		}
	}
}

func TestFlattenToUniform(t *testing.T) {
	ds := buildTwoLevel(t)
	uni := ds.FlattenToUniform()
	if uni.Dim != ds.FinestDims() {
		t.Fatalf("uniform dims %v", uni.Dim)
	}
	// Fine-owned half: identical to fine grid.
	if uni.At(3, 5, 7) != ds.Levels[0].Grid.At(3, 5, 7) {
		t.Fatal("fine region not copied")
	}
	// Coarse-owned half: injected (each coarse cell replicated 2³).
	cv := ds.Levels[1].Grid.At(5, 3, 2)
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			for dz := 0; dz < 2; dz++ {
				if uni.At(10+dx, 6+dy, 4+dz) != cv {
					t.Fatal("coarse region not injected")
				}
			}
		}
	}
}

func TestStoredCellsAndBytes(t *testing.T) {
	ds := buildTwoLevel(t)
	// Fine: 32 blocks × 64 cells; coarse: 4 blocks × 64 cells.
	want := 32*64 + 4*64
	if ds.StoredCells() != want {
		t.Fatalf("StoredCells %d, want %d", ds.StoredCells(), want)
	}
	if ds.OriginalBytes() != 4*want {
		t.Fatalf("OriginalBytes %d", ds.OriginalBytes())
	}
}

func TestLevelScale(t *testing.T) {
	ds := buildTwoLevel(t)
	if ds.LevelScale(0) != 1 || ds.LevelScale(1) != 2 {
		t.Fatalf("LevelScale: %d, %d", ds.LevelScale(0), ds.LevelScale(1))
	}
}

func TestCloneDeep(t *testing.T) {
	ds := buildTwoLevel(t)
	c := ds.Clone()
	c.Levels[0].Grid.Data[0] = 999
	c.Levels[0].Mask.SetIndex(0, !c.Levels[0].Mask.AtIndex(0))
	if ds.Levels[0].Grid.Data[0] == 999 {
		t.Fatal("Clone shares grid storage")
	}
	if ds.Levels[0].Mask.AtIndex(0) == c.Levels[0].Mask.AtIndex(0) {
		t.Fatal("Clone shares mask storage")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	ds := buildTwoLevel(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.Field != ds.Field || got.Ratio != ds.Ratio {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Levels) != len(ds.Levels) {
		t.Fatalf("level count %d", len(got.Levels))
	}
	for li := range ds.Levels {
		a := ds.Levels[li].MaskedValues(nil)
		b := got.Levels[li].MaskedValues(nil)
		if len(a) != len(b) {
			t.Fatalf("level %d value count", li)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("level %d value %d: %v vs %v", li, i, a[i], b[i])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not an amr file at all"))); err == nil {
		t.Fatal("garbage should be rejected")
	}
	ds := buildTwoLevel(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadFrom(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated file should be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := buildTwoLevel(t)
	path := t.TempDir() + "/x.amr"
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StoredCells() != ds.StoredCells() {
		t.Fatal("loaded dataset differs")
	}
}

func TestNewLevelPanicsOnBadUnitBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLevel should panic when unit block does not divide dims")
		}
	}()
	NewLevel(grid.Dims{X: 10, Y: 10, Z: 10}, 4)
}
