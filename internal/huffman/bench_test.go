package huffman

import (
	"math/rand"
	"testing"
)

// quantStream synthesizes a symbol stream shaped like the Run1_Z10
// quantization codes: a two-sided geometric distribution centered on the
// zero-residual bin (radius 2^15 at the default QuantBits=16) with a ~1%
// sprinkle of literal markers (code 0), matching what the Lorenzo
// predictor emits on the baryon-density field.
func quantStream(n int) []uint32 {
	rng := rand.New(rand.NewSource(7))
	syms := make([]uint32, n)
	const center = 1 << 15
	for i := range syms {
		if rng.Float64() < 0.01 {
			syms[i] = 0 // literal marker
			continue
		}
		d := int32(0)
		for rng.Intn(2) == 0 && d < 40 {
			d++
		}
		if rng.Intn(2) == 0 {
			d = -d
		}
		syms[i] = uint32(center + d)
	}
	return syms
}

func BenchmarkHuffmanEncode(b *testing.B) {
	syms := quantStream(1 << 18)
	var e Encoder
	dst := e.AppendEncode(nil, syms)
	b.SetBytes(int64(4 * len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.AppendEncode(dst[:0], syms)
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	syms := quantStream(1 << 18)
	blob := Encode(syms)
	out, err := AppendDecode(nil, blob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = AppendDecode(out[:0], blob)
		if err != nil {
			b.Fatal(err)
		}
	}
}
