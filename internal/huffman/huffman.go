// Package huffman implements a canonical Huffman coder over uint32 symbol
// streams. It is the entropy stage of the SZ-style compressor (Sec. 2.1 of
// the TAC paper: "apply a customized Huffman coding and lossless compression
// to achieve a higher ratio").
//
// Codes are canonical: only the code length of each present symbol is
// serialized, and both sides reconstruct identical codebooks, so the header
// overhead stays small even for large quantization-bin alphabets.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

const maxCodeLen = 57 // fits in a single bitio read; depth is clamped below

// node is an internal tree node used only during code-length construction.
type node struct {
	freq        uint64
	sym         uint32
	leaf        bool
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	// Deterministic tie-break keeps encodings reproducible across runs.
	return h[i].sym < h[j].sym
}
func (h nodeHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)       { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any         { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }
func (h nodeHeap) Peek() *node       { return h[0] }
func (h *nodeHeap) PushNode(n *node) { heap.Push(h, n) }
func (h *nodeHeap) PopNode() *node   { return heap.Pop(h).(*node) }

// codeLengths computes per-symbol code lengths from frequencies using the
// classic two-queue Huffman construction on a binary heap.
func codeLengths(freq map[uint32]uint64) map[uint32]uint8 {
	lens := make(map[uint32]uint8, len(freq))
	switch len(freq) {
	case 0:
		return lens
	case 1:
		for s := range freq {
			lens[s] = 1
		}
		return lens
	}
	h := make(nodeHeap, 0, len(freq))
	for s, f := range freq {
		h = append(h, &node{freq: f, sym: s, leaf: true})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := h.PopNode()
		b := h.PopNode()
		h.PushNode(&node{freq: a.freq + b.freq, sym: minU32(a.sym, b.sym), left: a, right: b})
	}
	var walk func(n *node, depth uint8)
	walk = func(n *node, depth uint8) {
		if n.leaf {
			if depth == 0 {
				depth = 1
			}
			if depth > maxCodeLen {
				depth = maxCodeLen // pathological skew; canonical rebuild below stays prefix-free only if lengths are valid, so clamp is a safety net for absurd alphabets
			}
			lens[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h.Peek(), 0)
	return lens
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// symCode is one entry of a canonical codebook.
type symCode struct {
	sym  uint32
	len  uint8
	code uint64
}

// canonicalize assigns canonical codes: symbols sorted by (length, symbol)
// receive consecutive codes.
func canonicalize(lens map[uint32]uint8) []symCode {
	codes := make([]symCode, 0, len(lens))
	for s, l := range lens {
		codes = append(codes, symCode{sym: s, len: l})
	}
	sort.Slice(codes, func(i, j int) bool {
		if codes[i].len != codes[j].len {
			return codes[i].len < codes[j].len
		}
		return codes[i].sym < codes[j].sym
	})
	var code uint64
	var prevLen uint8
	for i := range codes {
		code <<= codes[i].len - prevLen
		codes[i].code = code
		code++
		prevLen = codes[i].len
	}
	return codes
}

// Encoder holds reusable encoding scratch (frequency table, codebooks,
// header and bit-stream buffers) so repeated Encode calls on a hot path
// stop allocating. The zero value is ready to use; an Encoder is not safe
// for concurrent use. Output is byte-identical to the package-level Encode.
type Encoder struct {
	freq  map[uint32]uint64
	bySym []symCode
	hdr   []byte
}

// AppendEncode Huffman-codes syms and appends the self-contained blob
// (codebook header + bit stream) to dst, returning the extended slice.
func (e *Encoder) AppendEncode(dst []byte, syms []uint32) []byte {
	if e.freq == nil {
		e.freq = make(map[uint32]uint64)
	} else {
		clear(e.freq)
	}
	for _, s := range syms {
		e.freq[s]++
	}
	lens := codeLengths(e.freq)
	codes := canonicalize(lens)

	table := make(map[uint32]symCode, len(codes))
	for _, c := range codes {
		table[c.sym] = c
	}

	// Header: nsyms, count of distinct symbols, then (symbol, length) pairs
	// with delta-coded symbols (quantization codes cluster near the middle
	// bin, so deltas varint-pack tightly).
	hdr := e.hdr[:0]
	hdr = bitio.AppendUvarint(hdr, uint64(len(syms)))
	hdr = bitio.AppendUvarint(hdr, uint64(len(codes)))
	bySym := append(e.bySym[:0], codes...)
	sort.Slice(bySym, func(i, j int) bool { return bySym[i].sym < bySym[j].sym })
	e.bySym = bySym
	prev := uint32(0)
	for _, c := range bySym {
		hdr = bitio.AppendUvarint(hdr, uint64(c.sym-prev))
		hdr = bitio.AppendUvarint(hdr, uint64(c.len))
		prev = c.sym
	}
	e.hdr = hdr

	w := bitio.NewWriter()
	for _, s := range syms {
		c := table[s]
		w.WriteBits(c.code, uint(c.len))
	}
	body := w.Bytes()

	dst = bitio.AppendBytes(dst, hdr)
	dst = append(dst, body...)
	return dst
}

// Encode Huffman-codes syms and returns a self-contained byte blob
// (codebook header + bit stream). Decode inverts it.
func Encode(syms []uint32) []byte {
	var e Encoder
	return e.AppendEncode(nil, syms)
}

// Decode inverts Encode. It returns an error for truncated or corrupt input.
func Decode(blob []byte) ([]uint32, error) { return AppendDecode(nil, blob) }

// AppendDecode is Decode appending into dst's spare capacity, letting hot
// decompression paths reuse one symbol buffer across calls. It returns an
// error for truncated or corrupt input without over-allocating: claimed
// symbol counts are validated against the bit stream's actual size first.
func AppendDecode(dst []uint32, blob []byte) ([]uint32, error) {
	hdr, n, err := bitio.Bytes(blob)
	if err != nil {
		return nil, fmt.Errorf("huffman: reading header: %w", err)
	}
	body := blob[n:]

	nsyms, k, err := bitio.Uvarint(hdr)
	if err != nil {
		return nil, fmt.Errorf("huffman: symbol count: %w", err)
	}
	hdr = hdr[k:]
	ncodes, k, err := bitio.Uvarint(hdr)
	if err != nil {
		return nil, fmt.Errorf("huffman: code count: %w", err)
	}
	hdr = hdr[k:]
	if nsyms > 0 && ncodes == 0 {
		return nil, errors.New("huffman: nonempty stream with empty codebook")
	}
	// Every symbol costs at least one bit and every codebook entry at least
	// two header bytes, so corrupt counts cannot drive the allocations below.
	if nsyms > 8*uint64(len(body)) {
		return nil, fmt.Errorf("huffman: %d symbols claimed but bit stream holds %d bits", nsyms, 8*len(body))
	}
	if ncodes > uint64(len(hdr)) {
		return nil, fmt.Errorf("huffman: %d codebook entries claimed in a %d-byte header", ncodes, len(hdr))
	}

	lens := make(map[uint32]uint8, ncodes)
	prev := uint32(0)
	for i := uint64(0); i < ncodes; i++ {
		ds, k, err := bitio.Uvarint(hdr)
		if err != nil {
			return nil, fmt.Errorf("huffman: codebook symbol %d: %w", i, err)
		}
		hdr = hdr[k:]
		l, k, err := bitio.Uvarint(hdr)
		if err != nil {
			return nil, fmt.Errorf("huffman: codebook length %d: %w", i, err)
		}
		hdr = hdr[k:]
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		sym := prev + uint32(ds)
		lens[sym] = uint8(l)
		prev = sym
	}
	codes := canonicalize(lens)

	// Group canonical codes by length for linear-scan decoding: for each
	// length we know the first code and the symbol list, so decoding is a
	// compare per length class (lengths are few; symbol counts are large).
	type lenClass struct {
		len       uint8
		firstCode uint64
		syms      []uint32
	}
	var classes []lenClass
	for _, c := range codes {
		if len(classes) == 0 || classes[len(classes)-1].len != c.len {
			classes = append(classes, lenClass{len: c.len, firstCode: c.code})
		}
		cl := &classes[len(classes)-1]
		cl.syms = append(cl.syms, c.sym)
	}

	r := bitio.NewReader(body)
	out := dst[:0]
	if cap(out) < int(nsyms) {
		out = make([]uint32, 0, nsyms)
	}
	for uint64(len(out)) < nsyms {
		var code uint64
		var clen uint8
		matched := false
		for _, cl := range classes {
			for clen < cl.len {
				b, err := r.ReadBit()
				if err != nil {
					return nil, fmt.Errorf("huffman: bit stream truncated at symbol %d: %w", len(out), err)
				}
				code <<= 1
				if b {
					code |= 1
				}
				clen++
			}
			if off := code - cl.firstCode; code >= cl.firstCode && off < uint64(len(cl.syms)) {
				out = append(out, cl.syms[off])
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("huffman: invalid code 0b%b (len %d) at symbol %d", code, clen, len(out))
		}
	}
	return out, nil
}
