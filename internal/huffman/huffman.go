// Package huffman implements a canonical Huffman coder over uint32 symbol
// streams. It is the entropy stage of the SZ-style compressor (Sec. 2.1 of
// the TAC paper: "apply a customized Huffman coding and lossless compression
// to achieve a higher ratio").
//
// Codes are canonical: only the code length of each present symbol is
// serialized, and both sides reconstruct identical codebooks, so the header
// overhead stays small even for large quantization-bin alphabets.
//
// Both directions are table-driven. The encoder counts frequencies and
// emits codes through dense arrays whenever the alphabet is small (the
// common case: quantization codes are bounded by 2^QuantBits), falling back
// to maps for sparse 32-bit alphabets. The decoder resolves symbols through
// a primary lookup table indexed by the next TableBits bits of the stream —
// one table hit per symbol instead of a bit-by-bit walk — with a canonical
// first-code/offset path for the rare codes longer than TableBits.
package huffman

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/bitio"
)

const (
	// maxCodeLen bounds serialized code lengths so any code fits in a
	// single bitio read. Lengths beyond it are redistributed (not clamped)
	// by limitLengths, preserving prefix-freeness.
	maxCodeLen = 57

	// TableBits is the index width of the primary decode table: one
	// 2^TableBits-entry lookup resolves every code of up to TableBits
	// bits in a single probe. It is the decoder's footprint knob — each
	// pooled Decoder keeps a 2^TableBits × 8-byte table (32 KiB at 12)
	// warm across calls; codes longer than TableBits (rare by
	// construction: a code that long had a tiny frequency) take the
	// canonical first-code overflow path instead.
	TableBits = 12

	// denseAlphabet bounds the symbol range for the dense encode-side
	// arrays (frequency counts and per-symbol code tables). 2^16 covers
	// the default QuantBits=16 code space exactly; streams with larger
	// symbols use the map fallback.
	denseAlphabet = 1 << 16
)

// symFreq is one (symbol, frequency) input pair for the tree build.
type symFreq struct {
	sym  uint32
	freq uint64
}

// node is an arena-allocated tree node used during code-length
// construction. Leaves have left == -1; children always precede their
// parent in the arena.
type node struct {
	freq        uint64
	sym         uint32 // min symbol in subtree: deterministic tie-break
	depth       uint32
	left, right int32
}

// treeBuilder owns the node arena and heap scratch for Huffman tree
// construction, so repeated builds stop allocating.
type treeBuilder struct {
	nodes []node
	heap  []int32
}

func (tb *treeBuilder) less(a, b int32) bool {
	na, nb := &tb.nodes[a], &tb.nodes[b]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	// Deterministic tie-break keeps encodings reproducible across runs:
	// subtrees alive in the heap are disjoint, so (freq, sym) is a strict
	// total order and the pop sequence — hence every code length — is
	// independent of input order.
	return na.sym < nb.sym
}

func (tb *treeBuilder) siftDown(i int) {
	h := tb.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && tb.less(h[l], h[m]) {
			m = l
		}
		if r < len(h) && tb.less(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (tb *treeBuilder) siftUp(i int) {
	h := tb.heap
	for i > 0 {
		p := (i - 1) / 2
		if !tb.less(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (tb *treeBuilder) pop() int32 {
	h := tb.heap
	top := h[0]
	h[0] = h[len(h)-1]
	tb.heap = h[:len(h)-1]
	tb.siftDown(0)
	return top
}

func (tb *treeBuilder) push(i int32) {
	tb.heap = append(tb.heap, i)
	tb.siftUp(len(tb.heap) - 1)
}

// codeLengths appends per-symbol (symbol, length) pairs computed with the
// classic Huffman construction. Lengths are raw tree depths (capped at 255
// for storage); callers must run limitLengths before canonicalize.
func (tb *treeBuilder) codeLengths(dst []symCode, sf []symFreq) []symCode {
	switch len(sf) {
	case 0:
		return dst
	case 1:
		return append(dst, symCode{sym: sf[0].sym, len: 1})
	}
	nodes := tb.nodes[:0]
	for _, p := range sf {
		nodes = append(nodes, node{freq: p.freq, sym: p.sym, left: -1, right: -1})
	}
	tb.nodes = nodes
	tb.heap = tb.heap[:0]
	for i := range nodes {
		tb.heap = append(tb.heap, int32(i))
	}
	for i := len(tb.heap)/2 - 1; i >= 0; i-- {
		tb.siftDown(i)
	}
	for len(tb.heap) > 1 {
		a := tb.pop()
		b := tb.pop()
		na, nb := &tb.nodes[a], &tb.nodes[b]
		sym := na.sym
		if nb.sym < sym {
			sym = nb.sym
		}
		tb.nodes = append(tb.nodes, node{freq: na.freq + nb.freq, sym: sym, left: a, right: b})
		tb.push(int32(len(tb.nodes) - 1))
	}
	// Children precede parents in the arena, so one reverse sweep from the
	// root (always the last merge) assigns every depth without recursion —
	// no stack growth even for pathologically deep trees.
	nodes = tb.nodes
	nodes[len(nodes)-1].depth = 0
	for i := len(nodes) - 1; i >= len(sf); i-- {
		d := nodes[i].depth + 1
		nodes[nodes[i].left].depth = d
		nodes[nodes[i].right].depth = d
	}
	for i, p := range sf {
		d := nodes[i].depth
		if d > 255 {
			d = 255 // storage cap only; limitLengths redistributes next
		}
		dst = append(dst, symCode{sym: p.sym, len: uint8(d)})
	}
	return dst
}

// limitLengths enforces maxCodeLen while keeping the code set prefix-free.
// Over-long codes are clamped to maxCodeLen, which over-subscribes the
// Kraft sum; the deficit is repaid by deepening the deepest still-
// shortenable codes (smallest symbol first for determinism) until
// Σ 2^-len ≤ 1 again. This replaces the old bare clamp, which could
// produce a non-prefix-free codebook for pathologically skewed alphabets.
// Unreachable for counted streams (depth > 57 needs ~Fib(58) ≈ 6·10^11
// symbols), so real payloads are byte-identical with or without it.
func limitLengths(codes []symCode) {
	over := false
	for i := range codes {
		if codes[i].len > maxCodeLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	const full = uint64(1) << maxCodeLen
	var kraft uint64
	for i := range codes {
		if codes[i].len > maxCodeLen {
			codes[i].len = maxCodeLen
		}
		kraft += full >> codes[i].len
	}
	for kraft > full {
		best := -1
		for i := range codes {
			if codes[i].len >= maxCodeLen {
				continue
			}
			if best < 0 || codes[i].len > codes[best].len ||
				(codes[i].len == codes[best].len && codes[i].sym < codes[best].sym) {
				best = i
			}
		}
		if best < 0 {
			// Would need > 2^maxCodeLen codes; impossible for a uint32
			// alphabet, but never loop forever on a logic error.
			break
		}
		kraft -= full >> (codes[best].len + 1)
		codes[best].len++
	}
}

// symCode is one entry of a canonical codebook.
type symCode struct {
	sym  uint32
	len  uint8
	code uint64
}

// canonicalize assigns canonical codes in place: symbols sorted by
// (length, symbol) receive consecutive codes. The (length, symbol) keys
// are unique, so any comparison sort yields the same order —
// slices.SortFunc avoids the reflect-based swapping of sort.Slice.
func canonicalize(codes []symCode) []symCode {
	slices.SortFunc(codes, func(a, b symCode) int {
		if a.len != b.len {
			return int(a.len) - int(b.len)
		}
		return cmp.Compare(a.sym, b.sym)
	})
	var code uint64
	var prevLen uint8
	for i := range codes {
		code <<= codes[i].len - prevLen
		codes[i].code = code
		code++
		prevLen = codes[i].len
	}
	return codes
}

// Encoder holds reusable encoding scratch (frequency tables, the tree-
// build arena, codebooks, header buffer and the bit writer) so repeated
// Encode calls on a hot path stop allocating. The zero value is ready to
// use; an Encoder is not safe for concurrent use. Output is byte-identical
// to the package-level Encode.
type Encoder struct {
	freq    map[uint32]uint64 // sparse-alphabet frequency fallback
	dense   []uint64          // dense frequencies, indexed by symbol (all-zero between calls)
	touched []uint32          // symbols seen this call, for the sparse reset
	sf      []symFreq         // (symbol, frequency) worklist
	tb      treeBuilder
	codes   []symCode // canonical codebook scratch
	bySym   []symCode // codebook in symbol order for the header
	encLen  []uint8   // dense emit tables, indexed by symbol
	encCode []uint64
	table   map[uint32]symCode // sparse emit fallback
	hdr     []byte
	w       bitio.Writer
}

// AppendEncode Huffman-codes syms and appends the self-contained blob
// (codebook header + bit stream) to dst, returning the extended slice.
func (e *Encoder) AppendEncode(dst []byte, syms []uint32) []byte {
	var maxSym uint32
	for _, s := range syms {
		if s > maxSym {
			maxSym = s
		}
	}
	dense := len(syms) > 0 && maxSym < denseAlphabet
	sf := e.sf[:0]
	if dense {
		n := int(maxSym) + 1
		if cap(e.dense) < n {
			e.dense = make([]uint64, n)
		}
		// The dense array holds the all-zero invariant between calls
		// (restored sparsely below), so counting never pays a clear of
		// the full symbol range — with QuantBits=16 that clear used to
		// move 512 KiB per payload. Touched symbols are recorded on first
		// increment and sorted, reproducing the increasing-symbol order
		// the frequency-scan collection produced.
		fr := e.dense[:n]
		touched := e.touched[:0]
		for _, s := range syms {
			if fr[s] == 0 {
				touched = append(touched, s)
			}
			fr[s]++
		}
		slices.Sort(touched)
		for _, s := range touched {
			sf = append(sf, symFreq{sym: s, freq: fr[s]})
			fr[s] = 0
		}
		e.touched = touched[:0]
	} else if len(syms) > 0 {
		if e.freq == nil {
			e.freq = make(map[uint32]uint64)
		} else {
			clear(e.freq)
		}
		for _, s := range syms {
			e.freq[s]++
		}
		for s, f := range e.freq {
			sf = append(sf, symFreq{sym: s, freq: f})
		}
	}
	e.sf = sf

	codes := e.tb.codeLengths(e.codes[:0], sf)
	limitLengths(codes)
	codes = canonicalize(codes)
	e.codes = codes

	// Header: nsyms, count of distinct symbols, then (symbol, length) pairs
	// with delta-coded symbols (quantization codes cluster near the middle
	// bin, so deltas varint-pack tightly).
	hdr := e.hdr[:0]
	hdr = bitio.AppendUvarint(hdr, uint64(len(syms)))
	hdr = bitio.AppendUvarint(hdr, uint64(len(codes)))
	bySym := append(e.bySym[:0], codes...)
	slices.SortFunc(bySym, func(a, b symCode) int { return cmp.Compare(a.sym, b.sym) })
	e.bySym = bySym
	prev := uint32(0)
	for _, c := range bySym {
		hdr = bitio.AppendUvarint(hdr, uint64(c.sym-prev))
		hdr = bitio.AppendUvarint(hdr, uint64(c.len))
		prev = c.sym
	}
	e.hdr = hdr

	// The bit stream is written straight onto dst after the header — no
	// staging copy.
	dst = bitio.AppendBytes(dst, hdr)
	e.w.Reset(dst)
	if dense {
		n := int(maxSym) + 1
		if cap(e.encLen) < n {
			e.encLen = make([]uint8, n)
			e.encCode = make([]uint64, n)
		}
		encLen := e.encLen[:n]
		encCode := e.encCode[:n]
		for _, c := range codes {
			encLen[c.sym] = c.len
			encCode[c.sym] = c.code
		}
		// Pack whole runs of symbols into a local accumulator and hand
		// bitio one wide write per ~57 bits: typical quantization streams
		// average a few bits per symbol, so this trades ~10 WriteBits
		// calls for one. The emitted bit sequence is identical.
		var acc uint64
		var na uint
		for _, s := range syms {
			l := uint(encLen[s])
			if na+l > 57 {
				e.w.WriteBits(acc, na)
				acc, na = 0, 0
			}
			acc = acc<<l | encCode[s]
			na += l
		}
		e.w.WriteBits(acc, na)
	} else {
		if e.table == nil {
			e.table = make(map[uint32]symCode, len(codes))
		} else {
			clear(e.table)
		}
		for _, c := range codes {
			e.table[c.sym] = c
		}
		for _, s := range syms {
			c := e.table[s]
			e.w.WriteBits(c.code, uint(c.len))
		}
	}
	return e.w.Bytes()
}

// Encode Huffman-codes syms and returns a self-contained byte blob
// (codebook header + bit stream). Decode inverts it.
func Encode(syms []uint32) []byte {
	var e Encoder
	return e.AppendEncode(nil, syms)
}

// Decode inverts Encode. It returns an error for truncated or corrupt input.
func Decode(blob []byte) ([]uint32, error) { return AppendDecode(nil, blob) }

// AppendDecode is Decode appending into dst's spare capacity. One-shot
// callers pay a fresh decode table per call; hot paths should pool a
// Decoder instead.
func AppendDecode(dst []uint32, blob []byte) ([]uint32, error) {
	var d Decoder
	return d.AppendDecode(dst, blob)
}

// lutLong marks a primary-table entry whose bits are the prefix of one or
// more codes longer than the table index; decoding falls through to the
// canonical first-code path. Primary entries pack sym<<8 | len; a zero
// entry is an unassigned (invalid) code.
const lutLong = 0xff

// lutPairFlag marks a primary entry that resolves two complete codes in
// one probe (the len byte then holds the combined length; sym2 and the
// first code's own length live in the parallel lutPair table). The
// sym<<8 | len layout uses bits 0..39, so the flag sits at bit 40 — and
// the uint32 cast of e>>8 drops it when extracting sym1.
const lutPairFlag = uint64(1) << 40

// Decoder holds the reusable decode-side scratch: the parsed codebook, the
// primary lookup table and the canonical overflow tables, kept warm across
// calls so steady-state decoding allocates only the output. The zero value
// is ready to use; a Decoder is not safe for concurrent use — pool one per
// goroutine (internal/sz's Decoder engines do exactly that).
type Decoder struct {
	codes   []symCode
	lut     []uint64 // 2^k entries, k = min(maxLen, TableBits)
	lutPair []uint64 // sym2<<8 | len1 for entries with lutPairFlag
	syms    []uint32 // symbols in canonical order, for the overflow path

	// Canonical decode state for code lengths in (TableBits, maxCodeLen]:
	// at length l, codes occupy [first[l], first[l]+count[l]) and map to
	// syms[base[l]+...].
	first [maxCodeLen + 1]uint64
	base  [maxCodeLen + 1]int32
	count [maxCodeLen + 1]uint32
}

// AppendDecode decodes blob appending into dst's spare capacity. It
// returns an error for truncated or corrupt input without over-allocating:
// claimed symbol counts are validated against the bit stream's actual size
// and the codebook against the Kraft inequality before any table is built.
func (d *Decoder) AppendDecode(dst []uint32, blob []byte) ([]uint32, error) {
	hdr, n, err := bitio.Bytes(blob)
	if err != nil {
		return nil, fmt.Errorf("huffman: reading header: %w", err)
	}
	body := blob[n:]

	nsyms, k, err := bitio.Uvarint(hdr)
	if err != nil {
		return nil, fmt.Errorf("huffman: symbol count: %w", err)
	}
	hdr = hdr[k:]
	ncodes, k, err := bitio.Uvarint(hdr)
	if err != nil {
		return nil, fmt.Errorf("huffman: code count: %w", err)
	}
	hdr = hdr[k:]
	if nsyms > 0 && ncodes == 0 {
		return nil, errors.New("huffman: nonempty stream with empty codebook")
	}
	// Every symbol costs at least one bit and every codebook entry at least
	// two header bytes, so corrupt counts cannot drive the allocations below.
	if nsyms > 8*uint64(len(body)) {
		return nil, fmt.Errorf("huffman: %d symbols claimed but bit stream holds %d bits", nsyms, 8*len(body))
	}
	if ncodes > uint64(len(hdr)) {
		return nil, fmt.Errorf("huffman: %d codebook entries claimed in a %d-byte header", ncodes, len(hdr))
	}

	const full = uint64(1) << maxCodeLen
	var kraft uint64
	codes := d.codes[:0]
	prev := uint64(0)
	for i := uint64(0); i < ncodes; i++ {
		ds, k, err := bitio.Uvarint(hdr)
		if err != nil {
			return nil, fmt.Errorf("huffman: codebook symbol %d: %w", i, err)
		}
		hdr = hdr[k:]
		l, k, err := bitio.Uvarint(hdr)
		if err != nil {
			return nil, fmt.Errorf("huffman: codebook length %d: %w", i, err)
		}
		hdr = hdr[k:]
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		if i > 0 && ds == 0 {
			return nil, fmt.Errorf("huffman: duplicate codebook symbol %d", prev)
		}
		sym := prev + ds
		if ds > math.MaxUint32 || sym > math.MaxUint32 {
			return nil, errors.New("huffman: codebook symbol overflows uint32")
		}
		// A valid codebook satisfies the Kraft inequality; rejecting
		// over-subscribed length sets here keeps the table build safe.
		kraft += full >> l
		if kraft > full {
			return nil, errors.New("huffman: over-subscribed codebook")
		}
		codes = append(codes, symCode{sym: uint32(sym), len: uint8(l)})
		prev = sym
	}
	d.codes = codes

	if nsyms == 0 {
		return dst[:0], nil
	}

	codes = canonicalize(codes)
	tableBits, maxLen := d.build(codes)

	// The symbol loop runs on a local bit-reader state — accumulator,
	// valid-bit count and byte cursor — instead of a bitio.Reader, so the
	// per-symbol cost is a table load and two shifts with no method-call
	// or pointer traffic. The refill mirrors bitio.Reader.refill exactly
	// (whole-word loads with the byte tail near the end; bits of acc
	// beyond nbit mirror the bytes still at pos), and a code claiming
	// more bits than the stream holds reports the same truncation error
	// Consume used to.
	out := dst[:0]
	if cap(out) < int(nsyms) {
		out = make([]uint32, 0, nsyms)
	}
	out = out[:nsyms]
	lut := d.lut
	lutPair := d.lutPair[:len(lut)]
	// len(lut) is a power of two, so masking the probe index proves the
	// accesses in bounds — without it the variable shift below defeats
	// bounds-check elimination and every probe pays a checked branch.
	mask := uint64(len(lut) - 1)
	shift := 64 - tableBits
	var (
		acc  uint64
		nbit uint
		pos  int
	)
	for n := 0; n < int(nsyms); n++ {
		// Refill only when the primary probe could run short: the bits of
		// acc beyond nbit mirror the bytes still at pos, so the probe
		// value is the same either way and a deep codebook (large maxLen)
		// does not force a refill per symbol — short, frequent codes
		// refill once per ~(64-tableBits) consumed bits. The overflow
		// path refills again for its maxLen-bit view.
		if nbit < tableBits {
			if pos+8 <= len(body) {
				acc |= binary.BigEndian.Uint64(body[pos:]) >> nbit
				adv := (64 - nbit) >> 3
				pos += int(adv)
				nbit += adv * 8
			} else {
				for nbit <= 56 && pos < len(body) {
					acc |= uint64(body[pos]) << (56 - nbit)
					pos++
					nbit += 8
				}
			}
		}
		idx := (acc >> shift) & mask
		e := lut[idx]
		l := uint(e & 0xff)
		if l == 0 {
			return nil, fmt.Errorf("huffman: invalid code at symbol %d", n)
		}
		if l != lutLong {
			if e&lutPairFlag != 0 && n+1 < int(nsyms) {
				// Paired entry: two complete codes in one probe.
				if l > nbit {
					return nil, fmt.Errorf("huffman: bit stream truncated at symbol %d: %w", n, bitio.ErrUnexpectedEOF)
				}
				acc <<= l
				nbit -= l
				out[n] = uint32(e >> 8)
				n++
				out[n] = uint32(lutPair[idx&mask] >> 8)
				continue
			}
			if e&lutPairFlag != 0 {
				// The claimed symbol count ends between the pair: consume
				// only the first code's own length.
				l = uint(lutPair[idx&mask] & 0xff)
			}
			if l > nbit {
				return nil, fmt.Errorf("huffman: bit stream truncated at symbol %d: %w", n, bitio.ErrUnexpectedEOF)
			}
			acc <<= l
			nbit -= l
			out[n] = uint32(e >> 8)
			continue
		}
		// Overflow path: resolve codes longer than the primary table by
		// canonical (first code, offset) comparison per length.
		if nbit < maxLen {
			if pos+8 <= len(body) {
				acc |= binary.BigEndian.Uint64(body[pos:]) >> nbit
				adv := (64 - nbit) >> 3
				pos += int(adv)
				nbit += adv * 8
			} else {
				for nbit <= 56 && pos < len(body) {
					acc |= uint64(body[pos]) << (56 - nbit)
					pos++
					nbit += 8
				}
			}
		}
		v := acc >> (64 - maxLen)
		matched := false
		for cl := tableBits + 1; cl <= maxLen; cl++ {
			cnt := d.count[cl]
			if cnt == 0 {
				continue
			}
			c := v >> (maxLen - cl)
			if c < d.first[cl] {
				continue
			}
			off := c - d.first[cl]
			if off >= uint64(cnt) {
				continue
			}
			if cl > nbit {
				return nil, fmt.Errorf("huffman: bit stream truncated at symbol %d: %w", n, bitio.ErrUnexpectedEOF)
			}
			acc <<= cl
			nbit -= cl
			out[n] = d.syms[int(d.base[cl])+int(off)]
			matched = true
			break
		}
		if !matched {
			return nil, fmt.Errorf("huffman: invalid code at symbol %d", n)
		}
	}
	return out, nil
}

// build (re)fills the decoder's tables from a canonicalized codebook and
// returns the primary table's index width and the maximum code length.
// The codebook must be non-empty and satisfy Kraft (validated by the
// caller), which guarantees every fill range below stays in bounds.
func (d *Decoder) build(codes []symCode) (tableBits uint, maxLen uint) {
	maxLen = uint(codes[len(codes)-1].len)
	tableBits = maxLen
	if tableBits > TableBits {
		tableBits = TableBits
	}
	size := 1 << tableBits
	if cap(d.lut) < size {
		d.lut = make([]uint64, size)
	}
	d.lut = d.lut[:size]
	clear(d.lut)
	d.syms = d.syms[:0]
	if maxLen > TableBits {
		for i := range d.count {
			d.count[i] = 0
		}
	}
	for i, c := range codes {
		d.syms = append(d.syms, c.sym)
		cl := uint(c.len)
		if cl <= tableBits {
			entry := uint64(c.sym)<<8 | uint64(c.len)
			lo := c.code << (tableBits - cl)
			hi := lo + 1<<(tableBits-cl)
			for j := lo; j < hi; j++ {
				d.lut[j] = entry
			}
			continue
		}
		if d.count[cl] == 0 {
			d.first[cl] = c.code
			d.base[cl] = int32(i)
		}
		d.count[cl]++
		d.lut[c.code>>(cl-tableBits)] = lutLong
	}

	// Second pass: pair entries. Where the first code leaves enough index
	// bits to fully determine a second complete code, the entry consumes
	// both in one probe: quantization streams are dominated by one short
	// code (values near the prediction), so most probes then emit two
	// symbols. The paired entry keeps sym1 and the combined length and
	// sets lutPairFlag; the parallel lutPair table carries sym2 and the
	// first code's own length (needed when the claimed symbol count ends
	// between the two).
	if cap(d.lutPair) < size {
		d.lutPair = make([]uint64, size)
	}
	d.lutPair = d.lutPair[:size]
	for idx, e := range d.lut {
		l1 := uint(e & 0xff)
		if l1 == 0 || l1 == lutLong || l1 > tableBits {
			continue
		}
		idx2 := (uint(idx) << l1) & uint(size-1)
		e2 := d.lut[idx2]
		l2 := uint(e2 & 0xff)
		if e2&lutPairFlag != 0 {
			// idx2 was already paired; recover its first code's own length.
			l2 = uint(d.lutPair[idx2] & 0xff)
		}
		if l2 == 0 || l2 == lutLong || l1+l2 > tableBits {
			continue
		}
		d.lutPair[idx] = uint64(uint32(e2>>8))<<8 | uint64(l1)
		d.lut[idx] = (e &^ 0xff) | uint64(l1+l2) | lutPairFlag
	}
	return tableBits, maxLen
}
