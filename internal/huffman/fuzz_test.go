package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// huffFuzzSeeds builds structurally plausible blobs — valid encodings of
// several distribution shapes plus handcrafted malformed codebooks — so
// the fuzzer starts near the interesting surfaces: the codebook validator,
// the LUT build, and the overflow decode path. The same seeds are checked
// in under testdata/fuzz for deterministic CI runs.
func huffFuzzSeeds() [][]byte {
	var seeds [][]byte

	seeds = append(seeds, Encode(nil))
	seeds = append(seeds, Encode([]uint32{7, 7, 7, 7}))
	seeds = append(seeds, Encode([]uint32{0, 1, 2, 0, 1, 0}))

	rng := rand.New(rand.NewSource(21))
	skew := make([]uint32, 4096)
	for i := range skew {
		v := uint32(32768)
		for rng.Intn(2) == 0 && v < 32790 {
			v++
		}
		skew[i] = v
	}
	seeds = append(seeds, Encode(skew))

	wide := make([]uint32, 4096)
	for i := range wide {
		wide[i] = uint32(rng.Intn(9000)) // deep codebook: overflow decode path
	}
	seeds = append(seeds, Encode(wide))

	// Malformed codebooks, framed well enough to reach the validator.
	mk := func(nsyms uint64, pairs [][2]uint64, body []byte) []byte {
		var hdr []byte
		hdr = bitio.AppendUvarint(hdr, nsyms)
		hdr = bitio.AppendUvarint(hdr, uint64(len(pairs)))
		for _, p := range pairs {
			hdr = bitio.AppendUvarint(hdr, p[0])
			hdr = bitio.AppendUvarint(hdr, p[1])
		}
		return append(bitio.AppendBytes(nil, hdr), body...)
	}
	seeds = append(seeds,
		mk(4, [][2]uint64{{0, 1}, {1, 1}, {1, 1}}, []byte{0xaa}), // over-subscribed
		mk(4, [][2]uint64{{3, 2}, {0, 2}}, []byte{0xaa}),         // duplicate symbol
		mk(4, [][2]uint64{{1 << 33, 2}}, []byte{0xaa}),           // symbol overflow
		mk(8, [][2]uint64{{0, 57}, {1, 57}}, []byte{0xff, 0xff}), // max-length codes
		mk(100, [][2]uint64{{5, 3}}, []byte{0x00}),               // count beyond stream
	)
	return seeds
}

// FuzzAppendDecode fuzzes the full decode surface: header framing, the
// codebook validator (Kraft, duplicates, overflow), the LUT build and both
// decode paths. Corrupt input must error, never panic or over-allocate;
// successful decodes must survive a re-encode/re-decode round trip and be
// reproducible through a reused Decoder.
func FuzzAppendDecode(f *testing.F) {
	for _, s := range huffFuzzSeeds() {
		f.Add(s)
		if len(s) > 6 {
			mut := append([]byte(nil), s...)
			mut[len(mut)/2] ^= 0x11
			f.Add(mut)
			f.Add(s[:len(s)-2]) // truncated tail
		}
	}
	var pooled Decoder
	var scratch []uint32
	f.Fuzz(func(t *testing.T, data []byte) {
		syms, err := AppendDecode(nil, data)
		if err != nil {
			return
		}
		if len(syms) > 8*len(data) {
			t.Fatalf("decoded %d symbols from %d bytes: over-allocation guard failed", len(syms), len(data))
		}
		// A pooled decoder carrying tables from previous inputs must agree.
		var perr error
		scratch, perr = pooled.AppendDecode(scratch[:0], data)
		if perr != nil {
			t.Fatalf("pooled decoder rejected input the fresh decoder accepted: %v", perr)
		}
		if len(scratch) != len(syms) {
			t.Fatalf("pooled decoder: %d symbols, fresh: %d", len(scratch), len(syms))
		}
		for i := range syms {
			if scratch[i] != syms[i] {
				t.Fatalf("pooled decoder diverges at symbol %d", i)
			}
		}
		// Decoded symbols must survive a canonical re-encode round trip.
		re := Encode(syms)
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of decoded stream does not decode: %v", err)
		}
		if len(back) != len(syms) {
			t.Fatalf("re-encode round trip: %d symbols, want %d", len(back), len(syms))
		}
		for i := range syms {
			if back[i] != syms[i] {
				t.Fatalf("re-encode round trip diverges at symbol %d", i)
			}
		}
		_ = bytes.Equal(re, data) // blobs need not match (non-canonical headers decode too)
	})
}
