package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func roundTrip(t *testing.T, syms []uint32) {
	t.Helper()
	blob := Encode(syms)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(syms) {
		t.Fatalf("decoded %d symbols, want %d", len(got), len(syms))
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}
}

func TestEmpty(t *testing.T)        { roundTrip(t, nil) }
func TestSingleSymbol(t *testing.T) { roundTrip(t, []uint32{7, 7, 7, 7, 7}) }
func TestTwoSymbols(t *testing.T)   { roundTrip(t, []uint32{1, 2, 1, 1, 2}) }

func TestSkewedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]uint32, 100000)
	for i := range syms {
		// Geometric-ish distribution, like quantization codes.
		v := uint32(32768)
		for rng.Intn(2) == 0 && v < 32790 {
			v++
		}
		syms[i] = v
	}
	blob := Encode(syms)
	if len(blob) >= 2*len(syms) {
		t.Fatalf("skewed stream did not compress: %d bytes for %d symbols", len(blob), len(syms))
	}
	roundTrip(t, syms)
}

func TestUniformAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = uint32(rng.Intn(256))
	}
	roundTrip(t, syms)
}

func TestLargeSymbolValues(t *testing.T) {
	roundTrip(t, []uint32{0, 1 << 30, 42, 1<<31 + 5, 42, 0})
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, alphabet uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alphabet)%64 + 1
		syms := make([]uint32, int(n)%2048)
		for i := range syms {
			syms[i] = uint32(rng.Intn(a))
		}
		blob := Encode(syms)
		got, err := Decode(blob)
		if err != nil || len(got) != len(syms) {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	syms := []uint32{1, 2, 3, 4, 5, 1, 2, 3}
	blob := Encode(syms)
	// Truncations must error, never panic or return wrong-length output.
	for cut := 0; cut < len(blob); cut++ {
		if got, err := Decode(blob[:cut]); err == nil && len(got) == len(syms) {
			// A prefix that still decodes fully would be a framing bug.
			same := true
			for i := range syms {
				if got[i] != syms[i] {
					same = false
					break
				}
			}
			if same && cut < len(blob)-1 {
				t.Fatalf("truncation to %d bytes still decodes fully", cut)
			}
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should error")
	}
}

// kraftSum returns Σ 2^(maxCodeLen - len) over the codebook, scaled so a
// complete prefix-free code sums to exactly 1<<maxCodeLen.
func kraftSum(codes []symCode) uint64 {
	var k uint64
	for _, c := range codes {
		k += (uint64(1) << maxCodeLen) >> c.len
	}
	return k
}

// assertPrefixFree verifies no canonical code is a prefix of another.
func assertPrefixFree(t *testing.T, codes []symCode) {
	t.Helper()
	for i := range codes {
		if codes[i].code >= 1<<codes[i].len {
			t.Fatalf("code %d: %b overflows its length %d", i, codes[i].code, codes[i].len)
		}
		for j := i + 1; j < len(codes); j++ {
			a, b := codes[i], codes[j]
			if a.len > b.len {
				a, b = b, a
			}
			if b.code>>(b.len-a.len) == a.code {
				t.Fatalf("code %b/%d is a prefix of %b/%d", a.code, a.len, b.code, b.len)
			}
		}
	}
}

// TestLimitLengthsAdversarial feeds the tree builder a Fibonacci frequency
// ladder — the classic worst case, driving raw Huffman depths far past
// maxCodeLen — and checks the redistributed lengths are limited, Kraft-
// valid and prefix-free. The old implementation clamped depths in place,
// which broke prefix-freeness exactly here.
func TestLimitLengthsAdversarial(t *testing.T) {
	sf := make([]symFreq, 90)
	a, b := uint64(1), uint64(1)
	for i := range sf {
		sf[i] = symFreq{sym: uint32(i), freq: a}
		a, b = b, a+b
	}
	var tb treeBuilder
	raw := tb.codeLengths(nil, sf)
	deep := false
	for _, c := range raw {
		if c.len > maxCodeLen {
			deep = true
		}
	}
	if !deep {
		t.Fatal("adversarial distribution did not exceed maxCodeLen; test is vacuous")
	}
	limitLengths(raw)
	for _, c := range raw {
		if c.len == 0 || c.len > maxCodeLen {
			t.Fatalf("symbol %d: length %d outside [1,%d]", c.sym, c.len, maxCodeLen)
		}
	}
	if k := kraftSum(raw); k > 1<<maxCodeLen {
		t.Fatalf("limited lengths over-subscribed: kraft %d > %d", k, uint64(1)<<maxCodeLen)
	}
	assertPrefixFree(t, canonicalize(raw))
}

// TestCodeLengthsOrderInvariant checks the tree build is a pure function
// of the frequency multiset: the dense path feeds symbols in ascending
// order and the map fallback in random order, and both must produce the
// same codebook (this is what keeps payloads byte-identical).
func TestCodeLengthsOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sf := make([]symFreq, 257)
	for i := range sf {
		sf[i] = symFreq{sym: uint32(i * 3), freq: uint64(rng.Intn(50) + 1)}
	}
	var tb treeBuilder
	ref := canonicalize(tb.codeLengths(nil, sf))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(sf), func(i, j int) { sf[i], sf[j] = sf[j], sf[i] })
		got := canonicalize(tb.codeLengths(nil, sf))
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d codes, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d code %d: %+v != %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestLongCodesOverflowPath round-trips a stream whose codebook is deeper
// than the primary decode table, so symbols resolve through the canonical
// first-code overflow path as well as the LUT.
func TestLongCodesOverflowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var syms []uint32
	// Zipf-ish: a few very hot symbols (short codes) plus a long tail of
	// thousands of rare ones (codes well past TableBits bits).
	for i := 0; i < 60000; i++ {
		syms = append(syms, uint32(rng.Intn(8)))
	}
	for i := 0; i < 10000; i++ {
		syms = append(syms, uint32(8+rng.Intn(12000)))
	}
	rng.Shuffle(len(syms), func(i, j int) { syms[i], syms[j] = syms[j], syms[i] })

	var e Encoder
	blob := e.AppendEncode(nil, syms)
	maxLen := e.codes[len(e.codes)-1].len
	if maxLen <= TableBits {
		t.Fatalf("max code length %d does not exceed TableBits=%d; test is vacuous", maxLen, TableBits)
	}
	roundTrip(t, syms)
	var d Decoder
	got, err := d.AppendDecode(nil, blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}
}

// TestDecoderReuse interleaves decodes of different codebooks (shallow,
// deep, single-symbol) through one pooled Decoder: stale tables from a
// previous call must never leak into the next.
func TestDecoderReuse(t *testing.T) {
	streams := [][]uint32{
		{5, 5, 5, 5},
		{1, 2, 3, 1, 2, 1},
		nil,
		{70000, 1, 70000, 2, 1 << 30},
	}
	rng := rand.New(rand.NewSource(13))
	wide := make([]uint32, 30000)
	for i := range wide {
		wide[i] = uint32(rng.Intn(9000))
	}
	streams = append(streams, wide)

	blobs := make([][]byte, len(streams))
	for i, s := range streams {
		blobs[i] = Encode(s)
	}
	var d Decoder
	var out []uint32
	for round := 0; round < 3; round++ {
		for i, s := range streams {
			var err error
			out, err = d.AppendDecode(out[:0], blobs[i])
			if err != nil {
				t.Fatalf("round %d stream %d: %v", round, i, err)
			}
			if len(out) != len(s) {
				t.Fatalf("round %d stream %d: %d symbols, want %d", round, i, len(out), len(s))
			}
			for j := range s {
				if out[j] != s[j] {
					t.Fatalf("round %d stream %d symbol %d: got %d, want %d", round, i, j, out[j], s[j])
				}
			}
		}
	}
}

// corruptBlob assembles a syntactically framed blob from a hand-built
// codebook: pairs are (deltaSym, len) varints, body is raw bit-stream
// bytes.
func corruptBlob(nsyms uint64, pairs [][2]uint64, body []byte) []byte {
	var hdr []byte
	hdr = bitio.AppendUvarint(hdr, nsyms)
	hdr = bitio.AppendUvarint(hdr, uint64(len(pairs)))
	for _, p := range pairs {
		hdr = bitio.AppendUvarint(hdr, p[0])
		hdr = bitio.AppendUvarint(hdr, p[1])
	}
	blob := bitio.AppendBytes(nil, hdr)
	return append(blob, body...)
}

// TestMalformedCodebooks pins the decoder's rejection of structurally
// invalid codebooks: over-subscribed length sets (which would break the
// table build), duplicate symbols, symbol overflow, and over-long codes.
func TestMalformedCodebooks(t *testing.T) {
	cases := []struct {
		name string
		blob []byte
	}{
		{"over-subscribed", corruptBlob(4, [][2]uint64{{0, 1}, {1, 1}, {1, 1}}, []byte{0xaa})},
		{"duplicate symbol", corruptBlob(4, [][2]uint64{{3, 2}, {0, 2}}, []byte{0xaa})},
		{"symbol overflow", corruptBlob(4, [][2]uint64{{1 << 33, 2}}, []byte{0xaa})},
		{"delta overflow", corruptBlob(4, [][2]uint64{{1 << 31, 2}, {1 << 31, 2}, {1 << 31, 3}}, []byte{0xaa})},
		{"zero length", corruptBlob(4, [][2]uint64{{0, 0}}, []byte{0xaa})},
		{"over-long length", corruptBlob(4, [][2]uint64{{0, 58}}, []byte{0xaa})},
	}
	for _, c := range cases {
		if _, err := Decode(c.blob); err == nil {
			t.Errorf("%s: Decode accepted a malformed codebook", c.name)
		}
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	// A highly repetitive stream should compress far below 4 bytes/symbol.
	syms := make([]uint32, 65536)
	for i := range syms {
		syms[i] = uint32(i % 3)
	}
	blob := Encode(syms)
	if len(blob) > len(syms)/2 {
		t.Fatalf("3-symbol stream took %d bytes for %d symbols", len(blob), len(syms))
	}
}
