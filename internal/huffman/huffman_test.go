package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, syms []uint32) {
	t.Helper()
	blob := Encode(syms)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(syms) {
		t.Fatalf("decoded %d symbols, want %d", len(got), len(syms))
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}
}

func TestEmpty(t *testing.T)        { roundTrip(t, nil) }
func TestSingleSymbol(t *testing.T) { roundTrip(t, []uint32{7, 7, 7, 7, 7}) }
func TestTwoSymbols(t *testing.T)   { roundTrip(t, []uint32{1, 2, 1, 1, 2}) }

func TestSkewedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]uint32, 100000)
	for i := range syms {
		// Geometric-ish distribution, like quantization codes.
		v := uint32(32768)
		for rng.Intn(2) == 0 && v < 32790 {
			v++
		}
		syms[i] = v
	}
	blob := Encode(syms)
	if len(blob) >= 2*len(syms) {
		t.Fatalf("skewed stream did not compress: %d bytes for %d symbols", len(blob), len(syms))
	}
	roundTrip(t, syms)
}

func TestUniformAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = uint32(rng.Intn(256))
	}
	roundTrip(t, syms)
}

func TestLargeSymbolValues(t *testing.T) {
	roundTrip(t, []uint32{0, 1 << 30, 42, 1<<31 + 5, 42, 0})
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, alphabet uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alphabet)%64 + 1
		syms := make([]uint32, int(n)%2048)
		for i := range syms {
			syms[i] = uint32(rng.Intn(a))
		}
		blob := Encode(syms)
		got, err := Decode(blob)
		if err != nil || len(got) != len(syms) {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	syms := []uint32{1, 2, 3, 4, 5, 1, 2, 3}
	blob := Encode(syms)
	// Truncations must error, never panic or return wrong-length output.
	for cut := 0; cut < len(blob); cut++ {
		if got, err := Decode(blob[:cut]); err == nil && len(got) == len(syms) {
			// A prefix that still decodes fully would be a framing bug.
			same := true
			for i := range syms {
				if got[i] != syms[i] {
					same = false
					break
				}
			}
			if same && cut < len(blob)-1 {
				t.Fatalf("truncation to %d bytes still decodes fully", cut)
			}
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) should error")
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	// A highly repetitive stream should compress far below 4 bytes/symbol.
	syms := make([]uint32, 65536)
	for i := range syms {
		syms[i] = uint32(i % 3)
	}
	blob := Encode(syms)
	if len(blob) > len(syms)/2 {
		t.Fatalf("3-symbol stream took %d bytes for %d symbols", len(blob), len(syms))
	}
}
