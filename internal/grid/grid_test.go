package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimsIndexCoordsInverse(t *testing.T) {
	d := Dims{X: 5, Y: 7, Z: 3}
	for i := 0; i < d.Count(); i++ {
		x, y, z := d.Coords(i)
		if !d.Contains(x, y, z) {
			t.Fatalf("Coords(%d) = (%d,%d,%d) outside grid", i, x, y, z)
		}
		if j := d.Index(x, y, z); j != i {
			t.Fatalf("Index(Coords(%d)) = %d", i, j)
		}
	}
}

func TestDimsHelpers(t *testing.T) {
	d := Dims{X: 8, Y: 8, Z: 8}
	if !d.IsCube() {
		t.Fatal("8x8x8 should be a cube")
	}
	if (Dims{X: 8, Y: 8, Z: 4}).IsCube() {
		t.Fatal("8x8x4 is not a cube")
	}
	if got := d.Scale(2); got != (Dims{16, 16, 16}) {
		t.Fatalf("Scale: %v", got)
	}
	if got := (Dims{X: 9, Y: 8, Z: 7}).Div(4); got != (Dims{3, 2, 2}) {
		t.Fatalf("Div rounds up: %v", got)
	}
	if d.String() != "8x8x8" {
		t.Fatalf("String: %q", d.String())
	}
}

func TestExtractSetRegionRoundTrip(t *testing.T) {
	d := Dims{X: 10, Y: 12, Z: 8}
	g := New[float64](d)
	rng := rand.New(rand.NewSource(1))
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	r := Region{X0: 2, Y0: 3, Z0: 1, X1: 9, Y1: 11, Z1: 6}
	sub := g.Extract(r)
	if sub.Dim != r.Dims() {
		t.Fatalf("extracted dims %v, want %v", sub.Dim, r.Dims())
	}
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			for z := r.Z0; z < r.Z1; z++ {
				if sub.At(x-r.X0, y-r.Y0, z-r.Z0) != g.At(x, y, z) {
					t.Fatalf("extract mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
	out := New[float64](d)
	out.SetRegion(r, sub.Data)
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			for z := r.Z0; z < r.Z1; z++ {
				if out.At(x, y, z) != g.At(x, y, z) {
					t.Fatalf("set mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestFillRegion(t *testing.T) {
	g := New[float32](Dims{X: 4, Y: 4, Z: 4})
	g.FillRegion(Region{X0: 1, Y0: 1, Z0: 1, X1: 3, Y1: 3, Z1: 3}, 7)
	if g.At(0, 0, 0) != 0 || g.At(1, 1, 1) != 7 || g.At(2, 2, 2) != 7 || g.At(3, 3, 3) != 0 {
		t.Fatal("FillRegion wrote wrong cells")
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{X0: -2, Y0: 0, Z0: 3, X1: 100, Y1: 4, Z1: 5}
	c := r.Intersect(Dims{X: 8, Y: 8, Z: 8})
	if c.X0 != 0 || c.X1 != 8 || c.Y1 != 4 || c.Z0 != 3 {
		t.Fatalf("Intersect: %+v", c)
	}
	if (Region{X0: 3, X1: 3, Y1: 1, Z1: 1}).Empty() != true {
		t.Fatal("degenerate region should be empty")
	}
	if RegionOf(Dims{X: 2, Y: 3, Z: 4}).Count() != 24 {
		t.Fatal("RegionOf count")
	}
}

func TestUpsampleDownsampleInverse(t *testing.T) {
	g := New[float64](Dims{X: 4, Y: 4, Z: 4})
	rng := rand.New(rand.NewSource(2))
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	// Downsample(Upsample(g, f), f) == g exactly (mean of f³ copies).
	up := g.Upsample(2)
	down := up.Downsample(2)
	if MaxAbsDiff(g, down) > 1e-12 {
		t.Fatalf("down(up(g)) != g: %v", MaxAbsDiff(g, down))
	}
	// Upsample replicates.
	if up.At(3, 3, 3) != g.At(1, 1, 1) {
		t.Fatal("upsample did not replicate")
	}
}

func TestDownsampleAverages(t *testing.T) {
	g := New[float64](Dims{X: 2, Y: 2, Z: 2})
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	d := g.Downsample(2)
	if d.Dim.Count() != 1 || d.Data[0] != 3.5 {
		t.Fatalf("mean of 0..7 should be 3.5, got %v", d.Data[0])
	}
}

func TestMinMaxMean(t *testing.T) {
	g := New[float32](Dims{X: 2, Y: 2, Z: 1})
	copy(g.Data, []float32{3, -1, 7, 5})
	lo, hi := g.MinMax()
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	if g.Mean() != 3.5 {
		t.Fatalf("Mean = %v", g.Mean())
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice should panic on length mismatch")
		}
	}()
	FromSlice(Dims{X: 2, Y: 2, Z: 2}, make([]float64, 7))
}

func TestMaskBasics(t *testing.T) {
	m := NewMask(Dims{X: 4, Y: 4, Z: 4})
	if m.Count() != 0 || m.Density() != 0 {
		t.Fatal("new mask should be empty")
	}
	m.Set(1, 2, 3, true)
	if !m.At(1, 2, 3) || m.Count() != 1 {
		t.Fatal("Set/At broken")
	}
	m.Fill(true)
	if m.Density() != 1 {
		t.Fatal("Fill(true) should give density 1")
	}
	m.FillRegion(Region{X0: 0, Y0: 0, Z0: 0, X1: 2, Y1: 4, Z1: 4}, false)
	if m.Count() != 32 {
		t.Fatalf("FillRegion(false): count %d, want 32", m.Count())
	}
	if m.CountRegion(Region{X0: 0, Y0: 0, Z0: 0, X1: 4, Y1: 4, Z1: 4}) != 32 {
		t.Fatal("CountRegion mismatch")
	}
}

func TestSumTableMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dims{X: rng.Intn(7) + 1, Y: rng.Intn(7) + 1, Z: rng.Intn(7) + 1}
		m := NewMask(d)
		for i := 0; i < m.Len(); i++ {
			m.SetIndex(i, rng.Intn(2) == 0)
		}
		st := NewSumTable(m)
		for trial := 0; trial < 20; trial++ {
			x0, x1 := rng.Intn(d.X+1), rng.Intn(d.X+1)
			y0, y1 := rng.Intn(d.Y+1), rng.Intn(d.Y+1)
			z0, z1 := rng.Intn(d.Z+1), rng.Intn(d.Z+1)
			if x0 > x1 {
				x0, x1 = x1, x0
			}
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			if z0 > z1 {
				z0, z1 = z1, z0
			}
			r := Region{X0: x0, Y0: y0, Z0: z0, X1: x1, Y1: y1, Z1: z1}
			if st.Count(r) != int64(m.CountRegion(r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSumTableFullEmpty(t *testing.T) {
	m := NewMask(Dims{X: 4, Y: 4, Z: 4})
	m.FillRegion(Region{X1: 2, Y1: 4, Z1: 4}, true)
	st := NewSumTable(m)
	if !st.Full(Region{X1: 2, Y1: 4, Z1: 4}) {
		t.Fatal("filled half should be Full")
	}
	if st.Full(Region{X1: 3, Y1: 4, Z1: 4}) {
		t.Fatal("partly-filled region is not Full")
	}
	if !st.EmptyRegion(Region{X0: 2, X1: 4, Y1: 4, Z1: 4}) {
		t.Fatal("unfilled half should be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New[float32](Dims{X: 2, Y: 2, Z: 2})
	g.Fill(1)
	c := g.Clone()
	c.Fill(2)
	if g.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	m := NewMask(Dims{X: 2, Y: 2, Z: 2})
	mc := m.Clone()
	mc.Fill(true)
	if m.Count() != 0 {
		t.Fatal("Mask.Clone shares storage")
	}
}

func TestRegionClip(t *testing.T) {
	a := Region{X0: 1, Y0: 2, Z0: 3, X1: 8, Y1: 9, Z1: 10}
	b := Region{X0: 4, Y0: 0, Z0: 5, X1: 12, Y1: 6, Z1: 7}
	got := a.Clip(b)
	want := Region{X0: 4, Y0: 2, Z0: 5, X1: 8, Y1: 6, Z1: 7}
	if got != want {
		t.Fatalf("Clip = %v, want %v", got, want)
	}
	if got != b.Clip(a) {
		t.Fatal("Clip is not symmetric")
	}
	if !a.Clip(Region{X0: 20, X1: 22, Y1: 1, Z1: 1}).Empty() {
		t.Fatal("disjoint regions should clip to empty")
	}
}

// TestCopyRegionOverlap scatters blocks into an ROI buffer and checks
// every cell against a reference assembled through a full-size grid.
func TestCopyRegionOverlap(t *testing.T) {
	d := Dims{X: 8, Y: 8, Z: 8}
	full := New[float32](d)
	for i := range full.Data {
		full.Data[i] = float32(i)
	}
	roi := Region{X0: 2, Y0: 3, Z0: 1, X1: 7, Y1: 8, Z1: 6}
	// Assemble the ROI from 4x4x4 blocks of the full grid.
	got := make([]float32, roi.Count())
	for bx := 0; bx < 2; bx++ {
		for by := 0; by < 2; by++ {
			for bz := 0; bz < 2; bz++ {
				br := Region{
					X0: bx * 4, Y0: by * 4, Z0: bz * 4,
					X1: bx*4 + 4, Y1: by*4 + 4, Z1: bz*4 + 4,
				}
				block := full.Extract(br)
				CopyRegionOverlap(got, roi, block.Data, br)
			}
		}
	}
	want := make([]float32, roi.Count())
	full.CopyRegionTo(roi, want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: got %g, want %g", i, got[i], want[i])
		}
	}
	// A source entirely outside the ROI must leave dst untouched.
	before := append([]float32(nil), got...)
	outside := New[float32](Dims{X: 1, Y: 1, Z: 1})
	outside.Data[0] = 999
	CopyRegionOverlap(got, roi, outside.Data, Region{X0: 7, Y0: 0, Z0: 0, X1: 8, Y1: 1, Z1: 1})
	for i := range got {
		if got[i] != before[i] {
			t.Fatalf("disjoint copy mutated cell %d", i)
		}
	}
}
