package grid

import (
	"math/rand"
	"testing"
)

// refMask is a plain []bool model the word-packed implementation is
// checked against.
type refMask struct {
	d    Dims
	bits []bool
}

func randomPair(seed int64) (*Mask, *refMask) {
	rng := rand.New(rand.NewSource(seed))
	d := Dims{X: rng.Intn(9) + 1, Y: rng.Intn(9) + 1, Z: rng.Intn(20) + 1}
	m := NewMask(d)
	ref := &refMask{d: d, bits: make([]bool, d.Count())}
	for i := range ref.bits {
		v := rng.Intn(2) == 0
		ref.bits[i] = v
		m.SetIndex(i, v)
	}
	return m, ref
}

func TestMaskMatchesBoolModel(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m, ref := randomPair(seed)
		rng := rand.New(rand.NewSource(seed + 1000))

		wantCount := 0
		for i, b := range ref.bits {
			if m.AtIndex(i) != b {
				t.Fatalf("seed %d: bit %d = %v, want %v", seed, i, m.AtIndex(i), b)
			}
			if b {
				wantCount++
			}
		}
		if m.Count() != wantCount {
			t.Fatalf("seed %d: Count %d, want %d", seed, m.Count(), wantCount)
		}
		occ := m.OccupiedIndices()
		if len(occ) != wantCount {
			t.Fatalf("seed %d: %d occupied indices, want %d", seed, len(occ), wantCount)
		}
		for k := 1; k < len(occ); k++ {
			if occ[k] <= occ[k-1] {
				t.Fatalf("seed %d: OccupiedIndices not strictly ascending at %d", seed, k)
			}
		}
		for _, i := range occ {
			if !ref.bits[i] {
				t.Fatalf("seed %d: OccupiedIndices reported clear bit %d", seed, i)
			}
		}
		bools := m.Bools()
		for i := range bools {
			if bools[i] != ref.bits[i] {
				t.Fatalf("seed %d: Bools()[%d] mismatch", seed, i)
			}
		}

		// Region fill + count against the model.
		for trial := 0; trial < 10; trial++ {
			r := Region{
				X0: rng.Intn(ref.d.X + 1), Y0: rng.Intn(ref.d.Y + 1), Z0: rng.Intn(ref.d.Z + 1),
				X1: rng.Intn(ref.d.X + 1), Y1: rng.Intn(ref.d.Y + 1), Z1: rng.Intn(ref.d.Z + 1),
			}
			if r.X0 > r.X1 {
				r.X0, r.X1 = r.X1, r.X0
			}
			if r.Y0 > r.Y1 {
				r.Y0, r.Y1 = r.Y1, r.Y0
			}
			if r.Z0 > r.Z1 {
				r.Z0, r.Z1 = r.Z1, r.Z0
			}
			wantN := 0
			for x := r.X0; x < r.X1; x++ {
				for y := r.Y0; y < r.Y1; y++ {
					for z := r.Z0; z < r.Z1; z++ {
						if ref.bits[ref.d.Index(x, y, z)] {
							wantN++
						}
					}
				}
			}
			if got := m.CountRegion(r); got != wantN {
				t.Fatalf("seed %d: CountRegion(%v) = %d, want %d", seed, r, got, wantN)
			}
			v := rng.Intn(2) == 0
			m.FillRegion(r, v)
			for x := r.X0; x < r.X1; x++ {
				for y := r.Y0; y < r.Y1; y++ {
					for z := r.Z0; z < r.Z1; z++ {
						ref.bits[ref.d.Index(x, y, z)] = v
					}
				}
			}
			for i, b := range ref.bits {
				if m.AtIndex(i) != b {
					t.Fatalf("seed %d: after FillRegion(%v,%v) bit %d mismatch", seed, r, v, i)
				}
			}
		}
	}
}

func TestMaskPackedRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m, _ := randomPair(seed)
		packed := m.AppendPacked(nil)
		if len(packed) != m.PackedLen() {
			t.Fatalf("seed %d: packed %d bytes, want %d", seed, len(packed), m.PackedLen())
		}
		// Bit i must land at byte i/8, bit i%8 — the on-disk layout every
		// container and .amr snapshot already uses.
		for i := 0; i < m.Len(); i++ {
			if (packed[i/8]&(1<<(i%8)) != 0) != m.AtIndex(i) {
				t.Fatalf("seed %d: packed bit %d mismatch", seed, i)
			}
		}
		back := NewMask(m.Dim)
		if err := back.SetPacked(packed); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.Len(); i++ {
			if back.AtIndex(i) != m.AtIndex(i) {
				t.Fatalf("seed %d: round-trip bit %d mismatch", seed, i)
			}
		}
		if err := back.SetPacked(packed[:max(len(packed)-1, 0)]); err == nil && len(packed) > 0 {
			t.Fatalf("seed %d: SetPacked accepted short input", seed)
		}
		// Nonzero padding bits past Len() must be masked off, keeping
		// Count() honest.
		if m.Len()%8 != 0 {
			dirty := append([]byte(nil), packed...)
			dirty[len(dirty)-1] |= 0x80 << 0 // may or may not be a padding bit
			dirty[len(dirty)-1] |= ^byte(0) << (m.Len() % 8)
			if err := back.SetPacked(dirty); err != nil {
				t.Fatal(err)
			}
			if back.Count() != m.Count() {
				t.Fatalf("seed %d: padding bits leaked into Count: %d vs %d", seed, back.Count(), m.Count())
			}
		}
	}
}

func TestMaskFillAndAnd(t *testing.T) {
	d := Dims{X: 3, Y: 5, Z: 7} // 105 bits: exercises a partial tail word
	m := NewMask(d)
	m.Fill(true)
	if m.Count() != d.Count() {
		t.Fatalf("Fill(true) count %d, want %d", m.Count(), d.Count())
	}
	if m.Density() != 1 {
		t.Fatalf("density %v, want 1", m.Density())
	}
	other := NewMask(d)
	other.FillRegion(Region{X1: 2, Y1: 5, Z1: 7}, true)
	m.And(other)
	if m.Count() != other.Count() {
		t.Fatalf("And: count %d, want %d", m.Count(), other.Count())
	}
	m.Fill(false)
	if m.Count() != 0 {
		t.Fatalf("Fill(false) count %d", m.Count())
	}
	clone := other.Clone()
	clone.SetIndex(0, !clone.AtIndex(0))
	if clone.AtIndex(0) == other.AtIndex(0) {
		t.Fatal("Clone shares backing words")
	}
	m.CopyFrom(other)
	if m.Count() != other.Count() {
		t.Fatal("CopyFrom did not copy")
	}
}
