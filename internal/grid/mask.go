package grid

import (
	"fmt"
	"math/bits"
)

// Mask is a dense boolean occupancy grid, used at unit-block granularity to
// record which blocks of an AMR level hold valid data. Bits are stored
// word-packed (64 per uint64, linear index order, LSB first within each
// word), so Count/Density are popcounts and whole-mask operations move 64
// bits per instruction.
type Mask struct {
	Dim   Dims
	words []uint64
}

// NewMask allocates an all-false mask.
func NewMask(d Dims) *Mask {
	return &Mask{Dim: d, words: make([]uint64, (d.Count()+63)/64)}
}

// Len returns the number of bits in the mask (Dim.Count()).
func (m *Mask) Len() int { return m.Dim.Count() }

// At reports the bit at (x,y,z).
func (m *Mask) At(x, y, z int) bool { return m.AtIndex(m.Dim.Index(x, y, z)) }

// Set stores v at (x,y,z).
func (m *Mask) Set(x, y, z int, v bool) { m.SetIndex(m.Dim.Index(x, y, z), v) }

// AtIndex reports the bit at linear index i.
func (m *Mask) AtIndex(i int) bool { return m.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetIndex stores v at linear index i.
func (m *Mask) SetIndex(i int, v bool) {
	if v {
		m.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		m.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Words exposes the packed backing store (shared, not copied). The tail
// bits past Len() are always zero.
func (m *Mask) Words() []uint64 { return m.words }

// clearTail zeroes the bits past Len() in the final word, preserving the
// popcount invariant after whole-word writes.
func (m *Mask) clearTail() {
	if n := m.Len(); n&63 != 0 && len(m.words) > 0 {
		m.words[len(m.words)-1] &= (1 << (uint(n) & 63)) - 1
	}
}

// Clone returns a deep copy.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.Dim)
	copy(out.words, m.words)
	return out
}

// CopyFrom overwrites m's bits with src's. The dims must match.
func (m *Mask) CopyFrom(src *Mask) {
	if m.Dim != src.Dim {
		panic(fmt.Sprintf("grid: mask dims %v != %v", m.Dim, src.Dim))
	}
	copy(m.words, src.words)
}

// Equal reports whether m and other have the same dims and the same bits.
// The archive's temporal delta mode uses it to decide whether two
// snapshots share an AMR structure at a level (delta frames are only
// legal when the block layouts are bit-identical).
func (m *Mask) Equal(other *Mask) bool {
	if m == other {
		return true
	}
	if m == nil || other == nil || m.Dim != other.Dim {
		return false
	}
	for i, w := range m.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// And intersects m with other in place. The dims must match.
func (m *Mask) And(other *Mask) {
	if m.Dim != other.Dim {
		panic(fmt.Sprintf("grid: mask dims %v != %v", m.Dim, other.Dim))
	}
	for i := range m.words {
		m.words[i] &= other.words[i]
	}
}

// Count returns the number of set bits.
func (m *Mask) Count() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Density returns the fraction of set bits in [0,1].
func (m *Mask) Density() float64 {
	if m.Len() == 0 {
		return 0
	}
	return float64(m.Count()) / float64(m.Len())
}

// OccupiedIndices returns the linear indices of all set bits in row-major
// order (z fastest) — the canonical block ordering every mask-driven
// traversal in this repository uses. Dim.Coords recovers the (x,y,z)
// coordinates of each entry.
func (m *Mask) OccupiedIndices() []int {
	out := make([]int, 0, m.Count())
	for wi, w := range m.words {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Bools expands the mask into a fresh []bool, one entry per bit — scratch
// for algorithms (like OpST) that mutate a private occupancy copy.
func (m *Mask) Bools() []bool {
	out := make([]bool, m.Len())
	for _, i := range m.OccupiedIndices() {
		out[i] = true
	}
	return out
}

// Fill sets every bit to v.
func (m *Mask) Fill(v bool) {
	var w uint64
	if v {
		w = ^uint64(0)
	}
	for i := range m.words {
		m.words[i] = w
	}
	m.clearTail()
}

// setRange sets the bits of the half-open linear index range [lo,hi) to v,
// whole words at a time.
func (m *Mask) setRange(lo, hi int, v bool) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		if v {
			m.words[loW] |= loMask & hiMask
		} else {
			m.words[loW] &^= loMask & hiMask
		}
		return
	}
	if v {
		m.words[loW] |= loMask
		for i := loW + 1; i < hiW; i++ {
			m.words[i] = ^uint64(0)
		}
		m.words[hiW] |= hiMask
	} else {
		m.words[loW] &^= loMask
		for i := loW + 1; i < hiW; i++ {
			m.words[i] = 0
		}
		m.words[hiW] &^= hiMask
	}
}

// countRange returns the popcount of the half-open linear range [lo,hi).
func (m *Mask) countRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return bits.OnesCount64(m.words[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(m.words[loW]&loMask) + bits.OnesCount64(m.words[hiW]&hiMask)
	for i := loW + 1; i < hiW; i++ {
		n += bits.OnesCount64(m.words[i])
	}
	return n
}

// FillRegion sets every bit in region r to v.
func (m *Mask) FillRegion(r Region, v bool) {
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := m.Dim.Index(x, y, r.Z0)
			m.setRange(base, base+(r.Z1-r.Z0), v)
		}
	}
}

// CountRegion returns the number of set bits inside region r. For repeated
// queries use a SumTable instead.
func (m *Mask) CountRegion(r Region) int {
	n := 0
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := m.Dim.Index(x, y, r.Z0)
			n += m.countRange(base, base+(r.Z1-r.Z0))
		}
	}
	return n
}

// AppendPacked appends the mask as bit-packed bytes (bit i of the stream is
// byte i/8, bit i%8 — LSB first), the serialization both the container
// format and .amr snapshots store. The packed bytes are the little-endian
// truncation of the backing words, so packing is a straight copy.
func (m *Mask) AppendPacked(dst []byte) []byte {
	nb := (m.Len() + 7) / 8
	for wi := 0; nb > 0; wi++ {
		w := m.words[wi]
		k := min(nb, 8)
		for j := 0; j < k; j++ {
			dst = append(dst, byte(w>>(8*j)))
		}
		nb -= k
	}
	return dst
}

// PackedLen returns the serialized size of AppendPacked's output.
func (m *Mask) PackedLen() int { return (m.Len() + 7) / 8 }

// SetPacked overwrites the mask from packed bytes as written by
// AppendPacked. The input must be exactly PackedLen() bytes; padding bits
// past Len() are ignored.
func (m *Mask) SetPacked(packed []byte) error {
	if len(packed) != m.PackedLen() {
		return fmt.Errorf("grid: packed mask is %d bytes, want %d", len(packed), m.PackedLen())
	}
	for wi := range m.words {
		var w uint64
		for j := 0; j < 8; j++ {
			bi := wi*8 + j
			if bi >= len(packed) {
				break
			}
			w |= uint64(packed[bi]) << (8 * j)
		}
		m.words[wi] = w
	}
	m.clearTail()
	return nil
}

// SumTable is a 3D summed-area table over a mask, answering "how many set
// bits in this box" in O(1). AKDTree's octant counts and the density filter
// both rely on it (Sec. 3.2 of the paper counts non-empty unit blocks for
// every split decision; the table makes every count constant time).
type SumTable struct {
	dim Dims
	// s has extent (X+1)×(Y+1)×(Z+1); s[x][y][z] is the count of set bits
	// in [0,x)×[0,y)×[0,z).
	s []int64
}

// NewSumTable builds the table in one pass over the mask.
func NewSumTable(m *Mask) *SumTable {
	d := m.Dim
	ex, ey, ez := d.X+1, d.Y+1, d.Z+1
	s := make([]int64, ex*ey*ez)
	idx := func(x, y, z int) int { return (x*ey+y)*ez + z }
	for x := 1; x <= d.X; x++ {
		for y := 1; y <= d.Y; y++ {
			var rowSum int64 // running sum along z for this (x,y) row
			base := m.Dim.Index(x-1, y-1, 0)
			for z := 1; z <= d.Z; z++ {
				if m.AtIndex(base + z - 1) {
					rowSum++
				}
				s[idx(x, y, z)] = rowSum +
					s[idx(x-1, y, z)] + s[idx(x, y-1, z)] - s[idx(x-1, y-1, z)]
			}
		}
	}
	return &SumTable{dim: d, s: s}
}

// Dims returns the extent of the underlying mask.
func (t *SumTable) Dims() Dims { return t.dim }

// Count returns the number of set bits in region r (clipped to the mask).
func (t *SumTable) Count(r Region) int64 {
	r = r.Intersect(t.dim)
	if r.Empty() {
		return 0
	}
	ey, ez := t.dim.Y+1, t.dim.Z+1
	idx := func(x, y, z int) int { return (x*ey+y)*ez + z }
	return t.s[idx(r.X1, r.Y1, r.Z1)] -
		t.s[idx(r.X0, r.Y1, r.Z1)] - t.s[idx(r.X1, r.Y0, r.Z1)] - t.s[idx(r.X1, r.Y1, r.Z0)] +
		t.s[idx(r.X0, r.Y0, r.Z1)] + t.s[idx(r.X0, r.Y1, r.Z0)] + t.s[idx(r.X1, r.Y0, r.Z0)] -
		t.s[idx(r.X0, r.Y0, r.Z0)]
}

// Full reports whether every bit in region r is set.
func (t *SumTable) Full(r Region) bool {
	r = r.Intersect(t.dim)
	return t.Count(r) == int64(r.Count())
}

// EmptyRegion reports whether no bit in region r is set.
func (t *SumTable) EmptyRegion(r Region) bool {
	return t.Count(r) == 0
}
