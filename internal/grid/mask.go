package grid

// Mask is a dense boolean occupancy grid, used at unit-block granularity to
// record which blocks of an AMR level hold valid data.
type Mask struct {
	Dim  Dims
	Bits []bool
}

// NewMask allocates an all-false mask.
func NewMask(d Dims) *Mask { return &Mask{Dim: d, Bits: make([]bool, d.Count())} }

// At reports the bit at (x,y,z).
func (m *Mask) At(x, y, z int) bool { return m.Bits[m.Dim.Index(x, y, z)] }

// Set stores v at (x,y,z).
func (m *Mask) Set(x, y, z int, v bool) { m.Bits[m.Dim.Index(x, y, z)] = v }

// Clone returns a deep copy.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.Dim)
	copy(out.Bits, m.Bits)
	return out
}

// Count returns the number of set bits.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return n
}

// Density returns the fraction of set bits in [0,1].
func (m *Mask) Density() float64 {
	if len(m.Bits) == 0 {
		return 0
	}
	return float64(m.Count()) / float64(len(m.Bits))
}

// OccupiedIndices returns the linear indices of all set bits in row-major
// order (z fastest) — the canonical block ordering every mask-driven
// traversal in this repository uses. Dim.Coords recovers the (x,y,z)
// coordinates of each entry.
func (m *Mask) OccupiedIndices() []int {
	out := make([]int, 0, m.Count())
	for i, b := range m.Bits {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// Fill sets every bit to v.
func (m *Mask) Fill(v bool) {
	for i := range m.Bits {
		m.Bits[i] = v
	}
}

// FillRegion sets every bit in region r to v.
func (m *Mask) FillRegion(r Region, v bool) {
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := m.Dim.Index(x, y, r.Z0)
			row := m.Bits[base : base+(r.Z1-r.Z0)]
			for i := range row {
				row[i] = v
			}
		}
	}
}

// CountRegion returns the number of set bits inside region r. For repeated
// queries use a SumTable instead.
func (m *Mask) CountRegion(r Region) int {
	n := 0
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := m.Dim.Index(x, y, r.Z0)
			for _, b := range m.Bits[base : base+(r.Z1-r.Z0)] {
				if b {
					n++
				}
			}
		}
	}
	return n
}

// SumTable is a 3D summed-area table over a mask, answering "how many set
// bits in this box" in O(1). AKDTree's octant counts and the density filter
// both rely on it (Sec. 3.2 of the paper counts non-empty unit blocks for
// every split decision; the table makes every count constant time).
type SumTable struct {
	dim Dims
	// s has extent (X+1)×(Y+1)×(Z+1); s[x][y][z] is the count of set bits
	// in [0,x)×[0,y)×[0,z).
	s []int64
}

// NewSumTable builds the table in one pass over the mask.
func NewSumTable(m *Mask) *SumTable {
	d := m.Dim
	ex, ey, ez := d.X+1, d.Y+1, d.Z+1
	s := make([]int64, ex*ey*ez)
	idx := func(x, y, z int) int { return (x*ey+y)*ez + z }
	for x := 1; x <= d.X; x++ {
		for y := 1; y <= d.Y; y++ {
			var rowSum int64 // running sum along z for this (x,y) row
			base := m.Dim.Index(x-1, y-1, 0)
			for z := 1; z <= d.Z; z++ {
				if m.Bits[base+z-1] {
					rowSum++
				}
				s[idx(x, y, z)] = rowSum +
					s[idx(x-1, y, z)] + s[idx(x, y-1, z)] - s[idx(x-1, y-1, z)]
			}
		}
	}
	return &SumTable{dim: d, s: s}
}

// Dims returns the extent of the underlying mask.
func (t *SumTable) Dims() Dims { return t.dim }

// Count returns the number of set bits in region r (clipped to the mask).
func (t *SumTable) Count(r Region) int64 {
	r = r.Intersect(t.dim)
	if r.Empty() {
		return 0
	}
	ey, ez := t.dim.Y+1, t.dim.Z+1
	idx := func(x, y, z int) int { return (x*ey+y)*ez + z }
	return t.s[idx(r.X1, r.Y1, r.Z1)] -
		t.s[idx(r.X0, r.Y1, r.Z1)] - t.s[idx(r.X1, r.Y0, r.Z1)] - t.s[idx(r.X1, r.Y1, r.Z0)] +
		t.s[idx(r.X0, r.Y0, r.Z1)] + t.s[idx(r.X0, r.Y1, r.Z0)] + t.s[idx(r.X1, r.Y0, r.Z0)] -
		t.s[idx(r.X0, r.Y0, r.Z0)]
}

// Full reports whether every bit in region r is set.
func (t *SumTable) Full(r Region) bool {
	r = r.Intersect(t.dim)
	return t.Count(r) == int64(r.Count())
}

// EmptyRegion reports whether no bit in region r is set.
func (t *SumTable) EmptyRegion(r Region) bool {
	return t.Count(r) == 0
}
