// Package grid provides dense 3D tensors and the block-level geometry
// helpers used throughout the TAC pipeline: sub-grid extraction, coarse/fine
// resampling, and 3D summed-area tables for O(1) occupancy queries.
//
// Grids are stored in row-major order with z varying fastest, i.e. the
// linear index of cell (x, y, z) on an (Nx, Ny, Nz) grid is
// (x*Ny+y)*Nz + z. This matches the memory layout the SZ-style compressor
// assumes for its 3D Lorenzo predictor.
package grid

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Float is the element constraint for grids: the single- and
// double-precision floating point types scientific datasets use.
type Float interface {
	~float32 | ~float64
}

// Dims describes the extent of a 3D grid.
type Dims struct {
	X, Y, Z int
}

// Count returns the total number of cells, X*Y*Z.
func (d Dims) Count() int { return d.X * d.Y * d.Z }

// String implements fmt.Stringer.
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z) }

// IsCube reports whether all three extents are equal.
func (d Dims) IsCube() bool { return d.X == d.Y && d.Y == d.Z }

// Scale returns the dims multiplied by factor f in every dimension.
func (d Dims) Scale(f int) Dims { return Dims{d.X * f, d.Y * f, d.Z * f} }

// Div returns the dims divided by factor f in every dimension, rounding up.
func (d Dims) Div(f int) Dims {
	return Dims{ceilDiv(d.X, f), ceilDiv(d.Y, f), ceilDiv(d.Z, f)}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Contains reports whether cell (x,y,z) lies inside the grid extent.
func (d Dims) Contains(x, y, z int) bool {
	return x >= 0 && x < d.X && y >= 0 && y < d.Y && z >= 0 && z < d.Z
}

// Index returns the linear index of cell (x,y,z).
func (d Dims) Index(x, y, z int) int { return (x*d.Y+y)*d.Z + z }

// Coords is the inverse of Index.
func (d Dims) Coords(i int) (x, y, z int) {
	z = i % d.Z
	i /= d.Z
	y = i % d.Y
	x = i / d.Y
	return
}

// Grid3 is a dense 3D tensor of floating point values.
type Grid3[T Float] struct {
	Dim  Dims
	Data []T // len == Dim.Count(), layout (x*Ny+y)*Nz+z
}

// New allocates a zeroed grid with the given dims.
func New[T Float](d Dims) *Grid3[T] {
	return &Grid3[T]{Dim: d, Data: make([]T, d.Count())}
}

// NewCube allocates a zeroed n×n×n grid.
func NewCube[T Float](n int) *Grid3[T] { return New[T](Dims{n, n, n}) }

// NewBlocks allocates count zeroed grids of identical dims backed by one
// data slab and one header array — three allocations total instead of
// 2×count. Batch decoders use it: a batch of a thousand small unit blocks
// would otherwise pay a thousand allocations (and their GC scan cost) per
// payload. Each grid's Data is capacity-clipped to its own window, so
// appends cannot bleed into a neighbor. The slab stays reachable while
// any one block is.
func NewBlocks[T Float](d Dims, count int) []*Grid3[T] {
	per := d.Count()
	slab := make([]T, per*count)
	hdrs := make([]Grid3[T], count)
	out := make([]*Grid3[T], count)
	for i := range out {
		hdrs[i] = Grid3[T]{Dim: d, Data: slab[i*per : (i+1)*per : (i+1)*per]}
		out[i] = &hdrs[i]
	}
	return out
}

// FromSlice wraps an existing slice as a grid. The slice length must equal
// d.Count(); FromSlice panics otherwise, since a silent mismatch would
// corrupt every downstream index computation.
func FromSlice[T Float](d Dims, data []T) *Grid3[T] {
	if len(data) != d.Count() {
		panic(fmt.Sprintf("grid: slice length %d does not match dims %v (%d cells)", len(data), d, d.Count()))
	}
	return &Grid3[T]{Dim: d, Data: data}
}

// At returns the value at (x,y,z).
func (g *Grid3[T]) At(x, y, z int) T { return g.Data[g.Dim.Index(x, y, z)] }

// Set stores v at (x,y,z).
func (g *Grid3[T]) Set(x, y, z int, v T) { g.Data[g.Dim.Index(x, y, z)] = v }

// Clone returns a deep copy of the grid.
func (g *Grid3[T]) Clone() *Grid3[T] {
	out := New[T](g.Dim)
	copy(out.Data, g.Data)
	return out
}

// Fill sets every cell to v.
func (g *Grid3[T]) Fill(v T) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Region is an axis-aligned box of cells, half-open: [X0,X1)×[Y0,Y1)×[Z0,Z1).
type Region struct {
	X0, Y0, Z0 int
	X1, Y1, Z1 int
}

// RegionOf returns the region covering the whole of dims d.
func RegionOf(d Dims) Region { return Region{0, 0, 0, d.X, d.Y, d.Z} }

// Dims returns the extents of the region.
func (r Region) Dims() Dims { return Dims{r.X1 - r.X0, r.Y1 - r.Y0, r.Z1 - r.Z0} }

// Count returns the number of cells in the region.
func (r Region) Count() int { return r.Dims().Count() }

// Empty reports whether the region contains no cells.
func (r Region) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 || r.Z1 <= r.Z0 }

// ParseRegion parses the "x0:x1,y0:y1,z0:z1" region syntax shared by the
// tacc -roi flag and the serving layer's roi query parameter, so the two
// surfaces cannot drift apart.
func ParseRegion(s string) (Region, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return Region{}, fmt.Errorf("grid: bad region %q (want x0:x1,y0:y1,z0:z1)", s)
	}
	var lo, hi [3]int
	for i, p := range parts {
		a, b, ok := strings.Cut(p, ":")
		if !ok {
			return Region{}, fmt.Errorf("grid: bad region axis %q", p)
		}
		var err error
		if lo[i], err = strconv.Atoi(a); err != nil {
			return Region{}, fmt.Errorf("grid: bad region bound %q", a)
		}
		if hi[i], err = strconv.Atoi(b); err != nil {
			return Region{}, fmt.Errorf("grid: bad region bound %q", b)
		}
	}
	return Region{X0: lo[0], Y0: lo[1], Z0: lo[2], X1: hi[0], Y1: hi[1], Z1: hi[2]}, nil
}

// Clip returns the intersection of r and o (possibly empty).
func (r Region) Clip(o Region) Region {
	c := r
	if c.X0 < o.X0 {
		c.X0 = o.X0
	}
	if c.Y0 < o.Y0 {
		c.Y0 = o.Y0
	}
	if c.Z0 < o.Z0 {
		c.Z0 = o.Z0
	}
	if c.X1 > o.X1 {
		c.X1 = o.X1
	}
	if c.Y1 > o.Y1 {
		c.Y1 = o.Y1
	}
	if c.Z1 > o.Z1 {
		c.Z1 = o.Z1
	}
	return c
}

// Intersect clips the region to the grid extent d.
func (r Region) Intersect(d Dims) Region {
	c := r
	if c.X0 < 0 {
		c.X0 = 0
	}
	if c.Y0 < 0 {
		c.Y0 = 0
	}
	if c.Z0 < 0 {
		c.Z0 = 0
	}
	if c.X1 > d.X {
		c.X1 = d.X
	}
	if c.Y1 > d.Y {
		c.Y1 = d.Y
	}
	if c.Z1 > d.Z {
		c.Z1 = d.Z
	}
	return c
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d,%d:%d]", r.X0, r.X1, r.Y0, r.Y1, r.Z0, r.Z1)
}

// Extract copies the region r of g into a new dense grid of r.Dims().
func (g *Grid3[T]) Extract(r Region) *Grid3[T] {
	out := New[T](r.Dims())
	g.CopyRegionTo(r, out.Data)
	return out
}

// CopyRegionTo copies region r of g into dst (row-major, z fastest). dst
// must have length r.Count().
func (g *Grid3[T]) CopyRegionTo(r Region, dst []T) {
	d := r.Dims()
	if len(dst) != d.Count() {
		panic(fmt.Sprintf("grid: dst length %d does not match region %v (%d cells)", len(dst), r, d.Count()))
	}
	nz := d.Z
	di := 0
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			src := g.Dim.Index(x, y, r.Z0)
			copy(dst[di:di+nz], g.Data[src:src+nz])
			di += nz
		}
	}
}

// SetRegion copies src (a dense block of r.Dims() cells) into region r of g.
func (g *Grid3[T]) SetRegion(r Region, src []T) {
	d := r.Dims()
	if len(src) != d.Count() {
		panic(fmt.Sprintf("grid: src length %d does not match region %v (%d cells)", len(src), r, d.Count()))
	}
	nz := d.Z
	si := 0
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			dst := g.Dim.Index(x, y, r.Z0)
			copy(g.Data[dst:dst+nz], src[si:si+nz])
			si += nz
		}
	}
}

// CopyRegionOverlap copies the cells where the source region sr and the
// destination region dr overlap. Both buffers are dense row-major (z
// fastest) over their own region's dims and both regions live in the same
// coordinate space; dst cells outside sr are left untouched. This is the
// region-assembly primitive of the serving layer: a response buffer dense
// over a requested ROI is filled directly from independently decoded unit
// blocks, with no intermediate level-sized grid.
func CopyRegionOverlap[T Float](dst []T, dr Region, src []T, sr Region) {
	dd, sd := dr.Dims(), sr.Dims()
	if len(dst) != dd.Count() {
		panic(fmt.Sprintf("grid: dst length %d does not match region %v (%d cells)", len(dst), dr, dd.Count()))
	}
	if len(src) != sd.Count() {
		panic(fmt.Sprintf("grid: src length %d does not match region %v (%d cells)", len(src), sr, sd.Count()))
	}
	ov := dr.Clip(sr)
	if ov.Empty() {
		return
	}
	nz := ov.Z1 - ov.Z0
	for x := ov.X0; x < ov.X1; x++ {
		for y := ov.Y0; y < ov.Y1; y++ {
			di := ((x-dr.X0)*dd.Y+(y-dr.Y0))*dd.Z + (ov.Z0 - dr.Z0)
			si := ((x-sr.X0)*sd.Y+(y-sr.Y0))*sd.Z + (ov.Z0 - sr.Z0)
			copy(dst[di:di+nz], src[si:si+nz])
		}
	}
}

// FillRegion sets every cell in region r to v.
func (g *Grid3[T]) FillRegion(r Region, v T) {
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := g.Dim.Index(x, y, r.Z0)
			row := g.Data[base : base+(r.Z1-r.Z0)]
			for i := range row {
				row[i] = v
			}
		}
	}
}

// Upsample returns a grid refined by integer factor f using piecewise-
// constant injection: every source cell is replicated into an f×f×f block.
// This is the up-sampling the 3D baseline performs when unifying AMR levels
// (Sec. 2.2 of the paper); injection is what Nyx plotfile tools use.
func (g *Grid3[T]) Upsample(f int) *Grid3[T] {
	if f == 1 {
		return g.Clone()
	}
	out := New[T](g.Dim.Scale(f))
	for x := 0; x < g.Dim.X; x++ {
		for y := 0; y < g.Dim.Y; y++ {
			for z := 0; z < g.Dim.Z; z++ {
				v := g.At(x, y, z)
				for dx := 0; dx < f; dx++ {
					for dy := 0; dy < f; dy++ {
						base := out.Dim.Index(x*f+dx, y*f+dy, z*f)
						row := out.Data[base : base+f]
						for i := range row {
							row[i] = v
						}
					}
				}
			}
		}
	}
	return out
}

// Downsample returns a grid coarsened by integer factor f, each coarse cell
// holding the arithmetic mean of its f×f×f fine children (the conservative
// restriction AMR codes use). Dims must be divisible by f.
func (g *Grid3[T]) Downsample(f int) *Grid3[T] {
	if f == 1 {
		return g.Clone()
	}
	if g.Dim.X%f != 0 || g.Dim.Y%f != 0 || g.Dim.Z%f != 0 {
		panic(fmt.Sprintf("grid: dims %v not divisible by %d", g.Dim, f))
	}
	cd := Dims{g.Dim.X / f, g.Dim.Y / f, g.Dim.Z / f}
	out := New[T](cd)
	inv := 1.0 / float64(f*f*f)
	for cx := 0; cx < cd.X; cx++ {
		for cy := 0; cy < cd.Y; cy++ {
			for cz := 0; cz < cd.Z; cz++ {
				var sum float64
				for dx := 0; dx < f; dx++ {
					for dy := 0; dy < f; dy++ {
						base := g.Dim.Index(cx*f+dx, cy*f+dy, cz*f)
						row := g.Data[base : base+f]
						for _, v := range row {
							sum += float64(v)
						}
					}
				}
				out.Set(cx, cy, cz, T(sum*inv))
			}
		}
	}
	return out
}

// MinMax returns the smallest and largest values in the grid. It returns
// (0, 0) for an empty grid.
func (g *Grid3[T]) MinMax() (min, max T) {
	if len(g.Data) == 0 {
		return 0, 0
	}
	min, max = g.Data[0], g.Data[0]
	for _, v := range g.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return
}

// Mean returns the arithmetic mean of all cells (0 for an empty grid).
func (g *Grid3[T]) Mean() float64 {
	if len(g.Data) == 0 {
		return 0
	}
	var sum float64
	for _, v := range g.Data {
		sum += float64(v)
	}
	return sum / float64(len(g.Data))
}

// MaxAbsDiff returns the largest absolute difference between two grids of
// identical dims.
func MaxAbsDiff[T Float](a, b *Grid3[T]) float64 {
	if a.Dim != b.Dim {
		panic(fmt.Sprintf("grid: dims mismatch %v vs %v", a.Dim, b.Dim))
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}
