package render

import (
	"bytes"
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func gradGrid(n int) *grid.Grid3[float32] {
	g := grid.NewCube[float32](n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				g.Set(x, y, z, float32(x+y+z))
			}
		}
	}
	return g
}

func TestSlice(t *testing.T) {
	g := gradGrid(8)
	s, nx, ny, err := Slice(g, 3)
	if err != nil || nx != 8 || ny != 8 {
		t.Fatalf("Slice: %v (%d×%d)", err, nx, ny)
	}
	if s[2*8+5] != float64(2+5+3) {
		t.Fatalf("slice value %v", s[2*8+5])
	}
	if _, _, _, err := Slice(g, 8); err == nil {
		t.Fatal("out-of-range slice should error")
	}
	if _, _, _, err := Slice(g, -1); err == nil {
		t.Fatal("negative slice should error")
	}
}

func TestErrorSlice(t *testing.T) {
	a := gradGrid(4)
	b := a.Clone()
	b.Set(1, 2, 0, b.At(1, 2, 0)+3)
	e, _, ny, err := ErrorSlice(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e[1*ny+2] != 3 {
		t.Fatalf("error cell = %v, want 3", e[1*ny+2])
	}
	if e[0] != 0 {
		t.Fatalf("unchanged cell error = %v", e[0])
	}
	if _, _, _, err := ErrorSlice(a, gradGrid(8), 0); err == nil {
		t.Fatal("dims mismatch should error")
	}
}

func TestGrayPNGValidImage(t *testing.T) {
	field := []float64{0, 1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := GrayPNG(&buf, field, 2, 3, Linear, 0); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not a valid PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 3 || b.Dy() != 2 {
		t.Fatalf("image is %dx%d, want 3x2", b.Dx(), b.Dy())
	}
}

func TestGrayPNGScales(t *testing.T) {
	// Log scale must brighten small values relative to linear.
	field := make([]float64, 16)
	field[0] = 1000
	field[1] = 1
	var lin, lg bytes.Buffer
	if err := GrayPNG(&lin, field, 4, 4, Linear, 0); err != nil {
		t.Fatal(err)
	}
	if err := GrayPNG(&lg, field, 4, 4, Log, 0); err != nil {
		t.Fatal(err)
	}
	linImg, _ := png.Decode(&lin)
	logImg, _ := png.Decode(&lg)
	lr, _, _, _ := linImg.At(1, 0).RGBA()
	gr, _, _, _ := logImg.At(1, 0).RGBA()
	if gr <= lr {
		t.Fatalf("log scale (%d) should brighten small values vs linear (%d)", gr, lr)
	}
}

func TestGrayPNGRejectsBadGeometry(t *testing.T) {
	if err := GrayPNG(&bytes.Buffer{}, make([]float64, 5), 2, 3, Linear, 0); err == nil {
		t.Fatal("bad geometry should error")
	}
}

func TestWriteErrorMapAndFieldMap(t *testing.T) {
	dir := t.TempDir()
	a := gradGrid(8)
	b := a.Clone()
	b.Data[10] += 5
	emap := filepath.Join(dir, "err.png")
	if err := WriteErrorMap(emap, a, b, 0); err != nil {
		t.Fatal(err)
	}
	fmap := filepath.Join(dir, "field.png")
	if err := WriteFieldMap(fmap, a, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{emap, fmap} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := png.Decode(f); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		f.Close()
	}
}
