// Package render produces the visual error-map comparisons of the paper's
// Figs. 7 and 12: grayscale PNG slices where brighter means larger
// reconstruction error, plus log-scaled field slices for inspecting the
// synthetic datasets.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"

	"repro/internal/grid"
)

// Slice extracts the z=k plane of a grid as a row-major []float64
// (x varies along image rows, y along columns).
func Slice[T grid.Float](g *grid.Grid3[T], k int) ([]float64, int, int, error) {
	d := g.Dim
	if k < 0 || k >= d.Z {
		return nil, 0, 0, fmt.Errorf("render: slice %d out of range [0,%d)", k, d.Z)
	}
	out := make([]float64, d.X*d.Y)
	for x := 0; x < d.X; x++ {
		for y := 0; y < d.Y; y++ {
			out[x*d.Y+y] = float64(g.At(x, y, k))
		}
	}
	return out, d.X, d.Y, nil
}

// ErrorSlice returns the absolute per-cell error of the z=k plane.
func ErrorSlice[T grid.Float](orig, recon *grid.Grid3[T], k int) ([]float64, int, int, error) {
	if orig.Dim != recon.Dim {
		return nil, 0, 0, fmt.Errorf("render: dims %v vs %v", orig.Dim, recon.Dim)
	}
	a, nx, ny, err := Slice(orig, k)
	if err != nil {
		return nil, 0, 0, err
	}
	b, _, _, err := Slice(recon, k)
	if err != nil {
		return nil, 0, 0, err
	}
	for i := range a {
		a[i] = math.Abs(a[i] - b[i])
	}
	return a, nx, ny, nil
}

// Scale selects how values map to gray levels.
type Scale uint8

// Supported gray scales.
const (
	// Linear maps [0,max] to [0,255].
	Linear Scale = iota
	// Log maps log(1+v/max·K) for contrast on heavy-tailed data.
	Log
)

// GrayPNG renders a row-major nx×ny field to a grayscale PNG. Brighter is
// larger, matching the paper's "brighter means higher compression error"
// convention. maxVal ≤ 0 auto-scales to the field maximum.
func GrayPNG(w io.Writer, field []float64, nx, ny int, scale Scale, maxVal float64) error {
	if nx*ny != len(field) {
		return fmt.Errorf("render: %d×%d does not cover %d values", nx, ny, len(field))
	}
	if maxVal <= 0 {
		for _, v := range field {
			if v > maxVal {
				maxVal = v
			}
		}
		if maxVal <= 0 {
			maxVal = 1
		}
	}
	img := image.NewGray(image.Rect(0, 0, ny, nx))
	const logK = 1000
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			v := field[x*ny+y]
			if v < 0 {
				v = 0
			}
			var t float64
			switch scale {
			case Log:
				t = math.Log1p(v/maxVal*logK) / math.Log1p(logK)
			default:
				t = v / maxVal
			}
			if t > 1 {
				t = 1
			}
			img.SetGray(y, x, color.Gray{Y: uint8(t * 255)})
		}
	}
	return png.Encode(w, img)
}

// WriteErrorMap renders the z=k error slice of (orig, recon) to a PNG
// file, log-scaled for contrast — one frame of a Fig. 7/12-style
// comparison.
func WriteErrorMap[T grid.Float](path string, orig, recon *grid.Grid3[T], k int) error {
	e, nx, ny, err := ErrorSlice(orig, recon, k)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := GrayPNG(f, e, nx, ny, Log, 0); err != nil {
		return fmt.Errorf("render: %s: %w", path, err)
	}
	return f.Close()
}

// WriteFieldMap renders the z=k plane of a field to a log-scaled PNG file
// (useful for eyeballing the synthetic datasets).
func WriteFieldMap[T grid.Float](path string, g *grid.Grid3[T], k int) error {
	s, nx, ny, err := Slice(g, k)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := GrayPNG(f, s, nx, ny, Log, 0); err != nil {
		return fmt.Errorf("render: %s: %w", path, err)
	}
	return f.Close()
}
