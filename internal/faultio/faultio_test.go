package faultio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

var errInjected = errors.New("injected I/O error")

func backing() *bytes.Reader {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	return bytes.NewReader(data)
}

func TestPassThroughWithoutPlan(t *testing.T) {
	f := New(backing())
	p := make([]byte, 16)
	n, err := f.ReadAt(p, 32)
	if n != 16 || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	for i, b := range p {
		if b != byte(32+i) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, 32+i)
		}
	}
	if f.Calls() != 1 || f.Faults() != 0 {
		t.Fatalf("calls %d faults %d, want 1/0", f.Calls(), f.Faults())
	}
}

func TestFailFirstHeals(t *testing.T) {
	f := New(backing())
	// Burn some clean calls first: FailFirst counts from plan install.
	p := make([]byte, 4)
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAt(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	f.SetPlan(FailFirst(2, errInjected))
	for i := 0; i < 2; i++ {
		if _, err := f.ReadAt(p, 0); !errors.Is(err, errInjected) {
			t.Fatalf("call %d after arming: err = %v, want injected", i, err)
		}
	}
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatalf("plan did not heal: %v", err)
	}
	if f.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", f.Faults())
	}
}

func TestFailTouching(t *testing.T) {
	f := New(backing())
	f.SetPlan(FailTouching(100, 110, errInjected))
	p := make([]byte, 16)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatalf("read outside the bad range failed: %v", err)
	}
	if _, err := f.ReadAt(p, 96); !errors.Is(err, errInjected) {
		t.Fatalf("read overlapping the bad range: err = %v", err)
	}
	if _, err := f.ReadAt(p, 110); err != nil {
		t.Fatalf("read starting at hi failed: %v", err)
	}
}

func TestFlipByteLeavesBackingIntact(t *testing.T) {
	f := New(backing())
	f.SetPlan(FlipByte(40, 0xFF))
	p := make([]byte, 16)
	if _, err := f.ReadAt(p, 32); err != nil {
		t.Fatal(err)
	}
	if p[8] != byte(40)^0xFF {
		t.Fatalf("byte at offset 40 = %#x, want flipped", p[8])
	}
	if p[7] != byte(39) || p[9] != byte(41) {
		t.Fatal("flip bled into neighboring bytes")
	}
	// A read not covering the offset is clean.
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 {
		t.Fatalf("clean read returned %#x", p[0])
	}
}

func TestShortRead(t *testing.T) {
	f := New(backing())
	f.SetPlan(func(int64, int64, int) *Fault { return &Fault{Short: 6} })
	p := make([]byte, 16)
	n, err := f.ReadAt(p, 0)
	if n != 10 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read = %d, %v; want 10, ErrUnexpectedEOF", n, err)
	}
}

func TestDelayUsesInjectedClock(t *testing.T) {
	f := New(backing())
	var slept []time.Duration
	f.Sleep = func(d time.Duration) { slept = append(slept, d) }
	f.SetPlan(Delay(50 * time.Millisecond))
	p := make([]byte, 4)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want one 50ms stall", slept)
	}
}

func TestCompose(t *testing.T) {
	f := New(backing())
	f.SetPlan(Compose(
		FailFirst(1, errInjected),
		FlipByte(2, 0x01),
	))
	p := make([]byte, 4)
	if _, err := f.ReadAt(p, 0); !errors.Is(err, errInjected) {
		t.Fatalf("first call: err = %v, want injected (first plan wins)", err)
	}
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if p[2] != byte(2)^0x01 {
		t.Fatal("second plan's flip not applied after the first healed")
	}
}

func TestDelayRespectsContext(t *testing.T) {
	f := New(backing())
	f.SetPlan(Delay(10 * time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	f.SetContext(ctx)
	start := time.Now()
	p := make([]byte, 4)
	_, err := f.ReadAt(p, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed read under expired context = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("read slept %v of a 10s injected stall; context should cut it short", el)
	}
	// Disarming the context restores plain sleeps (through the clean path
	// here: plan off, no delay at all).
	f.SetContext(nil)
	f.SetPlan(nil)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatalf("clean read after disarm: %v", err)
	}
}
