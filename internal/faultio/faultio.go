// Package faultio wraps an io.ReaderAt with a programmable fault plan so
// tests can drive the real archive → server stack through the failure
// modes long-lived storage actually exhibits: hard I/O errors, short
// reads, latency spikes, silent bit flips, and flaky-then-heal episodes.
//
// A Plan is a pure function from (call number, offset, length) to the
// fault to inject — nil for a clean pass-through — so fault scripts are
// deterministic, composable, and safe to evaluate from many goroutines.
// The wrapper is installed once, before the archive is opened; SetPlan
// swaps scripts atomically, letting a test open an archive cleanly and
// only then turn the storage hostile.
//
// Bit flips are applied to the returned buffer, not the backing store:
// faultio simulates a read path that corrupts data in flight (or a read
// of a rotted sector) without mutating the file, so the same wrapper can
// serve both "transient" and "persistent, offset-targeted" corruption by
// scripting which calls flip.
package faultio

import (
	"context"
	"io"
	"sync/atomic"
	"time"
)

// Fault describes what to inject into one ReadAt call. The zero value
// injects nothing; fields compose (a Delay plus an Err models a timeout
// that then fails).
type Fault struct {
	// Err, when non-nil, fails the call outright: no bytes are served.
	Err error

	// Short, when > 0, drops that many bytes from the end of the read;
	// the call returns the truncated count with io.ErrUnexpectedEOF, as
	// the io.ReaderAt contract requires of an incomplete read.
	Short int

	// Delay stalls the call before anything else happens, through the
	// wrapper's Sleep hook so tests can inject a recording clock.
	Delay time.Duration

	// FlipMask, when non-zero, XORs the byte at absolute file offset
	// FlipOffset in the returned data if the read covers it. The backing
	// store is untouched.
	FlipOffset int64
	FlipMask   byte
}

// Plan decides the fault for the call-th ReadAt (0-based, counted across
// the wrapper's lifetime) reading n bytes at off. Returning nil passes
// the call through clean. Plans are evaluated concurrently and must be
// safe for that.
type Plan func(call int64, off int64, n int) *Fault

// ReaderAt wraps R, injecting the faults its current plan scripts.
type ReaderAt struct {
	R io.ReaderAt

	// Sleep, when set, replaces time.Sleep for Delay faults.
	Sleep func(time.Duration)

	plan   atomic.Pointer[Plan]
	ctx    atomic.Pointer[context.Context]
	calls  atomic.Int64
	faults atomic.Int64
}

// New wraps r with no plan installed: every read passes through until
// SetPlan arms a script.
func New(r io.ReaderAt) *ReaderAt { return &ReaderAt{R: r} }

// SetPlan atomically installs the fault script (nil disarms). Call
// counting is not reset: plans that want "first n calls from now" keep
// their own counter, as FailFirst does.
func (f *ReaderAt) SetPlan(p Plan) {
	if p == nil {
		f.plan.Store(nil)
		return
	}
	f.plan.Store(&p)
}

// SetContext arms ctx for Delay faults: an injected stall returns early
// with ctx.Err() the moment the context is done, the way a real kernel
// read returns when the caller's deadline cancels it — so a request
// deadline test is not stuck sleeping out the full scripted latency after
// its 504 already fired. nil disarms. The Sleep hook, when set, still
// wins (recording clocks want the unshortened duration).
func (f *ReaderAt) SetContext(ctx context.Context) {
	if ctx == nil {
		f.ctx.Store(nil)
		return
	}
	f.ctx.Store(&ctx)
}

// Calls returns the number of ReadAt calls seen so far.
func (f *ReaderAt) Calls() int64 { return f.calls.Load() }

// Faults returns the number of calls a plan injected a fault into.
func (f *ReaderAt) Faults() int64 { return f.faults.Load() }

func (f *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	call := f.calls.Add(1) - 1
	var ft *Fault
	if pp := f.plan.Load(); pp != nil {
		ft = (*pp)(call, off, len(p))
	}
	if ft == nil {
		return f.R.ReadAt(p, off)
	}
	f.faults.Add(1)
	if ft.Delay > 0 {
		switch {
		case f.Sleep != nil:
			f.Sleep(ft.Delay)
		default:
			var done <-chan struct{}
			if cp := f.ctx.Load(); cp != nil {
				done = (*cp).Done()
			}
			if done == nil {
				time.Sleep(ft.Delay)
				break
			}
			t := time.NewTimer(ft.Delay)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return 0, (*f.ctx.Load()).Err()
			}
			t.Stop()
		}
	}
	if ft.Err != nil {
		return 0, ft.Err
	}
	want := len(p)
	if ft.Short > 0 {
		want -= ft.Short
		if want < 0 {
			want = 0
		}
	}
	n, err := f.R.ReadAt(p[:want], off)
	if ft.FlipMask != 0 && ft.FlipOffset >= off && ft.FlipOffset < off+int64(n) {
		p[ft.FlipOffset-off] ^= ft.FlipMask
	}
	if err == nil && want < len(p) {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// FailFirst returns a plan that fails the next n calls it sees with err,
// then heals — the flaky-then-heal script retry logic is tested against.
// The counter starts when the plan is evaluated, not when the wrapper was
// created, so it composes with a clean open phase.
func FailFirst(n int64, err error) Plan {
	var seen atomic.Int64
	return func(int64, int64, int) *Fault {
		if seen.Add(1) <= n {
			return &Fault{Err: err}
		}
		return nil
	}
}

// FailTouching returns a plan that fails every read overlapping the byte
// range [lo, hi) with err — a bad sector that never heals.
func FailTouching(lo, hi int64, err error) Plan {
	return func(_ int64, off int64, n int) *Fault {
		if off < hi && off+int64(n) > lo {
			return &Fault{Err: err}
		}
		return nil
	}
}

// FlipByte returns a plan that XORs mask into the byte at absolute file
// offset off on every read covering it — persistent, targeted rot.
func FlipByte(off int64, mask byte) Plan {
	return func(_ int64, rOff int64, n int) *Fault {
		if off >= rOff && off < rOff+int64(n) {
			return &Fault{FlipOffset: off, FlipMask: mask}
		}
		return nil
	}
}

// Delay returns a plan that stalls every call by d.
func Delay(d time.Duration) Plan {
	return func(int64, int64, int) *Fault { return &Fault{Delay: d} }
}

// Compose returns a plan that injects the first fault any of the given
// plans scripts for a call. Every plan is evaluated (so their internal
// counters advance in step), but only the first non-nil fault applies.
func Compose(plans ...Plan) Plan {
	return func(call int64, off int64, n int) *Fault {
		var hit *Fault
		for _, p := range plans {
			if ft := p(call, off, n); ft != nil && hit == nil {
				hit = ft
			}
		}
		return hit
	}
}
