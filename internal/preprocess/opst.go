// Package preprocess implements the TAC paper's pre-process strategies for
// one AMR level: NaST (naive sparse tensor), OpST (optimized sparse tensor,
// Algorithm 1), GSP (ghost-shell padding, Algorithm 3) and plain zero
// filling. The AKDTree strategy lives in internal/kdtree; this package
// provides the shared gather/scatter plumbing all strategies use.
//
// Every extraction here is a pure function of the occupancy mask, so the
// decompressor replays it from the stored mask instead of shipping
// coordinate metadata — the negligible-overhead property Sec. 3.1 claims.
package preprocess

import (
	"repro/internal/grid"
	"repro/internal/kdtree"
)

// OpST extracts maximal non-empty cubes from the mask following
// Algorithm 1. BS(x,y,z) holds the edge length (in unit blocks) of the
// largest fully-occupied cube whose upper corner (largest indices) is block
// (x,y,z); scanning from the bottom-right-rear corner, each non-empty block
// encountered yields a cube of side BS which is extracted, after which BS
// is partially recomputed in a window bounded by maxSide.
//
// The returned boxes are cubes (DX==DY==DZ), in extraction order, covering
// every occupied unit block exactly once.
func OpST(mask *grid.Mask) []kdtree.Box {
	d := mask.Dim
	occ := mask.Bools()
	bs := make([]int32, len(occ))

	// Initial DP sweep (lines 1–10 of Algorithm 1).
	maxSide := int32(0)
	computeBS(d, occ, bs, grid.RegionOf(d), &maxSide)

	var boxes []kdtree.Box
	// Scan from the highest linear index (bottom-right-rear) backwards.
	for i := len(bs) - 1; i >= 0; i-- {
		s := int(bs[i])
		if s == 0 {
			continue
		}
		x, y, z := d.Coords(i)
		cube := grid.Region{
			X0: x - s + 1, Y0: y - s + 1, Z0: z - s + 1,
			X1: x + 1, Y1: y + 1, Z1: z + 1,
		}
		boxes = append(boxes, kdtree.Box{
			X: cube.X0, Y: cube.Y0, Z: cube.Z0, DX: s, DY: s, DZ: s,
		})
		// Mark extracted blocks empty and clear their BS (line 14).
		for bx := cube.X0; bx < cube.X1; bx++ {
			for by := cube.Y0; by < cube.Y1; by++ {
				base := d.Index(bx, by, cube.Z0)
				for k := 0; k < s; k++ {
					occ[base+k] = false
					bs[base+k] = 0
				}
			}
		}
		// Partial update (line 14, updateBs): any block whose maximal cube
		// overlapped the extracted region lies within maxSide of it in the
		// increasing direction; recompute BS over that window in ascending
		// order so the recurrence sees updated neighbors.
		win := grid.Region{
			X0: cube.X0, Y0: cube.Y0, Z0: cube.Z0,
			X1: cube.X1 + int(maxSide), Y1: cube.Y1 + int(maxSide), Z1: cube.Z1 + int(maxSide),
		}.Intersect(d)
		computeBS(d, occ, bs, win, nil)
	}
	return boxes
}

// computeBS evaluates the Algorithm-1 recurrence over region r in ascending
// order. Neighbors outside r are read from the existing bs array. If
// maxSide is non-nil it is raised to the largest BS seen.
func computeBS(d grid.Dims, occ []bool, bs []int32, r grid.Region, maxSide *int32) {
	at := func(x, y, z int) int32 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return bs[d.Index(x, y, z)]
	}
	for x := r.X0; x < r.X1; x++ {
		for y := r.Y0; y < r.Y1; y++ {
			for z := r.Z0; z < r.Z1; z++ {
				i := d.Index(x, y, z)
				if !occ[i] {
					bs[i] = 0
					continue
				}
				v := min7(
					at(x-1, y, z), at(x, y-1, z), at(x, y, z-1),
					at(x-1, y-1, z), at(x, y-1, z-1), at(x-1, y, z-1),
					at(x-1, y-1, z-1),
				) + 1
				bs[i] = v
				if maxSide != nil && v > *maxSide {
					*maxSide = v
				}
			}
		}
	}
}

func min7(a, b, c, d, e, f, g int32) int32 {
	m := a
	for _, v := range []int32{b, c, d, e, f, g} {
		if v < m {
			m = v
		}
	}
	return m
}

// NaST is the naive sparse tensor extraction (Sec. 3.1): every occupied
// unit block becomes its own 1×1×1 box, in row-major order.
func NaST(mask *grid.Mask) []kdtree.Box {
	d := mask.Dim
	var boxes []kdtree.Box
	for x := 0; x < d.X; x++ {
		for y := 0; y < d.Y; y++ {
			for z := 0; z < d.Z; z++ {
				if mask.At(x, y, z) {
					boxes = append(boxes, kdtree.Box{X: x, Y: y, Z: z, DX: 1, DY: 1, DZ: 1})
				}
			}
		}
	}
	return boxes
}
