package preprocess

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/kdtree"
)

// Group is a batch of equally-shaped sub-blocks destined for one
// sz.CompressBlocks call — the "4D array" of the paper's NaST/OpST
// description. Shape is in unit blocks; Boxes lists the member sub-blocks
// in a deterministic order.
type Group struct {
	Shape grid.Dims // in unit blocks
	Boxes []kdtree.Box
}

// GroupBoxes buckets boxes by shape, ordering groups by (volume, X, Y, Z)
// and preserving the boxes' extraction order within each group. Both sides
// of the codec derive identical grouping from the same box list.
func GroupBoxes(boxes []kdtree.Box) []Group {
	byShape := make(map[grid.Dims]*Group)
	var order []grid.Dims
	for _, b := range boxes {
		s := grid.Dims{X: b.DX, Y: b.DY, Z: b.DZ}
		g, ok := byShape[s]
		if !ok {
			g = &Group{Shape: s}
			byShape[s] = g
			order = append(order, s)
		}
		g.Boxes = append(g.Boxes, b)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if av, bv := a.Count(), b.Count(); av != bv {
			return av < bv
		}
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.Z < b.Z
	})
	out := make([]Group, len(order))
	for i, s := range order {
		out[i] = *byShape[s]
	}
	return out
}

// CellRegion converts a unit-block box to the cell-space region it covers.
func CellRegion(b kdtree.Box, unitBlock int) grid.Region {
	return grid.Region{
		X0: b.X * unitBlock, Y0: b.Y * unitBlock, Z0: b.Z * unitBlock,
		X1: (b.X + b.DX) * unitBlock, Y1: (b.Y + b.DY) * unitBlock, Z1: (b.Z + b.DZ) * unitBlock,
	}
}

// Gather copies each box's cells out of src into its own dense grid.
func Gather[T grid.Float](src *grid.Grid3[T], boxes []kdtree.Box, unitBlock int) []*grid.Grid3[T] {
	out := make([]*grid.Grid3[T], len(boxes))
	for i, b := range boxes {
		out[i] = src.Extract(CellRegion(b, unitBlock))
	}
	return out
}

// Scatter writes the grids back into dst at their boxes' positions; it is
// the inverse of Gather.
func Scatter[T grid.Float](dst *grid.Grid3[T], boxes []kdtree.Box, unitBlock int, grids []*grid.Grid3[T]) error {
	if len(boxes) != len(grids) {
		return fmt.Errorf("preprocess: %d boxes but %d grids", len(boxes), len(grids))
	}
	for i, b := range boxes {
		r := CellRegion(b, unitBlock)
		if grids[i].Dim != r.Dims() {
			return fmt.Errorf("preprocess: box %d region %v does not match grid dims %v", i, r, grids[i].Dim)
		}
		dst.SetRegion(r, grids[i].Data)
	}
	return nil
}

// ZeroUnmasked clears every cell of g that lies in an unoccupied unit
// block. Used after decompressing ZF/GSP payloads to discard fill values,
// and when preparing a level grid for padding.
func ZeroUnmasked[T grid.Float](g *grid.Grid3[T], mask *grid.Mask, unitBlock int) {
	md := mask.Dim
	for bx := 0; bx < md.X; bx++ {
		for by := 0; by < md.Y; by++ {
			for bz := 0; bz < md.Z; bz++ {
				if mask.At(bx, by, bz) {
					continue
				}
				g.FillRegion(CellRegion(kdtree.Box{X: bx, Y: by, Z: bz, DX: 1, DY: 1, DZ: 1}, unitBlock), 0)
			}
		}
	}
}

// CoveredExactlyOnce verifies that boxes tile precisely the occupied blocks
// of the mask — the invariant every sparse extraction must satisfy.
func CoveredExactlyOnce(mask *grid.Mask, boxes []kdtree.Box) error {
	cover := make([]int, mask.Dim.Count())
	for _, b := range boxes {
		r := b.Region().Intersect(mask.Dim)
		if r.Count() != b.Blocks() {
			return fmt.Errorf("preprocess: box %+v leaves the domain %v", b, mask.Dim)
		}
		for x := r.X0; x < r.X1; x++ {
			for y := r.Y0; y < r.Y1; y++ {
				for z := r.Z0; z < r.Z1; z++ {
					cover[mask.Dim.Index(x, y, z)]++
				}
			}
		}
	}
	for i, c := range cover {
		want := 0
		if mask.AtIndex(i) {
			want = 1
		}
		if c != want {
			x, y, z := mask.Dim.Coords(i)
			return fmt.Errorf("preprocess: block (%d,%d,%d) covered %d times, want %d", x, y, z, c, want)
		}
	}
	return nil
}
