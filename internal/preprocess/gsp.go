package preprocess

import (
	"repro/internal/grid"
)

// GSPOptions tunes ghost-shell padding. The zero value fills the whole of
// each padded block (PadLayers = unit block) from one boundary slice.
type GSPOptions struct {
	// PadLayers is the number of cell layers written into an empty block
	// from each contributing face (Algorithm 3's x). 0 means the full
	// unit-block depth.
	PadLayers int
	// AvgSlices is the number of neighbor boundary slices averaged to form
	// the pad slice (Algorithm 3's y). 0 means 1.
	AvgSlices int
}

func (o GSPOptions) withDefaults(ub int) GSPOptions {
	if o.PadLayers <= 0 || o.PadLayers > ub {
		o.PadLayers = ub
	}
	if o.AvgSlices <= 0 {
		o.AvgSlices = 1
	}
	if o.AvgSlices > ub {
		o.AvgSlices = ub
	}
	return o
}

// face enumerates the six axis-aligned neighbor directions.
var faces = [6][3]int{
	{-1, 0, 0}, {1, 0, 0},
	{0, -1, 0}, {0, 1, 0},
	{0, 0, -1}, {0, 0, 1},
}

// GSP pads the empty unit blocks of g that border occupied blocks with
// values diffused from the occupied neighbors' boundary slices
// (Algorithm 3). For each empty block and each occupied face neighbor, the
// AvgSlices boundary slices of the neighbor nearest the shared face are
// averaged into one 2D pad slice, which is replicated PadLayers deep into
// the empty block starting at the shared face. Cells written by several
// neighbors receive the mean of all contributions — Algorithm 3's pad/2 and
// pad/3 edge/corner halving generalized exactly.
//
// g is modified in place. Empty blocks with no occupied neighbor stay zero.
// Decompression simply discards padded blocks (the mask identifies them),
// so GSP needs no metadata.
//
// Contributions to a cell only ever come from the faces of the one empty
// block that owns it, so the sum/count accumulators are a ub³ scratch
// reused across blocks rather than grid-wide maps (the map-keyed
// accumulation used to dominate GSP's profile). Accumulation order per
// cell — face order, then (u,v,layer) within a face — is unchanged, so
// the padded values are bit-identical to the map implementation.
func GSP[T grid.Float](g *grid.Grid3[T], mask *grid.Mask, unitBlock int, opts GSPOptions) {
	opts = opts.withDefaults(unitBlock)
	md := mask.Dim
	ub := unitBlock

	blockRegion := func(bx, by, bz int) grid.Region {
		return grid.Region{
			X0: bx * ub, Y0: by * ub, Z0: bz * ub,
			X1: (bx + 1) * ub, Y1: (by + 1) * ub, Z1: (bz + 1) * ub,
		}
	}

	// Accumulate contributions then divide, so overlap handling is exact.
	sum := make([]float64, ub*ub*ub)
	cnt := make([]uint8, ub*ub*ub)

	for bx := 0; bx < md.X; bx++ {
		for by := 0; by < md.Y; by++ {
			for bz := 0; bz < md.Z; bz++ {
				if mask.At(bx, by, bz) {
					continue
				}
				eb := blockRegion(bx, by, bz)
				touched := false
				for _, f := range faces {
					nx, ny, nz := bx+f[0], by+f[1], bz+f[2]
					if !md.Contains(nx, ny, nz) || !mask.At(nx, ny, nz) {
						continue
					}
					if !touched {
						clear(sum)
						clear(cnt)
						touched = true
					}
					padFromNeighbor(g, eb, blockRegion(nx, ny, nz), f, opts, sum, cnt)
				}
				if !touched {
					continue
				}
				// Write the block's padded cells back: scratch index
				// (u,v,w) maps to block-local (x,y,z).
				for i, c := range cnt {
					if c == 0 {
						continue
					}
					lz := i % ub
					ly := (i / ub) % ub
					lx := i / (ub * ub)
					g.Data[g.Dim.Index(eb.X0+lx, eb.Y0+ly, eb.Z0+lz)] = T(sum[i] / float64(c))
				}
			}
		}
	}
}

// padFromNeighbor accumulates the pad contribution of occupied block nb
// into empty block eb across face direction f (from eb's perspective:
// nb = eb + f). sum and cnt are indexed block-locally:
// ((x−eb.X0)·ub + (y−eb.Y0))·ub + (z−eb.Z0).
func padFromNeighbor[T grid.Float](g *grid.Grid3[T], eb, nb grid.Region, f [3]int, opts GSPOptions, sum []float64, cnt []uint8) {
	ubx := eb.X1 - eb.X0
	// Walk the face plane; u,v are the two in-plane axes, w the normal.
	axis := 0
	if f[1] != 0 {
		axis = 1
	} else if f[2] != 0 {
		axis = 2
	}
	dir := f[axis] // +1: neighbor is on the high side of eb

	// For each in-plane position, average the neighbor's AvgSlices cells
	// nearest the shared face, then deposit PadLayers cells into eb.
	for u := 0; u < ubx; u++ {
		for v := 0; v < ubx; v++ {
			var acc float64
			for s := 0; s < opts.AvgSlices; s++ {
				var x, y, z int
				switch axis {
				case 0:
					if dir > 0 {
						x = nb.X0 + s
					} else {
						x = nb.X1 - 1 - s
					}
					y, z = eb.Y0+u, eb.Z0+v
				case 1:
					if dir > 0 {
						y = nb.Y0 + s
					} else {
						y = nb.Y1 - 1 - s
					}
					x, z = eb.X0+u, eb.Z0+v
				default:
					if dir > 0 {
						z = nb.Z0 + s
					} else {
						z = nb.Z1 - 1 - s
					}
					x, y = eb.X0+u, eb.Y0+v
				}
				acc += float64(g.At(x, y, z))
			}
			pad := acc / float64(opts.AvgSlices)
			for l := 0; l < opts.PadLayers; l++ {
				var x, y, z int // block-local coordinates
				switch axis {
				case 0:
					if dir > 0 {
						x = ubx - 1 - l
					} else {
						x = l
					}
					y, z = u, v
				case 1:
					if dir > 0 {
						y = ubx - 1 - l
					} else {
						y = l
					}
					x, z = u, v
				default:
					if dir > 0 {
						z = ubx - 1 - l
					} else {
						z = l
					}
					x, y = u, v
				}
				i := (x*ubx+y)*ubx + z
				sum[i] += pad
				cnt[i]++
			}
		}
	}
}
