package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/kdtree"
)

func randomMask(d grid.Dims, density float64, seed int64) *grid.Mask {
	rng := rand.New(rand.NewSource(seed))
	m := grid.NewMask(d)
	for i := 0; i < m.Len(); i++ {
		m.SetIndex(i, rng.Float64() < density)
	}
	return m
}

// clusteredMask builds a blobby mask, closer to AMR refinement patterns
// than i.i.d. noise.
func clusteredMask(d grid.Dims, blobs int, r int, seed int64) *grid.Mask {
	rng := rand.New(rand.NewSource(seed))
	m := grid.NewMask(d)
	for b := 0; b < blobs; b++ {
		cx, cy, cz := rng.Intn(d.X), rng.Intn(d.Y), rng.Intn(d.Z)
		reg := grid.Region{
			X0: cx - r, Y0: cy - r, Z0: cz - r,
			X1: cx + r, Y1: cy + r, Z1: cz + r,
		}.Intersect(d)
		m.FillRegion(reg, true)
	}
	return m
}

func TestOpSTCoversExactly(t *testing.T) {
	for _, density := range []float64{0, 0.05, 0.23, 0.5, 0.9, 1} {
		m := randomMask(grid.Dims{X: 12, Y: 10, Z: 14}, density, int64(density*100)+1)
		boxes := OpST(m)
		if err := CoveredExactlyOnce(m, boxes); err != nil {
			t.Fatalf("density %v: %v", density, err)
		}
		for _, b := range boxes {
			if b.DX != b.DY || b.DY != b.DZ {
				t.Fatalf("OpST produced non-cube box %+v", b)
			}
		}
	}
}

func TestOpSTClusteredProducesLargeCubes(t *testing.T) {
	m := clusteredMask(grid.Dims{X: 24, Y: 24, Z: 24}, 4, 7, 3)
	boxes := OpST(m)
	if err := CoveredExactlyOnce(m, boxes); err != nil {
		t.Fatal(err)
	}
	maxSide := 0
	for _, b := range boxes {
		if b.DX > maxSide {
			maxSide = b.DX
		}
	}
	if maxSide < 4 {
		t.Fatalf("clustered mask yielded max cube side %d; expected large cubes", maxSide)
	}
	// OpST must produce far fewer boxes than NaST on clustered data.
	if nast := NaST(m); len(boxes) >= len(nast) {
		t.Fatalf("OpST %d boxes, NaST %d — no consolidation", len(boxes), len(nast))
	}
}

func TestOpSTFullMaskSingleScan(t *testing.T) {
	// A fully occupied cube should be extracted as few large cubes, the
	// largest spanning the full edge.
	m := grid.NewMask(grid.Dims{X: 8, Y: 8, Z: 8})
	m.Fill(true)
	boxes := OpST(m)
	if err := CoveredExactlyOnce(m, boxes); err != nil {
		t.Fatal(err)
	}
	if boxes[0].DX != 8 {
		t.Fatalf("first extracted cube side %d, want 8", boxes[0].DX)
	}
}

func TestNaSTCoversExactly(t *testing.T) {
	m := randomMask(grid.Dims{X: 9, Y: 7, Z: 5}, 0.4, 2)
	boxes := NaST(m)
	if err := CoveredExactlyOnce(m, boxes); err != nil {
		t.Fatal(err)
	}
	if len(boxes) != m.Count() {
		t.Fatalf("NaST %d boxes, mask count %d", len(boxes), m.Count())
	}
}

func TestQuickOpSTCoverage(t *testing.T) {
	f := func(seed int64, density uint8) bool {
		m := randomMask(grid.Dims{X: 8, Y: 8, Z: 8}, float64(density%101)/100, seed)
		return CoveredExactlyOnce(m, OpST(m)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOpSTDeterministic(t *testing.T) {
	m := clusteredMask(grid.Dims{X: 16, Y: 16, Z: 16}, 3, 5, 9)
	a := OpST(m)
	b := OpST(m)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic box count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("box %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	d := grid.Dims{X: 16, Y: 16, Z: 16}
	ub := 4
	m := clusteredMask(d.Div(ub), 3, 2, 4)
	g := grid.New[float32](d)
	rng := rand.New(rand.NewSource(8))
	for i := range g.Data {
		g.Data[i] = float32(rng.NormFloat64())
	}
	ZeroUnmasked(g, m, ub)

	boxes := OpST(m)
	grids := Gather(g, boxes, ub)
	out := grid.New[float32](d)
	if err := Scatter(out, boxes, ub, grids); err != nil {
		t.Fatal(err)
	}
	if mad := grid.MaxAbsDiff(g, out); mad != 0 {
		t.Fatalf("gather/scatter not lossless: max diff %v", mad)
	}
}

func TestScatterRejectsMismatch(t *testing.T) {
	d := grid.Dims{X: 8, Y: 8, Z: 8}
	out := grid.New[float32](d)
	boxes := []kdtree.Box{{X: 0, Y: 0, Z: 0, DX: 1, DY: 1, DZ: 1}}
	bad := []*grid.Grid3[float32]{grid.New[float32](grid.Dims{X: 2, Y: 2, Z: 2})}
	if err := Scatter(out, boxes, 4, bad); err == nil {
		t.Fatal("mismatched grid dims should error")
	}
	if err := Scatter(out, boxes, 4, nil); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestGroupBoxes(t *testing.T) {
	boxes := []kdtree.Box{
		{DX: 2, DY: 2, DZ: 2},
		{X: 4, DX: 1, DY: 1, DZ: 1},
		{X: 8, DX: 2, DY: 2, DZ: 2},
		{X: 12, DX: 2, DY: 1, DZ: 1},
	}
	groups := GroupBoxes(boxes)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	// Sorted by volume: 1, 2, 8.
	if groups[0].Shape.Count() != 1 || groups[1].Shape.Count() != 2 || groups[2].Shape.Count() != 8 {
		t.Fatalf("group order wrong: %+v", groups)
	}
	if len(groups[2].Boxes) != 2 {
		t.Fatalf("cube group has %d boxes, want 2", len(groups[2].Boxes))
	}
}

func TestGSPFillsNeighborsOfOccupied(t *testing.T) {
	d := grid.Dims{X: 12, Y: 4, Z: 4}
	ub := 4
	m := grid.NewMask(d.Div(ub)) // 3×1×1 blocks
	m.Set(0, 0, 0, true)
	g := grid.New[float32](d)
	g.FillRegion(grid.Region{X0: 0, Y0: 0, Z0: 0, X1: 4, Y1: 4, Z1: 4}, 5)

	GSP(g, m, ub, GSPOptions{})
	// Middle block (empty, neighbor occupied) should be padded with ~5.
	if v := g.At(5, 1, 1); v != 5 {
		t.Fatalf("padded cell = %v, want 5", v)
	}
	// Far block has no occupied neighbor: stays zero.
	if v := g.At(9, 1, 1); v != 0 {
		t.Fatalf("isolated empty block cell = %v, want 0", v)
	}
}

func TestGSPAveragesMultipleNeighbors(t *testing.T) {
	d := grid.Dims{X: 12, Y: 12, Z: 4}
	ub := 4
	m := grid.NewMask(d.Div(ub)) // 3×3×1 blocks
	// Two occupied blocks flanking the center block along x and y.
	m.Set(0, 1, 0, true)
	m.Set(1, 0, 0, true)
	g := grid.New[float32](d)
	g.FillRegion(grid.Region{X0: 0, Y0: 4, Z0: 0, X1: 4, Y1: 8, Z1: 4}, 2)  // value 2
	g.FillRegion(grid.Region{X0: 4, Y0: 0, Z0: 0, X1: 8, Y1: 4, Z1: 4}, 10) // value 10

	GSP(g, m, ub, GSPOptions{})
	// Center block (1,1,0) receives pads from both neighbors over its full
	// depth; every cell gets both contributions → mean of 2 and 10.
	if v := g.At(5, 5, 1); v != 6 {
		t.Fatalf("doubly-padded cell = %v, want 6", v)
	}
}

func TestGSPPartialLayers(t *testing.T) {
	d := grid.Dims{X: 8, Y: 4, Z: 4}
	ub := 4
	m := grid.NewMask(d.Div(ub))
	m.Set(0, 0, 0, true)
	g := grid.New[float32](d)
	g.FillRegion(grid.Region{X1: 4, Y1: 4, Z1: 4}, 3)

	GSP(g, m, ub, GSPOptions{PadLayers: 1})
	if v := g.At(4, 0, 0); v != 3 { // first layer next to the face
		t.Fatalf("pad layer cell = %v, want 3", v)
	}
	if v := g.At(6, 0, 0); v != 0 { // beyond PadLayers
		t.Fatalf("deep cell = %v, want 0", v)
	}
}

// refGSP is the original map-accumulated GSP, kept verbatim as the
// reference for TestGSPDenseScratchEquivalence: the block-local dense
// scratch rewrite must pad bit-identically.
func refGSP[T grid.Float](g *grid.Grid3[T], mask *grid.Mask, unitBlock int, opts GSPOptions) {
	opts = opts.withDefaults(unitBlock)
	md := mask.Dim
	ub := unitBlock
	blockRegion := func(bx, by, bz int) grid.Region {
		return grid.Region{
			X0: bx * ub, Y0: by * ub, Z0: bz * ub,
			X1: (bx + 1) * ub, Y1: (by + 1) * ub, Z1: (bz + 1) * ub,
		}
	}
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for bx := 0; bx < md.X; bx++ {
		for by := 0; by < md.Y; by++ {
			for bz := 0; bz < md.Z; bz++ {
				if mask.At(bx, by, bz) {
					continue
				}
				for _, f := range faces {
					nx, ny, nz := bx+f[0], by+f[1], bz+f[2]
					if !md.Contains(nx, ny, nz) || !mask.At(nx, ny, nz) {
						continue
					}
					eb, nb := blockRegion(bx, by, bz), blockRegion(nx, ny, nz)
					refPadFromNeighbor(g, eb, nb, f, opts, sum, cnt)
				}
			}
		}
	}
	for i, s := range sum {
		g.Data[i] = T(s / float64(cnt[i]))
	}
}

func refPadFromNeighbor[T grid.Float](g *grid.Grid3[T], eb, nb grid.Region, f [3]int, opts GSPOptions, sum map[int]float64, cnt map[int]int) {
	d := g.Dim
	ubx := eb.X1 - eb.X0
	axis := 0
	if f[1] != 0 {
		axis = 1
	} else if f[2] != 0 {
		axis = 2
	}
	dir := f[axis]
	for u := 0; u < ubx; u++ {
		for v := 0; v < ubx; v++ {
			var acc float64
			for s := 0; s < opts.AvgSlices; s++ {
				var x, y, z int
				switch axis {
				case 0:
					if dir > 0 {
						x = nb.X0 + s
					} else {
						x = nb.X1 - 1 - s
					}
					y, z = eb.Y0+u, eb.Z0+v
				case 1:
					if dir > 0 {
						y = nb.Y0 + s
					} else {
						y = nb.Y1 - 1 - s
					}
					x, z = eb.X0+u, eb.Z0+v
				default:
					if dir > 0 {
						z = nb.Z0 + s
					} else {
						z = nb.Z1 - 1 - s
					}
					x, y = eb.X0+u, eb.Y0+v
				}
				acc += float64(g.At(x, y, z))
			}
			pad := acc / float64(opts.AvgSlices)
			for l := 0; l < opts.PadLayers; l++ {
				var x, y, z int
				switch axis {
				case 0:
					if dir > 0 {
						x = eb.X1 - 1 - l
					} else {
						x = eb.X0 + l
					}
					y, z = eb.Y0+u, eb.Z0+v
				case 1:
					if dir > 0 {
						y = eb.Y1 - 1 - l
					} else {
						y = eb.Y0 + l
					}
					x, z = eb.X0+u, eb.Z0+v
				default:
					if dir > 0 {
						z = eb.Z1 - 1 - l
					} else {
						z = eb.Z0 + l
					}
					x, y = eb.X0+u, eb.Y0+v
				}
				i := d.Index(x, y, z)
				sum[i] += pad
				cnt[i]++
			}
		}
	}
}

// TestGSPDenseScratchEquivalence property-tests the dense-scratch GSP
// against the retained map reference over random masks and option
// combinations: every padded cell must match bit-for-bit.
func TestGSPDenseScratchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ub := []int{2, 4}[trial%2]
		bd := grid.Dims{X: 2 + rng.Intn(3), Y: 2 + rng.Intn(3), Z: 2 + rng.Intn(3)}
		d := bd.Scale(ub)
		m := grid.NewMask(bd)
		g := grid.New[float32](d)
		for bx := 0; bx < bd.X; bx++ {
			for by := 0; by < bd.Y; by++ {
				for bz := 0; bz < bd.Z; bz++ {
					m.Set(bx, by, bz, rng.Float64() < 0.5)
				}
			}
		}
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64() * 100)
		}
		ZeroUnmasked(g, m, ub)
		opts := GSPOptions{PadLayers: rng.Intn(ub + 1), AvgSlices: rng.Intn(ub + 1)}

		want := g.Clone()
		refGSP(want, m, ub, opts)
		got := g.Clone()
		GSP(got, m, ub, opts)
		for i := range got.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				x, y, z := d.Coords(i)
				t.Fatalf("trial %d (ub=%d opts=%+v): cell (%d,%d,%d) = %v, reference %v",
					trial, ub, opts, x, y, z, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestZeroUnmasked(t *testing.T) {
	d := grid.Dims{X: 8, Y: 8, Z: 8}
	ub := 4
	m := grid.NewMask(d.Div(ub))
	m.Set(0, 0, 0, true)
	g := grid.New[float32](d)
	g.Fill(9)
	ZeroUnmasked(g, m, ub)
	if g.At(1, 1, 1) != 9 {
		t.Fatal("masked block was cleared")
	}
	if g.At(5, 5, 5) != 0 {
		t.Fatal("unmasked block was not cleared")
	}
}

func TestCoveredExactlyOnceDetectsOverlap(t *testing.T) {
	m := grid.NewMask(grid.Dims{X: 2, Y: 2, Z: 2})
	m.Fill(true)
	boxes := []kdtree.Box{
		{DX: 2, DY: 2, DZ: 2},
		{DX: 1, DY: 1, DZ: 1}, // overlaps
	}
	if err := CoveredExactlyOnce(m, boxes); err == nil {
		t.Fatal("overlap should be detected")
	}
}
