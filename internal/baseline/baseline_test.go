package baseline

import (
	"testing"

	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func testDataset(t *testing.T) *amr.Dataset {
	t.Helper()
	ds, err := sim.Generate(sim.Spec{
		Name: "b", FinestN: 32, Levels: 2, UnitBlock: 4, Seed: 5,
		LeafFractions: []float64{0.25, 0.75},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestZMeshWalkVisitsEveryStoredCellOnce(t *testing.T) {
	ds := testDataset(t)
	sk := codec.SkeletonOf(ds)
	seen := make(map[[2]int]int)
	total := 0
	walk(sk, func(li, idx int) {
		seen[[2]int{li, idx}]++
		total++
	})
	if total != ds.StoredCells() {
		t.Fatalf("walk visited %d cells, dataset stores %d", total, ds.StoredCells())
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("cell %v visited %d times", k, c)
		}
	}
}

func TestZMeshOrderIsSpatiallyLocal(t *testing.T) {
	// Consecutive stream entries must be geometrically close: project each
	// visited cell to finest-resolution coordinates and check the mean
	// jump distance is far below random shuffling.
	ds := testDataset(t)
	sk := codec.SkeletonOf(ds)
	type pt struct{ x, y, z float64 }
	var pts []pt
	walk(sk, func(li, idx int) {
		d := sk.Levels[li].Dims
		x, y, z := d.Coords(idx)
		s := float64(int(1) << uint(li))
		pts = append(pts, pt{float64(x) * s, float64(y) * s, float64(z) * s})
	})
	var sum float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].x - pts[i-1].x
		dy := pts[i].y - pts[i-1].y
		dz := pts[i].z - pts[i-1].z
		sum += dx*dx + dy*dy + dz*dz
	}
	meanSq := sum / float64(len(pts)-1)
	// Random order on a 32³ domain would give mean squared jump ~ 3·(32²/6)
	// ≈ 512; locality should be far tighter.
	if meanSq > 200 {
		t.Fatalf("zMesh order not local: mean squared jump %.1f", meanSq)
	}
}

// TestZMeshTreeVsBlock reproduces the Fig. 16 observation: on
// tree-structured AMR data (no redundancy), the zMesh interleaved
// traversal has MORE significant value changes than the level-by-level 1D
// order, which is why zMesh loses to the 1D baseline in Figs. 14/15.
func TestZMeshTreeVsBlock(t *testing.T) {
	ds := testDataset(t)
	sk := codec.SkeletonOf(ds)

	jumps := func(stream []float32) int {
		// Count significant changes: steps larger than half the stream's
		// standard-scale value.
		var scale float64
		for _, v := range stream {
			if f := float64(v); f > scale {
				scale = f
			}
		}
		thr := scale / 4
		n := 0
		for i := 1; i < len(stream); i++ {
			d := float64(stream[i]) - float64(stream[i-1])
			if d < 0 {
				d = -d
			}
			if d > thr {
				n++
			}
		}
		return n
	}

	var zstream []float32
	walk(sk, func(li, idx int) {
		zstream = append(zstream, ds.Levels[li].Grid.Data[idx])
	})
	var lstream []float32
	for _, l := range ds.Levels {
		lstream = l.MaskedValues(lstream)
	}
	zj, lj := jumps(zstream), jumps(lstream)
	t.Logf("significant changes: zMesh order %d, level order %d", zj, lj)
	// The tree-structured traversal switches levels constantly; it should
	// not be dramatically smoother than level order (the paper's point is
	// that its reordering advantage vanishes without redundancy).
	if zj == 0 && lj > 0 {
		t.Fatal("zMesh order suspiciously smooth; traversal may be wrong")
	}
}

func TestUniform3DRestrictsWithinBound(t *testing.T) {
	ds := testDataset(t)
	eb := 1e9
	u := Uniform3D{}
	blob, err := u.Compress(ds, codec.Config{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := u.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := metrics.DatasetDistortion(ds, recon)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MaxErr > eb*(1+1e-6) {
		t.Fatalf("3D baseline max err %v exceeds bound", dist.MaxErr)
	}
}

func TestUniform3DPaysRedundancyOnSparseData(t *testing.T) {
	// With a sparse multi-level hierarchy (Run2_T3 shape), the 3D baseline
	// compresses up to 16× more cells than stored; even though injected
	// values predict cheaply, its bit-rate must clearly exceed 1D's.
	ds, err := sim.Generate(sim.Spec{
		Name: "sparse3", FinestN: 64, Levels: 3, UnitBlock: 2, Seed: 9,
		LeafFractions: []float64{0.0002, 0.0056, 0.9942},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e9
	cfg := codec.Config{ErrorBound: eb}
	b3, err := (Uniform3D{}).Compress(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := (Naive1D{}).Compress(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r3 := metrics.BitRate(len(b3), ds.StoredCells())
	r1 := metrics.BitRate(len(b1), ds.StoredCells())
	if r3 < r1*1.3 {
		t.Fatalf("3D baseline bitrate %.3f should clearly exceed 1D %.3f on the sparse hierarchy", r3, r1)
	}
}

func TestNaive1DEmptyLevel(t *testing.T) {
	// A dataset whose coarse level is fully refined (empty mask) must
	// round-trip: the empty level contributes an empty section.
	fine := amr.NewLevel(grid.Dims{X: 8, Y: 8, Z: 8}, 4)
	coarse := amr.NewLevel(grid.Dims{X: 4, Y: 4, Z: 4}, 4)
	fine.Mask.Fill(true)
	for i := range fine.Grid.Data {
		fine.Grid.Data[i] = float32(i)
	}
	ds := &amr.Dataset{Name: "e", Field: "f", Ratio: 2, Levels: []*amr.Level{fine, coarse}}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	blob, err := (Naive1D{}).Compress(ds, codec.Config{ErrorBound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := (Naive1D{}).Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if recon.Levels[1].StoredCells() != 0 {
		t.Fatal("empty level grew cells")
	}
}

func TestCodecNames(t *testing.T) {
	if (Naive1D{}).Name() != "1D" || (ZMesh{}).Name() != "zMesh" || (Uniform3D{}).Name() != "3D" {
		t.Fatal("codec names changed; experiment tables depend on them")
	}
}
