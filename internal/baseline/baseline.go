// Package baseline implements the three comparison codecs of the TAC
// paper's evaluation (Sec. 4.1): the naive 1D baseline (each level
// compressed separately as a 1D stream), zMesh (cross-level locality
// reordering into one 1D stream, per Luo et al. IPDPS'21 as characterized
// in the paper's Fig. 16), and the 3D baseline (up-sample coarse levels,
// merge to uniform resolution, compress once in 3D).
package baseline

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/bitio"
	"repro/internal/codec"
	"repro/internal/sz"
)

// Codec IDs used in the shared container format.
const (
	IDNaive1D   = 2
	IDZMesh     = 3
	IDUniform3D = 4
)

// Naive1D compresses each AMR level's stored values as an independent 1D
// stream.
type Naive1D struct{}

// Name implements codec.Codec.
func (Naive1D) Name() string { return "1D" }

// Compress implements codec.Codec.
func (Naive1D) Compress(ds *amr.Dataset, cfg codec.Config) ([]byte, error) {
	cfg = cfg.WithDefaults()
	var body []byte
	for li, l := range ds.Levels {
		vals := l.MaskedValues(nil)
		var blob []byte
		if len(vals) > 0 {
			eb := cfg.LevelEB(li, l)
			var err error
			blob, _, err = sz.Compress1D(vals, sz.Options{ErrorBound: eb, QuantBits: cfg.QuantBits})
			if err != nil {
				return nil, fmt.Errorf("baseline: 1D level %d: %w", li, err)
			}
		}
		body = bitio.AppendBytes(body, blob)
	}
	return codec.EncodeContainer(IDNaive1D, codec.SkeletonOf(ds), body)
}

// Decompress implements codec.Codec.
func (Naive1D) Decompress(blob []byte) (*amr.Dataset, error) {
	sk, body, err := codec.DecodeContainer(blob, IDNaive1D)
	if err != nil {
		return nil, err
	}
	ds := sk.NewDataset()
	for li, l := range ds.Levels {
		sec, n, err := bitio.Bytes(body)
		if err != nil {
			return nil, fmt.Errorf("baseline: 1D level %d section: %w", li, err)
		}
		body = body[n:]
		if len(sec) == 0 {
			continue
		}
		vals, err := sz.Decompress1D[amr.Value](sec)
		if err != nil {
			return nil, fmt.Errorf("baseline: 1D level %d: %w", li, err)
		}
		if len(vals) != l.StoredCells() {
			return nil, fmt.Errorf("baseline: 1D level %d: %d values, want %d", li, len(vals), l.StoredCells())
		}
		l.SetMaskedValues(vals)
	}
	return ds, nil
}

// ZMesh reorders all levels' stored values into a single 1D stream by
// walking the coarsest level's layout and descending into refined regions
// in place, so points that are geometric neighbors across levels sit close
// in the stream (the tree-structured-AMR interpretation of zMesh in the
// paper's Fig. 16a), then compresses the stream in 1D.
type ZMesh struct{}

// Name implements codec.Codec.
func (ZMesh) Name() string { return "zMesh" }

// walk visits every stored cell in zMesh order, calling fn with the owning
// level and the cell's linear index in that level's grid.
func walk(sk codec.Skeleton, fn func(level, cellIdx int)) {
	L := len(sk.Levels)
	ratio := sk.Ratio
	var descend func(li, x, y, z int)
	descend = func(li, x, y, z int) {
		info := sk.Levels[li]
		ub := info.UnitBlock
		if info.Mask.At(x/ub, y/ub, z/ub) {
			fn(li, info.Dims.Index(x, y, z))
			return
		}
		if li == 0 {
			// Validated datasets cannot reach here: the finest level owns
			// every cell not owned above it.
			panic(fmt.Sprintf("baseline: cell (%d,%d,%d) unowned at finest level", x, y, z))
		}
		for dx := 0; dx < ratio; dx++ {
			for dy := 0; dy < ratio; dy++ {
				for dz := 0; dz < ratio; dz++ {
					descend(li-1, x*ratio+dx, y*ratio+dy, z*ratio+dz)
				}
			}
		}
	}
	cd := sk.Levels[L-1].Dims
	for x := 0; x < cd.X; x++ {
		for y := 0; y < cd.Y; y++ {
			for z := 0; z < cd.Z; z++ {
				descend(L-1, x, y, z)
			}
		}
	}
}

// Compress implements codec.Codec.
func (ZMesh) Compress(ds *amr.Dataset, cfg codec.Config) ([]byte, error) {
	cfg = cfg.WithDefaults()
	sk := codec.SkeletonOf(ds)
	stream := make([]amr.Value, 0, ds.StoredCells())
	walk(sk, func(li, idx int) {
		stream = append(stream, ds.Levels[li].Grid.Data[idx])
	})
	blob, _, err := sz.Compress1D(stream, sz.Options{
		ErrorBound: cfg.ErrorBound, Mode: cfg.Mode, QuantBits: cfg.QuantBits,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: zMesh: %w", err)
	}
	return codec.EncodeContainer(IDZMesh, sk, blob)
}

// Decompress implements codec.Codec.
func (ZMesh) Decompress(blob []byte) (*amr.Dataset, error) {
	sk, body, err := codec.DecodeContainer(blob, IDZMesh)
	if err != nil {
		return nil, err
	}
	stream, err := sz.Decompress1D[amr.Value](body)
	if err != nil {
		return nil, fmt.Errorf("baseline: zMesh: %w", err)
	}
	ds := sk.NewDataset()
	pos := 0
	walk(sk, func(li, idx int) {
		if pos < len(stream) {
			ds.Levels[li].Grid.Data[idx] = stream[pos]
		}
		pos++
	})
	if pos != len(stream) {
		return nil, fmt.Errorf("baseline: zMesh stream holds %d values, walk visited %d", len(stream), pos)
	}
	return ds, nil
}

// Uniform3D is the 3D baseline: up-sample every coarse level by piecewise-
// constant injection, merge into one uniform grid at the finest
// resolution, and compress that grid in 3D. Its compression ratio is
// charged against the original AMR cell count, so the redundant up-sampled
// cells are exactly the overhead Sec. 2.3.2 describes.
type Uniform3D struct{}

// Name implements codec.Codec.
func (Uniform3D) Name() string { return "3D" }

// Compress implements codec.Codec.
func (Uniform3D) Compress(ds *amr.Dataset, cfg codec.Config) ([]byte, error) {
	cfg = cfg.WithDefaults()
	uni := ds.FlattenToUniform()
	blob, _, err := sz.Compress3D(uni, sz.Options{
		ErrorBound: cfg.ErrorBound, Mode: cfg.Mode, QuantBits: cfg.QuantBits,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: 3D: %w", err)
	}
	return codec.EncodeContainer(IDUniform3D, codec.SkeletonOf(ds), blob)
}

// Decompress implements codec.Codec.
func (Uniform3D) Decompress(blob []byte) (*amr.Dataset, error) {
	sk, body, err := codec.DecodeContainer(blob, IDUniform3D)
	if err != nil {
		return nil, err
	}
	uni, err := sz.Decompress3D[amr.Value](body)
	if err != nil {
		return nil, fmt.Errorf("baseline: 3D: %w", err)
	}
	ds := sk.NewDataset()
	want := ds.FinestDims()
	if uni.Dim != want {
		return nil, fmt.Errorf("baseline: 3D grid %v, want %v", uni.Dim, want)
	}
	// Restrict the uniform grid back onto each level: a stored coarse cell
	// is the mean of its injection region (each decompressed cell is
	// within the bound, so the mean is too).
	for li, l := range ds.Levels {
		s := ds.LevelScale(li)
		md := l.Mask.Dim
		inv := 1.0 / float64(s*s*s)
		for bx := 0; bx < md.X; bx++ {
			for by := 0; by < md.Y; by++ {
				for bz := 0; bz < md.Z; bz++ {
					if !l.Mask.At(bx, by, bz) {
						continue
					}
					r := l.BlockRegion(bx, by, bz)
					for x := r.X0; x < r.X1; x++ {
						for y := r.Y0; y < r.Y1; y++ {
							for z := r.Z0; z < r.Z1; z++ {
								var sum float64
								for dx := 0; dx < s; dx++ {
									for dy := 0; dy < s; dy++ {
										base := uni.Dim.Index(x*s+dx, y*s+dy, z*s)
										for _, v := range uni.Data[base : base+s] {
											sum += float64(v)
										}
									}
								}
								l.Grid.Set(x, y, z, amr.Value(sum*inv))
							}
						}
					}
				}
			}
		}
	}
	return ds, nil
}

var _ codec.Codec = Naive1D{}
var _ codec.Codec = ZMesh{}
var _ codec.Codec = Uniform3D{}
