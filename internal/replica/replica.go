// Package replica provides a multi-source io.ReaderAt: an ordered set of
// byte-identical copies of one archive (the local file first, then
// secondary replicas) read through per-request failover. Every read tries
// the highest-priority healthy source and walks down the list on failure,
// so one bad replica never stalls a request; a source that fails
// DemoteAfter consecutive reads is demoted by a circuit breaker and only
// probed again after a bounded exponential backoff, so a dead source
// costs one probe per backoff window instead of one failed syscall per
// read. The serving layer mounts an archive.Reader directly on a Multi,
// and the repair path uses a replicas-only Multi as its fetch source.
//
// Source is deliberately tiny — io.ReaderAt plus a label — so an HTTP
// range-request source over object storage slots in without touching the
// failover machinery.
package replica

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Source is one copy of the archive: any io.ReaderAt plus a label for
// health reporting. Sources that also implement io.Closer are closed by
// Multi.Close.
type Source interface {
	io.ReaderAt
	Label() string
}

// readerSource adapts a plain io.ReaderAt.
type readerSource struct {
	r     io.ReaderAt
	label string
}

func (s readerSource) ReadAt(p []byte, off int64) (int, error) { return s.r.ReadAt(p, off) }
func (s readerSource) Label() string                           { return s.label }

// Reader wraps any io.ReaderAt as a Source.
func Reader(r io.ReaderAt, label string) Source { return readerSource{r: r, label: label} }

// FileSource is a Source over a local file. Multi.Close closes it.
type FileSource struct {
	f    *os.File
	size int64
}

func (s *FileSource) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }
func (s *FileSource) Label() string                           { return s.f.Name() }
func (s *FileSource) Close() error                            { return s.f.Close() }

// Size returns the file's size at open time — the archive size the
// serving layer passes to archive.Open.
func (s *FileSource) Size() int64 { return s.size }

// OpenFile opens the file at path as a Source.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{f: f, size: st.Size()}, nil
}

// Config tunes the failover machinery. The zero value is ready to use.
type Config struct {
	// DemoteAfter is the consecutive-failure count that trips a source's
	// circuit breaker. Default 3.
	DemoteAfter int
	// Probe is the initial backoff before a demoted source is tried
	// again; each failed probe doubles it up to MaxProbe. Defaults
	// 250ms and 30s.
	Probe    time.Duration
	MaxProbe time.Duration
	// Now is the clock, a seam for deterministic tests. Default time.Now.
	Now func() time.Time
}

func (c *Config) fill() {
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 3
	}
	if c.Probe <= 0 {
		c.Probe = 250 * time.Millisecond
	}
	if c.MaxProbe <= 0 {
		c.MaxProbe = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// sourceState is one source plus its health ledger.
type sourceState struct {
	src Source

	mu        sync.Mutex
	streak    int  // consecutive failures
	demoted   bool // circuit breaker open
	retryAt   time.Time
	backoff   time.Duration
	reads     int64 // successful reads served
	failures  int64
	demotions int64 // breaker trips, including failed probes that re-arm it
}

// candidate reports whether the source should be tried on the primary
// pass: healthy, or demoted with its probe window due.
func (ss *sourceState) candidate(now time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return !ss.demoted || !now.Before(ss.retryAt)
}

func (ss *sourceState) succeed() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.reads++
	ss.streak = 0
	ss.demoted = false
	ss.backoff = 0
}

func (ss *sourceState) fail(now time.Time, cfg Config) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.failures++
	ss.streak++
	if !ss.demoted && ss.streak < cfg.DemoteAfter {
		return
	}
	// Trip (or re-arm, for a failed probe) the breaker with doubled,
	// capped backoff.
	if ss.backoff == 0 {
		ss.backoff = cfg.Probe
	} else if ss.backoff < cfg.MaxProbe {
		ss.backoff *= 2
		if ss.backoff > cfg.MaxProbe {
			ss.backoff = cfg.MaxProbe
		}
	}
	ss.demoted = true
	ss.demotions++
	ss.retryAt = now.Add(ss.backoff)
}

// SourceStats is one source's health snapshot.
type SourceStats struct {
	Label      string `json:"label"`
	Reads      int64  `json:"reads"`
	Failures   int64  `json:"failures"`
	Demotions  int64  `json:"demotions"`
	Demoted    bool   `json:"demoted"`
	FailStreak int    `json:"fail_streak"`
}

// Multi is the failover ReaderAt over an ordered set of sources. It is
// safe for concurrent use.
type Multi struct {
	cfg  Config
	srcs []*sourceState
}

// New builds a Multi over sources, tried in the given order. At least one
// source is required.
func New(cfg Config, sources ...Source) (*Multi, error) {
	if len(sources) == 0 {
		return nil, errors.New("replica: no sources")
	}
	cfg.fill()
	m := &Multi{cfg: cfg, srcs: make([]*sourceState, len(sources))}
	for i, s := range sources {
		m.srcs[i] = &sourceState{src: s}
	}
	return m, nil
}

// ReadAt serves the read from the first source that returns the full
// span, walking the list in priority order. Demoted sources whose probe
// window has not arrived are skipped on the first pass but retried as a
// last resort when every other source fails — an archive with one
// surviving copy keeps serving even mid-backoff. A short read (a replica
// lagging generations is a strict byte-prefix of the primary) counts as
// that source failing. The returned error is the last source's, wrapped
// with its label.
func (m *Multi) ReadAt(p []byte, off int64) (int, error) {
	now := m.cfg.Now()
	var lastErr error
	tried := make([]bool, len(m.srcs))
	for pass := 0; pass < 2; pass++ {
		for i, ss := range m.srcs {
			if tried[i] || (pass == 0 && !ss.candidate(now)) {
				continue
			}
			tried[i] = true
			n, err := ss.src.ReadAt(p, off)
			if n == len(p) {
				// A full read is a success even at io.EOF (the span ends
				// exactly at the source's last byte).
				ss.succeed()
				return n, nil
			}
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			ss.fail(now, m.cfg)
			lastErr = fmt.Errorf("replica: source %s: %w", ss.src.Label(), err)
		}
	}
	return 0, lastErr
}

// Stats snapshots every source's health, in priority order.
func (m *Multi) Stats() []SourceStats {
	out := make([]SourceStats, len(m.srcs))
	for i, ss := range m.srcs {
		ss.mu.Lock()
		out[i] = SourceStats{
			Label:      ss.src.Label(),
			Reads:      ss.reads,
			Failures:   ss.failures,
			Demotions:  ss.demotions,
			Demoted:    ss.demoted,
			FailStreak: ss.streak,
		}
		ss.mu.Unlock()
	}
	return out
}

// Len returns the number of sources.
func (m *Multi) Len() int { return len(m.srcs) }

// Close closes every source that implements io.Closer, returning the
// first error.
func (m *Multi) Close() error {
	var first error
	for _, ss := range m.srcs {
		if c, ok := ss.src.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
