package replica

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/faultio"
)

var errInjected = errors.New("injected I/O error")

func blob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

// rig is a Multi over nf faultio-wrapped copies of the same bytes, with a
// manual clock.
type rig struct {
	m     *Multi
	fr    []*faultio.ReaderAt
	now   time.Time
	clock func() time.Time
}

func newRig(t *testing.T, nf int, cfg Config) *rig {
	t.Helper()
	data := blob(4096)
	rg := &rig{now: time.Unix(1000, 0)}
	cfg.Now = func() time.Time { return rg.now }
	srcs := make([]Source, nf)
	for i := range srcs {
		fr := faultio.New(bytes.NewReader(data))
		rg.fr = append(rg.fr, fr)
		srcs[i] = Reader(fr, string(rune('a'+i)))
	}
	m, err := New(cfg, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	rg.m = m
	return rg
}

func (rg *rig) read(t *testing.T, off int64, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if _, err := rg.m.ReadAt(p, off); err != nil {
		t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
	}
	return p
}

func TestNoSources(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no sources succeeded")
	}
}

func TestPrimaryServesWhenHealthy(t *testing.T) {
	rg := newRig(t, 3, Config{})
	got := rg.read(t, 32, 16)
	want := blob(4096)[32:48]
	if !bytes.Equal(got, want) {
		t.Fatalf("read = %x, want %x", got, want)
	}
	if c := rg.fr[1].Calls() + rg.fr[2].Calls(); c != 0 {
		t.Fatalf("replicas saw %d calls while the primary is healthy", c)
	}
}

func TestFailoverPerRead(t *testing.T) {
	rg := newRig(t, 2, Config{DemoteAfter: 100})
	// Primary has a bad sector at [100, 200); replica is clean.
	rg.fr[0].SetPlan(faultio.FailTouching(100, 200, errInjected))
	got := rg.read(t, 96, 32)
	if !bytes.Equal(got, blob(4096)[96:128]) {
		t.Fatalf("failover read returned wrong bytes")
	}
	// Reads off the bad sector still come from the primary.
	before := rg.fr[1].Calls()
	rg.read(t, 1000, 16)
	if rg.fr[1].Calls() != before {
		t.Fatal("clean-offset read consulted the replica")
	}
}

func TestShortReadFailsOver(t *testing.T) {
	rg := newRig(t, 2, Config{})
	// A replica lagging generations is a strict prefix: model it with a
	// short read on every call to the primary.
	rg.fr[0].SetPlan(func(int64, int64, int) *faultio.Fault { return &faultio.Fault{Short: 4} })
	got := rg.read(t, 0, 64)
	if !bytes.Equal(got, blob(4096)[:64]) {
		t.Fatalf("short-read failover returned wrong bytes")
	}
}

func TestFlippedBytesAreNotReplicasProblem(t *testing.T) {
	// A silent in-flight flip on the primary is NOT detected here — that
	// is the archive layer's digest check. Multi must pass it through.
	rg := newRig(t, 2, Config{})
	rg.fr[0].SetPlan(faultio.FlipByte(10, 0x40))
	got := rg.read(t, 0, 16)
	want := blob(4096)[:16]
	if got[10] != want[10]^0x40 {
		t.Fatalf("flip not passed through: %x", got[10])
	}
}

func TestDemoteAndProbeBackoff(t *testing.T) {
	rg := newRig(t, 2, Config{DemoteAfter: 3, Probe: time.Second, MaxProbe: 4 * time.Second})
	rg.fr[0].SetPlan(faultio.FailTouching(0, 4096, errInjected))
	for i := 0; i < 3; i++ {
		rg.read(t, 0, 8)
	}
	st := rg.m.Stats()
	if !st[0].Demoted || st[0].Demotions != 1 || st[0].Failures != 3 {
		t.Fatalf("after 3 failures: %+v", st[0])
	}
	// While demoted and inside the backoff window the primary is skipped.
	calls := rg.fr[0].Calls()
	rg.read(t, 0, 8)
	if rg.fr[0].Calls() != calls {
		t.Fatal("demoted source was tried inside its backoff window")
	}
	// At probe time it is tried once, fails, and the backoff doubles.
	rg.now = rg.now.Add(time.Second)
	rg.read(t, 0, 8)
	if rg.fr[0].Calls() != calls+1 {
		t.Fatalf("probe-due source saw %d calls, want %d", rg.fr[0].Calls(), calls+1)
	}
	if st := rg.m.Stats(); st[0].Demotions != 2 {
		t.Fatalf("failed probe should re-arm the breaker: %+v", st[0])
	}
	rg.now = rg.now.Add(time.Second) // 1s into the doubled 2s window: still skipped
	calls = rg.fr[0].Calls()
	rg.read(t, 0, 8)
	if rg.fr[0].Calls() != calls {
		t.Fatal("re-armed source was probed before the doubled backoff elapsed")
	}
	// Heal the source; the next due probe succeeds and re-promotes it.
	rg.fr[0].SetPlan(nil)
	rg.now = rg.now.Add(2 * time.Second)
	rg.read(t, 0, 8)
	st = rg.m.Stats()
	if st[0].Demoted || st[0].FailStreak != 0 {
		t.Fatalf("healed probe should re-promote: %+v", st[0])
	}
	// Re-promoted primary serves again without touching the replica.
	replicaCalls := rg.fr[1].Calls()
	rg.read(t, 0, 8)
	if rg.fr[1].Calls() != replicaCalls {
		t.Fatal("re-promoted primary did not take the read back")
	}
}

func TestAllDemotedStillServes(t *testing.T) {
	// Every source demoted and mid-backoff: reads must still try them
	// all as a last resort rather than failing outright.
	rg := newRig(t, 2, Config{DemoteAfter: 1, Probe: time.Hour})
	rg.fr[0].SetPlan(faultio.FailTouching(0, 4096, errInjected))
	rg.fr[1].SetPlan(faultio.FailTouching(0, 4096, errInjected))
	p := make([]byte, 8)
	if _, err := rg.m.ReadAt(p, 0); err == nil {
		t.Fatal("read with every source failing succeeded")
	}
	rg.fr[1].SetPlan(nil) // one copy survives, still demoted
	got := rg.read(t, 0, 8)
	if !bytes.Equal(got, blob(4096)[:8]) {
		t.Fatal("last-resort read returned wrong bytes")
	}
}

func TestAllSourcesFailReturnsLastError(t *testing.T) {
	rg := newRig(t, 3, Config{})
	for _, fr := range rg.fr {
		fr.SetPlan(faultio.FailTouching(0, 4096, errInjected))
	}
	p := make([]byte, 8)
	_, err := rg.m.ReadAt(p, 0)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want wrapped errInjected", err)
	}
}

func TestFullReadAtEOFIsSuccess(t *testing.T) {
	// bytes.Reader returns (n, io.EOF) for a span ending exactly at the
	// last byte on some paths; a full read must count as success.
	data := blob(64)
	m, err := New(Config{}, Reader(bytes.NewReader(data), "only"))
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 16)
	n, rerr := m.ReadAt(p, 48)
	if n != 16 || rerr != nil {
		t.Fatalf("tail read = %d, %v", n, rerr)
	}
	if st := m.Stats(); st[0].Failures != 0 {
		t.Fatalf("tail read counted as failure: %+v", st[0])
	}
}

func TestReadPastEOFFails(t *testing.T) {
	data := blob(64)
	m, err := New(Config{}, Reader(bytes.NewReader(data), "only"))
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 16)
	if _, err := m.ReadAt(p, 60); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("past-EOF read = %v", err)
	}
}
