package core

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/grid"
)

// TestEngineMatchesTAC checks that the pinned-scratch Engine — fresh,
// zero-valued, and warm — produces byte-identical payloads and identical
// reconstructions to the one-shot TAC codec, serial and parallel.
func TestEngineMatchesTAC(t *testing.T) {
	ds := testDataset(t, 0.3, 11)
	cfg := codec.Config{ErrorBound: 1e9}

	ref, err := TAC{}.Compress(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRecon, err := TAC{}.Decompress(ref)
	if err != nil {
		t.Fatal(err)
	}

	var zero Engine // zero value must be usable, not just NewEngine's
	engines := []*Engine{&zero, NewEngine(0), NewEngine(-1), NewEngine(3)}
	for _, eng := range engines {
		for round := 0; round < 2; round++ { // second round runs on warm scratch
			blob, err := eng.Compress(ds, cfg)
			if err != nil {
				t.Fatalf("Workers=%d round %d: %v", eng.Workers, round, err)
			}
			if !bytes.Equal(blob, ref) {
				t.Fatalf("Workers=%d round %d: engine payload differs from TAC", eng.Workers, round)
			}
			recon, err := eng.Decompress(blob)
			if err != nil {
				t.Fatalf("Workers=%d round %d: %v", eng.Workers, round, err)
			}
			for li := range refRecon.Levels {
				if grid.MaxAbsDiff(recon.Levels[li].Grid, refRecon.Levels[li].Grid) != 0 {
					t.Fatalf("Workers=%d round %d: level %d reconstruction differs from serial TAC", eng.Workers, round, li)
				}
			}
		}
	}
}

// TestParallelDecompressMatchesSerialTAC checks the level/batch fan-out of
// TAC{Workers} against the serial decoder on datasets covering all three
// strategies.
func TestParallelDecompressMatchesSerialTAC(t *testing.T) {
	for _, frac := range []float64{0.1, 0.55, 0.95} {
		ds := testDataset(t, frac, int64(20+int(frac*100)))
		blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e9, Workers: -1})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := TAC{}.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{-1, 2, 4} {
			got, err := TAC{Workers: w}.Decompress(blob)
			if err != nil {
				t.Fatalf("frac %v workers %d: %v", frac, w, err)
			}
			for li := range ref.Levels {
				if grid.MaxAbsDiff(got.Levels[li].Grid, ref.Levels[li].Grid) != 0 {
					t.Fatalf("frac %v workers %d: level %d differs from serial", frac, w, li)
				}
				if got.Levels[li].Mask.Count() != ref.Levels[li].Mask.Count() {
					t.Fatalf("frac %v workers %d: level %d mask differs", frac, w, li)
				}
			}
		}
	}
}
