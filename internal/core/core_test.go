package core

import (
	"math"
	"testing"

	"repro/internal/amr"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sz"
)

// testDataset builds a small two-level dataset with the given fine-level
// volume fraction.
func testDataset(t *testing.T, fineFrac float64, seed int64) *amr.Dataset {
	t.Helper()
	ds, err := sim.Generate(sim.Spec{
		Name: "test", FinestN: 32, Levels: 2, UnitBlock: 4, Seed: seed,
		LeafFractions: []float64{fineFrac, 1 - fineFrac},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func allCodecs() []codec.Codec {
	return []codec.Codec{TAC{}, baseline.Naive1D{}, baseline.ZMesh{}, baseline.Uniform3D{}}
}

func TestAllCodecsRoundTripWithinBound(t *testing.T) {
	ds := testDataset(t, 0.25, 1)
	eb := 1e8 // baryon density scale ~1e11
	for _, c := range allCodecs() {
		blob, err := c.Compress(ds, codec.Config{ErrorBound: eb})
		if err != nil {
			t.Fatalf("%s: compress: %v", c.Name(), err)
		}
		got, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: decompress: %v", c.Name(), err)
		}
		if got.Name != ds.Name || len(got.Levels) != len(ds.Levels) {
			t.Fatalf("%s: structure mismatch", c.Name())
		}
		dist, err := metrics.DatasetDistortion(ds, got)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if dist.MaxErr > eb*(1+1e-6) {
			t.Fatalf("%s: max error %v exceeds bound %v", c.Name(), dist.MaxErr, eb)
		}
		if dist.N != ds.StoredCells() {
			t.Fatalf("%s: compared %d cells, want %d", c.Name(), dist.N, ds.StoredCells())
		}
	}
}

func TestAllCodecsCompress(t *testing.T) {
	// Compression must actually shrink the data at a loose bound.
	ds := testDataset(t, 0.25, 2)
	eb := 1e9
	for _, c := range allCodecs() {
		blob, err := c.Compress(ds, codec.Config{ErrorBound: eb})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if cr := metrics.CompressionRatio(ds.OriginalBytes(), len(blob)); cr < 2 {
			t.Fatalf("%s: compression ratio %.2f < 2", c.Name(), cr)
		}
	}
}

func TestTACStrategySelection(t *testing.T) {
	cfg := codec.Config{}.WithDefaults()
	cases := []struct {
		density float64
		want    codec.Strategy
	}{
		{0.01, codec.OpST},
		{0.49, codec.OpST},
		{0.50, codec.AKD},
		{0.59, codec.AKD},
		{0.60, codec.GSP},
		{0.99, codec.GSP},
	}
	for _, c := range cases {
		if got := PickStrategy(c.density, cfg); got != c.want {
			t.Fatalf("density %v: strategy %v, want %v", c.density, got, c.want)
		}
	}
	// Forced strategies bypass the filter.
	cfg.Strategy = codec.NaST
	if got := PickStrategy(0.01, cfg); got != codec.NaST {
		t.Fatalf("forced strategy ignored: %v", got)
	}
}

func TestTACForcedStrategiesRoundTrip(t *testing.T) {
	ds := testDataset(t, 0.4, 3)
	eb := 5e8
	for _, st := range []codec.Strategy{codec.ZF, codec.NaST, codec.OpST, codec.AKD, codec.GSP, codec.ClassicKD} {
		blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: eb, Strategy: st})
		if err != nil {
			t.Fatalf("%s: compress: %v", st, err)
		}
		got, err := TAC{}.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: decompress: %v", st, err)
		}
		dist, err := metrics.DatasetDistortion(ds, got)
		if err != nil {
			t.Fatal(err)
		}
		if dist.MaxErr > eb*(1+1e-6) {
			t.Fatalf("%s: max error %v exceeds bound", st, dist.MaxErr)
		}
	}
}

func TestTACRelativeMode(t *testing.T) {
	ds := testDataset(t, 0.3, 4)
	rel := 1e-3
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: rel, Mode: sz.Rel})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TAC{}.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Per level, the bound is rel × that level's stored-value range.
	for li := range ds.Levels {
		ov := ds.Levels[li].MaskedValues(nil)
		rv := got.Levels[li].MaskedValues(nil)
		d, err := metrics.SliceDistortion(ov, rv)
		if err != nil {
			t.Fatal(err)
		}
		if d.MaxErr > rel*d.Range*(1+1e-6) {
			t.Fatalf("level %d: max err %v exceeds rel bound %v", li, d.MaxErr, rel*d.Range)
		}
	}
}

func TestTACPerLevelErrorBounds(t *testing.T) {
	// LevelScales {4,1}: the fine level gets a 4× looser bound.
	ds := testDataset(t, 0.3, 5)
	eb := 1e8
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: eb, LevelScales: []float64{4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TAC{}.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	fine, _ := metrics.SliceDistortion(ds.Levels[0].MaskedValues(nil), got.Levels[0].MaskedValues(nil))
	coarse, _ := metrics.SliceDistortion(ds.Levels[1].MaskedValues(nil), got.Levels[1].MaskedValues(nil))
	if fine.MaxErr > 4*eb*(1+1e-6) {
		t.Fatalf("fine level err %v exceeds scaled bound", fine.MaxErr)
	}
	if coarse.MaxErr > eb*(1+1e-6) {
		t.Fatalf("coarse level err %v exceeds base bound", coarse.MaxErr)
	}
	// The scaled payload should be smaller than the uniform one.
	uniform, err := TAC{}.Compress(ds, codec.Config{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= len(uniform) {
		t.Fatalf("4:1 scaling produced payload %d ≥ uniform %d", len(blob), len(uniform))
	}
}

func TestAdaptiveBaselineSwitch(t *testing.T) {
	// Dense finest level (75%) with AdaptiveBaseline: the payload should be
	// a 3D-baseline container, and TAC.Decompress must still read it.
	ds := testDataset(t, 0.75, 6)
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e8, AdaptiveBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	u3 := baseline.Uniform3D{}
	if _, err := u3.Decompress(blob); err != nil {
		t.Fatalf("payload is not a 3D-baseline container: %v", err)
	}
	got, err := TAC{}.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := metrics.DatasetDistortion(ds, got)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MaxErr > 1e8*(1+1e-6) {
		t.Fatalf("max err %v exceeds bound", dist.MaxErr)
	}

	// Sparse finest level: stays a TAC container.
	ds2 := testDataset(t, 0.2, 7)
	blob2, err := TAC{}.Compress(ds2, codec.Config{ErrorBound: 1e8, AdaptiveBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u3.Decompress(blob2); err == nil {
		t.Fatal("sparse dataset should not be routed to the 3D baseline")
	}
}

func TestCodecIDMismatch(t *testing.T) {
	ds := testDataset(t, 0.3, 8)
	blob, err := (baseline.Naive1D{}).Compress(ds, codec.Config{ErrorBound: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	var tc TAC
	if _, err := tc.Decompress(blob); err == nil {
		t.Fatal("TAC must reject a 1D-baseline payload")
	}
	var zm baseline.ZMesh
	if _, err := zm.Decompress(blob); err == nil {
		t.Fatal("zMesh must reject a 1D-baseline payload")
	}
}

func TestCorruptContainer(t *testing.T) {
	ds := testDataset(t, 0.3, 9)
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	var tc TAC
	if _, err := tc.Decompress(nil); err == nil {
		t.Fatal("nil payload should error")
	}
	if _, err := tc.Decompress(blob[:len(blob)/3]); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestMultiLevelDatasetRoundTrip(t *testing.T) {
	ds, err := sim.Generate(sim.Spec{
		Name: "t3", FinestN: 64, Levels: 3, UnitBlock: 4, Seed: 10,
		LeafFractions: []float64{0.02, 0.18, 0.80},
	}, sim.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e8
	for _, c := range allCodecs() {
		blob, err := c.Compress(ds, codec.Config{ErrorBound: eb})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dist, err := metrics.DatasetDistortion(ds, got)
		if err != nil {
			t.Fatal(err)
		}
		if dist.MaxErr > eb*(1+1e-6) {
			t.Fatalf("%s: max err %v exceeds bound", c.Name(), dist.MaxErr)
		}
	}
}

func TestVelocityFieldRoundTrip(t *testing.T) {
	// Velocities are signed; make sure nothing assumes positivity.
	ds, err := sim.Generate(sim.Spec{
		Name: "v", FinestN: 32, Levels: 2, UnitBlock: 4, Seed: 11,
		LeafFractions: []float64{0.3, 0.7},
	}, sim.VelocityX)
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e4 // velocity scale ~1e7
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TAC{}.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := metrics.DatasetDistortion(ds, got)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MaxErr > eb*(1+1e-6) {
		t.Fatalf("max err %v exceeds bound", dist.MaxErr)
	}
}

func TestTighterBoundHigherPSNR(t *testing.T) {
	ds := testDataset(t, 0.25, 12)
	var prevPSNR float64 = math.Inf(-1)
	for _, eb := range []float64{1e10, 1e9, 1e8} {
		blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		got, err := TAC{}.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := metrics.DatasetDistortion(ds, got)
		if err != nil {
			t.Fatal(err)
		}
		if p := dist.PSNR(); p < prevPSNR {
			t.Fatalf("eb %v: PSNR %v dropped below %v", eb, p, prevPSNR)
		} else {
			prevPSNR = p
		}
	}
}

func TestParallelWorkersIdenticalPayload(t *testing.T) {
	ds := testDataset(t, 0.25, 14)
	serial, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e9, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("parallel payload length %d differs from serial %d", len(par), len(serial))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("payloads differ at byte %d", i)
		}
	}
}
