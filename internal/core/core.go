// Package core implements TAC, the paper's primary contribution: level-wise
// 3D error-bounded lossy compression of tree-structured AMR data with a
// density-driven hybrid of three pre-process strategies (Sec. 3):
//
//   - density < T1 (50%): OpST — optimized sparse-tensor extraction of
//     maximal non-empty cubes (Algorithm 1);
//   - T1 ≤ density < T2 (60%): AKDTree — adaptive k-d tree extraction
//     (Algorithm 2);
//   - density ≥ T2: GSP — ghost-shell padding of the few empty blocks
//     (Algorithm 3), compressing the whole level grid.
//
// Extracted sub-blocks of equal shape are merged into one multi-block SZ
// stream (the paper's "4D arrays"). Per-level error bounds support the
// adaptive tuning of Sec. 4.5, and the optional Sec. 4.4 outer switch hands
// the entire dataset to the 3D baseline when the finest level is dense.
//
// Every extraction is a pure function of the occupancy mask, which the
// container stores; decompression replays it, so no coordinates are
// serialized.
//
// Both directions run on the pooled sz engine: one-shot TAC values draw
// Encoder/Decoder scratch from process-wide pools, and Engine pins a
// private pair for single-goroutine repeated-snapshot campaigns.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/amr"
	"repro/internal/baseline"
	"repro/internal/bitio"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/preprocess"
	"repro/internal/sz"
)

// ID is TAC's codec identifier in the shared container format.
const ID = 1

// encoders and decoders hold warm sz scratch — including the Huffman
// encode arenas and the decode-side lookup tables — for the one-shot
// entry points, so even codec.Codec-interface callers stop paying
// per-call allocation once the process is warm.
var (
	encoders sz.EncoderPool[amr.Value]
	decoders sz.DecoderPool[amr.Value]
)

// TAC is the hybrid level-wise 3D AMR codec. The zero value is ready to
// use; compression configuration travels in codec.Config.
type TAC struct {
	// Workers bounds the decompress-side fan-out (levels and block batches
	// decode concurrently): -1 uses all CPUs, 0 or 1 decodes serially, n>1
	// uses n workers. The compress side reads codec.Config.Workers instead,
	// which arrives with the dataset.
	Workers int
}

// Name implements codec.Codec.
func (TAC) Name() string { return "TAC" }

// PickStrategy applies the density filter of Sec. 3.4.
func PickStrategy(density float64, cfg codec.Config) codec.Strategy {
	cfg = cfg.WithDefaults()
	if cfg.Strategy != codec.Auto {
		return cfg.Strategy
	}
	switch {
	case density < cfg.T1:
		return codec.OpST
	case density < cfg.T2:
		return codec.AKD
	default:
		return codec.GSP
	}
}

// resolveWorkers maps the Workers convention (-1 all CPUs, ≤1 serial) to a
// concrete goroutine count.
func resolveWorkers(w int) int {
	switch {
	case w == -1:
		return runtime.GOMAXPROCS(0)
	case w > 1:
		return w
	default:
		return 1
	}
}

// Compress implements codec.Codec.
func (t TAC) Compress(ds *amr.Dataset, cfg codec.Config) ([]byte, error) {
	enc := encoders.Get()
	defer encoders.Put(enc)
	return compress(enc, ds, cfg)
}

func compress(enc *sz.Encoder[amr.Value], ds *amr.Dataset, cfg codec.Config) ([]byte, error) {
	cfg = cfg.WithDefaults()
	if cfg.AdaptiveBaseline && ds.Levels[0].Density() >= cfg.T2 {
		// Sec. 4.4: a dense finest level means the dataset is close to
		// uniform resolution; the 3D baseline then wins on smoothness and
		// redundancy is negligible.
		return baseline.Uniform3D{}.Compress(ds, cfg)
	}
	var body []byte
	for li, l := range ds.Levels {
		st := PickStrategy(l.Density(), cfg)
		sec, err := compressLevel(enc, l, st, cfg.LevelEB(li, l), cfg)
		if err != nil {
			return nil, fmt.Errorf("core: level %d (%s): %w", li, st, err)
		}
		body = bitio.AppendBytes(body, sec)
	}
	return codec.EncodeContainer(ID, codec.SkeletonOf(ds), body)
}

// Decompress implements codec.Codec. It transparently handles payloads the
// AdaptiveBaseline switch routed to the 3D baseline. With Workers set, the
// level sections fan out across goroutines and each level's block batches
// decode in parallel.
func (t TAC) Decompress(blob []byte) (*amr.Dataset, error) {
	return decompress(blob, resolveWorkers(t.Workers), nil)
}

// decompress is the shared implementation behind TAC.Decompress and
// Engine.Decompress: container sniffing, section splitting, and the
// optional level fan-out. pinned, when non-nil, serves the serial path;
// parallel paths always borrow per-level decoders from the pool.
func decompress(blob []byte, workers int, pinned *sz.Decoder[amr.Value]) (*amr.Dataset, error) {
	if _, _, err := codec.DecodeContainer(blob, baseline.IDUniform3D); err == nil {
		return baseline.Uniform3D{}.Decompress(blob)
	}
	sk, body, err := codec.DecodeContainer(blob, ID)
	if err != nil {
		return nil, err
	}
	ds := sk.NewDataset()
	secs := make([][]byte, len(ds.Levels))
	for li := range ds.Levels {
		sec, n, err := bitio.Bytes(body)
		if err != nil {
			return nil, fmt.Errorf("core: level %d section: %w", li, err)
		}
		body = body[n:]
		secs[li] = sec
	}
	if workers == 1 || len(ds.Levels) == 1 {
		dec := pinned
		if dec == nil {
			dec = decoders.Get()
			defer decoders.Put(dec)
		}
		for li, l := range ds.Levels {
			if err := decompressLevel(dec, l, secs[li], workers); err != nil {
				return nil, fmt.Errorf("core: level %d: %w", li, err)
			}
		}
		return ds, nil
	}
	// Split the worker budget between the level fan-out and each level's
	// batch fan-out so total decode goroutines never exceed workers.
	levelWorkers := min(workers, len(ds.Levels))
	inner := workers / levelWorkers
	sem := make(chan struct{}, levelWorkers)
	errs := make([]error, len(ds.Levels))
	var wg sync.WaitGroup
	for li, l := range ds.Levels {
		wg.Add(1)
		sem <- struct{}{}
		go func(li int, l *amr.Level) {
			defer wg.Done()
			defer func() { <-sem }()
			dec := decoders.Get()
			defer decoders.Put(dec)
			errs[li] = decompressLevel(dec, l, secs[li], inner)
		}(li, l)
	}
	wg.Wait()
	for li, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", li, err)
		}
	}
	return ds, nil
}

// Engine is a reusable TAC codec instance: it pins one sz Encoder/Decoder
// pair, so a single-goroutine campaign over many snapshots (archive
// writing, benchmark sweeps, a serving loop) reuses all compression scratch
// deterministically instead of going through the process-wide pools. The
// zero value is ready to use (scratch materializes on first call); an
// Engine is not safe for concurrent use.
type Engine struct {
	// Workers mirrors TAC.Workers for the decompress side.
	Workers int

	enc *sz.Encoder[amr.Value]
	dec *sz.Decoder[amr.Value]
}

// NewEngine returns an Engine; workers bounds the decompress-side fan-out
// exactly like TAC.Workers.
func NewEngine(workers int) *Engine {
	return &Engine{Workers: workers, enc: sz.NewEncoder[amr.Value](), dec: sz.NewDecoder[amr.Value]()}
}

// init materializes the pinned scratch for zero-value Engines.
func (e *Engine) init() {
	if e.enc == nil {
		e.enc = sz.NewEncoder[amr.Value]()
	}
	if e.dec == nil {
		e.dec = sz.NewDecoder[amr.Value]()
	}
}

// Name implements codec.Codec.
func (e *Engine) Name() string { return "TAC" }

// Compress is TAC.Compress on the engine's pinned scratch.
func (e *Engine) Compress(ds *amr.Dataset, cfg codec.Config) ([]byte, error) {
	e.init()
	return compress(e.enc, ds, cfg)
}

// Decompress is TAC.Decompress on the engine's pinned scratch. The pinned
// decoder serves the serial path; a parallel fan-out draws per-level
// decoders from the process pool instead.
func (e *Engine) Decompress(blob []byte) (*amr.Dataset, error) {
	e.init()
	return decompress(blob, resolveWorkers(e.Workers), e.dec)
}

// extract runs the chosen sparse extraction over the mask.
func extract(st codec.Strategy, mask *grid.Mask) ([]kdtree.Box, error) {
	switch st {
	case codec.NaST:
		return preprocess.NaST(mask), nil
	case codec.OpST:
		return preprocess.OpST(mask), nil
	case codec.AKD:
		boxes, _ := kdtree.Adaptive(mask)
		return boxes, nil
	case codec.ClassicKD:
		boxes, _ := kdtree.Classic(mask)
		return boxes, nil
	default:
		return nil, fmt.Errorf("core: strategy %s is not a sparse extraction", st)
	}
}

// CompressLevel compresses one AMR level with an explicit strategy and
// absolute error bound. It is the unit the Fig. 7/11/12 experiments
// measure; TAC.Compress calls it per level.
func CompressLevel(l *amr.Level, st codec.Strategy, eb float64, cfg codec.Config) ([]byte, error) {
	enc := encoders.Get()
	defer encoders.Put(enc)
	return compressLevel(enc, l, st, eb, cfg)
}

func compressLevel(enc *sz.Encoder[amr.Value], l *amr.Level, st codec.Strategy, eb float64, cfg codec.Config) ([]byte, error) {
	var out []byte
	out = append(out, byte(st))
	opts := sz.Options{ErrorBound: eb, QuantBits: cfg.QuantBits}
	switch st {
	case codec.ZF, codec.GSP:
		g := l.Grid.Clone()
		preprocess.ZeroUnmasked(g, l.Mask, l.UnitBlock)
		if st == codec.GSP {
			preprocess.GSP(g, l.Mask, l.UnitBlock, cfg.GSP)
		}
		blob, _, err := enc.Compress3D(g, opts)
		if err != nil {
			return nil, err
		}
		return bitio.AppendBytes(out, blob), nil
	case codec.NaST, codec.OpST, codec.AKD, codec.ClassicKD:
		boxes, err := extract(st, l.Mask)
		if err != nil {
			return nil, err
		}
		groups := preprocess.GroupBoxes(boxes)
		out = bitio.AppendUvarint(out, uint64(len(groups)))
		for _, grp := range groups {
			grids := preprocess.Gather(l.Grid, grp.Boxes, l.UnitBlock)
			var blob []byte
			var err error
			if cfg.Workers > 1 || cfg.Workers == -1 {
				blob, _, err = enc.CompressBlocksParallel(grids, opts, cfg.Workers)
			} else {
				blob, _, err = enc.CompressBlocks(grids, opts)
			}
			if err != nil {
				return nil, fmt.Errorf("group %v: %w", grp.Shape, err)
			}
			out = bitio.AppendBytes(out, blob)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: cannot compress with strategy %s", st)
	}
}

// DecompressLevel inverts CompressLevel, filling l.Grid (unmasked blocks
// are zero). It decodes serially; DecompressLevelWorkers fans the block
// batches out.
func DecompressLevel(l *amr.Level, sec []byte) error {
	return DecompressLevelWorkers(l, sec, 1)
}

// DecompressLevelWorkers is DecompressLevel with the level's block batches
// decoded by up to workers goroutines (-1 means all CPUs).
func DecompressLevelWorkers(l *amr.Level, sec []byte, workers int) error {
	dec := decoders.Get()
	defer decoders.Put(dec)
	return decompressLevel(dec, l, sec, resolveWorkers(workers))
}

func decompressLevel(dec *sz.Decoder[amr.Value], l *amr.Level, sec []byte, workers int) error {
	if len(sec) == 0 {
		return fmt.Errorf("core: empty level section")
	}
	st := codec.Strategy(sec[0])
	sec = sec[1:]
	switch st {
	case codec.ZF, codec.GSP:
		blob, _, err := bitio.Bytes(sec)
		if err != nil {
			return err
		}
		// Decode straight into the level grid (every cell is overwritten;
		// the dims check doubles as the old geometry validation) — the
		// whole-level staging grid and its copy are gone.
		if err := dec.Decompress3DInto(l.Grid, blob); err != nil {
			return err
		}
		if st == codec.GSP {
			// The padding positions are implied by the mask, so padded
			// cells are restored to exact zeros — the "saved padding
			// information" of Algorithm 3 with no explicit metadata.
			preprocess.ZeroUnmasked(l.Grid, l.Mask, l.UnitBlock)
		}
		// ZF is the naive strawman of Sec. 3.1: it ships no knowledge of
		// the empty regions, so their reconstructed near-zero noise stays.
		return nil
	case codec.NaST, codec.OpST, codec.AKD, codec.ClassicKD:
		boxes, err := extract(st, l.Mask)
		if err != nil {
			return err
		}
		groups := preprocess.GroupBoxes(boxes)
		ngroups, n, err := bitio.Uvarint(sec)
		if err != nil {
			return err
		}
		sec = sec[n:]
		if int(ngroups) != len(groups) {
			return fmt.Errorf("core: payload has %d groups, mask implies %d", ngroups, len(groups))
		}
		for _, grp := range groups {
			blob, n, err := bitio.Bytes(sec)
			if err != nil {
				return fmt.Errorf("group %v: %w", grp.Shape, err)
			}
			sec = sec[n:]
			var grids []*grid.Grid3[amr.Value]
			if workers > 1 {
				grids, err = dec.DecompressBlocksParallel(blob, workers)
			} else {
				grids, err = dec.DecompressBlocks(blob)
			}
			if err != nil {
				return fmt.Errorf("group %v: %w", grp.Shape, err)
			}
			if err := preprocess.Scatter(l.Grid, grp.Boxes, l.UnitBlock, grids); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: unknown strategy byte %d", st)
	}
}

var _ codec.Codec = TAC{}
var _ codec.Codec = (*Engine)(nil)
