package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestCorruptionNeverPanics flips random bytes of a valid TAC payload and
// requires Decompress to either error or return a structurally valid
// dataset — never panic. This guards every parser layer (container,
// sections, SZ payloads, Huffman, flate).
func TestCorruptionNeverPanics(t *testing.T) {
	ds := testDataset(t, 0.3, 20)
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), blob...)
		flips := rng.Intn(4) + 1
		for f := 0; f < flips; f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Decompress panicked: %v", trial, r)
				}
			}()
			got, err := TAC{}.Decompress(mut)
			if err == nil && got != nil {
				// A lucky mutation may still parse (e.g. flipped value
				// bits); the structure must remain coherent.
				if len(got.Levels) != len(ds.Levels) {
					t.Fatalf("trial %d: silent structural corruption", trial)
				}
			}
		}()
	}
}

// TestTruncationNeverPanics truncates a payload at every length and
// requires a clean error.
func TestTruncationNeverPanics(t *testing.T) {
	ds := testDataset(t, 0.3, 21)
	blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	step := len(blob)/97 + 1 // sample lengths; all of them is slow
	for cut := 0; cut < len(blob); cut += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			if _, err := (TAC{}).Decompress(blob[:cut]); err == nil {
				t.Fatalf("cut %d decoded successfully", cut)
			}
		}()
	}
}

// TestQuickPipelineProperty: for random two-level datasets and random
// bounds, the full TAC pipeline round-trips within bound with a sane
// compression ratio.
func TestQuickPipelineProperty(t *testing.T) {
	f := func(seed int64, fineFrac, ebExp uint8) bool {
		frac := 0.05 + float64(fineFrac%80)/100 // 5%..84%
		ds, err := sim.Generate(sim.Spec{
			Name: "q", FinestN: 16, Levels: 2, UnitBlock: 2, Seed: seed,
			LeafFractions: []float64{frac, 1 - frac},
		}, sim.BaryonDensity)
		if err != nil {
			return false
		}
		eb := 1e8 * float64(uint64(1)<<(ebExp%10)) // 1e8 .. ~5e10
		blob, err := TAC{}.Compress(ds, codec.Config{ErrorBound: eb})
		if err != nil {
			return false
		}
		got, err := TAC{}.Decompress(blob)
		if err != nil {
			return false
		}
		dist, err := metrics.DatasetDistortion(ds, got)
		if err != nil {
			return false
		}
		return dist.MaxErr <= eb*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicPayload: compressing the same dataset twice yields
// identical bytes (required for the mask-replay decompression scheme and
// for reproducible experiments).
func TestDeterministicPayload(t *testing.T) {
	ds := testDataset(t, 0.4, 22)
	for _, cfg := range []codec.Config{
		{ErrorBound: 1e9},
		{ErrorBound: 1e9, Strategy: codec.GSP},
		{ErrorBound: 1e9, LevelScales: []float64{3, 1}},
	} {
		a, err := TAC{}.Compress(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := TAC{}.Compress(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("cfg %+v: payload lengths differ", cfg)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cfg %+v: payloads differ at byte %d", cfg, i)
			}
		}
	}
}
