// Package metrics computes the generic evaluation metrics of the TAC
// paper's Sec. 4.2: compression ratio, bit-rate, PSNR, NRMSE, and
// rate-distortion sweeps.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/amr"
	"repro/internal/grid"
)

// CompressionRatio is original bytes over compressed bytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate is the amortized storage cost in bits per stored value; for
// single-precision data bitRate × compressionRatio = 32 (Sec. 4.2
// metric 1).
func BitRate(compressedBytes, values int) float64 {
	if values == 0 {
		return 0
	}
	return 8 * float64(compressedBytes) / float64(values)
}

// Distortion summarizes reconstruction error statistics.
type Distortion struct {
	N      int
	Range  float64 // value range of the original data
	MaxErr float64
	MSE    float64
}

// PSNR returns the peak signal-to-noise ratio in dB (Sec. 4.2 metric 2):
// 20·log10(range) − 10·log10(MSE).
func (d Distortion) PSNR() float64 {
	if d.MSE == 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(d.Range) - 10*math.Log10(d.MSE)
}

// NRMSE is the range-normalized root mean squared error.
func (d Distortion) NRMSE() float64 {
	if d.Range == 0 {
		return 0
	}
	return math.Sqrt(d.MSE) / d.Range
}

// accumulate folds one (original, reconstructed) pair into the statistics.
type accumulator struct {
	n        int
	lo, hi   float64
	sumSqErr float64
	maxErr   float64
	started  bool
}

func (a *accumulator) add(orig, recon float64) {
	if !a.started {
		a.lo, a.hi = orig, orig
		a.started = true
	}
	if orig < a.lo {
		a.lo = orig
	}
	if orig > a.hi {
		a.hi = orig
	}
	e := math.Abs(orig - recon)
	if e > a.maxErr {
		a.maxErr = e
	}
	a.sumSqErr += e * e
	a.n++
}

func (a *accumulator) distortion() Distortion {
	d := Distortion{N: a.n, Range: a.hi - a.lo, MaxErr: a.maxErr}
	if a.n > 0 {
		d.MSE = a.sumSqErr / float64(a.n)
	}
	return d
}

// GridDistortion compares two uniform grids.
func GridDistortion[T grid.Float](orig, recon *grid.Grid3[T]) (Distortion, error) {
	if orig.Dim != recon.Dim {
		return Distortion{}, fmt.Errorf("metrics: dims %v vs %v", orig.Dim, recon.Dim)
	}
	var a accumulator
	for i := range orig.Data {
		a.add(float64(orig.Data[i]), float64(recon.Data[i]))
	}
	return a.distortion(), nil
}

// SliceDistortion compares two value slices.
func SliceDistortion[T grid.Float](orig, recon []T) (Distortion, error) {
	if len(orig) != len(recon) {
		return Distortion{}, fmt.Errorf("metrics: lengths %d vs %d", len(orig), len(recon))
	}
	var a accumulator
	for i := range orig {
		a.add(float64(orig[i]), float64(recon[i]))
	}
	return a.distortion(), nil
}

// DatasetDistortion compares two AMR datasets over their stored cells
// (level-wise, aggregated), the distortion the rate-distortion figures
// plot. The value range is taken over all stored cells of the original.
func DatasetDistortion(orig, recon *amr.Dataset) (Distortion, error) {
	if len(orig.Levels) != len(recon.Levels) {
		return Distortion{}, fmt.Errorf("metrics: level counts %d vs %d", len(orig.Levels), len(recon.Levels))
	}
	var a accumulator
	for li := range orig.Levels {
		ov := orig.Levels[li].MaskedValues(nil)
		rv := recon.Levels[li].MaskedValues(nil)
		if len(ov) != len(rv) {
			return Distortion{}, fmt.Errorf("metrics: level %d stored cells %d vs %d", li, len(ov), len(rv))
		}
		for i := range ov {
			a.add(float64(ov[i]), float64(rv[i]))
		}
	}
	return a.distortion(), nil
}

// RatePoint is one point of a rate-distortion curve.
type RatePoint struct {
	ErrorBound float64
	BitRate    float64
	PSNR       float64
	Ratio      float64
}

// String formats the point as the experiment tables print it.
func (p RatePoint) String() string {
	return fmt.Sprintf("eb=%.3g bitrate=%.3f psnr=%.2f cr=%.1f", p.ErrorBound, p.BitRate, p.PSNR, p.Ratio)
}
