package metrics

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestCompressionRatioAndBitRate(t *testing.T) {
	if got := CompressionRatio(400, 100); got != 4 {
		t.Fatalf("CR = %v", got)
	}
	if !math.IsInf(CompressionRatio(400, 0), 1) {
		t.Fatal("CR with zero compressed size should be +Inf")
	}
	// 4 bytes/value at no compression = 32 bits/value.
	if got := BitRate(400, 100); got != 32 {
		t.Fatalf("BitRate = %v", got)
	}
	if BitRate(100, 0) != 0 {
		t.Fatal("BitRate with zero values should be 0")
	}
	// product identity: CR × bitrate = 32 for single precision
	cr := CompressionRatio(4*1000, 500)
	br := BitRate(500, 1000)
	if math.Abs(cr*br-32) > 1e-12 {
		t.Fatalf("CR×bitrate = %v, want 32", cr*br)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// Range 100, uniform error 1 on half the points: MSE = 0.5.
	d := Distortion{N: 10, Range: 100, MSE: 0.5, MaxErr: 1}
	want := 20*math.Log10(100) - 10*math.Log10(0.5)
	if math.Abs(d.PSNR()-want) > 1e-12 {
		t.Fatalf("PSNR = %v, want %v", d.PSNR(), want)
	}
	if !math.IsInf(Distortion{Range: 1}.PSNR(), 1) {
		t.Fatal("zero MSE should give +Inf PSNR")
	}
}

func TestNRMSE(t *testing.T) {
	d := Distortion{Range: 10, MSE: 4}
	if d.NRMSE() != 0.2 {
		t.Fatalf("NRMSE = %v", d.NRMSE())
	}
	if (Distortion{Range: 0, MSE: 4}).NRMSE() != 0 {
		t.Fatal("zero range NRMSE should be 0")
	}
}

func TestGridDistortion(t *testing.T) {
	a := grid.New[float32](grid.Dims{X: 2, Y: 2, Z: 2})
	copy(a.Data, []float32{0, 1, 2, 3, 4, 5, 6, 7})
	b := a.Clone()
	b.Data[3] += 2
	d, err := GridDistortion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 8 || d.Range != 7 || d.MaxErr != 2 {
		t.Fatalf("distortion: %+v", d)
	}
	if math.Abs(d.MSE-0.5) > 1e-12 {
		t.Fatalf("MSE = %v, want 0.5", d.MSE)
	}
	if _, err := GridDistortion(a, grid.New[float32](grid.Dims{X: 1, Y: 2, Z: 2})); err == nil {
		t.Fatal("dims mismatch should error")
	}
}

func TestSliceDistortion(t *testing.T) {
	d, err := SliceDistortion([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || d.MSE != 0 || d.MaxErr != 0 {
		t.Fatalf("identical slices: %+v, %v", d, err)
	}
	if _, err := SliceDistortion([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestRatePointString(t *testing.T) {
	p := RatePoint{ErrorBound: 1e9, BitRate: 2.5, PSNR: 60.1, Ratio: 12.8}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}
