// Cosmology post-analysis: the Sec. 4.5 workflow. Compress a two-level
// snapshot three ways — 3D baseline, TAC with a uniform error bound, and
// TAC with the paper's adaptive per-level bounds — and compare what each
// does to the matter power spectrum and the halo catalog at a matched
// compression ratio.
package main

import (
	"fmt"
	"log"

	tac "repro"
	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)

	env := experiments.NewEnv(8) // Run1 at 64³/32³ for a fast demo
	ds, err := env.Dataset("Run1_Z2", tac.BaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	orig := ds.FlattenToUniform()
	psOrig, err := analysis.ComputePowerSpectrum(orig)
	if err != nil {
		log.Fatal(err)
	}
	halosOrig := analysis.FindHalos(orig, analysis.HaloFinderOptions{MinCells: 4})
	fmt.Printf("dataset %s: %d stored cells, %d halos in the original field\n\n",
		ds.Name, ds.StoredCells(), len(halosOrig))

	// Anchor the comparison at the 3D baseline's ratio for eb 2e9.
	base3D, err := tac.NewBaseline("3D")
	if err != nil {
		log.Fatal(err)
	}
	anchor, err := base3D.Compress(ds, tac.Config{ErrorBound: 2e9})
	if err != nil {
		log.Fatal(err)
	}
	target := metrics.CompressionRatio(ds.OriginalBytes(), len(anchor))
	fmt.Printf("matched compression ratio: %.1f\n\n", target)
	fmt.Printf("%-22s %-8s %-16s %-14s %-10s\n", "method", "CR", "P(k) max rel err", "halo mass diff", "cell diff")

	run := func(label string, c tac.Codec, base tac.Config) {
		eb, got, err := experiments.MatchRatio(c, ds, base, target, 0.02, 24)
		if err != nil {
			log.Fatal(err)
		}
		cfg := base
		cfg.ErrorBound = eb
		blob, err := c.Compress(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		recon, err := c.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		flat := recon.FlattenToUniform()
		ps, err := analysis.ComputePowerSpectrum(flat)
		if err != nil {
			log.Fatal(err)
		}
		_, maxErr, err := psOrig.RelativeError(ps, 10)
		if err != nil {
			log.Fatal(err)
		}
		hd, err := analysis.CompareHalos(orig, flat, analysis.HaloFinderOptions{MinCells: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-8.1f %-16.6f %-14.3e %-10d\n", label, got, maxErr, hd.RelMassDiff, hd.CellNumDiff)
	}

	run("3D baseline", base3D, tac.Config{})
	run("TAC uniform (1:1)", tac.NewTAC(), tac.Config{})
	// Sec. 4.5: 3:1 fine:coarse for power spectrum, 2:1 for halo finder.
	run("TAC adaptive (3:1)", tac.NewTAC(), tac.Config{LevelScales: []float64{3, 1}})
	run("TAC adaptive (2:1)", tac.NewTAC(), tac.Config{LevelScales: []float64{2, 1}})

	fmt.Println("\nlower P(k) error / halo diffs at the same ratio = better post-analysis quality")
}
