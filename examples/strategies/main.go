// Strategies: how TAC's density filter picks a pre-process strategy, and
// why. Compresses AMR levels across the density spectrum with all five
// strategies and prints the resulting rate-distortion and pre-process cost,
// mirroring the paper's Figs. 11 and 13.
package main

import (
	"fmt"
	"log"
	"time"

	tac "repro"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kdtree"
	"repro/internal/preprocess"
)

func main() {
	log.SetFlags(0)
	env := experiments.NewEnv(8)

	fmt.Println("Per-level strategy comparison (eb = 1e9, baryon density)")
	fmt.Printf("%-14s %-9s | %8s %8s %8s %8s %8s | %s\n",
		"level", "density", "ZF", "NaST", "OpST", "AKD", "GSP", "density filter picks")
	for _, ref := range env.DensityLevels() {
		l, err := env.Level(ref, tac.BaryonDensity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-9.3f |", ref.Label, l.Density())
		for _, st := range []codec.Strategy{codec.ZF, codec.NaST, codec.OpST, codec.AKD, codec.GSP} {
			res, err := experiments.RunLevel(l, st, 1e9)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.2f", res.BitRate)
		}
		pick := core.PickStrategy(l.Density(), codec.Config{}.WithDefaults())
		fmt.Printf(" | %s\n", pick)
	}

	fmt.Println("\nPre-process cost (extraction only), OpST vs AKDTree:")
	for _, ref := range env.DensityLevels() {
		l, err := env.Level(ref, tac.BaryonDensity)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		ob := preprocess.OpST(l.Mask)
		opT := time.Since(t0)
		t0 = time.Now()
		ab, _ := kdtree.Adaptive(l.Mask)
		akT := time.Since(t0)
		fmt.Printf("  %-14s density %.3f: OpST %v (%d boxes), AKDTree %v (%d boxes)\n",
			ref.Label, l.Density(), opT.Round(time.Microsecond), len(ob), akT.Round(time.Microsecond), len(ab))
	}
	fmt.Println("\nOpST cost grows with density; AKDTree stays flat — hence the 50% threshold.")
}
