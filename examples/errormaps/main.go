// Errormaps: regenerate the paper's visual comparisons (Figs. 7 and 12) as
// PNG files — one error map per pre-process strategy, brighter = larger
// reconstruction error, plus a log-scaled view of the field itself.
package main

import (
	"fmt"
	"log"
	"os"

	tac "repro"
	"repro/internal/amr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/render"
)

func main() {
	log.SetFlags(0)
	outDir := "errormaps_out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	env := experiments.NewEnv(8)

	// Fig. 7: NaST vs OpST on the sparse fine level.
	fine, err := env.Level(experiments.LevelRef{Label: "z10 fine", Dataset: "Run1_Z10", Level: 0}, tac.BaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	renderStrategies(env, outDir, "fig7", fine, 1e9, []codec.Strategy{codec.NaST, codec.OpST})

	// Fig. 12: ZF vs GSP on the dense coarse level.
	coarse, err := env.Level(experiments.LevelRef{Label: "z10 coarse", Dataset: "Run1_Z10", Level: 1}, tac.BaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	renderStrategies(env, outDir, "fig12", coarse, 1e9, []codec.Strategy{codec.ZF, codec.GSP})

	fmt.Printf("wrote PNGs to %s/ (brighter = larger error)\n", outDir)
}

func renderStrategies(env *experiments.Env, dir, prefix string, l *amr.Level, eb float64, sts []codec.Strategy) {
	k := l.Grid.Dim.Z / 2
	field := fmt.Sprintf("%s/%s_field.png", dir, prefix)
	if err := render.WriteFieldMap(field, l.Grid, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (density %.0f%%): field slice -> %s\n", prefix, l.Density()*100, field)
	for _, st := range sts {
		blob, err := core.CompressLevel(l, st, eb, codec.Config{ErrorBound: eb})
		if err != nil {
			log.Fatal(err)
		}
		recon := amr.NewLevel(l.Grid.Dim, l.UnitBlock)
		recon.Mask.CopyFrom(l.Mask)
		if err := core.DecompressLevel(recon, blob); err != nil {
			log.Fatal(err)
		}
		path := fmt.Sprintf("%s/%s_%s.png", dir, prefix, st)
		if err := render.WriteErrorMap(path, l.Grid, recon.Grid, k); err != nil {
			log.Fatal(err)
		}
		n := l.StoredCells()
		fmt.Printf("  %-6s CR %.1f -> %s\n", st, metrics.CompressionRatio(4*n, len(blob)), path)
	}
}
