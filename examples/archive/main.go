// Command archive demonstrates the seekable TACA container: it streams a
// small multi-snapshot, multi-field campaign into one archive file, then
// reopens it and answers the queries a serving layer would see — list the
// members, pull one refinement level, and pull a spatial region — while
// counting how few bytes each random access touches.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"

	tac "repro"
)

// countingReaderAt makes the random-access story measurable.
type countingReaderAt struct {
	r    io.ReaderAt
	read atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.read.Add(int64(n))
	return n, err
}

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "taca")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "campaign.taca")

	// Write: two timesteps × two fields, streamed member by member.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := tac.NewArchive(f)
	if err != nil {
		log.Fatal(err)
	}
	var orig int64
	for ti, fractions := range [][]float64{{0.3, 0.7}, {0.6, 0.4}} {
		for _, field := range []tac.Field{tac.BaryonDensity, tac.Temperature} {
			ds, err := tac.Generate(tac.Spec{
				Name: fmt.Sprintf("step%02d", ti), FinestN: 64, Levels: 2,
				UnitBlock: 8, Seed: int64(40 + ti), LeafFractions: fractions,
			}, field)
			if err != nil {
				log.Fatal(err)
			}
			// A value-range-relative bound adapts to each field's scale
			// (baryon density ~1e11, temperature ~1e4).
			if err := w.AddDataset(ds, tac.Config{ErrorBound: 1e-3, Mode: tac.Rel, Workers: -1}); err != nil {
				log.Fatal(err)
			}
			orig += int64(ds.OriginalBytes())
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st := w.Stats()
	fmt.Printf("wrote %s: %d members, %.2f MB raw -> %.2f MB (CR %.1f)\n\n",
		filepath.Base(path), st.Members,
		float64(orig)/1e6, float64(st.BytesWritten)/1e6,
		float64(orig)/float64(st.BytesWritten))

	// Read back through a byte-counting ReaderAt.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	fi, err := rf.Stat()
	if err != nil {
		log.Fatal(err)
	}
	cr := &countingReaderAt{r: rf}
	r, err := tac.OpenArchive(cr, fi.Size())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d members listed after reading %.1f%% of the file\n",
		len(r.Members()), pct(cr.read.Load(), fi.Size()))
	for i, m := range r.Members() {
		fmt.Printf("  [%d] %s/%s: %d levels, %d cells, %d bytes\n",
			i, m.Name, m.Field, len(m.Levels), m.StoredCells(), m.CompressedBytes())
	}

	// Random access #1: one coarse level of one member.
	before := cr.read.Load()
	l, err := r.ExtractLevel(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextract level 1 of member 3: %v cells, read %.1f%% of the archive\n",
		l.Grid.Dim, pct(cr.read.Load()-before, fi.Size()))

	// Random access #2: a 32³ corner of the domain across all levels.
	before = cr.read.Load()
	part, err := r.ExtractRegion(0, tac.Region{X1: 32, Y1: 32, Z1: 32})
	if err != nil {
		log.Fatal(err)
	}
	cells := 0
	for _, pl := range part.Levels {
		cells += pl.StoredCells()
	}
	fmt.Printf("extract 32³ ROI of member 0: %d stored cells, read %.1f%% of the archive\n",
		cells, pct(cr.read.Load()-before, fi.Size()))
}

func pct(part, whole int64) float64 { return 100 * float64(part) / float64(whole) }
