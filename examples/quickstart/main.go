// Quickstart: generate a small Nyx-like AMR snapshot, compress it with TAC,
// decompress, and verify the error bound — the 60-second tour of the public
// API.
package main

import (
	"fmt"
	"log"
	"math"

	tac "repro"
)

func main() {
	log.SetFlags(0)

	// A two-level snapshot: 64³ fine level covering 25% of the domain,
	// 32³ coarse level covering the rest (cf. the paper's Run1 datasets).
	ds, err := tac.Generate(tac.Spec{
		Name:          "quickstart",
		FinestN:       64,
		Levels:        2,
		UnitBlock:     4,
		Seed:          42,
		LeafFractions: []float64{0.25, 0.75},
	}, tac.BaryonDensity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d levels, %d stored cells\n", ds.Name, len(ds.Levels), ds.StoredCells())
	for li, l := range ds.Levels {
		fmt.Printf("  level %d: %v, density %.1f%%\n", li, l.Grid.Dim, l.Density()*100)
	}

	// Compress with a point-wise absolute error bound. The density filter
	// picks OpST for the sparse fine level and GSP for the dense coarse
	// level automatically.
	const eb = 1e9 // baryon density is ~1e11, so this is ~1% point-wise
	blob, err := tac.Compress(ds, tac.Config{ErrorBound: eb})
	if err != nil {
		log.Fatal(err)
	}
	orig := ds.OriginalBytes()
	fmt.Printf("compressed %d -> %d bytes (ratio %.1fx)\n", orig, len(blob), float64(orig)/float64(len(blob)))

	// Decompress and verify the bound holds for every stored cell.
	recon, err := tac.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for li := range ds.Levels {
		ov := ds.Levels[li].MaskedValues(nil)
		rv := recon.Levels[li].MaskedValues(nil)
		for i := range ov {
			if e := math.Abs(float64(ov[i]) - float64(rv[i])); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("max reconstruction error: %.4g (bound %.4g)\n", maxErr, eb)
	if maxErr > eb {
		log.Fatal("ERROR BOUND VIOLATED")
	}
	fmt.Println("error bound verified ✓")
}
