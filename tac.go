// Package tac is the public facade of the TAC reproduction: error-bounded
// lossy compression for three-dimensional adaptive-mesh-refinement (AMR)
// simulation data, after Wang et al., "TAC: Optimizing Error-Bounded Lossy
// Compression for Three-Dimensional Adaptive Mesh Refinement Simulations"
// (HPDC '22).
//
// The package re-exports the user-facing pieces of the internal packages:
// the AMR dataset model, the TAC codec and its baselines, the configuration
// type, and the post-analysis tools. A typical round trip:
//
//	ds, _ := tac.Generate(tac.Spec{ ... }, tac.BaryonDensity)
//	blob, _ := tac.Compress(ds, tac.Config{ErrorBound: 1e9})
//	recon, _ := tac.Decompress(blob)
//
// See examples/ for complete programs and internal/experiments for the
// paper's evaluation harness.
package tac

import (
	"fmt"
	"io"
	"os"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/sz"
)

// Dataset is a tree-structured AMR snapshot (levels ordered fine to
// coarse, every cell stored at its finest refinement).
type Dataset = amr.Dataset

// Level is one refinement level of a Dataset.
type Level = amr.Level

// Config carries compression parameters: error bound, bounding mode,
// per-level bound scaling, strategy overrides and hybrid thresholds.
type Config = codec.Config

// Codec is the interface shared by TAC and the three baselines.
type Codec = codec.Codec

// Spec describes a synthetic Nyx-like dataset to generate.
type Spec = sim.Spec

// Field names a physical field of a snapshot.
type Field = sim.Field

// The supported simulation fields.
const (
	BaryonDensity     = sim.BaryonDensity
	DarkMatterDensity = sim.DarkMatterDensity
	Temperature       = sim.Temperature
	VelocityX         = sim.VelocityX
	VelocityY         = sim.VelocityY
	VelocityZ         = sim.VelocityZ
)

// Error-bounding modes.
const (
	Abs = sz.Abs // point-wise absolute bound
	Rel = sz.Rel // value-range-relative bound, resolved per level
)

// Pre-process strategies for Config.Strategy; Auto applies the density
// filter (OpST below 50%, AKDTree to 60%, GSP above).
const (
	Auto      = codec.Auto
	ZF        = codec.ZF
	NaST      = codec.NaST
	OpST      = codec.OpST
	AKDTree   = codec.AKD
	GSP       = codec.GSP
	ClassicKD = codec.ClassicKD
)

// Compress compresses ds with the TAC codec.
func Compress(ds *Dataset, cfg Config) ([]byte, error) {
	return core.TAC{}.Compress(ds, cfg)
}

// Decompress reconstructs a dataset from a payload written by Compress
// (including payloads the adaptive switch routed to the 3D baseline).
func Decompress(blob []byte) (*Dataset, error) {
	return core.TAC{}.Decompress(blob)
}

// DecompressParallel is Decompress with the level sections and block
// batches decoded by up to workers goroutines (-1 means all CPUs, ≤ 1 is
// serial).
func DecompressParallel(blob []byte, workers int) (*Dataset, error) {
	return core.TAC{Workers: workers}.Decompress(blob)
}

// NewTAC returns the TAC codec as a Codec.
func NewTAC() Codec { return core.TAC{} }

// Encoder is a reusable TAC compression engine: it pins the quantization,
// Huffman and DEFLATE scratch of the underlying SZ compressor across
// calls, so repeated-snapshot campaigns (archive writing, services
// compressing a stream of members) stop paying per-call allocation.
// Payloads are byte-identical to Compress. An Encoder is not safe for
// concurrent use; use one per goroutine.
type Encoder struct{ eng *core.Engine }

// NewEncoder returns a reusable compression engine.
func NewEncoder() *Encoder { return &Encoder{eng: core.NewEngine(0)} }

// Compress compresses ds exactly like the package-level Compress, reusing
// the encoder's scratch.
func (e *Encoder) Compress(ds *Dataset, cfg Config) ([]byte, error) {
	return e.eng.Compress(ds, cfg)
}

// Decoder is the matching reusable decompression engine. workers bounds
// the decompress-side fan-out (-1 means all CPUs, ≤ 1 is serial). A
// Decoder is not safe for concurrent use.
type Decoder struct{ eng *core.Engine }

// NewDecoder returns a reusable decompression engine.
func NewDecoder(workers int) *Decoder { return &Decoder{eng: core.NewEngine(workers)} }

// Decompress reconstructs a dataset exactly like the package-level
// Decompress, reusing the decoder's scratch.
func (d *Decoder) Decompress(blob []byte) (*Dataset, error) {
	return d.eng.Decompress(blob)
}

// NewBaseline returns one of the paper's comparison codecs by name: "1D",
// "zMesh", or "3D".
func NewBaseline(name string) (Codec, error) {
	switch name {
	case "1D":
		return baseline.Naive1D{}, nil
	case "zMesh":
		return baseline.ZMesh{}, nil
	case "3D":
		return baseline.Uniform3D{}, nil
	default:
		return nil, fmt.Errorf("tac: unknown baseline %q (want 1D, zMesh, or 3D)", name)
	}
}

// Generate synthesizes an AMR dataset from a spec (see internal/sim for
// how the Nyx-like fields and refinement are constructed).
func Generate(spec Spec, field Field) (*Dataset, error) {
	return sim.Generate(spec, field)
}

// Load reads a .amr snapshot written by Save or cmd/datagen.
func Load(path string) (*Dataset, error) { return amr.Load(path) }

// Save writes a dataset as a .amr snapshot.
func Save(ds *Dataset, path string) error { return ds.Save(path) }

// Region is an axis-aligned half-open box of cells, used to address
// spatial subsets of an archive member in finest-level coordinates.
type Region = grid.Region

// ArchiveWriter streams snapshot members into a seekable .taca archive.
type ArchiveWriter = archive.Writer

// ArchiveReader is a random-access view of a .taca archive, safe for
// concurrent extraction.
type ArchiveReader = archive.Reader

// ArchiveMember is one snapshot × field entry of an archive index.
type ArchiveMember = archive.Member

// NewArchive starts a TACA archive on w. Append snapshots with
// AddDataset (or BeginMember/AddLevel for sequences larger than memory)
// and seal the index with Close.
func NewArchive(w io.Writer) (*ArchiveWriter, error) { return archive.NewWriter(w) }

// OpenArchive opens an archive from any io.ReaderAt covering size bytes.
func OpenArchive(r io.ReaderAt, size int64) (*ArchiveReader, error) {
	return archive.Open(r, size)
}

// OpenArchiveFile opens a .taca archive from disk; the returned reader
// must be closed.
func OpenArchiveFile(path string) (*archive.FileReader, error) {
	return archive.OpenFile(path)
}

// OpenArchiveAppend reopens a .taca archive for crash-safe in-place
// growth: new members are laid down after the newest committed
// generation (a torn tail from an earlier crash is truncated first) and
// sealed by Commit/Close with fsync ordering that keeps the file
// openable at every instant. Close the returned file after the writer.
func OpenArchiveAppend(path string) (*ArchiveWriter, *os.File, error) {
	return archive.OpenAppendFile(path)
}
