package tac_test

import (
	"math"
	"path/filepath"
	"testing"

	tac "repro"
)

func quickDataset(t *testing.T) *tac.Dataset {
	t.Helper()
	ds, err := tac.Generate(tac.Spec{
		Name: "facade", FinestN: 32, Levels: 2, UnitBlock: 4, Seed: 77,
		LeafFractions: []float64{0.3, 0.7},
	}, tac.BaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFacadeRoundTrip(t *testing.T) {
	ds := quickDataset(t)
	eb := 1e9
	blob, err := tac.Compress(ds, tac.Config{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := tac.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for li := range ds.Levels {
		ov := ds.Levels[li].MaskedValues(nil)
		rv := recon.Levels[li].MaskedValues(nil)
		for i := range ov {
			if e := math.Abs(float64(ov[i]) - float64(rv[i])); e > eb*(1+1e-6) {
				t.Fatalf("level %d cell %d error %v exceeds bound", li, i, e)
			}
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	ds := quickDataset(t)
	for _, name := range []string{"1D", "zMesh", "3D"} {
		c, err := tac.NewBaseline(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("baseline %q reports name %q", name, c.Name())
		}
		blob, err := c.Compress(ds, tac.Config{ErrorBound: 1e9})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := c.Decompress(blob); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := tac.NewBaseline("nope"); err == nil {
		t.Fatal("unknown baseline should error")
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	ds := quickDataset(t)
	path := filepath.Join(t.TempDir(), "f.amr")
	if err := tac.Save(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := tac.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StoredCells() != ds.StoredCells() || got.Name != ds.Name {
		t.Fatal("loaded dataset differs")
	}
}

func TestFacadeRelModeAndScales(t *testing.T) {
	ds := quickDataset(t)
	blob, err := tac.Compress(ds, tac.Config{
		ErrorBound:  1e-3,
		Mode:        tac.Rel,
		LevelScales: []float64{3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tac.Decompress(blob); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeForcedStrategy(t *testing.T) {
	ds := quickDataset(t)
	for _, st := range []tac.Config{
		{ErrorBound: 1e9, Strategy: tac.OpST},
		{ErrorBound: 1e9, Strategy: tac.AKDTree},
		{ErrorBound: 1e9, Strategy: tac.GSP},
		{ErrorBound: 1e9, Strategy: tac.NaST},
		{ErrorBound: 1e9, Strategy: tac.ClassicKD},
	} {
		blob, err := tac.Compress(ds, st)
		if err != nil {
			t.Fatalf("strategy %v: %v", st.Strategy, err)
		}
		if _, err := tac.Decompress(blob); err != nil {
			t.Fatalf("strategy %v: %v", st.Strategy, err)
		}
	}
}
