// Command datagen generates the seven synthetic Table-1 datasets (or a
// chosen subset) as .amr snapshot files.
//
// Usage:
//
//	datagen [-scale 4] [-field baryon_density] [-dataset Run1_Z10] [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/amr"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	scale := flag.Int("scale", 4, "resolution divisor vs the paper (power of two, 1-16)")
	field := flag.String("field", string(sim.BaryonDensity), "field to generate")
	dataset := flag.String("dataset", "", "single dataset name (default: all seven)")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	specs, err := sim.Catalog(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if *dataset != "" {
		spec, err := sim.SpecByName(*dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
		specs = []sim.Spec{spec}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, spec := range specs {
		ds, err := sim.Generate(spec, sim.Field(*field))
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		if err := ds.Validate(); err != nil {
			log.Fatalf("%s: generated dataset invalid: %v", spec.Name, err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.amr", spec.Name, *field))
		if err := ds.Save(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s levels=%d cells=%d densities=%v\n",
			path, len(ds.Levels), ds.StoredCells(), fmtDensities(ds))
	}
}

func fmtDensities(ds *amr.Dataset) []string {
	out := make([]string, len(ds.Levels))
	for i, d := range ds.Densities() {
		out[i] = fmt.Sprintf("%.4g%%", d*100)
	}
	return out
}
